(* ASME2SSME command-line tool: the paper's tool chain as a CLI.

   Subcommands:
     parse      — parse and echo an AADL package (syntax check)
     check      — AADL legality + instance tree
     translate  — emit the generated SIGNAL program
     schedule   — synthesize and print the static schedule + affine export
     analyze    — clock calculus, determinism, deadlock reports
     simulate   — run N hyper-periods, print a chronogram, write VCD
*)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_source = function
  | Some path -> read_file path
  | None -> Polychrony.Case_study.aadl_source

let registry_named = function
  | "nominal" -> Ok Polychrony.Case_study.registry_nominal
  | "timeout" -> Ok Polychrony.Case_study.registry_timeout
  | "default" -> Ok Trans.Behavior.empty
  | other -> Error (Printf.sprintf "unknown registry %S" other)

let policy_named = function
  | "edf" -> Ok Sched.Static_sched.Edf
  | "rm" -> Ok Sched.Static_sched.Rm
  | "fp" -> Ok Sched.Static_sched.Fp
  | "fifo" -> Ok Sched.Static_sched.Fifo
  | other -> Error (Printf.sprintf "unknown policy %S" other)

let or_die = function
  | Ok v -> v
  | Error m ->
    prerr_endline ("error: " ^ m);
    exit 1

(* Render a diagnostic report on the chosen channel and format. The
   exit-code contract: 0 when nothing worse than a note was reported,
   2 when the worst is a warning, 1 when any error is present. *)
let print_diags ?(oc = stdout) ~format ~src diags =
  match format with
  | `Text -> output_string oc (Putil.Diag.render_list ~src diags)
  | `Json ->
    (* JSON reports carry the always-on flight-recorder snapshot (the
       last span/instant/diag events per domain), so a failed run
       explains itself without re-running under --trace *)
    let j =
      match Putil.Diag.list_to_json diags with
      | Putil.Metrics.Json.Obj kvs ->
        Putil.Metrics.Json.Obj
          (kvs @ [ ("flight_recorder", Putil.Obs.dump_flight_recorder ()) ])
      | j -> j
    in
    output_string oc (Putil.Metrics.Json.to_string j);
    output_char oc '\n'

(* A --cache-dir (or CACHE_DIR environment variable) opens the
   persistent content-addressed store: per-process pipeline results
   computed by ANY previous invocation sharing the directory replay
   instead of recomputing. *)
let store_of = function
  | None -> None
  | Some dir -> (
    match Putil.Cache_store.open_store dir with
    | Ok s -> Some s
    | Error m ->
      prerr_endline ("error: cannot open cache directory: " ^ m);
      exit 1)

let session_of cache_dir =
  Polychrony.Pipeline.new_session ?store:(store_of cache_dir) ()

let analyzed ?session ?mode file root registry policy =
  let src = load_source file in
  let registry = or_die (registry_named registry) in
  let policy = or_die (policy_named policy) in
  match
    Polychrony.Pipeline.analyze ?session ?mode ~registry ~policy ?root
      ?file src
  with
  | Ok a ->
    if a.Polychrony.Pipeline.diags <> [] then
      print_diags ~oc:stderr ~format:`Text ~src
        a.Polychrony.Pipeline.diags;
    a
  | Error ds ->
    print_diags ~oc:stderr ~format:`Text ~src ds;
    exit (Putil.Diag.exit_code ds)

open Cmdliner

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"AADL source file; the bundled ProducerConsumer case study \
               when omitted.")

let root_arg =
  Arg.(value & opt (some string) None & info [ "root" ] ~docv:"IMPL"
         ~doc:"Root system implementation (default: inferred).")

let registry_arg =
  Arg.(value & opt string "nominal" & info [ "registry" ] ~docv:"NAME"
         ~doc:"Thread behaviour registry: nominal, timeout or default.")

let policy_arg =
  Arg.(value & opt string "edf" & info [ "policy" ] ~docv:"POLICY"
         ~doc:"Scheduling policy: edf, rm, fp or fifo.")

let format_arg =
  Arg.(value
       & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Diagnostics format: $(b,text) (human-readable, with \
                 source excerpts) or $(b,json) (the polychrony-diag/v1 \
                 schema).")

let cache_dir_arg =
  let env = Cmd.Env.info "CACHE_DIR" in
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~env ~docv:"DIR"
           ~doc:"Persistent content-addressed cache directory. \
                 Per-process pipeline results (typecheck, normalized \
                 model kernels, analyses) are stored under content \
                 digests, so a later invocation sharing $(docv) — even \
                 from a fresh process — replays them instead of \
                 recomputing. Also read from the $(b,CACHE_DIR) \
                 environment variable.")

let mode_arg =
  Arg.(value
       & opt
           (enum
              [ ("embedded", Trans.System_trans.Embedded);
                ("external", Trans.System_trans.External) ])
           Trans.System_trans.Embedded
       & info [ "mode" ] ~docv:"MODE"
           ~doc:"Scheduler translation mode: $(b,embedded) compiles the \
                 static schedule into SIGNAL scheduler processes; \
                 $(b,external) keeps scheduling exogenous (control \
                 events become top-level inputs driven from the \
                 schedule tables), so timing-only edits leave the \
                 generated program — and any cached compiled plan — \
                 byte-identical.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print the run-metrics report (engine fixpoint iterations, \
               instants/sec, clock-calculus, translation and scheduling \
               counters) on stdout after the command.")

let print_stats_if enabled =
  if enabled then Format.printf "%a@." Polychrony.Pipeline.pp_stats ()

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH"
         ~doc:"Record an execution trace of the run — toolchain spans \
               in host time plus the simulated schedule timeline (one \
               lane per thread: dispatch, input freeze, compute, \
               output send, deadline, deadline misses) — and write it \
               to $(docv).")

let trace_format_arg =
  Arg.(value
       & opt (enum [ ("chrome", `Chrome); ("text", `Text) ]) `Chrome
       & info [ "trace-format" ] ~docv:"FMT"
           ~doc:"Trace output format: $(b,chrome) (Chrome trace-event \
                 JSON, loadable in Perfetto or chrome://tracing) or \
                 $(b,text) (indented span tree).")

(* Run [f] under tracing when [--trace] was given. The trace is also
   written when [f] exits through the error paths above, which
   terminate the process with [exit]. *)
let with_trace_opt trace format f =
  match trace with
  | None -> f ()
  | Some path ->
    let written = ref false in
    let write () =
      if not !written then begin
        written := true;
        Putil.Tracing.set_enabled false;
        Putil.Tracing.write ~format path;
        Format.eprintf "trace written to %s@." path
      end
    in
    Putil.Tracing.reset ();
    Putil.Tracing.set_enabled true;
    at_exit write;
    Fun.protect ~finally:write f

let parse_cmd =
  let run file =
    let src = load_source file in
    match Aadl.Parser.parse_package src with
    | Ok pkg -> Format.printf "%a@." Aadl.Printer.pp_package pkg
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 1
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse an AADL package and echo it")
    Term.(const run $ file_arg)

let check_cmd =
  let run file root format =
    let src = load_source file in
    (* the whole pipeline runs so independent defects across layers —
       legality, instantiation, scheduling, typing, clocking — are
       reported in one invocation *)
    let diags =
      match Polychrony.Pipeline.analyze ~registry:Trans.Behavior.empty ?root ?file src with
      | Ok a -> a.Polychrony.Pipeline.diags
      | Error ds -> ds
    in
    print_diags ~format ~src diags;
    (match format, diags with
     | `Text, [] -> print_endline "no issues"
     | _ -> ());
    exit (Putil.Diag.exit_code diags)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Report every defect the pipeline can find, with stable \
             codes and source spans; exit 0/1/2 by worst severity")
    Term.(const run $ file_arg $ root_arg $ format_arg)

let translate_cmd =
  let run file root registry policy mode stats =
    let a = analyzed ~mode file root registry policy in
    Format.printf "%a@." Signal_lang.Pp.pp_program
      a.Polychrony.Pipeline.translation.Trans.System_trans.program;
    print_stats_if stats
  in
  Cmd.v (Cmd.info "translate" ~doc:"Emit the generated SIGNAL program")
    Term.(const run $ file_arg $ root_arg $ registry_arg $ policy_arg
          $ mode_arg $ stats_arg)

let schedule_cmd =
  let run file root registry policy stats =
    let a = analyzed file root registry policy in
    List.iter
      (fun (cpu, s) ->
        Format.printf "processor %s:@.%a@.%a@.%a@." cpu
          Sched.Static_sched.pp_schedule s Sched.Static_sched.pp_gantt s
          Sched.Export.pp_export s)
      a.Polychrony.Pipeline.translation.Trans.System_trans.schedules;
    print_stats_if stats
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Synthesize the static schedule and its affine clock export")
    Term.(const run $ file_arg $ root_arg $ registry_arg $ policy_arg
          $ stats_arg)

let analyze_cmd =
  let profile_arg =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Print the profiling-based timing report: static \
                 reaction cost of the generated program and, per \
                 processor, each thread's response-time, jitter and \
                 deadline-miss statistics over one hyper-period.")
  in
  let run file root registry policy mode cache_dir format profile stats
      trace trace_format =
    with_trace_opt trace trace_format @@ fun () ->
    let src = load_source file in
    let registry = or_die (registry_named registry) in
    let policy = or_die (policy_named policy) in
    let session = session_of cache_dir in
    match
      Polychrony.Pipeline.analyze ~session ~registry ~policy ~mode ?root
        ?file src
    with
    | Error ds ->
      print_diags ~format ~src ds;
      exit (Putil.Diag.exit_code ds)
    | Ok a ->
      (match format with
       | `Text ->
         Format.printf "%a@." Polychrony.Pipeline.pp_summary a;
         Format.printf "@.traceability:@.%a@." Trans.Traceability.pp
           a.Polychrony.Pipeline.translation.Trans.System_trans.trace;
         if a.Polychrony.Pipeline.diags <> [] then begin
           print_newline ();
           print_diags ~format ~src a.Polychrony.Pipeline.diags
         end
       | `Json -> print_diags ~format ~src a.Polychrony.Pipeline.diags);
      if profile then begin
        Format.printf "@.== profiling ==@.%a@."
          Analysis.Profiling.pp_report
          (Analysis.Profiling.static_costs a.Polychrony.Pipeline.kernel);
        List.iter
          (fun (cpu, s) ->
            Format.printf "processor %s:@.%a@." cpu
              Analysis.Profiling.pp_schedule_timing
              (Analysis.Profiling.schedule_timing s))
          a.Polychrony.Pipeline.translation.Trans.System_trans.schedules
      end;
      print_stats_if stats;
      exit (Putil.Diag.exit_code a.Polychrony.Pipeline.diags)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Clock calculus, determinism and deadlock reports; exit \
             0/1/2 by worst diagnostic severity")
    Term.(const run $ file_arg $ root_arg $ registry_arg $ policy_arg
          $ mode_arg $ cache_dir_arg $ format_arg $ profile_arg
          $ stats_arg $ trace_arg $ trace_format_arg)

let simulate_cmd =
  let hyper_arg =
    Arg.(value & opt int 2 & info [ "hyperperiods"; "n" ] ~docv:"N"
           ~doc:"Number of hyper-periods to run.")
  in
  let vcd_arg =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"PATH"
           ~doc:"Write the trace as a VCD file.")
  in
  let compiled_arg =
    Arg.(value & flag & info [ "compiled" ]
           ~doc:"Use the clock-directed compiled step instead of the \
                 fixpoint interpreter.")
  in
  let scenarios_arg =
    Arg.(value & opt int 1 & info [ "scenarios" ] ~docv:"K"
           ~doc:"Run K environment scenarios in lockstep over one \
                 compiled plan (scenario k delays each environment \
                 arrival by k base ticks). Prints the chronogram of \
                 scenario 0 and a per-scenario summary; implies the \
                 compiled path.")
  in
  let run file root registry policy mode cache_dir hyperperiods vcd
      compiled scenarios stats trace trace_format =
    with_trace_opt trace trace_format @@ fun () ->
    let session = session_of cache_dir in
    let a = analyzed ~session ~mode file root registry policy in
    let tr =
      if scenarios > 1 then begin
        let traces =
          match
            Polychrony.Pipeline.simulate_scenarios ~hyperperiods ~scenarios a
          with
          | Ok traces -> traces
          | Error ds ->
            prerr_string (Putil.Diag.render_list ds);
            exit (Putil.Diag.exit_code ds)
        in
        Format.printf "%d scenarios, %d instants each (lockstep)@."
          scenarios (Polysim.Trace.length traces.(0));
        Array.iteri
          (fun s tr ->
            let presences =
              List.fold_left
                (fun acc x -> acc + Polysim.Trace.present_count tr x)
                0
                (Polysim.Trace.observable tr)
            in
            Format.printf "  scenario %d: %d observable presences@." s
              presences)
          traces;
        traces.(0)
      end
      else
        match Polychrony.Pipeline.simulate ~compiled ~hyperperiods a with
        | Ok tr -> tr
        | Error ds ->
          prerr_string (Putil.Diag.render_list ds);
          exit (Putil.Diag.exit_code ds)
    in
    Format.printf "%a@." (fun ppf tr -> Polysim.Trace.chronogram ppf tr) tr;
    (match vcd with
     | Some path ->
       let s = Polychrony.Pipeline.vcd_of_trace a tr in
       let oc = open_out path in
       output_string oc s;
       close_out oc;
       Format.printf "VCD written to %s@." path
     | None -> ());
    print_stats_if stats
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the scheduled system and print a chronogram")
    Term.(const run $ file_arg $ root_arg $ registry_arg $ policy_arg
          $ mode_arg $ cache_dir_arg $ hyper_arg $ vcd_arg $ compiled_arg
          $ scenarios_arg $ stats_arg $ trace_arg $ trace_format_arg)

let latency_cmd =
  let src_arg =
    Arg.(required & opt (some string) None & info [ "src" ] ~docv:"PATH"
           ~doc:"Source feature path, e.g. ProdConsSys.env.pGo.")
  in
  let dst_arg =
    Arg.(required & opt (some string) None & info [ "dst" ] ~docv:"PATH"
           ~doc:"Destination feature path.")
  in
  let run file root registry policy src dst =
    let a = analyzed file root registry policy in
    let schedules =
      a.Polychrony.Pipeline.translation.Trans.System_trans.schedules
    in
    match
      Trans.Latency.analyze a.Polychrony.Pipeline.instance ~schedules ~src
        ~dst
    with
    | Ok r -> Format.printf "%a@." Trans.Latency.pp_report r
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 1
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:"End-to-end flow latency over the static schedule")
    Term.(const run $ file_arg $ root_arg $ registry_arg $ policy_arg
          $ src_arg $ dst_arg)

let codegen_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Write the generated C to this file (default stdout).")
  in
  let run file root registry policy out =
    let a = analyzed file root registry policy in
    match Polysim.Compile.compile a.Polychrony.Pipeline.kernel with
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 1
    | Ok c -> (
      match Polysim.Compile.to_c c with
      | Error m ->
        prerr_endline ("error: " ^ m);
        exit 1
      | Ok src -> (
        match out with
        | None -> print_string src
        | Some path ->
          let oc = open_out path in
          output_string oc src;
          close_out oc;
          Format.printf "C step function written to %s@." path))
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Generate a self-contained C program from the compiled plan")
    Term.(const run $ file_arg $ root_arg $ registry_arg $ policy_arg
          $ out_arg)

let verify_cmd =
  let depth_arg =
    Arg.(value & opt int 8 & info [ "depth" ] ~docv:"N"
           ~doc:"Exploration depth in base ticks.")
  in
  let signal_arg =
    Arg.(value & opt string "Alarm" & info [ "never" ] ~docv:"SIGNAL"
           ~doc:"Safety property: this signal is never present.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Explore each depth slice on N domains in parallel \
                 (default: the EXPLORE_JOBS environment variable, else \
                 1). The verdict and counterexample are identical for \
                 every N.")
  in
  let engine_arg =
    Arg.(value
         & opt
             (enum
                [ ("auto", `Auto); ("explicit", `Explicit);
                  ("symbolic", `Symbolic) ])
             `Auto
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Verification engine: $(b,explicit) enumerates states, \
                   $(b,symbolic) runs BDD image computation, $(b,auto) \
                   (default) tries symbolic and falls back to explicit \
                   when the model is outside the symbolic fragment.")
  in
  let counters_arg =
    Arg.(value & opt (some int) None & info [ "counters" ] ~docv:"K"
           ~doc:"Verify the built-in scaling model instead of an AADL \
                 file: K independent modulo-3 counters ($(b,3^K) \
                 reachable states); the property is that its alarm \
                 output never fires.")
  in
  let run file root registry policy depth signal jobs stats engine counters =
    let never, kernel, inputs =
      match counters with
      | Some k ->
        ("alarm", Polysim.Models.counters k, Polysim.Models.counters_inputs k)
      | None ->
        let a = analyzed file root registry policy in
        (signal, a.Polychrony.Pipeline.kernel,
         Polychrony.Pipeline.verify_inputs a)
    in
    (match
       Polychrony.Pipeline.verify_kernel ~depth ?jobs ~engine ~never ~inputs
         kernel
     with
     | Ok (verdict, states, decided) ->
       let eng =
         match decided with `Explicit -> "explicit" | `Symbolic -> "symbolic"
       in
       (match verdict with
        | Polysim.Explore.Holds ->
          Format.printf
            "HOLDS: %s never present within %d ticks for any environment pattern (%d states explored, %s engine)@."
            never depth states eng
        | Polysim.Explore.Violated trail ->
          Format.printf
            "VIOLATED after %d ticks (%d states explored, %s engine); stimulus trail:@."
            (List.length trail) states eng;
          List.iteri
            (fun t stim ->
              Format.printf "  t=%d: %s@." t
                (String.concat ", "
                   (List.map
                      (fun (n, v) ->
                        Printf.sprintf "%s=%s" n
                          (Signal_lang.Types.value_to_string v))
                      stim)))
            trail)
     | Error d ->
       prerr_endline (Putil.Diag.render d);
       exit (Putil.Diag.exit_code [ d ]));
    print_stats_if stats
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Bounded exhaustive verification of a safety property")
    Term.(const run $ file_arg $ root_arg $ registry_arg $ policy_arg
          $ depth_arg $ signal_arg $ jobs_arg $ stats_arg $ engine_arg
          $ counters_arg)

(* recheck: the paper's edit-recompile loop. Analyze once cold, apply a
   textual edit (by default a thread-period change), re-analyze on the
   same incremental session, and report which pipeline stages were
   skipped by digest. Translation runs in [External] scheduler mode so
   a timing-only edit leaves the generated program invariant and the
   whole back end (typecheck, normalization, clock/boolean analyses)
   replays from cache. *)
let recheck_cmd =
  let edit_from_arg =
    Arg.(value & opt string "Period => 4 ms" & info [ "edit-from" ]
           ~docv:"TEXT"
           ~doc:"Source fragment to replace (first occurrence).")
  in
  let edit_to_arg =
    Arg.(value & opt string "Period => 5 ms" & info [ "edit-to" ]
           ~docv:"TEXT" ~doc:"Replacement fragment.")
  in
  let verify_arg =
    Arg.(value & flag & info [ "verify-identical" ]
           ~doc:"Also run a fresh cold analysis of the edited source \
                 and assert that the incremental path produced \
                 byte-identical schedules, generated program and \
                 simulation trace; exit 1 on any difference.")
  in
  let replace_once ~sub ~by s =
    let n = String.length s and m = String.length sub in
    let rec find i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i ->
      Some (String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m))
  in
  (* everything the pipeline ultimately hands to the user: schedule
     tables, the generated SIGNAL text and the simulated chronogram *)
  let render_outputs a =
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    List.iter
      (fun (cpu, s) ->
        Format.fprintf ppf "processor %s:@.%a@." cpu
          Sched.Static_sched.pp_schedule s)
      a.Polychrony.Pipeline.translation.Trans.System_trans.schedules;
    Format.fprintf ppf "%a@." Signal_lang.Pp.pp_program
      a.Polychrony.Pipeline.translation.Trans.System_trans.program;
    (match Polychrony.Pipeline.simulate ~hyperperiods:2 a with
     | Ok tr -> Polysim.Trace.chronogram ppf tr
     | Error ds ->
       Format.fprintf ppf "simulate error:@.%s"
         (Putil.Diag.render_list ds));
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  in
  let run file root registry policy edit_from edit_to verify stats
      cache_dir =
    let src = load_source file in
    let registry = or_die (registry_named registry) in
    let policy = or_die (policy_named policy) in
    let edited =
      match replace_once ~sub:edit_from ~by:edit_to src with
      | Some s -> s
      | None ->
        Printf.eprintf "error: edit pattern %S not found in the source\n"
          edit_from;
        exit 1
    in
    let mode = Trans.System_trans.External in
    let analyze ?session s =
      match
        Polychrony.Pipeline.analyze ?session ~registry ~policy ~mode ?root
          ?file s
      with
      | Ok a ->
        if Putil.Diag.has_errors a.Polychrony.Pipeline.diags then begin
          print_diags ~oc:stderr ~format:`Text ~src:s
            a.Polychrony.Pipeline.diags;
          exit (Putil.Diag.exit_code a.Polychrony.Pipeline.diags)
        end;
        a
      | Error ds ->
        print_diags ~oc:stderr ~format:`Text ~src:s ds;
        exit (Putil.Diag.exit_code ds)
    in
    let store = store_of cache_dir in
    Clocks.Calculus.reset_cache ();
    let session = Polychrony.Pipeline.new_session ?store () in
    let t0 = Unix.gettimeofday () in
    let _cold = analyze ~session src in
    let t1 = Unix.gettimeofday () in
    let a_incr = analyze ~session edited in
    let t2 = Unix.gettimeofday () in
    let cold_ms = (t1 -. t0) *. 1e3 and incr_ms = (t2 -. t1) *. 1e3 in
    Format.printf "cold full analyze:      %8.2f ms@." cold_ms;
    Format.printf "incremental re-analyze: %8.2f ms  (edit %S -> %S)@."
      incr_ms edit_from edit_to;
    if incr_ms > 0. then
      Format.printf "speedup:                %8.1fx@." (cold_ms /. incr_ms);
    let a_warm =
      match store with
      | None -> None
      | Some _ ->
        (* a fresh session shares nothing in memory with the runs
           above, so this measures replay purely from the on-disk
           store — the cross-process warm-start path *)
        let fresh = Polychrony.Pipeline.new_session ?store () in
        let t3 = Unix.gettimeofday () in
        let a = analyze ~session:fresh edited in
        let t4 = Unix.gettimeofday () in
        Format.printf
          "fresh-session analyze:  %8.2f ms  (replayed from %s)@."
          ((t4 -. t3) *. 1e3)
          (Option.get cache_dir);
        Some a
    in
    let cval n = Putil.Metrics.counter_value Putil.Metrics.global n in
    Format.printf "stage traffic (cumulative over all runs):@.";
    List.iter
      (fun stage ->
        Format.printf
          "  %-12s ran=%d skipped=%d proc_ran=%d proc_skipped=%d@." stage
          (cval ("incr." ^ stage ^ ".ran"))
          (cval ("incr." ^ stage ^ ".skipped"))
          (cval ("incr." ^ stage ^ ".proc_ran"))
          (cval ("incr." ^ stage ^ ".proc_skipped")))
      [ "parse"; "instantiate"; "translate"; "typecheck"; "normalize";
        "analyses" ];
    if verify then begin
      Clocks.Calculus.reset_cache ();
      let a_cold = analyze edited in
      let r_incr = render_outputs a_incr in
      let r_cold = render_outputs a_cold in
      if String.equal r_incr r_cold then
        Format.printf
          "verify: incremental outputs byte-identical to a full rebuild \
           (%d bytes compared)@."
          (String.length r_incr)
      else begin
        Format.eprintf
          "error: incremental outputs differ from the full rebuild@.";
        exit 1
      end;
      match a_warm with
      | None -> ()
      | Some a_warm ->
        if String.equal (render_outputs a_warm) r_cold then
          Format.printf
            "verify: store-replayed outputs byte-identical to a full \
             rebuild@."
        else begin
          Format.eprintf
            "error: store-replayed outputs differ from the full rebuild@.";
          exit 1
        end
    end;
    print_stats_if stats
  in
  Cmd.v
    (Cmd.info "recheck"
       ~doc:"Measure the digest-driven incremental edit-recompile loop: \
             cold analysis, a timing edit, warm re-analysis with stage \
             skip counters, optionally asserting byte-identical outputs")
    Term.(const run $ file_arg $ root_arg $ registry_arg $ policy_arg
          $ edit_from_arg $ edit_to_arg $ verify_arg $ stats_arg
          $ cache_dir_arg)

(* One observation scope per input file: analyze + simulate each file
   inside its own Pipeline session, then expose the global roll-up plus
   every per-scope registry. This is the one-process shape of the
   planned analysis daemon (one scope per request). *)
let stats_cmd =
  let files_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"AADL source files, one observation scope each; the \
                 bundled ProducerConsumer case study when omitted.")
  in
  let stats_format_arg =
    Arg.(value
         & opt
             (enum
                [ ("text", `Text); ("json", `Json);
                  ("openmetrics", `OpenMetrics) ])
             `OpenMetrics
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Report format: $(b,openmetrics) (Prometheus text \
                   exposition, one sample set per scope label), \
                   $(b,json) or $(b,text).")
  in
  let flight_arg =
    Arg.(value & opt (some string) None
         & info [ "flight-recorder" ] ~docv:"PATH"
             ~doc:"Also write the polychrony-flight/v1 snapshot (the \
                   always-on bounded ring of recent span/instant/diag \
                   events per domain) to $(docv).")
  in
  let no_simulate_arg =
    Arg.(value & flag & info [ "no-simulate" ]
           ~doc:"Only analyze each file; skip the two-hyper-period \
                 simulation that populates the engine counters.")
  in
  let run files format registry policy no_simulate flight =
    let registry = or_die (registry_named registry) in
    let policy = or_die (policy_named policy) in
    let files = match files with [] -> [ None ] | fs -> List.map Option.some fs in
    let used = Hashtbl.create 8 in
    List.iter
      (fun file ->
        let base =
          match file with
          | Some f -> Filename.remove_extension (Filename.basename f)
          | None -> "producer_consumer"
        in
        (* scope labels must stay disjoint even when the same file is
           passed twice: suffix repeats deterministically *)
        let label =
          match Hashtbl.find_opt used base with
          | None -> Hashtbl.replace used base 1; base
          | Some n ->
            Hashtbl.replace used base (n + 1);
            Printf.sprintf "%s-%d" base (n + 1)
        in
        let session = Polychrony.Pipeline.new_session ~label () in
        let src = load_source file in
        match
          Polychrony.Pipeline.analyze ~session ~registry ~policy ?file src
        with
        | Error ds -> print_diags ~oc:stderr ~format:`Text ~src ds
        | Ok a ->
          if not no_simulate then (
            match Polychrony.Pipeline.simulate a with
            | Ok _ -> ()
            | Error ds -> print_diags ~oc:stderr ~format:`Text ~src ds))
      files;
    (match format with
     | `OpenMetrics -> print_string (Putil.Obs.to_openmetrics ())
     | `Json ->
       let j =
         Putil.Metrics.Json.Obj
           [ ("global", Polychrony.Pipeline.stats_json ());
             ( "scopes",
               Putil.Metrics.Json.Obj
                 (List.map
                    (fun s ->
                      ( Putil.Obs.scope_label s,
                        Putil.Metrics.to_json (Putil.Obs.scope_registry s) ))
                    (Putil.Obs.scopes ())) ) ]
       in
       print_endline (Putil.Metrics.Json.to_string j)
     | `Text ->
       Format.printf "== global ==@.%a@." Putil.Metrics.pp
         Putil.Metrics.global;
       List.iter
         (fun s ->
           Format.printf "== scope %s ==@.%a@." (Putil.Obs.scope_label s)
             Putil.Metrics.pp
             (Putil.Obs.scope_registry s))
         (Putil.Obs.scopes ()));
    match flight with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Putil.Obs.flight_recorder_to_string ());
          output_char oc '\n')
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Analyze (and simulate) each file inside its own \
             observation scope and expose the metrics: global roll-up \
             plus per-scope attribution, as OpenMetrics, JSON or text")
    Term.(const run $ files_arg $ stats_format_arg $ registry_arg
          $ policy_arg $ no_simulate_arg $ flight_arg)

let cache_cmd =
  let open_dir cache_dir =
    let dir =
      match cache_dir with
      | Some dir -> dir
      | None ->
        prerr_endline
          "error: pass --cache-dir DIR (or set the CACHE_DIR \
           environment variable)";
        exit 1
    in
    match Putil.Cache_store.open_store dir with
    | Ok s -> s
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 1
  in
  let stats_run cache_dir =
    let s = open_dir cache_dir in
    let st = Putil.Cache_store.stats s in
    Format.printf "cache %s:@." (Putil.Cache_store.dir s);
    Format.printf "  entries: %d@." st.Putil.Cache_store.entries;
    Format.printf "  bytes:   %d@." st.Putil.Cache_store.bytes;
    if st.Putil.Cache_store.corrupt > 0 then
      Format.printf "  corrupt entries discarded on scan: %d@."
        st.Putil.Cache_store.corrupt
  in
  let clear_run cache_dir =
    let s = open_dir cache_dir in
    let n = Putil.Cache_store.clear s in
    Format.printf "removed %d entries from %s@." n
      (Putil.Cache_store.dir s)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Inspect or clear a persistent --cache-dir store")
    [ Cmd.v
        (Cmd.info "stats"
           ~doc:"Entry count and payload bytes of the store")
        Term.(const stats_run $ cache_dir_arg);
      Cmd.v
        (Cmd.info "clear" ~doc:"Delete every entry in the store")
        Term.(const clear_run $ cache_dir_arg) ]

let () =
  let doc = "AADL to polychronous SIGNAL tool chain (ASME2SSME)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "asme2ssme" ~doc)
          [ parse_cmd; check_cmd; translate_cmd; schedule_cmd; analyze_cmd;
            simulate_cmd; latency_cmd; verify_cmd; codegen_cmd;
            recheck_cmd; cache_cmd; stats_cmd ]))
