(* Distribution and allocation (the paper's SynDEx connection,
   ref [17]): a radar processing chain too heavy for one processor.
   Threads carry no Actual_Processor_Binding, so the translator
   partitions them over the two declared processors (worst-fit
   decreasing validated by real schedule synthesis) and generates one
   scheduler per processor.

   Run with: dune exec examples/distributed.exe *)

let aadl =
  {|
package RadarChain
public
  thread frontend
    features raw: out event data port;
    properties Dispatch_Protocol => Periodic; Period => 4 ms;
      Compute_Execution_Time => 2 ms;
  end frontend;
  thread implementation frontend.impl end frontend.impl;

  thread tracker
    features
      raw: in event data port;
      track: out event data port;
    properties Dispatch_Protocol => Periodic; Period => 4 ms;
      Compute_Execution_Time => 2 ms;
  end tracker;
  thread implementation tracker.impl end tracker.impl;

  thread classifier_th
    features
      track: in event data port;
      verdict: out event data port;
    properties Dispatch_Protocol => Periodic; Period => 8 ms;
      Compute_Execution_Time => 3 ms;
  end classifier_th;
  thread implementation classifier_th.impl end classifier_th.impl;

  thread logger
    features verdict: in event data port;
    properties Dispatch_Protocol => Periodic; Period => 8 ms;
      Compute_Execution_Time => 2 ms;
  end logger;
  thread implementation logger.impl end logger.impl;

  process radar
    features out_verdict: out event data port;
  end radar;

  process implementation radar.impl
    subcomponents
      fe: thread frontend.impl;
      tk: thread tracker.impl;
      cl: thread classifier_th.impl;
      lg: thread logger.impl;
    connections
      k0: port fe.raw -> tk.raw;
      k1: port tk.track -> cl.track;
      k2: port cl.verdict -> lg.verdict;
      k3: port cl.verdict -> out_verdict;
  end radar.impl;

  processor dsp end dsp;
  processor implementation dsp.impl end dsp.impl;

  system console
    features verdicts: in event data port;
  end console;
  system implementation console.impl end console.impl;

  system installation end installation;
  system implementation installation.impl
    subcomponents
      proc: process radar.impl;
      cpu_a: processor dsp.impl;
      cpu_b: processor dsp.impl;
      ui: system console.impl;
    connections
      s0: port proc.out_verdict -> ui.verdicts;
  end installation.impl;
end RadarChain;
|}

module S = Sched.Static_sched
module T = Sched.Task

let () =
  (* total utilization: 2/4 + 2/4 + 3/8 + 2/8 = 1.625 — impossible on
     one processor, comfortable on two *)
  let a =
    match Polychrony.Pipeline.analyze aadl with
    | Ok a -> a
    | Error m -> failwith (Putil.Diag.list_to_string m)
  in
  let schedules = a.Polychrony.Pipeline.translation.Trans.System_trans.schedules in
  Format.printf "=== automatic partitioning over %d processors ===@."
    (List.length schedules);
  List.iter
    (fun (cpu, s) ->
      let tasks =
        List.sort_uniq compare
          (List.map (fun j -> j.S.j_task.T.t_name) s.S.jobs)
      in
      let util =
        List.fold_left
          (fun acc (_, ts) ->
            acc
            +. List.fold_left
                 (fun acc t ->
                   if List.mem t.T.t_name tasks then
                     acc
                     +. (float_of_int t.T.wcet_us /. float_of_int t.T.period_us)
                   else acc)
                 0.0 ts)
          0.0 a.Polychrony.Pipeline.translation.Trans.System_trans.tasks
      in
      Format.printf "@.%s (utilization %.2f):@.%a@." cpu util S.pp_gantt s)
    schedules;

  (* the architecture-exploration question: how few processors would do? *)
  let all_tasks =
    List.concat_map snd a.Polychrony.Pipeline.translation.Trans.System_trans.tasks
  in
  (match Sched.Alloc.min_processors all_tasks with
   | Some (n, _) ->
     Format.printf "@.minimum processors for this task set: %d@." n
   | None -> Format.printf "@.no feasible allocation within bounds@.");

  (* and it runs: both schedulers tick, data crosses the chain *)
  match Polychrony.Pipeline.simulate ~compiled:true ~hyperperiods:3 a with
  | Error m -> failwith (Putil.Diag.list_to_string m)
  | Ok tr ->
    Format.printf "@.=== execution (both processors ticking) ===@.";
    Polysim.Trace.chronogram
      ~signals:
        [ "proc_fe_dispatch"; "proc_tk_dispatch"; "proc_cl_dispatch";
          "proc_lg_dispatch"; "ui_verdicts"; "Alarm" ]
      ~until_instant:32 Format.std_formatter tr;
    Format.printf "@.verdicts delivered: %d, alarms: %d@."
      (Polysim.Trace.present_count tr "ui_verdicts")
      (Polysim.Trace.present_count tr "Alarm")
