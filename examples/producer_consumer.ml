(* The paper's avionic ProducerConsumer case study (Sec. II, V),
   end to end: legality, scheduling, clock analysis, nominal and
   fault-injection simulation, VCD export.

   Run with: dune exec examples/producer_consumer.exe *)

module P = Polychrony.Pipeline
module CS = Polychrony.Case_study

let analyze registry =
  match P.analyze ~registry CS.aadl_source with
  | Ok a -> a
  | Error m -> failwith (Putil.Diag.list_to_string m)

let () =
  (* nominal behaviour: timers are started and stopped every job *)
  let a = analyze CS.registry_nominal in
  Format.printf "%a@.@." P.pp_summary a;

  let tr =
    match P.simulate ~hyperperiods:3 a with
    | Ok tr -> tr
    | Error m -> failwith (Putil.Diag.list_to_string m)
  in
  Format.printf "=== nominal run, 3 hyper-periods (72 ms) ===@.";
  Polysim.Trace.chronogram
    ~signals:
      [ "prProdCons_thProducer_dispatch"; "prProdCons_thProducer_reqQueue_w";
        "prProdCons_Queue_data"; "prProdCons_Queue_size";
        "prProdCons_thConsumer_pConsOut"; "display_pData"; "Alarm" ]
    Format.std_formatter tr;
  Format.printf "@.consumed values: %s@.@."
    (String.concat ", "
       (List.map Signal_lang.Types.value_to_string
          (Polysim.Trace.values_of tr "display_pData")));

  (* write the VCD trace for any waveform viewer (paper ref [18]);
     under the temp dir so example runs leave no strays in the tree *)
  let vcd_path =
    Filename.concat (Filename.get_temp_dir_name ()) "prodcons.vcd"
  in
  Polysim.Vcd.to_file vcd_path tr;
  Format.printf "VCD written to %s@.@." vcd_path;

  (* fault injection: the producer and consumer arm their timers but
     never stop them — pTimeOut must reach the operator display *)
  let a_fault = analyze CS.registry_timeout in
  let tr_fault =
    match P.simulate ~hyperperiods:3 a_fault with
    | Ok tr -> tr
    | Error m -> failwith (Putil.Diag.list_to_string m)
  in
  Format.printf "=== fault injection: timers never stopped ===@.";
  Polysim.Trace.chronogram
    ~signals:
      [ "prProdCons_thProdTimer_pTimeOut"; "prProdCons_thConsTimer_pTimeOut";
        "display_pProdAlarm"; "display_pConsAlarm" ]
    Format.std_formatter tr_fault;
  Format.printf
    "@.producer timeout at instants: %s@.consumer timeout at instants: %s@."
    (String.concat ", "
       (List.map string_of_int
          (Polysim.Trace.tick_instants tr_fault "display_pProdAlarm")))
    (String.concat ", "
       (List.map string_of_int
          (Polysim.Trace.tick_instants tr_fault "display_pConsAlarm")))
