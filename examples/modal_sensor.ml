(* Modes extension (the paper's Sec. VII perspective): an AADL thread
   with a mode automaton, translated to a SIGNAL automaton, analyzed
   and executed through a fault/recovery scenario.

   Run with: dune exec examples/modal_sensor.exe *)

module B = Signal_lang.Builder

let aadl =
  {|
package ModalSensor
public
  -- A sensor that switches between full-rate and degraded acquisition:
  -- a fault event degrades it, an operator reset restores it.
  thread sensor
    features
      pFault: in event port;
      pReset: in event port;
      sample: out event data port;
    modes
      Nominal: initial mode;
      Degraded: mode;
      t_fail: Nominal -[ pFault ]-> Degraded;
      t_heal: Degraded -[ pReset ]-> Nominal;
    properties
      Dispatch_Protocol => Periodic;
      Period => 5 ms;
      Compute_Execution_Time => 1 ms;
  end sensor;

  thread implementation sensor.impl
  end sensor.impl;

  process acquisition
    features
      pFault: in event port;
      pReset: in event port;
      out_data: out event data port;
  end acquisition;

  process implementation acquisition.impl
    subcomponents
      s: thread sensor.impl;
    connections
      k0: port pFault -> s.pFault;
      k1: port pReset -> s.pReset;
      k2: port s.sample -> out_data;
  end acquisition.impl;

  processor cpu end cpu;
  processor implementation cpu.impl end cpu.impl;

  system plant
    features
      fault: out event port;
      reset: out event port;
  end plant;
  system implementation plant.impl end plant.impl;

  system console
    features
      data: in event data port;
  end console;
  system implementation console.impl end console.impl;

  system station end station;
  system implementation station.impl
    subcomponents
      plant: system plant.impl;
      console: system console.impl;
      acq: process acquisition.impl;
      cpu0: processor cpu.impl;
    connections
      s0: port plant.fault -> acq.pFault;
      s1: port plant.reset -> acq.pReset;
      s2: port acq.out_data -> console.data;
    properties
      Actual_Processor_Binding => reference (cpu0) applies to acq;
  end station.impl;
end ModalSensor;
|}

(* the sensor's computation depends on its mode: real samples in
   Nominal, a safe constant in Degraded *)
let registry : Trans.Behavior.registry =
  Trans.Behavior.make ~id:"modal_sensor:sensor"
  [ ("sensor",
     fun ctx ->
       let cnt_stmts, n = Trans.Behavior.job_counter ctx in
       let nominal = ctx.Trans.Behavior.in_mode "Nominal" in
       cnt_stmts
       @ B.[ ctx.Trans.Behavior.out_item "sample"
             := if_ nominal (n * i 10) (i (-1)) ]) ]

let () =
  let a =
    match Polychrony.Pipeline.analyze ~registry aadl with
    | Ok a -> a
    | Error m -> failwith (Putil.Diag.list_to_string m)
  in
  Format.printf "%a@.@." Polychrony.Pipeline.pp_summary a;

  (* the generated SIGNAL automaton for the sensor *)
  let prog = a.Polychrony.Pipeline.translation.Trans.System_trans.program in
  (match Signal_lang.Ast.find_process prog "th_station_acq_s" with
   | Some p ->
     Format.printf "=== SIGNAL automaton (mode logic) ===@.";
     List.iter
       (fun stmt ->
         let s = Signal_lang.Pp.stmt_to_string stmt in
         let mentions needle =
           let nh = String.length s and nn = String.length needle in
           let rec go i =
             i + nn <= nh && (String.sub s i nn = needle || go (i + 1))
           in
           go 0
         in
         if mentions "Mode" || mentions "guard" then
           Format.printf "  %s@." s)
       p.Signal_lang.Ast.body
   | None -> ());

  (* fault at 12 ms, reset at 37 ms *)
  let env t =
    if t = 12 then [ ("plant_fault", 1) ]
    else if t = 37 then [ ("plant_reset", 1) ]
    else []
  in
  match Polychrony.Pipeline.simulate ~compiled:true ~env ~hyperperiods:12 a with
  | Error m -> failwith (Putil.Diag.list_to_string m)
  | Ok tr ->
    Format.printf "@.=== fault at 12 ms, reset at 37 ms ===@.";
    Polysim.Trace.chronogram
      ~signals:
        [ "acq_s_dispatch"; "plant_fault"; "plant_reset"; "acq_s_mode";
          "console_data" ]
      ~until_instant:60 Format.std_formatter tr;
    Format.printf
      "@.mode 0 = Nominal, 1 = Degraded; degraded samples read -1@."
