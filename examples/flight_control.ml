(* A harmonic multirate flight-control chain — the classic avionic
   workload the paper's intro motivates: fast inner loop, slower
   guidance, slow navigation, communicating through data ports.

   Demonstrates:
   - data-port (freeze/send) translation rather than event queues;
   - affine-relation analysis between the rates (Sec. IV-D);
   - profiling-based cost estimation (ref [16]).

   Run with: dune exec examples/flight_control.exe *)

let aadl =
  {|
package FlightControl
public
  thread navigation
    features
      position: out data port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 40 ms;
      Compute_Execution_Time => 6 ms;
  end navigation;

  thread implementation navigation.impl
  end navigation.impl;

  thread guidance
    features
      position: in data port;
      setpoint: out data port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 20 ms;
      Compute_Execution_Time => 4 ms;
  end guidance;

  thread implementation guidance.impl
  end guidance.impl;

  thread control
    features
      setpoint: in data port;
      surface: out data port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 10 ms;
      Compute_Execution_Time => 2 ms;
  end control;

  thread implementation control.impl
  end control.impl;

  process fcs
    features
      surface_cmd: out data port;
  end fcs;

  process implementation fcs.impl
    subcomponents
      nav: thread navigation.impl;
      gdn: thread guidance.impl;
      ctl: thread control.impl;
    connections
      k0: port nav.position -> gdn.position;
      k1: port gdn.setpoint -> ctl.setpoint;
      k2: port ctl.surface -> surface_cmd;
  end fcs.impl;

  processor fcc
  end fcc;

  processor implementation fcc.impl
  end fcc.impl;

  system actuators
    features
      surface: in data port;
  end actuators;

  system implementation actuators.impl
  end actuators.impl;

  system aircraft
  end aircraft;

  system implementation aircraft.impl
    subcomponents
      flight: process fcs.impl;
      cpu: processor fcc.impl;
      servo: system actuators.impl;
    connections
      s0: port flight.surface_cmd -> servo.surface;
    properties
      Actual_Processor_Binding => reference (cpu) applies to flight;
  end aircraft.impl;
end FlightControl;
|}

module S = Sched.Static_sched
module A = Clocks.Affine

let () =
  let a =
    match Polychrony.Pipeline.analyze aadl with
    | Ok a -> a
    | Error m -> failwith (Putil.Diag.list_to_string m)
  in
  let cpu, sched =
    match a.Polychrony.Pipeline.translation.Trans.System_trans.schedules with
    | [ one ] -> one
    | _ -> failwith "one processor expected"
  in
  Format.printf "=== schedule on %s ===@.%a@." cpu S.pp_schedule sched;

  (* affine relations between the three rates (paper Sec. IV-D):
     control is a (1,0,2) subsampling reference for guidance, which is
     a (1,0,2) reference for navigation; composition gives (1,0,4). *)
  let dispatch name =
    match S.event_affine sched ("aircraft.flight." ^ name) S.Dispatch with
    | Some p -> p
    | None -> failwith (name ^ " dispatch not periodic?")
  in
  let ctl = dispatch "ctl" and gdn = dispatch "gdn" and nav = dispatch "nav" in
  let rel_cg = Option.get (A.relation_of ~base:ctl gdn) in
  let rel_gn = Option.get (A.relation_of ~base:gdn nav) in
  let rel_cn = Option.get (A.relation_of ~base:ctl nav) in
  Format.printf
    "@.affine relations between dispatch clocks:@.\
     control->guidance   %a@.guidance->navigation %a@.\
     control->navigation %a (= composition %a)@."
    A.pp_relation rel_cg A.pp_relation rel_gn A.pp_relation rel_cn
    A.pp_relation (A.compose rel_cg rel_gn);
  assert (A.equivalent rel_cn (A.compose rel_cg rel_gn));

  (* profiling the translated program with the default cost model *)
  let prof = Analysis.Profiling.static_costs a.Polychrony.Pipeline.kernel in
  Format.printf "@.%a@." Analysis.Profiling.pp_report prof;

  (* run it: the data-port chain forwards values down the rates *)
  match Polychrony.Pipeline.simulate ~hyperperiods:3 a with
  | Error m -> failwith (Putil.Diag.list_to_string m)
  | Ok tr ->
    Format.printf "@.=== dataflow across rates (120 ms) ===@.";
    Polysim.Trace.chronogram
      ~signals:
        [ "flight_nav_dispatch"; "flight_nav_position";
          "flight_gdn_dispatch"; "flight_gdn_setpoint";
          "flight_ctl_dispatch"; "flight_ctl_surface"; "servo_surface";
          "Alarm" ]
      Format.std_formatter tr;
    Format.printf "@.servo commands received: %d, alarms: %d@."
      (Polysim.Trace.present_count tr "servo_surface")
      (Polysim.Trace.present_count tr "Alarm")
