(* Quickstart: a two-thread AADL model, analyzed and simulated in a few
   calls.

   Run with: dune exec examples/quickstart.exe *)

let aadl =
  {|
package Quickstart
public
  thread sensor
    features
      sample: out event data port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 10 ms;
      Compute_Execution_Time => 2 ms;
  end sensor;

  thread implementation sensor.impl
  end sensor.impl;

  thread filter
    features
      raw: in event data port;
      smoothed: out event data port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 20 ms;
      Compute_Execution_Time => 4 ms;
  end filter;

  thread implementation filter.impl
  end filter.impl;

  process app
    features
      result: out event data port;
  end app;

  process implementation app.impl
    subcomponents
      sensor: thread sensor.impl;
      filter: thread filter.impl;
    connections
      k0: port sensor.sample -> filter.raw;
      k1: port filter.smoothed -> result;
  end app.impl;

  processor cpu
  end cpu;

  processor implementation cpu.impl
  end cpu.impl;

  system rig
  end rig;

  system implementation rig.impl
    subcomponents
      main: process app.impl;
      cpu0: processor cpu.impl;
      sink: system monitor.impl;
    connections
      s0: port main.result -> sink.display;
    properties
      Actual_Processor_Binding => reference (cpu0) applies to main;
  end rig.impl;

  system monitor
    features
      display: in event data port;
  end monitor;

  system implementation monitor.impl
  end monitor.impl;
end Quickstart;
|}

let () =
  (* 1. parse + instantiate + translate + analyze in one call *)
  let a =
    match Polychrony.Pipeline.analyze aadl with
    | Ok a -> a
    | Error m -> failwith (Putil.Diag.list_to_string m)
  in
  Format.printf "=== analysis summary ===@.%a@." Polychrony.Pipeline.pp_summary
    a;

  (* 2. the generated SIGNAL process for the sensor thread *)
  let prog = a.Polychrony.Pipeline.translation.Trans.System_trans.program in
  (match Signal_lang.Ast.find_process prog "th_rig_main_sensor" with
   | Some p ->
     Format.printf "=== generated SIGNAL (sensor thread) ===@.%a@.@."
       Signal_lang.Pp.pp_process p
   | None -> ());

  (* 3. simulate four hyper-periods and display the dataflow *)
  match Polychrony.Pipeline.simulate ~hyperperiods:4 a with
  | Error m -> failwith (Putil.Diag.list_to_string m)
  | Ok tr ->
    Format.printf "=== chronogram (first 2 hyper-periods) ===@.";
    Polysim.Trace.chronogram
      ~signals:
        [ "main_sensor_dispatch"; "main_sensor_sample"; "main_filter_dispatch";
          "main_filter_smoothed"; "sink_display"; "Alarm" ]
      ~until_instant:40 Format.std_formatter tr;
    Format.printf "@.filter outputs: %s@."
      (String.concat ", "
         (List.map Signal_lang.Types.value_to_string
            (Polysim.Trace.values_of tr "sink_display")))
