(* Unit and property tests for Putil.Mathx. *)

module M = Putil.Mathx

let check = Alcotest.(check int)

let test_gcd () =
  check "gcd 12 18" 6 (M.gcd 12 18);
  check "gcd 0 5" 5 (M.gcd 0 5);
  check "gcd 5 0" 5 (M.gcd 5 0);
  check "gcd 0 0" 0 (M.gcd 0 0);
  check "gcd negative" 6 (M.gcd (-12) 18);
  check "gcd both negative" 6 (M.gcd (-12) (-18));
  check "gcd coprime" 1 (M.gcd 17 13)

let test_lcm () =
  check "lcm 4 6" 12 (M.lcm 4 6);
  check "lcm 4 0" 0 (M.lcm 4 0);
  check "lcm 1 9" 9 (M.lcm 1 9);
  check "lcm of paper periods" 24 (M.lcm_list [ 4; 6; 8; 8 ]);
  check "lcm_list empty" 1 (M.lcm_list []);
  check "gcd_list" 4 (M.gcd_list [ 8; 12; 20 ])

let test_lcm_overflow () =
  (match M.lcm max_int 2 with
   | n -> Alcotest.failf "lcm max_int 2 returned %d instead of raising" n
   | exception M.Overflow _ -> ());
  (match M.lcm min_int 3 with
   | n -> Alcotest.failf "lcm min_int 3 returned %d instead of raising" n
   | exception M.Overflow _ -> ());
  (match M.lcm_list [ 4; 6; max_int - 1 ] with
   | n -> Alcotest.failf "overflowing lcm_list returned %d" n
   | exception M.Overflow _ -> ());
  (* large-but-representable results still come back exactly *)
  let half = max_int / 2 in
  check "lcm (max_int/2) 2" (half * 2) (M.lcm half 2);
  check "lcm max_int max_int" max_int (M.lcm max_int max_int);
  check "lcm max_int 1" max_int (M.lcm max_int 1);
  check "lcm 0 max_int" 0 (M.lcm 0 max_int)

let test_hyperperiod_overflow () =
  let task period = Sched.Task.make ~name:"t" ~period_us:period ~wcet_us:1 () in
  (* two large coprime periods whose lcm exceeds the native int range *)
  let huge = [ task (max_int - 1); task ((max_int / 2) - 1) ] in
  (match Sched.Task.hyperperiod_us huge with
   | n -> Alcotest.failf "hyperperiod_us returned %d instead of raising" n
   | exception Invalid_argument _ -> ());
  Alcotest.(check int) "sane hyper-period still works" 24
    (Sched.Task.hyperperiod_us [ task 4; task 6; task 8 ])

let test_egcd () =
  let g, u, v = M.egcd 240 46 in
  check "egcd gcd" 2 g;
  check "egcd identity" 2 ((240 * u) + (46 * v))

let test_diophantine () =
  (match M.solve_diophantine 3 5 7 with
   | Some (x, y) -> check "3x+5y=7" 7 ((3 * x) + (5 * y))
   | None -> Alcotest.fail "3x+5y=7 has solutions");
  (match M.solve_diophantine 4 6 7 with
   | Some _ -> Alcotest.fail "4x+6y=7 has no solution"
   | None -> ());
  match M.solve_diophantine 0 0 0 with
  | Some (x, y) -> check "trivial x" 0 x; check "trivial y" 0 y
  | None -> Alcotest.fail "0x+0y=0 is solvable"

let test_divisions () =
  check "floor_div pos" 2 (M.floor_div 7 3);
  check "floor_div neg" (-3) (M.floor_div (-7) 3);
  check "ceil_div pos" 3 (M.ceil_div 7 3);
  check "ceil_div neg" (-2) (M.ceil_div (-7) 3);
  check "floor_div exact" (-2) (M.floor_div (-6) 3);
  check "ceil_div exact" 2 (M.ceil_div 6 3);
  check "pos_mod" 2 (M.pos_mod (-7) 3);
  check "pos_mod positive" 1 (M.pos_mod 7 3)

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both operands" ~count:500
    QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      let g = M.gcd a b in
      if a = 0 && b = 0 then g = 0 else a mod g = 0 && b mod g = 0)

let prop_lcm_multiple =
  QCheck2.Test.make ~name:"lcm is a common multiple" ~count:500
    QCheck2.Gen.(pair (int_range 1 500) (int_range 1 500))
    (fun (a, b) ->
      let l = M.lcm a b in
      l mod a = 0 && l mod b = 0 && l <= a * b)

(* over the full int range, lcm either returns an exact common multiple
   or raises Overflow — never a silently wrapped value *)
let prop_lcm_exact_or_raises =
  QCheck2.Test.make ~name:"lcm is exact or raises Overflow" ~count:500
    QCheck2.Gen.(
      pair
        (oneof [ int_range 1 1000; int_range (max_int / 2) max_int ])
        (oneof [ int_range 1 1000; int_range (max_int / 2) max_int ]))
    (fun (a, b) ->
      match M.lcm a b with
      | l -> l > 0 && l mod a = 0 && l mod b = 0
      | exception M.Overflow _ -> true)

let prop_egcd_bezout =
  QCheck2.Test.make ~name:"egcd satisfies Bezout" ~count:500
    QCheck2.Gen.(pair (int_range (-500) 500) (int_range (-500) 500))
    (fun (a, b) ->
      let g, u, v = M.egcd a b in
      (a * u) + (b * v) = g && g = M.gcd a b)

let prop_floor_ceil =
  QCheck2.Test.make ~name:"floor_div/ceil_div bracket the quotient" ~count:500
    QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range 1 50))
    (fun (a, b) ->
      let f = M.floor_div a b and c = M.ceil_div a b in
      f * b <= a && a <= c * b && c - f <= 1)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_gcd_divides; prop_lcm_multiple; prop_lcm_exact_or_raises;
      prop_egcd_bezout; prop_floor_ceil ]

let suite =
  [ ("mathx",
     [ Alcotest.test_case "gcd" `Quick test_gcd;
       Alcotest.test_case "lcm" `Quick test_lcm;
       Alcotest.test_case "lcm overflow" `Quick test_lcm_overflow;
       Alcotest.test_case "hyperperiod overflow" `Quick
         test_hyperperiod_overflow;
       Alcotest.test_case "egcd" `Quick test_egcd;
       Alcotest.test_case "diophantine" `Quick test_diophantine;
       Alcotest.test_case "integer divisions" `Quick test_divisions ]
     @ qsuite) ]
