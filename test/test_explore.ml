(* Bounded exhaustive exploration: safety properties verified over ALL
   input patterns up to a depth, with counterexamples when violated. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module E = Polysim.Explore

let vi n = Types.Vint n
let ve = Types.Vevent

(* the timer never raises a timeout before [duration] ticks have
   elapsed since the last arm, whatever the start/stop/tick pattern *)
let test_timer_never_early () =
  let p =
    B.proc ~name:"use_timer"
      ~inputs:[ Ast.var "go" Types.Tevent; Ast.var "halt" Types.Tevent;
                Ast.var "tk" Types.Tevent ]
      ~outputs:[ Ast.var "out" Types.Tevent ]
      B.[ inst ~params:[ vi 3 ] ~label:"tm" "timer"
            [ v "go"; v "halt"; v "tk" ] [ "out" ] ]
  in
  let kp = N.process_exn p in
  (* within 3 instants a duration-3 timer can never expire *)
  match
    E.check ~depth:3
      ~inputs:
        [ ("go", [ None; Some ve ]); ("halt", [ None; Some ve ]);
          ("tk", [ None; Some ve ]) ]
      ~safe:(fun present -> not (List.mem_assoc "out" present))
      kp
  with
  | Ok (E.Holds, states) ->
    Alcotest.(check bool) "explored several states" true (states > 1)
  | Ok (E.Violated tr, _) ->
    Alcotest.fail
      (Printf.sprintf "early timeout after %d instants" (List.length tr))
  | Error m -> Alcotest.fail (Putil.Diag.to_string m)

let test_timer_can_expire () =
  (* at depth 5 the timeout IS reachable: arm then tick 4 times *)
  let p =
    B.proc ~name:"use_timer"
      ~inputs:[ Ast.var "go" Types.Tevent; Ast.var "halt" Types.Tevent;
                Ast.var "tk" Types.Tevent ]
      ~outputs:[ Ast.var "out" Types.Tevent ]
      B.[ inst ~params:[ vi 3 ] ~label:"tm" "timer"
            [ v "go"; v "halt"; v "tk" ] [ "out" ] ]
  in
  let kp = N.process_exn p in
  match
    E.check ~depth:5
      ~inputs:
        [ ("go", [ None; Some ve ]); ("halt", [ None; Some ve ]);
          ("tk", [ None; Some ve ]) ]
      ~safe:(fun present -> not (List.mem_assoc "out" present))
      kp
  with
  | Ok (E.Violated trail, _) ->
    Alcotest.(check bool) "counterexample within depth" true
      (List.length trail <= 5 && List.length trail >= 4)
  | Ok (E.Holds, _) -> Alcotest.fail "timeout must be reachable at depth 5"
  | Error m -> Alcotest.fail (Putil.Diag.to_string m)

(* the fm memory law universally: o equals the last present i *)
let test_fm_law_universal () =
  let p =
    B.proc ~name:"use_fm"
      ~inputs:[ Ast.var "i" Types.Tint; Ast.var "b" Types.Tbool ]
      ~outputs:[ Ast.var "o" Types.Tint ]
      B.[ inst ~label:"mem" "fm" [ v "i"; v "b" ] [ "o" ] ]
  in
  let kp = N.process_exn p in
  (* per-instant consistency: whenever i and b=true are both present,
     o must be present and equal to i (the instantaneous half of the
     fm law; the memory half is covered by the engine tests) *)
  let safe present =
    match List.assoc_opt "i" present, List.assoc_opt "b" present,
          List.assoc_opt "o" present
    with
    | Some (Types.Vint n), Some bv, Some (Types.Vint m)
      when (match bv with Types.Vbool b -> b | _ -> false) ->
      n = m
    | Some _, Some bv, None
      when (match bv with Types.Vbool b -> b | _ -> false) ->
      false (* i and b=true present but o absent: violates fm *)
    | _ -> true
  in
  match
    E.check ~depth:5
      ~inputs:
        [ ("i", [ None; Some (vi 1); Some (vi 2) ]);
          ("b", [ None; Some (Types.Vbool true); Some (Types.Vbool false) ]) ]
      ~safe kp
  with
  | Ok (E.Holds, states) ->
    (* the memory cell ranges over {init, 1, 2}: the breadth-first
       search counts each distinct state exactly once *)
    Alcotest.(check int) "distinct memory states" 3 states
  | Ok (E.Violated _, _) -> Alcotest.fail "fm law violated"
  | Error m -> Alcotest.fail (Putil.Diag.to_string m)

let test_counterexample_replays () =
  (* a deliberately falsifiable property: the counter never reaches 3 *)
  let p =
    B.proc ~name:"use_counter"
      ~inputs:[ Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "n" Types.Tint ]
      B.[ inst ~label:"c" "counter" [ v "e" ] [ "n" ] ]
  in
  let kp = N.process_exn p in
  match
    E.check ~depth:6
      ~inputs:[ ("e", [ None; Some ve ]) ]
      ~safe:(fun present -> List.assoc_opt "n" present <> Some (vi 3))
      kp
  with
  | Ok (E.Violated trail, _) -> (
    (* the trail, replayed on the interpreter, reproduces the bug *)
    Alcotest.(check int) "trail carries three events" 3
      (List.length (List.filter (fun s -> s <> []) trail));
    match Polysim.Engine.run kp ~stimuli:trail with
    | Ok tr ->
      let last = Polysim.Trace.length tr - 1 in
      Alcotest.(check bool) "replay reaches n=3" true
        (Polysim.Trace.get tr last "n" = Some (vi 3))
    | Error m -> Alcotest.fail m)
  | Ok (E.Holds, _) -> Alcotest.fail "n=3 is reachable"
  | Error m -> Alcotest.fail (Putil.Diag.to_string m)

let test_state_pruning_counts () =
  (* a 1-bit toggle has exactly 2 distinct states regardless of depth *)
  let p =
    B.proc ~name:"toggle"
      ~inputs:[ Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "q" Types.Tbool ]
      B.[ "q" := not_ (delay ~init:(Types.Vbool false) (v "q"));
          clk (v "q") ^= clk (v "e") ]
  in
  let kp = N.process_exn p in
  match
    E.reachable_states ~depth:10 ~inputs:[ ("e", [ None; Some ve ]) ] kp
  with
  | Ok n -> Alcotest.(check int) "two states" 2 n
  | Error m -> Alcotest.fail (Putil.Diag.to_string m)

let test_uncompilable_rejected () =
  let p =
    B.proc ~name:"cyclic"
      ~inputs:[ Ast.var "x" Types.Tint ]
      ~outputs:[ Ast.var "y" Types.Tint ]
      ~locals:[ Ast.var "w" Types.Tint ]
      B.[ "y" := v "w" + v "x"; "w" := v "y" + i 1 ]
  in
  let kp = N.process_exn p in
  match E.check ~inputs:[] ~safe:(fun _ -> true) kp with
  | Ok _ -> Alcotest.fail "cyclic process must not explore"
  | Error _ -> ()

(* the parallel frontier search returns bit-identical results for any
   job count and any scheduling: verdict, counterexample and state
   count *)
let two_counters =
  lazy
    (N.process_exn
       (B.proc ~name:"two_counters"
          ~inputs:[ Ast.var "e0" Types.Tevent; Ast.var "e1" Types.Tevent ]
          ~outputs:[ Ast.var "n0" Types.Tint; Ast.var "n1" Types.Tint ]
          B.[ inst ~label:"c0" "counter" [ v "e0" ] [ "n0" ];
              inst ~label:"c1" "counter" [ v "e1" ] [ "n1" ] ]))

let two_counter_inputs =
  [ ("e0", [ None; Some ve ]); ("e1", [ None; Some ve ]) ]

let test_parallel_determinism () =
  let kp = Lazy.force two_counters in
  (* falsifiable: counter 0 reaches 2 — many equally-deep witnesses, so
     determinism of the reported one is the interesting part *)
  let safe present = List.assoc_opt "n0" present <> Some (vi 2) in
  let runs =
    List.map
      (fun jobs ->
        E.check ~depth:6 ~jobs ~inputs:two_counter_inputs ~safe kp)
      [ 1; 2; 4; 4; 4 ]
  in
  match runs with
  | first :: rest ->
    List.iteri
      (fun i r ->
        Alcotest.(check bool)
          (Printf.sprintf "run %d identical to jobs:1" (i + 1))
          true (r = first))
      rest;
    (match first with
     | Ok (E.Violated trail, _) ->
       (* the BFS minimum: two events on e0, nothing longer *)
       Alcotest.(check int) "shallowest counterexample" 2 (List.length trail)
     | _ -> Alcotest.fail "expected a violation")
  | [] -> assert false

let test_parallel_matches_dfs_verdict () =
  let kp = Lazy.force two_counters in
  let holds present = List.assoc_opt "n1" present <> Some (vi 9) in
  let violated present = List.assoc_opt "n1" present <> Some (vi 3) in
  List.iter
    (fun safe ->
      let d = E.check_dfs ~depth:5 ~inputs:two_counter_inputs ~safe kp in
      List.iter
        (fun jobs ->
          let b = E.check ~depth:5 ~jobs ~inputs:two_counter_inputs ~safe kp in
          match (d, b) with
          | Ok (E.Holds, _), Ok (E.Holds, _) -> ()
          | Ok (E.Violated _, _), Ok (E.Violated _, _) -> ()
          | _ -> Alcotest.fail "parallel verdict differs from DFS")
        [ 1; 2; 4 ])
    [ holds; violated ]

(* random programs: same verdict from the DFS reference and the
   parallel search at 1, 2 and 4 jobs, and identical results across
   job counts *)
let gen_program =
  let open QCheck2.Gen in
  let* n = int_range 1 5 in
  let rec build k env acc =
    if k = 0 then return (List.rev acc, env)
    else
      let* pick = int_range 0 5 in
      let name = Printf.sprintf "s%d" (List.length acc) in
      let* src = oneofl env in
      let* e =
        match pick with
        | 0 | 1 ->
          let* cnd = oneofl env in
          return B.(when_ (v src) (v cnd < i 2))
        | 2 ->
          let* other = oneofl env in
          return B.(default (v src) (v other))
        | 3 -> return B.(delay (v src))
        | _ -> return B.(v src + i 1)
      in
      build (k - 1) (name :: env) ((name, e) :: acc)
  in
  let* locals, _ = build n [ "x" ] [] in
  let decls = List.map (fun (nm, _) -> Ast.var nm Types.Tint) locals in
  let body = List.map (fun (nm, e) -> B.(nm := e)) locals in
  let last = fst (List.nth locals (List.length locals - 1)) in
  return
    (B.proc ~name:"ex"
       ~inputs:[ Ast.var "x" Types.Tint ]
       ~outputs:[ Ast.var "out" Types.Tint ]
       ~locals:decls
       (body @ [ B.("out" := v last) ]))

let prop_parallel_parity =
  QCheck2.Test.make ~name:"parallel check agrees with sequential DFS"
    ~count:40 gen_program (fun p ->
      match N.process p with
      | Error _ -> true
      | Ok kp ->
        let inputs = [ ("x", [ None; Some (vi 1); Some (vi 2) ]) ] in
        let safe present = List.assoc_opt "out" present <> Some (vi 3) in
        let verdict_of = function
          | Ok (E.Holds, _) -> `Holds
          | Ok (E.Violated _, _) -> `Violated
          | Error _ -> `Error
        in
        let dfs = verdict_of (E.check_dfs ~depth:4 ~inputs ~safe kp) in
        let seq = E.check ~depth:4 ~jobs:1 ~inputs ~safe kp in
        verdict_of seq = dfs
        && List.for_all
             (fun jobs ->
               E.check ~depth:4 ~jobs ~inputs ~safe kp = seq)
             [ 2; 4 ])

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_parallel_parity ]

let suite =
  [ ("explore",
     [ Alcotest.test_case "timer never early (BMC)" `Quick
         test_timer_never_early;
       Alcotest.test_case "timer expiry reachable" `Quick
         test_timer_can_expire;
       Alcotest.test_case "fm law universal" `Quick test_fm_law_universal;
       Alcotest.test_case "counterexample replays" `Quick
         test_counterexample_replays;
       Alcotest.test_case "state pruning" `Quick test_state_pruning_counts;
       Alcotest.test_case "uncompilable rejected" `Quick
         test_uncompilable_rejected;
       Alcotest.test_case "parallel determinism" `Quick
         test_parallel_determinism;
       Alcotest.test_case "parallel matches DFS verdict" `Quick
         test_parallel_matches_dfs_verdict ]
     @ qsuite) ]
