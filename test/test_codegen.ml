(* C code generation: the generated program, compiled with the system C
   compiler and driven with the same stimuli, must produce exactly the
   simulator's trace. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module Compile = Polysim.Compile
module Trace = Polysim.Trace

let have_cc = Sys.command "which cc > /dev/null 2> /dev/null" = 0

(* atomic mkdtemp: create the directory directly (retrying on EEXIST)
   instead of the temp_file/remove/mkdir dance, which leaves a window
   where another process can claim the path *)
let make_temp_dir prefix =
  let rng = lazy (Random.State.make_self_init ()) in
  let rec go tries =
    let cand =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "%s%06x" prefix
           (Random.State.int (Lazy.force rng) 0x1000000))
    in
    match Unix.mkdir cand 0o700 with
    | () -> cand
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when tries > 0 ->
      go (tries - 1)
  in
  go 100

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* render one stimulus line for the C program: one token per input in
   interface order *)
let stim_line inputs stimulus =
  String.concat " "
    (List.map
       (fun vd ->
         match List.assoc_opt vd.Ast.var_name stimulus with
         | None -> "-"
         | Some (Types.Vint n) -> string_of_int n
         | Some (Types.Vbool b) -> if b then "1" else "0"
         | Some Types.Vevent -> "1"
         | Some (Types.Vreal r) -> Printf.sprintf "%.17g" r
         | Some (Types.Vstring _) -> "-")
       inputs)

let parse_output_line line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter_map (fun tok ->
         match String.index_opt tok '=' with
         | None -> None
         | Some i ->
           Some
             ( String.sub tok 0 i,
               String.sub tok (i + 1) (String.length tok - i - 1) ))

let value_matches expected got =
  match expected with
  | Types.Vint n -> int_of_string_opt got = Some n
  | Types.Vbool b -> got = (if b then "1" else "0")
  | Types.Vevent -> got = "1"
  | Types.Vreal r -> (
    match float_of_string_opt got with
    | Some f -> abs_float (f -. r) <= 1e-9 *. (1.0 +. abs_float r)
    | None -> false)
  | Types.Vstring _ -> false

(* run the C backend against the interpreter on one process *)
let differential ?(label = "prog") kp stimuli =
  let c =
    match Compile.compile kp with
    | Ok c -> c
    | Error m -> Alcotest.fail ("compile: " ^ m)
  in
  let csrc =
    match Compile.to_c c with
    | Ok s -> s
    | Error m -> Alcotest.fail ("to_c: " ^ m)
  in
  let dir = make_temp_dir ("cg_" ^ label) in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c_path = Filename.concat dir "gen.c" in
  let exe = Filename.concat dir "gen.exe" in
  let in_path = Filename.concat dir "stim.txt" in
  let out_path = Filename.concat dir "out.txt" in
  let cc_log = Filename.concat dir "cc.log" in
  write_file c_path csrc;
  let rc =
    Sys.command
      (Printf.sprintf "cc -O1 -o %s %s 2> %s" (Filename.quote exe)
         (Filename.quote c_path) (Filename.quote cc_log))
  in
  if rc <> 0 then
    Alcotest.fail ("cc failed:\n" ^ String.concat "\n" (read_lines cc_log));
  write_file in_path
    (String.concat "\n" (List.map (stim_line kp.Signal_lang.Kernel.kinputs) stimuli)
     ^ "\n");
  let rc =
    Sys.command
      (Printf.sprintf "%s < %s > %s" (Filename.quote exe)
         (Filename.quote in_path) (Filename.quote out_path))
  in
  Alcotest.(check int) "C program exit code" 0 rc;
  let c_lines = read_lines out_path in
  (* reference run *)
  let tr =
    match Polysim.Engine.run kp ~stimuli with
    | Ok tr -> tr
    | Error m -> Alcotest.fail ("engine: " ^ m)
  in
  Alcotest.(check int) "same instant count" (Trace.length tr)
    (List.length c_lines);
  List.iteri
    (fun t line ->
      let got = parse_output_line line in
      (* every signal present in the reference must match; and the C
         output must not contain extra present signals *)
      List.iter
        (fun vd ->
          let x = vd.Ast.var_name in
          match Trace.get tr t x, List.assoc_opt x got with
          | Some v, Some s ->
            if not (value_matches v s) then
              Alcotest.fail
                (Printf.sprintf "instant %d, %s: simulator %s, C %s" t x
                   (Types.value_to_string v) s)
          | Some v, None ->
            Alcotest.fail
              (Printf.sprintf "instant %d: %s present (=%s) only in simulator"
                 t x (Types.value_to_string v))
          | None, Some s ->
            Alcotest.fail
              (Printf.sprintf "instant %d: %s present (=%s) only in C" t x s)
          | None, None -> ())
        (Signal_lang.Kernel.signals kp))
    c_lines

let skip_unless_cc () =
  if not have_cc then Alcotest.skip ()

let test_counter_c () =
  skip_unless_cc ();
  let p =
    B.proc ~name:"use_counter"
      ~inputs:[ Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "n" Types.Tint ]
      B.[ inst ~label:"c" "counter" [ v "e" ] [ "n" ] ]
  in
  differential ~label:"counter" (N.process_exn p)
    [ [ ("e", Types.Vevent) ]; []; [ ("e", Types.Vevent) ];
      [ ("e", Types.Vevent) ] ]

let test_fm_c () =
  skip_unless_cc ();
  let p =
    B.proc ~name:"use_fm"
      ~inputs:[ Ast.var "i" Types.Tint; Ast.var "b" Types.Tbool ]
      ~outputs:[ Ast.var "o" Types.Tint ]
      B.[ inst ~label:"mem" "fm" [ v "i"; v "b" ] [ "o" ] ]
  in
  differential ~label:"fm" (N.process_exn p)
    [ [ ("i", Types.Vint 1); ("b", Types.Vbool true) ];
      [ ("b", Types.Vbool true) ]; [ ("i", Types.Vint 2) ];
      [ ("i", Types.Vint 3); ("b", Types.Vbool false) ];
      [ ("b", Types.Vbool true) ] ]

let test_fifo_c () =
  skip_unless_cc ();
  let p =
    B.proc ~name:"use_fifo"
      ~inputs:[ Ast.var "x" Types.Tint; Ast.var "pop" Types.Tevent ]
      ~outputs:[ Ast.var "d" Types.Tint; Ast.var "s" Types.Tint ]
      B.[ inst ~params:[ Types.Vint 3; Types.Vstring "dropoldest" ]
            ~label:"q" "fifo" [ v "x"; v "pop" ] [ "d"; "s" ] ]
  in
  differential ~label:"fifo" (N.process_exn p)
    [ [ ("x", Types.Vint 1) ]; [ ("x", Types.Vint 2) ];
      [ ("pop", Types.Vevent) ];
      [ ("x", Types.Vint 3); ("pop", Types.Vevent) ];
      [ ("x", Types.Vint 4) ]; [ ("x", Types.Vint 5) ];
      [ ("x", Types.Vint 6) ]; (* overflow *)
      [ ("pop", Types.Vevent) ]; [ ("pop", Types.Vevent) ];
      [ ("pop", Types.Vevent) ] ]

let test_timer_c () =
  skip_unless_cc ();
  let p =
    B.proc ~name:"use_timer"
      ~inputs:[ Ast.var "go" Types.Tevent; Ast.var "halt" Types.Tevent;
                Ast.var "tk" Types.Tevent ]
      ~outputs:[ Ast.var "out" Types.Tevent ]
      B.[ inst ~params:[ Types.Vint 2 ] ~label:"tm" "timer"
            [ v "go"; v "halt"; v "tk" ] [ "out" ] ]
  in
  differential ~label:"timer" (N.process_exn p)
    [ [ ("go", Types.Vevent) ]; [ ("tk", Types.Vevent) ];
      [ ("tk", Types.Vevent) ]; [ ("tk", Types.Vevent) ];
      [ ("go", Types.Vevent) ]; [ ("halt", Types.Vevent) ];
      [ ("tk", Types.Vevent) ] ]

let test_case_study_c () =
  skip_unless_cc ();
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  let stimuli =
    List.init 48 (fun t ->
        ("tick", Types.Vevent)
        :: (if t = 0 then [ ("env_pGo", Types.Vint 1) ] else []))
  in
  differential ~label:"prodcons" a.Polychrony.Pipeline.kernel stimuli

let test_moded_c () =
  skip_unless_cc ();
  (* the modal sensor with its automaton also survives C generation *)
  let src =
    {|package M public
      thread s
        features
          f: in event port;
          r: in event port;
          o: out event data port;
        modes
          A: initial mode; Bm: mode;
          t1: A -[ f ]-> Bm;
          t2: Bm -[ r ]-> A;
        properties Dispatch_Protocol => Periodic; Period => 4 ms;
          Compute_Execution_Time => 1 ms;
      end s;
      thread implementation s.impl end s.impl;
      process q features f: in event port; r: in event port;
        o: out event data port; end q;
      process implementation q.impl
        subcomponents w: thread s.impl;
        connections
          k0: port f -> w.f; k1: port r -> w.r; k2: port w.o -> o;
      end q.impl;
      system e features f: out event port; r: out event port; end e;
      system implementation e.impl end e.impl;
      system k features o: in event data port; end k;
      system implementation k.impl end k.impl;
      system top end top;
      system implementation top.impl
        subcomponents
          env: system e.impl; sink: system k.impl;
          h: process q.impl; c0: processor pc.impl;
        connections
          s0: port env.f -> h.f; s1: port env.r -> h.r;
          s2: port h.o -> sink.o;
        properties Actual_Processor_Binding => reference (c0) applies to h;
      end top.impl;
      processor pc end pc;
      processor implementation pc.impl end pc.impl;
      end M;|}
  in
  let a =
    match Polychrony.Pipeline.analyze src with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  let stimuli =
    List.init 24 (fun t ->
        ("tick", Types.Vevent)
        ::
        (if t = 5 then [ ("env_f", Types.Vint 1) ]
         else if t = 13 then [ ("env_r", Types.Vint 1) ]
         else []))
  in
  differential ~label:"moded" a.Polychrony.Pipeline.kernel stimuli

let suite =
  [ ("codegen_c",
     [ Alcotest.test_case "counter" `Quick test_counter_c;
       Alcotest.test_case "fm memory" `Quick test_fm_c;
       Alcotest.test_case "fifo" `Quick test_fifo_c;
       Alcotest.test_case "timer" `Quick test_timer_c;
       Alcotest.test_case "full case study" `Quick test_case_study_c;
       Alcotest.test_case "mode automaton" `Quick test_moded_c ]) ]
