(* Multi-processor allocation (SynDEx connection, ref [17]). *)

module T = Sched.Task
module S = Sched.Static_sched
module A = Sched.Alloc

let mk ?priority name period wcet =
  T.make ?priority ~name ~period_us:period ~wcet_us:wcet ()

let test_single_bin () =
  let tasks = [ mk "a" 4000 1000; mk "b" 8000 1000 ] in
  match A.allocate ~cpus:[ "cpu0" ] tasks with
  | Ok [ a ] ->
    Alcotest.(check int) "both on cpu0" 2 (List.length a.A.a_tasks);
    Alcotest.(check bool) "schedule valid" true (S.is_valid a.A.a_schedule)
  | Ok _ -> Alcotest.fail "one assignment expected"
  | Error f -> Alcotest.fail f.A.reason

let test_load_balancing () =
  (* four half-load tasks over two processors: worst-fit spreads 2+2 *)
  let tasks = List.init 4 (fun i -> mk (Printf.sprintf "t%d" i) 4000 1900) in
  match A.allocate ~cpus:[ "cpu0"; "cpu1" ] tasks with
  | Error f -> Alcotest.fail f.A.reason
  | Ok assignments ->
    List.iter
      (fun a ->
        Alcotest.(check int) (a.A.a_cpu ^ " gets two tasks") 2
          (List.length a.A.a_tasks);
        Alcotest.(check bool) "valid" true (S.is_valid a.A.a_schedule))
      assignments

let test_overload_refused () =
  let tasks = List.init 5 (fun i -> mk (Printf.sprintf "t%d" i) 2000 1500) in
  match A.allocate ~cpus:[ "cpu0"; "cpu1" ] tasks with
  | Ok _ -> Alcotest.fail "5 x 75% load cannot fit on 2 cpus"
  | Error f -> Alcotest.(check bool) "names a task" true (f.A.unplaced.T.t_name <> "")

let test_preloaded_respected () =
  let pinned = mk "pinned" 2000 1500 in
  let tasks = [ mk "free1" 2000 1500; mk "free2" 2000 300 ] in
  match
    A.allocate ~preloaded:[ ("cpu0", [ pinned ]) ] ~cpus:[ "cpu0"; "cpu1" ]
      tasks
  with
  | Error f -> Alcotest.fail f.A.reason
  | Ok assignments ->
    let find cpu =
      List.find (fun a -> String.equal a.A.a_cpu cpu) assignments
    in
    Alcotest.(check bool) "pinned stays on cpu0" true
      (List.exists (fun t -> t.T.t_name = "pinned") (find "cpu0").A.a_tasks);
    (* free1 at 75% cannot share with pinned at 75% *)
    Alcotest.(check bool) "heavy task pushed to cpu1" true
      (List.exists (fun t -> t.T.t_name = "free1") (find "cpu1").A.a_tasks)

let test_min_processors () =
  let tasks = List.init 6 (fun i -> mk (Printf.sprintf "t%d" i) 2000 900) in
  match A.min_processors tasks with
  | Some (n, assignments) ->
    (* 6 x 45% needs three processors (non-preemptive, two per cpu) *)
    Alcotest.(check int) "three processors" 3 n;
    Alcotest.(check int) "all placed" 6
      (List.fold_left (fun acc a -> acc + List.length a.A.a_tasks) 0
         assignments)
  | None -> Alcotest.fail "allocatable set"

let test_min_processors_bound () =
  let tasks = List.init 40 (fun i -> mk (Printf.sprintf "t%d" i) 1000 999) in
  Alcotest.(check bool) "gives up beyond max_cpus" true
    (A.min_processors ~max_cpus:4 tasks = None)

let prop_allocation_valid =
  QCheck2.Test.make ~name:"allocations produce valid schedules" ~count:100
    QCheck2.Gen.(
      pair (int_range 1 4)
        (list_size (int_range 1 8) (pair (int_range 1 4) (int_range 1 3))))
    (fun (ncpu, specs) ->
      let tasks =
        List.mapi
          (fun i (p, c) -> mk (Printf.sprintf "t%d" i) (p * 2000) (c * 500))
          specs
      in
      let cpus = List.init ncpu (fun i -> Printf.sprintf "cpu%d" i) in
      match A.allocate ~cpus tasks with
      | Error _ -> true
      | Ok assignments ->
        List.for_all (fun a -> S.is_valid a.A.a_schedule) assignments
        && List.fold_left (fun acc a -> acc + List.length a.A.a_tasks) 0
             assignments
           = List.length tasks)

(* end-to-end: AADL model with two processors and no bindings *)
let test_aadl_auto_allocation () =
  let src =
    {|package Multi public
      thread worker
        features o: out event port;
        properties Dispatch_Protocol => Periodic; Period => 4 ms;
          Compute_Execution_Time => 3 ms;
      end worker;
      thread implementation worker.impl end worker.impl;
      process host end host;
      process implementation host.impl
        subcomponents
          w1: thread worker.impl;
          w2: thread worker.impl;
      end host.impl;
      processor core end core;
      processor implementation core.impl end core.impl;
      system rig end rig;
      system implementation rig.impl
        subcomponents
          h: process host.impl;
          cpu0: processor core.impl;
          cpu1: processor core.impl;
      end rig.impl;
      end Multi;|}
  in
  match Polychrony.Pipeline.analyze src with
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  | Ok a ->
    let scheds = a.Polychrony.Pipeline.translation.Trans.System_trans.schedules in
    (* two 75%-load workers cannot share one cpu: allocation must use
       both *)
    Alcotest.(check int) "two processors scheduled" 2 (List.length scheds);
    Alcotest.(check (list string)) "two ticks"
      [ "tick_cpu0"; "tick_cpu1" ]
      (List.sort String.compare
         a.Polychrony.Pipeline.translation.Trans.System_trans.tick_inputs);
    (* and the two-processor system simulates *)
    match Polychrony.Pipeline.simulate ~hyperperiods:2 a with
    | Ok tr -> Alcotest.(check bool) "runs" true (Polysim.Trace.length tr > 0)
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)

(* multi-rate distribution: processors whose schedules use different
   base ticks must be pulsed at their own cadence *)
let test_multirate_tick_cadence () =
  let src =
    {|package MR public
      thread fast
        features o: out event data port;
        properties Dispatch_Protocol => Periodic; Period => 4 ms;
          Compute_Execution_Time => 3 ms;
      end fast;
      thread implementation fast.impl end fast.impl;
      thread slow
        features i: in event data port;
        properties Dispatch_Protocol => Periodic; Period => 8 ms;
          Compute_Execution_Time => 6 ms;
      end slow;
      thread implementation slow.impl end slow.impl;
      process host end host;
      process implementation host.impl
        subcomponents
          f: thread fast.impl;
          s: thread slow.impl;
        connections k0: port f.o -> s.i;
      end host.impl;
      processor core end core;
      processor implementation core.impl end core.impl;
      system rig end rig;
      system implementation rig.impl
        subcomponents
          h: process host.impl;
          cpu0: processor core.impl;
          cpu1: processor core.impl;
      end rig.impl;
      end MR;|}
  in
  match Polychrony.Pipeline.analyze src with
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  | Ok a -> (
    match Polychrony.Pipeline.simulate ~hyperperiods:2 a with
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
    | Ok tr ->
      let cadence name =
        match Polysim.Trace.tick_instants tr name with
        | a :: b :: _ -> b - a
        | _ -> Alcotest.fail (name ^ " never dispatches twice")
      in
      (* global base is the gcd of the two schedules' bases; the fast
         thread must dispatch twice as often as the slow one *)
      Alcotest.(check int) "fast:slow cadence ratio" (2 * cadence "h_f_dispatch")
        (cadence "h_s_dispatch"))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_allocation_valid ]

let suite =
  [ ("alloc",
     [ Alcotest.test_case "single bin" `Quick test_single_bin;
       Alcotest.test_case "load balancing" `Quick test_load_balancing;
       Alcotest.test_case "overload refused" `Quick test_overload_refused;
       Alcotest.test_case "preloaded bindings" `Quick test_preloaded_respected;
       Alcotest.test_case "min processors" `Quick test_min_processors;
       Alcotest.test_case "min processors bound" `Quick
         test_min_processors_bound;
       Alcotest.test_case "AADL auto allocation" `Quick
         test_aadl_auto_allocation;
       Alcotest.test_case "multi-rate tick cadence" `Quick
         test_multirate_tick_cadence ]
     @ qsuite) ]
