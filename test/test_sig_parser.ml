(* SIGNAL concrete-syntax parser: Pp ∘ parse ∘ Pp must be a fixpoint
   (print-parse-print stability), on library processes, the generated
   case-study program and random expressions. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module Pp = Signal_lang.Pp
module SP = Signal_lang.Sig_parser
module Stdproc = Signal_lang.Stdproc

let parse_expr_ok s =
  match SP.parse_expr s with
  | Ok e -> e
  | Error m -> Alcotest.fail (s ^ ": " ^ m)

let test_expr_cases () =
  let cases =
    [ "a + b * 2";
      "(a + b) * 2";
      "x $ 1 init 5";
      "x when b";
      "when b";
      "x default y default z";
      "^x";
      "not a and b";
      "if c then x else y";
      "x $ 1 init 5 + 1";
      "- x";
      "a - -3";
      "a /= b";
      "a <= b or a >= c";
      "x modulo 3";
      "\"hello\"";
      "3.5" ]
  in
  List.iter
    (fun s ->
      let e = parse_expr_ok s in
      let printed = Pp.expr_to_string e in
      let e2 = parse_expr_ok printed in
      Alcotest.(check string) ("fixpoint: " ^ s) printed (Pp.expr_to_string e2))
    cases

let test_expr_structure () =
  (* precedence checks *)
  Alcotest.(check bool) "mul binds tighter" true
    (Ast.equal_expr (parse_expr_ok "a + b * 2") B.(v "a" + (v "b" * i 2)));
  Alcotest.(check bool) "when sugar" true
    (Ast.equal_expr (parse_expr_ok "when b") B.(on (v "b")));
  Alcotest.(check bool) "default right assoc" true
    (Ast.equal_expr
       (parse_expr_ok "a default b default c")
       B.(default (v "a") (default (v "b") (v "c"))));
  Alcotest.(check bool) "delay init" true
    (Ast.equal_expr
       (parse_expr_ok "x $ 1 init -2")
       B.(delay ~init:(Types.Vint (-2)) (v "x")))

let test_parse_errors () =
  List.iter
    (fun s ->
      match SP.parse_expr s with
      | Ok _ -> Alcotest.fail ("accepted: " ^ s)
      | Error _ -> ())
    [ "x +"; "when"; "x $ 2 init 0"; "(a"; "x default" ]

let roundtrip_process p =
  let printed = Pp.process_to_string p in
  match SP.parse_process printed with
  | Error m -> Alcotest.fail (p.Ast.proc_name ^ ": " ^ m ^ "\n" ^ printed)
  | Ok p2 ->
    let printed2 = Pp.process_to_string p2 in
    Alcotest.(check string) ("fixpoint " ^ p.Ast.proc_name) printed printed2

let test_stdprocs_roundtrip () = List.iter roundtrip_process Stdproc.all

let test_case_study_roundtrip () =
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  let prog = a.Polychrony.Pipeline.translation.Trans.System_trans.program in
  let printed = Pp.program_to_string prog in
  match SP.parse_program printed with
  | Error m -> Alcotest.fail m
  | Ok prog2 ->
    Alcotest.(check int) "same process count"
      (List.length prog.Ast.processes)
      (List.length prog2.Ast.processes);
    let printed2 = Pp.program_to_string prog2 in
    Alcotest.(check bool) "program fixpoint" true (printed = printed2)

let test_reparsed_program_normalizes () =
  (* the reparsed generated program still normalizes and simulates *)
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  let prog = a.Polychrony.Pipeline.translation.Trans.System_trans.program in
  let printed = Pp.program_to_string prog in
  match SP.parse_program printed with
  | Error m -> Alcotest.fail m
  | Ok prog2 -> (
    let top =
      match
        Ast.find_process prog2
          a.Polychrony.Pipeline.translation.Trans.System_trans.top
            .Ast.proc_name
      with
      | Some p -> p
      | None -> Alcotest.fail "top process lost in roundtrip"
    in
    match Signal_lang.Normalize.process ~program:prog2 top with
    | Ok kp ->
      let stimuli =
        List.init 24 (fun t ->
            ("tick", Types.Vevent)
            :: (if t = 0 then [ ("env_pGo", Types.Vint 1) ] else []))
      in
      (match Polysim.Engine.run kp ~stimuli with
       | Ok tr ->
         Alcotest.(check bool) "reparsed program runs" true
           (Polysim.Trace.length tr = 24)
       | Error m -> Alcotest.fail m)
    | Error m -> Alcotest.fail (Putil.Diag.to_string m))

(* random expression fixpoint *)
let gen_expr =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 1 then
           oneof
             [ map (fun x -> B.v x) (oneofl [ "a"; "b"; "c" ]);
               map B.i (int_range (-9) 9);
               map B.b bool ]
         else
           let sub = self (n / 2) in
           oneof
             [ map2 (fun e1 e2 -> B.(e1 + e2)) sub sub;
               map2 (fun e1 e2 -> B.(e1 * e2)) sub sub;
               map2 (fun e1 e2 -> B.(e1 - e2)) sub sub;
               map2 (fun e1 e2 -> B.(e1 && e2)) sub sub;
               map2 (fun e1 e2 -> B.(e1 < e2)) sub sub;
               map2 (fun e1 e2 -> B.(e1 = e2)) sub sub;
               map B.not_ sub;
               map (fun e -> B.delay ~init:(Types.Vint 0) e) sub;
               map2 B.when_ sub sub;
               map (fun e -> B.on e) sub;
               map2 B.default sub sub;
               map B.clk sub;
               map3 B.if_ sub sub sub ])

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"print/parse/print expression fixpoint" ~count:500
    gen_expr (fun e ->
      (* one parse canonicalizes (e.g. '- 2' vs '-2'); from then on
         print/parse must be a strict fixpoint *)
      let printed0 = Pp.expr_to_string e in
      match SP.parse_expr printed0 with
      | Error m ->
        Format.eprintf "@.PARSE FAIL %s on: %s@." m printed0;
        false
      | Ok e1 -> (
        let printed1 = Pp.expr_to_string e1 in
        match SP.parse_expr printed1 with
        | Error m ->
          Format.eprintf "@.PARSE FAIL (2nd) %s on: %s@." m printed1;
          false
        | Ok e2 ->
          let printed2 = Pp.expr_to_string e2 in
          if printed2 <> printed1 then
            Format.eprintf "@.REPRINT DIFF:@.  %s@.  %s@." printed1 printed2;
          printed2 = printed1))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_expr_roundtrip ]

let suite =
  [ ("sig_parser",
     [ Alcotest.test_case "expression cases" `Quick test_expr_cases;
       Alcotest.test_case "expression structure" `Quick test_expr_structure;
       Alcotest.test_case "parse errors" `Quick test_parse_errors;
       Alcotest.test_case "library processes roundtrip" `Quick
         test_stdprocs_roundtrip;
       Alcotest.test_case "generated program roundtrip" `Quick
         test_case_study_roundtrip;
       Alcotest.test_case "reparsed program simulates" `Quick
         test_reparsed_program_normalizes ]
     @ qsuite) ]
