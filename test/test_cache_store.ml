(* Persistent content-addressed cache store (Putil.Cache_store):
   round-trips, fresh-handle replay, corruption tolerance, LRU
   eviction, and multi-domain safety of the store together with the
   other digest-keyed memo tables it cooperates with (clock-calculus
   analyze cache, compiled-plan cache). *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module Cache_store = Putil.Cache_store

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pcache_test_%d_%d" (Unix.getpid ()) !ctr)

let cleanup dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_store ?max_bytes f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> cleanup dir)
    (fun () ->
      match Cache_store.open_store ?max_bytes dir with
      | Error m -> Alcotest.fail ("open_store: " ^ m)
      | Ok t -> f t dir)

let entry_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> Filename.check_suffix f ".pcache")
  |> List.map (Filename.concat dir)

(* ------------------------------------------------------------------ *)
(* Round-trips and stats                                              *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  with_store (fun t _dir ->
      Alcotest.(check (option string))
        "miss on empty" None
        (Cache_store.get t ~stage:"s" ~key:"k");
      Cache_store.put t ~stage:"s" ~key:"k" "payload";
      Alcotest.(check (option string))
        "string round-trip" (Some "payload")
        (Cache_store.get t ~stage:"s" ~key:"k");
      (* structured payloads survive the Marshal boundary *)
      let v = ([ 1; 2; 3 ], ("x", Some 4.5), [| true; false |]) in
      Cache_store.put t ~stage:"s2" ~key:"k" v;
      (match Cache_store.get t ~stage:"s2" ~key:"k" with
      | Some v' -> Alcotest.(check bool) "structured round-trip" true (v = v')
      | None -> Alcotest.fail "structured payload lost");
      (* same key under another stage is a distinct entry *)
      Alcotest.(check (option string))
        "stages namespaced" (Some "payload")
        (Cache_store.get t ~stage:"s" ~key:"k");
      Cache_store.put t ~stage:"s" ~key:"k" "replaced";
      Alcotest.(check (option string))
        "replace in place" (Some "replaced")
        (Cache_store.get t ~stage:"s" ~key:"k");
      Alcotest.(check bool) "mem hit" true (Cache_store.mem t ~stage:"s" ~key:"k");
      Alcotest.(check bool)
        "mem miss" false
        (Cache_store.mem t ~stage:"s" ~key:"absent");
      let st = Cache_store.stats t in
      Alcotest.(check int) "entries" 2 st.Cache_store.entries;
      Alcotest.(check int) "writes" 3 st.Cache_store.writes;
      Alcotest.(check int) "hits" 4 st.Cache_store.hits;
      Alcotest.(check int) "misses" 1 st.Cache_store.misses;
      Alcotest.(check bool) "bytes accounted" true (st.Cache_store.bytes > 0))

(* a second handle on the same directory — a stand-in for a fresh
   process — replays entries it never wrote *)
let test_fresh_handle_replays () =
  with_store (fun t dir ->
      Cache_store.put t ~stage:"warm" ~key:"k1" [ "a"; "b" ];
      Cache_store.put t ~stage:"warm" ~key:"k2" 42;
      match Cache_store.open_store dir with
      | Error m -> Alcotest.fail ("reopen: " ^ m)
      | Ok t2 ->
        Alcotest.(check int)
          "index rebuilt" 2
          (Cache_store.stats t2).Cache_store.entries;
        (match Cache_store.get t2 ~stage:"warm" ~key:"k1" with
        | Some l ->
          Alcotest.(check (list string)) "replayed list" [ "a"; "b" ] l
        | None -> Alcotest.fail "k1 lost across handles");
        Alcotest.(check (option int))
          "replayed int" (Some 42)
          (Cache_store.get t2 ~stage:"warm" ~key:"k2"))

let test_clear () =
  with_store (fun t dir ->
      for i = 1 to 5 do
        Cache_store.put t ~stage:"c" ~key:(string_of_int i) i
      done;
      Alcotest.(check int) "clear count" 5 (Cache_store.clear t);
      Alcotest.(check int)
        "empty after clear" 0
        (Cache_store.stats t).Cache_store.entries;
      Alcotest.(check (option int))
        "entries gone" None
        (Cache_store.get t ~stage:"c" ~key:"3");
      Alcotest.(check int) "files gone" 0 (List.length (entry_files dir)))

let test_rejects_closures () =
  with_store (fun t _dir ->
      Alcotest.(check bool)
        "functional payload rejected" true
        (match Cache_store.put t ~stage:"f" ~key:"k" (fun x -> x + 1) with
        | () -> false
        | exception Invalid_argument _ -> true))

(* ------------------------------------------------------------------ *)
(* Corruption tolerance                                               *)
(* ------------------------------------------------------------------ *)

let damage_file f path =
  let len = (Unix.stat path).Unix.st_size in
  f path len

let truncate_file path len = Unix.truncate path (len / 2)

let flip_last_byte path len =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET);
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1))

let corruption_case damage () =
  with_store (fun t dir ->
      Cache_store.put t ~stage:"d" ~key:"k" (String.make 256 'p');
      (match entry_files dir with
      | [ path ] -> damage_file damage path
      | files ->
        Alcotest.fail
          (Printf.sprintf "expected one entry file, found %d"
             (List.length files)));
      (* a damaged entry is a miss, never a crash; the file is removed *)
      Alcotest.(check (option string))
        "damaged entry misses" None
        (Cache_store.get t ~stage:"d" ~key:"k");
      Alcotest.(check int)
        "corruption counted" 1
        (Cache_store.stats t).Cache_store.corrupt;
      Alcotest.(check int) "damaged file removed" 0
        (List.length (entry_files dir));
      (* the slot is usable again *)
      Cache_store.put t ~stage:"d" ~key:"k" "fresh";
      Alcotest.(check (option string))
        "store recovers" (Some "fresh")
        (Cache_store.get t ~stage:"d" ~key:"k"))

let test_truncation_is_miss = corruption_case truncate_file
let test_bitflip_is_miss = corruption_case flip_last_byte

let test_foreign_file_quarantined () =
  with_store (fun t dir ->
      Cache_store.put t ~stage:"q" ~key:"k" "good";
      let junk = Filename.concat dir "junk-deadbeef.pcache" in
      let oc = open_out_bin junk in
      output_string oc "not a cache entry";
      close_out oc;
      (* reopening scans the directory: the foreign file is discarded,
         the valid entry survives *)
      match Cache_store.open_store dir with
      | Error m -> Alcotest.fail ("reopen: " ^ m)
      | Ok t2 ->
        Alcotest.(check int)
          "foreign file counted corrupt" 1
          (Cache_store.stats t2).Cache_store.corrupt;
        Alcotest.(check bool) "foreign file removed" false
          (Sys.file_exists junk);
        Alcotest.(check (option string))
          "valid entry survives scan" (Some "good")
          (Cache_store.get t2 ~stage:"q" ~key:"k"))

(* ------------------------------------------------------------------ *)
(* LRU eviction                                                       *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction () =
  (* calibrate: how many bytes does one 1000-byte payload cost? *)
  let per_entry =
    with_store (fun t _dir ->
        Cache_store.put t ~stage:"cal" ~key:"k" (String.make 1000 'x');
        (Cache_store.stats t).Cache_store.bytes)
  in
  with_store ~max_bytes:(per_entry * 5 / 2) (fun t _dir ->
      let put k = Cache_store.put t ~stage:"e" ~key:k (String.make 1000 'x') in
      put "a";
      put "b";
      (* touch [a]: it becomes the most recently used of the two *)
      Alcotest.(check bool) "a readable" true
        (Cache_store.get t ~stage:"e" ~key:"a" <> (None : string option));
      put "c";
      let st = Cache_store.stats t in
      Alcotest.(check int) "bound enforced" 2 st.Cache_store.entries;
      Alcotest.(check int) "one eviction" 1 st.Cache_store.evictions;
      Alcotest.(check bool) "bytes within bound" true
        (st.Cache_store.bytes <= per_entry * 5 / 2);
      Alcotest.(check bool) "LRU entry evicted" false
        (Cache_store.mem t ~stage:"e" ~key:"b");
      Alcotest.(check bool) "touched entry survives" true
        (Cache_store.mem t ~stage:"e" ~key:"a");
      Alcotest.(check bool) "new entry survives" true
        (Cache_store.mem t ~stage:"e" ~key:"c"))

(* ------------------------------------------------------------------ *)
(* Multi-domain safety                                                *)
(* ------------------------------------------------------------------ *)

(* Satellite audit: every digest-keyed cache the pipeline leans on —
   the persistent store (per-handle mutex), the clock-calculus analyze
   memo (analyze_lock, shared with reset_cache) and the compiled-plan
   memo (plan_lock + atomic fast path) — must survive concurrent
   hammering from Domain_pool workers, including cache resets racing
   cold analyses. *)
let test_parallel_store_and_memos () =
  let kernel seed =
    N.process_exn
      (B.proc
         ~name:(Printf.sprintf "stress_%d" seed)
         ~inputs:[ Ast.var "a" Types.Tint ]
         ~outputs:[ Ast.var "x" Types.Tint ]
         B.[ "x" := v "a" + i seed ])
  in
  let kernels = Array.init 3 kernel in
  with_store (fun t _dir ->
      let n_workers = 4 and rounds = 120 in
      Putil.Domain_pool.with_pool n_workers (fun pool ->
          Putil.Domain_pool.run_tasks pool
            (List.init n_workers (fun w () ->
                 for i = 0 to rounds - 1 do
                   let key = Printf.sprintf "k%d" (i mod 13) in
                   Cache_store.put t ~stage:"stress" ~key (w, i);
                   (match
                      (Cache_store.get t ~stage:"stress" ~key
                        : (int * int) option)
                   with
                   | Some _ | None -> ());
                   let kp = kernels.(i mod Array.length kernels) in
                   ignore (Clocks.Calculus.analyze kp);
                   (match Polysim.Compile.compile kp with
                   | Ok _ | Error _ -> ());
                   if i mod 40 = w * 10 then Clocks.Calculus.reset_cache ()
                 done)));
      let st = Cache_store.stats t in
      Alcotest.(check int) "all keys live" 13 st.Cache_store.entries;
      Alcotest.(check int) "no corruption under contention" 0
        st.Cache_store.corrupt;
      (* every surviving entry is readable and well-formed *)
      for k = 0 to 12 do
        match
          (Cache_store.get t ~stage:"stress" ~key:(Printf.sprintf "k%d" k)
            : (int * int) option)
        with
        | Some (w, i) ->
          Alcotest.(check bool) "payload well-formed" true
            (w >= 0 && w < n_workers && i >= 0 && i < rounds)
        | None -> Alcotest.fail "entry lost under contention"
      done)

let suite =
  [ ( "cache_store",
      [ Alcotest.test_case "round-trip and stats" `Quick test_roundtrip;
        Alcotest.test_case "fresh handle replays" `Quick
          test_fresh_handle_replays;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "rejects closures" `Quick test_rejects_closures;
        Alcotest.test_case "truncation is a miss" `Quick
          test_truncation_is_miss;
        Alcotest.test_case "bit flip is a miss" `Quick test_bitflip_is_miss;
        Alcotest.test_case "foreign file quarantined" `Quick
          test_foreign_file_quarantined;
        Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
        Alcotest.test_case "parallel store and memos" `Quick
          test_parallel_store_and_memos ] ) ]
