(* Batched and lockstep multi-scenario stepping over the dense
   stimulus ABI: byte-identical to the one-instant step loop and the
   fixpoint interpreter, and allocation-flat in steady state. *)

module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module Engine = Polysim.Engine
module Compile = Polysim.Compile
module Trace = Polysim.Trace

let vi n = Types.Vint n
let vb b = Types.Vbool b
let ve = Types.Vevent

let analyzed () =
  match
    Polychrony.Pipeline.analyze
      ~registry:Polychrony.Case_study.registry_nominal
      Polychrony.Case_study.aadl_source
  with
  | Ok a -> a
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)

let case_stim t =
  ("tick", ve) :: (if t = 0 then [ ("env_pGo", vi 1) ] else [])

let fill_assoc c stim =
  List.iter
    (fun (x, v) ->
      match Compile.signal_index c x with
      | Some i -> Compile.set_stim c i v
      | None -> Alcotest.fail ("unknown input " ^ x))
    stim

let step_all c stims =
  List.iter
    (fun stim ->
      Compile.stim_clear c;
      fill_assoc c stim;
      match Compile.step_prepared c with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    stims

(* run_batched over the translated case study: same trace as the
   one-instant loop and as the interpreter *)
let test_run_batched_case_study () =
  let kp = (analyzed ()).Polychrony.Pipeline.kernel in
  let horizon = 48 in
  let stimuli = List.init horizon case_stim in
  let c_step = Result.get_ok (Compile.compile kp) in
  step_all c_step stimuli;
  let c_batch = Compile.fork c_step in
  (match
     Compile.run_batched c_batch ~n:horizon
       ~fill:(fun c t -> fill_assoc c (case_stim t))
   with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "batched = one-instant loop" true
    (Trace.equal (Compile.trace c_step) (Compile.trace c_batch));
  match Engine.run kp ~stimuli with
  | Ok t_engine ->
    Alcotest.(check bool) "batched = interpreter" true
      (Trace.equal t_engine (Compile.trace c_batch))
  | Error m -> Alcotest.fail m

(* step_many: each scenario of a lockstep run equals an independent
   instance driven with the same stimuli *)
let test_step_many_case_study () =
  let kp = (analyzed ()).Polychrony.Pipeline.kernel in
  let horizon = 48 and k = 4 in
  (* scenario s delays the environment arrival by s base ticks *)
  let stim s t =
    ("tick", ve) :: (if t = s then [ ("env_pGo", vi 1) ] else [])
  in
  let c = Result.get_ok (Compile.compile_scenarios kp ~scenarios:k) in
  Alcotest.(check int) "carries k scenarios" k (Compile.scenarios c);
  for t = 0 to horizon - 1 do
    match Compile.step_many c ~fill:(fun c s -> fill_assoc c (stim s t)) with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  done;
  Alcotest.(check int) "one instant per lockstep call" horizon
    (Compile.instant c);
  for s = 0 to k - 1 do
    let ci = Result.get_ok (Compile.compile kp) in
    step_all ci (List.init horizon (stim s));
    Alcotest.(check bool)
      (Printf.sprintf "scenario %d = independent run" s)
      true
      (Trace.equal (Compile.trace_of c s) (Compile.trace ci))
  done;
  (* distinct environments must yield distinct traces: the lockstep
     striping is not just replicating scenario 0 *)
  Alcotest.(check bool) "scenarios differ" false
    (Trace.equal (Compile.trace_of c 0) (Compile.trace_of c 1))

(* the same lockstep-vs-independent law at the pipeline level *)
let test_pipeline_scenarios () =
  let a = analyzed () in
  let k = 3 in
  let envs s t = if t = s then [ ("env_pGo", 1) ] else [] in
  match Polychrony.Pipeline.simulate_scenarios ~envs ~scenarios:k a with
  | Error ds -> Alcotest.fail (Putil.Diag.list_to_string ds)
  | Ok traces ->
    Alcotest.(check int) "one trace per scenario" k (Array.length traces);
    for s = 0 to k - 1 do
      match Polychrony.Pipeline.simulate ~compiled:true ~env:(envs s) a with
      | Error ds -> Alcotest.fail (Putil.Diag.list_to_string ds)
      | Ok tr ->
        Alcotest.(check bool)
          (Printf.sprintf "scenario %d = independent simulate" s)
          true (Trace.equal traces.(s) tr)
    done

(* random kernels: batched and lockstep stepping agree with the
   one-instant loop (reusing the clock-consistent generator of
   test_compile) *)
let prop_batched_equivalence =
  QCheck2.Test.make
    ~name:"batched and lockstep = one-instant step on random programs"
    ~count:150
    QCheck2.Gen.(pair Test_compile.gen_program Test_compile.gen_stimuli)
    (fun (p, stims) ->
      match N.process p with
      | Error _ -> true (* ill-typed generation is skipped *)
      | Ok kp -> (
        match Compile.compile kp with
        | Error _ -> true (* causality cycles are covered elsewhere *)
        | Ok c_step -> (
          let stimuli =
            Array.of_list
              (List.map (fun (n, b) -> [ ("x", vi n); ("c", vb b) ]) stims)
          in
          let horizon = Array.length stimuli in
          let fill c t =
            List.iter
              (fun (x, v) ->
                match Compile.signal_index c x with
                | Some i when Compile.is_input c i -> Compile.set_stim c i v
                | Some _ | None -> ())
              stimuli.(t)
          in
          let steps_ok =
            Array.for_all
              (fun t ->
                Compile.stim_clear c_step;
                fill c_step t;
                match Compile.step_prepared c_step with
                | Ok () -> true
                | Error _ -> false)
              (Array.init horizon Fun.id)
          in
          if not steps_ok then true (* runtime error: skip *)
          else
            let c_batch = Compile.fork c_step in
            match
              Compile.run_batched c_batch ~n:horizon ~fill
            with
            | Error _ -> false
            | Ok () ->
              Trace.equal (Compile.trace c_step) (Compile.trace c_batch)
              &&
              let k = 3 in
              (* scenario s runs the stimulus sequence rotated by s *)
              let stim_of s t = (t + s) mod horizon in
              let c_many =
                Result.get_ok (Compile.compile_scenarios kp ~scenarios:k)
              in
              let lockstep_ok = ref true in
              for t = 0 to horizon - 1 do
                match
                  Compile.step_many c_many
                    ~fill:(fun c s -> fill c (stim_of s t))
                with
                | Ok () -> ()
                | Error _ -> lockstep_ok := false
              done;
              !lockstep_ok
              && List.for_all
                   (fun s ->
                     let ci = Result.get_ok (Compile.compile kp) in
                     let indep_ok = ref true in
                     for t = 0 to horizon - 1 do
                       Compile.stim_clear ci;
                       fill ci (stim_of s t);
                       match Compile.step_prepared ci with
                       | Ok () -> ()
                       | Error _ -> indep_ok := false
                     done;
                     !indep_ok
                     && Trace.equal (Compile.trace_of c_many s)
                          (Compile.trace ci))
                   (List.init k Fun.id))))

(* the tentpole guarantee: the steady-state batched loop performs no
   per-instant allocation once recording is off *)
let test_steady_state_allocation_flat () =
  let kp = (analyzed ()).Polychrony.Pipeline.kernel in
  let c = Result.get_ok (Compile.compile kp) in
  Compile.set_recording c false;
  let tick =
    match Compile.signal_index c "tick" with
    | Some i -> i
    | None -> Alcotest.fail "case study has no tick input"
  in
  let fill c _ = Compile.set_stim c tick ve in
  let run n =
    match Compile.run_batched c ~n ~fill with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  in
  run 64 (* reach steady state *);
  let words n =
    let w0 = Gc.minor_words () in
    run n;
    Gc.minor_words () -. w0
  in
  let d_short = words 200 in
  let d_long = words 2000 in
  (* whatever constant overhead the measurement itself carries, a run
     10x longer must not allocate beyond it *)
  Alcotest.(check bool)
    (Printf.sprintf
       "allocation flat (200 instants: %.0f minor words, 2000: %.0f)"
       d_short d_long)
    true
    (d_long -. d_short < 256.)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_batched_equivalence ]

let suite =
  [ ("batch",
     [ Alcotest.test_case "run_batched on case study" `Quick
         test_run_batched_case_study;
       Alcotest.test_case "step_many on case study" `Quick
         test_step_many_case_study;
       Alcotest.test_case "pipeline scenarios" `Quick
         test_pipeline_scenarios;
       Alcotest.test_case "steady-state allocation flat" `Quick
         test_steady_state_allocation_flat ]
     @ qsuite) ]
