(* VCD writer/reader: the written dump, parsed back, reproduces the
   trace value-for-value (ref [18] demonstration artifact). *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module Trace = Polysim.Trace
module Vcd = Polysim.Vcd
module R = Polysim.Vcd_reader
module S = Sched.Static_sched

let small_trace () =
  let tr =
    Trace.create
      [ Ast.var "n" Types.Tint; Ast.var "b" Types.Tbool;
        Ast.var "e" Types.Tevent ]
  in
  Trace.push tr [ ("n", Types.Vint 1); ("b", Types.Vbool true) ];
  Trace.push tr [ ("e", Types.Vevent) ];
  Trace.push tr [ ("n", Types.Vint 2); ("b", Types.Vbool false) ];
  Trace.push tr [];
  tr

let test_roundtrip_small () =
  let tr = small_trace () in
  let dump = Vcd.to_string tr in
  match R.parse dump with
  | Error m -> Alcotest.fail m
  | Ok vcd ->
    Alcotest.(check int) "three vars" 3 (List.length vcd.R.vars);
    Alcotest.(check (option string)) "n at 0" (Some "1")
      (Option.map Types.value_to_string (R.value_at vcd ~name:"n" ~time:0));
    Alcotest.(check bool) "n absent at 1" true
      (R.value_at vcd ~name:"n" ~time:1 = None);
    Alcotest.(check (option string)) "n at 2" (Some "2")
      (Option.map Types.value_to_string (R.value_at vcd ~name:"n" ~time:2));
    Alcotest.(check bool) "b false at 2" true
      (R.value_at vcd ~name:"b" ~time:2 = Some (Types.Vbool false));
    Alcotest.(check bool) "e pulses at 1" true
      (R.value_at vcd ~name:"e" ~time:1 = Some (Types.Vbool true));
    Alcotest.(check bool) "all absent at 3" true
      (R.value_at vcd ~name:"n" ~time:3 = None
       && R.value_at vcd ~name:"b" ~time:3 = None
       && R.value_at vcd ~name:"e" ~time:3 = None)

let test_roundtrip_case_study () =
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  let tr =
    match Polychrony.Pipeline.simulate ~hyperperiods:1 a with
    | Ok tr -> tr
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  let dump = Polychrony.Pipeline.vcd_of_trace a tr in
  match R.parse dump with
  | Error m -> Alcotest.fail m
  | Ok vcd ->
    (* the pipeline dump carries real model time: one instant lasts the
       global base tick, and the timescale is a legal 1 us *)
    Alcotest.(check string) "real timescale" "1 us" vcd.R.timescale;
    let base_us = Polychrony.Pipeline.global_base_us a in
    (* integer wires agree instant by instant *)
    List.iter
      (fun name ->
        List.iter
          (fun i ->
            let expected =
              match Trace.get tr i name with
              | Some (Types.Vint n) -> Some (Types.Vint n)
              | Some _ | None -> None
            in
            let got = R.value_at vcd ~name ~time:(i * base_us) in
            if expected <> None || got <> None then
              Alcotest.(check bool)
                (Printf.sprintf "%s at %d" name i)
                true (expected = got))
          (List.init (Trace.length tr) Fun.id))
      [ "display_pData"; "prProdCons_Queue_size";
        "prProdCons_thProducer_reqQueue_w" ]

(* Write an engine-simulated trace as VCD, read it back, and require
   presence and value to agree at every instant for every observable
   signal (events and booleans travel as 1-bit wires). *)
let test_roundtrip_simulated () =
  let p =
    B.proc ~name:"rt"
      ~inputs:[ Ast.var "x" Types.Tint ]
      ~outputs:
        [ Ast.var "acc" Types.Tint; Ast.var "pos" Types.Tbool;
          Ast.var "tick" Types.Tevent ]
      ~locals:[ Ast.var "mem" Types.Tint ]
      B.[ "mem" := delay (v "acc");
          "acc" := v "mem" + v "x";
          "pos" := v "acc" > i 2;
          "tick" := clk (v "x") ]
  in
  let kp =
    match N.process p with
    | Ok kp -> kp
    | Error m -> Alcotest.fail (Putil.Diag.to_string m)
  in
  let stimuli =
    [ [ ("x", Types.Vint 1) ]; []; [ ("x", Types.Vint 2) ];
      [ ("x", Types.Vint 3) ]; []; [ ("x", Types.Vint 0) ] ]
  in
  let tr =
    match Polysim.Engine.run kp ~stimuli with
    | Ok tr -> tr
    | Error m -> Alcotest.fail m
  in
  let dump = Vcd.to_string tr in
  match R.parse dump with
  | Error m -> Alcotest.fail m
  | Ok vcd ->
    let types =
      List.map
        (fun vd -> (vd.Ast.var_name, vd.Ast.var_type))
        (Trace.declarations tr)
    in
    List.iter
      (fun name ->
        let typ = List.assoc name types in
        for t = 0 to Trace.length tr - 1 do
          let expected =
            match Trace.get tr t name, typ with
            | None, _ -> None
            | Some v, (Types.Tevent | Types.Tbool) ->
              (* 1-bit wire representation *)
              let b =
                match v with
                | Types.Vevent -> true
                | Types.Vbool b -> b
                | Types.Vint n -> n <> 0
                | Types.Vreal r -> r <> 0.0
                | Types.Vstring s -> s <> ""
              in
              Some (Types.Vbool b)
            | Some v, _ -> Some v
          in
          let got = R.value_at vcd ~name ~time:t in
          Alcotest.(check bool)
            (Printf.sprintf "%s at instant %d" name t)
            true (expected = got)
        done)
      (Trace.observable tr)

(* strings with whitespace and '%', the literal value "x" (which must
   stay distinct from the absent marker), and reals where absence must
   stay distinct from a present 0.0 *)
let test_roundtrip_strings_and_reals () =
  let tr =
    Trace.create
      [ Ast.var "msg" Types.Tstring; Ast.var "temp" Types.Treal ]
  in
  Trace.push tr
    [ ("msg", Types.Vstring "hello world"); ("temp", Types.Vreal 0.0) ];
  Trace.push tr [ ("msg", Types.Vstring "x") ];
  Trace.push tr
    [ ("msg", Types.Vstring "50% done\nnext"); ("temp", Types.Vreal (0.1 +. 0.2)) ];
  Trace.push tr [ ("msg", Types.Vstring "") ];
  let dump = Vcd.to_string tr in
  match R.parse dump with
  | Error m -> Alcotest.fail m
  | Ok vcd ->
    let str_at t = R.value_at vcd ~name:"msg" ~time:t in
    Alcotest.(check bool) "string with space" true
      (str_at 0 = Some (Types.Vstring "hello world"));
    Alcotest.(check bool) "literal x is a value, not absence" true
      (str_at 1 = Some (Types.Vstring "x"));
    Alcotest.(check bool) "percent and newline" true
      (str_at 2 = Some (Types.Vstring "50% done\nnext"));
    Alcotest.(check bool) "empty string" true
      (str_at 3 = Some (Types.Vstring ""));
    let real_at t = R.value_at vcd ~name:"temp" ~time:t in
    Alcotest.(check bool) "present 0.0 is not absence" true
      (real_at 0 = Some (Types.Vreal 0.0));
    Alcotest.(check bool) "real absent at 1" true (real_at 1 = None);
    Alcotest.(check bool) "real full precision" true
      (real_at 2 = Some (Types.Vreal (0.1 +. 0.2)));
    Alcotest.(check bool) "real absent at 3" true (real_at 3 = None)

(* "a.b" and "a b" both sanitize to "a_b"; the writer must keep their
   $var declarations distinct so both remain addressable *)
let test_colliding_names () =
  let tr =
    Trace.create [ Ast.var "a.b" Types.Tint; Ast.var "a b" Types.Tint ]
  in
  Trace.push tr [ ("a.b", Types.Vint 1); ("a b", Types.Vint 2) ];
  let dump = Vcd.to_string tr in
  match R.parse dump with
  | Error m -> Alcotest.fail m
  | Ok vcd ->
    let declared = List.map snd vcd.R.vars in
    Alcotest.(check (list string)) "uniquified declarations"
      [ "a_b"; "a_b__2" ] declared;
    Alcotest.(check bool) "first keeps the plain name" true
      (R.value_at vcd ~name:"a_b" ~time:0 = Some (Types.Vint 1));
    Alcotest.(check bool) "second gets the suffix" true
      (R.value_at vcd ~name:"a_b__2" ~time:0 = Some (Types.Vint 2))

(* any byte string survives write + read-back unchanged *)
let prop_string_roundtrip =
  QCheck2.Test.make ~name:"vcd string values round-trip" ~count:200
    QCheck2.Gen.(oneof [ string_printable; string ])
    (fun s ->
      let tr = Trace.create [ Ast.var "s" Types.Tstring ] in
      Trace.push tr [ ("s", Types.Vstring s) ];
      Trace.push tr [];
      match R.parse (Vcd.to_string tr) with
      | Error _ -> false
      | Ok vcd ->
        R.value_at vcd ~name:"s" ~time:0 = Some (Types.Vstring s)
        && R.value_at vcd ~name:"s" ~time:1 = None)

let prop_real_roundtrip =
  QCheck2.Test.make ~name:"vcd real values round-trip" ~count:200
    QCheck2.Gen.(float_range (-1e12) 1e12)
    (fun r ->
      let tr = Trace.create [ Ast.var "r" Types.Treal ] in
      Trace.push tr [ ("r", Types.Vreal r) ];
      Trace.push tr [];
      match R.parse (Vcd.to_string tr) with
      | Error _ -> false
      | Ok vcd ->
        R.value_at vcd ~name:"r" ~time:0 = Some (Types.Vreal r)
        && R.value_at vcd ~name:"r" ~time:1 = None)

let test_gantt_renders () =
  let tasks =
    List.map
      (fun (name, period) ->
        Sched.Task.make ~name ~period_us:period ~wcet_us:1000 ())
      Polychrony.Case_study.thread_periods_us
  in
  match S.synthesize tasks with
  | Error f -> Alcotest.fail f.S.f_message
  | Ok s ->
    let g = Format.asprintf "%a" S.pp_gantt s in
    Alcotest.(check bool) "has execution marks" true (String.contains g '#');
    Alcotest.(check bool) "has waiting marks" true (String.contains g 'd');
    (* row per task *)
    List.iter
      (fun (name, _) ->
        let contains =
          let nh = String.length g and nn = String.length name in
          let rec go i =
            i + nn <= nh && (String.sub g i nn = name || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) (name ^ " row") true contains)
      Polychrony.Case_study.thread_periods_us;
    (* executing columns equal the summed wcet ticks *)
    let hashes =
      String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 g
    in
    Alcotest.(check int) "16 executed ticks" 16 hashes

let test_reader_rejects_garbage () =
  match R.parse "#notanumber\n1!" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

(* With a real tick duration the dump declares a legal "1 us" timescale
   and scales every timestamp, and the reader round-trips values at the
   scaled times. *)
let test_instant_us_timescale () =
  let tr = small_trace () in
  let dump = Vcd.to_string ~instant_us:500 tr in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "declares 1 us" true
    (contains dump "$timescale 1 us $end");
  Alcotest.(check bool) "instant 1 at #500" true (contains dump "#500\n");
  Alcotest.(check bool) "instant 2 at #1000" true (contains dump "#1000\n");
  Alcotest.(check bool) "no unscaled #1 stamp" false (contains dump "\n#1\n");
  match R.parse dump with
  | Error m -> Alcotest.fail m
  | Ok vcd ->
    Alcotest.(check string) "reader sees the scaled timescale" "1 us"
      vcd.R.timescale;
    Alcotest.(check (option string)) "n at 0" (Some "1")
      (Option.map Types.value_to_string (R.value_at vcd ~name:"n" ~time:0));
    Alcotest.(check (option string)) "n at 1000" (Some "2")
      (Option.map Types.value_to_string (R.value_at vcd ~name:"n" ~time:1000));
    Alcotest.(check bool) "e pulses at 500" true
      (R.value_at vcd ~name:"e" ~time:500 = Some (Types.Vbool true));
    Alcotest.(check bool) "rejects non-positive scale" true
      (match Vcd.to_string ~instant_us:0 tr with
       | exception Invalid_argument _ -> true
       | _ -> false)

let suite =
  [ ("vcd",
     [ Alcotest.test_case "roundtrip small" `Quick test_roundtrip_small;
       Alcotest.test_case "roundtrip case study" `Quick
         test_roundtrip_case_study;
       Alcotest.test_case "roundtrip simulated" `Quick
         test_roundtrip_simulated;
       Alcotest.test_case "strings and reals" `Quick
         test_roundtrip_strings_and_reals;
       Alcotest.test_case "colliding names" `Quick test_colliding_names;
       Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
       Alcotest.test_case "reader rejects garbage" `Quick
         test_reader_rejects_garbage;
       Alcotest.test_case "instant_us timescale" `Quick
         test_instant_us_timescale ]
     @ List.map QCheck_alcotest.to_alcotest
         [ prop_string_roundtrip; prop_real_roundtrip ]) ]
