(* The modes extension (paper Sec. VII perspective): AADL mode
   automata translated as SIGNAL automata — parsing, legality,
   translation, determinism of transition guards, and execution. *)

module Syn = Aadl.Syntax
module P = Polychrony.Pipeline
module Trace = Polysim.Trace
module B = Signal_lang.Builder

(* a sensor thread that degrades on a fault event and recovers on a
   reset event; its output value depends on the mode *)
let moded_src =
  {|package Moded
public
  thread sensor
    features
      pFault: in event port;
      pReset: in event port;
      sample: out event data port;
    modes
      Nominal: initial mode;
      Degraded: mode;
      t_fail: Nominal -[ pFault ]-> Degraded;
      t_heal: Degraded -[ pReset ]-> Nominal;
    properties
      Dispatch_Protocol => Periodic;
      Period => 4 ms;
      Compute_Execution_Time => 1 ms;
  end sensor;

  thread implementation sensor.impl
  end sensor.impl;

  process app
    features
      pFault: in event port;
      pReset: in event port;
      out_data: out event data port;
  end app;

  process implementation app.impl
    subcomponents
      s: thread sensor.impl;
    connections
      k0: port pFault -> s.pFault;
      k1: port pReset -> s.pReset;
      k2: port s.sample -> out_data;
  end app.impl;

  processor cpu end cpu;
  processor implementation cpu.impl end cpu.impl;

  system env_sys
    features
      fault: out event port;
      reset: out event port;
  end env_sys;
  system implementation env_sys.impl end env_sys.impl;

  system sink_sys
    features
      data: in event data port;
  end sink_sys;
  system implementation sink_sys.impl end sink_sys.impl;

  system rig end rig;
  system implementation rig.impl
    subcomponents
      environment: system env_sys.impl;
      sink: system sink_sys.impl;
      main: process app.impl;
      cpu0: processor cpu.impl;
    connections
      s0: port environment.fault -> main.pFault;
      s1: port environment.reset -> main.pReset;
      s2: port main.out_data -> sink.data;
    properties
      Actual_Processor_Binding => reference (cpu0) applies to main;
  end rig.impl;
end Moded;
|}

(* behaviour: emit 100+count in Nominal mode, 0 in Degraded *)
let moded_registry : Trans.Behavior.registry =
  Trans.Behavior.make ~id:"test_modes:sensor"
  [ ("sensor",
     fun ctx ->
       let cnt_stmts, n = Trans.Behavior.job_counter ctx in
       let nominal = ctx.Trans.Behavior.in_mode "Nominal" in
       cnt_stmts
       @ B.[ ctx.Trans.Behavior.out_item "sample"
             := if_ nominal (n + i 100) (i 0) ]) ]

let analyzed =
  lazy
    (match P.analyze ~registry:moded_registry moded_src with
     | Ok a -> a
     | Error m -> failwith (Putil.Diag.list_to_string m))

let test_parse_modes () =
  let pkg =
    match Aadl.Parser.parse_package moded_src with
    | Ok pkg -> pkg
    | Error m -> Alcotest.fail m
  in
  match Syn.find_type pkg "sensor" with
  | None -> Alcotest.fail "sensor missing"
  | Some ct ->
    Alcotest.(check int) "two modes" 2 (List.length ct.Syn.ct_modes);
    Alcotest.(check int) "two transitions" 2 (List.length ct.Syn.ct_transitions);
    (match ct.Syn.ct_modes with
     | [ m1; m2 ] ->
       Alcotest.(check bool) "Nominal initial" true m1.Syn.m_initial;
       Alcotest.(check bool) "Degraded not initial" false m2.Syn.m_initial
     | _ -> Alcotest.fail "mode list");
    match ct.Syn.ct_transitions with
    | [ t1; _ ] ->
      Alcotest.(check string) "src" "Nominal" t1.Syn.mt_src;
      Alcotest.(check string) "trigger" "pFault" t1.Syn.mt_trigger;
      Alcotest.(check string) "dst" "Degraded" t1.Syn.mt_dst
    | _ -> Alcotest.fail "transition list"

let test_modes_roundtrip () =
  let pkg =
    match Aadl.Parser.parse_package moded_src with
    | Ok pkg -> pkg
    | Error m -> Alcotest.fail m
  in
  let printed = Aadl.Printer.package_to_string pkg in
  match Aadl.Parser.parse_package printed with
  | Ok pkg2 ->
    Alcotest.(check bool) "roundtrip" true
      (Syn.strip_locs pkg = Syn.strip_locs pkg2)
  | Error m -> Alcotest.fail (m ^ "\n" ^ printed)

let test_mode_checks () =
  let bad cases =
    List.iter
      (fun (label, src) ->
        match Aadl.Parser.parse_package src with
        | Error _ -> Alcotest.fail (label ^ ": must parse")
        | Ok pkg ->
          Alcotest.(check bool) label true
            (Aadl.Check.errors (Aadl.Check.check_package pkg) <> []))
      cases
  in
  bad
    [ ("no initial mode",
       {|package P public thread t features e: in event port;
         modes M1: mode; M2: mode; end t; end P;|});
      ("two initial modes",
       {|package P public thread t features e: in event port;
         modes M1: initial mode; M2: initial mode; end t; end P;|});
      ("unknown trigger",
       {|package P public thread t features e: in event port;
         modes M1: initial mode; M2: mode;
         tr: M1 -[ nope ]-> M2; end t; end P;|});
      ("unknown mode in transition",
       {|package P public thread t features e: in event port;
         modes M1: initial mode;
         tr: M1 -[ e ]-> M9; end t; end P;|});
      ("data port trigger",
       {|package P public thread t features d: in data port;
         modes M1: initial mode; M2: mode;
         tr: M1 -[ d ]-> M2; end t; end P;|}) ]

let test_translation_shape () =
  let a = Lazy.force analyzed in
  let prog = a.P.translation.Trans.System_trans.program in
  match Signal_lang.Ast.find_process prog "th_rig_main_s" with
  | None -> Alcotest.fail "sensor model missing"
  | Some p ->
    Alcotest.(check bool) "Mode output declared" true
      (List.exists
         (fun vd -> vd.Signal_lang.Ast.var_name = "Mode")
         p.Signal_lang.Ast.outputs);
    (* transitions become partial definitions of Mode *)
    let partials =
      List.length
        (List.filter
           (fun st ->
             match Signal_lang.Ast.desc st with
             | Signal_lang.Ast.Spartial ("Mode", _) -> true
             | _ -> false)
           p.Signal_lang.Ast.body)
    in
    Alcotest.(check int) "two transitions + fallback" 3 partials

let test_mode_determinism () =
  (* transition guards from distinct modes are provably exclusive
     thanks to the pre_mode = k literals: deterministic *)
  let a = Lazy.force analyzed in
  Alcotest.(check bool) "moded system deterministic" true
    a.P.determinism.Analysis.Determinism.deterministic

let test_conflicting_transitions_flagged () =
  (* two transitions out of the same mode with different triggers can
     fire together: the determinism analysis must flag them *)
  let src =
    {|package Conflict public
      thread t
        features
          e1: in event port;
          e2: in event port;
        modes
          M0: initial mode; M1: mode; M2: mode;
          ta: M0 -[ e1 ]-> M1;
          tb: M0 -[ e2 ]-> M2;
        properties Dispatch_Protocol => Periodic; Period => 4 ms;
          Compute_Execution_Time => 1 ms;
      end t;
      thread implementation t.impl end t.impl;
      process q end q;
      process implementation q.impl
        subcomponents w: thread t.impl;
        connections k0: port pe1 -> w.e1; k1: port pe2 -> w.e2;
      end q.impl;
      system s end s;
      system implementation s.impl
        subcomponents h: process q.impl; c: processor pc.impl;
        properties Actual_Processor_Binding => reference (c) applies to h;
      end s.impl;
      processor pc end pc;
      processor implementation pc.impl end pc.impl;
      end Conflict;|}
  in
  (* note: q has no features pe1/pe2 declared; add them *)
  let src =
    Str.global_replace (Str.regexp_string "process q end q;")
      "process q features pe1: in event port; pe2: in event port; end q;"
      src
  in
  match P.analyze src with
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  | Ok a ->
    Alcotest.(check bool) "conflict flagged non-deterministic" false
      a.P.determinism.Analysis.Determinism.deterministic

let test_mode_execution () =
  let a = Lazy.force analyzed in
  (* fault arrives in frame 1 (tick 5), reset in frame 5 (tick 21):
     the sensor degrades from its next dispatch and recovers later *)
  let env t =
    if t = 5 then [ ("environment_fault", 1) ]
    else if t = 21 then [ ("environment_reset", 1) ]
    else []
  in
  match P.simulate ~env ~hyperperiods:10 a with
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  | Ok tr ->
    let modes =
      List.map
        (function Signal_lang.Types.Vint n -> n | _ -> -1)
        (Trace.values_of tr "main_s_mode")
    in
    Alcotest.(check bool) "starts Nominal (0)" true (List.hd modes = 0);
    Alcotest.(check bool) "degrades to 1" true (List.mem 1 modes);
    (* recovery: after the reset the mode returns to 0 *)
    let rec after_degraded = function
      | 1 :: rest -> List.mem 0 rest
      | _ :: rest -> after_degraded rest
      | [] -> false
    in
    Alcotest.(check bool) "recovers to Nominal" true (after_degraded modes);
    (* behaviour follows the mode: 0 emitted while degraded *)
    let samples =
      List.map
        (function Signal_lang.Types.Vint n -> n | _ -> -1)
        (Trace.values_of tr "sink_data")
    in
    Alcotest.(check bool) "nominal samples >= 100" true
      (List.exists (fun s -> s >= 100) samples);
    Alcotest.(check bool) "degraded samples = 0" true
      (List.mem 0 samples)

let test_mode_compiled_equivalence () =
  let a = Lazy.force analyzed in
  let env t = if t = 5 then [ ("environment_fault", 1) ] else [] in
  match
    P.simulate ~env ~hyperperiods:4 a,
    P.simulate ~compiled:true ~env ~hyperperiods:4 a
  with
  | Ok t1, Ok t2 ->
    Alcotest.(check bool) "interpreter = compiler on moded system" true
      (List.for_all
         (fun x ->
           List.for_all
             (fun i -> Trace.get t1 i x = Trace.get t2 i x)
             (List.init (Trace.length t1) Fun.id))
         (Trace.observable t1))
  | Error m, _ | _, Error m -> Alcotest.fail (Putil.Diag.list_to_string m)

let suite =
  [ ("modes",
     [ Alcotest.test_case "parse" `Quick test_parse_modes;
       Alcotest.test_case "printer roundtrip" `Quick test_modes_roundtrip;
       Alcotest.test_case "legality checks" `Quick test_mode_checks;
       Alcotest.test_case "translation shape" `Quick test_translation_shape;
       Alcotest.test_case "determinism provable" `Quick test_mode_determinism;
       Alcotest.test_case "conflicting transitions flagged" `Quick
         test_conflicting_transitions_flagged;
       Alcotest.test_case "execution" `Quick test_mode_execution;
       Alcotest.test_case "compiled equivalence" `Quick
         test_mode_compiled_equivalence ]) ]
