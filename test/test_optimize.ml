(* Kernel optimization passes (ref [15]): behaviour preservation on
   outputs, size reduction, idempotence. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module K = Signal_lang.Kernel
module O = Signal_lang.Optimize
module Engine = Polysim.Engine
module Trace = Polysim.Trace

let vi n = Types.Vint n

let outputs_equal kp tr1 tr2 =
  let outs = List.map (fun vd -> vd.Ast.var_name) kp.K.koutputs in
  Trace.length tr1 = Trace.length tr2
  && List.for_all
       (fun x ->
         List.for_all
           (fun i -> Trace.get tr1 i x = Trace.get tr2 i x)
           (List.init (Trace.length tr1) Fun.id))
       outs

let check_preserves p stimuli =
  let kp = N.process_exn p in
  let kp' = O.optimize kp in
  match Engine.run kp ~stimuli, Engine.run kp' ~stimuli with
  | Ok t1, Ok t2 ->
    Alcotest.(check bool) "outputs preserved" true (outputs_equal kp t1 t2);
    kp, kp'
  | Error m, _ -> Alcotest.fail ("original: " ^ m)
  | _, Error m -> Alcotest.fail ("optimized: " ^ m)

let test_dead_code_removed () =
  let p =
    B.proc ~name:"dead"
      ~inputs:[ Ast.var "x" Types.Tint ]
      ~outputs:[ Ast.var "y" Types.Tint ]
      ~locals:[ Ast.var "unused" Types.Tint; Ast.var "unused2" Types.Tint ]
      B.[ "y" := v "x" + i 1;
          "unused" := v "x" * i 2;
          "unused2" := delay (v "unused") ]
  in
  let kp, kp' =
    check_preserves p [ [ ("x", vi 1) ]; [ ("x", vi 2) ]; [] ]
  in
  Alcotest.(check bool) "equations reduced" true
    (List.length kp'.K.keqs < List.length kp.K.keqs);
  Alcotest.(check bool) "unused local dropped" true
    (not (List.exists (fun vd -> vd.Ast.var_name = "unused") kp'.K.klocals))

let test_copy_chain_collapsed () =
  let p =
    B.proc ~name:"copies"
      ~inputs:[ Ast.var "x" Types.Tint ]
      ~outputs:[ Ast.var "y" Types.Tint ]
      ~locals:[ Ast.var "a" Types.Tint; Ast.var "b" Types.Tint ]
      B.[ "a" := v "x"; "b" := v "a"; "y" := v "b" + i 0 ]
  in
  let _, kp' = check_preserves p [ [ ("x", vi 5) ]; [ ("x", vi 7) ] ] in
  (* a and b collapse into x *)
  Alcotest.(check bool) "copies removed" true (List.length kp'.K.keqs <= 2)

let test_unused_fifo_dropped () =
  let p =
    B.proc ~name:"deadfifo"
      ~inputs:[ Ast.var "x" Types.Tint; Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "y" Types.Tint ]
      ~locals:[ Ast.var "d" Types.Tint; Ast.var "s" Types.Tint ]
      B.[ "y" := v "x" + i 1;
          inst ~params:[ vi 4; Types.Vstring "dropoldest" ] ~label:"q" "fifo" [ v "x"; v "e" ]
            [ "d"; "s" ] ]
  in
  let kp, kp' =
    check_preserves p [ [ ("x", vi 1) ]; [ ("x", vi 2); ("e", Types.Vevent) ] ]
  in
  Alcotest.(check int) "fifo was there" 1 (List.length kp.K.kinstances);
  Alcotest.(check int) "fifo dropped" 0 (List.length kp'.K.kinstances)

let test_used_fifo_kept () =
  let p =
    B.proc ~name:"livefifo"
      ~inputs:[ Ast.var "x" Types.Tint; Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "y" Types.Tint ]
      ~locals:[ Ast.var "d" Types.Tint; Ast.var "s" Types.Tint ]
      B.[ "y" := v "d" + i 1;
          inst ~params:[ vi 4; Types.Vstring "dropoldest" ] ~label:"q" "fifo" [ v "x"; v "e" ]
            [ "d"; "s" ] ]
  in
  let _, kp' =
    check_preserves p
      [ [ ("x", vi 1) ]; [ ("e", Types.Vevent) ];
        [ ("x", vi 2); ("e", Types.Vevent) ] ]
  in
  Alcotest.(check int) "fifo kept" 1 (List.length kp'.K.kinstances)

let test_constraint_kept_when_relevant () =
  (* the clock constraint determines y's presence: must survive *)
  let p =
    B.proc ~name:"constrained"
      ~inputs:[ Ast.var "x" Types.Tint; Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "y" Types.Tint ]
      B.[ "y" := delay (v "y") + i 1; clk (v "y") ^= clk (v "e") ]
  in
  let _, kp' =
    check_preserves p [ [ ("e", Types.Vevent) ]; []; [ ("e", Types.Vevent) ] ]
  in
  Alcotest.(check int) "constraint kept" 1 (List.length kp'.K.kconstraints)

let test_case_study_shrinks_and_preserves () =
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  let kp = a.Polychrony.Pipeline.kernel in
  let kp' = O.optimize kp in
  Alcotest.(check bool) "fewer signals" true
    (List.length (K.signals kp') < List.length (K.signals kp));
  let stimuli =
    List.init 48 (fun t ->
        ("tick", Types.Vevent)
        :: (if t = 0 then [ ("env_pGo", vi 1) ] else []))
  in
  match Engine.run kp ~stimuli, Engine.run kp' ~stimuli with
  | Ok t1, Ok t2 ->
    Alcotest.(check bool) "case-study outputs preserved" true
      (outputs_equal kp t1 t2)
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_idempotent () =
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  let kp' = O.optimize a.Polychrony.Pipeline.kernel in
  let kp'' = O.optimize kp' in
  Alcotest.(check string) "fixed point" (O.stats kp') (O.stats kp'')

let suite =
  [ ("optimize",
     [ Alcotest.test_case "dead code removed" `Quick test_dead_code_removed;
       Alcotest.test_case "copy chains collapsed" `Quick
         test_copy_chain_collapsed;
       Alcotest.test_case "unused fifo dropped" `Quick test_unused_fifo_dropped;
       Alcotest.test_case "used fifo kept" `Quick test_used_fifo_kept;
       Alcotest.test_case "relevant constraint kept" `Quick
         test_constraint_kept_when_relevant;
       Alcotest.test_case "case study shrinks, preserved" `Quick
         test_case_study_shrinks_and_preserves;
       Alcotest.test_case "idempotent" `Quick test_idempotent ]) ]
