(* Cross-validation: what the clock calculus PROVES statically must
   hold in every simulated trace — exclusivity, clock inclusion,
   synchrony and emptiness. Run on random clock-safe programs and on
   the translated case study. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module C = Clocks.Calculus
module Trace = Polysim.Trace

let signals_of tr = List.map (fun vd -> vd.Ast.var_name) (Trace.declarations tr)

(* check every proved static relation against the trace *)
let validate_against_trace calc tr =
  let names = signals_of tr in
  let present i x = Trace.get tr i x <> None in
  let horizon = Trace.length tr in
  let violations = ref [] in
  let say fmt = Format.kasprintf (fun m -> violations := m :: !violations) fmt in
  let arr = Array.of_list names in
  let n = Array.length arr in
  for a = 0 to n - 1 do
    let x = arr.(a) in
    if C.is_null calc x && Trace.present_count tr x > 0 then
      say "%s proved null but present in the trace" x;
    for b = 0 to n - 1 do
      if a <> b then begin
        let y = arr.(b) in
        if C.same_class calc x y then
          for i = 0 to horizon - 1 do
            if present i x <> present i y then
              say "%s and %s proved synchronous, differ at %d" x y i
          done
        else begin
          if C.exclusive calc x y then
            for i = 0 to horizon - 1 do
              if present i x && present i y then
                say "%s and %s proved exclusive, both present at %d" x y i
            done;
          if C.subclock calc x y then
            for i = 0 to horizon - 1 do
              if present i x && not (present i y) then
                say "%s proved subclock of %s, violated at %d" x y i
            done
        end
      end
    done
  done;
  List.rev !violations

let test_case_study_crossval () =
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  match Polychrony.Pipeline.simulate ~hyperperiods:2 a with
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  | Ok tr ->
    (* restrict to observable signals to keep the n² check tractable *)
    let calc = Lazy.force a.Polychrony.Pipeline.calc in
    let obs = Trace.observable tr in
    let present i x = Trace.get tr i x <> None in
    let checked = ref 0 in
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            if x < y then begin
              if C.exclusive calc x y then begin
                incr checked;
                for i = 0 to Trace.length tr - 1 do
                  if present i x && present i y then
                    Alcotest.fail
                      (Printf.sprintf "%s # %s violated at %d" x y i)
                done
              end;
              if C.same_class calc x y then begin
                incr checked;
                for i = 0 to Trace.length tr - 1 do
                  if present i x <> present i y then
                    Alcotest.fail
                      (Printf.sprintf "%s ^= %s violated at %d" x y i)
                done
              end
            end)
          obs)
      obs;
    Alcotest.(check bool) "some relations were actually proved" true
      (!checked > 10)

(* Interpreter/compiler agreement: both evaluators are lowered from
   the same program IR, so their traces must agree signal-by-signal at
   every instant on the translated case studies. *)
let assert_traces_agree what tr_i tr_c =
  Alcotest.(check int)
    (what ^ ": trace lengths")
    (Trace.length tr_i) (Trace.length tr_c);
  let names = signals_of tr_i in
  Alcotest.(check int)
    (what ^ ": declared signals")
    (List.length names)
    (List.length (signals_of tr_c));
  List.iter
    (fun x ->
      for i = 0 to Trace.length tr_i - 1 do
        let vi = Trace.get tr_i i x and vc = Trace.get tr_c i x in
        if vi <> vc then
          Alcotest.fail
            (Printf.sprintf "%s: %s differs at instant %d (%s vs %s)" what x
               i
               (match vi with
                | None -> "absent"
                | Some v -> Types.value_to_string v)
               (match vc with
                | None -> "absent"
                | Some v -> Types.value_to_string v))
      done)
    names

let simulate_both ?registry what source =
  let a =
    match Polychrony.Pipeline.analyze ?registry source with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  let run compiled =
    match Polychrony.Pipeline.simulate ~compiled ~hyperperiods:2 a with
    | Ok tr -> tr
    | Error m -> Alcotest.fail (what ^ ": " ^ (Putil.Diag.list_to_string m))
  in
  assert_traces_agree what (run false) (run true)

let test_agreement_producer_consumer () =
  simulate_both ~registry:Polychrony.Case_study.registry_nominal
    "ProducerConsumer" Polychrony.Case_study.aadl_source

let test_agreement_flight_controller () =
  simulate_both "FlightControl" Test_latency.flight_aadl

(* reuse a small clock-safe generator (subset of the compile one) *)
let gen_program =
  let open QCheck2.Gen in
  let* n = int_range 1 5 in
  let rec build k env acc =
    if k = 0 then return (List.rev acc, env)
    else
      let* pick = int_range 0 5 in
      let name = Printf.sprintf "s%d" (List.length acc) in
      let* src = oneofl env in
      let* e, ty =
        match pick with
        | 0 | 1 ->
          let* cnd = oneofl env in
          return (B.(when_ (v src) (v cnd < i 2)), `S)
        | 2 ->
          let* other = oneofl env in
          return (B.(default (v src) (v other)), `S)
        | 3 -> return (B.(delay (v src)), `S)
        | _ -> return (B.(v src + i 1), `S)
      in
      ignore ty;
      build (k - 1) (name :: env) ((name, e) :: acc)
  in
  let* locals, _ = build n [ "x" ] [] in
  let decls = List.map (fun (nm, _) -> Ast.var nm Types.Tint) locals in
  let body = List.map (fun (nm, e) -> B.(nm := e)) locals in
  let last = fst (List.nth locals (List.length locals - 1)) in
  return
    (B.proc ~name:"cv"
       ~inputs:[ Ast.var "x" Types.Tint ]
       ~outputs:[ Ast.var "out" Types.Tint ]
       ~locals:decls
       (body @ [ B.("out" := v last) ]))

let prop_calculus_sound_on_traces =
  QCheck2.Test.make ~name:"static clock proofs hold in traces" ~count:200
    QCheck2.Gen.(pair gen_program (list_size (return 20) (int_range (-3) 3)))
    (fun (p, xs) ->
      match N.process p with
      | Error _ -> true
      | Ok kp -> (
        let calc = C.analyze kp in
        let stimuli = List.map (fun n -> [ ("x", Types.Vint n) ]) xs in
        match Polysim.Engine.run kp ~stimuli with
        | Error _ -> true  (* e.g. division by zero: not our concern *)
        | Ok tr -> (
          match validate_against_trace calc tr with
          | [] -> true
          | v :: _ ->
            Format.eprintf "@.CROSSVAL: %s on:@.%a@." v
              Signal_lang.Pp.pp_process p;
            false)))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_calculus_sound_on_traces ]

let suite =
  [ ("crossval",
     [ Alcotest.test_case "case study proofs hold" `Quick
         test_case_study_crossval;
       Alcotest.test_case "engine/compile agree on ProducerConsumer" `Quick
         test_agreement_producer_consumer;
       Alcotest.test_case "engine/compile agree on FlightControl" `Quick
         test_agreement_flight_controller ]
     @ qsuite) ]
