(* Symbolic reachability: the BDD engine must agree with explicit
   enumeration on every model it accepts, and its counterexamples must
   replay on the explicit simulator. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module Compile = Polysim.Compile
module E = Polysim.Explore
module S = Polysim.Symbolic
module M = Polysim.Models

let ve = Types.Vevent
let vi n = Types.Vint n
let vb b = Types.Vbool b

(* integer counter modulo 3, advanced by [tk] *)
let mod_counter =
  lazy
    (N.process_exn
       (B.proc ~name:"mod_counter"
          ~inputs:[ Ast.var "tk" Types.Tevent ]
          ~outputs:[ Ast.var "out" Types.Tint ]
          ~locals:[ Ast.var "c" Types.Tint; Ast.var "pc" Types.Tint ]
          B.[
            "pc" := delay ~init:(vi 0) (v "c");
            "c" := (v "pc" + i 1) mod i 3;
            v "c" ^= v "tk";
            "out" := v "c";
          ]))

let mod_counter_inputs = [ ("tk", [ None; Some ve ]) ]

(* a bounded FIFO, to cover the queue state encoding *)
let queue_model =
  lazy
    (N.process_exn
       (B.proc ~name:"queue"
          ~inputs:[ Ast.var "x" Types.Tint; Ast.var "pop" Types.Tevent ]
          ~outputs:[ Ast.var "d" Types.Tint; Ast.var "s" Types.Tint ]
          B.[
            inst
              ~params:[ vi 2; Types.Vstring "dropoldest" ]
              ~label:"q" "fifo"
              [ v "x"; v "pop" ]
              [ "d"; "s" ];
          ]))

let queue_inputs = [ ("x", [ None; Some (vi 1) ]); ("pop", [ None; Some ve ]) ]

(* the parity corpus: (label, kernel, inputs, prop) *)
let corpus =
  lazy
    (let counter_props k =
       [ M.counters_prop;
         S.Never_value ("lo0", vb true);
         S.Never_value ("lo0", vb false);
         S.Never_value ("hi0", vb true) ]
       @ (if k >= 2 then [ S.Never_present "lo1" ] else [])
     in
     List.concat_map
       (fun k ->
         List.map
           (fun p -> (Printf.sprintf "counters%d" k, M.counters k,
                      M.counters_inputs k, p))
           (counter_props k))
       [ 1; 2; 3 ]
     @ List.map
         (fun p -> ("mod_counter", Lazy.force mod_counter,
                    mod_counter_inputs, p))
         [ S.Never_value ("out", vi 0);
           S.Never_value ("out", vi 1);
           S.Never_value ("out", vi 5);
           S.Never_present "out" ]
     @ List.map
         (fun p -> ("queue", Lazy.force queue_model, queue_inputs, p))
         [ S.Never_value ("s", vi 2);
           S.Never_present "d";
           S.Never_value ("d", vi 9) ])

(* one parity comparison; returns an error description or None *)
let compare_engines ?(strict_states = true) label kp inputs prop depth =
  let sym = E.check_symbolic ~depth ~inputs ~prop kp in
  let exp =
    E.check ~depth ~jobs:1 ~inputs ~safe:(S.safe_of_prop prop) kp
  in
  match (sym, exp) with
  | Ok (E.Holds, s1), Ok (E.Holds, s2) ->
    if strict_states && s1 <> s2 then
      Some
        (Printf.sprintf "%s depth %d: symbolic %d states, explicit %d"
           label depth s1 s2)
    else None
  | Ok (E.Violated _, _), Ok (E.Violated _, _) -> None
  | Error d, _ when d.Putil.Diag.code = S.code_unsupported ->
    Some (Printf.sprintf "%s: unexpectedly outside the fragment" label)
  | Error d1, Error d2 ->
    if d1.Putil.Diag.code = d2.Putil.Diag.code then None
    else
      Some
        (Printf.sprintf "%s depth %d: codes differ (%s vs %s)" label depth
           d1.Putil.Diag.code d2.Putil.Diag.code)
  | _ ->
    let show = function
      | Ok (E.Holds, s) -> Printf.sprintf "Holds/%d" s
      | Ok (E.Violated t, _) -> Printf.sprintf "Violated/%d" (List.length t)
      | Error d -> Printf.sprintf "Error[%s]" d.Putil.Diag.code
    in
    Some
      (Printf.sprintf "%s depth %d: symbolic %s, explicit %s" label depth
         (show sym) (show exp))

(* exhaustive sweep of the corpus at every small depth *)
let test_parity_sweep () =
  List.iter
    (fun (label, kp, inputs, prop) ->
      List.iter
        (fun depth ->
          match compare_engines label kp inputs prop depth with
          | None -> ()
          | Some m -> Alcotest.fail m)
        [ 1; 2; 3; 4 ])
    (Lazy.force corpus)

(* the same parity, sampled as a qcheck property (random case/depth) *)
let prop_parity =
  QCheck2.Test.make ~name:"symbolic/explicit verdict parity" ~count:40
    QCheck2.Gen.(
      let n = List.length (Lazy.force corpus) in
      pair (int_range 0 (n - 1)) (int_range 1 5))
    (fun (ci, depth) ->
      let label, kp, inputs, prop = List.nth (Lazy.force corpus) ci in
      match compare_engines label kp inputs prop depth with
      | None -> true
      | Some m -> QCheck2.Test.fail_report m)

(* the counter family holds with exactly 3^k states, both engines *)
let test_counters_exact_states () =
  let kp = M.counters 3 in
  let inputs = M.counters_inputs 3 in
  (match E.check_symbolic ~depth:8 ~inputs ~prop:M.counters_prop kp with
  | Ok (E.Holds, s) -> Alcotest.(check int) "symbolic 3^3 states" 27 s
  | Ok (E.Violated _, _) -> Alcotest.fail "alarm is unreachable"
  | Error d -> Alcotest.fail (Putil.Diag.to_string d));
  match
    E.check ~depth:8 ~jobs:1 ~inputs
      ~safe:(S.safe_of_prop M.counters_prop) kp
  with
  | Ok (E.Holds, s) -> Alcotest.(check int) "explicit 3^3 states" 27 s
  | Ok (E.Violated _, _) -> Alcotest.fail "alarm is unreachable (explicit)"
  | Error d -> Alcotest.fail (Putil.Diag.to_string d)

(* a symbolic counterexample is replayed before being reported, so a
   Violated verdict carries an explicitly-validated stimulus sequence *)
let test_counters_violation_replays () =
  let kp = M.counters 2 in
  let inputs = M.counters_inputs 2 in
  match
    E.check_symbolic ~depth:2 ~inputs
      ~prop:(S.Never_value ("lo0", vb true)) kp
  with
  | Ok (E.Violated trail, _) ->
    Alcotest.(check int) "violated at the first instant" 1
      (List.length trail);
    Alcotest.(check bool) "the violating stimulus fires e0" true
      (List.mem_assoc "e0" (List.hd trail))
  | Ok (E.Holds, _) -> Alcotest.fail "lo0=true is reachable at depth 1"
  | Error d -> Alcotest.fail (Putil.Diag.to_string d)

(* runtime errors surface with the same code as the explicit engine *)
let test_runtime_error_parity () =
  let kp =
    N.process_exn
      (B.proc ~name:"divz"
         ~inputs:[ Ast.var "y" Types.Tint ]
         ~outputs:[ Ast.var "q" Types.Tint ]
         B.[ "q" := i 6 / v "y" ])
  in
  let inputs = [ ("y", [ Some (vi 0); Some (vi 3) ]) ] in
  let prop = S.Never_value ("q", vi 99) in
  let code = function
    | Error d -> d.Putil.Diag.code
    | Ok _ -> "no error"
  in
  let sym = E.check_symbolic ~depth:2 ~inputs ~prop kp in
  let exp = E.check ~depth:2 ~jobs:1 ~inputs ~safe:(S.safe_of_prop prop) kp in
  Alcotest.(check string) "explicit raises EXPLORE-SIM-001"
    "EXPLORE-SIM-001" (code exp);
  Alcotest.(check string) "symbolic replays to the same code"
    "EXPLORE-SIM-001" (code sym)

(* unbounded value domains reaching a register are out of fragment *)
let test_unsupported_fragment () =
  let kp =
    N.process_exn
      (B.proc ~name:"unbounded"
         ~inputs:[ Ast.var "tk" Types.Tevent ]
         ~outputs:[ Ast.var "out" Types.Tint ]
         ~locals:[ Ast.var "c" Types.Tint; Ast.var "pc" Types.Tint ]
         B.[
           "pc" := delay ~init:(vi 0) (v "c");
           "c" := v "pc" + i 1;
           v "c" ^= v "tk";
           "out" := v "c";
         ])
  in
  match
    E.check_symbolic ~depth:3 ~inputs:[ ("tk", [ None; Some ve ]) ]
      ~prop:(S.Never_value ("out", vi 5)) kp
  with
  | Error d ->
    Alcotest.(check string) "EXPLORE-SYM-001" S.code_unsupported
      d.Putil.Diag.code
  | Ok _ -> Alcotest.fail "unbounded counter must be rejected"

(* stimulus validation is shared by all engines *)
let test_stimulus_validation () =
  let kp = M.counters 1 in
  let bad = [ ("nope", [ None; Some ve ]) ] in
  let check_code r =
    match r with
    | Error d ->
      Alcotest.(check string) "EXPLORE-SIM-001" "EXPLORE-SIM-001"
        d.Putil.Diag.code
    | Ok _ -> Alcotest.fail "unknown stimulus target must be rejected"
  in
  check_code (E.check ~depth:2 ~jobs:1 ~inputs:bad ~safe:(fun _ -> true) kp);
  check_code (E.check_dfs ~depth:2 ~inputs:bad ~safe:(fun _ -> true) kp);
  check_code
    (E.check_symbolic ~depth:2 ~inputs:bad ~prop:M.counters_prop kp);
  (* all-absent alternatives for an unknown signal stay harmless *)
  match
    E.check ~depth:2 ~jobs:1
      ~inputs:(("ghost", [ None ]) :: M.counters_inputs 1)
      ~safe:(fun _ -> true) kp
  with
  | Ok (E.Holds, _) -> ()
  | Ok (E.Violated _, _) | Error _ ->
    Alcotest.fail "all-absent unknown stimulus must be ignored"

(* satellite: the visited-set key must not allocate beyond the digest —
   per-call cost is a small constant, unlike a Marshal image *)
let test_state_key_allocation () =
  let kp = M.counters 4 in
  let c = Result.get_ok (Compile.compile kp) in
  let kb = Compile.keybuf () in
  ignore (Compile.state_key c kb);
  let words n =
    let w0 = Gc.minor_words () in
    for _ = 1 to n do
      ignore (Compile.state_key c kb)
    done;
    Gc.minor_words () -. w0
  in
  let per_call = words 2000 /. 2000. in
  Alcotest.(check bool)
    (Printf.sprintf "state_key allocates %.1f words/call" per_call)
    true (per_call < 64.)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_parity ]

let suite =
  [ ("symbolic",
     [ Alcotest.test_case "engine parity sweep" `Quick test_parity_sweep;
       Alcotest.test_case "counters exact state count" `Quick
         test_counters_exact_states;
       Alcotest.test_case "counterexample replays" `Quick
         test_counters_violation_replays;
       Alcotest.test_case "runtime error parity" `Quick
         test_runtime_error_parity;
       Alcotest.test_case "unsupported fragment" `Quick
         test_unsupported_fragment;
       Alcotest.test_case "stimulus validation" `Quick
         test_stimulus_validation;
       Alcotest.test_case "state_key allocation" `Quick
         test_state_key_allocation ]
     @ qsuite) ]
