(* Putil.Metrics: instruments, snapshots, JSON rendering, and the
   end-to-end smoke check that a pipeline run actually feeds the global
   registry (what `asme2ssme --stats` prints). *)

module M = Putil.Metrics

let test_counters () =
  let r = M.create () in
  let c = M.counter ~registry:r "t.hits" in
  M.incr c;
  M.incr ~by:41 c;
  Alcotest.(check int) "counter accumulates" 42 (M.counter_value r "t.hits");
  Alcotest.(check int) "absent counter reads 0" 0 (M.counter_value r "t.nope");
  let c' = M.counter ~registry:r "t.hits" in
  M.incr c';
  Alcotest.(check int) "get-or-create shares state" 43
    (M.counter_value r "t.hits");
  M.reset r;
  Alcotest.(check int) "reset zeroes" 0 (M.counter_value r "t.hits");
  Alcotest.(check bool) "reset keeps the instrument" true
    (M.find r "t.hits" <> None)

let test_gauges_and_timers () =
  let r = M.create () in
  let g = M.gauge ~registry:r "t.level" in
  M.set g 7;
  M.max_gauge g 3;
  Alcotest.(check int) "max_gauge keeps the max" 7 (M.counter_value r "t.level");
  M.max_gauge g 9;
  Alcotest.(check int) "max_gauge raises" 9 (M.counter_value r "t.level");
  let tm = M.timer ~registry:r "t.work_ns" in
  let x = M.time tm (fun () -> 5) in
  Alcotest.(check int) "time returns the thunk value" 5 x;
  (try M.time tm (fun () -> failwith "boom") with Failure _ -> 0) |> ignore;
  M.add_span_ns tm 1_000;
  (match M.find r "t.work_ns" with
   | Some (M.Timer { spans; total_ns }) ->
     Alcotest.(check int) "spans recorded, raising thunk included" 3 spans;
     Alcotest.(check bool) "total accumulates" true (total_ns >= 1_000)
   | _ -> Alcotest.fail "timer stat missing");
  (* name reuse with a different kind is a programming error *)
  match M.gauge ~registry:r "t.work_ns" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ()

let test_histogram () =
  let r = M.create () in
  let h = M.histogram ~registry:r "t.sizes" in
  List.iter (M.observe h) [ 1.0; 4.0; 16.0 ];
  match M.find r "t.sizes" with
  | Some (M.Histogram { count; sum; min; max }) ->
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check (float 1e-9)) "sum" 21.0 sum;
    Alcotest.(check (float 1e-9)) "min" 1.0 min;
    Alcotest.(check (float 1e-9)) "max" 16.0 max
  | _ -> Alcotest.fail "histogram stat missing"

(* minimal RFC 8259 well-formedness checker, enough to validate our own
   serializer's output without an external JSON dependency *)
let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail = ref false in
  let expect c =
    if peek () = Some c then advance () else fail := true
  in
  let skip_ws () =
    while (match peek () with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false)
    do advance () done
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            if peek () = Some ',' then begin advance (); members () end
            else expect '}'
          in
          members ()
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec elements () =
            value ();
            skip_ws ();
            if peek () = Some ',' then begin advance (); elements () end
            else expect ']'
          in
          elements ()
        end
      | Some '"' -> string_lit ()
      | Some ('t' | 'f' | 'n') -> keyword ()
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail := true
    end
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail := true
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
           advance ();
           go ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             (match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail := true)
           done;
           go ()
         | _ -> fail := true)
      | Some c when Char.code c < 0x20 -> fail := true
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  and keyword () =
    let kw k =
      let l = String.length k in
      if !pos + l <= n && String.sub s !pos l = k then pos := !pos + l
      else fail := true
    in
    match peek () with
    | Some 't' -> kw "true"
    | Some 'f' -> kw "false"
    | _ -> kw "null"
  and number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let seen = ref false in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        seen := true;
        advance ()
      done;
      if not !seen then fail := true
    in
    digits ();
    if peek () = Some '.' then begin advance (); digits () end;
    (match peek () with
     | Some ('e' | 'E') ->
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ())
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_json_well_formed () =
  let r = M.create () in
  M.incr (M.counter ~registry:r "a.count");
  M.set (M.gauge ~registry:r "a.level") (-3);
  M.add_span_ns (M.timer ~registry:r "a.span_ns") 500;
  M.observe (M.histogram ~registry:r "a.h") 2.5;
  let s = M.Json.to_string (M.to_json r) in
  Alcotest.(check bool) "registry JSON is well-formed" true (json_well_formed s);
  (* tricky leaves: escapes, non-finite floats as null *)
  let tricky =
    M.Json.Obj
      [ ("quote\"back\\slash", M.Json.String "tab\tnl\n\x01");
        ("nan", M.Json.Float Float.nan);
        ("inf", M.Json.Float Float.infinity);
        ("arr", M.Json.Arr [ M.Json.Bool true; M.Json.Null; M.Json.Int (-7) ]) ]
  in
  Alcotest.(check bool) "escapes and non-finite floats" true
    (json_well_formed (M.Json.to_string tricky))

(* a full pipeline run must light up every instrumented subsystem in
   the global registry — this is what `asme2ssme simulate --stats` and
   `bench --json` report *)
let test_pipeline_feeds_global () =
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  (match Polychrony.Pipeline.simulate ~hyperperiods:1 a with
   | Ok _ -> ()
   | Error m -> Alcotest.fail (Putil.Diag.list_to_string m));
  (match Polychrony.Pipeline.simulate ~compiled:true ~hyperperiods:1 a with
   | Ok _ -> ()
   | Error m -> Alcotest.fail (Putil.Diag.list_to_string m));
  let nonzero name =
    Alcotest.(check bool) (name ^ " > 0") true
      (M.counter_value M.global name > 0)
  in
  List.iter nonzero
    [ "engine.instants"; "engine.fixpoint_iters"; "calculus.analyses";
      "calculus.uf_finds"; "calculus.signals"; "compile.compilations";
      "compile.instants"; "compile.bdd_nodes"; "trans.translations";
      "trans.processes"; "trans.equations"; "sched.syntheses";
      "sched.jobs_placed" ];
  let s = M.Json.to_string (Polychrony.Pipeline.stats_json ()) in
  Alcotest.(check bool) "stats_json is well-formed JSON" true
    (json_well_formed s);
  (* the printed report renders and mentions the subsystem sections *)
  let report = Format.asprintf "%a" Polychrony.Pipeline.pp_stats () in
  List.iter
    (fun section ->
      let contains =
        let nh = String.length report and nn = String.length section in
        let rec go i =
          i + nn <= nh && (String.sub report i nn = section || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("report has " ^ section) true contains)
    [ "[engine]"; "[compile]"; "[calculus]"; "[trans]"; "[sched]" ]

let suite =
  [ ("metrics",
     [ Alcotest.test_case "counters" `Quick test_counters;
       Alcotest.test_case "gauges and timers" `Quick test_gauges_and_timers;
       Alcotest.test_case "histogram" `Quick test_histogram;
       Alcotest.test_case "json well-formed" `Quick test_json_well_formed;
       Alcotest.test_case "pipeline feeds global registry" `Quick
         test_pipeline_feeds_global ]) ]
