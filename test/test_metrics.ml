(* Putil.Metrics: instruments, snapshots, JSON rendering, and the
   end-to-end smoke check that a pipeline run actually feeds the global
   registry (what `asme2ssme --stats` prints). *)

module M = Putil.Metrics

let test_counters () =
  let r = M.create () in
  let c = M.counter ~registry:r "t.hits" in
  M.incr c;
  M.incr ~by:41 c;
  Alcotest.(check int) "counter accumulates" 42 (M.counter_value r "t.hits");
  Alcotest.(check int) "absent counter reads 0" 0 (M.counter_value r "t.nope");
  let c' = M.counter ~registry:r "t.hits" in
  M.incr c';
  Alcotest.(check int) "get-or-create shares state" 43
    (M.counter_value r "t.hits");
  M.reset r;
  Alcotest.(check int) "reset zeroes" 0 (M.counter_value r "t.hits");
  Alcotest.(check bool) "reset keeps the instrument" true
    (M.find r "t.hits" <> None)

let test_gauges_and_timers () =
  let r = M.create () in
  let g = M.gauge ~registry:r "t.level" in
  M.set g 7;
  M.max_gauge g 3;
  Alcotest.(check int) "max_gauge keeps the max" 7 (M.counter_value r "t.level");
  M.max_gauge g 9;
  Alcotest.(check int) "max_gauge raises" 9 (M.counter_value r "t.level");
  let tm = M.timer ~registry:r "t.work_ns" in
  let x = M.time tm (fun () -> 5) in
  Alcotest.(check int) "time returns the thunk value" 5 x;
  (try M.time tm (fun () -> failwith "boom") with Failure _ -> 0) |> ignore;
  M.add_span_ns tm 1_000;
  (match M.find r "t.work_ns" with
   | Some (M.Timer { spans; total_ns }) ->
     Alcotest.(check int) "spans recorded, raising thunk included" 3 spans;
     Alcotest.(check bool) "total accumulates" true (total_ns >= 1_000)
   | _ -> Alcotest.fail "timer stat missing");
  (* name reuse with a different kind is a programming error *)
  match M.gauge ~registry:r "t.work_ns" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ()

let test_histogram () =
  let r = M.create () in
  let h = M.histogram ~registry:r "t.sizes" in
  List.iter (M.observe h) [ 1.0; 4.0; 16.0 ];
  match M.find r "t.sizes" with
  | Some (M.Histogram { count; sum; min; max }) ->
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check (float 1e-9)) "sum" 21.0 sum;
    Alcotest.(check (float 1e-9)) "min" 1.0 min;
    Alcotest.(check (float 1e-9)) "max" 16.0 max
  | _ -> Alcotest.fail "histogram stat missing"

(* minimal RFC 8259 well-formedness checker, enough to validate our own
   serializer's output without an external JSON dependency *)
let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail = ref false in
  let expect c =
    if peek () = Some c then advance () else fail := true
  in
  let skip_ws () =
    while (match peek () with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false)
    do advance () done
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            if peek () = Some ',' then begin advance (); members () end
            else expect '}'
          in
          members ()
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec elements () =
            value ();
            skip_ws ();
            if peek () = Some ',' then begin advance (); elements () end
            else expect ']'
          in
          elements ()
        end
      | Some '"' -> string_lit ()
      | Some ('t' | 'f' | 'n') -> keyword ()
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail := true
    end
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail := true
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
           advance ();
           go ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             (match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail := true)
           done;
           go ()
         | _ -> fail := true)
      | Some c when Char.code c < 0x20 -> fail := true
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  and keyword () =
    let kw k =
      let l = String.length k in
      if !pos + l <= n && String.sub s !pos l = k then pos := !pos + l
      else fail := true
    in
    match peek () with
    | Some 't' -> kw "true"
    | Some 'f' -> kw "false"
    | _ -> kw "null"
  and number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let seen = ref false in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        seen := true;
        advance ()
      done;
      if not !seen then fail := true
    in
    digits ();
    if peek () = Some '.' then begin advance (); digits () end;
    (match peek () with
     | Some ('e' | 'E') ->
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ())
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_json_well_formed () =
  let r = M.create () in
  M.incr (M.counter ~registry:r "a.count");
  M.set (M.gauge ~registry:r "a.level") (-3);
  M.add_span_ns (M.timer ~registry:r "a.span_ns") 500;
  M.observe (M.histogram ~registry:r "a.h") 2.5;
  let s = M.Json.to_string (M.to_json r) in
  Alcotest.(check bool) "registry JSON is well-formed" true (json_well_formed s);
  (* tricky leaves: escapes, non-finite floats as null *)
  let tricky =
    M.Json.Obj
      [ ("quote\"back\\slash", M.Json.String "tab\tnl\n\x01");
        ("nan", M.Json.Float Float.nan);
        ("inf", M.Json.Float Float.infinity);
        ("arr", M.Json.Arr [ M.Json.Bool true; M.Json.Null; M.Json.Int (-7) ]) ]
  in
  Alcotest.(check bool) "escapes and non-finite floats" true
    (json_well_formed (M.Json.to_string tricky))

(* a full pipeline run must light up every instrumented subsystem in
   the global registry — this is what `asme2ssme simulate --stats` and
   `bench --json` report *)
let test_pipeline_feeds_global () =
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  (match Polychrony.Pipeline.simulate ~hyperperiods:1 a with
   | Ok _ -> ()
   | Error m -> Alcotest.fail (Putil.Diag.list_to_string m));
  (match Polychrony.Pipeline.simulate ~compiled:true ~hyperperiods:1 a with
   | Ok _ -> ()
   | Error m -> Alcotest.fail (Putil.Diag.list_to_string m));
  let nonzero name =
    Alcotest.(check bool) (name ^ " > 0") true
      (M.counter_value M.global name > 0)
  in
  List.iter nonzero
    [ "engine.instants"; "engine.fixpoint_iters"; "calculus.analyses";
      "calculus.uf_finds"; "calculus.signals"; "compile.compilations";
      "compile.instants"; "compile.bdd_nodes"; "trans.translations";
      "trans.processes"; "trans.equations"; "sched.syntheses";
      "sched.jobs_placed" ];
  let s = M.Json.to_string (Polychrony.Pipeline.stats_json ()) in
  Alcotest.(check bool) "stats_json is well-formed JSON" true
    (json_well_formed s);
  (* the printed report renders and mentions the subsystem sections *)
  let report = Format.asprintf "%a" Polychrony.Pipeline.pp_stats () in
  List.iter
    (fun section ->
      let contains =
        let nh = String.length report and nn = String.length section in
        let rec go i =
          i + nn <= nh && (String.sub report i nn = section || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("report has " ^ section) true contains)
    [ "[engine]"; "[compile]"; "[calculus]"; "[trans]"; "[sched]" ]

(* ---------------- domain safety ------------------------------------ *)

(* 4 domains hammer one histogram: the sharded accumulator must lose no
   observation and keep an exact sum (each domain observes 1..per_dom) *)
let test_histogram_domain_stress () =
  let r = M.create () in
  let h = M.histogram ~registry:r "t.stress" in
  let domains = 4 and per_dom = 10_000 in
  let work () =
    for i = 1 to per_dom do
      M.observe h (float_of_int i)
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn work) in
  List.iter Domain.join ds;
  match M.find r "t.stress" with
  | Some (M.Histogram { count; sum; min; max }) ->
    Alcotest.(check int) "no observation lost" (domains * per_dom) count;
    Alcotest.(check (float 1e-6)) "exact sum"
      (float_of_int domains *. float_of_int (per_dom * (per_dom + 1) / 2))
      sum;
    Alcotest.(check (float 1e-9)) "min" 1.0 min;
    Alcotest.(check (float 1e-9)) "max" (float_of_int per_dom) max
  | _ -> Alcotest.fail "histogram stat missing"

(* 4 domains race get-or-create over the same names while incrementing:
   every domain must end up on the same cell (no lost updates, no
   duplicate instruments) *)
let test_creation_race () =
  let r = M.create () in
  let domains = 4 and names = 16 and rounds = 500 in
  let work () =
    for _ = 1 to rounds do
      for i = 0 to names - 1 do
        M.incr (M.counter ~registry:r (Printf.sprintf "t.race%d" i))
      done
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn work) in
  List.iter Domain.join ds;
  for i = 0 to names - 1 do
    Alcotest.(check int)
      (Printf.sprintf "t.race%d converged" i)
      (domains * rounds)
      (M.counter_value r (Printf.sprintf "t.race%d" i))
  done

(* ---------------- OpenMetrics exposition --------------------------- *)

(* one registry with every instrument kind, pinned as a golden snapshot
   (deterministic: no wall-clock values involved) *)
let test_openmetrics_golden () =
  let r = M.create () in
  M.incr ~by:42 (M.counter ~registry:r "om.hits");
  M.set (M.gauge ~registry:r "om.level") (-3);
  M.add_span_ns (M.timer ~registry:r "om.work_ns") 2_500_000_000;
  let h = M.histogram ~registry:r "om.sizes" in
  List.iter (M.observe h) [ 0.5; 3.0; 3.5 ];
  let expected =
    String.concat ""
      [ "# HELP om_hits om.hits\n";
        "# TYPE om_hits counter\n";
        "om_hits_total{scope=\"s \\\"x\\\"\"} 42\n";
        "# HELP om_level om.level\n";
        "# TYPE om_level gauge\n";
        "om_level{scope=\"s \\\"x\\\"\"} -3\n";
        "# HELP om_sizes om.sizes\n";
        "# TYPE om_sizes histogram\n";
        "om_sizes_bucket{scope=\"s \\\"x\\\"\",le=\"1\"} 1\n";
        "om_sizes_bucket{scope=\"s \\\"x\\\"\",le=\"2\"} 1\n";
        "om_sizes_bucket{scope=\"s \\\"x\\\"\",le=\"4\"} 3\n";
        "om_sizes_bucket{scope=\"s \\\"x\\\"\",le=\"+Inf\"} 3\n";
        "om_sizes_sum{scope=\"s \\\"x\\\"\"} 7\n";
        "om_sizes_count{scope=\"s \\\"x\\\"\"} 3\n";
        "# HELP om_work_ns om.work_ns\n";
        "# TYPE om_work_ns summary\n";
        "om_work_ns_count{scope=\"s \\\"x\\\"\"} 1\n";
        "om_work_ns_sum{scope=\"s \\\"x\\\"\"} 2.5\n";
        "# EOF\n" ]
  in
  Alcotest.(check string) "golden exposition" expected
    (M.to_openmetrics ~labels:[ ("scope", "s \"x\"") ] r)

(* property: whatever the instrument names, the exposition is
   well-formed — sanitized name charset, one # TYPE per family,
   monotone cumulative buckets, # EOF terminator *)
let om_name_ok name =
  name <> ""
  && (match name.[0] with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
      | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let exposition_well_formed text =
  let lines = String.split_on_char '\n' text in
  let rec last_nonempty acc = function
    | [] -> acc
    | "" :: rest -> last_nonempty acc rest
    | l :: rest -> last_nonempty l rest
  in
  last_nonempty "" lines = "# EOF"
  && List.for_all
       (fun line ->
         line = "" || line = "# EOF"
         ||
         let body =
           if String.length line > 2 && String.sub line 0 2 = "# " then
             (* "# HELP <name> ..." / "# TYPE <name> <type>" *)
             match String.split_on_char ' ' line with
             | "#" :: ("HELP" | "TYPE") :: name :: _ -> name
             | _ -> ""
           else
             (* "<name>[{labels}] <value>" *)
             let stop =
               match String.index_opt line '{' with
               | Some i -> i
               | None -> (
                 match String.index_opt line ' ' with
                 | Some i -> i
                 | None -> String.length line)
             in
             String.sub line 0 stop
         in
         om_name_ok body)
       lines

let qcheck_openmetrics =
  let gen_name =
    QCheck2.Gen.(string_size ~gen:printable (int_range 1 24))
  in
  QCheck2.Test.make ~count:100 ~name:"openmetrics well-formed for any names"
    QCheck2.Gen.(list_size (int_range 1 8) gen_name)
    (fun names ->
      (* one kind per distinct dotted name: a duplicate would be a
         legitimate kind clash ([Invalid_argument]), not our subject *)
      let names = List.sort_uniq compare names in
      let r = M.create () in
      List.iteri
        (fun i name ->
          match i mod 4 with
          | 0 -> M.incr ~by:i (M.counter ~registry:r name)
          | 1 -> M.set (M.gauge ~registry:r name) i
          | 2 -> M.add_span_ns (M.timer ~registry:r name) (i * 1000)
          | _ ->
            let h = M.histogram ~registry:r name in
            M.observe h (float_of_int i);
            M.observe h (float_of_int (i * 100)))
        names;
      let text = M.to_openmetrics ~labels:[ ("q", "v\"\\\n") ] r in
      (* each family declared exactly once *)
      let type_lines =
        List.filter
          (fun l -> String.length l > 7 && String.sub l 0 7 = "# TYPE ")
          (String.split_on_char '\n' text)
      in
      List.length (List.sort_uniq compare type_lines)
      = List.length type_lines
      && exposition_well_formed text)

(* cumulative histogram buckets never decrease and end at the count *)
let test_openmetrics_bucket_monotone () =
  let r = M.create () in
  let h = M.histogram ~registry:r "om.mono" in
  List.iter (M.observe h) [ 0.1; 1.5; 2.5; 100.0; 100.0; 7.0 ];
  let text = M.to_openmetrics r in
  let buckets =
    List.filter_map
      (fun line ->
        if String.length line > 15 && String.sub line 0 15 = "om_mono_bucket{"
        then
          match String.rindex_opt line ' ' with
          | Some i ->
            int_of_string_opt
              (String.sub line (i + 1) (String.length line - i - 1))
          | None -> None
        else None)
      (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "at least the +Inf bucket" true (buckets <> []);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets monotone" true (monotone buckets);
  Alcotest.(check int) "+Inf bucket equals the count" 6
    (List.nth buckets (List.length buckets - 1))

let suite =
  [ ("metrics",
     [ Alcotest.test_case "counters" `Quick test_counters;
       Alcotest.test_case "gauges and timers" `Quick test_gauges_and_timers;
       Alcotest.test_case "histogram" `Quick test_histogram;
       Alcotest.test_case "json well-formed" `Quick test_json_well_formed;
       Alcotest.test_case "histogram domain stress" `Quick
         test_histogram_domain_stress;
       Alcotest.test_case "instrument creation race" `Quick
         test_creation_race;
       Alcotest.test_case "openmetrics golden" `Quick test_openmetrics_golden;
       Alcotest.test_case "openmetrics bucket monotone" `Quick
         test_openmetrics_bucket_monotone;
       QCheck_alcotest.to_alcotest qcheck_openmetrics;
       Alcotest.test_case "pipeline feeds global registry" `Quick
         test_pipeline_feeds_global ]) ]
