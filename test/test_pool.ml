(* The concurrency substrate of the parallel explorer: the fixed
   domain pool with work-stealing deques, and the sharded visited
   table. *)

module Pool = Putil.Domain_pool
module Shard_tbl = Putil.Shard_tbl

let test_parallel_sum () =
  Pool.with_pool 4 @@ fun pool ->
  Alcotest.(check int) "size" 4 (Pool.size pool);
  let n = 1000 in
  let acc = Atomic.make 0 in
  Pool.run_tasks pool
    (List.init n (fun i -> fun () -> ignore (Atomic.fetch_and_add acc i)));
  Alcotest.(check int) "sum" (n * (n - 1) / 2) (Atomic.get acc)

let test_uneven_tasks_complete () =
  (* wildly uneven task durations force the stealing path: lanes that
     drain their own deque must pull the stragglers' oldest work *)
  Pool.with_pool 4 @@ fun pool ->
  let acc = Atomic.make 0 in
  Pool.run_tasks pool
    (List.init 64 (fun i ->
         fun () ->
          let spin = if i mod 16 = 0 then 20_000 else 10 in
          let s = ref 0 in
          for k = 1 to spin do
            s := !s + k
          done;
          ignore (Atomic.fetch_and_add acc (if !s > 0 then 1 else 0))));
  Alcotest.(check int) "all ran" 64 (Atomic.get acc)

let test_single_lane_inline () =
  (* one lane spawns no domains: everything runs on the caller *)
  Pool.with_pool 1 @@ fun pool ->
  let me = Domain.self () in
  let ok = ref true in
  Pool.run_tasks pool
    (List.init 10 (fun _ -> fun () -> if Domain.self () <> me then ok := false));
  Alcotest.(check bool) "caller executed every task" true !ok

let test_batch_reuse () =
  Pool.with_pool 3 @@ fun pool ->
  let acc = Atomic.make 0 in
  for _ = 1 to 5 do
    Pool.run_tasks pool
      (List.init 64 (fun _ -> fun () -> ignore (Atomic.fetch_and_add acc 1)))
  done;
  Alcotest.(check int) "five batches" 320 (Atomic.get acc)

let test_cancellation_sticky () =
  Pool.with_pool 2 @@ fun pool ->
  Pool.run_tasks pool [ (fun () -> Pool.cancel pool) ];
  Alcotest.(check bool) "flag raised" true (Pool.cancelled pool);
  (* a cancelled pool drains batches without running them *)
  let ran = Atomic.make 0 in
  Pool.run_tasks pool
    (List.init 50 (fun _ -> fun () -> ignore (Atomic.fetch_and_add ran 1)));
  Alcotest.(check int) "skipped while cancelled" 0 (Atomic.get ran);
  Pool.reset_cancel pool;
  Pool.run_tasks pool
    (List.init 50 (fun _ -> fun () -> ignore (Atomic.fetch_and_add ran 1)));
  Alcotest.(check int) "runs after reset" 50 (Atomic.get ran)

let test_exception_propagates () =
  Pool.with_pool 2 @@ fun pool ->
  (match Pool.run_tasks pool [ (fun () -> failwith "boom") ] with
   | () -> Alcotest.fail "expected the task exception to re-raise"
   | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* a failing task cancels the batch; the pool stays usable *)
  Alcotest.(check bool) "failure cancels" true (Pool.cancelled pool);
  Pool.reset_cancel pool;
  let ok = Atomic.make 0 in
  Pool.run_tasks pool [ (fun () -> ignore (Atomic.fetch_and_add ok 1)) ];
  Alcotest.(check int) "usable after failure" 1 (Atomic.get ok)

(* ------------------------------------------------------------------ *)
(* sharded table                                                       *)
(* ------------------------------------------------------------------ *)

let test_shard_basic () =
  let t : int Shard_tbl.t = Shard_tbl.create ~shards:5 () in
  Alcotest.(check int) "shards round up to a power of two" 8
    (Shard_tbl.shard_count t);
  Shard_tbl.update t "a" (fun _ -> Some 1);
  Shard_tbl.update t "b" (fun _ -> Some 2);
  Alcotest.(check (option int)) "find" (Some 1) (Shard_tbl.find_opt t "a");
  Shard_tbl.update t "a" (function Some v -> Some (v + 10) | None -> None);
  Alcotest.(check (option int)) "read-modify-write" (Some 11)
    (Shard_tbl.find_opt t "a");
  Alcotest.(check int) "length" 2 (Shard_tbl.length t);
  Shard_tbl.update t "a" (fun _ -> None);
  Alcotest.(check bool) "removed" false (Shard_tbl.mem t "a");
  Shard_tbl.clear t;
  Alcotest.(check int) "cleared" 0 (Shard_tbl.length t)

let test_shard_concurrent_min_merge () =
  (* 8 writers race a min-merge per key from 4 domains; the result must
     be the true minimum whatever the interleaving — the exact protocol
     the explorer's visited table relies on *)
  let t : int Shard_tbl.t = Shard_tbl.create () in
  let nkeys = 32 and writers = 8 in
  let value i w = ((i * 7) + (w * 13)) mod 101 in
  Pool.with_pool 4 (fun pool ->
      Pool.run_tasks pool
        (List.concat_map
           (fun w ->
             List.init nkeys (fun i ->
                 fun () ->
                  Shard_tbl.update t
                    (Printf.sprintf "k%d" i)
                    (function
                      | None -> Some (value i w)
                      | Some cur -> Some (min cur (value i w)))))
           (List.init writers Fun.id)));
  for i = 0 to nkeys - 1 do
    let expected =
      List.fold_left min max_int
        (List.init writers (fun w -> value i w))
    in
    Alcotest.(check (option int))
      (Printf.sprintf "k%d" i)
      (Some expected)
      (Shard_tbl.find_opt t (Printf.sprintf "k%d" i))
  done;
  Alcotest.(check int) "one entry per key" nkeys (Shard_tbl.length t)

let suite =
  [ ("pool",
     [ Alcotest.test_case "parallel sum" `Quick test_parallel_sum;
       Alcotest.test_case "uneven tasks complete (stealing)" `Quick
         test_uneven_tasks_complete;
       Alcotest.test_case "single lane runs inline" `Quick
         test_single_lane_inline;
       Alcotest.test_case "batch reuse" `Quick test_batch_reuse;
       Alcotest.test_case "cancellation is sticky" `Quick
         test_cancellation_sticky;
       Alcotest.test_case "task exception propagates" `Quick
         test_exception_propagates;
       Alcotest.test_case "shard table basics" `Quick test_shard_basic;
       Alcotest.test_case "shard table concurrent min-merge" `Quick
         test_shard_concurrent_min_merge ]) ]
