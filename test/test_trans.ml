(* ASME2SSME translation: thread model shape (Fig. 4/5), scheduler
   process, system assembly, traceability. *)

module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module Syn = Aadl.Syntax
module Inst = Aadl.Instance
module TT = Trans.Thread_trans
module ST = Trans.System_trans
module S = Sched.Static_sched

let case = Polychrony.Case_study.instance

let producer () =
  match Inst.find (case ()) "ProdConsSys.prProdCons.thProducer" with
  | Some th -> th
  | None -> Alcotest.fail "producer instance missing"

let translate_case ?policy () =
  match
    ST.translate ~registry:Polychrony.Case_study.registry_nominal ?policy
      (case ())
  with
  | Ok out -> out
  | Error m -> Alcotest.fail m

let has_input p name =
  List.exists (fun vd -> vd.Ast.var_name = name) p.Ast.inputs

let has_output p name =
  List.exists (fun vd -> vd.Ast.var_name = name) p.Ast.outputs

let test_thread_interface () =
  let p = TT.translate ~registry:Trans.Behavior.empty (producer ()) in
  (* ctl1 bundle *)
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " input") true (has_input p n))
    [ "Dispatch"; "Start"; "Deadline" ];
  (* time1 bundle: per-port events *)
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " input") true (has_input p n))
    [ "pProdStart"; "pProdStart_time"; "pProdTimeOut"; "pProdTimeOut_time";
      "pProdStartTimer_time"; "pProdStopTimer_time" ];
  (* ctl2 + alarm + data access *)
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " output") true (has_output p n))
    [ "Complete"; "Alarm"; "pProdStartTimer"; "pProdStopTimer"; "reqQueue_w" ]

let test_thread_ports_are_processes () =
  (* Fig. 5: the in event port becomes an in_event_port instance with
     the declared queue size *)
  let p = TT.translate ~registry:Trans.Behavior.empty (producer ()) in
  let found =
    List.exists
      (fun st ->
        match Ast.desc st with
        | Ast.Sinstance i ->
          i.Ast.inst_proc = "in_event_port"
          && i.Ast.inst_label = "pProdStart_port"
          && i.Ast.inst_params
             = [ Types.Vint 2; Types.Vstring "dropoldest" ]
        | _ -> false)
      p.Ast.body
  in
  Alcotest.(check bool) "in_event_port{2} instantiated" true found;
  let out_found =
    List.exists
      (fun st ->
        match Ast.desc st with
        | Ast.Sinstance i -> i.Ast.inst_proc = "out_event_port"
        | _ -> false)
      p.Ast.body
  in
  Alcotest.(check bool) "out_event_port instantiated" true out_found

let test_thread_well_typed () =
  let p = TT.translate ~registry:Polychrony.Case_study.registry_nominal
      (producer ()) in
  Alcotest.(check (list string)) "thread model typechecks" []
    (List.map Signal_lang.Typecheck.error_to_string
       (Signal_lang.Typecheck.check_process p))

let test_thread_queue_size_default () =
  Alcotest.(check int) "default queue size 1" 1
    (TT.port_queue_size
       (Syn.Port { fname = "x"; dir = Syn.Din; kind = Syn.Event_port;
                   dtype = None; fprops = []; floc = Syn.no_loc }))

let test_system_translation_shape () =
  let out = translate_case () in
  let prog = out.ST.program in
  (* 4 thread models + 1 scheduler + top *)
  Alcotest.(check int) "process models" 6 (List.length prog.Ast.processes);
  Alcotest.(check (list string)) "tick inputs" [ "tick" ] out.ST.tick_inputs;
  Alcotest.(check bool) "env input lifted" true
    (List.mem "env_pGo" out.ST.env_inputs);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " lifted") true (List.mem n out.ST.env_outputs))
    [ "display_pProdAlarm"; "display_pConsAlarm"; "display_pData" ]

let test_system_schedule_embedded () =
  let out = translate_case () in
  match out.ST.schedules with
  | [ (cpu, s) ] ->
    Alcotest.(check string) "bound cpu" "ProdConsSys.Processor1" cpu;
    Alcotest.(check int) "hyper-period 24 ms" 24000 s.S.hyperperiod_us
  | _ -> Alcotest.fail "expected exactly one processor schedule"

let test_system_program_well_typed () =
  let out = translate_case () in
  Alcotest.(check (list string)) "whole program typechecks" []
    (List.map Signal_lang.Typecheck.error_to_string
       (Signal_lang.Typecheck.check_program out.ST.program))

let test_system_normalizes () =
  let out = translate_case () in
  match
    Signal_lang.Normalize.process ~program:out.ST.program out.ST.top
  with
  | Ok kp ->
    Alcotest.(check bool) "has primitive instances" true
      (kp.Signal_lang.Kernel.kinstances <> []);
    Alcotest.(check bool) "shared queue kept as fifo_reset" true
      (List.exists
         (fun ki ->
           ki.Signal_lang.Kernel.ki_prim = Signal_lang.Stdproc.Pfifo_reset)
         kp.Signal_lang.Kernel.kinstances)
  | Error m -> Alcotest.fail (Putil.Diag.to_string m)

let test_traceability () =
  let out = translate_case () in
  let tr = out.ST.trace in
  (match Trans.Traceability.signal_of tr "ProdConsSys.prProdCons.thProducer" with
   | Some s -> Alcotest.(check string) "thread model name"
                 "th_ProdConsSys_prProdCons_thProducer" s
   | None -> Alcotest.fail "producer missing from traceability");
  Alcotest.(check bool) "queue traced" true
    (Trans.Traceability.signal_of tr "ProdConsSys.prProdCons.Queue" <> None);
  Alcotest.(check bool) "reverse lookup" true
    (Trans.Traceability.aadl_of tr "th_ProdConsSys_prProdCons_thProducer"
     = Some "ProdConsSys.prProdCons.thProducer")

let test_scheduler_process_shape () =
  let out = translate_case () in
  match
    List.find_opt
      (fun p -> p.Ast.proc_name = "sched_Processor1")
      out.ST.program.Ast.processes
  with
  | None -> Alcotest.fail "scheduler model missing"
  | Some p ->
    Alcotest.(check int) "one input (tick)" 1 (List.length p.Ast.inputs);
    (* 4 tasks x 4 events *)
    Alcotest.(check int) "sixteen event outputs" 16 (List.length p.Ast.outputs);
    Alcotest.(check (list string)) "scheduler typechecks" []
      (List.map Signal_lang.Typecheck.error_to_string
         (Signal_lang.Typecheck.check_process p))

let test_policy_affects_schedule () =
  let edf = translate_case ~policy:S.Edf () in
  let rm = translate_case ~policy:S.Rm () in
  let starts out name =
    match out.ST.schedules with
    | [ (_, s) ] -> S.event_times s name S.Start
    | _ -> Alcotest.fail "one schedule expected"
  in
  (* both valid but potentially different start patterns; at minimum
     they schedule the same job count *)
  let count out =
    match out.ST.schedules with
    | [ (_, s) ] -> List.length s.S.jobs
    | _ -> 0
  in
  Alcotest.(check int) "same job count" (count edf) (count rm);
  ignore (starts edf "ProdConsSys.prProdCons.thProducer");
  ignore (starts rm "ProdConsSys.prProdCons.thProducer")

let test_missing_period_fails () =
  let src =
    {|package P public
      thread t end t;
      thread implementation t.impl end t.impl;
      process q end q;
      process implementation q.impl
        subcomponents w: thread t.impl;
      end q.impl;
      system s end s;
      system implementation s.impl
        subcomponents
          h: process q.impl;
          cpu: processor c1.impl;
        properties
          Actual_Processor_Binding => reference (cpu) applies to h;
      end s.impl;
      processor c1 end c1;
      processor implementation c1.impl end c1.impl;
      end P;|}
  in
  let pkg =
    match Aadl.Parser.parse_package src with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let inst =
    match Aadl.Instance.instantiate pkg ~root:"s.impl" with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  match ST.translate inst with
  | Ok _ -> Alcotest.fail "thread without Period must fail"
  | Error m ->
    Alcotest.(check bool) "mentions Period" true
      (String.length m > 0)

let test_task_extraction () =
  match ST.task_of_thread (producer ()) with
  | Ok task ->
    Alcotest.(check int) "period" 4000 task.Sched.Task.period_us;
    Alcotest.(check int) "deadline" 4000 task.Sched.Task.deadline_us;
    Alcotest.(check int) "wcet" 1000 task.Sched.Task.wcet_us
  | Error m -> Alcotest.fail m

let suite =
  [ ("trans.thread",
     [ Alcotest.test_case "interface (Fig. 4)" `Quick test_thread_interface;
       Alcotest.test_case "ports are processes (Fig. 5)" `Quick
         test_thread_ports_are_processes;
       Alcotest.test_case "well-typed" `Quick test_thread_well_typed;
       Alcotest.test_case "queue size default" `Quick
         test_thread_queue_size_default;
       Alcotest.test_case "task extraction" `Quick test_task_extraction ]);
    ("trans.system",
     [ Alcotest.test_case "program shape (Fig. 3)" `Quick
         test_system_translation_shape;
       Alcotest.test_case "schedule embedded" `Quick
         test_system_schedule_embedded;
       Alcotest.test_case "program typechecks" `Quick
         test_system_program_well_typed;
       Alcotest.test_case "normalizes (Fig. 6 fifo)" `Quick
         test_system_normalizes;
       Alcotest.test_case "traceability" `Quick test_traceability;
       Alcotest.test_case "scheduler process" `Quick
         test_scheduler_process_shape;
       Alcotest.test_case "policy choice" `Quick test_policy_affects_schedule;
       Alcotest.test_case "missing period" `Quick test_missing_period_fails ]) ]
