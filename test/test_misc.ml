(* Coverage for smaller corners: hierarchy shapes, export printers,
   non-endochronous free choices, pipeline env hooks, VCD options. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module C = Clocks.Calculus
module H = Clocks.Hierarchy
module S = Sched.Static_sched
module T = Sched.Task

(* ---------------------------- hierarchy ---------------------------- *)

let test_hierarchy_three_levels () =
  let p =
    B.proc ~name:"levels"
      ~inputs:[ Ast.var "x" Types.Tint; Ast.var "c" Types.Tbool;
                Ast.var "d" Types.Tbool ]
      ~outputs:[ Ast.var "z" Types.Tint ]
      ~locals:[ Ast.var "y" Types.Tint ]
      B.[ clk (v "x") ^= clk (v "c");
          clk (v "x") ^= clk (v "d");
          "y" := when_ (v "x") (v "c");
          "z" := when_ (v "y") (v "d") ]
  in
  let calc = C.analyze (N.process_exn p) in
  let h = H.build calc in
  Alcotest.(check int) "depth two" 2 (H.depth h);
  (match H.master h with
   | Some m -> Alcotest.(check bool) "master is the x class" true
                 (C.same_class calc m "x")
   | None -> Alcotest.fail "single root expected");
  (* z's parent chain reaches the root *)
  let zc = C.class_id_of calc "z" in
  let rec root c =
    match (H.node h c).H.parent with
    | Some p -> root p
    | None -> c
  in
  Alcotest.(check bool) "z under the master" true
    (root zc = C.class_id_of calc "x");
  (* rendering works *)
  Alcotest.(check bool) "tree renders" true
    (String.length (Format.asprintf "%a" H.pp h) > 0)

let test_hierarchy_node_children () =
  let p =
    B.proc ~name:"forked"
      ~inputs:[ Ast.var "x" Types.Tint; Ast.var "c" Types.Tbool ]
      ~outputs:[ Ast.var "a" Types.Tint; Ast.var "b" Types.Tint ]
      B.[ clk (v "x") ^= clk (v "c");
          "a" := when_ (v "x") (v "c");
          "b" := when_ (v "x") (not_ (v "c")) ]
  in
  let calc = C.analyze (N.process_exn p) in
  let h = H.build calc in
  let xc = C.class_id_of calc "x" in
  Alcotest.(check int) "two children under x" 2
    (List.length (H.node h xc).H.children)

(* --------------------------- free choices -------------------------- *)

let test_free_choices_positive () =
  (* an output with a free clock: the engine must default it and count *)
  let p =
    B.proc ~name:"open_clock"
      ~inputs:[ Ast.var "x" Types.Tint ]
      ~outputs:[ Ast.var "y" Types.Tint ]
      ~locals:[ Ast.var "m" Types.Tint ]
      (* m's clock is only bounded below by ^x: not endochronous *)
      B.[ "m" := default (v "x") (delay (v "m")); "y" := v "m" ]
  in
  let kp = N.process_exn p in
  let st = Polysim.Engine.create kp in
  (match Polysim.Engine.step st ~stimulus:[ ("x", Types.Vint 1) ] with
   | Ok _ -> ()
   | Error m -> Alcotest.fail m);
  (match Polysim.Engine.step st ~stimulus:[] with
   | Ok _ -> ()
   | Error m -> Alcotest.fail m);
  (* at the empty instant m's presence is a free choice *)
  Alcotest.(check bool) "free choices counted" true
    (Polysim.Engine.free_choices st > 0)

(* --------------------------- export pp ----------------------------- *)

let test_export_pp () =
  let tasks =
    [ T.make ~name:"a" ~period_us:4000 ~wcet_us:1000 ();
      T.make ~name:"b" ~period_us:8000 ~wcet_us:1000 () ]
  in
  match S.synthesize tasks with
  | Error f -> Alcotest.fail f.S.f_message
  | Ok s ->
    let txt = Format.asprintf "%a" Sched.Export.pp_export s in
    List.iter
      (fun needle ->
        let nh = String.length txt and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub txt i nn = needle || go (i + 1))
        in
        Alcotest.(check bool) (needle ^ " in export") true (nn = 0 || go 0))
      [ "dispatch"; "deadline"; "affine" ]

(* ------------------------ pipeline env hook ------------------------ *)

let test_pipeline_custom_env () =
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  (* with NO environment arrival at all, the producer still runs (its
     behaviour needs no input) and no alarm is raised *)
  match
    Polychrony.Pipeline.simulate ~env:(fun _ -> []) ~hyperperiods:2 a
  with
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  | Ok tr ->
    Alcotest.(check int) "producer still dispatches 12 jobs" 12
      (Polysim.Trace.present_count tr "prProdCons_thProducer_dispatch");
    Alcotest.(check int) "no alarm" 0 (Polysim.Trace.present_count tr "Alarm")

(* ----------------------------- vcd opts ---------------------------- *)

let test_vcd_signal_selection () =
  let tr =
    Polysim.Trace.create [ Ast.var "a" Types.Tint; Ast.var "b" Types.Tint ]
  in
  Polysim.Trace.push tr [ ("a", Types.Vint 1); ("b", Types.Vint 2) ];
  let dump = Polysim.Vcd.to_string ~signals:[ "a" ] ~timescale:"1 us" tr in
  let contains needle =
    let nh = String.length dump and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub dump i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "a declared" true (contains " a ");
  Alcotest.(check bool) "b not declared" false (contains " b ");
  Alcotest.(check bool) "timescale honoured" true (contains "1 us")

(* --------------------- traceability printer ------------------------ *)

let test_traceability_pp () =
  let t = Trans.Traceability.create () in
  Trans.Traceability.add t ~aadl:"sys.th" ~signal:"th_sys_th";
  let s = Format.asprintf "%a" Trans.Traceability.pp t in
  Alcotest.(check bool) "lists the pair" true
    (String.length s > 10);
  Alcotest.(check (list (pair string string))) "entries"
    [ ("sys.th", "th_sys_th") ]
    (Trans.Traceability.entries t)

let suite =
  [ ("misc",
     [ Alcotest.test_case "hierarchy three levels" `Quick
         test_hierarchy_three_levels;
       Alcotest.test_case "hierarchy children" `Quick
         test_hierarchy_node_children;
       Alcotest.test_case "free choices counted" `Quick
         test_free_choices_positive;
       Alcotest.test_case "export printer" `Quick test_export_pp;
       Alcotest.test_case "pipeline custom env" `Quick
         test_pipeline_custom_env;
       Alcotest.test_case "vcd signal selection" `Quick
         test_vcd_signal_selection;
       Alcotest.test_case "traceability printer" `Quick
         test_traceability_pp ]) ]
