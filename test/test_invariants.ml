(* Cross-cutting invariants and extra property tests: kernel
   well-formedness after normalization, scheduler export coherence,
   calculus stability, word algebra laws. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module K = Signal_lang.Kernel
module T = Sched.Task
module S = Sched.Static_sched
module W = Clocks.Pword

(* ---------------- kernel well-formedness -------------------------- *)

let eq_dst = function
  | K.Kfunc { dst; _ } | K.Kdelay { dst; _ } | K.Kwhen { dst; _ }
  | K.Kdefault { dst; _ } -> dst

let eq_reads = function
  | K.Kfunc { args; _ } ->
    List.filter_map (function K.Avar x -> Some x | K.Aconst _ -> None) args
  | K.Kdelay { src; _ } -> [ src ]
  | K.Kwhen { src; cond; _ } ->
    List.filter_map (function K.Avar x -> Some x | K.Aconst _ -> None)
      [ src; cond ]
  | K.Kdefault { left; right; _ } ->
    List.filter_map (function K.Avar x -> Some x | K.Aconst _ -> None)
      [ left; right ]

(* every non-input signal defined exactly once (equation or primitive
   output); every read signal declared *)
let kernel_wf kp =
  let declared = Hashtbl.create 64 in
  List.iter
    (fun vd -> Hashtbl.replace declared vd.Ast.var_name ())
    (K.signals kp);
  let inputs =
    List.map (fun vd -> vd.Ast.var_name) kp.K.kinputs
  in
  let defs = Hashtbl.create 64 in
  let add_def x = Hashtbl.replace defs x (1 + Option.value ~default:0 (Hashtbl.find_opt defs x)) in
  List.iter (fun eq -> add_def (eq_dst eq)) kp.K.keqs;
  List.iter (fun ki -> List.iter add_def ki.K.ki_outs) kp.K.kinstances;
  let problems = ref [] in
  List.iter
    (fun vd ->
      let x = vd.Ast.var_name in
      let n = Option.value ~default:0 (Hashtbl.find_opt defs x) in
      if List.mem x inputs then begin
        if n > 0 then problems := (x ^ " input defined") :: !problems
      end
      else if n = 0 then problems := (x ^ " undefined") :: !problems
      else if n > 1 then problems := (x ^ " multiply defined") :: !problems)
    (K.signals kp);
  List.iter
    (fun eq ->
      List.iter
        (fun r ->
          if not (Hashtbl.mem declared r) then
            problems := (r ^ " read but undeclared") :: !problems)
        (eq_reads eq))
    kp.K.keqs;
  !problems

let test_kernel_wf_case_study () =
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  Alcotest.(check (list string)) "kernel well-formed" []
    (kernel_wf a.Polychrony.Pipeline.kernel)

let test_kernel_wf_library () =
  List.iter
    (fun p ->
      match Signal_lang.Stdproc.primitive_of_name p.Ast.proc_name with
      | Some _ -> ()
      | None ->
        let params =
          List.map
            (fun vd -> Types.default_init vd.Ast.var_type)
            p.Ast.params
        in
        (match N.process ~params p with
         | Ok kp ->
           Alcotest.(check (list string))
             (p.Ast.proc_name ^ " kernel well-formed")
             [] (kernel_wf kp)
         | Error m -> Alcotest.fail (Putil.Diag.to_string m)))
    Signal_lang.Stdproc.all

(* ---------------- scheduler export coherence ----------------------- *)

let gen_tasks =
  QCheck2.Gen.(
    list_size (int_range 1 5) (pair (int_range 1 4) (int_range 1 3))
    |> map (fun specs ->
           List.mapi
             (fun i (p, c) ->
               T.make
                 ~name:(Printf.sprintf "t%d" i)
                 ~period_us:(p * 2000)
                 ~wcet_us:(min (c * 500) (p * 2000))
                 ())
             specs))

let prop_word_vs_affine =
  QCheck2.Test.make ~name:"event_word agrees with event_affine" ~count:150
    gen_tasks (fun tasks ->
      match S.synthesize tasks with
      | Error _ -> true
      | Ok s ->
        List.for_all
          (fun t ->
            List.for_all
              (fun ev ->
                match S.event_affine s t.T.t_name ev with
                | None -> true
                | Some p ->
                  W.equal (S.event_word s t.T.t_name ev) (W.of_periodic p))
              [ S.Dispatch; S.Start; S.Complete ])
          tasks)

let prop_dispatch_counts =
  QCheck2.Test.make ~name:"dispatch count = hyperperiod / period"
    ~count:150 gen_tasks (fun tasks ->
      match S.synthesize tasks with
      | Error _ -> true
      | Ok s ->
        List.for_all
          (fun t ->
            List.length (S.event_times s t.T.t_name S.Dispatch)
            = s.S.hyperperiod_us / t.T.period_us)
          tasks)

let prop_busy_time_conserved =
  QCheck2.Test.make ~name:"total busy time = Σ jobs × wcet" ~count:150
    gen_tasks (fun tasks ->
      match S.synthesize tasks with
      | Error _ -> true
      | Ok s ->
        let busy =
          List.fold_left
            (fun acc j -> acc + (j.S.complete_us - j.S.start_us))
            0 s.S.jobs
        in
        let expected =
          List.fold_left
            (fun acc t ->
              acc + (s.S.hyperperiod_us / t.T.period_us * t.T.wcet_us))
            0 tasks
        in
        busy = expected)

(* ---------------- calculus stability ------------------------------ *)

let prop_calculus_deterministic =
  QCheck2.Test.make ~name:"clock calculus is deterministic" ~count:50
    QCheck2.Gen.(int_range 2 30)
    (fun n ->
      let locals =
        List.init n (fun i -> Ast.var (Printf.sprintf "l%d" i) Types.Tint)
      in
      let body =
        B.("l0" := v "x")
        :: List.init (n - 1) (fun i ->
               let dst = Printf.sprintf "l%d" (i + 1) in
               let src = Printf.sprintf "l%d" i in
               if i mod 2 = 0 then B.(dst := when_ (v src) (v "c"))
               else B.(dst := delay (v src)))
        @
        let last = Printf.sprintf "l%d" (n - 1) in
        [ B.("y" := v last) ]
      in
      let p =
        B.proc ~name:"chain" ~locals
          ~inputs:[ Ast.var "x" Types.Tint; Ast.var "c" Types.Tbool ]
          ~outputs:[ Ast.var "y" Types.Tint ]
          body
      in
      let kp = N.process_exn p in
      let c1 = Clocks.Calculus.analyze kp in
      let c2 = Clocks.Calculus.analyze kp in
      Clocks.Calculus.class_count c1 = Clocks.Calculus.class_count c2
      && Clocks.Calculus.null_signals c1 = Clocks.Calculus.null_signals c2)

(* ---------------- word algebra laws -------------------------------- *)

let gen_word =
  QCheck2.Gen.(
    map2
      (fun prefix cycle -> W.make ~prefix ~cycle)
      (list_size (int_range 0 5) bool)
      (list_size (int_range 1 6) bool))

let prop_land_comm =
  QCheck2.Test.make ~name:"word intersection commutative" ~count:300
    QCheck2.Gen.(pair gen_word gen_word)
    (fun (a, b) -> W.equal (W.land_ a b) (W.land_ b a))

let prop_land_assoc =
  QCheck2.Test.make ~name:"word intersection associative" ~count:300
    QCheck2.Gen.(triple gen_word gen_word gen_word)
    (fun (a, b, c) ->
      W.equal (W.land_ a (W.land_ b c)) (W.land_ (W.land_ a b) c))

let prop_absorption =
  QCheck2.Test.make ~name:"word absorption: a ∧ (a ∨ b) = a" ~count:300
    QCheck2.Gen.(pair gen_word gen_word)
    (fun (a, b) -> W.equal (W.land_ a (W.lor_ a b)) a)

(* ---------------- scale: 8-pair system end to end ------------------ *)

let test_scaled_system_runs () =
  (* a larger generated model (16 threads, 8 shared queues): translate,
     compile, simulate, and check compiled = interpreted *)
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = 8 in
  pf "package Big public\n";
  pf "  data Cell properties Queue_Size => 4; end Cell;\n";
  pf "  data implementation Cell.impl end Cell.impl;\n";
  for k = 0 to n - 1 do
    pf "  thread p%d features\n" k;
    pf "      q: requires data access Cell {Access_Right => write_only;};\n";
    pf "    properties Dispatch_Protocol => Periodic; Period => 4 ms;\n";
    pf "      Compute_Execution_Time => 100 us;\n  end p%d;\n" k;
    pf "  thread implementation p%d.impl end p%d.impl;\n" k k;
    pf "  thread c%d features\n" k;
    pf "      q: requires data access Cell {Access_Right => read_only;};\n";
    pf "    properties Dispatch_Protocol => Periodic; Period => 6 ms;\n";
    pf "      Compute_Execution_Time => 100 us;\n  end c%d;\n" k;
    pf "  thread implementation c%d.impl end c%d.impl;\n" k k
  done;
  pf "  process host end host;\n";
  pf "  process implementation host.impl\n    subcomponents\n";
  for k = 0 to n - 1 do
    pf "      pp%d: thread p%d.impl;\n      cc%d: thread c%d.impl;\n" k k k k;
    pf "      qq%d: data Cell.impl;\n" k
  done;
  pf "    connections\n";
  for k = 0 to n - 1 do
    pf "      a%d: data access qq%d -> pp%d.q;\n" k k k;
    pf "      b%d: data access qq%d -> cc%d.q;\n" k k k
  done;
  pf "  end host.impl;\n";
  pf "  processor cpu end cpu;\n";
  pf "  processor implementation cpu.impl end cpu.impl;\n";
  pf "  system rig end rig;\n  system implementation rig.impl\n";
  pf "    subcomponents h: process host.impl; c0: processor cpu.impl;\n";
  pf "    properties Actual_Processor_Binding => reference (c0) applies to h;\n";
  pf "  end rig.impl;\nend Big;\n";
  match Polychrony.Pipeline.analyze (Buffer.contents buf) with
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  | Ok a ->
    Alcotest.(check bool) "many classes" true
      (Clocks.Calculus.class_count (Lazy.force a.Polychrony.Pipeline.calc) > 80);
    let t1 =
      match Polychrony.Pipeline.simulate ~hyperperiods:1 a with
      | Ok t -> t
      | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
    in
    let t2 =
      match Polychrony.Pipeline.simulate ~compiled:true ~hyperperiods:1 a with
      | Ok t -> t
      | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
    in
    Alcotest.(check bool) "16-thread system: compiled = interpreted" true
      (List.for_all
         (fun x ->
           List.for_all
             (fun i -> Polysim.Trace.get t1 i x = Polysim.Trace.get t2 i x)
             (List.init (Polysim.Trace.length t1) Fun.id))
         (Polysim.Trace.observable t1))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_word_vs_affine; prop_dispatch_counts; prop_busy_time_conserved;
      prop_calculus_deterministic; prop_land_comm; prop_land_assoc;
      prop_absorption ]

let suite =
  [ ("invariants",
     [ Alcotest.test_case "kernel wf: case study" `Quick
         test_kernel_wf_case_study;
       Alcotest.test_case "kernel wf: library" `Quick test_kernel_wf_library;
       Alcotest.test_case "16-thread scale" `Quick test_scaled_system_runs ]
     @ qsuite) ]
