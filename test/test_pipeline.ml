(* End-to-end pipeline on the ProducerConsumer case study: the paper's
   Sec. V validated by execution. *)

module P = Polychrony.Pipeline
module CS = Polychrony.Case_study
module Trace = Polysim.Trace
module Types = Signal_lang.Types

let analyzed_nominal =
  lazy
    (match P.analyze ~registry:CS.registry_nominal CS.aadl_source with
     | Ok a -> a
     | Error m -> failwith (Putil.Diag.list_to_string m))

let analyzed_timeout =
  lazy
    (match P.analyze ~registry:CS.registry_timeout CS.aadl_source with
     | Ok a -> a
     | Error m -> failwith (Putil.Diag.list_to_string m))

let simulate ?env ?hyperperiods a =
  match P.simulate ?env ?hyperperiods a with
  | Ok tr -> tr
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)

let ints tr x =
  List.map
    (function Types.Vint n -> n | v ->
      Alcotest.fail (Types.value_to_string v))
    (Trace.values_of tr x)

let test_analyze_clean () =
  let a = Lazy.force analyzed_nominal in
  Alcotest.(check (list string)) "no typecheck errors" []
    (List.map Signal_lang.Typecheck.error_to_string a.P.typecheck_errors);
  Alcotest.(check bool) "deterministic" true a.P.determinism.Analysis.Determinism.deterministic;
  Alcotest.(check bool) "deadlock free" true a.P.deadlock.Analysis.Deadlock.deadlock_free;
  Alcotest.(check bool) "clock system consistent" true
    (Clocks.Calculus.consistent (Lazy.force a.P.calc))

let test_clock_scale () =
  (* the translated system exercises the clock calculus on hundreds of
     signals — the paper's scalability dimension in miniature *)
  let a = Lazy.force analyzed_nominal in
  Alcotest.(check bool) "hundreds of signals" true
    (List.length (Signal_lang.Kernel.signals a.P.kernel) > 400);
  Alcotest.(check bool) "dozens of classes" true
    (Clocks.Calculus.class_count (Lazy.force a.P.calc) > 50)

let test_default_root_detection () =
  (* analyze without ~root finds ProdConsSys.impl *)
  match P.analyze ~registry:CS.registry_nominal CS.aadl_source with
  | Ok a ->
    Alcotest.(check string) "root" "ProdConsSys"
      a.P.instance.Aadl.Instance.root.Aadl.Instance.i_name
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)

let test_base_ticks () =
  let a = Lazy.force analyzed_nominal in
  Alcotest.(check int) "24 base ticks per hyper-period" 24
    (P.base_ticks_per_hyperperiod a)

(* Fig. 2 frozen-input model: producer values written to the queue are
   consumed in order, never out of thin air *)
let test_producer_consumer_flow () =
  let a = Lazy.force analyzed_nominal in
  let tr = simulate ~hyperperiods:3 a in
  let written = ints tr "prProdCons_thProducer_reqQueue_w" in
  let consumed = ints tr "display_pData" in
  Alcotest.(check int) "producer runs 18 jobs" 18 (List.length written);
  Alcotest.(check bool) "consumption is a prefix-ordered subsequence" true
    (let rec subseq xs ys =
       match xs, ys with
       | [], _ -> true
       | _, [] -> false
       | x :: xs', y :: ys' ->
         if x = y then subseq xs' ys' else subseq xs ys'
     in
     subseq consumed written);
  Alcotest.(check bool) "consumer consumed most jobs" true
    (List.length consumed >= 10)

let test_nominal_no_alarm () =
  let a = Lazy.force analyzed_nominal in
  let tr = simulate ~hyperperiods:3 a in
  Alcotest.(check int) "no deadline alarm" 0 (Trace.present_count tr "Alarm");
  Alcotest.(check int) "no producer timeout" 0
    (Trace.present_count tr "display_pProdAlarm");
  Alcotest.(check int) "no consumer timeout" 0
    (Trace.present_count tr "display_pConsAlarm")

let test_timeout_scenario () =
  let a = Lazy.force analyzed_timeout in
  let tr = simulate ~hyperperiods:3 a in
  (* timers of duration 3 dispatch every 8 ticks: armed at the first
     dispatch that sees the start event, expired 3 dispatches later *)
  Alcotest.(check bool) "producer timeout reaches the display" true
    (Trace.present_count tr "display_pProdAlarm" >= 1);
  Alcotest.(check bool) "consumer timeout reaches the display" true
    (Trace.present_count tr "display_pConsAlarm" >= 1);
  (* the producer timeout fires at 32 ms + output latency *)
  match Trace.tick_instants tr "display_pProdAlarm" with
  | first :: _ ->
    Alcotest.(check bool) "after 32 ms" true (first >= 32);
    Alcotest.(check bool) "within 40 ms" true (first <= 40)
  | [] -> Alcotest.fail "no timeout recorded"

let test_simulation_deterministic () =
  let a = Lazy.force analyzed_nominal in
  let t1 = simulate ~hyperperiods:2 a in
  let t2 = simulate ~hyperperiods:2 a in
  Alcotest.(check (list int)) "same consumption"
    (ints t1 "display_pData") (ints t2 "display_pData")

let test_dispatch_clock_matches_schedule () =
  let a = Lazy.force analyzed_nominal in
  let tr = simulate ~hyperperiods:2 a in
  let dispatches = Trace.tick_instants tr "prProdCons_thProducer_dispatch" in
  Alcotest.(check (list int)) "4 ms cadence"
    [ 0; 4; 8; 12; 16; 20; 24; 28; 32; 36; 40; 44 ]
    dispatches;
  let consumer = Trace.tick_instants tr "prProdCons_thConsumer_dispatch" in
  Alcotest.(check (list int)) "6 ms cadence"
    [ 0; 6; 12; 18; 24; 30; 36; 42 ]
    consumer

let test_vcd_output () =
  let a = Lazy.force analyzed_nominal in
  let tr = simulate ~hyperperiods:1 a in
  let vcd = P.vcd_of_trace a tr in
  let contains needle =
    let nh = String.length vcd and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub vcd i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "$enddefinitions");
  Alcotest.(check bool) "timescale" true (contains "$timescale");
  Alcotest.(check bool) "declares display data wire" true
    (contains "display_pData");
  Alcotest.(check bool) "has time zero" true (contains "#0")

let test_summary_renders () =
  let a = Lazy.force analyzed_nominal in
  let s = Format.asprintf "%a" P.pp_summary a in
  Alcotest.(check bool) "non-empty summary" true (String.length s > 200)

let test_rm_policy_end_to_end () =
  match
    P.analyze ~registry:CS.registry_nominal ~policy:Sched.Static_sched.Rm
      CS.aadl_source
  with
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  | Ok a ->
    let tr = simulate ~hyperperiods:2 a in
    Alcotest.(check int) "no alarm under RM" 0
      (Trace.present_count tr "Alarm")

let test_queue_size_bounded () =
  (* producer at 4 ms, consumer at 6 ms: the queue grows by one every
     12 ms and saturates at its capacity of 8, dropping the oldest *)
  let a = Lazy.force analyzed_nominal in
  let tr = simulate ~hyperperiods:8 a in
  let sizes = ints tr "prProdCons_Queue_size" in
  Alcotest.(check bool) "bounded by capacity" true
    (List.for_all (fun s -> s >= 0 && s <= 8) sizes)

let suite =
  [ ("pipeline.analysis",
     [ Alcotest.test_case "clean analysis" `Quick test_analyze_clean;
       Alcotest.test_case "clock scale" `Quick test_clock_scale;
       Alcotest.test_case "default root" `Quick test_default_root_detection;
       Alcotest.test_case "base ticks" `Quick test_base_ticks;
       Alcotest.test_case "summary" `Quick test_summary_renders ]);
    ("pipeline.simulation",
     [ Alcotest.test_case "producer/consumer flow" `Quick
         test_producer_consumer_flow;
       Alcotest.test_case "nominal: no alarms" `Quick test_nominal_no_alarm;
       Alcotest.test_case "timeout scenario (Sec. II)" `Quick
         test_timeout_scenario;
       Alcotest.test_case "deterministic" `Quick test_simulation_deterministic;
       Alcotest.test_case "dispatch cadence (Fig. 2)" `Quick
         test_dispatch_clock_matches_schedule;
       Alcotest.test_case "VCD output (ref [18])" `Quick test_vcd_output;
       Alcotest.test_case "RM end-to-end" `Quick test_rm_policy_end_to_end;
       Alcotest.test_case "queue bounded" `Quick test_queue_size_bounded ]) ]
