(* Structured tracing: span recording and nesting, the Chrome
   trace-event export (RFC 8259 parseability, well-nested spans per
   track, the two-process model), the logical-time schedule timeline of
   the ProducerConsumer case study as a golden snapshot, deadline-miss
   reporting, and multi-domain emission through Domain_pool. *)

module T = Putil.Tracing
module J = Putil.Metrics.Json
module P = Polychrony.Pipeline
module S = Sched.Static_sched
module Task = Sched.Task

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run [f] with a fresh, enabled trace; always disable afterwards so a
   failing test cannot leak tracing into the rest of the suite. *)
let with_fresh_trace f =
  T.reset ();
  T.set_enabled true;
  Fun.protect ~finally:(fun () -> T.set_enabled false) f

(* ---------------- recording ---------------------------------------- *)

let test_span_nesting () =
  with_fresh_trace @@ fun () ->
  T.with_span "outer" ~args:[ ("k", T.Aint 1) ] (fun () ->
      T.with_span "inner" (fun () -> T.instant "tick");
      T.instant "tock");
  T.set_enabled false;
  match T.events () with
  | [ (_dom, evs) ] ->
    let shape =
      List.map
        (function
          | T.Begin { name; _ } -> "B:" ^ name
          | T.End _ -> "E"
          | T.Inst { name; _ } -> "I:" ^ name
          | T.Lane_span _ -> "LS"
          | T.Lane_inst _ -> "LI")
        evs
    in
    Alcotest.(check (list string)) "emission order"
      [ "B:outer"; "B:inner"; "I:tick"; "E"; "I:tock"; "E" ]
      shape;
    (match evs with
     | T.Begin { args; cat; _ } :: _ ->
       Alcotest.(check bool) "args kept" true (args = [ ("k", T.Aint 1) ]);
       Alcotest.(check string) "default category" "toolchain" cat
     | _ -> Alcotest.fail "first event is not Begin")
  | l -> Alcotest.failf "expected one domain buffer, got %d" (List.length l)

let test_span_closes_on_raise () =
  with_fresh_trace @@ fun () ->
  (try T.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  T.set_enabled false;
  match T.events () with
  | [ (_, [ T.Begin { name = "boom"; _ }; T.End _ ]) ] -> ()
  | _ -> Alcotest.fail "span not closed by the raising body"

let test_disabled_records_nothing () =
  T.reset ();
  T.set_enabled false;
  let ran = ref false in
  T.with_span "off" (fun () -> ran := true);
  T.instant "off";
  T.lane_span ~lane:"l" ~ts_us:0 ~dur_us:1 "off";
  T.lane_instant ~lane:"l" ~ts_us:0 "off";
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check int) "no events" 0 (List.length (T.events ()))

(* ---------------- chrome export ------------------------------------ *)

let x_events_by_track json =
  let evs =
    match J.member "traceEvents" json with
    | Some (J.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let tracks = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match
        ( J.member "ph" ev, J.member "pid" ev, J.member "tid" ev,
          J.to_float (J.member "ts" ev), J.to_float (J.member "dur" ev) )
      with
      | Some (J.String "X"), Some (J.Int pid), Some (J.Int tid), Some ts,
        Some dur ->
        let k = (pid, tid) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt tracks k) in
        Hashtbl.replace tracks k ((ts, ts +. dur) :: prev)
      | _ -> ())
    evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tracks []

(* Any two spans of one (pid, tid) track either nest or are disjoint
   (small epsilon: host timestamps are ns rounded to fractional µs). *)
let check_well_nested tracks =
  let eps = 1e-6 in
  List.iter
    (fun ((pid, tid), spans) ->
      List.iteri
        (fun i (b1, e1) ->
          List.iteri
            (fun j (b2, e2) ->
              if i < j then
                let nested =
                  (b1 >= b2 -. eps && e1 <= e2 +. eps)
                  || (b2 >= b1 -. eps && e2 <= e1 +. eps)
                in
                let disjoint = e1 <= b2 +. eps || e2 <= b1 +. eps in
                if not (nested || disjoint) then
                  Alcotest.failf
                    "overlap on pid %d tid %d: [%f,%f] vs [%f,%f]" pid tid
                    b1 e1 b2 e2)
            spans)
        spans)
    tracks

let case_study_analyzed () =
  match
    P.analyze ~registry:Polychrony.Case_study.registry_nominal
      Polychrony.Case_study.aadl_source
  with
  | Ok a -> a
  | Error _ -> Alcotest.fail "case study does not analyze"

let test_chrome_case_study () =
  let chrome =
    with_fresh_trace @@ fun () ->
    let a = case_study_analyzed () in
    (match P.simulate a with
     | Ok _ -> ()
     | Error _ -> Alcotest.fail "case study does not simulate");
    T.set_enabled false;
    T.to_chrome ()
  in
  match J.of_string chrome with
  | Error m -> Alcotest.failf "chrome export is not valid JSON: %s" m
  | Ok json ->
    let tracks = x_events_by_track json in
    Alcotest.(check bool) "has host track (pid 1)" true
      (List.exists (fun ((pid, _), _) -> pid = 1) tracks);
    Alcotest.(check bool) "has schedule track (pid 2)" true
      (List.exists (fun ((pid, _), _) -> pid = 2) tracks);
    check_well_nested tracks;
    (* one lane per AADL thread, named by metadata events *)
    let evs =
      match J.member "traceEvents" json with
      | Some (J.Arr evs) -> evs
      | _ -> []
    in
    let lanes =
      List.filter_map
        (fun ev ->
          match (J.member "ph" ev, J.member "name" ev, J.member "pid" ev) with
          | Some (J.String "M"), Some (J.String "thread_name"),
            Some (J.Int 2) -> (
            match Option.bind (J.member "args" ev) (J.member "name") with
            | Some (J.String lane) -> Some lane
            | _ -> None)
          | _ -> None)
        evs
    in
    List.iter
      (fun th ->
        Alcotest.(check bool) ("lane " ^ th) true (List.mem th lanes))
      [ "thProducer"; "thConsumer"; "thProdTimer"; "thConsTimer" ];
    (* each lane carries the full dispatch→deadline event vocabulary *)
    let sched_names =
      List.filter_map
        (fun ev ->
          match (J.member "pid" ev, J.member "name" ev, J.member "ph" ev) with
          | Some (J.Int 2), Some (J.String n), Some (J.String ("X" | "i")) ->
            Some n
          | _ -> None)
        evs
    in
    List.iter
      (fun n ->
        Alcotest.(check bool) ("schedule has " ^ n) true
          (List.mem n sched_names))
      [ "dispatch"; "input_freeze"; "compute"; "output_send"; "deadline" ]

(* ---------------- golden snapshot ---------------------------------- *)

(* Canonical wall-clock-free listing of the recorded events: span
   structure and logical-time lanes, with memoized stages (their spans
   only appear on cache misses, which depend on what ran before in the
   test binary) and cache-sized instants dropped. *)
let skip_spans = [ "clocks.calculus"; "compile.plan" ]

let canonical_args args =
  match args with
  | [] -> ""
  | args ->
    " {"
    ^ String.concat ", "
        (List.map
           (fun (k, v) ->
             k ^ "="
             ^ (match v with
                | T.Abool b -> string_of_bool b
                | T.Aint n -> string_of_int n
                | T.Afloat f -> Printf.sprintf "%g" f
                | T.Astr s -> s))
           args)
    ^ "}"

let canonical () =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun di (_dom, evs) ->
      Buffer.add_string buf (Printf.sprintf "domain %d\n" di);
      (* printed-depth stack: skipped spans keep their children at the
         parent's indentation *)
      let stack = ref [] in
      let depth () = List.length (List.filter Fun.id !stack) in
      List.iter
        (fun ev ->
          match ev with
          | T.Begin { name; args; _ } ->
            let printed = not (List.mem name skip_spans) in
            if printed then
              Buffer.add_string buf
                (Printf.sprintf "%sspan %s%s\n"
                   (String.make (2 * depth ()) ' ')
                   name (canonical_args args));
            stack := printed :: !stack
          | T.End _ -> (
            match !stack with [] -> () | _ :: tl -> stack := tl)
          | T.Inst { cat = "clocks"; _ } -> ()
          | T.Inst { name; args; _ } ->
            Buffer.add_string buf
              (Printf.sprintf "%sinst %s%s\n"
                 (String.make (2 * depth ()) ' ')
                 name (canonical_args args))
          | T.Lane_span { lane; name; ts_us; dur_us; args; _ } ->
            Buffer.add_string buf
              (Printf.sprintf "lane %s %d+%d %s%s\n" lane ts_us dur_us name
                 (canonical_args args))
          | T.Lane_inst { lane; name; ts_us; args; _ } ->
            Buffer.add_string buf
              (Printf.sprintf "lane %s %d %s%s\n" lane ts_us name
                 (canonical_args args)))
        evs)
    (T.events ());
  Buffer.contents buf

let test_golden_case_study () =
  let got =
    with_fresh_trace @@ fun () ->
    let a = case_study_analyzed () in
    (match P.simulate a with
     | Ok _ -> ()
     | Error _ -> Alcotest.fail "case study does not simulate");
    T.set_enabled false;
    canonical ()
  in
  let want = read_file "corpus/golden/trace_producer_consumer.txt" in
  Alcotest.(check string) "canonical trace" want got

(* ---------------- qcheck: random span trees ------------------------ *)

let gen_name =
  QCheck2.Gen.(
    oneof
      [ string_size ~gen:printable (int_range 1 12);
        (* exercise the JSON escaper: quotes, backslashes, control
           characters, non-ASCII bytes *)
        oneofl [ "a\"b"; "back\\slash"; "tab\there"; "nl\nthere";
                 "caf\xc3\xa9"; "\x01ctl" ] ])

let gen_arg =
  QCheck2.Gen.(
    oneof
      [ map (fun b -> T.Abool b) bool;
        map (fun n -> T.Aint n) int;
        map (fun f -> T.Afloat f) float;
        map (fun s -> T.Astr s) gen_name ])

type span_tree = Node of string * (string * T.arg) list * span_tree list

let gen_tree =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let children =
          if n <= 0 then return []
          else list_size (int_range 0 3) (self (n / 4))
        in
        map3
          (fun name args cs -> Node (name, args, cs))
          gen_name
          (list_size (int_range 0 2) (pair gen_name gen_arg))
          children))

let rec span_count (Node (_, _, cs)) =
  1 + List.fold_left (fun acc c -> acc + span_count c) 0 cs

let rec emit_tree (Node (name, args, cs)) =
  T.with_span name ~args (fun () -> List.iter emit_tree cs)

let prop_chrome_parses =
  QCheck2.Test.make ~name:"chrome export of random span trees" ~count:60
    QCheck2.Gen.(list_size (int_range 1 4) gen_tree)
    (fun trees ->
      let chrome =
        with_fresh_trace @@ fun () ->
        List.iter emit_tree trees;
        T.set_enabled false;
        T.to_chrome ()
      in
      match J.of_string chrome with
      | Error m -> QCheck2.Test.fail_reportf "not RFC 8259: %s" m
      | Ok json ->
        let tracks = x_events_by_track json in
        check_well_nested tracks;
        let total =
          List.fold_left
            (fun acc (_, spans) -> acc + List.length spans)
            0 tracks
        in
        total = List.fold_left (fun acc t -> acc + span_count t) 0 trees)

(* ---------------- deadline misses ---------------------------------- *)

(* A hand-built over-budget schedule: the job starts late and overruns
   its absolute deadline. *)
let missed_schedule () =
  let t =
    Task.make ~name:"sys.prc.thSlow" ~period_us:10_000 ~wcet_us:4_000 ()
  in
  let ok_job =
    { S.j_task = t; j_index = 0; dispatch_us = 0; start_us = 0;
      complete_us = 4_000; deadline_abs_us = 10_000 }
  in
  let missed_job =
    { S.j_task = t; j_index = 1; dispatch_us = 10_000; start_us = 17_000;
      complete_us = 21_000; deadline_abs_us = 20_000 }
  in
  ( t,
    { S.s_policy = S.Edf; hyperperiod_us = 20_000; base_us = 1_000;
      jobs = [ ok_job; missed_job ] } )

let test_deadline_miss_report () =
  let _, sched = missed_schedule () in
  match Analysis.Profiling.schedule_timing sched with
  | [ tt ] ->
    Alcotest.(check string) "task" "sys.prc.thSlow"
      tt.Analysis.Profiling.tt_name;
    Alcotest.(check int) "jobs" 2 tt.Analysis.Profiling.tt_jobs;
    Alcotest.(check int) "misses" 1 tt.Analysis.Profiling.tt_misses;
    Alcotest.(check (list int)) "missed job indices" [ 1 ]
      tt.Analysis.Profiling.tt_missed_jobs;
    Alcotest.(check int) "worst response" 11_000
      tt.Analysis.Profiling.tt_worst_response_us;
    Alcotest.(check int) "best response" 4_000
      tt.Analysis.Profiling.tt_best_response_us;
    Alcotest.(check int) "jitter" 7_000 tt.Analysis.Profiling.tt_jitter_us
  | l -> Alcotest.failf "expected one thread, got %d" (List.length l)

(* The timeline's static-schedule fallback (no ctl signals in the
   trace) marks the overrun with a deadline_miss lane instant. *)
let test_deadline_miss_timeline () =
  let t, sched = missed_schedule () in
  let empty = Polysim.Trace.create [] in
  with_fresh_trace @@ fun () ->
  Polychrony.Timeline.emit ~root_path:"sys" ~base_us:1_000
    ~horizon_ticks:20 ~schedules:[ ("cpu", sched) ]
    ~tasks:[ ("cpu", [ t ]) ]
    empty;
  T.set_enabled false;
  let lane_events =
    List.concat_map
      (fun (_, evs) ->
        List.filter_map
          (function
            | T.Lane_inst { lane; name; ts_us; _ } -> Some (lane, name, ts_us)
            | _ -> None)
          evs)
      (T.events ())
  in
  Alcotest.(check bool) "lane uses the short thread name" true
    (List.for_all (fun (l, _, _) -> String.equal l "thSlow") lane_events);
  Alcotest.(check bool) "deadline_miss marked at completion" true
    (List.mem ("thSlow", "deadline_miss", 21_000) lane_events);
  Alcotest.(check int) "exactly one miss" 1
    (List.length
       (List.filter (fun (_, n, _) -> n = "deadline_miss") lane_events))

(* ---------------- multi-domain emission ---------------------------- *)

let test_domain_pool_emission () =
  with_fresh_trace @@ fun () ->
  let pool = Putil.Domain_pool.create 3 in
  Fun.protect ~finally:(fun () -> Putil.Domain_pool.shutdown pool)
    (fun () ->
      Putil.Domain_pool.run_tasks pool
        (List.init 24 (fun i () ->
             T.with_span "task" ~args:[ ("i", T.Aint i) ] (fun () ->
                 T.instant "step"))));
  T.set_enabled false;
  let per_domain = T.events () in
  let begins, ends, insts =
    List.fold_left
      (fun (b, e, i) (_, evs) ->
        List.fold_left
          (fun (b, e, i) ev ->
            match ev with
            | T.Begin _ -> (b + 1, e, i)
            | T.End _ -> (b, e + 1, i)
            | T.Inst _ -> (b, e, i + 1)
            | _ -> (b, e, i))
          (b, e, i) evs)
      (0, 0, 0) per_domain
  in
  Alcotest.(check int) "24 spans recorded" 24 begins;
  Alcotest.(check int) "all spans closed" 24 ends;
  Alcotest.(check int) "24 instants" 24 insts;
  (* each domain's buffer is independently well-nested *)
  List.iter
    (fun (_, evs) ->
      let d =
        List.fold_left
          (fun d ev ->
            match ev with
            | T.Begin _ ->
              Alcotest.(check bool) "depth never negative" true (d >= 0);
              d + 1
            | T.End _ -> d - 1
            | _ -> d)
          0 evs
      in
      Alcotest.(check int) "balanced per domain" 0 d)
    per_domain

let suite =
  [ ("tracing",
     [ Alcotest.test_case "span nesting and args" `Quick test_span_nesting;
       Alcotest.test_case "span closes on raise" `Quick
         test_span_closes_on_raise;
       Alcotest.test_case "disabled records nothing" `Quick
         test_disabled_records_nothing;
       Alcotest.test_case "chrome export of the case study" `Quick
         test_chrome_case_study;
       Alcotest.test_case "golden canonical trace" `Quick
         test_golden_case_study;
       QCheck_alcotest.to_alcotest prop_chrome_parses;
       Alcotest.test_case "deadline-miss report" `Quick
         test_deadline_miss_report;
       Alcotest.test_case "deadline-miss timeline" `Quick
         test_deadline_miss_timeline;
       Alcotest.test_case "domain-pool emission" `Quick
         test_domain_pool_emission ]) ]
