(* Boolean-algebra laws of the BDD core, mostly property-based. *)

module Bdd = Clocks.Bdd

let mgr () = Bdd.manager ()

(* random boolean expressions over k variables, evaluated both through
   the BDD and directly *)
type bexp =
  | Var of int
  | Const of bool
  | Not of bexp
  | And of bexp * bexp
  | Or of bexp * bexp
  | Xor of bexp * bexp

let gen_bexp k =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 1 then
           oneof [ map (fun i -> Var i) (int_range 0 (k - 1));
                   map (fun b -> Const b) bool ]
         else
           oneof
             [ map (fun i -> Var i) (int_range 0 (k - 1));
               map (fun e -> Not e) (self (n - 1));
               map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Xor (a, b)) (self (n / 2)) (self (n / 2)) ])

let rec to_bdd m = function
  | Var i -> Bdd.var m i
  | Const true -> Bdd.one m
  | Const false -> Bdd.zero m
  | Not e -> Bdd.not_ m (to_bdd m e)
  | And (a, b) -> Bdd.and_ m (to_bdd m a) (to_bdd m b)
  | Or (a, b) -> Bdd.or_ m (to_bdd m a) (to_bdd m b)
  | Xor (a, b) -> Bdd.xor_ m (to_bdd m a) (to_bdd m b)

let rec eval env = function
  | Var i -> env.(i)
  | Const b -> b
  | Not e -> not (eval env e)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Xor (a, b) -> eval env a <> eval env b

let nvars = 5

let all_envs =
  List.init (1 lsl nvars) (fun mask ->
      Array.init nvars (fun i -> (mask lsr i) land 1 = 1))

let prop_semantics =
  QCheck2.Test.make ~name:"bdd computes the boolean function" ~count:200
    (gen_bexp nvars) (fun e ->
      let m = mgr () in
      let b = to_bdd m e in
      (* compare to truth table via implication with minterms *)
      List.for_all
        (fun env ->
          let minterm =
            List.fold_left
              (fun acc i ->
                let v = Bdd.var m i in
                Bdd.and_ m acc (if env.(i) then v else Bdd.not_ m v))
              (Bdd.one m)
              (List.init nvars (fun i -> i))
          in
          let expected = eval env e in
          Bdd.implies m minterm b = expected)
        all_envs)

let prop_canonical =
  QCheck2.Test.make ~name:"equal functions share a node" ~count:200
    QCheck2.Gen.(pair (gen_bexp nvars) (gen_bexp nvars))
    (fun (e1, e2) ->
      let m = mgr () in
      let b1 = to_bdd m e1 and b2 = to_bdd m e2 in
      let same_fun = List.for_all (fun env -> eval env e1 = eval env e2) all_envs in
      Bdd.equal b1 b2 = same_fun)

let prop_de_morgan =
  QCheck2.Test.make ~name:"de morgan" ~count:200
    QCheck2.Gen.(pair (gen_bexp nvars) (gen_bexp nvars))
    (fun (e1, e2) ->
      let m = mgr () in
      let a = to_bdd m e1 and b = to_bdd m e2 in
      Bdd.equal
        (Bdd.not_ m (Bdd.and_ m a b))
        (Bdd.or_ m (Bdd.not_ m a) (Bdd.not_ m b)))

let prop_involution =
  QCheck2.Test.make ~name:"double negation" ~count:200 (gen_bexp nvars)
    (fun e ->
      let m = mgr () in
      let b = to_bdd m e in
      Bdd.equal b (Bdd.not_ m (Bdd.not_ m b)))

let test_terminals () =
  let m = mgr () in
  Alcotest.(check bool) "zero" true (Bdd.is_zero (Bdd.zero m));
  Alcotest.(check bool) "one" true (Bdd.is_one (Bdd.one m));
  Alcotest.(check bool) "x and not x" true
    (let x = Bdd.var m 0 in
     Bdd.is_zero (Bdd.and_ m x (Bdd.not_ m x)));
  Alcotest.(check bool) "x or not x" true
    (let x = Bdd.var m 0 in
     Bdd.is_one (Bdd.or_ m x (Bdd.not_ m x)))

let test_implies_exclusive () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let xy = Bdd.and_ m x y in
  Alcotest.(check bool) "xy implies x" true (Bdd.implies m xy x);
  Alcotest.(check bool) "x does not imply xy" false (Bdd.implies m x xy);
  Alcotest.(check bool) "x excl not-x" true
    (Bdd.exclusive m x (Bdd.not_ m x));
  Alcotest.(check bool) "x not excl y" false (Bdd.exclusive m x y)

let test_support () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 3 in
  let f = Bdd.or_ m x y in
  Alcotest.(check (list int)) "support" [ 0; 3 ] (Bdd.support m f);
  (* y or not y cancels out *)
  let g = Bdd.and_ m f (Bdd.or_ m y (Bdd.not_ m y)) in
  Alcotest.(check (list int)) "redundant var eliminated" [ 0; 3 ]
    (Bdd.support m g)

(* the apply cache has replace semantics: recomputing an expression
   over already-built nodes must answer every consultation from the
   cache. This is the regression test for the old insert-once cache,
   whose entries could never be refreshed and whose measured hit rate
   stagnated around 21%. *)
let test_apply_cache_growth () =
  let m = mgr () in
  let build () =
    let acc = ref (Bdd.one m) in
    for i = 0 to 7 do
      let x = Bdd.var m i and y = Bdd.var m ((i + 3) mod 8) in
      acc := Bdd.and_ m !acc (Bdd.or_ m x (Bdd.xor_ m y (Bdd.not_ m x)))
    done;
    !acc
  in
  let f1 = build () in
  let consults1, hits1 = Bdd.apply_stats m in
  let f2 = build () in
  let consults2, hits2 = Bdd.apply_stats m in
  Alcotest.(check bool) "hash-consed to the same node" true (Bdd.equal f1 f2);
  let replay_consults = consults2 - consults1 in
  let replay_hits = hits2 - hits1 in
  Alcotest.(check bool) "replay consults the cache" true (replay_consults > 0);
  Alcotest.(check int) "every replayed consultation hits" replay_consults
    replay_hits

let test_any_sat () =
  let m = mgr () in
  Alcotest.(check bool) "zero unsat" true (Bdd.any_sat m (Bdd.zero m) = None);
  let x = Bdd.var m 0 in
  match Bdd.any_sat m x with
  | Some [ (0, true) ] -> ()
  | _ -> Alcotest.fail "expected assignment {0 -> true}"

(* quantification: ∃x. (x ∧ y) ∨ (¬x ∧ z) = y ∨ z *)
let test_exists () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  let f = Bdd.or_ m (Bdd.and_ m x y) (Bdd.and_ m (Bdd.not_ m x) z) in
  let q = Bdd.exists m ~cube:(Bdd.cube m [ 0 ]) f in
  Alcotest.(check bool) "∃x.f = y ∨ z" true (Bdd.equal q (Bdd.or_ m y z));
  let q2 = Bdd.exists m ~cube:(Bdd.cube m [ 0; 1; 2 ]) f in
  Alcotest.(check bool) "∃xyz.f = 1" true (Bdd.is_one q2);
  let q3 = Bdd.exists m ~cube:(Bdd.one m) f in
  Alcotest.(check bool) "∃∅.f = f" true (Bdd.equal q3 f)

let test_and_exists () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  let a = Bdd.or_ m (Bdd.and_ m x y) z in
  let b = Bdd.or_ m (Bdd.not_ m x) (Bdd.not_ m z) in
  let cube = Bdd.cube m [ 0; 2 ] in
  let fused = Bdd.and_exists m ~cube a b in
  let naive = Bdd.exists m ~cube (Bdd.and_ m a b) in
  Alcotest.(check bool) "relprod = ∃.(a∧b)" true (Bdd.equal fused naive);
  let c0, _ = Bdd.relprod_stats m in
  Alcotest.(check bool) "relprod cache consulted" true (c0 > 0)

let test_rename () =
  let m = mgr () in
  (* next→current shift on interleaved rails: odd vars map one down *)
  let n0 = Bdd.var m 1 and n1 = Bdd.var m 3 in
  let f = Bdd.xor_ m n0 n1 in
  let map = [| 0; 0; 2; 2 |] in
  let r = Bdd.rename m ~map f in
  let c0 = Bdd.var m 0 and c1 = Bdd.var m 2 in
  Alcotest.(check bool) "renamed onto current rail" true
    (Bdd.equal r (Bdd.xor_ m c0 c1))

let test_sat_count () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 2 in
  let f = Bdd.or_ m x y in
  Alcotest.(check (float 0.0)) "x∨y over {0,2}" 3.0
    (Bdd.sat_count m ~vars:[| 0; 2 |] f);
  Alcotest.(check (float 0.0)) "free variable doubles the count" 6.0
    (Bdd.sat_count m ~vars:[| 0; 2; 4 |] f);
  Alcotest.(check (float 0.0)) "one over 3 vars" 8.0
    (Bdd.sat_count m ~vars:[| 0; 1; 2 |] (Bdd.one m));
  Alcotest.(check (float 0.0)) "zero" 0.0
    (Bdd.sat_count m ~vars:[| 0; 1 |] (Bdd.zero m))

let test_gc () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let keep = Bdd.and_ m x y in
  (* build garbage *)
  for i = 2 to 40 do
    ignore (Bdd.and_ m (Bdd.var m i) keep)
  done;
  let before = Bdd.node_count m in
  let roots = [| keep; x; y |] in
  let live = Bdd.gc m ~roots in
  Alcotest.(check bool) "swept garbage" true (live < before);
  let keep' = roots.(0) and x' = roots.(1) and y' = roots.(2) in
  Alcotest.(check bool) "roots stay valid" true
    (Bdd.equal keep' (Bdd.and_ m x' y'));
  Alcotest.(check bool) "semantics survive" true
    (Bdd.eval m (fun _ -> true) keep'
    && not (Bdd.eval m (fun v -> v <> 0) keep'));
  let collections, swept = Bdd.gc_stats m in
  Alcotest.(check bool) "stats recorded" true (collections >= 1 && swept > 0)

let test_id () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let a = Bdd.and_ m x y and b = Bdd.and_ m y x in
  Alcotest.(check int) "hash-consed ids equal" (Bdd.id a) (Bdd.id b);
  Alcotest.(check bool) "distinct nodes, distinct ids" true
    (Bdd.id a <> Bdd.id x)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_semantics; prop_canonical; prop_de_morgan; prop_involution ]

let suite =
  [ ("bdd",
     [ Alcotest.test_case "terminals" `Quick test_terminals;
       Alcotest.test_case "implies/exclusive" `Quick test_implies_exclusive;
       Alcotest.test_case "support" `Quick test_support;
       Alcotest.test_case "apply cache replays as hits" `Quick
         test_apply_cache_growth;
       Alcotest.test_case "any_sat" `Quick test_any_sat;
       Alcotest.test_case "exists over cube" `Quick test_exists;
       Alcotest.test_case "and_exists relational product" `Quick
         test_and_exists;
       Alcotest.test_case "rename rails" `Quick test_rename;
       Alcotest.test_case "sat_count" `Quick test_sat_count;
       Alcotest.test_case "gc keeps roots" `Quick test_gc;
       Alcotest.test_case "node id" `Quick test_id ]
     @ qsuite) ]
