(* Clock-directed compiler (ref [15]): equivalence with the fixpoint
   interpreter on library processes, random programs, and the full
   translated case study. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module Engine = Polysim.Engine
module Compile = Polysim.Compile
module Trace = Polysim.Trace

let vi n = Types.Vint n
let vb b = Types.Vbool b
let ve = Types.Vevent

let traces_equal t1 t2 =
  let names =
    List.map (fun vd -> vd.Ast.var_name) (Trace.declarations t1)
  in
  Trace.length t1 = Trace.length t2
  && List.for_all
       (fun x ->
         List.for_all
           (fun i -> Trace.get t1 i x = Trace.get t2 i x)
           (List.init (Trace.length t1) Fun.id))
       names

let check_equiv ?(msg = "traces agree") p stimuli =
  let kp = N.process_exn p in
  match Engine.run kp ~stimuli, Compile.run kp ~stimuli with
  | Ok t1, Ok t2 -> Alcotest.(check bool) msg true (traces_equal t1 t2)
  | Error m, _ -> Alcotest.fail ("engine: " ^ m)
  | _, Error m -> Alcotest.fail ("compile: " ^ m)

let test_fm_equiv () =
  let p =
    B.proc ~name:"use_fm"
      ~inputs:[ Ast.var "i" Types.Tint; Ast.var "b" Types.Tbool ]
      ~outputs:[ Ast.var "o" Types.Tint ]
      B.[ inst ~label:"mem" "fm" [ v "i"; v "b" ] [ "o" ] ]
  in
  check_equiv p
    [ [ ("i", vi 1); ("b", vb true) ]; [ ("b", vb true) ]; [ ("i", vi 2) ];
      [ ("i", vi 3); ("b", vb false) ]; [ ("b", vb true) ];
      [ ("i", vi 4); ("b", vb true) ]; [] ]

let test_timer_equiv () =
  let p =
    B.proc ~name:"use_timer"
      ~inputs:[ Ast.var "go" Types.Tevent; Ast.var "halt" Types.Tevent;
                Ast.var "tk" Types.Tevent ]
      ~outputs:[ Ast.var "out" Types.Tevent ]
      B.[ inst ~params:[ vi 2 ] ~label:"tm" "timer"
            [ v "go"; v "halt"; v "tk" ] [ "out" ] ]
  in
  check_equiv p
    [ [ ("go", ve) ]; [ ("tk", ve) ]; [ ("tk", ve) ]; [ ("tk", ve) ];
      [ ("go", ve) ]; [ ("halt", ve) ]; [ ("tk", ve) ] ]

let test_fifo_equiv () =
  let p =
    B.proc ~name:"use_fifo"
      ~inputs:[ Ast.var "x" Types.Tint; Ast.var "pop" Types.Tevent ]
      ~outputs:[ Ast.var "d" Types.Tint; Ast.var "s" Types.Tint ]
      B.[ inst ~params:[ vi 3; Types.Vstring "dropoldest" ] ~label:"q" "fifo" [ v "x"; v "pop" ]
            [ "d"; "s" ] ]
  in
  check_equiv p
    [ [ ("x", vi 1) ]; [ ("x", vi 2) ]; [ ("pop", ve) ];
      [ ("x", vi 3); ("pop", ve) ]; [ ("x", vi 4) ]; [ ("x", vi 5) ];
      [ ("x", vi 6) ]; (* overflow *)
      [ ("pop", ve) ]; [ ("pop", ve) ]; [ ("pop", ve) ]; [ ("pop", ve) ] ]

let test_in_port_equiv () =
  let p =
    B.proc ~name:"use_inport"
      ~inputs:[ Ast.var "arr" Types.Tint; Ast.var "ft" Types.Tevent ]
      ~outputs:[ Ast.var "frz" Types.Tint; Ast.var "cnt" Types.Tint ]
      B.[ inst ~params:[ vi 4; Types.Vstring "dropoldest" ] ~label:"port" "in_event_port"
            [ v "arr"; v "ft" ] [ "frz"; "cnt" ] ]
  in
  check_equiv p
    [ [ ("arr", vi 1) ]; [ ("ft", ve) ]; [ ("arr", vi 2) ];
      [ ("arr", vi 3) ]; [ ("arr", vi 9); ("ft", ve) ]; [ ("ft", ve) ];
      [ ("ft", ve) ] ]

let test_out_port_equiv () =
  let p =
    B.proc ~name:"use_outport"
      ~inputs:[ Ast.var "item" Types.Tint; Ast.var "ot" Types.Tevent ]
      ~outputs:[ Ast.var "sent" Types.Tint ]
      B.[ inst ~params:[ vi 4; Types.Vstring "dropoldest" ] ~label:"port" "out_event_port"
            [ v "item"; v "ot" ] [ "sent" ] ]
  in
  check_equiv p
    [ [ ("item", vi 1) ]; [ ("item", vi 2) ]; [ ("ot", ve) ]; [ ("ot", ve) ];
      [ ("item", vi 3); ("ot", ve) ]; [ ("ot", ve) ] ]

let test_cycle_rejected () =
  let p =
    B.proc ~name:"cyclic"
      ~inputs:[ Ast.var "x" Types.Tint ]
      ~outputs:[ Ast.var "y" Types.Tint ]
      ~locals:[ Ast.var "w" Types.Tint ]
      B.[ "y" := v "w" + v "x"; "w" := v "y" + i 1 ]
  in
  let kp = N.process_exn p in
  match Compile.compile kp with
  | Ok _ -> Alcotest.fail "instantaneous cycle must not compile"
  | Error m ->
    Alcotest.(check bool) "mentions cycle" true
      (String.length m > 0)

let test_case_study_equiv () =
  List.iter
    (fun registry ->
      let a =
        match
          Polychrony.Pipeline.analyze ~registry
            Polychrony.Case_study.aadl_source
        with
        | Ok a -> a
        | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
      in
      let kp = a.Polychrony.Pipeline.kernel in
      let horizon = 48 in
      let stimuli =
        List.init horizon (fun t ->
            ("tick", ve) :: (if t = 0 then [ ("env_pGo", vi 1) ] else []))
      in
      match Engine.run kp ~stimuli, Compile.run kp ~stimuli with
      | Ok t1, Ok t2 ->
        Alcotest.(check bool) "case study traces identical" true
          (traces_equal t1 t2)
      | Error m, _ -> Alcotest.fail ("engine: " ^ m)
      | _, Error m -> Alcotest.fail ("compile: " ^ m))
    [ Polychrony.Case_study.registry_nominal;
      Polychrony.Case_study.registry_timeout ]

let test_case_study_plan_properties () =
  let a =
    match
      Polychrony.Pipeline.analyze
        ~registry:Polychrony.Case_study.registry_nominal
        Polychrony.Case_study.aadl_source
    with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  match Compile.compile a.Polychrony.Pipeline.kernel with
  | Error m -> Alcotest.fail m
  | Ok c ->
    (* the translated system is endochronous: nothing is left free *)
    Alcotest.(check int) "no free classes" 0 (Compile.free_classes c);
    Alcotest.(check bool) "plan covers classes and signals" true
      (Compile.plan_length c
       > List.length (Signal_lang.Kernel.signals a.Polychrony.Pipeline.kernel))

(* ---------------- random-program equivalence ---------------------- *)

(* Build random acyclic, clock-consistent programs over two
   always-present inputs. Every signal carries a clock tag; synchronous
   operators (arith, boolean, if, delay) only combine signals of one
   tag, while when/default appear at definition level and mint new
   tags. This mirrors how the translator emits code and guarantees the
   interpreter never hits a clock contradiction. *)

type rsig = { rname : string; rtype : [ `I | `B ]; rtag : int }

let gen_program =
  let open QCheck2.Gen in
  (* expression synchronous with a given tag *)
  let rec gen_sync env tag depth ty =
    let candidates =
      List.filter (fun s -> s.rtype = ty && s.rtag = tag) env
    in
    let atoms =
      List.map (fun s -> return (B.v s.rname)) candidates
      @ (if candidates = [] then []
         else
           match ty with
           | `I -> [ map B.i (int_range (-5) 5) ]
           | `B -> [ map B.b bool ])
    in
    if atoms = [] then
      (* no signal of this type at this tag: fall back to a variable of
         the right tag and adapt *)
      let same_tag = List.filter (fun sg -> sg.rtag = tag) env in
      match same_tag with
      | [] -> assert false
      | sg :: _ ->
        let name = sg.rname in
        (match ty, sg.rtype with
         | `I, `B -> return B.(if_ (v name) (i 1) (i 0))
         | `B, `I -> return B.(v name < i 0)
         | _ -> return (B.v name))
    else if depth = 0 then oneof atoms
    else
      let sub = gen_sync env tag (depth - 1) in
      let compound =
        match ty with
        | `I ->
          [ map2 (fun e1 e2 -> B.(e1 + e2)) (sub `I) (sub `I);
            map2 (fun e1 e2 -> B.(e1 * e2)) (sub `I) (sub `I);
            map3 (fun e0 e1 e2 -> B.if_ e0 e1 e2) (sub `B) (sub `I) (sub `I);
            map (fun e1 -> B.delay ~init:(vi 0) e1) (sub `I) ]
        | `B ->
          [ map2 (fun e1 e2 -> B.(e1 && e2)) (sub `B) (sub `B);
            map2 (fun e1 e2 -> B.(e1 || e2)) (sub `B) (sub `B);
            map B.not_ (sub `B);
            map2 (fun e1 e2 -> B.(e1 < e2)) (sub `I) (sub `I);
            map (fun e1 -> B.delay ~init:(vb false) e1) (sub `B) ]
      in
      oneof (compound @ atoms)
  in
  let base =
    [ { rname = "x"; rtype = `I; rtag = 0 };
      { rname = "c"; rtype = `B; rtag = 0 } ]
  in
  let tags env = List.sort_uniq compare (List.map (fun s -> s.rtag) env) in
  let pick_tag env = QCheck2.Gen.oneofl (tags env) in
  let gen_def env fresh_tag =
    let* choice = int_range 0 9 in
    if choice < 6 then
      (* synchronous definition at an existing tag *)
      let* tag = pick_tag env in
      let* ty = oneofl [ `I; `B ] in
      let* e = gen_sync env tag 2 ty in
      return (ty, tag, e, fresh_tag)
    else if choice < 8 then
      (* subsampling: src when cond, new tag *)
      let* src_tag = pick_tag env in
      let* cond_tag = pick_tag env in
      let* ty = oneofl [ `I; `B ] in
      let* src = gen_sync env src_tag 1 ty in
      let* cond = gen_sync env cond_tag 1 `B in
      return (ty, fresh_tag, B.when_ src cond, fresh_tag + 1)
    else
      (* merge: a default b, new tag *)
      let* t1 = pick_tag env in
      let* t2 = pick_tag env in
      let* ty = oneofl [ `I; `B ] in
      let* e1 = gen_sync env t1 1 ty in
      let* e2 = gen_sync env t2 1 ty in
      return (ty, fresh_tag, B.default e1 e2, fresh_tag + 1)
  in
  let rec gen_locals k env fresh_tag acc =
    if k = 0 then return (List.rev acc, env)
    else
      let* ty, tag, e, fresh_tag = gen_def env fresh_tag in
      let name = Printf.sprintf "s%d" (List.length acc) in
      gen_locals (k - 1)
        ({ rname = name; rtype = ty; rtag = tag } :: env)
        fresh_tag ((name, ty, e) :: acc)
  in
  let* n = int_range 1 6 in
  let* locals, env = gen_locals n base 1 [] in
  let last = List.hd env in
  let out_ty = last.rtype in
  let decls =
    List.map
      (fun (name, ty, _) ->
        Ast.var name (match ty with `I -> Types.Tint | `B -> Types.Tbool))
      locals
  in
  let body =
    List.map (fun (name, _, e) -> B.(name := e)) locals
    @ [ B.("out" := v last.rname) ]
  in
  return
    (B.proc ~name:"rand"
       ~inputs:[ Ast.var "x" Types.Tint; Ast.var "c" Types.Tbool ]
       ~outputs:
         [ Ast.var "out"
             (match out_ty with `I -> Types.Tint | `B -> Types.Tbool) ]
       ~locals:decls body)

let gen_stimuli =
  QCheck2.Gen.(
    list_size (return 16)
      (pair (int_range (-4) 4) bool))

let prop_random_equivalence =
  QCheck2.Test.make ~name:"compiled = interpreted on random programs"
    ~count:300
    QCheck2.Gen.(pair gen_program gen_stimuli)
    (fun (p, stims) ->
      match N.process p with
      | Error _ -> true  (* ill-typed generation is skipped *)
      | Ok kp ->
        let stimuli =
          List.map (fun (n, b) -> [ ("x", vi n); ("c", vb b) ]) stims
        in
        (match Engine.run kp ~stimuli, Compile.run kp ~stimuli with
         | Ok t1, Ok t2 ->
           let ok = traces_equal t1 t2 in
           if not ok then
             Format.eprintf "@.MISMATCH on:@.%a@."
               Signal_lang.Pp.pp_process p;
           ok
         | Error _, Error _ -> true
         | Ok _, Error m ->
           (* the compiler may reject cyclic-looking programs the
              interpreter handles; only accept that specific refusal *)
           String.length m > 0
           && (let needle = "cycle" in
               let nh = String.length m and nn = String.length needle in
               let rec go i =
                 i + nn <= nh && (String.sub m i nn = needle || go (i + 1))
               in
               go 0)
         | Error m, Ok _ ->
           Format.eprintf "@.ENGINE-ONLY failure (%s) on:@.%a@." m
             Signal_lang.Pp.pp_process p;
           false))

(* [compile] memoizes the plan and returns fresh instances: stepping
   one instance must never leak into another, and the memoized path
   must behave exactly like a cold compilation *)
let test_memoized_instances_independent () =
  let p =
    B.proc ~name:"use_counter_memo"
      ~inputs:[ Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "n" Types.Tint ]
      B.[ inst ~label:"c" "counter" [ v "e" ] [ "n" ] ]
  in
  let kp = N.process_exn p in
  let c1 = Result.get_ok (Compile.compile kp) in
  let c2 = Result.get_ok (Compile.compile kp) in
  let d0 = Compile.state_digest c2 in
  let step c =
    Compile.stim_clear c;
    (match Compile.signal_index c "e" with
    | Some i -> Compile.set_stim c i ve
    | None -> Alcotest.fail "no input e");
    match Compile.step_prepared c with
    | Ok () -> List.assoc_opt "n" (Compile.present_assoc c)
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "c1 counts 1" true (step c1 = Some (vi 1));
  Alcotest.(check bool) "c1 counts 2" true (step c1 = Some (vi 2));
  Alcotest.(check string) "c2 state untouched by c1" d0
    (Compile.state_digest c2);
  Alcotest.(check bool) "c2 starts fresh" true (step c2 = Some (vi 1));
  Alcotest.(check bool) "c1 keeps its own count" true (step c1 = Some (vi 3));
  (* the uncached path agrees with the memoized one *)
  let c3 = Result.get_ok (Compile.compile_uncached kp) in
  Alcotest.(check bool) "cold compile agrees" true (step c3 = Some (vi 1))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_random_equivalence ]

let suite =
  [ ("compile",
     [ Alcotest.test_case "fm equivalence" `Quick test_fm_equiv;
       Alcotest.test_case "timer equivalence" `Quick test_timer_equiv;
       Alcotest.test_case "fifo equivalence" `Quick test_fifo_equiv;
       Alcotest.test_case "in port equivalence" `Quick test_in_port_equiv;
       Alcotest.test_case "out port equivalence" `Quick test_out_port_equiv;
       Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
       Alcotest.test_case "case study equivalence" `Quick
         test_case_study_equiv;
       Alcotest.test_case "case study plan" `Quick
         test_case_study_plan_properties;
       Alcotest.test_case "memoized instances independent" `Quick
         test_memoized_instances_independent ]
     @ qsuite) ]
