(* Putil.Obs: ambient observation scopes — per-scope metric attribution
   with global roll-up, nesting, cross-domain propagation through
   Domain_pool (metrics and trace-span parenting), two concurrent
   pipeline sessions partitioning the global delta, the merged
   OpenMetrics exposition, and the always-on bounded flight recorder. *)

module M = Putil.Metrics
module T = Putil.Tracing
module Obs = Putil.Obs
module Pool = Putil.Domain_pool
module P = Polychrony.Pipeline

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let count_occurrences hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

let scope_value label name =
  M.counter_value (Obs.scope_registry (Obs.scope label)) name

(* ---------------- scoped attribution ------------------------------- *)

let test_scoped_rollup () =
  let before = M.counter_value M.global "obs.t_hits" in
  Obs.with_scope ~label:"obs-roll-a" (fun () ->
      M.incr ~by:3 (M.counter "obs.t_hits"));
  Obs.with_scope ~label:"obs-roll-b" (fun () ->
      M.incr ~by:2 (M.counter "obs.t_hits"));
  M.incr (M.counter "obs.t_hits");
  Alcotest.(check int) "scope a sees its share" 3
    (scope_value "obs-roll-a" "obs.t_hits");
  Alcotest.(check int) "scope b sees its share" 2
    (scope_value "obs-roll-b" "obs.t_hits");
  Alcotest.(check int) "global rolls up every write" (before + 6)
    (M.counter_value M.global "obs.t_hits")

let test_nesting_innermost_wins () =
  Obs.with_scope ~label:"obs-outer" (fun () ->
      Obs.with_scope ~label:"obs-inner" (fun () ->
          M.incr (M.counter "obs.t_nest");
          match Obs.current () with
          | Some s ->
            Alcotest.(check string) "current is the innermost" "obs-inner"
              (Obs.scope_label s)
          | None -> Alcotest.fail "no current scope inside with_scope");
      match Obs.current () with
      | Some s ->
        Alcotest.(check string) "outer restored on exit" "obs-outer"
          (Obs.scope_label s)
      | None -> Alcotest.fail "outer scope lost");
  Alcotest.(check int) "innermost scope got the write" 1
    (scope_value "obs-inner" "obs.t_nest");
  Alcotest.(check int) "outer scope did not" 0
    (scope_value "obs-outer" "obs.t_nest");
  Alcotest.(check bool) "no scope after exit" true (Obs.current () = None)

let test_all_kinds_and_isolation () =
  Obs.with_scope ~label:"obs-kinds" (fun () ->
      M.set (M.gauge "obs.k_gauge") 7;
      M.max_gauge (M.gauge "obs.k_gauge") 3;
      M.add_span_ns (M.timer "obs.k_timer") 1_000;
      M.observe (M.histogram "obs.k_hist") 4.0;
      (* a write to a non-global registry never duplicates into the
         scope: only [global] instruments are ambient *)
      let private_reg = M.create () in
      M.incr (M.counter ~registry:private_reg "obs.k_private"));
  let reg = Obs.scope_registry (Obs.scope "obs-kinds") in
  Alcotest.(check int) "gauge attributed (max_gauge kept 7)" 7
    (M.counter_value reg "obs.k_gauge");
  (match M.find reg "obs.k_timer" with
   | Some (M.Timer { spans; total_ns }) ->
     Alcotest.(check int) "timer spans" 1 spans;
     Alcotest.(check int) "timer total" 1_000 total_ns
   | _ -> Alcotest.fail "timer not attributed to the scope");
  (match M.find reg "obs.k_hist" with
   | Some (M.Histogram { count; sum; _ }) ->
     Alcotest.(check int) "histogram count" 1 count;
     Alcotest.(check (float 1e-9)) "histogram sum" 4.0 sum
   | _ -> Alcotest.fail "histogram not attributed to the scope");
  Alcotest.(check bool) "non-global write stays private" true
    (M.find reg "obs.k_private" = None)

(* ---------------- concurrent pipeline sessions --------------------- *)

(* The acceptance test of the scope design: two sessions analyzed and
   simulated in parallel domains record fully disjoint per-scope
   metrics whose sum is exactly the global delta. *)
let test_concurrent_sessions () =
  let before = M.counter_value M.global "engine.instants" in
  let run label () =
    Printexc.record_backtrace true;
    try
      let session = P.new_session ~label () in
      match
        P.analyze ~session ~registry:Polychrony.Case_study.registry_nominal
          Polychrony.Case_study.aadl_source
      with
      | Error m -> Error (Putil.Diag.list_to_string m)
      | Ok a -> (
        match P.simulate ~hyperperiods:1 a with
        | Error m -> Error (Putil.Diag.list_to_string m)
        | Ok _ -> Ok ())
    with e ->
      Error (Printexc.to_string e ^ "\n" ^ Printexc.get_backtrace ())
  in
  Printexc.record_backtrace true;
  let d1 = Domain.spawn (run "obs-sess-1") in
  let d2 = Domain.spawn (run "obs-sess-2") in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  (match r1 with Ok () -> () | Error m -> Alcotest.fail ("session 1: " ^ m));
  (match r2 with Ok () -> () | Error m -> Alcotest.fail ("session 2: " ^ m));
  let v1 = scope_value "obs-sess-1" "engine.instants" in
  let v2 = scope_value "obs-sess-2" "engine.instants" in
  Alcotest.(check bool) "both sessions simulated" true (v1 > 0 && v2 > 0);
  Alcotest.(check int) "identical workloads, identical attribution" v1 v2;
  Alcotest.(check int) "scopes partition the global delta" (v1 + v2)
    (M.counter_value M.global "engine.instants" - before)

(* ---------------- Domain_pool propagation -------------------------- *)

let test_pool_propagation () =
  T.reset ();
  T.set_enabled true;
  Fun.protect ~finally:(fun () -> T.set_enabled false) @@ fun () ->
  let n = 16 in
  Obs.with_scope ~label:"obs-pool" (fun () ->
      T.with_span "submit" (fun () ->
          Pool.with_pool 4 (fun pool ->
              Pool.run_tasks pool
                (List.init n (fun _ ->
                     fun () ->
                      T.with_span "task" (fun () ->
                          M.incr (M.counter "obs.pool_hits")))))));
  T.set_enabled false;
  Alcotest.(check int) "worker writes attribute to the submitting scope" n
    (scope_value "obs-pool" "obs.pool_hits");
  Alcotest.(check int) "queue depth drained" 0
    (M.counter_value M.global "pool.queue_depth");
  let evs = List.concat_map snd (T.events ()) in
  let submit_id =
    match
      List.find_map
        (function T.Begin { name = "submit"; id; _ } -> Some id | _ -> None)
        evs
    with
    | Some id -> id
    | None -> Alcotest.fail "submit span not recorded"
  in
  let task_parents =
    List.filter_map
      (function T.Begin { name = "task"; parent; _ } -> Some parent | _ -> None)
      evs
  in
  Alcotest.(check int) "every task span recorded" n (List.length task_parents);
  List.iter
    (fun p ->
      Alcotest.(check int) "task span parented under submit" submit_id p)
    task_parents

(* ---------------- flight recorder ---------------------------------- *)

let my_ring () =
  let me = (Domain.self () :> int) in
  match List.find_opt (fun (d, _, _) -> d = me) (T.flight_events ()) with
  | Some r -> r
  | None -> Alcotest.fail "no flight ring for the calling domain"

let test_flight_always_on () =
  T.set_enabled false;
  T.reset ();
  T.flight_reset ();
  T.with_span "fr.span" (fun () -> T.instant "fr.inst");
  ignore (Putil.Diag.make Putil.Diag.Error ~code:"FR001" "flight test");
  let _, dropped, evs = my_ring () in
  Alcotest.(check int) "nothing dropped" 0 dropped;
  let shape =
    List.map
      (fun (e : T.fevent) ->
        (match e.f_kind with
         | T.Fspan_begin -> "B"
         | T.Fspan_end -> "E"
         | T.Finstant -> "I"
         | T.Fdiag -> "D")
        ^ ":" ^ e.f_name)
      evs
  in
  Alcotest.(check (list string)) "recorded with tracing disabled"
    [ "B:fr.span"; "I:fr.inst"; "E:fr.span"; "D:FR001" ]
    shape;
  (match List.rev evs with
   | (diag : T.fevent) :: _ ->
     Alcotest.(check bool) "diag carries severity and message" true
       (diag.f_cat = "diag"
       && List.mem ("severity", T.Astr "error") diag.f_args
       && List.mem ("message", T.Astr "flight test") diag.f_args)
   | [] -> Alcotest.fail "empty ring");
  Alcotest.(check int) "tracing buffers untouched" 0
    (List.length (T.events ()))

let test_flight_bounded () =
  T.set_enabled false;
  T.flight_reset ();
  let extra = 50 in
  for i = 1 to T.flight_capacity + extra do
    T.instant (Printf.sprintf "fr.b%d" i)
  done;
  let _, dropped, evs = my_ring () in
  Alcotest.(check int) "oldest events dropped" extra dropped;
  Alcotest.(check int) "ring keeps exactly capacity" T.flight_capacity
    (List.length evs);
  (match evs with
   | (first : T.fevent) :: _ ->
     Alcotest.(check string) "survivors start after the dropped prefix"
       (Printf.sprintf "fr.b%d" (extra + 1))
       first.f_name
   | [] -> Alcotest.fail "empty ring");
  (match List.rev evs with
   | (last : T.fevent) :: _ ->
     Alcotest.(check string) "newest event survives"
       (Printf.sprintf "fr.b%d" (T.flight_capacity + extra))
       last.f_name
   | [] -> Alcotest.fail "empty ring")

let test_flight_disable () =
  T.set_enabled false;
  T.flight_reset ();
  T.set_flight_enabled false;
  Fun.protect ~finally:(fun () -> T.set_flight_enabled true) (fun () ->
      T.instant "fr.off";
      Alcotest.(check bool) "disabled recorder reports so" false
        (T.flight_enabled ()));
  T.instant "fr.on";
  let _, _, evs = my_ring () in
  let names = List.map (fun (e : T.fevent) -> e.f_name) evs in
  Alcotest.(check (list string)) "only the re-enabled event recorded"
    [ "fr.on" ] names

(* ---------------- exposition --------------------------------------- *)

let test_openmetrics_exposition () =
  Obs.with_scope ~label:"obs-expo" (fun () ->
      M.incr ~by:5 (M.counter "obs.expo_hits"));
  let om = Obs.to_openmetrics () in
  Alcotest.(check bool) "per-scope sample labelled" true
    (contains om "obs_expo_hits_total{scope=\"obs-expo\"} 5");
  Alcotest.(check bool) "global roll-up sample unlabelled" true
    (contains om "\nobs_expo_hits_total 5\n");
  Alcotest.(check int) "family declared exactly once" 1
    (count_occurrences om "# TYPE obs_expo_hits counter\n");
  Alcotest.(check bool) "terminated by # EOF" true
    (let tail = "# EOF\n" in
     String.length om >= String.length tail
     && String.sub om (String.length om - String.length tail)
          (String.length tail)
        = tail)

let test_flight_dump_json () =
  T.flight_reset ();
  T.instant "fr.dump";
  let module J = M.Json in
  match J.of_string (Obs.flight_recorder_to_string ()) with
  | Error m -> Alcotest.fail ("flight snapshot is not valid JSON: " ^ m)
  | Ok j ->
    Alcotest.(check bool) "schema" true
      (J.member "schema" j = Some (J.String "polychrony-flight/v1"));
    Alcotest.(check bool) "capacity" true
      (J.member "capacity" j = Some (J.Int T.flight_capacity));
    (match J.member "domains" j with
     | Some (J.Arr (_ :: _ as doms)) ->
       let dom_ok d =
         match (J.member "domain" d, J.member "dropped" d, J.member "events" d)
         with
         | Some (J.Int _), Some (J.Int _), Some (J.Arr evs) ->
           List.for_all
             (fun e ->
               match (J.member "kind" e, J.member "name" e) with
               | Some (J.String _), Some (J.String _) -> true
               | _ -> false)
             evs
         | _ -> false
       in
       Alcotest.(check bool) "per-domain records well-formed" true
         (List.for_all dom_ok doms)
     | _ -> Alcotest.fail "domains array missing or empty")

let suite =
  [ ("obs",
     [ Alcotest.test_case "scoped roll-up" `Quick test_scoped_rollup;
       Alcotest.test_case "nesting: innermost wins" `Quick
         test_nesting_innermost_wins;
       Alcotest.test_case "all instrument kinds, non-global isolation"
         `Quick test_all_kinds_and_isolation;
       Alcotest.test_case "concurrent sessions partition the roll-up"
         `Quick test_concurrent_sessions;
       Alcotest.test_case "domain pool propagates scope and span parent"
         `Quick test_pool_propagation;
       Alcotest.test_case "flight recorder records with tracing off" `Quick
         test_flight_always_on;
       Alcotest.test_case "flight recorder is bounded" `Quick
         test_flight_bounded;
       Alcotest.test_case "flight recorder can be disabled" `Quick
         test_flight_disable;
       Alcotest.test_case "openmetrics exposition" `Quick
         test_openmetrics_exposition;
       Alcotest.test_case "flight snapshot JSON" `Quick
         test_flight_dump_json ]) ]
