(* Structured diagnostics: the malformed-input corpus with golden
   text/JSON snapshots, the multi-defect accumulation guarantee, the
   polychrony-diag/v1 schema shape, and qcheck properties over the
   error-code registry and span well-formedness. *)

module P = Polychrony.Pipeline
module D = Putil.Diag
module J = Putil.Metrics.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_names =
  [ "bad_syntax"; "duplicate_port"; "unresolved_classifier";
    "type_conflict"; "infeasible_schedule"; "multi_defect" ]

(* Same entry point as `asme2ssme check`: the whole pipeline runs and
   diagnostics accumulate whether or not an analyzed record could be
   built. *)
let diags_of name =
  let src = read_file (Filename.concat "corpus" (name ^ ".aadl")) in
  match P.analyze ~registry:Trans.Behavior.empty ~file:(name ^ ".aadl") src with
  | Ok a -> (src, a.P.diags)
  | Error ds -> (src, ds)

(* ---------------- golden snapshots -------------------------------- *)

let test_golden name () =
  let src, diags = diags_of name in
  let txt = read_file (Filename.concat "corpus/golden" (name ^ ".txt")) in
  Alcotest.(check string) (name ^ ".txt") txt (D.render_list ~src diags);
  let json =
    String.trim (read_file (Filename.concat "corpus/golden" (name ^ ".json")))
  in
  Alcotest.(check string) (name ^ ".json") json
    (J.to_string (D.list_to_json diags))

(* Every corpus model is defective: the report must contain at least
   one error and map to exit code 1. *)
let test_corpus_all_fail () =
  List.iter
    (fun name ->
      let _, diags = diags_of name in
      Alcotest.(check bool) (name ^ " has errors") true (D.has_errors diags);
      Alcotest.(check int) (name ^ " exit code") 1 (D.exit_code diags))
    corpus_names

(* ---------------- accumulation (the PR's acceptance bar) ---------- *)

let test_multi_defect_accumulates () =
  let _, diags = diags_of "multi_defect" in
  let errors = List.filter (fun d -> d.D.severity = D.Error) diags in
  Alcotest.(check bool) "at least 3 errors" true (List.length errors >= 3);
  let codes =
    List.sort_uniq String.compare (List.map (fun d -> d.D.code) errors)
  in
  (* three independent defect families in one run *)
  List.iter
    (fun c ->
      Alcotest.(check bool) ("reports " ^ c) true (List.mem c codes))
    [ "AADL-CHECK-001"; "SIG-TYPE-001"; "TRANS-003"; "SCHED-INFEAS-001" ];
  (* each family is anchored to a source span *)
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " is located") true
        (List.exists
           (fun d -> String.equal d.D.code c && d.D.span <> None)
           errors))
    [ "AADL-CHECK-001"; "SIG-TYPE-001"; "TRANS-003"; "SCHED-INFEAS-001" ]

(* ---------------- JSON schema shape ------------------------------- *)

let test_json_schema () =
  let _, diags = diags_of "multi_defect" in
  match J.of_string (J.to_string (D.list_to_json diags)) with
  | Error m -> Alcotest.fail ("emitted JSON does not re-parse: " ^ m)
  | Ok json ->
    (match J.member "schema" json with
     | Some (J.String "polychrony-diag/v1") -> ()
     | _ -> Alcotest.fail "schema key missing or wrong");
    let ds =
      match J.member "diagnostics" json with
      | Some (J.Arr ds) -> ds
      | _ -> Alcotest.fail "diagnostics array missing"
    in
    Alcotest.(check int) "one object per diagnostic" (List.length diags)
      (List.length ds);
    List.iter
      (fun d ->
        List.iter
          (fun key ->
            match J.member key d with
            | Some (J.String s) when s <> "" -> ()
            | _ -> Alcotest.fail ("diagnostic missing key " ^ key))
          [ "severity"; "code"; "message" ])
      ds;
    (match J.member "errors" json with
     | Some (J.Int n) when n > 0 -> ()
     | _ -> Alcotest.fail "errors count missing")

(* ---------------- properties -------------------------------------- *)

let well_formed d =
  D.describe d.D.code <> None
  && String.length d.D.message > 0
  && (match d.D.span with
      | None -> true
      | Some sp ->
        sp.D.sp_line >= 1 && sp.D.sp_col >= 1
        && sp.D.sp_end_col >= sp.D.sp_col)
  && List.for_all
       (fun r ->
         match r.D.rel_span with
         | None -> true
         | Some sp ->
           sp.D.sp_line >= 1 && sp.D.sp_col >= 1
           && sp.D.sp_end_col >= sp.D.sp_col)
       d.D.related

let test_corpus_well_formed () =
  List.iter
    (fun name ->
      let _, diags = diags_of name in
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s well-formed" name d.D.code)
            true (well_formed d))
        diags)
    corpus_names

(* Random mutations of the case-study source: whatever the pipeline
   reports, every diagnostic carries a registered code and a sane
   span. Mutations that crash a stage outside the diagnostics path are
   out of scope here (nothing was emitted). *)
let prop_mutated_diags_well_formed =
  let base = Polychrony.Case_study.aadl_source in
  let gen =
    QCheck2.Gen.(
      let* kind = int_range 0 2 in
      let* pos = int_range 0 (String.length base - 1) in
      match kind with
      | 0 ->
        (* truncate mid-source *)
        return (String.sub base 0 pos)
      | 1 ->
        (* delete one character *)
        return
          (String.sub base 0 pos
           ^ String.sub base (pos + 1) (String.length base - pos - 1))
      | _ ->
        (* swap one character for a structural one *)
        let* c = oneofl [ ';'; '.'; ':'; 'x'; ' '; '}' ] in
        let b = Bytes.of_string base in
        Bytes.set b pos c;
        return (Bytes.to_string b))
  in
  QCheck2.Test.make
    ~name:"every emitted diagnostic has a registered code and sane span"
    ~count:200 gen
    (fun src ->
      match P.analyze ~registry:Trans.Behavior.empty ~file:"mutated.aadl" src with
      | Ok a -> List.for_all well_formed a.P.diags
      | Error ds -> ds <> [] && List.for_all well_formed ds
      | exception _ -> QCheck2.assume_fail ())

let prop_registry_consistent =
  QCheck2.Test.make ~name:"code registry descriptions are stable" ~count:1
    QCheck2.Gen.unit
    (fun () ->
      let codes = D.codes () in
      codes <> []
      && List.for_all
           (fun (id, desc) ->
             String.length id > 0
             && String.length desc > 0
             && D.describe id = Some desc)
           codes)

let suite =
  [ ("diag.corpus",
     List.map
       (fun name ->
         Alcotest.test_case ("golden " ^ name) `Quick (test_golden name))
       corpus_names
     @ [ Alcotest.test_case "all corpus models fail" `Quick
           test_corpus_all_fail;
         Alcotest.test_case "multi-defect accumulation" `Quick
           test_multi_defect_accumulates;
         Alcotest.test_case "json schema shape" `Quick test_json_schema;
         Alcotest.test_case "corpus diags well-formed" `Quick
           test_corpus_well_formed ]);
    ("diag.properties",
     [ QCheck_alcotest.to_alcotest prop_mutated_diags_well_formed;
       QCheck_alcotest.to_alcotest prop_registry_consistent ]) ]
