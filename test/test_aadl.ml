(* AADL lexer, parser, printer round-trip, properties, instance model
   and legality checks. *)

module Syn = Aadl.Syntax
module Lexer = Aadl.Lexer
module Parser = Aadl.Parser
module Props = Aadl.Props
module Printer = Aadl.Printer
module Inst = Aadl.Instance
module Check = Aadl.Check

let parse src =
  match Parser.parse_package src with
  | Ok pkg -> pkg
  | Error m -> Alcotest.fail m

let tiny_package =
  {|
package Tiny
public
  thread worker
    features
      inp: in event port;
      outp: out event port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 10 ms;
      Deadline => 10 ms;
      Compute_Execution_Time => 2 ms;
  end worker;

  thread implementation worker.impl
  end worker.impl;

  process host
  end host;

  process implementation host.impl
    subcomponents
      w1: thread worker.impl;
      w2: thread worker.impl;
    connections
      k0: port w1.outp -> w2.inp;
  end host.impl;

  system top
  end top;

  system implementation top.impl
    subcomponents
      h: process host.impl;
      cpu: processor p1.impl;
    properties
      Actual_Processor_Binding => reference (cpu) applies to h;
  end top.impl;

  processor p1
  end p1;

  processor implementation p1.impl
  end p1.impl;
end Tiny;
|}

(* ------------------------------ lexer ----------------------------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "port a.b ->> c_d; x => 4 ms (1 .. 2)" in
  let kinds = List.map (fun p -> p.Lexer.tok) toks in
  Alcotest.(check bool) "has darrow" true (List.mem Lexer.DARROW kinds);
  Alcotest.(check bool) "has assoc" true (List.mem Lexer.ASSOC kinds);
  Alcotest.(check bool) "has dotdot" true (List.mem Lexer.DOTDOT kinds);
  Alcotest.(check bool) "ends with eof" true
    (match List.rev kinds with Lexer.EOF :: _ -> true | _ -> false)

let test_lexer_comments () =
  let toks = Lexer.tokenize "a -- comment -> ignored\nb" in
  let idents =
    List.filter_map
      (fun p -> match p.Lexer.tok with Lexer.IDENT s -> Some s | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "comment skipped" [ "a"; "b" ] idents

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "a line" 1 a.Lexer.line;
    Alcotest.(check int) "b line" 2 b.Lexer.line;
    Alcotest.(check int) "b col" 3 b.Lexer.col
  | _ -> Alcotest.fail "expected three tokens"

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (try ignore (Lexer.tokenize "a # b"); false
     with Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "unterminated string" true
    (try ignore (Lexer.tokenize "\"abc"); false
     with Lexer.Lex_error _ -> true)

(* ------------------------------ parser ---------------------------- *)

let test_parse_tiny () =
  let pkg = parse tiny_package in
  Alcotest.(check string) "name" "Tiny" pkg.Syn.pkg_name;
  Alcotest.(check int) "declarations" 8 (List.length pkg.Syn.pkg_decls);
  match Syn.find_type pkg "worker" with
  | Some ct ->
    Alcotest.(check int) "features" 2 (List.length ct.Syn.ct_features);
    Alcotest.(check bool) "category" true (ct.Syn.ct_category = Syn.Thread)
  | None -> Alcotest.fail "worker not found"

let test_parse_case_study () =
  let pkg = parse Polychrony.Case_study.aadl_source in
  Alcotest.(check string) "name" "ProducerConsumer" pkg.Syn.pkg_name;
  (match Syn.find_impl pkg "prProdCons.impl" with
   | Some ci ->
     Alcotest.(check int) "five subcomponents" 5
       (List.length ci.Syn.ci_subcomponents);
     Alcotest.(check int) "thirteen connections" 13
       (List.length ci.Syn.ci_connections)
   | None -> Alcotest.fail "prProdCons.impl not found");
  match Syn.find_type pkg "thProducer" with
  | Some ct ->
    Alcotest.(check (option int)) "period 4ms" (Some 4000)
      (Props.period_us ct.Syn.ct_properties)
  | None -> Alcotest.fail "thProducer not found"

let test_parse_errors () =
  let bad = [ "package P public end Q;";         (* mismatched end *)
              "package P public thread t end u; end P;";
              "package P public thread t features x end t; end P;";
              "package P" ] in
  List.iter
    (fun src ->
      match Parser.parse_package src with
      | Ok _ -> Alcotest.fail ("accepted: " ^ src)
      | Error _ -> ())
    bad

let test_parse_case_insensitive () =
  let pkg = parse
      "PACKAGE p PUBLIC THREAD t PROPERTIES Period => 5 Ms; END t; END p;"
  in
  match Syn.find_type pkg "t" with
  | Some ct ->
    Alcotest.(check (option int)) "period" (Some 5000)
      (Props.period_us ct.Syn.ct_properties)
  | None -> Alcotest.fail "t not found"

let test_parse_delayed_connection () =
  let pkg = parse
      {|package P public
        process implementation q.impl
          connections
            k: port a.o ->> b.i;
        end q.impl;
        process q end q;
        end P;|}
  in
  match Syn.find_impl pkg "q.impl" with
  | Some ci -> (
    match ci.Syn.ci_connections with
    | [ c ] -> Alcotest.(check bool) "delayed" false c.Syn.immediate
    | _ -> Alcotest.fail "one connection expected")
  | None -> Alcotest.fail "q.impl not found"

let test_property_values () =
  let check_v src f =
    match Parser.parse_property_value src with
    | Ok v -> f v
    | Error m -> Alcotest.fail m
  in
  check_v "42" (fun v -> assert (v = Syn.Pint (42, None)));
  check_v "4 ms" (fun v -> assert (v = Syn.Pint (4, Some "ms")));
  check_v "3.5 us" (fun v -> assert (v = Syn.Preal (3.5, Some "us")));
  check_v "true" (fun v -> assert (v = Syn.Pbool true));
  check_v "\"hello\"" (fun v -> assert (v = Syn.Pstring "hello"));
  check_v "Periodic" (fun v -> assert (v = Syn.Pname "Periodic"));
  check_v "reference (cpu)" (fun v -> assert (v = Syn.Preference "cpu"));
  check_v "classifier (a.impl)" (fun v -> assert (v = Syn.Pclassifier "a.impl"));
  check_v "(1, 2, 3)" (fun v ->
      assert (v = Syn.Plist [ Syn.Pint (1, None); Syn.Pint (2, None);
                              Syn.Pint (3, None) ]));
  check_v "1 ms .. 2 ms" (fun v ->
      assert (v = Syn.Prange (Syn.Pint (1, Some "ms"), Syn.Pint (2, Some "ms"))));
  check_v "[Time => Start; Offset => 0 ms .. 0 ms;]" (fun v ->
      assert (v = Syn.Pname "Start"))

(* ----------------------------- printer ---------------------------- *)

let test_roundtrip_tiny () =
  let pkg = parse tiny_package in
  let printed = Printer.package_to_string pkg in
  let pkg2 = parse printed in
  Alcotest.(check bool) "same package after roundtrip" true
    (Syn.strip_locs pkg = Syn.strip_locs pkg2)

let test_roundtrip_case_study () =
  let pkg = parse Polychrony.Case_study.aadl_source in
  let printed = Printer.package_to_string pkg in
  let pkg2 = parse printed in
  Alcotest.(check bool) "case study roundtrips" true
    (Syn.strip_locs pkg = Syn.strip_locs pkg2)

(* ---------------------------- properties -------------------------- *)

let test_duration_units () =
  let us v u = Props.duration_us (Syn.Pint (v, Some u)) in
  Alcotest.(check (option int)) "ms" (Some 4000) (us 4 "ms");
  Alcotest.(check (option int)) "us" (Some 7) (us 7 "us");
  Alcotest.(check (option int)) "s" (Some 2_000_000) (us 2 "s");
  Alcotest.(check (option int)) "ns rounds down" (Some 0) (us 500 "ns");
  Alcotest.(check (option int)) "min" (Some 60_000_000) (us 1 "min");
  Alcotest.(check (option int)) "unknown unit" None (us 1 "parsec");
  Alcotest.(check (option int)) "default ms" (Some 3000)
    (Props.duration_us (Syn.Pint (3, None)));
  Alcotest.(check (option int)) "range upper bound" (Some 2000)
    (Props.duration_us
       (Syn.Prange (Syn.Pint (1, Some "ms"), Syn.Pint (2, Some "ms"))))

let test_props_override () =
  let assocs =
    [ { Syn.pname = "Period"; pvalue = Syn.Pint (4, Some "ms"); applies_to = []; pa_loc = Syn.no_loc };
      { Syn.pname = "Timing_Properties::Period";
        pvalue = Syn.Pint (8, Some "ms"); applies_to = []; pa_loc = Syn.no_loc } ]
  in
  Alcotest.(check (option int)) "last wins, qualified matches" (Some 8000)
    (Props.period_us assocs)

let test_props_applies_to_skipped () =
  let assocs =
    [ { Syn.pname = "Period"; pvalue = Syn.Pint (4, Some "ms");
        applies_to = [ "x" ]; pa_loc = Syn.no_loc } ]
  in
  Alcotest.(check (option int)) "applies-to skipped by find" None
    (Props.period_us assocs)

let test_dispatch_protocol () =
  let mk n = [ { Syn.pname = "Dispatch_Protocol"; pvalue = Syn.Pname n;
                 applies_to = []; pa_loc = Syn.no_loc } ] in
  Alcotest.(check bool) "periodic" true
    (Props.dispatch_protocol (mk "Periodic") = Some Props.Periodic);
  Alcotest.(check bool) "sporadic" true
    (Props.dispatch_protocol (mk "sporadic") = Some Props.Sporadic);
  Alcotest.(check bool) "unknown" true
    (Props.dispatch_protocol (mk "Quantum") = None)

let test_processor_bindings () =
  let assocs =
    [ { Syn.pname = "Actual_Processor_Binding";
        pvalue = Syn.Preference "cpu";
        applies_to = [ "h1"; "h2" ]; pa_loc = Syn.no_loc } ]
  in
  Alcotest.(check (list (pair string string))) "bindings"
    [ ("h1", "cpu"); ("h2", "cpu") ]
    (Props.processor_bindings assocs)

(* ----------------------------- instance --------------------------- *)

let case_instance () = Polychrony.Case_study.instance ()

let test_instance_tree () =
  let t = case_instance () in
  Alcotest.(check int) "four threads" 4 (List.length (Inst.threads t));
  Alcotest.(check bool) "queue data present" true
    (Inst.find t "ProdConsSys.prProdCons.Queue" <> None);
  match Inst.find t "ProdConsSys.prProdCons.thProducer" with
  | Some th ->
    Alcotest.(check (option int)) "period from classifier" (Some 4000)
      (Aadl.Props.period_us th.Inst.i_props)
  | None -> Alcotest.fail "producer instance missing"

let test_instance_bindings () =
  let t = case_instance () in
  Alcotest.(check (list (pair string string))) "binding resolved"
    [ ("ProdConsSys.prProdCons", "ProdConsSys.Processor1") ]
    t.Inst.bindings

let test_semantic_connections () =
  let t = case_instance () in
  let sem = Inst.semantic_connections t in
  let has src dst =
    List.exists
      (fun c -> String.equal c.Inst.ci_src src && String.equal c.Inst.ci_dst dst)
      sem
  in
  (* env.pGo chases through the process port to the thread port *)
  Alcotest.(check bool) "env to producer" true
    (has "ProdConsSys.env.pGo" "ProdConsSys.prProdCons.thProducer.pProdStart");
  (* timer timeout reaches the display through the process boundary *)
  Alcotest.(check bool) "timeout to display" true
    (has "ProdConsSys.prProdCons.thProdTimer.pTimeOut"
       "ProdConsSys.display.pProdAlarm");
  (* and also the producer directly *)
  Alcotest.(check bool) "timeout to producer" true
    (has "ProdConsSys.prProdCons.thProdTimer.pTimeOut"
       "ProdConsSys.prProdCons.thProducer.pProdTimeOut")

let test_feature_of_path () =
  let t = case_instance () in
  match Inst.feature_of_path t "ProdConsSys.prProdCons.thProducer.pProdStart" with
  | Some (inst, f) ->
    Alcotest.(check string) "component" "thProducer" inst.Inst.i_name;
    Alcotest.(check string) "feature" "pProdStart" (Syn.feature_name f)
  | None -> Alcotest.fail "feature not resolved"

let test_instance_unknown_root () =
  match Inst.instantiate (parse tiny_package) ~root:"nope.impl" with
  | Ok _ -> Alcotest.fail "unknown root must fail"
  | Error _ -> ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let test_pp_tree_mentions_components () =
  let t = case_instance () in
  let s = Format.asprintf "%a" Inst.pp_tree t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in tree") true (contains s needle))
    [ "thProducer"; "thConsumer"; "Queue"; "Processor1"; "binding" ]

(* ------------------------------ checks ---------------------------- *)

let test_check_clean () =
  let issues = Check.check_package (parse Polychrony.Case_study.aadl_source) in
  Alcotest.(check (list string)) "no errors" []
    (List.map (Format.asprintf "%a" Check.pp_issue) (Check.errors issues))

let test_check_missing_period () =
  let pkg = parse
      {|package P public
        thread t properties Dispatch_Protocol => Periodic; end t;
        end P;|}
  in
  let errs = Check.errors (Check.check_package pkg) in
  Alcotest.(check bool) "periodic without period flagged" true
    (errs <> [])

let test_check_bad_subcomponent_category () =
  let pkg = parse
      {|package P public
        process q end q;
        process implementation q.impl
          subcomponents
            sub: process q.impl;
        end q.impl;
        end P;|}
  in
  Alcotest.(check bool) "process in process flagged" true
    (Check.errors (Check.check_package pkg) <> [])

let test_check_unknown_connection_endpoint () =
  let pkg = parse
      {|package P public
        thread t features o: out event port; end t;
        thread implementation t.impl end t.impl;
        process q end q;
        process implementation q.impl
          subcomponents w: thread t.impl;
          connections k: port w.o -> w.nothere;
        end q.impl;
        end P;|}
  in
  Alcotest.(check bool) "endpoint flagged" true
    (Check.errors (Check.check_package pkg) <> [])

let test_check_connection_direction () =
  let pkg = parse
      {|package P public
        thread t features i: in event port; o: out event port; end t;
        thread implementation t.impl end t.impl;
        process q end q;
        process implementation q.impl
          subcomponents w1: thread t.impl; w2: thread t.impl;
          connections k: port w1.i -> w2.i;
        end q.impl;
        end P;|}
  in
  Alcotest.(check bool) "from in port flagged" true
    (Check.errors (Check.check_package pkg) <> [])

let test_check_duplicate_feature () =
  let pkg = parse
      {|package P public
        thread t features x: in event port; x: out event port; end t;
        end P;|}
  in
  Alcotest.(check bool) "duplicate feature flagged" true
    (Check.errors (Check.check_package pkg) <> [])

let suite =
  [ ("aadl.lexer",
     [ Alcotest.test_case "tokens" `Quick test_lexer_tokens;
       Alcotest.test_case "comments" `Quick test_lexer_comments;
       Alcotest.test_case "positions" `Quick test_lexer_positions;
       Alcotest.test_case "errors" `Quick test_lexer_errors ]);
    ("aadl.parser",
     [ Alcotest.test_case "tiny package" `Quick test_parse_tiny;
       Alcotest.test_case "case study" `Quick test_parse_case_study;
       Alcotest.test_case "syntax errors" `Quick test_parse_errors;
       Alcotest.test_case "case-insensitive keywords" `Quick
         test_parse_case_insensitive;
       Alcotest.test_case "delayed connection" `Quick
         test_parse_delayed_connection;
       Alcotest.test_case "property values" `Quick test_property_values ]);
    ("aadl.printer",
     [ Alcotest.test_case "roundtrip tiny" `Quick test_roundtrip_tiny;
       Alcotest.test_case "roundtrip case study" `Quick
         test_roundtrip_case_study ]);
    ("aadl.props",
     [ Alcotest.test_case "duration units" `Quick test_duration_units;
       Alcotest.test_case "override semantics" `Quick test_props_override;
       Alcotest.test_case "applies-to skipped" `Quick
         test_props_applies_to_skipped;
       Alcotest.test_case "dispatch protocol" `Quick test_dispatch_protocol;
       Alcotest.test_case "processor bindings" `Quick test_processor_bindings ]);
    ("aadl.instance",
     [ Alcotest.test_case "tree" `Quick test_instance_tree;
       Alcotest.test_case "bindings" `Quick test_instance_bindings;
       Alcotest.test_case "semantic connections" `Quick
         test_semantic_connections;
       Alcotest.test_case "feature_of_path" `Quick test_feature_of_path;
       Alcotest.test_case "unknown root" `Quick test_instance_unknown_root;
       Alcotest.test_case "tree rendering (Fig. 1)" `Quick
         test_pp_tree_mentions_components ]);
    ("aadl.check",
     [ Alcotest.test_case "case study clean" `Quick test_check_clean;
       Alcotest.test_case "missing period" `Quick test_check_missing_period;
       Alcotest.test_case "bad subcomponent" `Quick
         test_check_bad_subcomponent_category;
       Alcotest.test_case "unknown endpoint" `Quick
         test_check_unknown_connection_endpoint;
       Alcotest.test_case "connection direction" `Quick
         test_check_connection_direction;
       Alcotest.test_case "duplicate feature" `Quick
         test_check_duplicate_feature ]) ]
