(* Multi-package models: a library package of reusable thread types and
   a system package referencing them with qualified classifiers. *)

module P = Polychrony.Pipeline
module Syn = Aadl.Syntax

let multi_src =
  {|package Components
public
  thread worker
    features
      inp: in event port;
      outp: out event data port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 10 ms;
      Compute_Execution_Time => 2 ms;
  end worker;

  thread implementation worker.impl
  end worker.impl;

  processor generic_cpu
  end generic_cpu;

  processor implementation generic_cpu.impl
  end generic_cpu.impl;
end Components;

package MainSystem
public
  with Components;

  process pipeline_proc
    features
      result: out event data port;
  end pipeline_proc;

  process implementation pipeline_proc.impl
    subcomponents
      stage1: thread Components::worker.impl;
      stage2: thread Components::worker.impl;
    connections
      k0: port stage1.outp -> stage2.inp;
      k1: port stage2.outp -> result;
  end pipeline_proc.impl;

  system sink_sys
    features
      display: in event data port;
  end sink_sys;

  system implementation sink_sys.impl
  end sink_sys.impl;

  system top
  end top;

  system implementation top.impl
    subcomponents
      main: process pipeline_proc.impl;
      cpu0: processor Components::generic_cpu.impl;
      sink: system sink_sys.impl;
    connections
      s0: port main.result -> sink.display;
    properties
      Actual_Processor_Binding => reference (cpu0) applies to main;
  end top.impl;
end MainSystem;|}

let test_parse_two_packages () =
  match Aadl.Parser.parse_packages multi_src with
  | Error m -> Alcotest.fail m
  | Ok pkgs ->
    Alcotest.(check int) "two packages" 2 (List.length pkgs);
    Alcotest.(check (list string)) "names"
      [ "Components"; "MainSystem" ]
      (List.map (fun p -> p.Syn.pkg_name) pkgs)

let test_single_package_still_works () =
  match Aadl.Parser.parse_packages Polychrony.Case_study.aadl_source with
  | Error m -> Alcotest.fail m
  | Ok pkgs -> Alcotest.(check int) "one package" 1 (List.length pkgs)

let test_cross_package_instantiation () =
  let pkgs =
    match Aadl.Parser.parse_packages multi_src with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  match pkgs with
  | [ lib; main ] -> (
    match Aadl.Instance.instantiate ~context:[ lib ] main ~root:"top.impl" with
    | Error m -> Alcotest.fail m
    | Ok t ->
      Alcotest.(check int) "two worker threads" 2
        (List.length (Aadl.Instance.threads t));
      (* classifier resolved in the library, properties flow through *)
      (match Aadl.Instance.find t "top.main.stage1" with
       | Some th ->
         Alcotest.(check (option int)) "period from library" (Some 10000)
           (Aadl.Props.period_us th.Aadl.Instance.i_props)
       | None -> Alcotest.fail "stage1 missing"))
  | _ -> Alcotest.fail "expected two packages"

let test_unknown_package_rejected () =
  let src =
    {|package P public
      process q end q;
      process implementation q.impl
        subcomponents w: thread Nowhere::worker.impl;
      end q.impl;
      end P;|}
  in
  let pkg =
    match Aadl.Parser.parse_package src with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  match Aadl.Instance.instantiate pkg ~root:"q.impl" with
  | Ok _ -> Alcotest.fail "unknown package must fail"
  | Error m ->
    Alcotest.(check bool) "mentions the package" true
      (String.length m > 0)

let test_end_to_end_multipackage () =
  match P.analyze multi_src with
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  | Ok a -> (
    Alcotest.(check bool) "deadlock free" true
      a.P.deadlock.Analysis.Deadlock.deadlock_free;
    match P.simulate ~hyperperiods:3 a with
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
    | Ok tr ->
      (* stage1's job counter flows to stage2 and out to the sink *)
      Alcotest.(check bool) "pipeline delivers" true
        (Polysim.Trace.present_count tr "sink_display" >= 1))

let test_property_set_and_annex () =
  (* real AADL files open with property sets and sprinkle annexes *)
  let src =
    {|property set Custom_Props is
        Watchdog_Budget: aadlinteger 0 .. 1000 applies to (thread);
      end Custom_Props;

      package P
      public
        thread t
          features e: in event port;
          annex behavior_specification {**
            states s0: initial state; transitions t0: s0 -[on dispatch]-> s0;
          **};
          properties
            Dispatch_Protocol => Periodic;
            Period => 10 ms;
            Custom_Props::Watchdog_Budget => 5;
        end t;
        thread implementation t.impl
          annex behavior_specification {** anything ** here **};
        end t.impl;
      end P;|}
  in
  match Aadl.Parser.parse_packages src with
  | Error m -> Alcotest.fail m
  | Ok [ pkg ] -> (
    match Syn.find_type pkg "t" with
    | Some ct ->
      Alcotest.(check (option int)) "period parsed around annex"
        (Some 10000)
        (Aadl.Props.period_us ct.Syn.ct_properties);
      (* the custom qualified property is kept verbatim *)
      Alcotest.(check bool) "custom property present" true
        (Aadl.Props.find "Watchdog_Budget" ct.Syn.ct_properties
         = Some (Syn.Pint (5, None)))
    | None -> Alcotest.fail "t missing")
  | Ok _ -> Alcotest.fail "one package expected"

let suite =
  [ ("multipkg",
     [ Alcotest.test_case "parse two packages" `Quick test_parse_two_packages;
       Alcotest.test_case "single package" `Quick
         test_single_package_still_works;
       Alcotest.test_case "cross-package instantiation" `Quick
         test_cross_package_instantiation;
       Alcotest.test_case "unknown package" `Quick
         test_unknown_package_rejected;
       Alcotest.test_case "end to end" `Quick test_end_to_end_multipackage;
       Alcotest.test_case "property sets and annexes" `Quick
         test_property_set_and_annex ]) ]
