(* Interned UIDs, typed traceability, and digest-driven incremental
   recompute: the phase/mark refactor's cross-layer guarantees.

   - UID interning is stable, fresh ids never collide, and the
     protocol survives concurrent Domain_pool workers;
   - Traceability round-trips through its typed (UID-keyed) API and
     its string compatibility API;
   - pipeline sessions skip exactly the stages whose input digests
     are unchanged, and a timing-only edit under External scheduler
     mode replays the whole back end from cache;
   - the incremental path is byte-identical to a full rebuild;
   - qcheck: normalization and optimization never fabricate source
     positions, and the stage digests behave (deterministic, and the
     semantic digest ignores marks). *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module K = Signal_lang.Kernel
module SP = Signal_lang.Sig_parser
module Pp = Signal_lang.Pp
module Uid = Putil.Uid
module P = Polychrony.Pipeline
module CS = Polychrony.Case_study
module ST = Trans.System_trans

(* ------------------------------------------------------------------ *)
(* UIDs                                                               *)
(* ------------------------------------------------------------------ *)

let test_uid_intern_stable () =
  let a = Uid.Signal.intern "uidtest_x" in
  let b = Uid.Signal.intern "uidtest_x" in
  Alcotest.(check bool) "same uid" true (Uid.Signal.equal a b);
  Alcotest.(check int) "same dense id" (Uid.Signal.id a) (Uid.Signal.id b);
  Alcotest.(check string) "name round-trip" "uidtest_x" (Uid.Signal.name a);
  Alcotest.(check string)
    "symbol round-trip" "uidtest_x"
    (Putil.Symbol.name (Uid.Signal.sym a));
  Alcotest.(check bool)
    "id in range" true
    (Uid.Signal.id a >= 0 && Uid.Signal.id a < Uid.Signal.count ())

let test_uid_fresh_distinct () =
  let interned = Uid.Signal.intern "uidtest_f" in
  let f1 = Uid.Signal.fresh "uidtest_f" in
  let f2 = Uid.Signal.fresh "uidtest_f" in
  Alcotest.(check bool) "fresh <> interned" false
    (Uid.Signal.equal f1 interned);
  Alcotest.(check bool) "fresh <> fresh" false (Uid.Signal.equal f1 f2);
  (* a fresh uid's name is itself interned to that uid, so later
     interning of the generated name cannot alias another entity *)
  Alcotest.(check bool) "fresh name resolves to itself" true
    (Uid.Signal.equal f1 (Uid.Signal.intern (Uid.Signal.name f1)))

let test_uid_categories_independent () =
  let t = Uid.Thread.intern "uidtest_shared_name" in
  let s = Uid.Signal.intern "uidtest_shared_name" in
  (* same string, distinct id spaces: both resolve, both round-trip *)
  Alcotest.(check string) "thread name" "uidtest_shared_name"
    (Uid.Thread.name t);
  Alcotest.(check string) "signal name" "uidtest_shared_name"
    (Uid.Signal.name s)

let test_uid_tbl () =
  let tbl = Uid.Port.Tbl.create ~size:4 0 in
  let p1 = Uid.Port.intern "uidtest_p1" in
  let p2 = Uid.Port.intern "uidtest_p2" in
  Uid.Port.Tbl.set tbl p1 41;
  Uid.Port.Tbl.set tbl p2 42;
  Alcotest.(check int) "tbl get p1" 41 (Uid.Port.Tbl.get tbl p1);
  Alcotest.(check int) "tbl get p2" 42 (Uid.Port.Tbl.get tbl p2);
  Alcotest.(check int) "tbl default" 0
    (Uid.Port.Tbl.get tbl (Uid.Port.intern "uidtest_p3"))

(* Satellite 1: interning is safe under Domain_pool workers — several
   domains hammer the same names concurrently and must agree on every
   resulting uid. *)
let test_uid_parallel_intern () =
  let n_names = 200 and n_workers = 4 in
  let names =
    List.init n_names (Printf.sprintf "uidtest_par_%d")
  in
  let results =
    Array.init n_workers (fun _ -> Array.make n_names (-1))
  in
  Putil.Domain_pool.with_pool n_workers (fun pool ->
      Putil.Domain_pool.run_tasks pool
        (List.init n_workers (fun w () ->
             List.iteri
               (fun i name ->
                 results.(w).(i) <- Uid.Thread.id (Uid.Thread.intern name))
               names)));
  for w = 1 to n_workers - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "worker %d agrees with worker 0" w)
      results.(0) results.(w)
  done;
  (* dense, collision-free: every name got its own id *)
  let sorted = Array.copy results.(0) in
  Array.sort compare sorted;
  let distinct =
    Array.for_all (fun x -> x >= 0) sorted
    && Array.for_all Fun.id
         (Array.mapi (fun i x -> i = 0 || sorted.(i - 1) <> x) sorted)
  in
  Alcotest.(check bool) "ids distinct" true distinct;
  List.iteri
    (fun i name ->
      Alcotest.(check string) "name survives parallel interning" name
        (Uid.Thread.name (Uid.Thread.intern name));
      ignore i)
    names

(* ------------------------------------------------------------------ *)
(* Traceability: typed UID round-trip                                 *)
(* ------------------------------------------------------------------ *)

let test_traceability_roundtrip () =
  let tr = Trans.Traceability.create () in
  let th = Uid.Thread.intern "Sys.pr.thA" in
  let po = Uid.Port.intern "Sys.pr.thA.pOut" in
  let s_th = Uid.Signal.intern "th_Sys_pr_thA" in
  let s_po = Uid.Signal.intern "thA_pOut" in
  Trans.Traceability.add_component tr ~aadl:th ~signal:s_th;
  Trans.Traceability.add_port tr ~aadl:po ~signal:s_po;
  (* typed direction: key -> signal *)
  (match Trans.Traceability.signal_uid_of tr (Trans.Traceability.Kcomponent th) with
   | Some s -> Alcotest.(check bool) "component -> signal" true
                 (Uid.Signal.equal s s_th)
   | None -> Alcotest.fail "component key lost");
  (match Trans.Traceability.signal_uid_of tr (Trans.Traceability.Kport po) with
   | Some s -> Alcotest.(check bool) "port -> signal" true
                 (Uid.Signal.equal s s_po)
   | None -> Alcotest.fail "port key lost");
  (* typed reverse direction: signal -> key *)
  (match Trans.Traceability.aadl_key_of tr s_th with
   | Some (Trans.Traceability.Kcomponent t) ->
     Alcotest.(check bool) "signal -> component" true (Uid.Thread.equal t th)
   | _ -> Alcotest.fail "component reverse lookup lost");
  (match Trans.Traceability.aadl_key_of tr s_po with
   | Some (Trans.Traceability.Kport p) ->
     Alcotest.(check bool) "signal -> port" true (Uid.Port.equal p po)
   | _ -> Alcotest.fail "port reverse lookup lost");
  (* string compatibility API sees the same pairs *)
  Alcotest.(check (option string)) "signal_of component"
    (Some "th_Sys_pr_thA")
    (Trans.Traceability.signal_of tr "Sys.pr.thA");
  Alcotest.(check (option string)) "signal_of port" (Some "thA_pOut")
    (Trans.Traceability.signal_of tr "Sys.pr.thA.pOut");
  Alcotest.(check (option string)) "aadl_of component" (Some "Sys.pr.thA")
    (Trans.Traceability.aadl_of tr "th_Sys_pr_thA");
  Alcotest.(check (option string)) "aadl_of port" (Some "Sys.pr.thA.pOut")
    (Trans.Traceability.aadl_of tr "thA_pOut");
  Alcotest.(check int) "typed_entries arity" 2
    (List.length (Trans.Traceability.typed_entries tr));
  Alcotest.(check int) "entries arity" 2
    (List.length (Trans.Traceability.entries tr))

(* ------------------------------------------------------------------ *)
(* Incremental sessions                                               *)
(* ------------------------------------------------------------------ *)

let counter name = Putil.Metrics.counter_value Putil.Metrics.global name
let stages = [ "parse"; "instantiate"; "translate"; "typecheck";
               "normalize"; "analyses" ]

let snapshot () =
  List.map
    (fun st ->
      (st, counter ("incr." ^ st ^ ".ran"), counter ("incr." ^ st ^ ".skipped")))
    stages

let delta before after =
  List.map2
    (fun (st, r0, s0) (st', r1, s1) ->
      assert (st = st');
      (st, r1 - r0, s1 - s0))
    before after

let analyze_ok ?session ?(mode = ST.External) src =
  match P.analyze ?session ~registry:CS.registry_nominal ~mode src with
  | Ok a -> a
  | Error ds -> Alcotest.fail (Putil.Diag.list_to_string ds)

let edited_source () =
  let src = CS.aadl_source in
  let sub = "Period => 4 ms" and by = "Period => 5 ms" in
  let n = String.length src and m = String.length sub in
  let rec find i =
    if i + m > n then Alcotest.fail "period pattern not in case study"
    else if String.sub src i m = sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub src 0 i ^ by ^ String.sub src (i + m) (n - i - m)

let test_session_skips_unchanged () =
  let session = P.new_session () in
  let _ = analyze_ok ~session CS.aadl_source in
  let before = snapshot () in
  let _ = analyze_ok ~session CS.aadl_source in
  List.iter
    (fun (st, ran, skipped) ->
      Alcotest.(check int) (st ^ " not rerun") 0 ran;
      Alcotest.(check int) (st ^ " skipped once") 1 skipped)
    (delta before (snapshot ()))

let test_session_period_edit_skips_backend () =
  let session = P.new_session () in
  let _ = analyze_ok ~session CS.aadl_source in
  let before = snapshot () in
  let _ = analyze_ok ~session (edited_source ()) in
  List.iter
    (fun (st, ran, skipped) ->
      match st with
      | "parse" | "instantiate" | "translate" ->
        Alcotest.(check int) (st ^ " reran") 1 ran;
        Alcotest.(check int) (st ^ " not skipped") 0 skipped
      | _ ->
        (* External mode: a period edit leaves the generated program's
           digest unchanged, so the whole back end replays from cache *)
        Alcotest.(check int) (st ^ " not rerun") 0 ran;
        Alcotest.(check int) (st ^ " skipped") 1 skipped)
    (delta before (snapshot ()))

let test_session_period_edit_changes_schedule () =
  let session = P.new_session () in
  let a0 = analyze_ok ~session CS.aadl_source in
  let a1 = analyze_ok ~session (edited_source ()) in
  let hyper (a : P.analyzed) =
    match a.P.translation.ST.schedules with
    | (_, s) :: _ -> s.Sched.Static_sched.hyperperiod_us
    | [] -> Alcotest.fail "no schedule"
  in
  (* the skipped back end is sound precisely because the program is
     invariant; the timing artifacts must still change *)
  Alcotest.(check bool) "hyperperiod changed" true (hyper a0 <> hyper a1);
  Alcotest.(check string) "program digest invariant"
    (Digest.to_hex (Ast.program_digest a0.P.translation.ST.program))
    (Digest.to_hex (Ast.program_digest a1.P.translation.ST.program))

let render_outputs (a : P.analyzed) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun (cpu, s) ->
      Format.fprintf ppf "processor %s:@.%a@." cpu
        Sched.Static_sched.pp_schedule s)
    a.P.translation.ST.schedules;
  Format.fprintf ppf "%a@." Pp.pp_program a.P.translation.ST.program;
  (match P.simulate ~hyperperiods:2 a with
   | Ok tr -> Polysim.Trace.chronogram ppf tr
   | Error ds -> Alcotest.fail (Putil.Diag.list_to_string ds));
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_incremental_byte_identical () =
  let edited = edited_source () in
  let session = P.new_session () in
  let _ = analyze_ok ~session CS.aadl_source in
  let warm = analyze_ok ~session edited in
  Clocks.Calculus.reset_cache ();
  let cold = analyze_ok edited in
  Alcotest.(check string) "incremental outputs = full rebuild"
    (render_outputs cold) (render_outputs warm)

let test_external_matches_embedded () =
  (* the exogenous-scheduler translation drives the per-task control
     events from the schedule tables; every signal it still computes
     must behave exactly as under the embedded scheduler *)
  let a_ext = analyze_ok ~mode:ST.External CS.aadl_source in
  let a_emb = analyze_ok ~mode:ST.Embedded CS.aadl_source in
  let sim a =
    match P.simulate ~hyperperiods:2 a with
    | Ok tr -> tr
    | Error ds -> Alcotest.fail (Putil.Diag.list_to_string ds)
  in
  let tr_ext = sim a_ext and tr_emb = sim a_emb in
  Alcotest.(check int) "same horizon" (Polysim.Trace.length tr_emb)
    (Polysim.Trace.length tr_ext);
  let common =
    List.filter
      (fun s -> Polysim.Trace.index_of tr_emb s <> None)
      (Polysim.Trace.observable tr_ext)
  in
  Alcotest.(check bool) "common observables exist" true (common <> []);
  List.iter
    (fun s ->
      Alcotest.(check (list string)) ("signal " ^ s)
        (List.map Types.value_to_string (Polysim.Trace.values_of tr_emb s))
        (List.map Types.value_to_string (Polysim.Trace.values_of tr_ext s)))
    common

(* ------------------------------------------------------------------ *)
(* Per-process units and the persistent store                         *)
(* ------------------------------------------------------------------ *)

let proc_stages = [ "typecheck"; "normalize"; "analyses" ]

let proc_snapshot () =
  List.map
    (fun st ->
      ( st,
        counter ("incr." ^ st ^ ".proc_ran"),
        counter ("incr." ^ st ^ ".proc_skipped") ))
    proc_stages

(* Editing one thread's behaviour (the producer arms its timer once
   instead of every job) reruns exactly that process's unit in every
   per-process stage; all untouched processes replay. The analyses
   stage may additionally rerun its glue unit — the producer's
   interface summary feeds it — but never another model's. *)
let test_behavior_edit_reruns_one_process () =
  let session = P.new_session () in
  let b0 = proc_snapshot () in
  let _ = analyze_ok ~session CS.aadl_source in
  let cold = delta b0 (proc_snapshot ()) in
  let before = proc_snapshot () in
  let _ =
    match
      P.analyze ~session ~registry:CS.registry_producer_variant
        ~mode:ST.External CS.aadl_source
    with
    | Ok a -> a
    | Error ds -> Alcotest.fail (Putil.Diag.list_to_string ds)
  in
  List.iter2
    (fun (st, cold_ran, _) (st', ran, skipped) ->
      assert (st = st');
      Alcotest.(check int) (st ^ " conserves units") cold_ran (ran + skipped);
      match st with
      | "analyses" ->
        Alcotest.(check bool)
          (st ^ " reran the edited model (at most +glue)")
          true
          (ran = 1 || ran = 2)
      | _ -> Alcotest.(check int) (st ^ " reran exactly one process") 1 ran)
    cold
    (delta before (proc_snapshot ()))

let with_temp_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "incr_store_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun b -> try Sys.remove (Filename.concat dir b) with _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with _ -> ()
      end)
    (fun () ->
      match Putil.Cache_store.open_store dir with
      | Ok t -> f t dir
      | Error m -> Alcotest.fail ("open_store: " ^ m))

(* A brand-new session that shares nothing with the first one but the
   on-disk store replays every per-process unit (no recompute) and
   reproduces the cold outputs byte for byte. *)
let test_warm_store_fresh_session () =
  with_temp_store (fun store dir ->
      let s1 = P.new_session ~store () in
      let out_cold = render_outputs (analyze_ok ~session:s1 CS.aadl_source) in
      let store2 =
        match Putil.Cache_store.open_store dir with
        | Ok t -> t
        | Error m -> Alcotest.fail ("reopen: " ^ m)
      in
      let s2 = P.new_session ~store:store2 () in
      let before = proc_snapshot () in
      let a_warm = analyze_ok ~session:s2 CS.aadl_source in
      List.iter
        (fun (st, ran, skipped) ->
          Alcotest.(check int) (st ^ " no unit recomputed") 0 ran;
          Alcotest.(check bool) (st ^ " units replayed") true (skipped > 0))
        (delta before (proc_snapshot ()));
      Alcotest.(check bool) "store hits recorded" true
        ((Putil.Cache_store.stats store2).Putil.Cache_store.hits > 0);
      Alcotest.(check string) "store replay byte-identical" out_cold
        (render_outputs a_warm))

(* External mode + compiled simulation across a timing edit: the
   kernel digest is invariant, so the memoized compiled plan is
   reused (no new plan build) and the simulation still reflects the
   new schedule exactly as a cold rebuild would. *)
let test_compiled_plan_reuse_after_timing_edit () =
  let session = P.new_session () in
  let a0 = analyze_ok ~session CS.aadl_source in
  (match P.simulate ~compiled:true a0 with
  | Ok _ -> ()
  | Error ds -> Alcotest.fail (Putil.Diag.list_to_string ds));
  let a1 = analyze_ok ~session (edited_source ()) in
  Alcotest.(check string) "kernel digest invariant"
    (K.digest a0.P.kernel) (K.digest a1.P.kernel);
  let builds0 = counter "compile.plan_builds" in
  let tr_warm =
    match P.simulate ~compiled:true a1 with
    | Ok tr -> tr
    | Error ds -> Alcotest.fail (Putil.Diag.list_to_string ds)
  in
  Alcotest.(check int) "compiled plan reused, not rebuilt" builds0
    (counter "compile.plan_builds");
  Clocks.Calculus.reset_cache ();
  let tr_cold =
    match P.simulate ~compiled:true (analyze_ok (edited_source ())) with
    | Ok tr -> tr
    | Error ds -> Alcotest.fail (Putil.Diag.list_to_string ds)
  in
  Alcotest.(check bool) "trace matches cold rebuild" true
    (Polysim.Trace.equal tr_cold tr_warm)

let test_external_ctl_inputs () =
  let a = analyze_ok ~mode:ST.External CS.aadl_source in
  let ctls = a.P.translation.ST.ctl_inputs in
  Alcotest.(check bool) "ctl inputs derived" true (List.length ctls > 0);
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) (name ^ " horizon positive") true
        (spec.ST.cs_horizon > 0);
      Alcotest.(check bool) (name ^ " ticks in horizon-anchored range") true
        (List.for_all (fun t -> t >= 0) spec.ST.cs_ticks))
    ctls;
  (* embedded mode keeps the scheduler in the program: no ctl inputs *)
  let a_emb = analyze_ok ~mode:ST.Embedded CS.aadl_source in
  Alcotest.(check int) "embedded has no ctl inputs" 0
    (List.length a_emb.P.translation.ST.ctl_inputs)

(* ------------------------------------------------------------------ *)
(* qcheck: spans and digests                                          *)
(* ------------------------------------------------------------------ *)

let gen_expr =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [ map B.i (int_range (-20) 20);
            oneofl [ B.v "a"; B.v "b" ] ]
      in
      if n <= 0 then leaf
      else
        let sub = self (n / 2) in
        oneof
          [ leaf;
            map2 B.( + ) sub sub;
            map2 B.( * ) sub sub;
            map2 (fun e c -> B.when_ e B.(c > i 0)) sub sub;
            map2 B.default sub sub;
            map (fun e -> B.delay ~init:(Types.Vint 0) e) sub;
            map3 (fun c e1 e2 -> B.if_ B.(c > i 0) e1 e2) sub sub sub ])

let mk_process e =
  B.proc ~name:"P"
    ~inputs:[ Ast.var "a" Types.Tint; Ast.var "b" Types.Tint ]
    ~outputs:[ Ast.var "x" Types.Tint ]
    [ B.( := ) "x" e ]

(* every span occurring anywhere in a process *)
let rec expr_spans (d, m) acc =
  let acc = Ast.mark_span m :: acc in
  match d with
  | Ast.Econst _ | Ast.Evar _ -> acc
  | Ast.Eunop (_, e) | Ast.Edelay (e, _) | Ast.Eclock e -> expr_spans e acc
  | Ast.Ebinop (_, e1, e2) | Ast.Ewhen (e1, e2) | Ast.Edefault (e1, e2) ->
    expr_spans e1 (expr_spans e2 acc)
  | Ast.Eif (e1, e2, e3) -> expr_spans e1 (expr_spans e2 (expr_spans e3 acc))

let stmt_spans (d, m) acc =
  let acc = Ast.mark_span m :: acc in
  match d with
  | Ast.Sdef (_, e) | Ast.Spartial (_, e) -> expr_spans e acc
  | Ast.Sclk_eq (e1, e2) | Ast.Sclk_le (e1, e2) | Ast.Sclk_ex (e1, e2) ->
    expr_spans e1 (expr_spans e2 acc)
  | Ast.Sinstance i ->
    List.fold_left (fun acc e -> expr_spans e acc) acc i.Ast.inst_ins

let process_spans (p : _ Ast.gprocess) =
  let decls =
    List.concat_map
      (fun d -> [ Ast.mark_span d.Ast.var_mark ])
      (p.Ast.params @ p.Ast.inputs @ p.Ast.outputs @ p.Ast.locals)
  in
  List.fold_left (fun acc st -> stmt_spans st acc) decls p.Ast.body

(* Normalization is mark-transforming: every kernel declaration's span
   points back at a construct of the source process (or is absent) —
   never at a position the source does not contain. *)
let prop_normalize_keeps_spans =
  QCheck2.Test.make ~name:"normalize never fabricates source positions"
    ~count:200 gen_expr (fun e ->
      (* reparse the printed process so spans are real source positions *)
      let printed = Pp.process_to_string (mk_process e) in
      match SP.parse_process printed with
      | Error m -> QCheck2.Test.fail_reportf "reparse: %s\n%s" m printed
      | Ok p -> (
        let allowed = None :: process_spans p in
        match Signal_lang.Normalize.process p with
        | Error m -> QCheck2.Test.fail_reportf "normalize: %s" (Putil.Diag.to_string m)
        | Ok kp ->
          List.for_all
            (fun d -> List.mem (Ast.mark_span d.Ast.var_mark) allowed)
            (K.signals kp)))

let prop_optimize_keeps_spans =
  QCheck2.Test.make ~name:"optimize never fabricates source positions"
    ~count:200 gen_expr (fun e ->
      let printed = Pp.process_to_string (mk_process e) in
      match SP.parse_process printed with
      | Error m -> QCheck2.Test.fail_reportf "reparse: %s\n%s" m printed
      | Ok p -> (
        match Signal_lang.Normalize.process p with
        | Error m -> QCheck2.Test.fail_reportf "normalize: %s" (Putil.Diag.to_string m)
        | Ok kp ->
          let before =
            List.map (fun d -> Ast.mark_span d.Ast.var_mark) (K.signals kp)
          in
          let kp' = Signal_lang.Optimize.optimize kp in
          List.for_all
            (fun d -> List.mem (Ast.mark_span d.Ast.var_mark) before)
            (K.signals kp')))

let prop_digest_stability =
  QCheck2.Test.make ~name:"stage digests: deterministic, semantic strips marks"
    ~count:200 gen_expr (fun e ->
      let build () = B.program "P" [ mk_process e ] in
      let p = build () in
      (* deterministic on structurally rebuilt values *)
      Ast.program_digest p = Ast.program_digest (build ())
      (* the semantic digest sees through marks *)
      && Ast.program_semantic_digest p
         = Ast.program_semantic_digest (Ast.strip_program p)
      (* ... but the structural digest does not: a position-only change
         must invalidate (replayed diagnostics carry positions) *)
      &&
      let sp = Putil.Diag.span ~line:7 ~col:3 () in
      let respan (pc : Ast.process) =
        { pc with
          Ast.body =
            List.map
              (fun st -> (Ast.desc st, Ast.with_span (Ast.mark st) (Some sp)))
              pc.Ast.body }
      in
      let p' = { p with Ast.processes = List.map respan p.Ast.processes } in
      Ast.program_digest p <> Ast.program_digest p'
      && Ast.program_semantic_digest p = Ast.program_semantic_digest p')

(* The per-process cache keys are compositional: a process's digest
   depends on that process alone, so editing one process of a program
   never invalidates another's unit, and the program digest moves iff
   some process digest does. *)
let prop_proc_digest_isolation =
  QCheck2.Test.make
    ~name:"process digests: isolated under sibling edits"
    ~count:200
    QCheck2.Gen.(triple gen_expr gen_expr gen_expr)
    (fun (e1, e2, e3) ->
      let mk name e =
        B.proc ~name
          ~inputs:[ Ast.var "a" Types.Tint; Ast.var "b" Types.Tint ]
          ~outputs:[ Ast.var "x" Types.Tint ]
          [ B.( := ) "x" e ]
      in
      let prog ea eb = B.program "G" [ mk "P1" ea; mk "P2" eb ] in
      let before = prog e1 e2 and after = prog e1 e3 in
      let dg p i = Ast.process_digest (List.nth p.Ast.processes i) in
      (* the untouched sibling's digest is bit-stable across the edit *)
      dg before 0 = dg after 0
      (* the program digest moves exactly when the edited process's
         digest does *)
      && (Ast.program_digest before = Ast.program_digest after)
         = (dg before 1 = dg after 1))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_normalize_keeps_spans; prop_optimize_keeps_spans;
      prop_digest_stability; prop_proc_digest_isolation ]

let suite =
  [ ( "incremental",
      [ Alcotest.test_case "uid intern stable" `Quick test_uid_intern_stable;
        Alcotest.test_case "uid fresh distinct" `Quick test_uid_fresh_distinct;
        Alcotest.test_case "uid categories independent" `Quick
          test_uid_categories_independent;
        Alcotest.test_case "uid tables" `Quick test_uid_tbl;
        Alcotest.test_case "uid parallel interning" `Quick
          test_uid_parallel_intern;
        Alcotest.test_case "traceability uid round-trip" `Quick
          test_traceability_roundtrip;
        Alcotest.test_case "session skips unchanged input" `Quick
          test_session_skips_unchanged;
        Alcotest.test_case "period edit skips back end" `Quick
          test_session_period_edit_skips_backend;
        Alcotest.test_case "period edit still reschedules" `Quick
          test_session_period_edit_changes_schedule;
        Alcotest.test_case "incremental byte-identical to rebuild" `Quick
          test_incremental_byte_identical;
        Alcotest.test_case "behaviour edit reruns one process" `Quick
          test_behavior_edit_reruns_one_process;
        Alcotest.test_case "warm store replays in fresh session" `Quick
          test_warm_store_fresh_session;
        Alcotest.test_case "compiled plan reused across timing edit" `Quick
          test_compiled_plan_reuse_after_timing_edit;
        Alcotest.test_case "external scheduler matches embedded" `Quick
          test_external_matches_embedded;
        Alcotest.test_case "external ctl inputs well-formed" `Quick
          test_external_ctl_inputs ]
      @ qsuite ) ]
