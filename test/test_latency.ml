(* Flow latency analysis: path discovery, schedule-based prediction,
   and validation of the prediction against a simulated trace. *)

module P = Polychrony.Pipeline
module L = Trans.Latency
module Trace = Polysim.Trace
module Types = Signal_lang.Types

let case_analyzed =
  lazy
    (match
       P.analyze ~registry:Polychrony.Case_study.registry_nominal
         Polychrony.Case_study.aadl_source
     with
     | Ok a -> a
     | Error m -> failwith (Putil.Diag.list_to_string m))

let test_find_path_case_study () =
  let a = Lazy.force case_analyzed in
  let t = a.P.instance in
  match
    L.find_path t ~src:"ProdConsSys.env.pGo"
      ~dst:"ProdConsSys.display.pProdAlarm"
  with
  | Error m -> Alcotest.fail m
  | Ok hops ->
    Alcotest.(check int) "two hops (producer, timer)" 2 (List.length hops);
    (match hops with
     | [ h1; h2 ] ->
       Alcotest.(check string) "first thread"
         "ProdConsSys.prProdCons.thProducer" h1.L.h_thread;
       Alcotest.(check string) "second thread"
         "ProdConsSys.prProdCons.thProdTimer" h2.L.h_thread
     | _ -> Alcotest.fail "hop shape")

let test_no_path () =
  let a = Lazy.force case_analyzed in
  match
    L.find_path a.P.instance ~src:"ProdConsSys.display.pProdAlarm"
      ~dst:"ProdConsSys.env.pGo"
  with
  | Ok _ -> Alcotest.fail "reversed flow must not exist"
  | Error _ -> ()

let test_latency_bounds_case_study () =
  let a = Lazy.force case_analyzed in
  let schedules = a.P.translation.Trans.System_trans.schedules in
  match
    L.analyze a.P.instance ~schedules ~src:"ProdConsSys.env.pGo"
      ~dst:"ProdConsSys.display.pProdAlarm"
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
    (* two hops with periods 4 and 8 ms: at least one complete each *)
    Alcotest.(check bool) "best above 1 ms" true (r.L.best_us >= 1000);
    (* and bounded by two periods + executions *)
    Alcotest.(check bool) "worst under 16 ms" true (r.L.worst_us <= 16000);
    Alcotest.(check bool) "best <= avg <= worst" true
      (float_of_int r.L.best_us <= r.L.average_us
       && r.L.average_us <= float_of_int r.L.worst_us)

(* Validate the schedule-based prediction against an actual simulation
   of the flight-control data-port chain: a value produced by nav must
   reach the servo within [best, worst] of its dispatch. *)
let flight_aadl =
  (* reuse the example's model: inline a trimmed copy *)
  {|package FlightControl
public
  thread navigation
    features position: out data port;
    properties Dispatch_Protocol => Periodic; Period => 40 ms;
      Compute_Execution_Time => 6 ms;
  end navigation;
  thread implementation navigation.impl end navigation.impl;
  thread control
    features
      setpoint: in data port;
      surface: out data port;
    properties Dispatch_Protocol => Periodic; Period => 10 ms;
      Compute_Execution_Time => 2 ms;
  end control;
  thread implementation control.impl end control.impl;
  process fcs
    features surface_cmd: out data port;
  end fcs;
  process implementation fcs.impl
    subcomponents
      nav: thread navigation.impl;
      ctl: thread control.impl;
    connections
      k0: port nav.position -> ctl.setpoint;
      k2: port ctl.surface -> surface_cmd;
  end fcs.impl;
  processor fcc end fcc;
  processor implementation fcc.impl end fcc.impl;
  system actuators
    features surface: in data port;
  end actuators;
  system implementation actuators.impl end actuators.impl;
  system aircraft end aircraft;
  system implementation aircraft.impl
    subcomponents
      flight: process fcs.impl;
      cpu: processor fcc.impl;
      servo: system actuators.impl;
    connections
      s0: port flight.surface_cmd -> servo.surface;
    properties
      Actual_Processor_Binding => reference (cpu) applies to flight;
  end aircraft.impl;
end FlightControl;|}

let test_latency_matches_simulation () =
  let a =
    match P.analyze flight_aadl with
    | Ok a -> a
    | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  in
  let schedules = a.P.translation.Trans.System_trans.schedules in
  let r =
    match
      L.analyze a.P.instance ~schedules
        ~src:"aircraft.flight.nav.position" ~dst:"aircraft.servo.surface"
    with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  (* simulate and observe: nav's k-th output value is the job counter;
     find when each fresh value first reaches the servo *)
  match P.simulate ~hyperperiods:4 a with
  | Error m -> Alcotest.fail (Putil.Diag.list_to_string m)
  | Ok tr ->
    let base =
      match schedules with
      | (_, s) :: _ -> s.Sched.Static_sched.base_us
      | [] -> Alcotest.fail "no schedule"
    in
    (* nav releases its value at Complete of each job *)
    let nav_out = Trace.tick_instants tr "flight_nav_position" in
    let nav_vals = Trace.values_of tr "flight_nav_position" in
    let servo_at v =
      (* first instant where the servo sees value v *)
      List.find_opt
        (fun i -> Trace.get tr i "servo_surface" = Some v)
        (List.init (Trace.length tr) Fun.id)
    in
    let nav_sched =
      match schedules with (_, s) :: _ -> s | [] -> assert false
    in
    List.iteri
      (fun k (inst, v) ->
        match servo_at v with
        | None -> ()  (* value superseded before reaching the servo *)
        | Some arrival ->
          (* latency measured from the nav job's dispatch *)
          let dispatches =
            Sched.Static_sched.event_times nav_sched
              "aircraft.flight.nav" Sched.Static_sched.Dispatch
          in
          let hyper = nav_sched.Sched.Static_sched.hyperperiod_us in
          let release_us = inst * base in
          let dispatch_us =
            (* latest dispatch at or before the release *)
            List.fold_left
              (fun acc d ->
                let rec fit d = if d + hyper <= release_us then fit (d + hyper) else d in
                let d = fit d in
                if d <= release_us then max acc d else acc)
              0 dispatches
          in
          let measured = (arrival * base) - dispatch_us in
          ignore k;
          Alcotest.(check bool)
            (Printf.sprintf "measured latency %d us within [%d, %d]" measured
               r.L.best_us r.L.worst_us)
            true
            (measured >= r.L.best_us - nav_sched.Sched.Static_sched.base_us
             && measured <= r.L.worst_us + nav_sched.Sched.Static_sched.base_us))
      (List.combine nav_out nav_vals)

let test_pp_report () =
  let a = Lazy.force case_analyzed in
  let schedules = a.P.translation.Trans.System_trans.schedules in
  match
    L.analyze a.P.instance ~schedules ~src:"ProdConsSys.env.pGo"
      ~dst:"ProdConsSys.display.pProdAlarm"
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
    let s = Format.asprintf "%a" L.pp_report r in
    Alcotest.(check bool) "mentions latency" true (String.length s > 40)

let suite =
  [ ("latency",
     [ Alcotest.test_case "path discovery" `Quick test_find_path_case_study;
       Alcotest.test_case "no reversed path" `Quick test_no_path;
       Alcotest.test_case "case-study bounds" `Quick
         test_latency_bounds_case_study;
       Alcotest.test_case "prediction matches simulation" `Quick
         test_latency_matches_simulation;
       Alcotest.test_case "report printer" `Quick test_pp_report ]) ]
