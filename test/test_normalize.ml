(* Tests for normalization into kernel form. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module K = Signal_lang.Kernel
module N = Signal_lang.Normalize
module Stdproc = Signal_lang.Stdproc

let tint = Types.Tint
let tbool = Types.Tbool
let tevent = Types.Tevent

let norm p = N.process_exn p

let eq_kinds kp =
  List.map
    (function
      | K.Kfunc _ -> `F
      | K.Kdelay _ -> `D
      | K.Kwhen _ -> `W
      | K.Kdefault _ -> `M)
    kp.K.keqs

let test_flat_arith () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := (v "a" + v "b") * i 2 ]
  in
  let kp = norm p in
  (* two Kfunc for +, *, one Pid copy into y *)
  Alcotest.(check int) "three equations" 3 (List.length kp.K.keqs);
  Alcotest.(check bool) "all stepwise" true
    (List.for_all (fun k -> k = `F) (eq_kinds kp))

let test_delay_init () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := delay ~init:(Types.Vint 7) (v "x") ]
  in
  let kp = norm p in
  let found =
    List.exists
      (function
        | K.Kdelay { init = Types.Vint 7; src = "x"; _ } -> true
        | _ -> false)
      kp.K.keqs
  in
  Alcotest.(check bool) "delay preserved with init" true found

let test_partial_definitions () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint; Ast.var "ca" tbool; Ast.var "cb" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" =:: when_ (v "a") (v "ca"); "y" =:: when_ (v "a" + i 1) (v "cb") ]
  in
  let kp = norm p in
  (match kp.K.kpartials with
   | [ ("y", sources) ] ->
     Alcotest.(check int) "two branches" 2 (List.length sources)
   | _ -> Alcotest.fail "expected one partial merge for y");
  (* y must end up with a total definition (merge) *)
  Alcotest.(check bool) "y defined" true (K.defined_by kp "y" <> [])

let test_inline_fm () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ inst ~label:"mem" "fm" [ v "x"; v "c" ] [ "y" ] ]
  in
  let kp = norm p in
  Alcotest.(check int) "no primitive instances" 0 (List.length kp.K.kinstances);
  (* fm's local m appears renamed *)
  Alcotest.(check bool) "inlined local present" true
    (List.exists
       (fun vd -> vd.Ast.var_name = "mem__m")
       kp.K.klocals);
  Alcotest.(check bool) "y defined" true (K.defined_by kp "y" <> [])

let test_inline_nested () =
  (* freeze instantiates fm internally: two levels of inlining *)
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "x" tint; Ast.var "t" tevent ]
      ~outputs:[ Ast.var "z" tint ]
      B.[ inst ~label:"fr" "freeze" [ v "x"; v "t" ] [ "z" ] ]
  in
  let kp = norm p in
  Alcotest.(check int) "fully inlined" 0 (List.length kp.K.kinstances);
  Alcotest.(check bool) "z defined" true (K.defined_by kp "z" <> [])

let test_primitive_kept () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "x" tint; Ast.var "pop" tevent ]
      ~outputs:[ Ast.var "d" tint; Ast.var "s" tint ]
      B.[ inst ~params:[ Types.Vint 4; Types.Vstring "dropoldest" ] ~label:"q" "fifo"
            [ v "x"; v "pop" ] [ "d"; "s" ] ]
  in
  let kp = norm p in
  (match kp.K.kinstances with
   | [ ki ] ->
     Alcotest.(check bool) "is fifo" true (ki.K.ki_prim = Stdproc.Pfifo);
     Alcotest.(check (list string)) "outs" [ "d"; "s" ] ki.K.ki_outs
   | _ -> Alcotest.fail "expected exactly one primitive instance")

let test_param_substitution () =
  let model =
    B.proc ~name:"scale"
      ~params:[ Ast.var "k" tint ]
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "x" * v "k" ]
  in
  let p =
    B.proc ~name:"p" ~subprocesses:[ model ]
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ inst ~params:[ Types.Vint 3 ] ~label:"s3" "scale" [ v "x" ] [ "y" ] ]
  in
  let kp = norm p in
  let has_const_3 =
    List.exists
      (function
        | K.Kfunc { args; _ } ->
          List.exists (fun a -> a = K.Aconst (Types.Vint 3)) args
        | _ -> false)
      kp.K.keqs
  in
  Alcotest.(check bool) "parameter became constant" true has_const_3

let test_param_arity_error () =
  let model =
    B.proc ~name:"scale"
      ~params:[ Ast.var "k" tint ]
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "x" * v "k" ]
  in
  let p =
    B.proc ~name:"p" ~subprocesses:[ model ]
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ inst ~label:"s" "scale" [ v "x" ] [ "y" ] ]
  in
  Alcotest.(check bool) "missing parameter detected" true
    (Result.is_error (N.process p))

let test_recursive_instance_error () =
  let rec_model =
    B.proc ~name:"loop_me"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ inst ~label:"again" "loop_me" [ v "x" ] [ "y" ] ]
  in
  let prog = B.program "m" [ rec_model ] in
  Alcotest.(check bool) "recursion rejected" true
    (Result.is_error (N.process ~program:prog rec_model))

let test_clock_constraints_normalized () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "a"; clk (v "a") ^= clk (v "b") ]
  in
  let kp = norm p in
  Alcotest.(check int) "one constraint" 1 (List.length kp.K.kconstraints);
  match kp.K.kconstraints with
  | [ K.Ceq (_, _) ] -> ()
  | _ -> Alcotest.fail "expected a Ceq"

let test_stdlib_all_normalize () =
  (* every kernel-expressible library process normalizes *)
  List.iter
    (fun p ->
      match Stdproc.primitive_of_name p.Ast.proc_name with
      | Some _ -> ()
      | None ->
        let params =
          List.map (fun vd -> Types.default_init vd.Ast.var_type) p.Ast.params
        in
        (match N.process ~params p with
         | Ok _ -> ()
         | Error m ->
           Alcotest.fail
             (Printf.sprintf "%s: %s" p.Ast.proc_name
                (Putil.Diag.to_string m))))
    Stdproc.all

let test_fresh_names_no_clash () =
  (* a user signal named like a temp must not collide *)
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint ]
      ~outputs:[ Ast.var "y" tint ]
      ~locals:[ Ast.var "_t1" tint ]
      B.[ "_t1" := v "a" + i 1; "y" := v "_t1" * i 2 ]
  in
  let kp = norm p in
  let names = List.map (fun vd -> vd.Ast.var_name) (K.signals kp) in
  let uniq = List.sort_uniq String.compare names in
  Alcotest.(check int) "no duplicate declarations"
    (List.length uniq) (List.length names)

let suite =
  [ ("normalize",
     [ Alcotest.test_case "flat arithmetic" `Quick test_flat_arith;
       Alcotest.test_case "delay with init" `Quick test_delay_init;
       Alcotest.test_case "partial definitions" `Quick test_partial_definitions;
       Alcotest.test_case "inline fm" `Quick test_inline_fm;
       Alcotest.test_case "inline nested freeze" `Quick test_inline_nested;
       Alcotest.test_case "primitive kept" `Quick test_primitive_kept;
       Alcotest.test_case "parameter substitution" `Quick test_param_substitution;
       Alcotest.test_case "parameter arity" `Quick test_param_arity_error;
       Alcotest.test_case "recursive instance" `Quick test_recursive_instance_error;
       Alcotest.test_case "clock constraints" `Quick test_clock_constraints_normalized;
       Alcotest.test_case "library normalizes" `Quick test_stdlib_all_normalize;
       Alcotest.test_case "fresh name hygiene" `Quick test_fresh_names_no_clash ]) ]
