module ProdConsSys_ssme =

process th_ProdConsSys_prProdCons_thProducer =
  ( ? event Dispatch, Start, Deadline;
    integer pProdStart;
    event pProdStart_time;
    integer pProdTimeOut;
    event pProdTimeOut_time, pProdStartTimer_time, pProdStopTimer_time;
    ! event Complete, Alarm;
    integer pProdStartTimer, pProdStopTimer, reqQueue_w;
    )
  (| start_b := true when ^Start
   | deadline_b := true when ^Deadline
   | (pProdStart_frozen,
       pProdStart_count) := in_event_port{2,
       "dropoldest"}(pProdStart,
       pProdStart_time)
   | (pProdStart_value) := fm(pProdStart_frozen, start_b)
   | (pProdStart_count_s) := fm(pProdStart_count, start_b)
   | (pProdTimeOut_frozen,
       pProdTimeOut_count) := in_event_port{1,
       "dropoldest"}(pProdTimeOut,
       pProdTimeOut_time)
   | (pProdTimeOut_value) := fm(pProdTimeOut_frozen, start_b)
   | (pProdTimeOut_count_s) := fm(pProdTimeOut_count, start_b)
   | mode_at_start := 0 when start_b
   | b1 := b1 $ 1 init 0 + 1
   | ^b1 ^= ^Start
   | reqQueue_w := b1
   | pProdStartTimer_item := b1 when b1 > 0
   | pProdStopTimer_item := b1
   | (pProdStartTimer) := out_event_port{1,
       "dropoldest"}(pProdStartTimer_item,
       pProdStartTimer_time)
   | (pProdStopTimer) := out_event_port{1,
       "dropoldest"}(pProdStopTimer_item,
       pProdStopTimer_time)
   | Complete := ^Start
   | due := due $ 1 init 0 + 1
   | ^due ^= ^Deadline
   | completed := completed $ 1 init 0 + 1
   | ^completed ^= ^Complete
   | (completed_at_dl) := fm(completed, deadline_b)
   | Alarm := when (completed_at_dl < due)
   |)
  where
    boolean start_b, deadline_b;
    integer pProdStart_frozen, pProdStart_count, pProdStart_value,
      pProdStart_count_s, pProdTimeOut_frozen, pProdTimeOut_count,
      pProdTimeOut_value, pProdTimeOut_count_s, mode_at_start,
      pProdStartTimer_item, pProdStopTimer_item, b1, due, completed,
      completed_at_dl;
  end
  %pragma aadl "ProdConsSys.prProdCons.thProducer"%
  %pragma aadl_classifier "thProducer.impl"%;

process th_ProdConsSys_prProdCons_thConsumer =
  ( ? event Dispatch, Start, Deadline;
    integer pConsStart;
    event pConsStart_time;
    integer pConsTimeOut;
    event pConsTimeOut_time, pConsStartTimer_time, pConsStopTimer_time,
      pConsOut_time;
    integer reqQueue_r;
    ! event Complete, Alarm;
    integer pConsStartTimer, pConsStopTimer, pConsOut;
    event reqQueue_pop;
    )
  (| start_b := true when ^Start
   | deadline_b := true when ^Deadline
   | (pConsStart_frozen,
       pConsStart_count) := in_event_port{2,
       "dropoldest"}(pConsStart,
       pConsStart_time)
   | (pConsStart_value) := fm(pConsStart_frozen, start_b)
   | (pConsStart_count_s) := fm(pConsStart_count, start_b)
   | (pConsTimeOut_frozen,
       pConsTimeOut_count) := in_event_port{1,
       "dropoldest"}(pConsTimeOut,
       pConsTimeOut_time)
   | (pConsTimeOut_value) := fm(pConsTimeOut_frozen, start_b)
   | (pConsTimeOut_count_s) := fm(pConsTimeOut_count, start_b)
   | mode_at_start := 0 when start_b
   | (reqQueue_value) := fm(reqQueue_r, start_b)
   | b1 := b1 $ 1 init 0 + 1
   | ^b1 ^= ^Start
   | reqQueue_pop := ^Start
   | pConsOut_item := reqQueue_value
   | pConsStartTimer_item := b1 when b1 > 0
   | pConsStopTimer_item := b1
   | (pConsStartTimer) := out_event_port{1,
       "dropoldest"}(pConsStartTimer_item,
       pConsStartTimer_time)
   | (pConsStopTimer) := out_event_port{1,
       "dropoldest"}(pConsStopTimer_item,
       pConsStopTimer_time)
   | (pConsOut) := out_event_port{1,
       "dropoldest"}(pConsOut_item,
       pConsOut_time)
   | Complete := ^Start
   | due := due $ 1 init 0 + 1
   | ^due ^= ^Deadline
   | completed := completed $ 1 init 0 + 1
   | ^completed ^= ^Complete
   | (completed_at_dl) := fm(completed, deadline_b)
   | Alarm := when (completed_at_dl < due)
   |)
  where
    boolean start_b, deadline_b;
    integer pConsStart_frozen, pConsStart_count, pConsStart_value,
      pConsStart_count_s, pConsTimeOut_frozen, pConsTimeOut_count,
      pConsTimeOut_value, pConsTimeOut_count_s, mode_at_start,
      reqQueue_value, pConsStartTimer_item, pConsStopTimer_item,
      pConsOut_item, b1, due, completed, completed_at_dl;
  end
  %pragma aadl "ProdConsSys.prProdCons.thConsumer"%
  %pragma aadl_classifier "thConsumer.impl"%;

process th_ProdConsSys_prProdCons_thProdTimer =
  ( ? event Dispatch, Start, Deadline;
    integer pStartTimer;
    event pStartTimer_time;
    integer pStopTimer;
    event pStopTimer_time, pTimeOut_time;
    ! event Complete, Alarm;
    integer pTimeOut;
    )
  (| start_b := true when ^Start
   | deadline_b := true when ^Deadline
   | (pStartTimer_frozen,
       pStartTimer_count) := in_event_port{4,
       "dropoldest"}(pStartTimer,
       pStartTimer_time)
   | (pStartTimer_value) := fm(pStartTimer_frozen, start_b)
   | (pStartTimer_count_s) := fm(pStartTimer_count, start_b)
   | (pStopTimer_frozen,
       pStopTimer_count) := in_event_port{4,
       "dropoldest"}(pStopTimer,
       pStopTimer_time)
   | (pStopTimer_value) := fm(pStopTimer_frozen, start_b)
   | (pStopTimer_count_s) := fm(pStopTimer_count, start_b)
   | mode_at_start := 0 when start_b
   | (b1) := timer{3}(when (pStartTimer_count_s > 0),
       when (pStopTimer_count_s > 0),
       Start)
   | pTimeOut_item := 1 when b1
   | (pTimeOut) := out_event_port{1,
       "dropoldest"}(pTimeOut_item,
       pTimeOut_time)
   | Complete := ^Start
   | due := due $ 1 init 0 + 1
   | ^due ^= ^Deadline
   | completed := completed $ 1 init 0 + 1
   | ^completed ^= ^Complete
   | (completed_at_dl) := fm(completed, deadline_b)
   | Alarm := when (completed_at_dl < due)
   |)
  where
    boolean start_b, deadline_b;
    integer pStartTimer_frozen, pStartTimer_count, pStartTimer_value,
      pStartTimer_count_s, pStopTimer_frozen, pStopTimer_count,
      pStopTimer_value, pStopTimer_count_s, mode_at_start, pTimeOut_item;
    event b1;
    integer due, completed, completed_at_dl;
  end
  %pragma aadl "ProdConsSys.prProdCons.thProdTimer"%
  %pragma aadl_classifier "thTimer.impl"%;

process th_ProdConsSys_prProdCons_thConsTimer =
  ( ? event Dispatch, Start, Deadline;
    integer pStartTimer;
    event pStartTimer_time;
    integer pStopTimer;
    event pStopTimer_time, pTimeOut_time;
    ! event Complete, Alarm;
    integer pTimeOut;
    )
  (| start_b := true when ^Start
   | deadline_b := true when ^Deadline
   | (pStartTimer_frozen,
       pStartTimer_count) := in_event_port{4,
       "dropoldest"}(pStartTimer,
       pStartTimer_time)
   | (pStartTimer_value) := fm(pStartTimer_frozen, start_b)
   | (pStartTimer_count_s) := fm(pStartTimer_count, start_b)
   | (pStopTimer_frozen,
       pStopTimer_count) := in_event_port{4,
       "dropoldest"}(pStopTimer,
       pStopTimer_time)
   | (pStopTimer_value) := fm(pStopTimer_frozen, start_b)
   | (pStopTimer_count_s) := fm(pStopTimer_count, start_b)
   | mode_at_start := 0 when start_b
   | (b1) := timer{3}(when (pStartTimer_count_s > 0),
       when (pStopTimer_count_s > 0),
       Start)
   | pTimeOut_item := 1 when b1
   | (pTimeOut) := out_event_port{1,
       "dropoldest"}(pTimeOut_item,
       pTimeOut_time)
   | Complete := ^Start
   | due := due $ 1 init 0 + 1
   | ^due ^= ^Deadline
   | completed := completed $ 1 init 0 + 1
   | ^completed ^= ^Complete
   | (completed_at_dl) := fm(completed, deadline_b)
   | Alarm := when (completed_at_dl < due)
   |)
  where
    boolean start_b, deadline_b;
    integer pStartTimer_frozen, pStartTimer_count, pStartTimer_value,
      pStartTimer_count_s, pStopTimer_frozen, pStopTimer_count,
      pStopTimer_value, pStopTimer_count_s, mode_at_start, pTimeOut_item;
    event b1;
    integer due, completed, completed_at_dl;
  end
  %pragma aadl "ProdConsSys.prProdCons.thConsTimer"%
  %pragma aadl_classifier "thTimer.impl"%;

process sched_Processor1 =
  ( ? event tick;
    ! event prProdCons_thConsTimer_dispatch, prProdCons_thConsTimer_start,
        prProdCons_thConsTimer_complete, prProdCons_thConsTimer_deadline,
        prProdCons_thConsumer_dispatch, prProdCons_thConsumer_start,
        prProdCons_thConsumer_complete, prProdCons_thConsumer_deadline,
        prProdCons_thProdTimer_dispatch, prProdCons_thProdTimer_start,
        prProdCons_thProdTimer_complete, prProdCons_thProdTimer_deadline,
        prProdCons_thProducer_dispatch, prProdCons_thProducer_start,
        prProdCons_thProducer_complete, prProdCons_thProducer_deadline;
    )
  (| n := n $ 1 init 0 + 1
   | ^n ^= ^tick
   | ph := (n - 1) modulo 24
   | prProdCons_thConsTimer_dispatch := when (ph = 0 or ph = 8 or ph = 16)
   | prProdCons_thConsTimer_start := when (ph = 2 or ph = 9 or ph = 17)
   | prProdCons_thConsTimer_complete := when (ph = 3 or ph = 10 or ph = 18)
   | prProdCons_thConsTimer_deadline :=
       when (ph = 8 or ph = 16 or ph = 0 and n > 24)
   | prProdCons_thConsumer_dispatch :=
       when (ph = 0 or ph = 6 or ph = 12 or ph = 18)
   | prProdCons_thConsumer_start :=
       when (ph = 1 or ph = 6 or ph = 13 or ph = 19)
   | prProdCons_thConsumer_complete :=
       when (ph = 2 or ph = 7 or ph = 14 or ph = 20)
   | prProdCons_thConsumer_deadline :=
       when (ph = 6 or ph = 12 or ph = 18 or ph = 0 and n > 24)
   | prProdCons_thProdTimer_dispatch := when (ph = 0 or ph = 8 or ph = 16)
   | prProdCons_thProdTimer_start := when (ph = 3 or ph = 10 or ph = 18)
   | prProdCons_thProdTimer_complete := when (ph = 4 or ph = 11 or ph = 19)
   | prProdCons_thProdTimer_deadline :=
       when (ph = 8 or ph = 16 or ph = 0 and n > 24)
   | prProdCons_thProducer_dispatch :=
       when (ph = 0 or ph = 4 or ph = 8 or ph = 12 or ph = 16 or ph = 20)
   | prProdCons_thProducer_start :=
       when (ph = 0 or ph = 4 or ph = 8 or ph = 12 or ph = 16 or ph = 20)
   | prProdCons_thProducer_complete :=
       when (ph = 1 or ph = 5 or ph = 9 or ph = 13 or ph = 17 or ph = 21)
   | prProdCons_thProducer_deadline :=
       when (ph = 4 or ph = 8 or ph = 12 or ph = 16 or ph = 20 or
             ph = 0 and n > 24)
   |)
  where
    integer n, ph;
  end
  %pragma scheduler "policy EDF, hyperperiod 24000 us, base 1000 us"%;

process ProdConsSys =
  ( ? event tick;
    integer env_pGo;
    ! integer display_pProdAlarm, display_pConsAlarm, display_pData;
    event Alarm;
    )
  (| (prProdCons_thConsTimer_dispatch,
       prProdCons_thConsTimer_start,
       prProdCons_thConsTimer_complete,
       prProdCons_thConsTimer_deadline,
       prProdCons_thConsumer_dispatch,
       prProdCons_thConsumer_start,
       prProdCons_thConsumer_complete,
       prProdCons_thConsumer_deadline,
       prProdCons_thProdTimer_dispatch,
       prProdCons_thProdTimer_start,
       prProdCons_thProdTimer_complete,
       prProdCons_thProdTimer_deadline,
       prProdCons_thProducer_dispatch,
       prProdCons_thProducer_start,
       prProdCons_thProducer_complete,
       prProdCons_thProducer_deadline) := sched_Processor1(tick)
   | prProdCons_Queue_push ::= prProdCons_thProducer_reqQueue_w
   | prProdCons_Queue_pop := ^prProdCons_thConsumer_reqQueue_pop
   | (prProdCons_Queue_data,
       prProdCons_Queue_size) := fifo_reset{8,
       "dropoldest"}(prProdCons_Queue_push,
       prProdCons_Queue_pop,
       when false)
   | (prProdCons_thProducer_done,
       prProdCons_thProducer_alarm,
       prProdCons_thProducer_pProdStartTimer,
       prProdCons_thProducer_pProdStopTimer,
       prProdCons_thProducer_reqQueue_w) := th_ProdConsSys_prProdCons_thProducer(prProdCons_thProducer_dispatch,
       prProdCons_thProducer_start,
       prProdCons_thProducer_deadline,
       env_pGo,
       prProdCons_thProducer_dispatch,
       prProdCons_thProdTimer_pTimeOut,
       prProdCons_thProducer_dispatch,
       prProdCons_thProducer_complete,
       prProdCons_thProducer_complete)
   | (prProdCons_thConsumer_done,
       prProdCons_thConsumer_alarm,
       prProdCons_thConsumer_pConsStartTimer,
       prProdCons_thConsumer_pConsStopTimer,
       prProdCons_thConsumer_pConsOut,
       prProdCons_thConsumer_reqQueue_pop) := th_ProdConsSys_prProdCons_thConsumer(prProdCons_thConsumer_dispatch,
       prProdCons_thConsumer_start,
       prProdCons_thConsumer_deadline,
       env_pGo,
       prProdCons_thConsumer_dispatch,
       prProdCons_thConsTimer_pTimeOut,
       prProdCons_thConsumer_dispatch,
       prProdCons_thConsumer_complete,
       prProdCons_thConsumer_complete,
       prProdCons_thConsumer_complete,
       prProdCons_Queue_data)
   | (prProdCons_thProdTimer_done,
       prProdCons_thProdTimer_alarm,
       prProdCons_thProdTimer_pTimeOut) := th_ProdConsSys_prProdCons_thProdTimer(prProdCons_thProdTimer_dispatch,
       prProdCons_thProdTimer_start,
       prProdCons_thProdTimer_deadline,
       prProdCons_thProducer_pProdStartTimer,
       prProdCons_thProdTimer_dispatch,
       prProdCons_thProducer_pProdStopTimer,
       prProdCons_thProdTimer_dispatch,
       prProdCons_thProdTimer_complete)
   | (prProdCons_thConsTimer_done,
       prProdCons_thConsTimer_alarm,
       prProdCons_thConsTimer_pTimeOut) := th_ProdConsSys_prProdCons_thConsTimer(prProdCons_thConsTimer_dispatch,
       prProdCons_thConsTimer_start,
       prProdCons_thConsTimer_deadline,
       prProdCons_thConsumer_pConsStartTimer,
       prProdCons_thConsTimer_dispatch,
       prProdCons_thConsumer_pConsStopTimer,
       prProdCons_thConsTimer_dispatch,
       prProdCons_thConsTimer_complete)
   | display_pProdAlarm := prProdCons_thProdTimer_pTimeOut
   | display_pConsAlarm := prProdCons_thConsTimer_pTimeOut
   | display_pData := prProdCons_thConsumer_pConsOut
   | Alarm :=
       ((prProdCons_thProducer_alarm default prProdCons_thConsumer_alarm) default
        prProdCons_thProdTimer_alarm) default
       prProdCons_thConsTimer_alarm
   |)
  where
    event prProdCons_thConsTimer_dispatch, prProdCons_thConsTimer_start,
      prProdCons_thConsTimer_complete, prProdCons_thConsTimer_deadline,
      prProdCons_thConsumer_dispatch, prProdCons_thConsumer_start,
      prProdCons_thConsumer_complete, prProdCons_thConsumer_deadline,
      prProdCons_thProdTimer_dispatch, prProdCons_thProdTimer_start,
      prProdCons_thProdTimer_complete, prProdCons_thProdTimer_deadline,
      prProdCons_thProducer_dispatch, prProdCons_thProducer_start,
      prProdCons_thProducer_complete, prProdCons_thProducer_deadline;
    integer prProdCons_Queue_push;
    event prProdCons_Queue_pop;
    integer prProdCons_Queue_data, prProdCons_Queue_size,
      prProdCons_thProducer_reqQueue_w,
      prProdCons_thProducer_pProdStartTimer,
      prProdCons_thProducer_pProdStopTimer;
    event prProdCons_thProducer_alarm, prProdCons_thProducer_done,
      prProdCons_thConsumer_reqQueue_pop;
    integer prProdCons_thConsumer_pConsStartTimer,
      prProdCons_thConsumer_pConsStopTimer, prProdCons_thConsumer_pConsOut;
    event prProdCons_thConsumer_alarm, prProdCons_thConsumer_done;
    integer prProdCons_thProdTimer_pTimeOut;
    event prProdCons_thProdTimer_alarm, prProdCons_thProdTimer_done;
    integer prProdCons_thConsTimer_pTimeOut;
    event prProdCons_thConsTimer_alarm, prProdCons_thConsTimer_done;
  end
  %pragma aadl "ProdConsSys"%;