(* Benchmark & artifact harness.

   The paper (DATE'13) is a tool paper: its evaluation artifacts are
   Figures 1-6, the Sec. V scheduling of the 4/6/8/8 ms thread set, and
   the scalability claims of Sec. IV-E. This harness regenerates every
   artifact (sections FIG1..FIG6, SCHED, DETERM, DEADLOCK, PROFILING)
   and measures the scalability claims with Bechamel
   (clock-calculus/N, translate/N, simulate, affine ops, parser, plus
   the ablations listed in DESIGN.md).

   Run with: dune exec bench/main.exe            (everything)
             dune exec bench/main.exe -- quick   (artifacts only) *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module K = Signal_lang.Kernel
module P = Polychrony.Pipeline
module CS = Polychrony.Case_study
module Ssched = Sched.Static_sched
module T = Sched.Task

let section name = Format.printf "@.======== %s ========@." name

let analyzed registry =
  match P.analyze ~registry CS.aadl_source with
  | Ok a -> a
  | Error m -> failwith (Putil.Diag.list_to_string m)

(* ------------------------------------------------------------------ *)
(* FIG 1: the prProdCons process in AADL (instance tree)               *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "FIG 1: ProducerConsumer instance model";
  Format.printf "%a@." Aadl.Instance.pp_tree (CS.instance ())

(* ------------------------------------------------------------------ *)
(* FIG 2: thread execution-time model — values arriving after          *)
(* Input_Time are processed at the next Input_Time                     *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "FIG 2: input freezing across dispatch frames";
  let p =
    B.proc ~name:"fig2"
      ~inputs:[ Ast.var "arr" Types.Tint; Ast.var "input_time" Types.Tevent ]
      ~outputs:[ Ast.var "frozen" Types.Tint; Ast.var "cnt" Types.Tint ]
      B.[ inst ~params:[ Types.Vint 4; Types.Vstring "dropoldest" ] ~label:"port" "in_event_port"
            [ v "arr"; v "input_time" ] [ "frozen"; "cnt" ] ]
  in
  let kp = N.process_exn p in
  (* value 1 arrives before the first Input_Time; values 2 and 3 arrive
     after it (paper Fig. 2) and are only visible at the next one *)
  let stimuli =
    [ [ ("arr", Types.Vint 1) ];
      [ ("input_time", Types.Vevent) ];
      [ ("arr", Types.Vint 2) ];
      [ ("arr", Types.Vint 3) ];
      [];
      [ ("input_time", Types.Vevent) ];
      [];
      [ ("input_time", Types.Vevent) ] ]
  in
  match Polysim.Engine.run kp ~stimuli with
  | Error m -> failwith m
  | Ok tr ->
    Polysim.Trace.chronogram Format.std_formatter tr;
    Format.printf
      "values 2,3 arrive after the first Input_Time: frozen only at the \
       second (count=2)@."

(* ------------------------------------------------------------------ *)
(* FIG 3 / FIG 4: generated SIGNAL models                              *)
(* ------------------------------------------------------------------ *)

let fig3_fig4 () =
  let a = analyzed CS.registry_nominal in
  let prog = a.P.translation.Trans.System_trans.program in
  section "FIG 3: system-level SIGNAL model (top process, instances)";
  (* print only the instance statements of the top process: the Fig. 3
     structure (processor scheduler + thread + shared data instances) *)
  let top = a.P.translation.Trans.System_trans.top in
  List.iter
    (fun st ->
      match Ast.desc st with
      | Ast.Sinstance i ->
        Format.printf "  %s: %s(...)@." i.Ast.inst_label i.Ast.inst_proc
      | Ast.Sdef _ | Ast.Spartial _ | Ast.Sclk_eq _ | Ast.Sclk_le _
      | Ast.Sclk_ex _ -> ())
    top.Ast.body;
  section "FIG 4: thProducer thread model in SIGNAL";
  (match Ast.find_process prog "th_ProdConsSys_prProdCons_thProducer" with
   | Some p -> Format.printf "%a@." Signal_lang.Pp.pp_process p
   | None -> failwith "producer model missing");
  (* the complete generated module, as an inspectable artifact (under
     the temp dir so bench runs leave no strays in the work tree) *)
  let sig_path =
    Filename.concat (Filename.get_temp_dir_name ()) "prodcons.sig"
  in
  let oc = open_out sig_path in
  output_string oc (Signal_lang.Pp.program_to_string prog);
  close_out oc;
  Format.printf "@.full SIGNAL module written to %s@." sig_path

(* ------------------------------------------------------------------ *)
(* FIG 5: the in event port process                                    *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "FIG 5: in event port model (in_fifo + frozen_fifo)";
  Format.printf "%a@." Signal_lang.Pp.pp_process
    Signal_lang.Stdproc.in_event_port

(* ------------------------------------------------------------------ *)
(* FIG 6: shared data as a fifo_reset with partial definitions          *)
(* ------------------------------------------------------------------ *)

let contains s needle =
  let nh = String.length s and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
  go 0

let fig6 () =
  section "FIG 6: shared data Queue translation";
  let a = analyzed CS.registry_nominal in
  let top = a.P.translation.Trans.System_trans.top in
  List.iter
    (fun stmt ->
      let s = Signal_lang.Pp.stmt_to_string stmt in
      if contains s "Queue" then Format.printf "  %s@." s)
    top.Ast.body;
  (* and its runtime behaviour *)
  match P.simulate ~hyperperiods:2 a with
  | Error m -> failwith (Putil.Diag.list_to_string m)
  | Ok tr ->
    Polysim.Trace.chronogram
      ~signals:
        [ "prProdCons_thProducer_reqQueue_w"; "prProdCons_Queue_push";
          "prProdCons_Queue_data"; "prProdCons_Queue_size" ]
      Format.std_formatter tr

(* ------------------------------------------------------------------ *)
(* SCHED: Sec. V, 4/6/8/8 ms threads                                   *)
(* ------------------------------------------------------------------ *)

let sched_section () =
  section "SCHED: thread-level scheduler synthesis (Sec. IV-D / V)";
  let tasks =
    List.map
      (fun (name, period) -> T.make ~name ~period_us:period ~wcet_us:1000 ())
      CS.thread_periods_us
  in
  Format.printf "hyper-period: %d us (lcm of 4,6,8,8 ms)@."
    (T.hyperperiod_us tasks);
  List.iter
    (fun policy ->
      match Ssched.synthesize ~policy tasks with
      | Ok s ->
        Format.printf "@.%a@.%a@.%a@." Ssched.pp_schedule s Ssched.pp_gantt s
          Sched.Export.pp_export s;
        Format.printf "thProdTimer/thConsTimer dispatch synchronizable: %b@."
          (Sched.Export.synchronizable s "thProdTimer" "thConsTimer" Ssched.Dispatch)
      | Error f ->
        Format.printf "%s: infeasible (%s)@."
          (Ssched.policy_to_string policy)
          f.Ssched.f_message)
    [ Ssched.Edf; Ssched.Rm ]

(* ------------------------------------------------------------------ *)
(* DETERM: Sec. V-C determinism identification                         *)
(* ------------------------------------------------------------------ *)

let determ_section () =
  section "DETERM: automaton determinism (Sec. V-C)";
  let mk_model ~prioritized =
    let guard2 =
      if prioritized then B.(v "d" && not_ (v "c")) else B.(v "d")
    in
    B.proc
      ~name:(if prioritized then "with_priorities" else "no_priorities")
      ~inputs:[ Ast.var "x" Types.Tint; Ast.var "c" Types.Tbool;
                Ast.var "d" Types.Tbool ]
      ~outputs:[ Ast.var "state" Types.Tint ]
      B.[ clk (v "c") ^= clk (v "d");
          "state" =:: when_ (v "x") (v "c");
          "state" =:: when_ (v "x" + i 1) guard2 ]
  in
  List.iter
    (fun prioritized ->
      let kp = N.process_exn (mk_model ~prioritized) in
      let calc = Clocks.Calculus.analyze kp in
      let r = Analysis.Determinism.analyze calc kp in
      Format.printf "%s: %a@."
        (if prioritized then "transitions with priorities"
         else "transitions without priorities")
        Analysis.Determinism.pp_report r)
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* DEADLOCK                                                            *)
(* ------------------------------------------------------------------ *)

let deadlock_section () =
  section "DEADLOCK: causality analysis";
  let cyclic =
    B.proc ~name:"cyclic"
      ~inputs:[ Ast.var "x" Types.Tint ]
      ~outputs:[ Ast.var "y" Types.Tint ]
      ~locals:[ Ast.var "w" Types.Tint ]
      B.[ "y" := v "w" + v "x"; "w" := v "y" + i 1 ]
  in
  let kp = N.process_exn cyclic in
  Format.printf "crafted cycle: %a@." Analysis.Deadlock.pp_report
    (Analysis.Deadlock.analyze kp);
  let a = analyzed CS.registry_nominal in
  Format.printf "translated case study: %a@." Analysis.Deadlock.pp_report
    a.P.deadlock

(* ------------------------------------------------------------------ *)
(* PROFILING (ref [16])                                                *)
(* ------------------------------------------------------------------ *)

let profiling_section () =
  section "PROFILING: cost-model timing evaluation (ref [16])";
  let a = analyzed CS.registry_nominal in
  match P.simulate ~hyperperiods:4 a with
  | Error m -> failwith (Putil.Diag.list_to_string m)
  | Ok tr ->
    let counts x = Polysim.Trace.present_count tr x in
    let r = Analysis.Profiling.with_counts ~counts a.P.kernel in
    Format.printf "%a@." Analysis.Profiling.pp_report r;
    Format.printf "estimated cost per hyper-period: %d units@."
      (r.Analysis.Profiling.total_weighted / 4)

(* ------------------------------------------------------------------ *)
(* Workload generators for the scalability benches                     *)
(* ------------------------------------------------------------------ *)

(* a when-sampling chain of depth n: one synchronization class per
   level, exercising the clock calculus (claim C1) *)
let chain_process n =
  let locals =
    List.init n (fun i -> Ast.var (Printf.sprintf "l%d" i) Types.Tint)
  in
  let body =
    B.("l0" := v "x")
    :: List.init (n - 1) (fun i ->
           let dst = Printf.sprintf "l%d" (i + 1) in
           let src = Printf.sprintf "l%d" i in
           B.(dst := when_ (v src) (v "c")))
    @
    let last = Printf.sprintf "l%d" (n - 1) in
    [ B.("y" := v last) ]
  in
  B.proc
    ~name:(Printf.sprintf "chain%d" n)
    ~locals
    ~inputs:[ Ast.var "x" Types.Tint; Ast.var "c" Types.Tbool ]
    ~outputs:[ Ast.var "y" Types.Tint ]
    body

(* a scaled ProducerConsumer: n independent producer/consumer pairs,
   each with its own queue, on one processor (claim C2) *)
let scaled_prodcons n =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "package Scaled\npublic\n";
  pf "  data Cell properties Queue_Size => 4; end Cell;\n";
  pf "  data implementation Cell.impl end Cell.impl;\n";
  for k = 0 to n - 1 do
    pf "  thread prod%d features\n" k;
    pf "      q: requires data access Cell {Access_Right => write_only;};\n";
    pf "    properties Dispatch_Protocol => Periodic; Period => 4 ms;\n";
    pf "      Compute_Execution_Time => 1 us;\n";
    pf "  end prod%d;\n" k;
    pf "  thread implementation prod%d.impl end prod%d.impl;\n" k k;
    pf "  thread cons%d features\n" k;
    pf "      q: requires data access Cell {Access_Right => read_only;};\n";
    pf "      o: out event data port;\n";
    pf "    properties Dispatch_Protocol => Periodic; Period => 6 ms;\n";
    pf "      Compute_Execution_Time => 1 us;\n";
    pf "  end cons%d;\n" k;
    pf "  thread implementation cons%d.impl end cons%d.impl;\n" k k
  done;
  pf "  process host features\n";
  for k = 0 to n - 1 do
    pf "    out%d: out event data port;\n" k
  done;
  pf "  end host;\n";
  pf "  process implementation host.impl\n    subcomponents\n";
  for k = 0 to n - 1 do
    pf "      p%d: thread prod%d.impl;\n" k k;
    pf "      c%d: thread cons%d.impl;\n" k k;
    pf "      q%d: data Cell.impl;\n" k
  done;
  pf "    connections\n";
  for k = 0 to n - 1 do
    pf "      ka%d: data access q%d -> p%d.q;\n" k k k;
    pf "      kb%d: data access q%d -> c%d.q;\n" k k k;
    pf "      kc%d: port c%d.o -> out%d;\n" k k k
  done;
  pf "  end host.impl;\n";
  pf "  processor cpu end cpu;\n";
  pf "  processor implementation cpu.impl end cpu.impl;\n";
  pf "  system sink features\n";
  for k = 0 to n - 1 do
    pf "    d%d: in event data port;\n" k
  done;
  pf "  end sink;\n";
  pf "  system implementation sink.impl end sink.impl;\n";
  pf "  system rig end rig;\n";
  pf "  system implementation rig.impl\n    subcomponents\n";
  pf "      h: process host.impl;\n";
  pf "      cpu0: processor cpu.impl;\n";
  pf "      s: system sink.impl;\n";
  pf "    connections\n";
  for k = 0 to n - 1 do
    pf "      sk%d: port h.out%d -> s.d%d;\n" k k k
  done;
  pf "    properties\n";
  pf "      Actual_Processor_Binding => reference (cpu0) applies to h;\n";
  pf "  end rig.impl;\n";
  pf "end Scaled;\n";
  Buffer.contents buf

let translate_scaled src =
  let pkg = Result.get_ok (Aadl.Parser.parse_package src) in
  let inst = Result.get_ok (Aadl.Instance.instantiate pkg ~root:"rig.impl") in
  Result.get_ok (Trans.System_trans.translate inst)

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                   *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* all (test, ns/run) rows measured in this process, for --json *)
let all_rows : (string * float) list ref = ref []

let run_benchs name tests =
  section name;
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:None
      ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> (test, est) :: acc
        | Some _ | None -> acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  all_rows := !all_rows @ rows;
  List.iter
    (fun (test, ns) ->
      if ns >= 1e9 then Format.printf "  %-52s %10.3f  s/run@." test (ns /. 1e9)
      else if ns >= 1e6 then
        Format.printf "  %-52s %10.3f ms/run@." test (ns /. 1e6)
      else if ns >= 1e3 then
        Format.printf "  %-52s %10.3f us/run@." test (ns /. 1e3)
      else Format.printf "  %-52s %10.1f ns/run@." test ns)
    rows

(* C1: clock calculus over N-signal chains *)
let bench_clock_calculus () =
  let sizes = [ 100; 500; 2000; 4000 ] in
  let tests =
    List.map
      (fun n ->
        let kp = N.process_exn (chain_process n) in
        Test.make
          ~name:(Printf.sprintf "clock-calculus/%d" n)
          (Staged.stage (fun () -> ignore (Clocks.Calculus.analyze kp))))
      sizes
  in
  run_benchs "C1: clock calculus scaling (claim: several thousand clocks)"
    tests

(* C2: translation of scaled models *)
let bench_translate () =
  let sizes = [ 1; 4; 16; 64 ] in
  let tests =
    List.map
      (fun n ->
        let src = scaled_prodcons n in
        Test.make
          ~name:(Printf.sprintf "translate/%d-pairs" n)
          (Staged.stage (fun () -> ignore (translate_scaled src))))
      sizes
  in
  run_benchs "C2: ASME2SSME translation scaling" tests

(* parser throughput on the same scaled sources *)
let bench_parser () =
  let tests =
    List.map
      (fun n ->
        let src = scaled_prodcons n in
        Test.make
          ~name:
            (Printf.sprintf "parse/%d-pairs (%d bytes)" n (String.length src))
          (Staged.stage (fun () ->
               ignore (Result.get_ok (Aadl.Parser.parse_package src)))))
      [ 4; 16; 64 ]
  in
  run_benchs "parser throughput" tests

(* C5: simulation throughput on the translated case study —
   interpreter vs clock-directed compiled step (ref [15]) *)
let bench_simulate () =
  let a = analyzed CS.registry_nominal in
  let kp = a.P.kernel in
  let stim_at t =
    ("tick", Types.Vevent)
    :: (if t = 0 then [ ("env_pGo", Types.Vint 1) ] else [])
  in
  let interpreted =
    Test.make ~name:"simulate/interpreter(24-instants)"
      (Staged.stage (fun () ->
           let eng = Polysim.Engine.create kp in
           for t = 0 to 23 do
             match Polysim.Engine.step eng ~stimulus:(stim_at t) with
             | Ok _ -> ()
             | Error m -> failwith m
           done))
  in
  let compiled =
    Test.make ~name:"simulate/compiled(24-instants)"
      (Staged.stage (fun () ->
           match Polysim.Compile.compile kp with
           | Error m -> failwith m
           | Ok c ->
             let tick = Option.get (Polysim.Compile.signal_index c "tick") in
             let go = Option.get (Polysim.Compile.signal_index c "env_pGo") in
             for t = 0 to 23 do
               Polysim.Compile.stim_clear c;
               Polysim.Compile.set_stim c tick Types.Vevent;
               if t = 0 then Polysim.Compile.set_stim c go (Types.Vint 1);
               match Polysim.Compile.step_prepared c with
               | Ok () -> ()
               | Error m -> failwith m
             done))
  in
  let batched =
    (* resolve the dense stimulus indices once: they are plan-derived,
       so any instance of the memoized plan shares them *)
    let c0 = Result.get_ok (Polysim.Compile.compile kp) in
    let tick = Option.get (Polysim.Compile.signal_index c0 "tick") in
    let go = Option.get (Polysim.Compile.signal_index c0 "env_pGo") in
    Test.make ~name:"simulate/compiled-batched(24-instants)"
      (Staged.stage (fun () ->
           match Polysim.Compile.compile kp with
           | Error m -> failwith m
           | Ok c -> (
             match
               Polysim.Compile.run_batched c ~n:24 ~fill:(fun c t ->
                   Polysim.Compile.set_stim c tick Types.Vevent;
                   if t = 0 then Polysim.Compile.set_stim c go (Types.Vint 1))
             with
             | Ok () -> ()
             | Error m -> failwith m)))
  in
  let compile_only =
    Test.make ~name:"simulate/compile-time"
      (Staged.stage (fun () ->
           match Polysim.Compile.compile kp with
           | Ok _ -> ()
           | Error m -> failwith m))
  in
  let compile_cold =
    Test.make ~name:"simulate/compile-cold"
      (Staged.stage (fun () ->
           match Polysim.Compile.compile_uncached kp with
           | Ok _ -> ()
           | Error m -> failwith m))
  in
  let codegen =
    Test.make ~name:"simulate/c-codegen(text)"
      (Staged.stage (fun () ->
           match Polysim.Compile.compile kp with
           | Error m -> failwith m
           | Ok c -> (
             match Polysim.Compile.to_c c with
             | Ok src -> ignore (String.length src)
             | Error m -> failwith m)))
  in
  run_benchs "C5: polychronous simulation throughput (ref [15] ablation)"
    [ interpreted; compiled; batched; compile_only; compile_cold; codegen ];
  (* the headline acceptance criterion: the compiled batched loop must
     beat the fixpoint interpreter by an order of magnitude on the
     hyper-period workload (same hard-floor convention as the
     edit-recheck bench) *)
  let ns name =
    List.assoc_opt
      ("C5: polychronous simulation throughput (ref [15] ablation)/" ^ name)
      !all_rows
  in
  match
    ( ns "simulate/interpreter(24-instants)",
      ns "simulate/compiled-batched(24-instants)" )
  with
  | Some interp_ns, Some batched_ns ->
    Format.printf "  compiled-batched speedup: %.1fx (acceptance floor: 10x)@."
      (interp_ns /. batched_ns);
    if interp_ns < 10.0 *. batched_ns then
      failwith "simulate bench: compiled-batched under the 10x floor"
  | _ -> failwith "simulate bench: speedup rows missing"

(* C6: lockstep multi-scenario stepping — one compiled plan advancing
   K striped state copies vs K independent batched runs. The lockstep
   rows share closure code and plan metadata across scenarios, so the
   amortized per-scenario cost should fall as K grows. *)
let bench_scenarios () =
  let a = analyzed CS.registry_nominal in
  let kp = a.P.kernel in
  let horizon = 24 in
  let c0 = Result.get_ok (Polysim.Compile.compile kp) in
  let tick = Option.get (Polysim.Compile.signal_index c0 "tick") in
  let go = Option.get (Polysim.Compile.signal_index c0 "env_pGo") in
  (* scenario s delays the environment arrival by s base ticks *)
  let fill_at t c s =
    Polysim.Compile.set_stim c tick Types.Vevent;
    if t = s mod horizon then Polysim.Compile.set_stim c go (Types.Vint 1)
  in
  let lockstep k =
    Test.make ~name:(Printf.sprintf "scenarios/lockstep-%d(24-instants)" k)
      (Staged.stage (fun () ->
           match Polysim.Compile.compile_scenarios kp ~scenarios:k with
           | Error m -> failwith m
           | Ok c ->
             for t = 0 to horizon - 1 do
               match Polysim.Compile.step_many c ~fill:(fill_at t) with
               | Ok () -> ()
               | Error m -> failwith m
             done))
  in
  let independent k =
    Test.make ~name:(Printf.sprintf "scenarios/independent-%d(24-instants)" k)
      (Staged.stage (fun () ->
           for s = 0 to k - 1 do
             match Polysim.Compile.compile kp with
             | Error m -> failwith m
             | Ok c -> (
               match
                 Polysim.Compile.run_batched c ~n:horizon ~fill:(fun c t ->
                     fill_at t c s)
               with
               | Ok () -> ()
               | Error m -> failwith m)
           done))
  in
  run_benchs "C6: lockstep multi-scenario stepping"
    [ lockstep 1; lockstep 8; lockstep 64; independent 64 ];
  let ns name =
    List.assoc_opt ("C6: lockstep multi-scenario stepping/" ^ name) !all_rows
  in
  match
    (ns "scenarios/lockstep-64(24-instants)",
     ns "scenarios/independent-64(24-instants)")
  with
  | Some lock, Some indep ->
    Format.printf
      "  lockstep-64: %.1f us amortized per scenario (independent: %.1f us)@."
      (lock /. 64. /. 1e3) (indep /. 64. /. 1e3)
  | _ -> ()

(* C4: affine clock calculus micro-ops *)
let bench_affine () =
  let open Clocks.Affine in
  let r1 = relation ~n:3 ~phi:5 ~d:7 and r2 = relation ~n:2 ~phi:1 ~d:9 in
  let c1 = periodic ~period:12 ~offset:5 in
  let c2 = periodic ~period:18 ~offset:11 in
  let w1 = Clocks.Pword.of_periodic c1 and w2 = Clocks.Pword.of_periodic c2 in
  run_benchs "C4: affine clock calculus operations"
    [ Test.make ~name:"affine/compose"
        (Staged.stage (fun () -> ignore (compose r1 r2)));
      Test.make ~name:"affine/intersect"
        (Staged.stage (fun () -> ignore (intersect c1 c2)));
      Test.make ~name:"pword/land"
        (Staged.stage (fun () -> ignore (Clocks.Pword.land_ w1 w2)));
      Test.make ~name:"pword/equal"
        (Staged.stage (fun () -> ignore (Clocks.Pword.equal w1 w2))) ]

(* ablations from DESIGN.md *)
let bench_ablations () =
  (* hierarchy: structural inclusion matrix vs Φ-strengthened *)
  let a = analyzed CS.registry_nominal in
  let calc = Lazy.force a.P.calc in
  let mgr = Clocks.Calculus.manager calc in
  let reprs = Clocks.Calculus.class_reprs calc in
  let clocks =
    Array.of_list
      (List.map (fun (c, _) -> Clocks.Calculus.clock_of_class_id calc c) reprs)
  in
  let n = Array.length clocks in
  let phi = Clocks.Calculus.context calc in
  let structural () =
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        ignore (Clocks.Bdd.implies mgr clocks.(i) clocks.(j))
      done
    done
  in
  let strengthened () =
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        ignore
          (Clocks.Bdd.is_zero
             (Clocks.Bdd.and_ mgr phi
                (Clocks.Bdd.diff mgr clocks.(i) clocks.(j))))
      done
    done
  in
  (* scheduler policies on a 10-task set *)
  let tasks =
    List.init 10 (fun i ->
        T.make
          ~name:(Printf.sprintf "t%d" i)
          ~period_us:((2 + (i mod 4)) * 2000)
          ~wcet_us:400 ())
  in
  (* fifo primitive vs kernel-encoded memory *)
  let fifo_model =
    B.proc ~name:"bf"
      ~inputs:[ Ast.var "x" Types.Tint; Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "d" Types.Tint; Ast.var "s" Types.Tint ]
      B.[ inst ~params:[ Types.Vint 8; Types.Vstring "dropoldest" ] ~label:"q" "fifo" [ v "x"; v "e" ]
            [ "d"; "s" ] ]
  in
  let fm_model =
    B.proc ~name:"bm"
      ~inputs:[ Ast.var "x" Types.Tint; Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "d" Types.Tint ]
      ~locals:[ Ast.var "eb" Types.Tbool ]
      B.[ "eb" := when_ (b true) (clk (v "e"));
          inst ~label:"m" "fm" [ v "x"; v "eb" ] [ "d" ] ]
  in
  let kp_fifo = N.process_exn fifo_model in
  let kp_fm = N.process_exn fm_model in
  let drive kp =
    let eng = Polysim.Engine.create kp in
    for t = 0 to 63 do
      let stim =
        if t mod 2 = 0 then [ ("x", Types.Vint t) ]
        else [ ("e", Types.Vevent) ]
      in
      match Polysim.Engine.step eng ~stimulus:stim with
      | Ok _ -> ()
      | Error m -> failwith m
    done
  in
  (* kernel optimizer (ref [15] passes): size + simulation effect *)
  let a2 = analyzed CS.registry_nominal in
  let kp_raw = a2.P.kernel in
  let kp_opt = Signal_lang.Optimize.optimize kp_raw in
  Format.printf "  optimizer: %s -> %s@."
    (Signal_lang.Optimize.stats kp_raw)
    (Signal_lang.Optimize.stats kp_opt);
  let drive_sys kp =
    let eng = Polysim.Engine.create kp in
    for t = 0 to 23 do
      let stim =
        ("tick", Types.Vevent)
        :: (if t = 0 then [ ("env_pGo", Types.Vint 1) ] else [])
      in
      match Polysim.Engine.step eng ~stimulus:stim with
      | Ok _ -> ()
      | Error m -> failwith m
    done
  in
  run_benchs "ablations (DESIGN.md)"
    [ Test.make ~name:"ablation/simulate-raw-kernel"
        (Staged.stage (fun () -> drive_sys kp_raw));
      Test.make ~name:"ablation/simulate-optimized-kernel"
        (Staged.stage (fun () -> drive_sys kp_opt));
      Test.make ~name:"ablation/hierarchy-structural" (Staged.stage structural);
      Test.make ~name:"ablation/hierarchy-phi-strengthened"
        (Staged.stage strengthened);
      Test.make ~name:"ablation/sched-edf"
        (Staged.stage (fun () -> ignore (Ssched.synthesize ~policy:Ssched.Edf tasks)));
      Test.make ~name:"ablation/sched-rm"
        (Staged.stage (fun () -> ignore (Ssched.synthesize ~policy:Ssched.Rm tasks)));
      Test.make ~name:"ablation/sched-fifo"
        (Staged.stage (fun () -> ignore (Ssched.synthesize ~policy:Ssched.Fifo tasks)));
      Test.make ~name:"ablation/fifo-primitive(64-instants)"
        (Staged.stage (fun () -> drive kp_fifo));
      Test.make ~name:"ablation/fm-kernel(64-instants)"
        (Staged.stage (fun () -> drive kp_fm)) ]

(* C8: domain-parallel bounded exploration. The workload is n
   independent event counters: after d instants each counter ranges
   over 0..d, so the explorer visits (d+1)^n - ish distinct states —
   n=4, depth=11 gives 14641, comfortably past the 10k mark. Each row
   is one full check timed wall-clock (a check takes seconds, far past
   Bechamel's sampling regime); verdicts, counterexamples and state
   counts are asserted identical across job counts and against the
   sequential DFS. *)
let multi_counter_process n =
  B.proc
    ~name:(Printf.sprintf "mcount%d" n)
    ~inputs:
      (List.init n (fun i -> Ast.var (Printf.sprintf "e%d" i) Types.Tevent))
    ~outputs:
      (List.init n (fun i -> Ast.var (Printf.sprintf "n%d" i) Types.Tint))
    (List.init n (fun i ->
         B.inst
           ~label:(Printf.sprintf "c%d" i)
           "counter"
           [ B.v (Printf.sprintf "e%d" i) ]
           [ Printf.sprintf "n%d" i ]))

let bench_explore () =
  section "C8: domain-parallel bounded exploration";
  let n = 4 and depth = 11 in
  let kp = N.process_exn (multi_counter_process n) in
  let inputs =
    List.init n (fun i ->
        (Printf.sprintf "e%d" i, [ None; Some Types.Vevent ]))
  in
  let safe _ = true in
  (* violated variant: counter 0 reaches 3 — exercises counterexample
     determinism across job counts *)
  let unsafe present = List.assoc_opt "n0" present <> Some (Types.Vint 3) in
  (* warm the plan memo so rows measure exploration, not compilation *)
  (match Polysim.Explore.check ~depth:1 ~jobs:1 ~inputs ~safe kp with
   | Ok _ -> ()
   | Error m -> failwith (Putil.Diag.to_string m));
  let reference = ref None in
  List.iter
    (fun jobs ->
      let t0 = Unix.gettimeofday () in
      let r = Polysim.Explore.check ~depth ~jobs ~inputs ~safe kp in
      let dt_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      match r with
      | Error m -> failwith (Putil.Diag.to_string m)
      | Ok (v, states) ->
        let cex =
          match Polysim.Explore.check ~depth ~jobs ~inputs ~safe:unsafe kp with
          | Ok (Polysim.Explore.Violated trail, _) -> trail
          | Ok (Polysim.Explore.Holds, _) ->
            failwith "explore bench: violation not found"
          | Error m -> failwith (Putil.Diag.to_string m)
        in
        (match !reference with
         | None -> reference := Some (v, states, cex)
         | Some (v0, s0, cex0) ->
           if v0 <> v || s0 <> states then
             failwith
               (Printf.sprintf
                  "explore/%d-jobs diverged from 1-jobs: %d vs %d states"
                  jobs states s0);
           if cex0 <> cex then
             failwith
               (Printf.sprintf
                  "explore/%d-jobs: counterexample differs from 1-jobs" jobs));
        let name = Printf.sprintf "explore/%d-jobs" jobs in
        all_rows := !all_rows @ [ (name, dt_ns) ];
        Format.printf "  %-52s %10.3f ms/run  (%d states, depth %d)@." name
          (dt_ns /. 1e6) states depth)
    [ 1; 2; 4 ];
  (* the parallel search against the sequential reference semantics *)
  match Polysim.Explore.check_dfs ~depth ~inputs ~safe:unsafe kp, !reference with
  | Ok (Polysim.Explore.Violated _, _), Some _ ->
    Format.printf "  verdicts identical across 1/2/4 jobs and DFS@."
  | Ok _, _ -> failwith "explore bench: DFS verdict differs"
  | Error m, _ -> failwith (Putil.Diag.to_string m)

let bench_edit_recheck () =
  section "C9: digest-driven incremental edit-recheck";
  let replace_once ~sub ~by s =
    let n = String.length s and m = String.length sub in
    let rec find i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i ->
      Some (String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m))
  in
  let src = CS.aadl_source in
  let edited =
    match replace_once ~sub:"Period => 4 ms" ~by:"Period => 5 ms" src with
    | Some s -> s
    | None -> failwith "edit-recheck bench: period pattern not found"
  in
  let registry = CS.registry_nominal in
  (* External scheduler mode: per-task control events are inputs driven
     from the schedule tables, so a period edit leaves the generated
     program (hence its digest) invariant *)
  let mode = Trans.System_trans.External in
  let analyze ?session s =
    match P.analyze ?session ~registry ~mode s with
    | Ok a -> a
    | Error ds -> failwith (Putil.Diag.list_to_string ds)
  in
  let iters = 20 in
  (* cold: fresh session and cold clock-calculus memo every run *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Clocks.Calculus.reset_cache ();
    let session = P.new_session () in
    ignore (analyze ~session src)
  done;
  let cold_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  (* incremental: one warm session; alternate the period edit so every
     re-analysis sees source that really changed since the last run *)
  let session = P.new_session () in
  ignore (analyze ~session src);
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    ignore (analyze ~session (if i land 1 = 1 then edited else src))
  done;
  let incr_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  all_rows :=
    !all_rows
    @ [ ("edit-recheck/cold-full", cold_ns);
        ("edit-recheck/incremental", incr_ns) ];
  Format.printf "  %-52s %10.3f ms/run@." "edit-recheck/cold-full"
    (cold_ns /. 1e6);
  Format.printf "  %-52s %10.3f ms/run@." "edit-recheck/incremental"
    (incr_ns /. 1e6);
  Format.printf "  speedup: %.1fx (acceptance floor: 5x)@."
    (cold_ns /. incr_ns);
  if cold_ns < 5.0 *. incr_ns then
    failwith "edit-recheck bench: incremental path under the 5x floor"

(* C9b: a behaviour edit that really changes ONE process (the producer
   arms its timer once instead of per job) must rerun exactly that
   process's typecheck/normalize work and replay every untouched
   sibling from the per-process memo. The counters are the proof: the
   bench asserts them per run, and reports the wall-clock ratio
   against a fully cold re-analysis for context. *)
let bench_edit_recheck_proc () =
  section "C9b: per-process incremental recheck (one-process edit)";
  let mode = Trans.System_trans.External in
  let analyze ~session ~registry =
    match P.analyze ~session ~registry ~mode CS.aadl_source with
    | Ok a -> a
    | Error ds -> failwith (Putil.Diag.list_to_string ds)
  in
  let counter name = Putil.Metrics.counter_value Putil.Metrics.global name in
  let iters = 20 in
  (* cold: fresh session and cold clock-calculus memo every run *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Clocks.Calculus.reset_cache ();
    let session = P.new_session () in
    ignore (analyze ~session ~registry:CS.registry_nominal)
  done;
  let cold_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  (* incremental: one warm session; alternate the producer behaviour
     edit so every re-analysis changes exactly one process *)
  let session = P.new_session () in
  ignore (analyze ~session ~registry:CS.registry_nominal);
  ignore (analyze ~session ~registry:CS.registry_producer_variant);
  let ran0 = counter "incr.typecheck.proc_ran" in
  let skip0 = counter "incr.typecheck.proc_skipped" in
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    let registry =
      if i land 1 = 1 then CS.registry_nominal
      else CS.registry_producer_variant
    in
    ignore (analyze ~session ~registry)
  done;
  let incr_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  let ran = counter "incr.typecheck.proc_ran" - ran0 in
  let skipped = counter "incr.typecheck.proc_skipped" - skip0 in
  if ran <> iters then
    failwith
      (Printf.sprintf
         "edit-recheck-proc: expected 1 process retypechecked per run, got \
          %d over %d runs"
         ran iters);
  if skipped <= 0 then
    failwith "edit-recheck-proc: no process replayed from the memo";
  all_rows :=
    !all_rows
    @ [ ("edit-recheck-proc/cold-full", cold_ns);
        ("edit-recheck-proc/one-process", incr_ns) ];
  Format.printf "  %-52s %10.3f ms/run@." "edit-recheck-proc/cold-full"
    (cold_ns /. 1e6);
  Format.printf "  %-52s %10.3f ms/run@." "edit-recheck-proc/one-process"
    (incr_ns /. 1e6);
  Format.printf "  speedup: %.1fx  (%d proc reruns, %d replays over %d runs)@."
    (cold_ns /. incr_ns) ran skipped iters

(* C9c: steady-state warm start through the persistent store. Both
   arms pay a fresh session and a cold clock-calculus memo each run —
   the only difference is whether a shared on-disk --cache-dir store
   backs the session, so the ratio isolates what the store alone
   buys a brand-new process analyzing unchanged source. *)
let bench_warm_start () =
  section "C9c: warm start from the persistent cache store";
  let mode = Trans.System_trans.External in
  let registry = CS.registry_nominal in
  let analyze ?session () =
    match P.analyze ?session ~registry ~mode CS.aadl_source with
    | Ok a -> a
    | Error ds -> failwith (Putil.Diag.list_to_string ds)
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "poly_bench_store_%d" (Unix.getpid ()))
  in
  (if not (Sys.file_exists dir) then Unix.mkdir dir 0o755);
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let open_store () =
        match Putil.Cache_store.open_store dir with
        | Ok s -> s
        | Error m -> failwith ("warm-start bench: " ^ m)
      in
      (* populate the store once; every timed run below reopens it *)
      Clocks.Calculus.reset_cache ();
      ignore (analyze ~session:(P.new_session ~store:(open_store ()) ()) ());
      let iters = 10 in
      let run ~with_store =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to iters do
          Clocks.Calculus.reset_cache ();
          let session =
            if with_store then P.new_session ~store:(open_store ()) ()
            else P.new_session ()
          in
          ignore (analyze ~session ())
        done;
        (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
      in
      let cold_ns = run ~with_store:false in
      let warm_ns = run ~with_store:true in
      all_rows :=
        !all_rows
        @ [ ("warm-start/no-store", cold_ns);
            ("warm-start/with-store", warm_ns) ];
      Format.printf "  %-52s %10.3f ms/run@." "warm-start/no-store"
        (cold_ns /. 1e6);
      Format.printf "  %-52s %10.3f ms/run@." "warm-start/with-store"
        (warm_ns /. 1e6);
      Format.printf "  speedup: %.1fx (acceptance floor: 5x)@."
        (cold_ns /. warm_ns);
      if cold_ns < 5.0 *. warm_ns then
        failwith "warm-start bench: store-backed session under the 5x floor")

(* C10: symbolic vs explicit bounded verification over the counter
   scaling family ({!Polysim.Models.counters}): k independent modulo-3
   counters give 3^k reachable states and 2^k stimulus combinations
   per instant, so explicit enumeration saturates around k=6 while BDD
   image computation stays polynomial per step under the interleaved
   per-class variable order. Small k runs both engines and asserts the
   verdicts and exact state counts agree; large k runs symbolic only
   and reports states/sec plus the peak live BDD node count (the
   [explore.sym.peak_nodes] gauge, which the --baseline metrics diff
   tracks for blowup across commits). The k=20 row enforces the
   acceptance floor: >10^6 states verified in under 10 s. *)
let bench_verify () =
  section "C10: symbolic vs explicit bounded verification";
  let module M = Polysim.Models in
  let module E = Polysim.Explore in
  let check ~engine ~depth k =
    let kp = M.counters k and inputs = M.counters_inputs k in
    let t0 = Unix.gettimeofday () in
    let r = P.verify_kernel ~depth ~jobs:2 ~engine ~never:"alarm" ~inputs kp in
    let dt_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    match r with
    | Error m -> failwith (Putil.Diag.to_string m)
    | Ok (verdict, states, used) -> (verdict, states, used, dt_ns)
  in
  let row name dt_ns extra =
    all_rows := !all_rows @ [ (name, dt_ns) ];
    Format.printf "  %-52s %10.3f ms/run  (%s)@." name (dt_ns /. 1e6) extra
  in
  let states_per_sec states dt_ns = float_of_int states /. (dt_ns /. 1e9) in
  (* small k: both engines complete; they must agree exactly *)
  List.iter
    (fun k ->
      let ve, se, _, ens = check ~engine:`Explicit ~depth:8 k in
      let vs, ss, _, sns = check ~engine:`Symbolic ~depth:8 k in
      if ve <> E.Holds || vs <> E.Holds then
        failwith "verify bench: alarm property expected to hold";
      if se <> ss then
        failwith
          (Printf.sprintf
             "verify bench: engines disagree at k=%d: %d vs %d states" k se ss);
      row
        (Printf.sprintf "verify/explicit-k%d" k)
        ens
        (Printf.sprintf "%d states, %.3g states/sec" se
           (states_per_sec se ens));
      row
        (Printf.sprintf "verify/symbolic-k%d" k)
        sns
        (Printf.sprintf "%d states, %.3g states/sec" ss
           (states_per_sec ss sns)))
    [ 2; 4 ];
  (* large k: symbolic only — 3^13 ~ 1.6M and 3^20 ~ 3.5G states *)
  List.iter
    (fun k ->
      let v, states, used, dt_ns = check ~engine:`Symbolic ~depth:8 k in
      if v <> E.Holds then
        failwith "verify bench: alarm property expected to hold";
      if used <> `Symbolic then
        failwith "verify bench: symbolic engine expected";
      let peak =
        Putil.Metrics.counter_value Putil.Metrics.global
          "explore.sym.peak_nodes"
      in
      row
        (Printf.sprintf "verify/symbolic-k%d" k)
        dt_ns
        (Printf.sprintf "%d states, %.3g states/sec, peak %d BDD nodes"
           states
           (states_per_sec states dt_ns)
           peak);
      if k = 20 && dt_ns > 10. *. 1e9 then
        failwith "verify bench: symbolic k=20 over the 10 s acceptance floor";
      (* the interleaved per-class variable order keeps the relation
         linear in k (~10k live nodes at k=20); an ordering regression
         shows up as node blowup long before wall-clock does *)
      if k = 20 && peak > 200_000 then
        failwith
          "verify bench: symbolic k=20 peak nodes past the 200k ceiling")
    [ 13; 20 ]

(* C11: ambient observation scopes must be free in practice — the
   whole point of Putil.Obs is that sessions can always run scoped.
   Two bechamel rows time the identical batched-simulate workload with
   and without an active scope; the acceptance gate then re-measures
   both interleaved (alternating samples cancel clock drift and cache
   warm-up that separate OLS estimates don't) and compares medians. *)
let bench_obs_overhead () =
  let a = analyzed CS.registry_nominal in
  let kp = a.P.kernel in
  let c0 = Result.get_ok (Polysim.Compile.compile kp) in
  let tick = Option.get (Polysim.Compile.signal_index c0 "tick") in
  let go = Option.get (Polysim.Compile.signal_index c0 "env_pGo") in
  let run () =
    match Polysim.Compile.compile kp with
    | Error m -> failwith m
    | Ok c -> (
      match
        Polysim.Compile.run_batched c ~n:24 ~fill:(fun c t ->
            Polysim.Compile.set_stim c tick Types.Vevent;
            if t = 0 then Polysim.Compile.set_stim c go (Types.Vint 1))
      with
      | Ok () -> ()
      | Error m -> failwith m)
  in
  let scope = Putil.Obs.scope "bench-obs" in
  let plain = Test.make ~name:"obs/batched-no-scope" (Staged.stage run) in
  let scoped =
    Test.make ~name:"obs/batched-in-scope"
      (Staged.stage (fun () -> Putil.Obs.in_scope scope run))
  in
  run_benchs "C11: ambient-scope overhead (batched simulate)"
    [ plain; scoped ];
  (* interleaved-median acceptance gate: scoped within 3% of plain *)
  let iters = 200 and samples = 31 in
  let sample f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  let plain_ns = Array.make samples 0. in
  let scoped_ns = Array.make samples 0. in
  (* warm both paths before sampling *)
  ignore (sample run);
  ignore (sample (fun () -> Putil.Obs.in_scope scope run));
  for i = 0 to samples - 1 do
    plain_ns.(i) <- sample run;
    scoped_ns.(i) <- sample (fun () -> Putil.Obs.in_scope scope run)
  done;
  let median arr =
    let a = Array.copy arr in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let p = median plain_ns and s = median scoped_ns in
  all_rows :=
    !all_rows
    @ [ ("obs-overhead/no-scope(median)", p);
        ("obs-overhead/in-scope(median)", s) ];
  Format.printf "  %-52s %10.3f us/run@." "obs-overhead/no-scope(median)"
    (p /. 1e3);
  Format.printf "  %-52s %10.3f us/run@." "obs-overhead/in-scope(median)"
    (s /. 1e3);
  Format.printf "  scoped overhead: %+.2f%% (acceptance ceiling: 3%%)@."
    ((s -. p) /. p *. 100.);
  if s > 1.03 *. p then
    failwith "obs-overhead bench: ambient scope costs more than 3%"

let latency_section () =
  section "LATENCY: end-to-end flow latency over the static schedule";
  let a = analyzed CS.registry_nominal in
  let schedules = a.P.translation.Trans.System_trans.schedules in
  List.iter
    (fun (src, dst) ->
      match
        Trans.Latency.analyze a.P.instance ~schedules ~src ~dst
      with
      | Ok r -> Format.printf "%a@." Trans.Latency.pp_report r
      | Error m -> Format.printf "%s -> %s: %s@." src dst m)
    [ ("ProdConsSys.env.pGo", "ProdConsSys.display.pProdAlarm");
      ("ProdConsSys.env.pGo", "ProdConsSys.display.pConsAlarm") ]

(* --json PATH: after the run, write a BENCH_<section>.json-style
   record: {schema, section, rows: [{name, ns_per_run}], metrics} where
   [metrics] is the global Putil.Metrics snapshot accumulated by the
   instrumented libraries during the bench itself. *)
let write_json ~section:sec path =
  let module J = Putil.Metrics.Json in
  let record =
    J.Obj
      [ ("schema", J.String "polychrony-bench/v1");
        ("section", J.String (if sec = "" then "all" else sec));
        ("timestamp_unix", J.Float (Unix.gettimeofday ()));
        ( "rows",
          J.Arr
            (List.map
               (fun (name, ns) ->
                 J.Obj [ ("name", J.String name); ("ns_per_run", J.Float ns) ])
               !all_rows) );
        ("metrics", Putil.Metrics.to_json Putil.Metrics.global) ]
  in
  let oc = open_out path in
  output_string oc (J.to_string record);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.bench record written to %s@." path

(* --baseline FILE: diff this run's rows and metrics against a
   committed polychrony-bench/v1 record. Reporting only — it never
   fails the run, so CI can surface drift without gating merges on a
   noisy timing signal. *)
let baseline_diff ~threshold path =
  let module J = Putil.Metrics.Json in
  let warn m = Format.printf "@.baseline diff skipped: %s@." m in
  let contents =
    try
      let ic = open_in_bin path in
      Some
        (Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> really_input_string ic (in_channel_length ic)))
    with Sys_error m ->
      warn m;
      None
  in
  match contents with
  | None -> ()
  | Some s -> (
    match J.of_string s with
    | Error m -> warn ("parse error: " ^ m)
    | Ok record
      when J.member "schema" record <> Some (J.String "polychrony-bench/v1")
      -> warn "not a polychrony-bench/v1 record"
    | Ok record ->
      let base_rows =
        match J.member "rows" record with
        | Some (J.Arr rows) ->
          List.filter_map
            (fun r ->
              match
                (J.member "name" r, J.to_float (J.member "ns_per_run" r))
              with
              | Some (J.String nm), Some ns -> Some (nm, ns)
              | _ -> None)
            rows
        | _ -> []
      in
      section
        (Printf.sprintf "BASELINE DIFF vs %s (threshold +%.0f%%)" path
           threshold);
      let regressions = ref 0 in
      List.iter
        (fun (name, cur) ->
          match List.assoc_opt name base_rows with
          | None -> Format.printf "  %-52s %10s  (new row)@." name "-"
          | Some base when base > 0. ->
            let ratio = cur /. base in
            let flag =
              if ratio > 1. +. (threshold /. 100.) then begin
                incr regressions;
                "  REGRESSION"
              end
              else ""
            in
            Format.printf "  %-52s %+9.1f%%  (%.3f ms -> %.3f ms)%s@." name
              ((ratio -. 1.) *. 100.)
              (base /. 1e6) (cur /. 1e6) flag
          | Some _ -> ())
        !all_rows;
      (* numeric metrics that moved more than the threshold; timers and
         other structured instruments are skipped *)
      (match (J.member "metrics" record, Putil.Metrics.to_json Putil.Metrics.global) with
       | Some (J.Obj base), J.Obj cur ->
         (* counters and gauges carry {"type", "value"}; timers have no
            single value and are skipped *)
         let num v = J.to_float (J.member "value" v) in
         let moved =
           List.filter_map
             (fun (k, v) ->
               match
                 (num v, Option.bind (List.assoc_opt k base) num)
               with
               | Some c, Some b
                 when b <> c
                      && Float.abs (c -. b)
                         > threshold /. 100. *. Float.max 1. (Float.abs b) ->
                 Some (k, b, c)
               | _ -> None)
             cur
         in
         if moved <> [] then begin
           Format.printf "@.  metrics moved more than %.0f%%:@." threshold;
           List.iter
             (fun (k, b, c) ->
               Format.printf "    %-40s %14.0f -> %14.0f@." k b c)
             moved
         end
       | _ -> ());
      (* the compiled-vs-interpreter ratio is the headline claim, so
         surface its drift explicitly: two rows can each move under the
         threshold while their ratio quietly erodes *)
      (let speedup rows =
         let prefix = "C5: polychronous simulation throughput (ref [15] ablation)/" in
         match
           ( List.assoc_opt (prefix ^ "simulate/interpreter(24-instants)") rows,
             List.assoc_opt (prefix ^ "simulate/compiled-batched(24-instants)")
               rows )
         with
         | Some i, Some b when b > 0. -> Some (i /. b)
         | _ -> None
       in
       match (speedup base_rows, speedup !all_rows) with
       | Some rb, Some rc ->
         Format.printf
           "@.  compiled-batched speedup vs interpreter: baseline %.1fx -> \
            current %.1fx@."
           rb rc
       | _ -> ());
      (* symbolic-verification headline: peak live BDD node count. A
         blowup here means the transition-relation variable order
         degraded, even when wall-clock rows stay under threshold on a
         faster machine. *)
      (let peak_of metrics =
         Option.bind (J.member "explore.sym.peak_nodes" metrics) (fun v ->
             J.to_float (J.member "value" v))
       in
       match
         ( Option.bind (J.member "metrics" record) peak_of,
           peak_of (Putil.Metrics.to_json Putil.Metrics.global) )
       with
       | Some b, Some c when b > 0. && c > 0. ->
         Format.printf
           "@.  symbolic peak BDD nodes: baseline %.0f -> current %.0f%s@." b c
           (if c > (1. +. (threshold /. 100.)) *. b then "  BLOWUP" else "")
       | _ -> ());
      Format.printf "@.  %d row regression(s) above +%.0f%%@." !regressions
        threshold)

(* One Chrome trace per bench section, written as TRACE_<section>.json
   in the --trace-dir directory: the observability layer applied to
   the benchmarks themselves. *)
let traced trace_dir name f =
  match trace_dir with
  | None -> f ()
  | Some dir ->
    Putil.Tracing.reset ();
    Putil.Tracing.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Putil.Tracing.set_enabled false;
        let path = Filename.concat dir ("TRACE_" ^ name ^ ".json") in
        Putil.Tracing.write ~format:`Chrome path;
        Format.printf "  trace written to %s@." path)
      f

(* No argument: everything. [quick]: artifacts only. Any other
   argument selects one bench section by name (e.g. [simulate] for a
   CI smoke run of just that timing section). *)
let () =
  let missing flag =
    prerr_endline ("error: " ^ flag ^ " requires an argument");
    exit 2
  in
  let rec parse_args (sec, json, baseline, threshold, tdir) = function
    | [] -> (sec, json, baseline, threshold, tdir)
    | "--json" :: path :: rest ->
      parse_args (sec, Some path, baseline, threshold, tdir) rest
    | [ "--json" ] -> missing "--json"
    | "--baseline" :: path :: rest ->
      parse_args (sec, json, Some path, threshold, tdir) rest
    | [ "--baseline" ] -> missing "--baseline"
    | "--threshold" :: pct :: rest -> (
      match float_of_string_opt pct with
      | Some t -> parse_args (sec, json, baseline, t, tdir) rest
      | None ->
        prerr_endline "error: --threshold requires a number (percent)";
        exit 2)
    | [ "--threshold" ] -> missing "--threshold"
    | "--trace-dir" :: dir :: rest ->
      parse_args (sec, json, baseline, threshold, Some dir) rest
    | [ "--trace-dir" ] -> missing "--trace-dir"
    | a :: rest -> parse_args (a, json, baseline, threshold, tdir) rest
  in
  let arg, json, baseline, threshold, trace_dir =
    parse_args ("", None, None, 25., None) (List.tl (Array.to_list Sys.argv))
  in
  let benches =
    [ ("clock-calculus", bench_clock_calculus);
      ("translate", bench_translate);
      ("parser", bench_parser);
      ("simulate", bench_simulate);
      ("scenarios", bench_scenarios);
      ("affine", bench_affine);
      ("explore", bench_explore);
      ("edit-recheck", bench_edit_recheck);
      ("edit-recheck-proc", bench_edit_recheck_proc);
      ("warm-start", bench_warm_start);
      ("verify", bench_verify);
      ("obs-overhead", bench_obs_overhead);
      ("ablations", bench_ablations) ]
  in
  (match List.assoc_opt arg benches with
   | Some bench -> traced trace_dir arg bench
   | None ->
     fig1 ();
     fig2 ();
     fig3_fig4 ();
     fig5 ();
     fig6 ();
     sched_section ();
     determ_section ();
     deadlock_section ();
     profiling_section ();
     latency_section ();
     if arg <> "quick" then begin
       if arg <> "" then
         Format.printf
           "unknown section %S; running everything (sections: quick%a)@." arg
           (Format.pp_print_list
              ~pp_sep:(fun _ () -> ())
              (fun ppf (n, _) -> Format.fprintf ppf ", %s" n))
           benches;
       List.iter (fun (name, bench) -> traced trace_dir name bench) benches
     end);
  (match json with
   | Some path -> write_json ~section:arg path
   | None -> ());
  (match baseline with
   | Some path -> baseline_diff ~threshold path
   | None -> ());
  Format.printf "@.done.@."
