(* Semantic tests of the polychronous interpreter, including the
   paper's memory-process law (Sec. IV-C) and the input-freezing
   behaviour of Fig. 2 / Fig. 5. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module Engine = Polysim.Engine
module Trace = Polysim.Trace

let tint = Types.Tint
let tbool = Types.Tbool
let tevent = Types.Tevent

let vi n = Types.Vint n
let vb b = Types.Vbool b
let ve = Types.Vevent

let run_proc p stimuli =
  let kp = N.process_exn p in
  match Engine.run kp ~stimuli with
  | Ok tr -> tr
  | Error m -> Alcotest.fail m

let int_stream tr x =
  List.map
    (function Types.Vint n -> n | v ->
      Alcotest.fail ("non-int in stream: " ^ Types.value_to_string v))
    (Trace.values_of tr x)

let test_delay () =
  let p =
    B.proc ~name:"d"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := delay ~init:(vi 0) (v "x") ]
  in
  let tr = run_proc p [ [ ("x", vi 1) ]; [ ("x", vi 2) ]; [ ("x", vi 3) ] ] in
  Alcotest.(check (list int)) "delayed stream" [ 0; 1; 2 ] (int_stream tr "y")

let test_delay_skips_absences () =
  let p =
    B.proc ~name:"d"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := delay ~init:(vi 9) (v "x") ]
  in
  let tr = run_proc p [ [ ("x", vi 1) ]; []; [ ("x", vi 2) ]; [] ] in
  (* y is synchronous with x: absent at instants 1 and 3 *)
  Alcotest.(check (list int)) "stream" [ 9; 1 ] (int_stream tr "y");
  Alcotest.(check (list int)) "instants" [ 0; 2 ] (Trace.tick_instants tr "y")

let test_when () =
  let p =
    B.proc ~name:"w"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := when_ (v "x") (v "c") ]
  in
  let tr =
    run_proc p
      [ [ ("x", vi 1); ("c", vb true) ];
        [ ("x", vi 2); ("c", vb false) ];
        [ ("x", vi 3) ];
        [ ("c", vb true) ];
        [ ("x", vi 5); ("c", vb true) ] ]
  in
  Alcotest.(check (list int)) "sampled" [ 1; 5 ] (int_stream tr "y");
  Alcotest.(check (list int)) "instants" [ 0; 4 ] (Trace.tick_instants tr "y")

let test_default () =
  let p =
    B.proc ~name:"m"
      ~inputs:[ Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := default (v "a") (v "b") ]
  in
  let tr =
    run_proc p
      [ [ ("a", vi 1); ("b", vi 10) ];
        [ ("b", vi 20) ];
        [ ("a", vi 3) ];
        [] ]
  in
  Alcotest.(check (list int)) "merge priority" [ 1; 20; 3 ] (int_stream tr "y");
  Alcotest.(check (list int)) "instants" [ 0; 1; 2 ] (Trace.tick_instants tr "y")

let test_stepwise_sync () =
  let p =
    B.proc ~name:"s"
      ~inputs:[ Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "a" + v "b" ]
  in
  let kp = N.process_exn p in
  (* presenting only one operand of a synchronous function is a clock
     contradiction *)
  (match Engine.run kp ~stimuli:[ [ ("a", vi 1) ] ] with
   | Ok _ -> Alcotest.fail "expected a synchrony violation"
   | Error _ -> ());
  match Engine.run kp ~stimuli:[ [ ("a", vi 1); ("b", vi 2) ] ] with
  | Ok tr -> Alcotest.(check (list int)) "sum" [ 3 ] (int_stream tr "y")
  | Error m -> Alcotest.fail m

(* The paper's memory process law:
   o_t = i_t if i present and b true; i_pred(t) if i absent and b true;
   absent otherwise. *)
let test_fm_law () =
  let p =
    B.proc ~name:"use_fm"
      ~inputs:[ Ast.var "i" tint; Ast.var "b" tbool ]
      ~outputs:[ Ast.var "o" tint ]
      B.[ inst ~label:"mem" "fm" [ v "i"; v "b" ] [ "o" ] ]
  in
  let tr =
    run_proc p
      [ [ ("i", vi 1); ("b", vb true) ];   (* i present, b true -> 1 *)
        [ ("b", vb true) ];                (* i absent, b true -> last i = 1 *)
        [ ("i", vi 2) ];                   (* b absent -> o absent *)
        [ ("i", vi 3); ("b", vb false) ];  (* b false -> o absent *)
        [ ("b", vb true) ];                (* -> last i = 3 *)
        [ ("i", vi 4); ("b", vb true) ] ]  (* -> 4 *)
  in
  Alcotest.(check (list int)) "fm law" [ 1; 1; 3; 4 ] (int_stream tr "o");
  Alcotest.(check (list int)) "fm instants" [ 0; 1; 4; 5 ]
    (Trace.tick_instants tr "o")

let test_counter () =
  let p =
    B.proc ~name:"use_counter"
      ~inputs:[ Ast.var "e" tevent ]
      ~outputs:[ Ast.var "n" tint ]
      B.[ inst ~label:"c" "counter" [ v "e" ] [ "n" ] ]
  in
  let tr = run_proc p [ [ ("e", ve) ]; []; [ ("e", ve) ]; [ ("e", ve) ] ] in
  Alcotest.(check (list int)) "counts" [ 1; 2; 3 ] (int_stream tr "n")

let test_counter_reset () =
  let p =
    B.proc ~name:"use_cr"
      ~inputs:[ Ast.var "e" tevent; Ast.var "r" tevent ]
      ~outputs:[ Ast.var "n" tint ]
      B.[ inst ~label:"c" "counter_reset" [ v "e"; v "r" ] [ "n" ] ]
  in
  let tr =
    run_proc p
      [ [ ("e", ve) ]; [ ("e", ve) ]; [ ("r", ve) ]; [ ("e", ve) ] ]
  in
  Alcotest.(check (list int)) "counts with reset" [ 1; 2; 0; 1 ]
    (int_stream tr "n")

let test_freeze_process () =
  (* z = x |> t : value frozen at t, later arrivals invisible until next t *)
  let p =
    B.proc ~name:"use_freeze"
      ~inputs:[ Ast.var "x" tint; Ast.var "t" tevent ]
      ~outputs:[ Ast.var "z" tint ]
      B.[ inst ~label:"fr" "freeze" [ v "x"; v "t" ] [ "z" ] ]
  in
  let tr =
    run_proc p
      [ [ ("x", vi 1) ];
        [ ("t", ve) ];            (* freeze -> 1 *)
        [ ("x", vi 2) ];
        [ ("x", vi 3) ];
        [ ("t", ve) ];            (* freeze -> 3 (latest before t) *)
        [ ("x", vi 4); ("t", ve) ] ]  (* same-instant x visible: fm law *)
  in
  Alcotest.(check (list int)) "frozen values" [ 1; 3; 4 ] (int_stream tr "z")

let test_timer () =
  let p =
    B.proc ~name:"use_timer"
      ~inputs:[ Ast.var "go" tevent; Ast.var "halt" tevent;
                Ast.var "tk" tevent ]
      ~outputs:[ Ast.var "out" tevent ]
      B.[ inst ~params:[ vi 3 ] ~label:"tm" "timer"
            [ v "go"; v "halt"; v "tk" ] [ "out" ] ]
  in
  let tr =
    run_proc p
      [ [ ("go", ve) ];
        [ ("tk", ve) ];    (* cnt 1 *)
        [ ("tk", ve) ];    (* cnt 2 *)
        [ ("tk", ve) ];    (* cnt 3 = duration -> timeout *)
        [ ("tk", ve) ];    (* timer no longer active *)
        [ ("go", ve) ];
        [ ("halt", ve) ];
        [ ("tk", ve) ] ]   (* stopped: no timeout *)
  in
  Alcotest.(check (list int)) "timeout instants" [ 3 ]
    (Trace.tick_instants tr "out")

let test_fifo_primitive () =
  let p =
    B.proc ~name:"use_fifo"
      ~inputs:[ Ast.var "x" tint; Ast.var "pop" tevent ]
      ~outputs:[ Ast.var "d" tint; Ast.var "s" tint ]
      B.[ inst ~params:[ vi 8; Types.Vstring "dropoldest" ] ~label:"q" "fifo" [ v "x"; v "pop" ]
            [ "d"; "s" ] ]
  in
  let tr =
    run_proc p
      [ [ ("x", vi 1) ];
        [ ("x", vi 2) ];
        [ ("pop", ve) ];             (* -> 1 *)
        [ ("x", vi 3); ("pop", ve) ];(* -> 2 (push then pop) *)
        [ ("pop", ve) ];             (* -> 3 *)
        [ ("pop", ve) ] ]            (* empty: d absent *)
  in
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (int_stream tr "d");
  Alcotest.(check (list int)) "sizes" [ 1; 2; 1; 1; 0; 0 ] (int_stream tr "s")

let test_fifo_empty_pop_same_instant_push () =
  let p =
    B.proc ~name:"use_fifo"
      ~inputs:[ Ast.var "x" tint; Ast.var "pop" tevent ]
      ~outputs:[ Ast.var "d" tint; Ast.var "s" tint ]
      B.[ inst ~params:[ vi 8; Types.Vstring "dropoldest" ] ~label:"q" "fifo" [ v "x"; v "pop" ]
            [ "d"; "s" ] ]
  in
  let tr = run_proc p [ [ ("x", vi 7); ("pop", ve) ] ] in
  Alcotest.(check (list int)) "push visible to same-instant pop" [ 7 ]
    (int_stream tr "d")

let test_fifo_overflow () =
  let p =
    B.proc ~name:"use_fifo"
      ~inputs:[ Ast.var "x" tint; Ast.var "pop" tevent ]
      ~outputs:[ Ast.var "d" tint; Ast.var "s" tint ]
      B.[ inst ~params:[ vi 2; Types.Vstring "dropoldest" ] ~label:"q" "fifo" [ v "x"; v "pop" ]
            [ "d"; "s" ] ]
  in
  let kp = N.process_exn p in
  let st = Engine.create kp in
  List.iter
    (fun stim ->
      match Engine.step st ~stimulus:stim with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m)
    [ [ ("x", vi 1) ]; [ ("x", vi 2) ]; [ ("x", vi 3) ] ];
  Alcotest.(check int) "one overflow" 1 (Engine.overflow_count st);
  (* oldest item was dropped *)
  (match Engine.step st ~stimulus:[ ("pop", ve) ] with
   | Ok present ->
     Alcotest.(check bool) "head is 2" true
       (List.assoc_opt "d" present = Some (vi 2))
   | Error m -> Alcotest.fail m)

let test_fifo_overflow_dropnewest () =
  let p =
    B.proc ~name:"use_fifo"
      ~inputs:[ Ast.var "x" tint; Ast.var "pop" tevent ]
      ~outputs:[ Ast.var "d" tint; Ast.var "s" tint ]
      B.[ inst ~params:[ vi 2; Types.Vstring "dropnewest" ] ~label:"q" "fifo"
            [ v "x"; v "pop" ] [ "d"; "s" ] ]
  in
  let kp = N.process_exn p in
  let st = Engine.create kp in
  List.iter
    (fun stim -> ignore (Engine.step st ~stimulus:stim))
    [ [ ("x", vi 1) ]; [ ("x", vi 2) ]; [ ("x", vi 3) ] ];
  Alcotest.(check int) "one overflow" 1 (Engine.overflow_count st);
  (* the NEW item was dropped: head is still 1 *)
  (match Engine.step st ~stimulus:[ ("pop", ve) ] with
   | Ok present ->
     Alcotest.(check bool) "head is 1" true
       (List.assoc_opt "d" present = Some (vi 1))
   | Error m -> Alcotest.fail m)

let test_fifo_overflow_error_protocol () =
  let p =
    B.proc ~name:"use_fifo"
      ~inputs:[ Ast.var "x" tint; Ast.var "pop" tevent ]
      ~outputs:[ Ast.var "d" tint; Ast.var "s" tint ]
      B.[ inst ~params:[ vi 1; Types.Vstring "error" ] ~label:"q" "fifo"
            [ v "x"; v "pop" ] [ "d"; "s" ] ]
  in
  let kp = N.process_exn p in
  match Engine.run kp ~stimuli:[ [ ("x", vi 1) ]; [ ("x", vi 2) ] ] with
  | Ok _ -> Alcotest.fail "Error protocol must fail on overflow"
  | Error m ->
    Alcotest.(check bool) "mentions overflow" true
      (String.length m > 0)

let test_fifo_reset () =
  let p =
    B.proc ~name:"use_fr"
      ~inputs:[ Ast.var "x" tint; Ast.var "pop" tevent; Ast.var "rst" tevent ]
      ~outputs:[ Ast.var "d" tint; Ast.var "s" tint ]
      B.[ inst ~params:[ vi 8; Types.Vstring "dropoldest" ] ~label:"q" "fifo_reset"
            [ v "x"; v "pop"; v "rst" ] [ "d"; "s" ] ]
  in
  let tr =
    run_proc p
      [ [ ("x", vi 1) ];
        [ ("x", vi 2) ];
        [ ("rst", ve) ];
        [ ("pop", ve) ];                (* empty after reset: absent *)
        [ ("x", vi 5); ("pop", ve) ] ]  (* reset cleared; 5 flows *)
  in
  Alcotest.(check (list int)) "post-reset pops" [ 5 ] (int_stream tr "d")

(* Fig. 2 / Fig. 5: values arriving after Input_Time are not processed
   until the next Input_Time. *)
let test_in_event_port_freezing () =
  let p =
    B.proc ~name:"use_inport"
      ~inputs:[ Ast.var "arr" tint; Ast.var "ft" tevent ]
      ~outputs:[ Ast.var "frz" tint; Ast.var "cnt" tint ]
      B.[ inst ~params:[ vi 4; Types.Vstring "dropoldest" ] ~label:"port" "in_event_port"
            [ v "arr"; v "ft" ] [ "frz"; "cnt" ] ]
  in
  let tr =
    run_proc p
      [ [ ("arr", vi 1) ];
        [ ("ft", ve) ];                 (* freeze: sees 1 *)
        [ ("arr", vi 2) ];
        [ ("arr", vi 3) ];
        [ ("arr", vi 9); ("ft", ve) ];  (* freeze sees 2,3 but NOT 9 *)
        [ ("ft", ve) ] ]                (* freeze sees 9 *)
  in
  Alcotest.(check (list int)) "frozen heads" [ 1; 2; 9 ] (int_stream tr "frz");
  Alcotest.(check (list int)) "frozen counts" [ 1; 2; 1 ] (int_stream tr "cnt")

let test_in_event_port_empty_freeze () =
  let p =
    B.proc ~name:"use_inport"
      ~inputs:[ Ast.var "arr" tint; Ast.var "ft" tevent ]
      ~outputs:[ Ast.var "frz" tint; Ast.var "cnt" tint ]
      B.[ inst ~params:[ vi 4; Types.Vstring "dropoldest" ] ~label:"port" "in_event_port"
            [ v "arr"; v "ft" ] [ "frz"; "cnt" ] ]
  in
  let tr = run_proc p [ [ ("ft", ve) ] ] in
  Alcotest.(check (list int)) "no frozen item" [] (int_stream tr "frz");
  Alcotest.(check (list int)) "count zero" [ 0 ] (int_stream tr "cnt")

let test_out_event_port () =
  let p =
    B.proc ~name:"use_outport"
      ~inputs:[ Ast.var "item" tint; Ast.var "ot" tevent ]
      ~outputs:[ Ast.var "sent" tint ]
      B.[ inst ~params:[ vi 4; Types.Vstring "dropoldest" ] ~label:"port" "out_event_port"
            [ v "item"; v "ot" ] [ "sent" ] ]
  in
  let tr =
    run_proc p
      [ [ ("item", vi 1) ];
        [ ("item", vi 2) ];
        [ ("ot", ve) ];                 (* sends 1 *)
        [ ("ot", ve) ];                 (* sends 2 *)
        [ ("item", vi 3); ("ot", ve) ]; (* same-instant item eligible *)
        [ ("ot", ve) ] ]                (* empty *)
  in
  Alcotest.(check (list int)) "sent order" [ 1; 2; 3 ] (int_stream tr "sent")

let test_if_synchronous () =
  let p =
    B.proc ~name:"sel"
      ~inputs:[ Ast.var "c" tbool; Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := if_ (v "c") (v "a") (v "b") ]
  in
  let tr =
    run_proc p
      [ [ ("c", vb true); ("a", vi 1); ("b", vi 2) ];
        [ ("c", vb false); ("a", vi 3); ("b", vi 4) ] ]
  in
  Alcotest.(check (list int)) "selection" [ 1; 4 ] (int_stream tr "y")

let test_division_by_zero () =
  let p =
    B.proc ~name:"div"
      ~inputs:[ Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "a" / v "b" ]
  in
  let kp = N.process_exn p in
  match Engine.run kp ~stimuli:[ [ ("a", vi 1); ("b", vi 0) ] ] with
  | Ok _ -> Alcotest.fail "division by zero must fail"
  | Error m ->
    Alcotest.(check bool) "mentions zero" true
      (String.length m > 0)

let test_unknown_input_rejected () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "x" ]
  in
  let kp = N.process_exn p in
  match Engine.run kp ~stimuli:[ [ ("zz", vi 1) ] ] with
  | Ok _ -> Alcotest.fail "unknown input must be rejected"
  | Error _ -> ()

let test_no_free_choices_in_closed_program () =
  let p =
    B.proc ~name:"closed"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := (delay (v "y")) + v "x" ]
  in
  let kp = N.process_exn p in
  let st = Engine.create kp in
  List.iter
    (fun stim -> ignore (Engine.step st ~stimulus:stim))
    [ [ ("x", vi 1) ]; [ ("x", vi 2) ]; [] ];
  Alcotest.(check int) "no free choices" 0 (Engine.free_choices st)

let test_determinism_across_runs () =
  (* same stimuli => identical traces *)
  let p =
    B.proc ~name:"d"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := when_ (delay (v "x") + v "x") (v "c") ]
  in
  let stimuli =
    [ [ ("x", vi 1); ("c", vb true) ];
      [ ("x", vi 2); ("c", vb false) ];
      [ ("x", vi 3); ("c", vb true) ] ]
  in
  let t1 = run_proc p stimuli and t2 = run_proc p stimuli in
  Alcotest.(check (list int)) "identical streams"
    (int_stream t1 "y") (int_stream t2 "y")

let suite =
  [ ("engine.kernel",
     [ Alcotest.test_case "delay" `Quick test_delay;
       Alcotest.test_case "delay skips absences" `Quick test_delay_skips_absences;
       Alcotest.test_case "when" `Quick test_when;
       Alcotest.test_case "default" `Quick test_default;
       Alcotest.test_case "stepwise synchrony" `Quick test_stepwise_sync;
       Alcotest.test_case "if is synchronous" `Quick test_if_synchronous;
       Alcotest.test_case "division by zero" `Quick test_division_by_zero;
       Alcotest.test_case "unknown input" `Quick test_unknown_input_rejected;
       Alcotest.test_case "closed program endochrony" `Quick
         test_no_free_choices_in_closed_program;
       Alcotest.test_case "run determinism" `Quick test_determinism_across_runs ]);
    ("engine.library",
     [ Alcotest.test_case "fm law (paper IV-C)" `Quick test_fm_law;
       Alcotest.test_case "counter" `Quick test_counter;
       Alcotest.test_case "counter_reset" `Quick test_counter_reset;
       Alcotest.test_case "freeze x |> t" `Quick test_freeze_process;
       Alcotest.test_case "timer" `Quick test_timer ]);
    ("engine.primitives",
     [ Alcotest.test_case "fifo order" `Quick test_fifo_primitive;
       Alcotest.test_case "fifo same-instant push/pop" `Quick
         test_fifo_empty_pop_same_instant_push;
       Alcotest.test_case "fifo overflow" `Quick test_fifo_overflow;
       Alcotest.test_case "overflow dropnewest" `Quick
         test_fifo_overflow_dropnewest;
       Alcotest.test_case "overflow error protocol" `Quick
         test_fifo_overflow_error_protocol;
       Alcotest.test_case "fifo_reset" `Quick test_fifo_reset;
       Alcotest.test_case "in port freezing (Fig. 2/5)" `Quick
         test_in_event_port_freezing;
       Alcotest.test_case "in port empty freeze" `Quick
         test_in_event_port_empty_freeze;
       Alcotest.test_case "out port (Output_Time)" `Quick test_out_event_port ]) ]
