(* Unit and property tests for Putil.Mathx. *)

module M = Putil.Mathx

let check = Alcotest.(check int)

let test_gcd () =
  check "gcd 12 18" 6 (M.gcd 12 18);
  check "gcd 0 5" 5 (M.gcd 0 5);
  check "gcd 5 0" 5 (M.gcd 5 0);
  check "gcd 0 0" 0 (M.gcd 0 0);
  check "gcd negative" 6 (M.gcd (-12) 18);
  check "gcd both negative" 6 (M.gcd (-12) (-18));
  check "gcd coprime" 1 (M.gcd 17 13)

let test_lcm () =
  check "lcm 4 6" 12 (M.lcm 4 6);
  check "lcm 4 0" 0 (M.lcm 4 0);
  check "lcm 1 9" 9 (M.lcm 1 9);
  check "lcm of paper periods" 24 (M.lcm_list [ 4; 6; 8; 8 ]);
  check "lcm_list empty" 1 (M.lcm_list []);
  check "gcd_list" 4 (M.gcd_list [ 8; 12; 20 ])

let test_egcd () =
  let g, u, v = M.egcd 240 46 in
  check "egcd gcd" 2 g;
  check "egcd identity" 2 ((240 * u) + (46 * v))

let test_diophantine () =
  (match M.solve_diophantine 3 5 7 with
   | Some (x, y) -> check "3x+5y=7" 7 ((3 * x) + (5 * y))
   | None -> Alcotest.fail "3x+5y=7 has solutions");
  (match M.solve_diophantine 4 6 7 with
   | Some _ -> Alcotest.fail "4x+6y=7 has no solution"
   | None -> ());
  match M.solve_diophantine 0 0 0 with
  | Some (x, y) -> check "trivial x" 0 x; check "trivial y" 0 y
  | None -> Alcotest.fail "0x+0y=0 is solvable"

let test_divisions () =
  check "floor_div pos" 2 (M.floor_div 7 3);
  check "floor_div neg" (-3) (M.floor_div (-7) 3);
  check "ceil_div pos" 3 (M.ceil_div 7 3);
  check "ceil_div neg" (-2) (M.ceil_div (-7) 3);
  check "floor_div exact" (-2) (M.floor_div (-6) 3);
  check "ceil_div exact" 2 (M.ceil_div 6 3);
  check "pos_mod" 2 (M.pos_mod (-7) 3);
  check "pos_mod positive" 1 (M.pos_mod 7 3)

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both operands" ~count:500
    QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      let g = M.gcd a b in
      if a = 0 && b = 0 then g = 0 else a mod g = 0 && b mod g = 0)

let prop_lcm_multiple =
  QCheck2.Test.make ~name:"lcm is a common multiple" ~count:500
    QCheck2.Gen.(pair (int_range 1 500) (int_range 1 500))
    (fun (a, b) ->
      let l = M.lcm a b in
      l mod a = 0 && l mod b = 0 && l <= a * b)

let prop_egcd_bezout =
  QCheck2.Test.make ~name:"egcd satisfies Bezout" ~count:500
    QCheck2.Gen.(pair (int_range (-500) 500) (int_range (-500) 500))
    (fun (a, b) ->
      let g, u, v = M.egcd a b in
      (a * u) + (b * v) = g && g = M.gcd a b)

let prop_floor_ceil =
  QCheck2.Test.make ~name:"floor_div/ceil_div bracket the quotient" ~count:500
    QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range 1 50))
    (fun (a, b) ->
      let f = M.floor_div a b and c = M.ceil_div a b in
      f * b <= a && a <= c * b && c - f <= 1)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_gcd_divides; prop_lcm_multiple; prop_egcd_bezout; prop_floor_ceil ]

let suite =
  [ ("mathx",
     [ Alcotest.test_case "gcd" `Quick test_gcd;
       Alcotest.test_case "lcm" `Quick test_lcm;
       Alcotest.test_case "egcd" `Quick test_egcd;
       Alcotest.test_case "diophantine" `Quick test_diophantine;
       Alcotest.test_case "integer divisions" `Quick test_divisions ]
     @ qsuite) ]
