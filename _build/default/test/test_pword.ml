(* Ultimately periodic binary words. *)

module W = Clocks.Pword
module A = Clocks.Affine

let horizon = 200

let points w = List.init horizon (W.tick w)

let test_of_string () =
  let w = W.of_string "01(10)" in
  Alcotest.(check bool) "t0" false (W.tick w 0);
  Alcotest.(check bool) "t1" true (W.tick w 1);
  Alcotest.(check bool) "t2" true (W.tick w 2);
  Alcotest.(check bool) "t3" false (W.tick w 3);
  Alcotest.(check bool) "t4" true (W.tick w 4)

let test_of_string_invalid () =
  Alcotest.(check bool) "missing cycle" true
    (try ignore (W.of_string "101"); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad char" true
    (try ignore (W.of_string "1(2)"); false with Invalid_argument _ -> true)

let test_cycle_reduction () =
  let w1 = W.of_string "(101101)" in
  let w2 = W.of_string "(101)" in
  Alcotest.(check bool) "cycle reduced" true (W.equal w1 w2);
  Alcotest.(check (list bool)) "reduced cycle" [ true; false; true ]
    (W.cycle w1)

let test_prefix_absorption () =
  (* 1(01) denotes 101010... = (10) *)
  let w1 = W.of_string "1(01)" in
  let w2 = W.of_string "(10)" in
  Alcotest.(check bool) "absorbed" true (W.equal w1 w2)

let test_rate () =
  Alcotest.(check (pair int int)) "rate 2/3" (2, 3)
    (W.rate (W.of_string "(110)"));
  Alcotest.(check (pair int int)) "rate reduced" (1, 2)
    (W.rate (W.of_string "(1010)"));
  Alcotest.(check (pair int int)) "empty clock" (0, 1)
    (W.rate (W.of_string "(000)"))

let test_ops () =
  let a = W.of_string "(10)" in
  let b = W.of_string "(110)" in
  let both = W.land_ a b in
  let either = W.lor_ a b in
  List.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "and @%d" i)
        (W.tick a i && W.tick b i)
        (W.tick both i);
      Alcotest.(check bool)
        (Printf.sprintf "or @%d" i)
        (W.tick a i || W.tick b i)
        (W.tick either i))
    (List.init 30 Fun.id)

let test_of_ticks () =
  let w = W.of_ticks ~horizon:6 [ 0; 3 ] in
  Alcotest.(check bool) "t0" true (W.tick w 0);
  Alcotest.(check bool) "t3" true (W.tick w 3);
  Alcotest.(check bool) "t1" false (W.tick w 1);
  Alcotest.(check bool) "t6 wraps" true (W.tick w 6)

let test_of_periodic_roundtrip () =
  let c = A.periodic ~period:4 ~offset:2 in
  let w = W.of_periodic c in
  List.iter
    (fun t ->
      Alcotest.(check bool) (Printf.sprintf "@%d" t) (A.mem c t) (W.tick w t))
    (List.init 40 Fun.id);
  match W.as_periodic w with
  | Some c' ->
    Alcotest.(check int) "period" 4 c'.A.period;
    Alcotest.(check int) "offset" 2 c'.A.offset
  | None -> Alcotest.fail "periodic word must be recognized"

let test_as_periodic_negative () =
  Alcotest.(check bool) "two ticks per cycle" true
    (W.as_periodic (W.of_string "(1100)") = None)

let test_subset_disjoint () =
  let a = W.of_string "(1000)" in
  let b = W.of_string "(1010)" in
  let c = W.of_string "(0100)" in
  Alcotest.(check bool) "a ⊆ b" true (W.subset a b);
  Alcotest.(check bool) "b ⊄ a" false (W.subset b a);
  Alcotest.(check bool) "a # c" true (W.disjoint a c);
  Alcotest.(check bool) "a !# b" false (W.disjoint a b)

let test_first_tick () =
  Alcotest.(check (option int)) "first" (Some 2)
    (W.first_tick (W.of_string "001(10)"));
  Alcotest.(check (option int)) "none" None
    (W.first_tick (W.of_string "00(0)"))

let gen_word =
  let open QCheck2.Gen in
  let bits n = list_size (int_range 0 n) bool in
  map2
    (fun prefix cycle -> W.make ~prefix ~cycle:(true :: cycle))
    (bits 6) (bits 6)

(* second generator biased towards empty/degenerate cycles *)
let gen_word_any =
  let open QCheck2.Gen in
  let bits lo hi = list_size (int_range lo hi) bool in
  map2 (fun prefix cycle -> W.make ~prefix ~cycle) (bits 0 6) (bits 1 7)

let prop_equal_is_pointwise =
  QCheck2.Test.make ~name:"equal = pointwise equality" ~count:400
    QCheck2.Gen.(pair gen_word_any gen_word_any)
    (fun (w1, w2) -> W.equal w1 w2 = (points w1 = points w2))

let prop_canonical_roundtrip =
  QCheck2.Test.make ~name:"to_string/of_string roundtrip" ~count:400
    gen_word_any (fun w -> W.equal w (W.of_string (W.to_string w)))

let prop_demorgan =
  QCheck2.Test.make ~name:"word de morgan" ~count:300
    QCheck2.Gen.(pair gen_word gen_word_any)
    (fun (a, b) ->
      W.equal (W.lnot (W.land_ a b)) (W.lor_ (W.lnot a) (W.lnot b)))

let prop_subset_pointwise =
  QCheck2.Test.make ~name:"subset = pointwise implication" ~count:300
    QCheck2.Gen.(pair gen_word_any gen_word_any)
    (fun (a, b) ->
      W.subset a b
      = List.for_all2 (fun x y -> (not x) || y) (points a) (points b))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_equal_is_pointwise; prop_canonical_roundtrip; prop_demorgan;
      prop_subset_pointwise ]

let suite =
  [ ("pword",
     [ Alcotest.test_case "of_string" `Quick test_of_string;
       Alcotest.test_case "invalid strings" `Quick test_of_string_invalid;
       Alcotest.test_case "cycle reduction" `Quick test_cycle_reduction;
       Alcotest.test_case "prefix absorption" `Quick test_prefix_absorption;
       Alcotest.test_case "rate" `Quick test_rate;
       Alcotest.test_case "and/or" `Quick test_ops;
       Alcotest.test_case "of_ticks" `Quick test_of_ticks;
       Alcotest.test_case "of_periodic" `Quick test_of_periodic_roundtrip;
       Alcotest.test_case "as_periodic negative" `Quick test_as_periodic_negative;
       Alcotest.test_case "subset/disjoint" `Quick test_subset_disjoint;
       Alcotest.test_case "first_tick" `Quick test_first_tick ]
     @ qsuite) ]
