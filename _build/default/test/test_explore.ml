(* Bounded exhaustive exploration: safety properties verified over ALL
   input patterns up to a depth, with counterexamples when violated. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module E = Polysim.Explore

let vi n = Types.Vint n
let ve = Types.Vevent

(* the timer never raises a timeout before [duration] ticks have
   elapsed since the last arm, whatever the start/stop/tick pattern *)
let test_timer_never_early () =
  let p =
    B.proc ~name:"use_timer"
      ~inputs:[ Ast.var "go" Types.Tevent; Ast.var "halt" Types.Tevent;
                Ast.var "tk" Types.Tevent ]
      ~outputs:[ Ast.var "out" Types.Tevent ]
      B.[ inst ~params:[ vi 3 ] ~label:"tm" "timer"
            [ v "go"; v "halt"; v "tk" ] [ "out" ] ]
  in
  let kp = N.process_exn p in
  (* within 3 instants a duration-3 timer can never expire *)
  match
    E.check ~depth:3
      ~inputs:
        [ ("go", [ None; Some ve ]); ("halt", [ None; Some ve ]);
          ("tk", [ None; Some ve ]) ]
      ~safe:(fun present -> not (List.mem_assoc "out" present))
      kp
  with
  | Ok (E.Holds, states) ->
    Alcotest.(check bool) "explored several states" true (states > 1)
  | Ok (E.Violated tr, _) ->
    Alcotest.fail
      (Printf.sprintf "early timeout after %d instants" (List.length tr))
  | Error m -> Alcotest.fail m

let test_timer_can_expire () =
  (* at depth 5 the timeout IS reachable: arm then tick 4 times *)
  let p =
    B.proc ~name:"use_timer"
      ~inputs:[ Ast.var "go" Types.Tevent; Ast.var "halt" Types.Tevent;
                Ast.var "tk" Types.Tevent ]
      ~outputs:[ Ast.var "out" Types.Tevent ]
      B.[ inst ~params:[ vi 3 ] ~label:"tm" "timer"
            [ v "go"; v "halt"; v "tk" ] [ "out" ] ]
  in
  let kp = N.process_exn p in
  match
    E.check ~depth:5
      ~inputs:
        [ ("go", [ None; Some ve ]); ("halt", [ None; Some ve ]);
          ("tk", [ None; Some ve ]) ]
      ~safe:(fun present -> not (List.mem_assoc "out" present))
      kp
  with
  | Ok (E.Violated trail, _) ->
    Alcotest.(check bool) "counterexample within depth" true
      (List.length trail <= 5 && List.length trail >= 4)
  | Ok (E.Holds, _) -> Alcotest.fail "timeout must be reachable at depth 5"
  | Error m -> Alcotest.fail m

(* the fm memory law universally: o equals the last present i *)
let test_fm_law_universal () =
  let p =
    B.proc ~name:"use_fm"
      ~inputs:[ Ast.var "i" Types.Tint; Ast.var "b" Types.Tbool ]
      ~outputs:[ Ast.var "o" Types.Tint ]
      B.[ inst ~label:"mem" "fm" [ v "i"; v "b" ] [ "o" ] ]
  in
  let kp = N.process_exn p in
  (* per-instant consistency: whenever i and b=true are both present,
     o must be present and equal to i (the instantaneous half of the
     fm law; the memory half is covered by the engine tests) *)
  let safe present =
    match List.assoc_opt "i" present, List.assoc_opt "b" present,
          List.assoc_opt "o" present
    with
    | Some (Types.Vint n), Some bv, Some (Types.Vint m)
      when (match bv with Types.Vbool b -> b | _ -> false) ->
      n = m
    | Some _, Some bv, None
      when (match bv with Types.Vbool b -> b | _ -> false) ->
      false (* i and b=true present but o absent: violates fm *)
    | _ -> true
  in
  match
    E.check ~depth:5
      ~inputs:
        [ ("i", [ None; Some (vi 1); Some (vi 2) ]);
          ("b", [ None; Some (Types.Vbool true); Some (Types.Vbool false) ]) ]
      ~safe kp
  with
  | Ok (E.Holds, states) ->
    Alcotest.(check bool) "nontrivial exploration" true (states > 3)
  | Ok (E.Violated _, _) -> Alcotest.fail "fm law violated"
  | Error m -> Alcotest.fail m

let test_counterexample_replays () =
  (* a deliberately falsifiable property: the counter never reaches 3 *)
  let p =
    B.proc ~name:"use_counter"
      ~inputs:[ Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "n" Types.Tint ]
      B.[ inst ~label:"c" "counter" [ v "e" ] [ "n" ] ]
  in
  let kp = N.process_exn p in
  match
    E.check ~depth:6
      ~inputs:[ ("e", [ None; Some ve ]) ]
      ~safe:(fun present -> List.assoc_opt "n" present <> Some (vi 3))
      kp
  with
  | Ok (E.Violated trail, _) -> (
    (* the trail, replayed on the interpreter, reproduces the bug *)
    Alcotest.(check int) "trail carries three events" 3
      (List.length (List.filter (fun s -> s <> []) trail));
    match Polysim.Engine.run kp ~stimuli:trail with
    | Ok tr ->
      let last = Polysim.Trace.length tr - 1 in
      Alcotest.(check bool) "replay reaches n=3" true
        (Polysim.Trace.get tr last "n" = Some (vi 3))
    | Error m -> Alcotest.fail m)
  | Ok (E.Holds, _) -> Alcotest.fail "n=3 is reachable"
  | Error m -> Alcotest.fail m

let test_state_pruning_counts () =
  (* a 1-bit toggle has exactly 2 distinct states regardless of depth *)
  let p =
    B.proc ~name:"toggle"
      ~inputs:[ Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "q" Types.Tbool ]
      B.[ "q" := not_ (delay ~init:(Types.Vbool false) (v "q"));
          clk (v "q") ^= clk (v "e") ]
  in
  let kp = N.process_exn p in
  match
    E.reachable_states ~depth:10 ~inputs:[ ("e", [ None; Some ve ]) ] kp
  with
  | Ok n -> Alcotest.(check int) "two states" 2 n
  | Error m -> Alcotest.fail m

let test_uncompilable_rejected () =
  let p =
    B.proc ~name:"cyclic"
      ~inputs:[ Ast.var "x" Types.Tint ]
      ~outputs:[ Ast.var "y" Types.Tint ]
      ~locals:[ Ast.var "w" Types.Tint ]
      B.[ "y" := v "w" + v "x"; "w" := v "y" + i 1 ]
  in
  let kp = N.process_exn p in
  match E.check ~inputs:[] ~safe:(fun _ -> true) kp with
  | Ok _ -> Alcotest.fail "cyclic process must not explore"
  | Error _ -> ()

let suite =
  [ ("explore",
     [ Alcotest.test_case "timer never early (BMC)" `Quick
         test_timer_never_early;
       Alcotest.test_case "timer expiry reachable" `Quick
         test_timer_can_expire;
       Alcotest.test_case "fm law universal" `Quick test_fm_law_universal;
       Alcotest.test_case "counterexample replays" `Quick
         test_counterexample_replays;
       Alcotest.test_case "state pruning" `Quick test_state_pruning_counts;
       Alcotest.test_case "uncompilable rejected" `Quick
         test_uncompilable_rejected ]) ]
