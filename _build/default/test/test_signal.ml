(* Tests for the SIGNAL AST, builder, pretty-printer and type checker. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module Pp = Signal_lang.Pp
module Tc = Signal_lang.Typecheck
module Stdproc = Signal_lang.Stdproc

let tint = Types.Tint
let tbool = Types.Tbool
let tevent = Types.Tevent

(* y := x + 1 with a delayed feedback, the running example *)
let simple_counter =
  B.proc ~name:"count_up"
    ~inputs:[ Ast.var "tick" tevent ]
    ~outputs:[ Ast.var "n" tint ]
    B.[ "n" := delay (v "n") + i 1; clk (v "n") ^= clk (v "tick") ]

let test_free_signals () =
  let e = B.(v "a" + (v "b" * v "a")) in
  Alcotest.(check (list string)) "free vars" [ "a"; "b" ] (Ast.free_signals e);
  Alcotest.(check (list string)) "const has none" []
    (Ast.free_signals (B.i 42))

let test_defined_signals () =
  Alcotest.(check (list string)) "definitions" [ "n" ]
    (Ast.defined_signals simple_counter.Ast.body)

let test_stmt_reads () =
  let s = B.("x" := v "a" + v "b") in
  Alcotest.(check (list string)) "reads" [ "a"; "b" ] (Ast.stmt_reads s)

let test_rename () =
  let e = B.(v "a" + i 1) in
  let e' = Ast.rename_expr (fun x -> x ^ "_r") e in
  Alcotest.(check (list string)) "renamed" [ "a_r" ] (Ast.free_signals e')

let test_expr_size () =
  Alcotest.(check int) "size" 5 (Ast.expr_size B.(v "a" + (v "b" * i 2)))

let test_pp_expr () =
  let s = Pp.expr_to_string B.(v "a" + (v "b" * i 2)) in
  Alcotest.(check string) "mul binds tighter" "a + b * 2" s;
  let s = Pp.expr_to_string B.((v "a" + v "b") * i 2) in
  Alcotest.(check string) "parens kept" "(a + b) * 2" s;
  let s = Pp.expr_to_string B.(delay ~init:(Types.Vint 5) (v "x")) in
  Alcotest.(check string) "delay" "x $ 1 init 5" s;
  let s = Pp.expr_to_string B.(when_ (v "x") (v "b")) in
  Alcotest.(check string) "when" "x when b" s;
  let s = Pp.expr_to_string B.(on (v "b")) in
  Alcotest.(check string) "clock-when sugar" "when b" s;
  let s = Pp.expr_to_string B.(default (v "x") (v "y")) in
  Alcotest.(check string) "default" "x default y" s;
  let s = Pp.expr_to_string B.(clk (v "x")) in
  Alcotest.(check string) "clock" "^x" s

let test_pp_process_roundtrip_text () =
  let s = Pp.process_to_string simple_counter in
  Alcotest.(check bool) "mentions process name" true
    (String.length s > 0
     &&
     let re = "process count_up" in
     String.length s >= String.length re
     && String.sub s 0 (String.length re) = re)

let test_pp_stdprocs () =
  (* every library model renders without exceptions *)
  List.iter
    (fun p -> ignore (Pp.process_to_string p))
    Stdproc.all

let test_typecheck_ok () =
  Alcotest.(check (list string)) "counter well-typed" []
    (List.map Tc.error_to_string (Tc.check_process simple_counter));
  List.iter
    (fun p ->
      Alcotest.(check (list string))
        (Printf.sprintf "library %s well-typed" p.Ast.proc_name)
        []
        (List.map Tc.error_to_string (Tc.check_process p)))
    Stdproc.all

let test_typecheck_unbound () =
  let p =
    B.proc ~name:"bad" ~inputs:[] ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "nowhere" ]
  in
  Alcotest.(check bool) "unbound detected" false (Tc.check_process p = [])

let test_typecheck_double_def () =
  let p =
    B.proc ~name:"bad"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "x"; "y" := v "x" + i 1 ]
  in
  Alcotest.(check bool) "double definition detected" false
    (Tc.check_process p = [])

let test_typecheck_partial_mix () =
  let p =
    B.proc ~name:"bad"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "x"; "y" =:: (v "x" + i 1) ]
  in
  Alcotest.(check bool) "total+partial mix detected" false
    (Tc.check_process p = [])

let test_typecheck_input_def () =
  let p =
    B.proc ~name:"bad"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "x" := i 1; "y" := v "x" ]
  in
  Alcotest.(check bool) "input definition detected" false
    (Tc.check_process p = [])

let test_typecheck_type_clash () =
  let p =
    B.proc ~name:"bad"
      ~inputs:[ Ast.var "x" tint; Ast.var "b" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "x" + v "b" ]
  in
  Alcotest.(check bool) "int+bool detected" false (Tc.check_process p = [])

let test_typecheck_undefined_output () =
  let p =
    B.proc ~name:"bad" ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint; Ast.var "z" tint ]
      B.[ "y" := v "x" ]
  in
  let errs = Tc.check_process p in
  Alcotest.(check bool) "undefined output flagged" true
    (List.exists (fun e -> e.Tc.err_msg = "output z is never defined") errs)

let test_typecheck_instance_arity () =
  let p =
    B.proc ~name:"bad"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ inst ~label:"m" "fm" [ v "x" ] [ "y" ] ]
  in
  Alcotest.(check bool) "fm needs two inputs" false (Tc.check_process p = [])

let test_typecheck_unknown_instance () =
  let p =
    B.proc ~name:"bad"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ inst ~label:"m" "no_such_model" [ v "x" ] [ "y" ] ]
  in
  Alcotest.(check bool) "unknown model detected" false (Tc.check_process p = [])

let test_event_promotes_to_bool () =
  let p =
    B.proc ~name:"promo"
      ~inputs:[ Ast.var "e" tevent; Ast.var "b" tbool ]
      ~outputs:[ Ast.var "y" tbool ]
      B.[ "y" := v "e" && v "b" ]
  in
  Alcotest.(check (list string)) "event usable as bool" []
    (List.map Tc.error_to_string (Tc.check_process p))

let test_type_of_expr () =
  let env = function
    | "x" -> Some tint
    | "b" -> Some tbool
    | _ -> None
  in
  let t e = Tc.type_of_expr env e in
  Alcotest.(check bool) "int" true (t B.(v "x" + i 1) = Ok tint);
  Alcotest.(check bool) "cmp" true (t B.(v "x" < i 1) = Ok tbool);
  Alcotest.(check bool) "clock" true (t B.(clk (v "x")) = Ok tevent);
  Alcotest.(check bool) "if" true
    (t B.(if_ (v "b") (v "x") (i 0)) = Ok tint);
  Alcotest.(check bool) "error" true (Result.is_error (t B.(v "b" + i 1)))

let test_find_process () =
  let prog = B.program "m" [ simple_counter ] in
  Alcotest.(check bool) "found" true
    (Ast.find_process prog "count_up" <> None);
  Alcotest.(check bool) "not found" true
    (Ast.find_process prog "nope" = None)

let suite =
  [ ("signal.ast",
     [ Alcotest.test_case "free_signals" `Quick test_free_signals;
       Alcotest.test_case "defined_signals" `Quick test_defined_signals;
       Alcotest.test_case "stmt_reads" `Quick test_stmt_reads;
       Alcotest.test_case "rename" `Quick test_rename;
       Alcotest.test_case "expr_size" `Quick test_expr_size;
       Alcotest.test_case "find_process" `Quick test_find_process ]);
    ("signal.pp",
     [ Alcotest.test_case "expressions" `Quick test_pp_expr;
       Alcotest.test_case "process header" `Quick test_pp_process_roundtrip_text;
       Alcotest.test_case "library processes" `Quick test_pp_stdprocs ]);
    ("signal.typecheck",
     [ Alcotest.test_case "well-typed" `Quick test_typecheck_ok;
       Alcotest.test_case "unbound signal" `Quick test_typecheck_unbound;
       Alcotest.test_case "double definition" `Quick test_typecheck_double_def;
       Alcotest.test_case "total/partial mix" `Quick test_typecheck_partial_mix;
       Alcotest.test_case "input definition" `Quick test_typecheck_input_def;
       Alcotest.test_case "type clash" `Quick test_typecheck_type_clash;
       Alcotest.test_case "undefined output" `Quick test_typecheck_undefined_output;
       Alcotest.test_case "instance arity" `Quick test_typecheck_instance_arity;
       Alcotest.test_case "unknown instance" `Quick test_typecheck_unknown_instance;
       Alcotest.test_case "event promotes to bool" `Quick test_event_promotes_to_bool;
       Alcotest.test_case "type_of_expr" `Quick test_type_of_expr ]) ]
