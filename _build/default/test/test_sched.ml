(* Scheduler synthesis, validity, policies, affine export — including
   the paper's 4/6/8/8 ms case (Sec. V). *)

module T = Sched.Task
module S = Sched.Static_sched
module E = Sched.Export
module A = Clocks.Affine
module W = Clocks.Pword

let mk ?deadline ?offset ?priority name period wcet =
  T.make ?deadline_us:deadline ?offset_us:offset ?priority ~name
    ~period_us:period ~wcet_us:wcet ()

let paper_tasks =
  [ mk "thProducer" 4000 1000;
    mk "thConsumer" 6000 1000;
    mk "thProdTimer" 8000 1000;
    mk "thConsTimer" 8000 1000 ]

let synth ?policy tasks =
  match S.synthesize ?policy tasks with
  | Ok s -> s
  | Error f -> Alcotest.fail f.S.f_message

let test_task_invalid () =
  Alcotest.(check bool) "zero period" true
    (try ignore (mk "x" 0 1); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero wcet" true
    (try ignore (mk "x" 10 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "deadline < wcet" true
    (try ignore (mk ~deadline:1 "x" 10 5); false
     with Invalid_argument _ -> true)

let test_hyperperiod_paper () =
  Alcotest.(check int) "lcm(4,6,8,8) = 24 ms" 24000
    (T.hyperperiod_us paper_tasks)

let test_utilization_paper () =
  let u = T.utilization paper_tasks in
  Alcotest.(check bool) "2/3 utilization" true (abs_float (u -. (2.0 /. 3.0)) < 1e-9)

let test_paper_schedule_edf () =
  let s = synth ~policy:S.Edf paper_tasks in
  Alcotest.(check int) "hyper-period" 24000 s.S.hyperperiod_us;
  Alcotest.(check int) "base tick 1 ms" 1000 s.S.base_us;
  Alcotest.(check (list string)) "valid" [] (S.validate s);
  (* jobs per hyper-period: 6 + 4 + 3 + 3 = 16 *)
  Alcotest.(check int) "job count" 16 (List.length s.S.jobs)

let test_paper_schedule_rm () =
  let s = synth ~policy:S.Rm paper_tasks in
  Alcotest.(check (list string)) "valid under RM" [] (S.validate s);
  (* under RM the producer (smallest period) always starts first at
     simultaneous dispatch *)
  match s.S.jobs with
  | first :: _ ->
    Alcotest.(check string) "producer first" "thProducer"
      first.S.j_task.T.t_name
  | [] -> Alcotest.fail "empty schedule"

let test_fifo_policy () =
  let s = synth ~policy:S.Fifo paper_tasks in
  Alcotest.(check (list string)) "valid under FIFO" [] (S.validate s)

let test_fp_policy () =
  let tasks =
    [ mk ~priority:1 "low" 4000 1000; mk ~priority:9 "high" 4000 1000 ]
  in
  let s = synth ~policy:S.Fp tasks in
  match s.S.jobs with
  | first :: _ ->
    Alcotest.(check string) "high priority first" "high"
      first.S.j_task.T.t_name
  | [] -> Alcotest.fail "empty schedule"

let test_infeasible_overload () =
  (* utilization > 1 cannot be scheduled *)
  let tasks = [ mk "a" 2000 1500; mk "b" 2000 1500 ] in
  match S.synthesize tasks with
  | Ok _ -> Alcotest.fail "overloaded set must fail"
  | Error f -> Alcotest.(check bool) "names a task" true (f.S.f_task <> "")

let test_infeasible_nonpreemptive_blocking () =
  (* a long low-rate job blocks a short-deadline task: non-preemptive
     EDF misses even at low utilization *)
  let tasks = [ mk "long" 100_000 60_000; mk ~deadline:2000 "short" 50_000 1000 ] in
  match S.synthesize ~policy:S.Fifo tasks with
  | Ok s -> Alcotest.fail ("should be infeasible: " ^ Format.asprintf "%a" S.pp_schedule s)
  | Error _ -> ()

let test_offsets () =
  let tasks = [ mk ~offset:2000 "a" 4000 1000 ] in
  let s = synth tasks in
  match s.S.jobs with
  | j :: _ -> Alcotest.(check int) "first dispatch at offset" 2000 j.S.dispatch_us
  | [] -> Alcotest.fail "no jobs"

let test_event_times () =
  let s = synth ~policy:S.Edf paper_tasks in
  Alcotest.(check (list int)) "producer dispatches"
    [ 0; 4000; 8000; 12000; 16000; 20000 ]
    (S.event_times s "thProducer" S.Dispatch);
  Alcotest.(check (list int)) "producer deadlines"
    [ 4000; 8000; 12000; 16000; 20000; 24000 ]
    (S.event_times s "thProducer" S.Deadline);
  Alcotest.(check int) "six starts" 6
    (List.length (S.event_times s "thProducer" S.Start))

let test_event_affine_dispatch () =
  let s = synth ~policy:S.Edf paper_tasks in
  (match S.event_affine s "thProducer" S.Dispatch with
   | Some p ->
     Alcotest.(check int) "period 4 ticks" 4 p.A.period;
     Alcotest.(check int) "offset 0" 0 p.A.offset
   | None -> Alcotest.fail "dispatch is strictly periodic");
  match S.event_affine s "thProdTimer" S.Dispatch with
  | Some p -> Alcotest.(check int) "timer period 8" 8 p.A.period
  | None -> Alcotest.fail "timer dispatch is periodic"

let test_event_word_matches_times () =
  let s = synth ~policy:S.Edf paper_tasks in
  List.iter
    (fun t ->
      List.iter
        (fun ev ->
          let w = S.event_word s t.T.t_name ev in
          let times = S.event_times s t.T.t_name ev in
          List.iter
            (fun us ->
              let tick = us / s.S.base_us mod (s.S.hyperperiod_us / s.S.base_us) in
              Alcotest.(check bool)
                (Printf.sprintf "%s tick %d" t.T.t_name tick)
                true (W.tick w tick))
            times)
        [ S.Dispatch; S.Start; S.Complete ])
    paper_tasks

let test_export_relations () =
  let s = synth ~policy:S.Edf paper_tasks in
  let entries = E.export s in
  (* 4 tasks x 4 events *)
  Alcotest.(check int) "entry count" 16 (List.length entries);
  let dispatch_rel name =
    List.find_map
      (fun e ->
        if e.E.e_task = name && e.E.e_event = S.Dispatch then e.E.e_relation
        else None)
      entries
  in
  match dispatch_rel "thProducer" with
  | Some r ->
    Alcotest.(check bool) "affine (1,0,4)" true
      (A.equivalent r (A.relation ~n:1 ~phi:0 ~d:4))
  | None -> Alcotest.fail "producer dispatch must export an affine relation"

let test_timer_synchronizability () =
  (* the paper's two 8 ms timers: dispatch clocks are synchronizable *)
  let s = synth ~policy:S.Edf paper_tasks in
  Alcotest.(check bool) "timers synchronizable" true
    (E.synchronizable s "thProdTimer" "thConsTimer" S.Dispatch);
  Alcotest.(check bool) "producer/consumer not" false
    (E.synchronizable s "thProducer" "thConsumer" S.Dispatch)

let test_start_not_always_periodic () =
  (* under EDF the consumer's start wanders inside the hyper-period *)
  let s = synth ~policy:S.Edf paper_tasks in
  let words_ok =
    List.for_all
      (fun t ->
        let w = S.event_word s t.T.t_name S.Start in
        let n_ticks = List.length (S.event_times s t.T.t_name S.Start) in
        fst (W.rate w) * ((s.S.hyperperiod_us / s.S.base_us) / snd (W.rate w))
        = n_ticks)
      paper_tasks
  in
  Alcotest.(check bool) "word rates consistent" true words_ok

(* property: any random feasible-looking task set either schedules
   validly or is refused — never an invalid schedule *)
let prop_schedule_valid_or_refused =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (pair (int_range 1 4) (int_range 1 3)))
  in
  QCheck2.Test.make ~name:"synthesized schedules are always valid" ~count:200
    gen (fun specs ->
      let tasks =
        List.mapi
          (fun i (p, c) ->
            let period = p * 2000 in
            let wcet = min (c * 500) period in
            mk (Printf.sprintf "t%d" i) period wcet)
          specs
      in
      match S.synthesize tasks with
      | Ok s -> S.is_valid s
      | Error _ -> true)

let prop_policies_agree_on_validity =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 4) (pair (int_range 1 4) (int_range 1 2)))
  in
  QCheck2.Test.make ~name:"EDF succeeds whenever RM does" ~count:200 gen
    (fun specs ->
      let tasks =
        List.mapi
          (fun i (p, c) -> mk (Printf.sprintf "t%d" i) (p * 2000) (c * 500))
          specs
      in
      match S.synthesize ~policy:S.Rm tasks with
      | Ok _ -> (
        (* EDF is at least as powerful as RM for these synchronous sets *)
        match S.synthesize ~policy:S.Edf tasks with
        | Ok s -> S.is_valid s
        | Error _ -> false)
      | Error _ -> true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_schedule_valid_or_refused; prop_policies_agree_on_validity ]

let suite =
  [ ("sched.task",
     [ Alcotest.test_case "invalid tasks" `Quick test_task_invalid;
       Alcotest.test_case "paper hyper-period 24 ms" `Quick
         test_hyperperiod_paper;
       Alcotest.test_case "paper utilization" `Quick test_utilization_paper ]);
    ("sched.synthesis",
     [ Alcotest.test_case "paper set under EDF" `Quick test_paper_schedule_edf;
       Alcotest.test_case "paper set under RM" `Quick test_paper_schedule_rm;
       Alcotest.test_case "FIFO policy" `Quick test_fifo_policy;
       Alcotest.test_case "fixed priority" `Quick test_fp_policy;
       Alcotest.test_case "overload refused" `Quick test_infeasible_overload;
       Alcotest.test_case "non-preemptive blocking" `Quick
         test_infeasible_nonpreemptive_blocking;
       Alcotest.test_case "offsets" `Quick test_offsets ]
     @ qsuite);
    ("sched.export",
     [ Alcotest.test_case "event times" `Quick test_event_times;
       Alcotest.test_case "dispatch affine" `Quick test_event_affine_dispatch;
       Alcotest.test_case "words match times" `Quick
         test_event_word_matches_times;
       Alcotest.test_case "affine relations" `Quick test_export_relations;
       Alcotest.test_case "timer synchronizability (paper V)" `Quick
         test_timer_synchronizability;
       Alcotest.test_case "start words" `Quick test_start_not_always_periodic ]) ]
