(* Affine clock relations: algebraic laws plus brute-force agreement
   with index unrolling. *)

module A = Clocks.Affine

let horizon = 600

let test_periodic_basics () =
  let c = A.periodic ~period:4 ~offset:2 in
  Alcotest.(check (list int)) "ticks" [ 2; 6; 10; 14 ] (A.ticks c ~horizon:17);
  Alcotest.(check bool) "mem" true (A.mem c 10);
  Alcotest.(check bool) "not mem" false (A.mem c 11);
  Alcotest.(check bool) "before offset" false (A.mem c 0)

let test_periodic_invalid () =
  Alcotest.check_raises "period 0" (Invalid_argument "Affine.periodic: period < 1")
    (fun () -> ignore (A.periodic ~period:0 ~offset:0));
  Alcotest.check_raises "negative offset"
    (Invalid_argument "Affine.periodic: offset < 0") (fun () ->
      ignore (A.periodic ~period:2 ~offset:(-1)))

let test_subsample () =
  let c = A.periodic ~period:2 ~offset:1 in
  let s = A.subsample c ~d:3 ~phi:1 in
  (* ticks of c: 1,3,5,7,9,11,... keep indices 1,4,7,... -> 3,9,15 *)
  Alcotest.(check (list int)) "subsampled" [ 3; 9; 15 ] (A.ticks s ~horizon:17)

let test_synchronizable () =
  let c1 = A.periodic ~period:4 ~offset:2 in
  let c2 = A.periodic ~period:4 ~offset:2 in
  let c3 = A.periodic ~period:4 ~offset:0 in
  Alcotest.(check bool) "same" true (A.synchronizable c1 c2);
  Alcotest.(check bool) "shifted" false (A.synchronizable c1 c3)

let test_intersect () =
  let c1 = A.periodic ~period:4 ~offset:0 in
  let c2 = A.periodic ~period:6 ~offset:2 in
  (match A.intersect c1 c2 with
   | Some c ->
     Alcotest.(check int) "period lcm" 12 c.A.period;
     Alcotest.(check int) "first common" 8 c.A.offset
   | None -> Alcotest.fail "4t and 6t+2 do intersect");
  let c3 = A.periodic ~period:4 ~offset:1 in
  let c4 = A.periodic ~period:4 ~offset:2 in
  Alcotest.(check bool) "disjoint" true (A.never_together c3 c4);
  let c5 = A.periodic ~period:2 ~offset:1 in
  let c6 = A.periodic ~period:4 ~offset:2 in
  Alcotest.(check bool) "odd vs 4t+2 disjoint" true (A.never_together c5 c6)

let test_relation_of () =
  let base = A.periodic ~period:2 ~offset:1 in
  let sub = A.subsample base ~d:3 ~phi:2 in
  (match A.relation_of ~base sub with
   | Some r ->
     Alcotest.(check int) "d" 3 r.A.d;
     Alcotest.(check int) "phi" 2 r.A.phi
   | None -> Alcotest.fail "subsample must be recognized");
  let unrelated = A.periodic ~period:3 ~offset:0 in
  Alcotest.(check bool) "unrelated rejected" true
    (A.relation_of ~base unrelated = None)

let test_relation_canon () =
  let r1 = A.relation ~n:2 ~phi:4 ~d:6 in
  let r2 = A.relation ~n:1 ~phi:2 ~d:3 in
  Alcotest.(check bool) "canon scales down" true (A.equivalent r1 r2);
  let r3 = A.relation ~n:2 ~phi:3 ~d:6 in
  Alcotest.(check bool) "phi blocks reduction" false (A.equivalent r3 r2)

let test_compose_example () =
  (* paper-style: thread at period 4 vs base 1, thread at period 8 *)
  let r48 = A.compose (A.relation ~n:1 ~phi:0 ~d:4) (A.relation ~n:1 ~phi:0 ~d:2) in
  Alcotest.(check bool) "4 then x2 = 8" true
    (A.equivalent r48 (A.relation ~n:1 ~phi:0 ~d:8))

let prop_compose_identity =
  QCheck2.Test.make ~name:"identity is neutral for compose" ~count:300
    QCheck2.Gen.(triple (int_range 1 20) (int_range 0 20) (int_range 1 20))
    (fun (n, phi, d) ->
      let r = A.relation ~n ~phi ~d in
      A.equivalent (A.compose r A.identity) r
      && A.equivalent (A.compose A.identity r) r)

let prop_compose_inverse =
  QCheck2.Test.make ~name:"r ∘ r⁻¹ ≡ identity" ~count:300
    QCheck2.Gen.(triple (int_range 1 20) (int_range 0 20) (int_range 1 20))
    (fun (n, phi, d) ->
      let r = A.relation ~n ~phi ~d in
      A.equivalent (A.compose r (A.inverse r)) A.identity)

let prop_compose_assoc =
  QCheck2.Test.make ~name:"compose is associative (canon)" ~count:300
    QCheck2.Gen.(
      triple
        (triple (int_range 1 8) (int_range 0 8) (int_range 1 8))
        (triple (int_range 1 8) (int_range 0 8) (int_range 1 8))
        (triple (int_range 1 8) (int_range 0 8) (int_range 1 8)))
    (fun ((a, b, c), (d, e, f), (g, h, i)) ->
      let r1 = A.relation ~n:a ~phi:b ~d:c in
      let r2 = A.relation ~n:d ~phi:e ~d:f in
      let r3 = A.relation ~n:g ~phi:h ~d:i in
      A.equivalent
        (A.compose (A.compose r1 r2) r3)
        (A.compose r1 (A.compose r2 r3)))

let prop_subsample_unrolling =
  QCheck2.Test.make ~name:"subsample agrees with index unrolling" ~count:300
    QCheck2.Gen.(
      tup4 (int_range 1 6) (int_range 0 6) (int_range 1 5) (int_range 0 5))
    (fun (p, o, d, phi) ->
      let c = A.periodic ~period:p ~offset:o in
      let s = A.subsample c ~d ~phi in
      let base_ticks = Array.of_list (A.ticks c ~horizon) in
      let expected =
        List.filteri (fun i _ -> i >= phi && (i - phi) mod d = 0)
          (Array.to_list base_ticks)
      in
      let got = A.ticks s ~horizon in
      (* compare on the common prefix (horizon truncation) *)
      let k = min (List.length expected) (List.length got) in
      let take n l = List.filteri (fun i _ -> i < n) l in
      take k expected = take k got)

let prop_intersect_sound =
  QCheck2.Test.make ~name:"intersect = set intersection" ~count:300
    QCheck2.Gen.(
      tup4 (int_range 1 9) (int_range 0 9) (int_range 1 9) (int_range 0 9))
    (fun (p1, o1, p2, o2) ->
      let c1 = A.periodic ~period:p1 ~offset:o1 in
      let c2 = A.periodic ~period:p2 ~offset:o2 in
      let inter t = A.mem c1 t && A.mem c2 t in
      match A.intersect c1 c2 with
      | None -> List.for_all (fun t -> not (inter t)) (List.init horizon Fun.id)
      | Some c ->
        List.for_all (fun t -> A.mem c t = inter t) (List.init horizon Fun.id))

let prop_relation_of_roundtrip =
  QCheck2.Test.make ~name:"relation_of inverts subsample" ~count:300
    QCheck2.Gen.(
      tup4 (int_range 1 6) (int_range 0 6) (int_range 1 5) (int_range 0 5))
    (fun (p, o, d, phi) ->
      let base = A.periodic ~period:p ~offset:o in
      let sub = A.subsample base ~d ~phi in
      match A.relation_of ~base sub with
      | Some r -> r.A.d = d && r.A.phi = phi && r.A.n = 1
      | None -> false)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_compose_identity; prop_compose_inverse; prop_compose_assoc;
      prop_subsample_unrolling; prop_intersect_sound;
      prop_relation_of_roundtrip ]

let suite =
  [ ("affine",
     [ Alcotest.test_case "periodic basics" `Quick test_periodic_basics;
       Alcotest.test_case "invalid arguments" `Quick test_periodic_invalid;
       Alcotest.test_case "subsample" `Quick test_subsample;
       Alcotest.test_case "synchronizable" `Quick test_synchronizable;
       Alcotest.test_case "intersect" `Quick test_intersect;
       Alcotest.test_case "relation_of" `Quick test_relation_of;
       Alcotest.test_case "canonical form" `Quick test_relation_canon;
       Alcotest.test_case "compose example" `Quick test_compose_example ]
     @ qsuite) ]
