test/test_compile.ml: Alcotest Format Fun List Polychrony Polysim Printf QCheck2 QCheck_alcotest Signal_lang String
