test/test_affine.ml: Alcotest Array Clocks Fun List QCheck2 QCheck_alcotest
