test/test_pword.ml: Alcotest Clocks Fun List Printf QCheck2 QCheck_alcotest
