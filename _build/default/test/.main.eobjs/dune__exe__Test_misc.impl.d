test/test_misc.ml: Alcotest Clocks Format List Polychrony Polysim Sched Signal_lang String Trans
