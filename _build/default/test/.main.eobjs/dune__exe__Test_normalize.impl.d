test/test_normalize.ml: Alcotest List Printf Result Signal_lang String
