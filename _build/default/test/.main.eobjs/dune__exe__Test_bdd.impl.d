test/test_bdd.ml: Alcotest Array Clocks List QCheck2 QCheck_alcotest
