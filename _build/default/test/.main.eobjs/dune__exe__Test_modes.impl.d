test/test_modes.ml: Aadl Alcotest Analysis Fun Lazy List Polychrony Polysim Signal_lang Str Trans
