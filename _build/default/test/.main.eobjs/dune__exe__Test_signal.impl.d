test/test_signal.ml: Alcotest List Printf Result Signal_lang String
