test/test_analysis.ml: Alcotest Analysis Clocks List Result Signal_lang String
