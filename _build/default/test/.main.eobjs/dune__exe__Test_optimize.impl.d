test/test_optimize.ml: Alcotest Fun List Polychrony Polysim Signal_lang
