test/test_engine.ml: Alcotest List Polysim Signal_lang String
