test/test_sched.ml: Alcotest Clocks Format List Printf QCheck2 QCheck_alcotest Sched
