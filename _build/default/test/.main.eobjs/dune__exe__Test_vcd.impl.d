test/test_vcd.ml: Alcotest Format Fun List Option Polychrony Polysim Printf Sched Signal_lang String
