test/test_codegen.ml: Alcotest Filename List Polychrony Polysim Printf Signal_lang String Sys Unix
