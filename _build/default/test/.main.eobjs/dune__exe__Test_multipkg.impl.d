test/test_multipkg.ml: Aadl Alcotest Analysis List Polychrony Polysim String
