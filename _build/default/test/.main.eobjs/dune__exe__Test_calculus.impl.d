test/test_calculus.ml: Alcotest Clocks Format List Printf Signal_lang String
