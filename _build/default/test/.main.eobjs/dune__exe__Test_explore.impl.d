test/test_explore.ml: Alcotest List Polysim Printf Signal_lang
