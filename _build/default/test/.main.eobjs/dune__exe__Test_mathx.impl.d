test/test_mathx.ml: Alcotest List Putil QCheck2 QCheck_alcotest
