test/test_pipeline.ml: Aadl Alcotest Analysis Clocks Format Lazy List Polychrony Polysim Sched Signal_lang String
