test/test_aadl.ml: Aadl Alcotest Format List Polychrony String
