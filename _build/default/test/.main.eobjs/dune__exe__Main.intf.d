test/main.mli:
