test/test_trans.ml: Aadl Alcotest List Polychrony Sched Signal_lang String Trans
