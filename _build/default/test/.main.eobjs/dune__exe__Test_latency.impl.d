test/test_latency.ml: Alcotest Format Fun Lazy List Polychrony Polysim Printf Sched Signal_lang String Trans
