test/test_sig_parser.ml: Alcotest Format List Polychrony Polysim QCheck2 QCheck_alcotest Signal_lang Trans
