test/test_crossval.ml: Alcotest Array Clocks Format List Polychrony Polysim Printf QCheck2 QCheck_alcotest Signal_lang
