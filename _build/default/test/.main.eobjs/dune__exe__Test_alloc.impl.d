test/test_alloc.ml: Alcotest List Polychrony Polysim Printf QCheck2 QCheck_alcotest Sched String Trans
