test/test_invariants.ml: Alcotest Buffer Clocks Fun Hashtbl List Option Polychrony Polysim Printf QCheck2 QCheck_alcotest Sched Signal_lang
