(* Digraph, deadlock (causality) and determinism analyses, and the
   profiling cost model. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module G = Analysis.Digraph
module D = Analysis.Deadlock
module Det = Analysis.Determinism
module Prof = Analysis.Profiling
module C = Clocks.Calculus

let tint = Types.Tint
let tbool = Types.Tbool

(* ----------------------------- digraph ---------------------------- *)

let test_graph_basics () =
  let g = G.create () in
  G.add_edge g "a" "b";
  G.add_edge g "b" "c";
  G.add_edge g "a" "b";
  Alcotest.(check int) "edges deduplicated" 2 (G.edge_count g);
  Alcotest.(check (list string)) "succ of a" [ "b" ] (G.successors g "a");
  Alcotest.(check (list string)) "vertices" [ "a"; "b"; "c" ] (G.vertices g)

let test_sccs () =
  let g = G.create () in
  G.add_edge g "a" "b";
  G.add_edge g "b" "c";
  G.add_edge g "c" "a";
  G.add_edge g "c" "d";
  let nt = G.nontrivial_sccs g in
  Alcotest.(check int) "one cycle" 1 (List.length nt);
  Alcotest.(check (list string)) "cycle members" [ "a"; "b"; "c" ]
    (List.sort String.compare (List.hd nt))

let test_self_loop () =
  let g = G.create () in
  G.add_edge g "a" "a";
  Alcotest.(check int) "self loop is a cycle" 1
    (List.length (G.nontrivial_sccs g))

let test_topo_sort () =
  let g = G.create () in
  G.add_edge g "a" "b";
  G.add_edge g "b" "c";
  G.add_edge g "a" "c";
  (match G.topological_sort g with
   | Ok order ->
     let pos x =
       let rec go i = function
         | [] -> -1
         | y :: rest -> if String.equal x y then i else go (i + 1) rest
       in
       go 0 order
     in
     Alcotest.(check bool) "a before b" true (pos "a" < pos "b");
     Alcotest.(check bool) "b before c" true (pos "b" < pos "c")
   | Error _ -> Alcotest.fail "acyclic graph");
  let g2 = G.create () in
  G.add_edge g2 "x" "y";
  G.add_edge g2 "y" "x";
  Alcotest.(check bool) "cycle detected" true
    (Result.is_error (G.topological_sort g2))

let test_reachable () =
  let g = G.create () in
  G.add_edge g "a" "b";
  G.add_edge g "b" "c";
  G.add_edge g "d" "a";
  Alcotest.(check (list string)) "from a" [ "b"; "c" ] (G.reachable g "a")

(* ----------------------------- deadlock --------------------------- *)

let test_deadlock_free () =
  let p =
    B.proc ~name:"ok"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := delay (v "y") + v "x" ]
  in
  let kp = N.process_exn p in
  let r = D.analyze kp in
  Alcotest.(check bool) "no cycle" true r.D.deadlock_free;
  Alcotest.(check int) "no scc" 0 (List.length r.D.cycles)

let test_deadlock_cycle () =
  let p =
    B.proc ~name:"dead"
      ~inputs:[ Ast.var "x" tint ]
      ~outputs:[ Ast.var "y" tint ]
      ~locals:[ Ast.var "w" tint ]
      B.[ "y" := v "w" + v "x"; "w" := v "y" + i 1 ]
  in
  let kp = N.process_exn p in
  let r = D.analyze kp in
  Alcotest.(check bool) "cycle found" false r.D.deadlock_free;
  match r.D.cycles with
  | [ c ] ->
    Alcotest.(check bool) "y on cycle" true (List.mem "y" c.D.signals);
    Alcotest.(check bool) "w on cycle" true (List.mem "w" c.D.signals)
  | _ -> Alcotest.fail "expected one cycle"

let test_false_cycle_clock_disjoint () =
  (* y and w depend on each other but on exclusive clocks: the classic
     false cycle resolved by clock information *)
  let p =
    B.proc ~name:"falsecycle"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool ]
      ~outputs:[ Ast.var "y" tint; Ast.var "w" tint ]
      B.[ "y" := when_ (v "w" + i 1) (v "c") ;
          "w" := when_ (v "y" + i 1) (not_ (v "c")) ]
  in
  let kp = N.process_exn p in
  let c = C.analyze kp in
  let r = D.analyze ~calc:c kp in
  (* the SCC exists but is infeasible *)
  Alcotest.(check bool) "scc reported" true (List.length r.D.cycles >= 1);
  Alcotest.(check bool) "classified deadlock-free" true r.D.deadlock_free

let test_deadlock_through_fifo () =
  (* pop of a fifo feeding its own push through stepwise logic *)
  let p =
    B.proc ~name:"loop_fifo"
      ~inputs:[ Ast.var "e" Types.Tevent ]
      ~outputs:[ Ast.var "d" tint ]
      ~locals:[ Ast.var "s" tint; Ast.var "x" tint ]
      B.[ "x" := v "d" + i 1;
          inst ~params:[ Types.Vint 4; Types.Vstring "dropoldest" ] ~label:"q" "fifo"
            [ v "x"; v "e" ] [ "d"; "s" ] ]
  in
  let kp = N.process_exn p in
  let r = D.analyze kp in
  (* d -> x (stepwise) and push x -> size s, pop e -> d: the d/x loop
     goes through the fifo's push->size edge only, so d->x->s is not a
     cycle; but push->data is NOT an instantaneous dep, so this is
     actually deadlock-free. *)
  Alcotest.(check bool) "fifo breaks the loop" true r.D.deadlock_free

(* --------------------------- determinism -------------------------- *)

let test_determinism_exclusive () =
  let p =
    B.proc ~name:"det"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" =:: when_ (v "x") (v "c");
          "y" =:: when_ (v "x" + i 1) (not_ (v "c")) ]
  in
  let kp = N.process_exn p in
  let c = C.analyze kp in
  let r = Det.analyze c kp in
  Alcotest.(check bool) "exclusive guards deterministic" true
    r.Det.deterministic

let test_determinism_overlap () =
  (* the paper's finding: guards without priorities overlap *)
  let p =
    B.proc ~name:"nondet"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool; Ast.var "d" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" =:: when_ (v "x") (v "c");
          "y" =:: when_ (v "x" + i 1) (v "d") ]
  in
  let kp = N.process_exn p in
  let c = C.analyze kp in
  let r = Det.analyze c kp in
  Alcotest.(check bool) "overlap detected" false r.Det.deterministic;
  match r.Det.issues with
  | [ i ] -> Alcotest.(check string) "on y" "y" i.Det.signal
  | _ -> Alcotest.fail "expected exactly one issue"

let test_determinism_priority_fix () =
  (* priorities encoded by guarding the second branch with ¬c: the
     automaton becomes deterministic, as in the case study *)
  let p =
    B.proc ~name:"prioritized"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool; Ast.var "d" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ clk (v "c") ^= clk (v "d");
          "y" =:: when_ (v "x") (v "c");
          "y" =:: when_ (v "x" + i 1) (v "d" && not_ (v "c")) ]
  in
  let kp = N.process_exn p in
  let c = C.analyze kp in
  let r = Det.analyze c kp in
  Alcotest.(check bool) "priorities restore determinism" true
    r.Det.deterministic

(* ---------------------------- profiling --------------------------- *)

let test_profiling_static () =
  let p =
    B.proc ~name:"prof"
      ~inputs:[ Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint; Ast.var "z" tint ]
      B.[ "y" := v "a" + v "b"; "z" := v "a" * v "b" ]
  in
  let kp = N.process_exn p in
  let r = Prof.static_costs kp in
  Alcotest.(check bool) "total positive" true (r.Prof.total_static > 0);
  (* multiplication costs more than addition in the default model *)
  let cost x = List.assoc x r.Prof.per_signal in
  Alcotest.(check bool) "mul > add" true (cost "_t2" > cost "_t1" || cost "z" >= cost "y")

let test_profiling_weighted () =
  let p =
    B.proc ~name:"prof"
      ~inputs:[ Ast.var "a" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "a" + i 1 ]
  in
  let kp = N.process_exn p in
  let r = Prof.with_counts ~counts:(fun _ -> 10) kp in
  Alcotest.(check int) "weighted = 10x static" (10 * r.Prof.total_static)
    r.Prof.total_weighted

let test_profiling_model_sensitivity () =
  let p =
    B.proc ~name:"prof"
      ~inputs:[ Ast.var "a" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "a" * v "a" ]
  in
  let kp = N.process_exn p in
  let cheap = { Prof.default_cost_model with Prof.c_mult = 1 } in
  let r1 = Prof.static_costs kp in
  let r2 = Prof.static_costs ~model:cheap kp in
  Alcotest.(check bool) "expensive model costs more" true
    (r1.Prof.total_static > r2.Prof.total_static)

let suite =
  [ ("digraph",
     [ Alcotest.test_case "basics" `Quick test_graph_basics;
       Alcotest.test_case "sccs" `Quick test_sccs;
       Alcotest.test_case "self loop" `Quick test_self_loop;
       Alcotest.test_case "topological sort" `Quick test_topo_sort;
       Alcotest.test_case "reachable" `Quick test_reachable ]);
    ("deadlock",
     [ Alcotest.test_case "deadlock-free with delay" `Quick test_deadlock_free;
       Alcotest.test_case "instantaneous cycle" `Quick test_deadlock_cycle;
       Alcotest.test_case "false cycle (clocks)" `Quick
         test_false_cycle_clock_disjoint;
       Alcotest.test_case "fifo breaks cycles" `Quick test_deadlock_through_fifo ]);
    ("determinism",
     [ Alcotest.test_case "exclusive guards" `Quick test_determinism_exclusive;
       Alcotest.test_case "overlapping guards" `Quick test_determinism_overlap;
       Alcotest.test_case "priorities fix (paper V-C)" `Quick
         test_determinism_priority_fix ]);
    ("profiling",
     [ Alcotest.test_case "static costs" `Quick test_profiling_static;
       Alcotest.test_case "weighted costs" `Quick test_profiling_weighted;
       Alcotest.test_case "model sensitivity" `Quick
         test_profiling_model_sensitivity ]) ]
