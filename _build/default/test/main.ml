let () =
  Alcotest.run "polychrony-aadl"
    (Test_mathx.suite
     @ Test_signal.suite
     @ Test_normalize.suite
     @ Test_engine.suite
     @ Test_bdd.suite
     @ Test_calculus.suite
     @ Test_affine.suite
     @ Test_pword.suite
     @ Test_analysis.suite
     @ Test_aadl.suite
     @ Test_sched.suite
     @ Test_trans.suite
     @ Test_pipeline.suite
     @ Test_compile.suite
     @ Test_sig_parser.suite
     @ Test_alloc.suite
     @ Test_modes.suite
     @ Test_crossval.suite
     @ Test_optimize.suite
     @ Test_latency.suite
     @ Test_multipkg.suite
     @ Test_vcd.suite
     @ Test_invariants.suite
     @ Test_explore.suite
     @ Test_codegen.suite
     @ Test_misc.suite)
