(* Clock calculus: synchronization classes, derived clocks, hierarchy,
   contradiction detection. *)

module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module N = Signal_lang.Normalize
module C = Clocks.Calculus
module H = Clocks.Hierarchy

let tint = Types.Tint
let tbool = Types.Tbool
let tevent = Types.Tevent

let calc p = C.analyze (N.process_exn p)

let test_sync_classes () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint; Ast.var "z" tint ]
      B.[ "y" := v "a" + v "b"; "z" := delay (v "y") ]
  in
  let c = calc p in
  Alcotest.(check bool) "a ~ b" true (C.same_class c "a" "b");
  Alcotest.(check bool) "y ~ a" true (C.same_class c "y" "a");
  Alcotest.(check bool) "z ~ y" true (C.same_class c "z" "y")

let test_when_subclock () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := when_ (v "x") (v "c") ]
  in
  let c = calc p in
  Alcotest.(check bool) "y not synchronous with x" false
    (C.same_class c "y" "x");
  Alcotest.(check bool) "y subclock of x" true (C.subclock c "y" "x");
  Alcotest.(check bool) "y subclock of c" true (C.subclock c "y" "c");
  Alcotest.(check bool) "x not subclock of y" false (C.subclock c "x" "y")

let test_when_complement_exclusive () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool ]
      ~outputs:[ Ast.var "y1" tint; Ast.var "y2" tint ]
      B.[ "y1" := when_ (v "x") (v "c"); "y2" := when_ (v "x") (not_ (v "c")) ]
  in
  let c = calc p in
  Alcotest.(check bool) "complementary samples exclusive" true
    (C.exclusive c "y1" "y2")

let test_default_union () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := default (v "a") (v "b") ]
  in
  let c = calc p in
  Alcotest.(check bool) "a subclock of y" true (C.subclock c "a" "y");
  Alcotest.(check bool) "b subclock of y" true (C.subclock c "b" "y");
  Alcotest.(check bool) "y not subclock of a" false (C.subclock c "y" "a")

let test_null_clock () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      (* y sampled on c and on not c simultaneously: empty clock *)
      B.[ "y" := when_ (when_ (v "x") (v "c")) (not_ (v "c")) ]
  in
  let c = calc p in
  Alcotest.(check bool) "y provably null" true (C.is_null c "y");
  Alcotest.(check bool) "null signal listed" true
    (List.mem "y" (C.null_signals c))

let test_exclusion_constraint_used () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := default (v "a") (v "b"); clk (v "a") ^! clk (v "b") ]
  in
  let c = calc p in
  Alcotest.(check bool) "declared exclusion provable" true
    (C.exclusive c "a" "b")

let test_contradictory_constraints () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint ]
      ~outputs:[ Ast.var "y" tint ]
      (* a synchronous with y and exclusive with y: only satisfiable by
         the empty behaviour *)
      B.[ "y" := v "a" + i 1; clk (v "y") ^! clk (v "a") ]
  in
  let c = calc p in
  (* Φ forces ^y = ^a and ^y ∧ ^a = ∅, hence ^a = ∅ *)
  Alcotest.(check bool) "a forced null" true (C.is_null c "a")

let test_hierarchy_tree () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool ]
      ~outputs:[ Ast.var "y" tint; Ast.var "z" tint ]
      ~locals:[]
      B.[ clk (v "x") ^= clk (v "c");
          "y" := when_ (v "x") (v "c");
          "z" := when_ (v "y") (v "c") ]
  in
  let c = calc p in
  let h = H.build c in
  (* x/c is the root; y below it; z below or equal to y *)
  (match H.master h with
   | Some m ->
     Alcotest.(check bool) "master is x's class" true (C.same_class c m "x")
   | None -> Alcotest.fail "expected a single root");
  Alcotest.(check bool) "depth at least 1" true (H.depth h >= 1)

let test_hierarchy_forest () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint; Ast.var "b" tint ]
      ~outputs:[ Ast.var "y" tint; Ast.var "z" tint ]
      B.[ "y" := v "a" + i 1; "z" := v "b" + i 1 ]
  in
  let c = calc p in
  let h = H.build c in
  Alcotest.(check bool) "no master for independent inputs" true
    (H.master h = None);
  Alcotest.(check bool) "two roots" true (List.length (H.roots h) >= 2)

let test_class_count_scales () =
  (* chain of when-samplings produces one class per level *)
  let n = 30 in
  let locals = List.init n (fun i -> Ast.var (Printf.sprintf "l%d" i) tint) in
  let body =
    B.("l0" := v "x")
    :: List.init (n - 1) (fun i ->
           let dst = Printf.sprintf "l%d" (i + 1) in
           let src = Printf.sprintf "l%d" i in
           B.(dst := when_ (v src) (v "c")))
    @
    let last = Printf.sprintf "l%d" (n - 1) in
    [ B.("y" := v last) ]
  in
  let p =
    B.proc ~name:"chain" ~locals
      ~inputs:[ Ast.var "x" tint; Ast.var "c" tbool ]
      ~outputs:[ Ast.var "y" tint ]
      body
  in
  let c = calc p in
  Alcotest.(check bool) "many classes" true (C.class_count c >= n)

let test_fm_clock_structure () =
  (* the fm memory: o present iff b present and true *)
  let p =
    B.proc ~name:"use_fm"
      ~inputs:[ Ast.var "i" tint; Ast.var "b" tbool ]
      ~outputs:[ Ast.var "o" tint ]
      B.[ inst ~label:"mem" "fm" [ v "i"; v "b" ] [ "o" ] ]
  in
  let c = calc p in
  Alcotest.(check bool) "o subclock of b" true (C.subclock c "o" "b");
  Alcotest.(check bool) "o not null" false (C.is_null c "o");
  Alcotest.(check bool) "consistent" true (C.consistent c)

let test_representative_stable () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "a" + i 1 ]
  in
  let c = calc p in
  Alcotest.(check string) "repr of a" (C.representative c "a")
    (C.representative c "y")

let test_pp_summary_runs () =
  let p =
    B.proc ~name:"p"
      ~inputs:[ Ast.var "a" tint ]
      ~outputs:[ Ast.var "y" tint ]
      B.[ "y" := v "a" + i 1 ]
  in
  let c = calc p in
  let s = Format.asprintf "%a" C.pp_summary c in
  Alcotest.(check bool) "summary mentions classes" true
    (String.length s > 0)

let suite =
  [ ("calculus",
     [ Alcotest.test_case "sync classes" `Quick test_sync_classes;
       Alcotest.test_case "when subclock" `Quick test_when_subclock;
       Alcotest.test_case "complement exclusive" `Quick
         test_when_complement_exclusive;
       Alcotest.test_case "default union" `Quick test_default_union;
       Alcotest.test_case "null clock" `Quick test_null_clock;
       Alcotest.test_case "declared exclusion" `Quick
         test_exclusion_constraint_used;
       Alcotest.test_case "contradiction forces null" `Quick
         test_contradictory_constraints;
       Alcotest.test_case "hierarchy tree" `Quick test_hierarchy_tree;
       Alcotest.test_case "hierarchy forest" `Quick test_hierarchy_forest;
       Alcotest.test_case "class count scales" `Quick test_class_count_scales;
       Alcotest.test_case "fm clock structure" `Quick test_fm_clock_structure;
       Alcotest.test_case "stable representative" `Quick
         test_representative_stable;
       Alcotest.test_case "summary printer" `Quick test_pp_summary_runs ]) ]
