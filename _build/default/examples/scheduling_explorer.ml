(* Scheduling-policy exploration: sweep task-set utilization and
   compare how far each static non-preemptive policy scales before
   schedules become infeasible (the ablation DESIGN.md calls out).

   Run with: dune exec examples/scheduling_explorer.exe *)

module T = Sched.Task
module S = Sched.Static_sched

let policies = [ S.Edf; S.Rm; S.Fp; S.Fifo ]

(* a synthetic avionic-flavoured task set scaled by a wcet factor *)
let task_set ~wcet_scale =
  let mk name period wcet prio =
    T.make ~priority:prio ~name ~period_us:period
      ~wcet_us:(max 1 (wcet * wcet_scale / 100))
      ()
  in
  [ mk "inner_loop" 4000 1000 10;
    mk "outer_loop" 6000 1000 8;
    mk "monitor_a" 8000 1000 5;
    mk "monitor_b" 8000 1000 5;
    mk "telemetry" 12000 2000 2 ]

let feasible policy tasks =
  match S.synthesize ~policy tasks with
  | Ok s -> S.is_valid s
  | Error _ -> false

let () =
  Format.printf "wcet scale -> utilization, feasibility per policy@.";
  Format.printf "%8s %6s" "scale%" "util";
  List.iter (fun p -> Format.printf " %6s" (S.policy_to_string p)) policies;
  Format.printf "@.";
  let breaking = Hashtbl.create 4 in
  List.iter
    (fun scale ->
      let tasks = task_set ~wcet_scale:scale in
      Format.printf "%8d %6.2f" scale (T.utilization tasks);
      List.iter
        (fun p ->
          let ok = feasible p tasks in
          if (not ok) && not (Hashtbl.mem breaking p) then
            Hashtbl.add breaking p scale;
          Format.printf " %6s" (if ok then "yes" else "-"))
        policies;
      Format.printf "@.")
    [ 20; 40; 60; 80; 90; 100; 110; 120; 140; 160 ];
  Format.printf "@.first infeasible wcet scale per policy:@.";
  List.iter
    (fun p ->
      match Hashtbl.find_opt breaking p with
      | Some s ->
        Format.printf "  %-5s breaks at %d%%@." (S.policy_to_string p) s
      | None -> Format.printf "  %-5s never breaks in this sweep@."
                  (S.policy_to_string p))
    policies;
  (* detail: where EDF still succeeds but RM fails *)
  Format.printf "@.=== detail at the EDF/RM gap ===@.";
  let rec probe scale =
    if scale > 200 then ()
    else
      let tasks = task_set ~wcet_scale:scale in
      let edf = feasible S.Edf tasks and rm = feasible S.Rm tasks in
      if edf && not rm then begin
        Format.printf "at scale %d%%: EDF feasible, RM infeasible@." scale;
        match S.synthesize ~policy:S.Edf tasks with
        | Ok s -> Format.printf "%a@." S.pp_schedule s
        | Error _ -> ()
      end
      else probe (scale + 5)
  in
  probe 20
