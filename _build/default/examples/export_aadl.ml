(* Writes the bundled case study as a standalone .aadl file, so the CLI
   can be exercised on a real file:
     dune exec examples/export_aadl.exe
     dune exec bin/asme2ssme.exe -- analyze examples/producer_consumer.aadl *)
let () =
  let oc = open_out "examples/producer_consumer.aadl" in
  output_string oc Polychrony.Case_study.aadl_source;
  close_out oc;
  print_endline "wrote examples/producer_consumer.aadl"
