examples/distributed.ml: Format List Polychrony Polysim Sched Trans
