examples/modal_sensor.ml: Format List Polychrony Polysim Signal_lang String Trans
