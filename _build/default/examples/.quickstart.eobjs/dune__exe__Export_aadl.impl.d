examples/export_aadl.ml: Polychrony
