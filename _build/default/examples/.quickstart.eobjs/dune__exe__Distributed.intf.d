examples/distributed.mli:
