examples/export_aadl.mli:
