examples/quickstart.mli:
