examples/quickstart.ml: Format List Polychrony Polysim Signal_lang String Trans
