examples/producer_consumer.ml: Format List Polychrony Polysim Signal_lang String
