examples/scheduling_explorer.ml: Format Hashtbl List Sched
