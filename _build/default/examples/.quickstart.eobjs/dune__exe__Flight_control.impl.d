examples/flight_control.ml: Analysis Clocks Format Option Polychrony Polysim Sched Trans
