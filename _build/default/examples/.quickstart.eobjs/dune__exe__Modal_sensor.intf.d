examples/modal_sensor.mli:
