module A = Clocks.Affine
module W = Clocks.Pword
module S = Static_sched

type clock_export =
  | Caffine of A.periodic
  | Cword of W.t

type entry = {
  e_task : string;
  e_event : S.event;
  e_clock : clock_export;
  e_relation : A.relation option;
}

let base_clock = A.periodic ~period:1 ~offset:0

let clock_of s name ev =
  match S.event_affine s name ev with
  | Some p -> Caffine p
  | None -> Cword (S.event_word s name ev)

let relation_of = function
  | Caffine p -> A.relation_of ~base:base_clock p
  | Cword _ -> None

let entry s name ev =
  let c = clock_of s name ev in
  { e_task = name; e_event = ev; e_clock = c; e_relation = relation_of c }

let task_names s =
  List.sort_uniq String.compare
    (List.map (fun j -> j.S.j_task.Task.t_name) s.S.jobs)

let export s =
  List.concat_map
    (fun name ->
      List.map (entry s name)
        [ S.Dispatch; S.Start; S.Complete; S.Deadline ])
    (task_names s)

let dispatch_clock s name = clock_of s name S.Dispatch

let word_of = function
  | Caffine p -> W.of_periodic p
  | Cword w -> w

let synchronizable s t1 t2 ev =
  match clock_of s t1 ev, clock_of s t2 ev with
  | Caffine p1, Caffine p2 -> A.synchronizable p1 p2
  | c1, c2 -> W.equal (word_of c1) (word_of c2)

let event_to_string = function
  | S.Dispatch -> "dispatch"
  | S.Input_frozen -> "input_frozen"
  | S.Start -> "start"
  | S.Complete -> "complete"
  | S.Output_release -> "output_release"
  | S.Deadline -> "deadline"

let pp_entry ppf e =
  Format.fprintf ppf "%-16s %-14s " e.e_task (event_to_string e.e_event);
  (match e.e_clock with
   | Caffine p -> Format.fprintf ppf "%a" A.pp_periodic p
   | Cword w -> Format.fprintf ppf "%a" W.pp w);
  match e.e_relation with
  | Some r -> Format.fprintf ppf "  affine %a vs base" A.pp_relation r
  | None -> ()

let pp_export ppf s =
  Format.fprintf ppf "@[<v>affine clock export (base tick %d us)@,"
    s.S.base_us;
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_entry e) (export s);
  Format.fprintf ppf "@]"
