(** Export of synthesized schedules to affine clock systems
    (paper Sec. IV-D, step 3: "export schedules to SIGNAL affine clocks
    in a direct way").

    Every scheduled event stream becomes a clock on the base tick:
    a strictly periodic one is rendered as an affine relation
    [(1, φ, d)] against the base clock; an uneven one keeps its
    ultimately periodic word. Synchronizability between thread clocks
    (paper Sec. V: "synchronizability rules based on properties of
    affine relations") is decided on these forms. *)

type clock_export =
  | Caffine of Clocks.Affine.periodic
      (** strictly periodic on the base tick *)
  | Cword of Clocks.Pword.t
      (** general ultimately periodic activation *)

type entry = {
  e_task : string;
  e_event : Static_sched.event;
  e_clock : clock_export;
  e_relation : Clocks.Affine.relation option;
      (** affine relation to the base tick, for [Caffine] *)
}

val export : Static_sched.schedule -> entry list
(** One entry per (task, event) for Dispatch, Start, Complete and
    Deadline. *)

val dispatch_clock : Static_sched.schedule -> string -> clock_export

val synchronizable :
  Static_sched.schedule -> string -> string -> Static_sched.event -> bool
(** Two tasks' event clocks are synchronizable (identical instant
    sets) — e.g. the two 8 ms timer threads' dispatches in the case
    study. *)

val word_of : clock_export -> Clocks.Pword.t

val pp_entry : Format.formatter -> entry -> unit
val pp_export : Format.formatter -> Static_sched.schedule -> unit
