lib/sched/alloc.mli: Format Static_sched Task
