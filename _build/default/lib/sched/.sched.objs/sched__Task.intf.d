lib/sched/task.mli: Format
