lib/sched/alloc.ml: Array Format List Option Printf Static_sched Task
