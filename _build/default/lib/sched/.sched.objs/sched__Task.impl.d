lib/sched/task.ml: Format List Option Printf Putil
