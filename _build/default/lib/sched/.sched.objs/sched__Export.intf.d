lib/sched/export.mli: Clocks Format Static_sched
