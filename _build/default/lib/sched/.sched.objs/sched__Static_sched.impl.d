lib/sched/static_sched.ml: Bytes Clocks Format List Option Printf Putil String Task
