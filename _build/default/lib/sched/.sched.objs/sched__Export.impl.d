lib/sched/export.ml: Clocks Format List Static_sched String Task
