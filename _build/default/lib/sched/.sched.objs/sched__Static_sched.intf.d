lib/sched/static_sched.mli: Clocks Format Task
