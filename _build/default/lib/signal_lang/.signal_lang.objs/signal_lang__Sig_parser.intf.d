lib/signal_lang/sig_parser.mli: Ast
