lib/signal_lang/stdproc.mli: Ast
