lib/signal_lang/ast.ml: List String Types
