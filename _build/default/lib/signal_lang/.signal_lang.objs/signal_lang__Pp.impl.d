lib/signal_lang/pp.ml: Ast Format List Types
