lib/signal_lang/ast.mli: Types
