lib/signal_lang/sig_parser.ml: Array Ast Format List Printf Sig_lexer Types
