lib/signal_lang/sig_lexer.ml: Buffer Format List Printf String
