lib/signal_lang/builder.ml: Ast Types
