lib/signal_lang/normalize.ml: Ast Format Hashtbl Kernel List Map Option Printf Stdproc String Typecheck Types
