lib/signal_lang/kernel.mli: Ast Format Stdproc Types
