lib/signal_lang/stdproc.ml: Ast List String Types
