lib/signal_lang/optimize.ml: Ast Hashtbl Kernel List Printf Queue Set String
