lib/signal_lang/kernel.ml: Ast Format List Pp Stdproc String Types
