lib/signal_lang/typecheck.ml: Ast Format Hashtbl List Map Option Printf Result Stdproc String Types
