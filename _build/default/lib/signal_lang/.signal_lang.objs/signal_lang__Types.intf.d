lib/signal_lang/types.mli: Format
