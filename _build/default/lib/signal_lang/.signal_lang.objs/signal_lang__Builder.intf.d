lib/signal_lang/builder.mli: Ast Types
