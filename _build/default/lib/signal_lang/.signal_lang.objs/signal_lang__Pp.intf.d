lib/signal_lang/pp.mli: Ast Format
