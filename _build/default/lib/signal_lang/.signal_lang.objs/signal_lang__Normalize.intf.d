lib/signal_lang/normalize.mli: Ast Kernel Types
