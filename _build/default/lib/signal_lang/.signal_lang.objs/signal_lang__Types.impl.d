lib/signal_lang/types.ml: Format Printf String
