lib/signal_lang/sig_lexer.mli:
