lib/signal_lang/optimize.mli: Ast Kernel
