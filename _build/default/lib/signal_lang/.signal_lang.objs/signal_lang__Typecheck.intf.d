lib/signal_lang/typecheck.mli: Ast Format Types
