open Ast

type primitive =
  | Pfifo
  | Pfifo_reset
  | Pin_event_port
  | Pout_event_port

let tint = Types.Tint
let tbool = Types.Tbool
let tevent = Types.Tevent

(* Clock union of two signals, as an event expression: ^a default ^b. *)
let clock_union a b = Edefault (Eclock (Evar a), Eclock (Evar b))

(* The memory process of the paper (Sec. IV-C):

     o = fm(i, b)  with
       o_t = i_t          if i present and b true
           = i_{pred(t)}  if i absent and b true
           = absent       otherwise

   Kernel encoding: a local memory [m] present on ^i ∪ ^b carrying the
   freshest i, sampled where b is true. *)
let fm_with ~name ~typ ~init =
  { proc_name = name;
    params = [];
    inputs = [ var "i" typ; var "b" tbool ];
    outputs = [ var "o" typ ];
    locals = [ var "m" typ ];
    body =
      [ Sdef ("m", Edefault (Evar "i", Edelay (Evar "m", init)));
        Sclk_eq (Eclock (Evar "m"), clock_union "i" "b");
        Sdef ("o", Ewhen (Evar "m", Evar "b"));
      ];
    subprocesses = [];
    pragmas = [ ("aadl2signal", "memory process fm") ];
  }

let fm = fm_with ~name:"fm" ~typ:tint ~init:(Types.Vint 0)
let fm_bool = fm_with ~name:"fm_bool" ~typ:tbool ~init:(Types.Vbool false)

(* Event presence as a boolean on the true instants of event t:
   bool_at t = true when t. *)
let btrue_when_event t = Ewhen (Econst (Types.Vbool true), Eclock (Evar t))

(* z = x ◮ t : freeze x at event t (paper: z = fm(f(x), t) with f the
   identity port behaviour for data ports). *)
let freeze =
  { proc_name = "freeze";
    params = [];
    inputs = [ var "x" tint; var "t" tevent ];
    outputs = [ var "z" tint ];
    locals = [ var "bt" tbool ];
    body =
      [ Sdef ("bt", btrue_when_event "t");
        Sinstance
          { inst_label = "freeze_fm"; inst_proc = "fm";
            inst_ins = [ Evar "x"; Evar "bt" ]; inst_outs = [ "z" ];
            inst_params = [] };
      ];
    subprocesses = [];
    pragmas = [ ("aadl2signal", "input freezing x |> t") ];
  }

(* w = y ⊲ t : hold the output and send it at Output_Time. *)
let send =
  { proc_name = "send";
    params = [];
    inputs = [ var "y" tint; var "t" tevent ];
    outputs = [ var "w" tint ];
    locals = [ var "bt" tbool ];
    body =
      [ Sdef ("bt", btrue_when_event "t");
        Sinstance
          { inst_label = "send_fm"; inst_proc = "fm";
            inst_ins = [ Evar "y"; Evar "bt" ]; inst_outs = [ "w" ];
            inst_params = [] };
      ];
    subprocesses = [];
    pragmas = [ ("aadl2signal", "output sending y <| t") ];
  }

let counter =
  { proc_name = "counter";
    params = [];
    inputs = [ var "e" tevent ];
    outputs = [ var "n" tint ];
    locals = [];
    body =
      [ Sdef ("n", Ebinop (Add, Edelay (Evar "n", Types.Vint 0),
                           Econst (Types.Vint 1)));
        Sclk_eq (Eclock (Evar "n"), Eclock (Evar "e"));
      ];
    subprocesses = [];
    pragmas = [];
  }

let counter_reset =
  (* n counts occurrences of e since the last occurrence of rst; both
     may occur at the same instant (reset wins). *)
  { proc_name = "counter_reset";
    params = [];
    inputs = [ var "e" tevent; var "rst" tevent ];
    outputs = [ var "n" tint ];
    locals = [ var "pre_n" tint ];
    body =
      [ Sdef ("pre_n", Edelay (Evar "n", Types.Vint 0));
        Sdef ("n",
              Edefault
                ( Ewhen (Econst (Types.Vint 0), btrue_when_event "rst"),
                  Ebinop (Add, Evar "pre_n", Econst (Types.Vint 1)) ));
        Sclk_eq (Eclock (Evar "n"), clock_union "e" "rst");
      ];
    subprocesses = [];
    pragmas = [];
  }

(* AADL timer service: armed by [start], disarmed by [stop], counting
   occurrences of [tick]; raises [timeout] once when the count reaches
   [duration]. Implements the thProdTimer / thConsTimer behaviour. *)
let timer =
  let base = Edefault (Eclock (Evar "start"),
                       Edefault (Eclock (Evar "stop"), Eclock (Evar "tick"))) in
  { proc_name = "timer";
    params = [ var "duration" tint ];
    inputs = [ var "start" tevent; var "stop" tevent; var "tick" tevent ];
    outputs = [ var "timeout" tevent ];
    locals =
      [ var "base_b" tbool; var "s_occ" tbool; var "p_occ" tbool;
        var "t_occ" tbool; var "active" tbool; var "pre_active" tbool;
        var "cnt" tint; var "pre_cnt" tint; var "expired" tbool ];
    body =
      [ (* base_b: true on every instant of the union clock *)
        Sdef ("base_b",
              Edefault (btrue_when_event "start",
                        Edefault (btrue_when_event "stop",
                                  btrue_when_event "tick")));
        Sclk_eq (Eclock (Evar "base_b"), base);
        (* occurrence booleans aligned on the base clock *)
        Sdef ("s_occ", Edefault (btrue_when_event "start",
                                 Ewhen (Econst (Types.Vbool false), Evar "base_b")));
        Sdef ("p_occ", Edefault (btrue_when_event "stop",
                                 Ewhen (Econst (Types.Vbool false), Evar "base_b")));
        Sdef ("t_occ", Edefault (btrue_when_event "tick",
                                 Ewhen (Econst (Types.Vbool false), Evar "base_b")));
        Sdef ("pre_active", Edelay (Evar "active", Types.Vbool false));
        Sdef ("active",
              Eif (Evar "s_occ", Econst (Types.Vbool true),
                   Eif (Evar "p_occ", Econst (Types.Vbool false),
                        Eif (Evar "expired", Econst (Types.Vbool false),
                             Evar "pre_active"))));
        Sdef ("pre_cnt", Edelay (Evar "cnt", Types.Vint 0));
        Sdef ("cnt",
              Eif (Evar "s_occ", Econst (Types.Vint 0),
                   Eif (Ebinop (And, Evar "pre_active", Evar "t_occ"),
                        Ebinop (Add, Evar "pre_cnt", Econst (Types.Vint 1)),
                        Evar "pre_cnt")));
        Sdef ("expired",
              Ebinop (And, Evar "pre_active",
                      Ebinop (And, Evar "t_occ",
                              Ebinop (Ge, Evar "cnt", Evar "duration"))));
        Sdef ("timeout", Ewhen (Evar "expired", Evar "expired"));
      ];
    subprocesses = [];
    pragmas = [ ("aadl2signal", "AADL timer service") ];
  }

(* Primitive processes: SIGNAL interface + clock contract; value
   semantics in Polysim. The bodies carry only clock statements so that
   the clock calculus can reason about instances. *)

let fifo =
  { proc_name = "fifo";
    params = [ var "capacity" tint; var "overflow" Types.Tstring ];
    inputs = [ var "push" tint; var "pop" tevent ];
    outputs = [ var "data" tint; var "size" tint ];
    locals = [];
    body =
      [ Sclk_le (Eclock (Evar "data"), Eclock (Evar "pop"));
        Sclk_eq (Eclock (Evar "size"), clock_union "push" "pop");
      ];
    subprocesses = [];
    pragmas = [ ("primitive", "fifo") ];
  }

let fifo_reset =
  { proc_name = "fifo_reset";
    params = [ var "capacity" tint; var "overflow" Types.Tstring ];
    inputs = [ var "push" tint; var "pop" tevent; var "reset" tevent ];
    outputs = [ var "data" tint; var "size" tint ];
    locals = [];
    body =
      [ Sclk_le (Eclock (Evar "data"), Eclock (Evar "pop"));
        Sclk_eq (Eclock (Evar "size"),
                 Edefault (clock_union "push" "pop", Eclock (Evar "reset")));
      ];
    subprocesses = [];
    pragmas = [ ("primitive", "fifo_reset") ];
  }

let in_event_port =
  { proc_name = "in_event_port";
    params = [ var "queue_size" tint; var "overflow" Types.Tstring ];
    inputs = [ var "arrival" tint; var "frozen_time" tevent ];
    outputs = [ var "frozen" tint; var "frozen_count" tint ];
    locals = [];
    body =
      [ Sclk_le (Eclock (Evar "frozen"), Eclock (Evar "frozen_time"));
        Sclk_eq (Eclock (Evar "frozen_count"), Eclock (Evar "frozen_time"));
      ];
    subprocesses = [];
    pragmas = [ ("primitive", "in_event_port");
                ("aadl2signal", "in_fifo + frozen_fifo (Fig. 5)") ];
  }

let out_event_port =
  { proc_name = "out_event_port";
    params = [ var "queue_size" tint; var "overflow" Types.Tstring ];
    inputs = [ var "item" tint; var "output_time" tevent ];
    outputs = [ var "sent" tint ];
    locals = [];
    body = [ Sclk_le (Eclock (Evar "sent"), Eclock (Evar "output_time")) ];
    subprocesses = [];
    pragmas = [ ("primitive", "out_event_port") ];
  }

let all =
  [ fm; fm_bool; freeze; send; counter; counter_reset; timer;
    fifo; fifo_reset; in_event_port; out_event_port ]

let primitive_of_name = function
  | "fifo" -> Some Pfifo
  | "fifo_reset" -> Some Pfifo_reset
  | "in_event_port" -> Some Pin_event_port
  | "out_event_port" -> Some Pout_event_port
  | _ -> None

let is_library_name name =
  List.exists (fun p -> String.equal p.proc_name name) all

let instantaneous_deps = function
  | Pfifo -> [ ("pop", "data"); ("push", "size"); ("pop", "size") ]
  | Pfifo_reset ->
    [ ("pop", "data"); ("push", "size"); ("pop", "size"); ("reset", "size") ]
  | Pin_event_port ->
    [ ("frozen_time", "frozen"); ("frozen_time", "frozen_count") ]
  | Pout_event_port -> [ ("output_time", "sent") ]
