open Kernel

module SSet = Set.Make (String)

let eq_dst = function
  | Kfunc { dst; _ } | Kdelay { dst; _ } | Kwhen { dst; _ }
  | Kdefault { dst; _ } -> dst

let atom_vars = function
  | Avar x -> [ x ]
  | Aconst _ -> []

let eq_reads = function
  | Kfunc { args; _ } -> List.concat_map atom_vars args
  | Kdelay { src; _ } -> [ src ]
  | Kwhen { src; cond; _ } -> atom_vars src @ atom_vars cond
  | Kdefault { left; right; _ } -> atom_vars left @ atom_vars right

let slice ?keep kp =
  let roots =
    match keep with
    | Some l -> l
    | None -> List.map (fun vd -> vd.Ast.var_name) kp.koutputs
  in
  (* producers: signal -> equations defining it; instances -> via outs *)
  let defs = Hashtbl.create 64 in
  List.iter
    (fun eq -> Hashtbl.add defs (eq_dst eq) (`Eq eq))
    kp.keqs;
  List.iter
    (fun ki -> List.iter (fun o -> Hashtbl.add defs o (`Inst ki)) ki.ki_outs)
    kp.kinstances;
  (* read-cone of each signal (transitive reads through its defining
     equations), used to decide which clock constraints matter: a
     constraint like [c1 ^= c2] with [c1 := ^y] pins the clock of [y]
     even though nothing live reads [c1] *)
  let cone_memo : (string, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  let rec cone ?(stack = SSet.empty) x =
    match Hashtbl.find_opt cone_memo x with
    | Some s -> s
    | None ->
      if SSet.mem x stack then SSet.empty
      else begin
        let stack = SSet.add x stack in
        let s =
          List.fold_left
            (fun acc producer ->
              match producer with
              | `Eq eq ->
                List.fold_left
                  (fun acc r -> SSet.union acc (SSet.add r (cone ~stack r)))
                  acc (eq_reads eq)
              | `Inst ki ->
                List.fold_left
                  (fun acc r -> SSet.union acc (SSet.add r (cone ~stack r)))
                  acc ki.ki_ins)
            SSet.empty
            (Hashtbl.find_all defs x)
        in
        Hashtbl.replace cone_memo x s;
        s
      end
  in
  let live = ref SSet.empty in
  let queue = Queue.create () in
  let touch x =
    if not (SSet.mem x !live) then begin
      live := SSet.add x !live;
      Queue.push x queue
    end
  in
  List.iter touch roots;
  let live_constraints = Hashtbl.create 16 in
  let drain () =
    while not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      List.iter
        (fun producer ->
          match producer with
          | `Eq eq -> List.iter touch (eq_reads eq)
          | `Inst ki ->
            List.iter touch ki.ki_ins;
            (* all outputs of a kept instance stay: the instance runs *)
            List.iter touch ki.ki_outs)
        (Hashtbl.find_all defs x)
    done
  in
  drain ();
  (* a constraint becomes live when the read-cone of either side
     touches a live signal; its sides (and their cones) then join the
     live set — iterate to a fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iteri
      (fun i c ->
        if not (Hashtbl.mem live_constraints i) then begin
          let a, b =
            match c with Ceq (a, b) | Cle (a, b) | Cex (a, b) -> (a, b)
          in
          let touches s =
            SSet.mem s !live
            || SSet.exists (fun r -> SSet.mem r !live) (cone s)
          in
          if touches a || touches b then begin
            Hashtbl.replace live_constraints i ();
            touch a;
            touch b;
            drain ();
            changed := true
          end
        end)
      kp.kconstraints
  done;
  let is_live x = SSet.mem x !live in
  let keqs = List.filter (fun eq -> is_live (eq_dst eq)) kp.keqs in
  let kinstances =
    List.filter (fun ki -> List.exists is_live ki.ki_outs) kp.kinstances
  in
  let kconstraints =
    List.filteri (fun i _ -> Hashtbl.mem live_constraints i) kp.kconstraints
  in
  let kpartials = List.filter (fun (x, _) -> is_live x) kp.kpartials in
  let klocals = List.filter (fun vd -> is_live vd.Ast.var_name) kp.klocals in
  { kp with keqs; kinstances; kconstraints; kpartials; klocals }

let copy_propagate kp =
  let is_interface =
    let s =
      SSet.of_list
        (List.map (fun vd -> vd.Ast.var_name) (kp.kinputs @ kp.koutputs))
    in
    fun x -> SSet.mem x s
  in
  (* y := id(x): y local, substitute y -> x everywhere *)
  let subst = Hashtbl.create 16 in
  List.iter
    (fun eq ->
      match eq with
      | Kfunc { dst; op = Pid; args = [ Avar src ] }
        when not (is_interface dst) ->
        Hashtbl.replace subst dst src
      | _ -> ())
    kp.keqs;
  (* resolve chains *)
  let rec resolve ?(fuel = 64) x =
    match Hashtbl.find_opt subst x with
    | Some y when fuel > 0 -> resolve ~fuel:(fuel - 1) y
    | _ -> x
  in
  let sub_atom = function
    | Avar x -> Avar (resolve x)
    | Aconst _ as a -> a
  in
  let keqs =
    List.filter_map
      (fun eq ->
        match eq with
        | Kfunc { dst; op = Pid; args = [ Avar _ ] }
          when Hashtbl.mem subst dst ->
          None
        | Kfunc { dst; op; args } ->
          Some (Kfunc { dst; op; args = List.map sub_atom args })
        | Kdelay { dst; src; init } ->
          Some (Kdelay { dst; src = resolve src; init })
        | Kwhen { dst; src; cond } ->
          Some (Kwhen { dst; src = sub_atom src; cond = sub_atom cond })
        | Kdefault { dst; left; right } ->
          Some (Kdefault { dst; left = sub_atom left; right = sub_atom right }))
      kp.keqs
  in
  let kconstraints =
    List.map
      (fun c ->
        match c with
        | Ceq (a, b) -> Ceq (resolve a, resolve b)
        | Cle (a, b) -> Cle (resolve a, resolve b)
        | Cex (a, b) -> Cex (resolve a, resolve b))
      kp.kconstraints
  in
  let kinstances =
    List.map
      (fun ki -> { ki with ki_ins = List.map resolve ki.ki_ins })
      kp.kinstances
  in
  let kpartials =
    List.map (fun (x, srcs) -> (x, List.map resolve srcs)) kp.kpartials
  in
  let dropped = Hashtbl.fold (fun x _ acc -> SSet.add x acc) subst SSet.empty in
  let klocals =
    List.filter (fun vd -> not (SSet.mem vd.Ast.var_name dropped)) kp.klocals
  in
  { kp with keqs; kconstraints; kinstances; kpartials; klocals }

let size kp =
  ( List.length (signals kp),
    List.length kp.keqs,
    List.length kp.kconstraints,
    List.length kp.kinstances )

let optimize ?keep kp =
  let rec go fuel kp =
    if fuel = 0 then kp
    else
      let kp' = slice ?keep (copy_propagate kp) in
      if size kp' = size kp then kp' else go (fuel - 1) kp'
  in
  go 8 kp

let stats kp =
  let s, e, c, i = size kp in
  Printf.sprintf "%d signals, %d equations, %d constraints, %d instances"
    s e c i
