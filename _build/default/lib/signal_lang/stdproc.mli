(** The AADL2SIGNAL library of common SIGNAL processes (paper, Sec. IV-E).

    Kernel-expressible processes ([fm], [freeze], [send], [counter],
    [timer]) carry a full SIGNAL body. Queue-like processes ([fifo],
    [fifo_reset], [in_event_port], [out_event_port]) are {e primitive}:
    their interface and clock contract are SIGNAL, their value semantics
    is implemented natively by the simulator (bounded circular buffers),
    exactly as the Polychrony tool links external C processes. *)

(** Identifier of a primitive process implemented by the simulator. *)
type primitive =
  | Pfifo            (** bounded FIFO: push/pop, param = capacity *)
  | Pfifo_reset      (** FIFO with flush, used for shared data *)
  | Pin_event_port   (** paper Fig. 5: in_fifo + frozen_fifo pair *)
  | Pout_event_port  (** out FIFO drained at Output_Time *)

val fm : Ast.process
(** The memory process [o = fm(i, b)] of Sec. IV-C: [o] carries the
    current [i] when [i] is present and [b] true, the last [i]
    otherwise when [b] true, and is absent elsewhere.
    Interface: inputs [i : integer], [b : boolean]; output [o]. *)

val fm_bool : Ast.process
(** [fm] for boolean payloads (the kernel is monomorphic). *)

val freeze : Ast.process
(** Input freezing [z = x ◮ t]: [fm] applied to the port behaviour
    output, frozen at event [t]. Inputs [x : integer], [t : event]. *)

val send : Ast.process
(** Output sending [w = y ⊲ t]: hold and release at Output_Time. *)

val counter : Ast.process
(** Occurrence counter: output [n] counts occurrences of event [e]. *)

val counter_reset : Ast.process
(** Counter with a reset event input. *)

val timer : Ast.process
(** AADL timer service (thProdTimer/thConsTimer behaviour): inputs
    [start], [stop] (events) and [tick] (periodic event); static
    parameter [duration] (number of ticks); output [timeout] event
    raised once when the timer expires. *)

val fifo : Ast.process
(** Primitive bounded FIFO. Param: capacity. Inputs: [push : integer]
    (enqueue on each occurrence), [pop : event]. Outputs: [data]
    (present on pop of a non-empty queue), [size : integer] (on any
    activity). *)

val fifo_reset : Ast.process
(** Primitive FIFO with a [reset] event input flushing the queue
    (paper Fig. 6, shared data [Queue]). *)

val in_event_port : Ast.process
(** Primitive in event port (paper Fig. 5). Params: queue size.
    Inputs: [arrival : integer] (incoming items), [frozen_time : event].
    Outputs: [frozen : integer] (head of frozen_fifo, at frozen_time),
    [frozen_count : integer]. Items arriving after a freeze are only
    visible at the next freeze. *)

val out_event_port : Ast.process
(** Primitive out event port: items pushed by the thread are released
    at [output_time]. Inputs: [item : integer], [output_time : event].
    Output: [sent : integer]. *)

val all : Ast.process list
(** Every library model, for inclusion in generated programs. *)

val primitive_of_name : string -> primitive option
(** Recognize a primitive by process-model name. *)

val is_library_name : string -> bool

val instantaneous_deps : primitive -> (string * string) list
(** [(input, output)] pairs with an instantaneous data dependency,
    used by deadlock analysis to close the dependency graph across
    primitive instances. *)
