(** Normalization of SIGNAL processes to {!Kernel} form.

    - expressions are flattened to three-address equations over fresh,
      typed temporaries;
    - non-primitive process instances (including the kernel-expressible
      AADL2SIGNAL library models) are inlined, with static parameters
      substituted by their actual constant values;
    - primitive instances are kept as {!Kernel.kinstance} nodes;
    - partial definitions are turned into a recorded merge of
      per-branch temporaries.

    Fresh names are built as ["label__name"] for inlined instances and
    ["_tN"] for temporaries, so they cannot clash with source names
    produced by the AADL translator. *)

val process :
  ?program:Ast.program ->
  ?params:Types.value list ->
  Ast.process ->
  (Kernel.kprocess, string) result
(** Normalize one process. [params] instantiates its static parameters
    (required when the process declares any). [program] provides the
    global scope for instance resolution; the AADL2SIGNAL library is
    always in scope. *)

val process_exn :
  ?program:Ast.program -> ?params:Types.value list -> Ast.process ->
  Kernel.kprocess
(** @raise Failure on normalization errors. *)
