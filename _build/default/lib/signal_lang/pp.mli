(** Pretty-printer to SIGNAL concrete syntax.

    The output follows the Polychrony textual style:
    {[
      process thProducer =
        ( ? event Dispatch;
          ! integer pOut; )
        (| pOut := z + 1
         | z := pOut $ 1 init 0
         |)
        where
          integer z;
        end;
    ]} *)

val unop_to_string : Ast.unop -> string
val binop_to_string : Ast.binop -> string

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_process : Format.formatter -> Ast.process -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val process_to_string : Ast.process -> string
val program_to_string : Ast.program -> string
