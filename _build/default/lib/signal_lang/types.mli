(** Value and type domains of the SIGNAL kernel.

    A signal is an unbounded series of values implicitly indexed by
    discrete time; at any instant it is either {e present} with a value
    of its type, or {e absent} (⊥). Presence is not a value: it is
    handled by the clock calculus and the simulator, so this module only
    describes present values. *)

type styp =
  | Tevent  (** pure event: present implies value [true] *)
  | Tbool
  | Tint
  | Treal
  | Tstring

type value =
  | Vevent  (** the unique value carried by an event occurrence *)
  | Vbool of bool
  | Vint of int
  | Vreal of float
  | Vstring of string

val type_of_value : value -> styp

val default_init : styp -> value
(** Conventional initial value used for uninitialised delays. *)

val equal_value : value -> value -> bool
(** Structural equality, with [Vevent] equal to [Vbool true] so that
    events can flow through boolean operators. *)

val truthy : value -> bool
(** [truthy v] is the boolean reading of [v]; events read as [true].
    @raise Invalid_argument on non-boolean values. *)

val pp_styp : Format.formatter -> styp -> unit
val pp_value : Format.formatter -> value -> unit

val styp_to_string : styp -> string
val value_to_string : value -> string
