(** Kernel-level optimization passes, as performed by the Polychrony
    compiler before code generation (ref [15]).

    Both passes preserve the observable behaviour: traces projected
    onto the kept signals are unchanged (tested against the
    interpreter). *)

val slice :
  ?keep:Ast.ident list -> Kernel.kprocess -> Kernel.kprocess
(** Dead-code elimination: keep only the equations, constraints and
    primitive instances that (transitively) contribute to the [keep]
    signals — by default the process outputs. Clock constraints are
    kept when they mention a kept signal (they may determine its
    presence); a primitive instance is kept when any of its outputs is
    kept. Locals that no longer appear are dropped from the
    declarations. *)

val copy_propagate : Kernel.kprocess -> Kernel.kprocess
(** Replace reads of pure copies ([y := x] with [y] a local) by their
    source and drop the copy equation. Outputs and inputs are never
    substituted away. *)

val optimize :
  ?keep:Ast.ident list -> Kernel.kprocess -> Kernel.kprocess
(** [copy_propagate] then [slice], iterated to a fixpoint (bounded). *)

val stats : Kernel.kprocess -> string
(** One-line size summary: signals/equations/constraints/instances. *)
