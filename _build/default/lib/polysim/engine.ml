module K = Signal_lang.Kernel
module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module Stdproc = Signal_lang.Stdproc

exception Sim_error of string

let errf fmt = Format.kasprintf (fun m -> raise (Sim_error m)) fmt

type presence = Unknown | Present | Absent

type overflow_policy = Drop_oldest | Drop_newest | Overflow_error

type prim_state = {
  ki : K.kinstance;
  queue : Types.value Queue.t;
  frozen : Types.value Queue.t;   (* in_event_port only *)
  capacity : int;
  policy : overflow_policy;
  mutable overflows : int;
}

type t = {
  kp : K.kprocess;
  types : (string, Types.styp) Hashtbl.t;
  input_names : string list;
  default_order : string list;
      (* unknown-presence defaulting order: dataflow sources first, so
         a defaulted sink never contradicts a later-resolved source *)
  delay_state : (string, Types.value) Hashtbl.t;  (* keyed by dst *)
  prims : prim_state list;
  tr : Trace.t;
  mutable instants : int;
  mutable free : int;      (* defaulted-to-absent decisions *)
  (* per-instant scratch, allocated once *)
  pres : (string, presence) Hashtbl.t;
  vals : (string, Types.value) Hashtbl.t;
  mutable changed : bool;
}

let capacity_of ki =
  match ki.K.ki_params with
  | Types.Vint n :: _ when n > 0 -> n
  | _ -> 16

let overflow_of ki =
  match ki.K.ki_params with
  | [ _; Types.Vstring s ] -> (
    match String.lowercase_ascii s with
    | "dropnewest" -> Drop_newest
    | "error" -> Overflow_error
    | _ -> Drop_oldest)
  | _ -> Drop_oldest

let create kp =
  let types = Hashtbl.create 64 in
  List.iter
    (fun vd -> Hashtbl.replace types vd.Ast.var_name vd.Ast.var_type)
    (K.signals kp);
  let delay_state = Hashtbl.create 16 in
  List.iter
    (fun eq ->
      match eq with
      | K.Kdelay { dst; init; _ } -> Hashtbl.replace delay_state dst init
      | K.Kfunc _ | K.Kwhen _ | K.Kdefault _ -> ())
    kp.K.keqs;
  let prims =
    List.map
      (fun ki ->
        { ki; queue = Queue.create (); frozen = Queue.create ();
          capacity = capacity_of ki; policy = overflow_of ki; overflows = 0 })
      kp.K.kinstances
  in
  let default_order =
    let declared = List.map (fun vd -> vd.Ast.var_name) (K.signals kp) in
    match Analysis.Digraph.topological_sort (Analysis.Deadlock.dependency_graph kp) with
    | Ok order ->
      order @ List.filter (fun x -> not (List.mem x order)) declared
    | Error _ -> declared
  in
  { kp; types;
    input_names = List.map (fun vd -> vd.Ast.var_name) kp.K.kinputs;
    default_order;
    delay_state; prims;
    tr = Trace.create (K.signals kp);
    instants = 0; free = 0;
    pres = Hashtbl.create 64; vals = Hashtbl.create 64; changed = false }

(* ------------------------------------------------------------------ *)
(* Fact tables                                                         *)
(* ------------------------------------------------------------------ *)

let presence st x =
  Option.value ~default:Unknown (Hashtbl.find_opt st.pres x)

let set_presence st x p =
  match presence st x, p with
  | Unknown, (Present | Absent) ->
    Hashtbl.replace st.pres x p;
    st.changed <- true
  | Present, Absent | Absent, Present ->
    errf "instant %d: contradictory presence for signal %s" st.instants x
  | _, _ -> ()

let value_of st x = Hashtbl.find_opt st.vals x

let set_value st x v =
  match Hashtbl.find_opt st.vals x with
  | None ->
    Hashtbl.replace st.vals x v;
    st.changed <- true
  | Some v0 ->
    if not (Types.equal_value v0 v) then
      errf "instant %d: contradictory values for signal %s (%s vs %s)"
        st.instants x (Types.value_to_string v0) (Types.value_to_string v)

let atom_presence st = function
  | K.Avar x -> presence st x
  | K.Aconst _ -> Unknown  (* contextual; handled by the group rules *)

let atom_value st = function
  | K.Avar x -> value_of st x
  | K.Aconst v -> Some v

(* ------------------------------------------------------------------ *)
(* Presence / value propagation rules                                  *)
(* ------------------------------------------------------------------ *)

(* Synchronous group: dst and all Avar args share a clock. *)
let rule_sync_group st dst args =
  let members = dst :: List.filter_map
                  (function K.Avar x -> Some x | K.Aconst _ -> None)
                  args
  in
  let any p = List.exists (fun x -> presence st x = p) members in
  if any Present then List.iter (fun x -> set_presence st x Present) members
  else if any Absent then List.iter (fun x -> set_presence st x Absent) members

let rule_func st dst op args =
  rule_sync_group st dst args;
  if presence st dst = Present then begin
    let arg_vals = List.map (atom_value st) args in
    if List.for_all Option.is_some arg_vals then
      set_value st dst (Eval.eval_func op (List.map Option.get arg_vals))
  end

let rule_delay st dst src =
  rule_sync_group st dst [ K.Avar src ];
  if presence st dst = Present then
    set_value st dst (Hashtbl.find st.delay_state dst)

let rule_when st dst src cond =
  (* a constant condition has the contextual clock: false silences the
     destination, true makes it mirror the source *)
  (match cond with
   | K.Aconst v when not (Eval.as_bool v) -> set_presence st dst Absent
   | K.Aconst _ -> (
     match src with
     | K.Aconst v -> if presence st dst = Present then set_value st dst v
     | K.Avar x -> (
       match presence st x, presence st dst with
       | Present, _ ->
         set_presence st dst Present;
         (match value_of st x with
          | Some v -> set_value st dst v
          | None -> ())
       | Absent, _ -> set_presence st dst Absent
       | Unknown, Absent -> set_presence st x Absent
       | Unknown, (Present | Unknown) -> ()))
   | K.Avar _ -> ());
  (match atom_presence st cond, atom_value st cond with
   | Absent, _ -> set_presence st dst Absent
   | Present, Some v when not (Eval.as_bool v) -> set_presence st dst Absent
   | Present, Some _ -> (
     (* condition true: dst follows src *)
     match src with
     | K.Aconst v ->
       set_presence st dst Present;
       set_value st dst v
     | K.Avar x -> (
       match presence st x with
       | Present ->
         set_presence st dst Present;
         (match value_of st x with
          | Some v -> set_value st dst v
          | None -> ())
       | Absent -> set_presence st dst Absent
       | Unknown -> ()))
   | (Present | Unknown), _ -> ());
  (* backward: dst present forces src and cond present (cond true) *)
  if presence st dst = Present then begin
    (match src with
     | K.Avar x -> set_presence st x Present
     | K.Aconst _ -> ());
    match cond with
    | K.Avar b -> set_presence st b Present
    | K.Aconst _ -> ()
  end

let rule_default st dst left right =
  let pl = atom_presence st left and pr = atom_presence st right in
  (* union clock: either operand present forces the destination *)
  if pl = Present || pr = Present then set_presence st dst Present;
  (match pl with
   | Present -> (
     match atom_value st left with
     | Some v -> set_value st dst v
     | None -> ())
   | Absent -> (
     match pr with
     | Present -> (
       match atom_value st right with
       | Some v -> set_value st dst v
       | None -> ())
     | Absent -> set_presence st dst Absent
     | Unknown -> ())
   | Unknown -> ());
  (match presence st dst with
   | Absent ->
     (match left with K.Avar x -> set_presence st x Absent | K.Aconst _ -> ());
     (match right with K.Avar x -> set_presence st x Absent | K.Aconst _ -> ())
   | Present -> (
     (* if left absent, right must be present *)
     match pl, right with
     | Absent, K.Avar x -> set_presence st x Present
     | Absent, K.Aconst v -> set_value st dst v
     | _, _ -> ())
   | Unknown -> ());
  (* constant left: when dst is present and left is a constant, the
     merge yields the constant (a constant is contextually present) *)
  match left, presence st dst with
  | K.Aconst v, Present -> set_value st dst v
  | (K.Aconst _ | K.Avar _), _ -> ()

let rule_constraint st = function
  | K.Ceq (a, b) -> (
    match presence st a, presence st b with
    | Present, _ -> set_presence st b Present
    | Absent, _ -> set_presence st b Absent
    | Unknown, Present -> set_presence st a Present
    | Unknown, Absent -> set_presence st a Absent
    | Unknown, Unknown -> ())
  | K.Cle (a, b) -> (
    (match presence st a with
     | Present -> set_presence st b Present
     | Absent | Unknown -> ());
    match presence st b with
    | Absent -> set_presence st a Absent
    | Present | Unknown -> ())
  | K.Cex (a, b) -> (
    (match presence st a with
     | Present -> set_presence st b Absent
     | Absent | Unknown -> ());
    match presence st b with
    | Present -> set_presence st a Absent
    | Absent | Unknown -> ())

(* Primitive presence/value rules; effects are deferred to commit. *)
let rule_prim st ps =
  let ki = ps.ki in
  match ki.K.ki_prim, ki.K.ki_ins, ki.K.ki_outs with
  | (Stdproc.Pfifo | Stdproc.Pfifo_reset), push :: pop :: rest, [ data; size ] ->
    let reset = match rest with [ r ] -> Some r | _ -> None in
    let reset_pres =
      match reset with Some r -> presence st r | None -> Absent
    in
    (* data: present iff pop present and an item is available; the
       available front accounts for a same-instant reset and push *)
    (match presence st pop with
     | Absent -> set_presence st data Absent
     | Present -> (
       let after_reset_empty =
         match reset_pres with
         | Present -> true
         | Absent -> Queue.is_empty ps.queue
         | Unknown -> false (* undecidable yet; only matters if queue empty *)
       in
       if not after_reset_empty && reset_pres <> Unknown then begin
         set_presence st data Present;
         set_value st data (Queue.peek ps.queue)
       end
       else
         match reset_pres, presence st push with
         | Unknown, _ -> ()
         | _, Present ->
           set_presence st data Present;
           (match value_of st push with
            | Some v -> set_value st data v
            | None -> ())
         | _, Absent ->
           if after_reset_empty then set_presence st data Absent
         | _, Unknown -> ())
     | Unknown -> ());
    (* size: present iff any of push/pop/reset present *)
    let ins = push :: pop :: rest in
    let any p = List.exists (fun x -> presence st x = p) ins in
    if any Present then set_presence st size Present
    else if List.for_all (fun x -> presence st x = Absent) ins then
      set_presence st size Absent;
    if presence st size = Present
       && List.for_all (fun x -> presence st x <> Unknown) ins
    then begin
      let n0 = if reset_pres = Present then 0 else Queue.length ps.queue in
      let n1 = if presence st push = Present then min (n0 + 1) ps.capacity else n0 in
      let popped =
        presence st pop = Present && (n1 > 0)
      in
      set_value st size (Types.Vint (if popped then n1 - 1 else n1))
    end
  | Stdproc.Pin_event_port, [ _arrival; frozen_time ], [ frozen; frozen_count ]
    -> (
    match presence st frozen_time with
    | Absent ->
      set_presence st frozen Absent;
      set_presence st frozen_count Absent
    | Present ->
      (* freeze happens before same-instant arrivals: decidable from
         state alone *)
      set_presence st frozen_count Present;
      set_value st frozen_count (Types.Vint (Queue.length ps.queue));
      if Queue.is_empty ps.queue then set_presence st frozen Absent
      else begin
        set_presence st frozen Present;
        set_value st frozen (Queue.peek ps.queue)
      end
    | Unknown -> ())
  | Stdproc.Pout_event_port, [ item; output_time ], [ sent ] -> (
    match presence st output_time with
    | Absent -> set_presence st sent Absent
    | Present ->
      if not (Queue.is_empty ps.queue) then begin
        set_presence st sent Present;
        set_value st sent (Queue.peek ps.queue)
      end
      else (
        match presence st item with
        | Present ->
          set_presence st sent Present;
          (match value_of st item with
           | Some v -> set_value st sent v
           | None -> ())
        | Absent -> set_presence st sent Absent
        | Unknown -> ())
    | Unknown -> ())
  | (Stdproc.Pfifo | Stdproc.Pfifo_reset | Stdproc.Pin_event_port
    | Stdproc.Pout_event_port), _, _ ->
    errf "primitive instance %s: malformed arity" ki.K.ki_label

(* ------------------------------------------------------------------ *)
(* Commit phase                                                        *)
(* ------------------------------------------------------------------ *)

let push_bounded ps v =
  if Queue.length ps.queue >= ps.capacity then begin
    ps.overflows <- ps.overflows + 1;
    match ps.policy with
    | Drop_oldest ->
      ignore (Queue.pop ps.queue);
      Queue.push v ps.queue
    | Drop_newest -> ()
    | Overflow_error ->
      errf "queue overflow on %s (Overflow_Handling_Protocol => Error)"
        ps.ki.K.ki_label
  end
  else Queue.push v ps.queue

let commit_prim st ps =
  let ki = ps.ki in
  let pres x = presence st x = Present in
  let valof x = value_of st x in
  match ki.K.ki_prim, ki.K.ki_ins with
  | (Stdproc.Pfifo | Stdproc.Pfifo_reset), push :: pop :: rest ->
    (match rest with
     | [ r ] when pres r -> Queue.clear ps.queue
     | _ -> ());
    if pres push then (
      match valof push with
      | Some v -> push_bounded ps v
      | None -> ());
    if pres pop && not (Queue.is_empty ps.queue) then
      ignore (Queue.pop ps.queue)
  | Stdproc.Pin_event_port, [ arrival; frozen_time ] ->
    if pres frozen_time then begin
      Queue.clear ps.frozen;
      Queue.transfer ps.queue ps.frozen
    end;
    if pres arrival then (
      match valof arrival with
      | Some v -> push_bounded ps v
      | None -> ())
  | Stdproc.Pout_event_port, [ item; output_time ] ->
    if pres item then (
      match valof item with
      | Some v -> push_bounded ps v
      | None -> ());
    if pres output_time && not (Queue.is_empty ps.queue) then
      ignore (Queue.pop ps.queue)
  | (Stdproc.Pfifo | Stdproc.Pfifo_reset | Stdproc.Pin_event_port
    | Stdproc.Pout_event_port), _ ->
    ()

(* ------------------------------------------------------------------ *)
(* The step                                                            *)
(* ------------------------------------------------------------------ *)

let step st ~stimulus =
  try
    Hashtbl.reset st.pres;
    Hashtbl.reset st.vals;
    (* inputs *)
    List.iter
      (fun (x, v) ->
        if not (List.mem x st.input_names) then
          errf "stimulus for non-input signal %s" x;
        set_presence st x Present;
        set_value st x v)
      stimulus;
    List.iter
      (fun x -> if presence st x = Unknown then set_presence st x Absent)
      st.input_names;
    (* fixpoint *)
    let rec iterate guard =
      if guard = 0 then errf "fixpoint did not converge";
      st.changed <- false;
      List.iter
        (fun eq ->
          match eq with
          | K.Kfunc { dst; op; args } -> rule_func st dst op args
          | K.Kdelay { dst; src; _ } -> rule_delay st dst src
          | K.Kwhen { dst; src; cond } -> rule_when st dst src cond
          | K.Kdefault { dst; left; right } -> rule_default st dst left right)
        st.kp.K.keqs;
      List.iter (rule_constraint st) st.kp.K.kconstraints;
      List.iter (rule_prim st) st.prims;
      if st.changed then iterate (guard - 1)
    in
    let nsig = List.length (K.signals st.kp) in
    iterate ((2 * nsig) + 10);
    (* Default remaining unknowns to absent, one signal at a time:
       each choice is re-propagated before the next so that a signal
       whose presence follows from an earlier default is computed
       rather than defaulted (and cannot contradict later rules). *)
    let rec default_one () =
      match
        List.find_opt (fun x -> presence st x = Unknown) st.default_order
      with
      | None -> ()
      | Some x ->
        st.free <- st.free + 1;
        Hashtbl.replace st.pres x Absent;
        st.changed <- true;
        iterate ((2 * nsig) + 10);
        default_one ()
    in
    default_one ();
    (* sanity: every present signal needs a value *)
    let present =
      List.filter_map
        (fun vd ->
          let x = vd.Ast.var_name in
          if presence st x = Present then
            match value_of st x with
            | Some v -> Some (x, v)
            | None ->
              errf "instant %d: signal %s present without a value"
                st.instants x
          else None)
        (K.signals st.kp)
    in
    (* commit state *)
    List.iter
      (fun eq ->
        match eq with
        | K.Kdelay { dst; src; _ } ->
          if presence st src = Present then (
            match value_of st src with
            | Some v -> Hashtbl.replace st.delay_state dst v
            | None -> ())
        | K.Kfunc _ | K.Kwhen _ | K.Kdefault _ -> ())
      st.kp.K.keqs;
    List.iter (commit_prim st) st.prims;
    Trace.push st.tr present;
    st.instants <- st.instants + 1;
    Ok present
  with
  | Sim_error m -> Error m
  | Eval.Eval_error m ->
    Error (Printf.sprintf "instant %d: %s" st.instants m)

let run kp ~stimuli =
  let st = create kp in
  let rec go = function
    | [] -> Ok st.tr
    | stim :: rest -> (
      match step st ~stimulus:stim with
      | Ok _ -> go rest
      | Error m -> Error m)
  in
  go stimuli

let trace st = st.tr
let instant st = st.instants
let free_choices st = st.free

let overflow_count st =
  List.fold_left (fun acc ps -> acc + ps.overflows) 0 st.prims

let fifo_sizes st =
  List.map (fun ps -> (ps.ki.K.ki_label, Queue.length ps.queue)) st.prims
