(** Instant-by-instant interpreter of kernel SIGNAL processes.

    Each logical instant, the engine receives the present inputs with
    their values and computes presence and value of every other signal
    by a monotone fixpoint over the kernel equations (presence
    propagates both ways across synchronous operators; [when] needs the
    condition's value, so presence and value resolution interleave).
    Signals still undetermined at the fixpoint are resolved to absent —
    the count of such free choices is reported as a warning, since it
    reveals a non-endochronous specification.

    Primitive instances carry state:
    - [fifo]/[fifo_reset]: bounded queue; same-instant ordering is
      reset, then push, then pop; overflow drops the oldest item and is
      counted;
    - [in_event_port] (paper Fig. 5): items arriving at the same
      instant as Frozen_time are {e not} frozen (freeze happens first),
      reproducing the paper's Fig. 2 behaviour; [frozen] carries the
      oldest frozen item, [frozen_count] the number of frozen items;
    - [out_event_port]: items queued by the thread, released one per
      Output_time occurrence, same-instant items are eligible.

    Delays ([$ 1 init v]) update their state from present sources at
    the end of each instant. *)

type t

val create : Signal_lang.Kernel.kprocess -> t

val step :
  t ->
  stimulus:(Signal_lang.Ast.ident * Signal_lang.Types.value) list ->
  ((Signal_lang.Ast.ident * Signal_lang.Types.value) list, string) result
(** Execute one instant. The stimulus lists the {e present} inputs;
    inputs not listed are absent. Returns the present signals with
    their values (also appended to the internal trace). *)

val run :
  Signal_lang.Kernel.kprocess ->
  stimuli:(Signal_lang.Ast.ident * Signal_lang.Types.value) list list ->
  (Trace.t, string) result
(** Fresh engine, one [step] per stimulus list, full trace. *)

val trace : t -> Trace.t

val instant : t -> int
(** Number of instants executed so far. *)

val free_choices : t -> int
(** Signals resolved to absent by default across the run; 0 for a
    well-clocked (endochronous) process driven on its master clock. *)

val overflow_count : t -> int
(** Total FIFO overflows across all primitive instances. *)

val fifo_sizes : t -> (string * int) list
(** Current queue length per primitive instance label. *)
