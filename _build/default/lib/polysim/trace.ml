module Ast = Signal_lang.Ast
module Types = Signal_lang.Types

(* Steps live in a growable array so random access is O(1); traces of
   hundreds of thousands of instants appear in the benches. *)
type t = {
  decls : Ast.vardecl list;
  mutable steps : (string, Types.value) Hashtbl.t array;
  mutable len : int;
}

let create decls = { decls; steps = Array.make 16 (Hashtbl.create 0); len = 0 }

let declarations t = t.decls

let push t present =
  let h = Hashtbl.create (List.length present) in
  List.iter (fun (x, v) -> Hashtbl.replace h x v) present;
  if t.len >= Array.length t.steps then begin
    let bigger = Array.make (2 * Array.length t.steps) h in
    Array.blit t.steps 0 bigger 0 t.len;
    t.steps <- bigger
  end;
  t.steps.(t.len) <- h;
  t.len <- t.len + 1

let length t = t.len

let step_table t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: instant out of range";
  t.steps.(i)

let get t i x = Hashtbl.find_opt (step_table t i) x

let present_count t x =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if Hashtbl.mem t.steps.(i) x then incr n
  done;
  !n

let values_of t x =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    match Hashtbl.find_opt t.steps.(i) x with
    | Some v -> acc := v :: !acc
    | None -> ()
  done;
  !acc

let tick_instants t x =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if Hashtbl.mem t.steps.(i) x then acc := i :: !acc
  done;
  !acc

let is_temp name =
  String.length name > 0
  && (name.[0] = '_'
      ||
      let rec has_dunder i =
        i + 1 < String.length name
        && ((name.[i] = '_' && name.[i + 1] = '_') || has_dunder (i + 1))
      in
      has_dunder 0)

let observable t =
  List.filter_map
    (fun vd ->
      if is_temp vd.Ast.var_name then None else Some vd.Ast.var_name)
    t.decls

let cell_of_value = function
  | Types.Vevent -> "!"
  | Types.Vbool true -> "T"
  | Types.Vbool false -> "F"
  | Types.Vint n -> string_of_int n
  | Types.Vreal r -> Printf.sprintf "%g" r
  | Types.Vstring s -> s

let chronogram ?signals ?(from_instant = 0) ?until_instant ppf t =
  let names = match signals with Some l -> l | None -> observable t in
  let hi = Option.value ~default:t.len until_instant in
  let hi = min hi t.len in
  let lo = max 0 from_instant in
  let width = ref 1 in
  let cells =
    List.map
      (fun x ->
        let row =
          List.init (hi - lo) (fun k ->
              match get t (lo + k) x with
              | None -> "."
              | Some v -> cell_of_value v)
        in
        List.iter (fun c -> width := max !width (String.length c)) row;
        (x, row))
      names
  in
  let name_w =
    List.fold_left (fun acc (x, _) -> max acc (String.length x)) 0 cells
  in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let lpad w s = String.make (max 0 (w - String.length s)) ' ' ^ s in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (x, row) ->
      Format.fprintf ppf "%s |" (pad name_w x);
      List.iter (fun c -> Format.fprintf ppf " %s" (lpad !width c)) row;
      Format.fprintf ppf "@,")
    cells;
  Format.fprintf ppf "@]"
