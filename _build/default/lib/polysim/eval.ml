module K = Signal_lang.Kernel
module Ast = Signal_lang.Ast
module Types = Signal_lang.Types

exception Eval_error of string

let errf fmt = Format.kasprintf (fun m -> raise (Eval_error m)) fmt

let as_bool = function
  | Types.Vbool b -> b
  | Types.Vevent -> true
  | v -> errf "boolean operation on %s" (Types.value_to_string v)

let compare_num v1 v2 =
  match v1, v2 with
  | Types.Vint a, Types.Vint b -> compare a b
  | Types.Vreal a, Types.Vreal b -> compare a b
  | Types.Vstring a, Types.Vstring b -> String.compare a b
  | a, b ->
    errf "comparison of %s and %s" (Types.value_to_string a)
      (Types.value_to_string b)

let eval_binop op v1 v2 =
  let open Ast in
  match op, v1, v2 with
  | Add, Types.Vint a, Types.Vint b -> Types.Vint (a + b)
  | Sub, Types.Vint a, Types.Vint b -> Types.Vint (a - b)
  | Mul, Types.Vint a, Types.Vint b -> Types.Vint (a * b)
  | Div, Types.Vint a, Types.Vint b ->
    if b = 0 then errf "division by zero" else Types.Vint (a / b)
  | Mod, Types.Vint a, Types.Vint b ->
    if b = 0 then errf "modulo by zero" else Types.Vint (a mod b)
  | Add, Types.Vreal a, Types.Vreal b -> Types.Vreal (a +. b)
  | Sub, Types.Vreal a, Types.Vreal b -> Types.Vreal (a -. b)
  | Mul, Types.Vreal a, Types.Vreal b -> Types.Vreal (a *. b)
  | Div, Types.Vreal a, Types.Vreal b -> Types.Vreal (a /. b)
  | And, a, b -> Types.Vbool (as_bool a && as_bool b)
  | Or, a, b -> Types.Vbool (as_bool a || as_bool b)
  | Xor, a, b -> Types.Vbool (as_bool a <> as_bool b)
  | Eq, a, b -> Types.Vbool (Types.equal_value a b)
  | Neq, a, b -> Types.Vbool (not (Types.equal_value a b))
  | Lt, a, b -> Types.Vbool (compare_num a b < 0)
  | Le, a, b -> Types.Vbool (compare_num a b <= 0)
  | Gt, a, b -> Types.Vbool (compare_num a b > 0)
  | Ge, a, b -> Types.Vbool (compare_num a b >= 0)
  | (Add | Sub | Mul | Div | Mod), a, b ->
    errf "arithmetic on %s and %s" (Types.value_to_string a)
      (Types.value_to_string b)

let eval_func op args =
  match op, args with
  | K.Punop Ast.Not, [ v ] -> Types.Vbool (not (as_bool v))
  | K.Punop Ast.Neg, [ Types.Vint n ] -> Types.Vint (-n)
  | K.Punop Ast.Neg, [ Types.Vreal r ] -> Types.Vreal (-.r)
  | K.Pbinop op, [ v1; v2 ] -> eval_binop op v1 v2
  | K.Pif, [ c; t; f ] -> if as_bool c then t else f
  | K.Pid, [ v ] -> v
  | K.Pclock, [ _ ] -> Types.Vevent
  | (K.Punop _ | K.Pbinop _ | K.Pif | K.Pid | K.Pclock), _ ->
    errf "malformed kernel function application"
