(** Step-wise operator evaluation, shared by the fixpoint interpreter
    ({!Engine}) and the clock-directed compiler ({!Compile}). *)

exception Eval_error of string

val as_bool : Signal_lang.Types.value -> bool
(** Events read as [true]. @raise Eval_error on non-booleans. *)

val eval_binop :
  Signal_lang.Ast.binop ->
  Signal_lang.Types.value ->
  Signal_lang.Types.value ->
  Signal_lang.Types.value
(** @raise Eval_error on type mismatches or division by zero. *)

val eval_func :
  Signal_lang.Kernel.prim ->
  Signal_lang.Types.value list ->
  Signal_lang.Types.value
(** Apply a kernel step-wise operator to present argument values. *)
