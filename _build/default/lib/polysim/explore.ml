module K = Signal_lang.Kernel
module Types = Signal_lang.Types

type verdict =
  | Holds
  | Violated of (Signal_lang.Ast.ident * Types.value) list list

(* all stimulus combinations for one instant *)
let combinations inputs =
  List.fold_left
    (fun acc (name, alts) ->
      List.concat_map
        (fun stim ->
          List.map
            (fun alt ->
              match alt with
              | None -> stim
              | Some v -> (name, v) :: stim)
            alts)
        acc)
    [ [] ] inputs

let check ?(depth = 8) ~inputs ~safe kp =
  match Compile.compile kp with
  | Error m -> Error m
  | Ok c -> (
    Compile.set_recording c false;
    let stimuli = combinations inputs in
    (* visited: state digest -> best (largest) remaining depth already
       explored from that state *)
    let visited : (string, int) Hashtbl.t = Hashtbl.create 1024 in
    let states = ref 0 in
    let key () = Compile.state_digest c in
    let exception Stop of verdict in
    let exception Sim_failure of string in
    let rec go remaining trail =
      if remaining > 0 then begin
        let k = key () in
        let seen =
          match Hashtbl.find_opt visited k with
          | Some r when r >= remaining -> true
          | _ ->
            Hashtbl.replace visited k remaining;
            false
        in
        if not seen then begin
          incr states;
          let snap = Compile.snapshot c in
          List.iter
            (fun stimulus ->
              Compile.restore c snap;
              match Compile.step c ~stimulus with
              | Ok present ->
                if not (safe present) then
                  raise (Stop (Violated (List.rev (stimulus :: trail))));
                go (remaining - 1) (stimulus :: trail)
              | Error m -> raise (Sim_failure m))
            stimuli
        end
      end
    in
    match go depth [] with
    | () -> Ok (Holds, !states)
    | exception Stop v -> Ok (v, !states)
    | exception Sim_failure m -> Error m)

let reachable_states ?depth ~inputs kp =
  match check ?depth ~inputs ~safe:(fun _ -> true) kp with
  | Ok (_, n) -> Ok n
  | Error m -> Error m
