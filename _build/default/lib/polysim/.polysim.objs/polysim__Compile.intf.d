lib/polysim/compile.mli: Signal_lang Trace
