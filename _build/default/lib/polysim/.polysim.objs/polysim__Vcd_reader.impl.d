lib/polysim/vcd_reader.ml: List Option Signal_lang String
