lib/polysim/explore.mli: Signal_lang
