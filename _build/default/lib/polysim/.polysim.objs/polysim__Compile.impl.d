lib/polysim/compile.ml: Analysis Array Buffer Clocks Eval Format Hashtbl List Marshal Printf Queue Signal_lang String Trace
