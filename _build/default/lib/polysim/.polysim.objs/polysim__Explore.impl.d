lib/polysim/explore.ml: Compile Hashtbl List Signal_lang
