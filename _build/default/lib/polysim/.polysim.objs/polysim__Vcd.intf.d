lib/polysim/vcd.mli: Signal_lang Trace
