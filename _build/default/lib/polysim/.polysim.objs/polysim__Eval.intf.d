lib/polysim/eval.mli: Signal_lang
