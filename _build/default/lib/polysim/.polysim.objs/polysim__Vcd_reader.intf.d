lib/polysim/vcd_reader.mli: Signal_lang
