lib/polysim/trace.ml: Array Format Hashtbl List Option Printf Signal_lang String
