lib/polysim/trace.mli: Format Signal_lang
