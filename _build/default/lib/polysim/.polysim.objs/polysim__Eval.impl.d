lib/polysim/eval.ml: Format Signal_lang String
