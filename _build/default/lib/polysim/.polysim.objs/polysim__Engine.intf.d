lib/polysim/engine.mli: Signal_lang Trace
