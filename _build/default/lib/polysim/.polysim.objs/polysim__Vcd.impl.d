lib/polysim/vcd.ml: Buffer Char Fun Hashtbl List Option Printf Signal_lang String Trace
