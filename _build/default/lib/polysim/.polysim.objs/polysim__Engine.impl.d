lib/polysim/engine.ml: Analysis Eval Format Hashtbl List Option Printf Queue Signal_lang String Trace
