(** Bounded exhaustive exploration of a kernel process — the paper's
    "model checking" connection, in bounded form.

    At each instant every input nondeterministically takes one of the
    stimulus alternatives supplied for it; the explorer walks all
    combinations up to the given depth, pruning states (delay memories
    + FIFO contents) already visited at an earlier-or-equal remaining
    depth, and checks a safety predicate on every reached reaction.

    The state pruning makes exploration complete for finite-state
    processes within the depth bound, and in general turns the search
    into bounded model checking: [`Holds] means no reachable violation
    within [depth] instants. *)

type verdict =
  | Holds
      (** no violation within the bound *)
  | Violated of (Signal_lang.Ast.ident * Signal_lang.Types.value) list list
      (** a counterexample: the stimulus sequence leading to the
          violation, oldest first *)

val check :
  ?depth:int ->
  inputs:(Signal_lang.Ast.ident * Signal_lang.Types.value option list) list ->
  safe:((Signal_lang.Ast.ident * Signal_lang.Types.value) list -> bool) ->
  Signal_lang.Kernel.kprocess ->
  (verdict * int, string) result
(** [check ~inputs ~safe kp] explores up to [depth] (default 8)
    instants. [inputs] lists, per input signal, its alternatives each
    instant ([None] = absent, [Some v] = present with value [v]); the
    instant's stimulus is one choice per input (cartesian product).
    [safe] receives each reaction's present signals. Returns the
    verdict and the number of distinct states explored. Fails when the
    process does not compile (causality cycle) or a simulation error
    occurs outside the property (e.g. division by zero). *)

val reachable_states :
  ?depth:int ->
  inputs:(Signal_lang.Ast.ident * Signal_lang.Types.value option list) list ->
  Signal_lang.Kernel.kprocess ->
  (int, string) result
(** Count of distinct (state, depth-independent) process states reached
    within the bound — a small verification metric. *)
