(** Hand-written lexer for the AADL textual subset.

    AADL identifiers are case-insensitive; tokens keep the original
    spelling and the parser compares keywords case-insensitively.
    Comments run from [--] to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | COLON | COLONCOLON | SEMI | COMMA
  | DOT | DOTDOT
  | ARROW          (** [->] *)
  | DARROW         (** [->>] delayed connection *)
  | TRANS_L        (** [-[] opening a mode-transition trigger list *)
  | ANNEX_BLOB of string  (** [{** ... **}] annex payload, verbatim *)
  | ASSOC          (** [=>] *)
  | PLUS_ASSOC     (** [+=>] *)
  | EOF

type positioned = {
  tok : token;
  line : int;      (** 1-based *)
  col : int;       (** 1-based *)
}

exception Lex_error of string * int * int
(** message, line, column *)

val tokenize : string -> positioned list
(** Full tokenization; ends with an [EOF] token.
    @raise Lex_error on invalid input. *)

val token_to_string : token -> string
