(** AADL pretty-printer. Produces standard textual syntax that
    {!Parser} accepts again (round-trip property, tested). *)

val pp_property_value : Format.formatter -> Syntax.property_value -> unit
val pp_property_assoc : Format.formatter -> Syntax.property_assoc -> unit
val pp_feature : Format.formatter -> Syntax.feature -> unit
val pp_component_type : Format.formatter -> Syntax.component_type -> unit
val pp_component_impl : Format.formatter -> Syntax.component_impl -> unit
val pp_package : Format.formatter -> Syntax.package -> unit

val package_to_string : Syntax.package -> string
