lib/aadl/check.mli: Format Syntax
