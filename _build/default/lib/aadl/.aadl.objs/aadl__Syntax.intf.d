lib/aadl/syntax.mli:
