lib/aadl/printer.mli: Format Syntax
