lib/aadl/lexer.mli:
