lib/aadl/instance.ml: Format List Option Props String Syntax
