lib/aadl/parser.mli: Syntax
