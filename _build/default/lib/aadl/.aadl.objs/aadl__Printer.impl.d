lib/aadl/printer.ml: Format List Syntax
