lib/aadl/syntax.ml: List String
