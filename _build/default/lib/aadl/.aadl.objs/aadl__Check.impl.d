lib/aadl/check.ml: Format Hashtbl List Option Props String Syntax
