lib/aadl/props.mli: Format Syntax
