lib/aadl/props.ml: Format List Option String Syntax
