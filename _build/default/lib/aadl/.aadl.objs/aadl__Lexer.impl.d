lib/aadl/lexer.ml: Buffer Format List Printf String
