lib/aadl/instance.mli: Format Syntax
