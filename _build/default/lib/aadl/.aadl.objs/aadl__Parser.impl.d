lib/aadl/parser.ml: Array Format Lexer List Printf String Syntax
