open Syntax

type dispatch_protocol =
  | Periodic
  | Aperiodic
  | Sporadic
  | Background

type io_time =
  | At_dispatch
  | At_start
  | At_complete
  | At_deadline

type queue_protocol = Fifo | Lifo

type overflow_protocol = Drop_oldest | Drop_newest | Overflow_error

let base_name name =
  match String.rindex_opt name ':' with
  | Some i when i + 1 < String.length name ->
    String.sub name (i + 1) (String.length name - i - 1)
  | Some _ | None -> name

let name_eq a b =
  String.lowercase_ascii (base_name a) = String.lowercase_ascii (base_name b)

let find name assocs =
  List.fold_left
    (fun acc pa ->
      if pa.applies_to = [] && name_eq pa.pname name then Some pa.pvalue
      else acc)
    None assocs

let unit_factor_us = function
  | "ns" -> Some 0.001
  | "us" -> Some 1.0
  | "ms" -> Some 1000.0
  | "s" | "sec" -> Some 1_000_000.0
  | "min" -> Some 60_000_000.0
  | "hr" -> Some 3_600_000_000.0
  | _ -> None

let rec duration_us = function
  | Pint (n, u) ->
    let u = Option.value ~default:"ms" (Option.map String.lowercase_ascii u) in
    Option.map (fun f -> int_of_float (float_of_int n *. f)) (unit_factor_us u)
  | Preal (r, u) ->
    let u = Option.value ~default:"ms" (Option.map String.lowercase_ascii u) in
    Option.map (fun f -> int_of_float (r *. f)) (unit_factor_us u)
  | Prange (_, hi) -> duration_us hi
  | Pstring _ | Pbool _ | Pname _ | Preference _ | Pclassifier _ | Plist _ ->
    None

let dispatch_protocol assocs =
  match find "Dispatch_Protocol" assocs with
  | Some (Pname n) -> (
    match String.lowercase_ascii n with
    | "periodic" -> Some Periodic
    | "aperiodic" -> Some Aperiodic
    | "sporadic" -> Some Sporadic
    | "background" -> Some Background
    | _ -> None)
  | _ -> None

let duration_prop name assocs = Option.bind (find name assocs) duration_us

let period_us = duration_prop "Period"
let deadline_us = duration_prop "Deadline"

let compute_execution_time_us assocs =
  duration_prop "Compute_Execution_Time" assocs

let int_prop name assocs =
  match find name assocs with
  | Some (Pint (n, None)) -> Some n
  | _ -> None

let priority = int_prop "Priority"
let queue_size = int_prop "Queue_Size"

let queue_protocol assocs =
  match find "Queue_Processing_Protocol" assocs with
  | Some (Pname n) -> (
    match String.lowercase_ascii n with
    | "fifo" -> Some Fifo
    | "lifo" -> Some Lifo
    | _ -> None)
  | _ -> None

let overflow_protocol assocs =
  match find "Overflow_Handling_Protocol" assocs with
  | Some (Pname n) -> (
    match String.lowercase_ascii n with
    | "dropoldest" -> Some Drop_oldest
    | "dropnewest" -> Some Drop_newest
    | "error" -> Some Overflow_error
    | _ -> None)
  | _ -> None

let rec io_time_of_value = function
  | Pname n -> (
    match String.lowercase_ascii n with
    | "dispatch" -> Some At_dispatch
    | "start" -> Some At_start
    | "completion" | "complete" -> Some At_complete
    | "deadline" -> Some At_deadline
    | _ -> None)
  | Plist [ v ] -> io_time_of_value v
  | _ -> None

let input_time assocs = Option.bind (find "Input_Time" assocs) io_time_of_value
let output_time assocs =
  Option.bind (find "Output_Time" assocs) io_time_of_value

let processor_bindings assocs =
  List.concat_map
    (fun pa ->
      if name_eq pa.pname "Actual_Processor_Binding" then
        let target =
          match pa.pvalue with
          | Preference p -> Some p
          | Plist [ Preference p ] -> Some p
          | _ -> None
        in
        match target with
        | Some cpu -> List.map (fun part -> (part, cpu)) pa.applies_to
        | None -> []
      else [])
    assocs

let pp_dispatch_protocol ppf p =
  Format.pp_print_string ppf
    (match p with
     | Periodic -> "Periodic"
     | Aperiodic -> "Aperiodic"
     | Sporadic -> "Sporadic"
     | Background -> "Background")

let pp_io_time ppf t =
  Format.pp_print_string ppf
    (match t with
     | At_dispatch -> "Dispatch"
     | At_start -> "Start"
     | At_complete -> "Complete"
     | At_deadline -> "Deadline")
