(** Typed accessors for the AADL timing properties the paper relies on
    (Sec. IV-A): dispatch protocol, Period, Deadline,
    Compute_Execution_Time, Input_Time / Output_Time, Queue_Size,
    Queue_Processing_Protocol, Priority, and the
    Actual_Processor_Binding deployment property.

    Durations are normalized to {e microseconds}. *)

type dispatch_protocol =
  | Periodic
  | Aperiodic
  | Sporadic
  | Background

(** The simplified Input_Time / Output_Time of the paper's execution
    model (Fig. 2): a reference event of the thread's dispatch frame. *)
type io_time =
  | At_dispatch
  | At_start
  | At_complete
  | At_deadline

type queue_protocol = Fifo | Lifo

type overflow_protocol = Drop_oldest | Drop_newest | Overflow_error

val base_name : string -> string
(** Strip a property-set qualifier: ["Timing_Properties::Period"] →
    ["Period"]. Matching is case-insensitive downstream. *)

val find :
  string -> Syntax.property_assoc list -> Syntax.property_value option
(** Last association for the (unqualified, case-insensitive) name wins,
    as in AADL's override semantics. Associations with an [applies_to]
    clause are skipped here. *)

val duration_us : Syntax.property_value -> int option
(** Interpret a value as a duration in µs: int/real with unit
    [ns|us|ms|s|sec|min|hr] (default ms, the common usage in the
    paper); ranges use their upper bound (worst case). *)

val dispatch_protocol :
  Syntax.property_assoc list -> dispatch_protocol option

val period_us : Syntax.property_assoc list -> int option
val deadline_us : Syntax.property_assoc list -> int option
val compute_execution_time_us : Syntax.property_assoc list -> int option
val priority : Syntax.property_assoc list -> int option
val queue_size : Syntax.property_assoc list -> int option
val queue_protocol : Syntax.property_assoc list -> queue_protocol option
val overflow_protocol :
  Syntax.property_assoc list -> overflow_protocol option
val input_time : Syntax.property_assoc list -> io_time option
val output_time : Syntax.property_assoc list -> io_time option

val processor_bindings :
  Syntax.property_assoc list -> (string * string) list
(** [Actual_Processor_Binding => reference(cpu) applies to part]
    pairs as [(part_path, processor_path)]. *)

val pp_dispatch_protocol : Format.formatter -> dispatch_protocol -> unit
val pp_io_time : Format.formatter -> io_time -> unit
