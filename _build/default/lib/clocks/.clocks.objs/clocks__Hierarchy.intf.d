lib/clocks/hierarchy.mli: Calculus Format Signal_lang
