lib/clocks/calculus.ml: Array Bdd Format Hashtbl List Option Printf Signal_lang String
