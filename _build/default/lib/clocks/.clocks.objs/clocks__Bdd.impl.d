lib/clocks/bdd.ml: Array Format Hashtbl List
