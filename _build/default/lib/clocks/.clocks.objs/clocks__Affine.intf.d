lib/clocks/affine.mli: Format
