lib/clocks/affine.ml: Format List Putil
