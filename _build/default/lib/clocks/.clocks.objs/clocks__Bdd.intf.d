lib/clocks/bdd.mli: Format
