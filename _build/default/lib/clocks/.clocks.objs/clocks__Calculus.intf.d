lib/clocks/calculus.mli: Bdd Format Signal_lang
