lib/clocks/pword.mli: Affine Format
