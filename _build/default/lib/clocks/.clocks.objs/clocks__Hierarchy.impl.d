lib/clocks/hierarchy.ml: Array Bdd Calculus Format List Signal_lang String
