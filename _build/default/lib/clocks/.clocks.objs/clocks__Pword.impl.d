lib/clocks/pword.ml: Affine Array Format List Printf Putil String
