(** Ultimately periodic binary words.

    A schedule clock over the hyper-period is naturally an ultimately
    periodic word [u(v)]: a finite prefix [u] followed by an infinitely
    repeated cycle [v] ([v] non-empty). [1] marks a tick. The scheduler
    exports per-event activation clocks in this form when they are not
    strictly periodic (e.g. jobs of a thread not evenly spaced inside
    the hyper-period). *)

type t

val make : prefix:bool list -> cycle:bool list -> t
(** Canonicalized on construction: the cycle is reduced to its smallest
    period and the prefix shortened when it ends like the cycle.
    @raise Invalid_argument if the cycle is empty. *)

val of_string : string -> t
(** Notation ["1101(100)"]: optional prefix then parenthesised cycle.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val of_ticks : horizon:int -> int list -> t
(** The word whose cycle of length [horizon] has a [1] at each listed
    instant — the natural encoding of one hyper-period of a schedule.
    @raise Invalid_argument if an instant falls outside the horizon. *)

val of_periodic : Affine.periodic -> t
(** Periodic clock [{p·t + o}] as the word [0^o (1 0^{p-1})]. *)

val tick : t -> int -> bool
(** Value of the word at the given instant (0-based). *)

val prefix : t -> bool list
val cycle : t -> bool list

val rate : t -> int * int
(** Ticks per cycle length, reduced: the asymptotic activation rate. *)

val equal : t -> t -> bool
(** Equality of the denoted infinite words. *)

val land_ : t -> t -> t
(** Instant-wise conjunction (clock intersection). *)

val lor_ : t -> t -> t
(** Instant-wise disjunction (clock union). *)

val lnot : t -> t
(** Complement (relative to the base clock). *)

val disjoint : t -> t -> bool
val subset : t -> t -> bool

val first_tick : t -> int option
(** Instant of the first [1], or [None] for the empty clock. *)

val as_periodic : t -> Affine.periodic option
(** The word as a strictly periodic clock, when it is one. *)

val pp : Format.formatter -> t -> unit
