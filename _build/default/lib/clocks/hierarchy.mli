(** Clock hierarchy synthesis.

    Orders the synchronization classes of a {!Calculus} result by
    structural (definitional) clock inclusion and arranges them in a
    forest:
    the parent of a class is a minimal class strictly containing it.
    Polychrony uses this structure to synthesize the fastest simulation
    clock (paper, Sec. III): when the forest has a single root, that
    root is the master clock of the process and the program is
    {e endochronous enough} to be simulated without an external
    activation signal. *)

type node = {
  class_id : int;
  repr : Signal_lang.Ast.ident;   (** canonical signal of the class *)
  parent : int option;            (** class id of the parent, if any *)
  children : int list;
  depth : int;                    (** 0 for roots *)
}

type t

val build : Calculus.t -> t

val nodes : t -> node list
val node : t -> int -> node
val roots : t -> node list

val master : t -> Signal_lang.Ast.ident option
(** Representative of the unique root class, if the forest is a tree. *)

val depth : t -> int
(** Maximal depth of the forest. *)

val pp : Format.formatter -> t -> unit
(** Indented tree rendering, one line per class. *)
