type t = {
  u : bool array;  (* prefix *)
  v : bool array;  (* cycle, non-empty *)
}

(* Smallest period of the cycle: the least divisor d of |v| such that v
   is d-periodic. *)
let reduce_cycle v =
  let n = Array.length v in
  let is_period d =
    n mod d = 0
    &&
    let ok = ref true in
    for i = d to n - 1 do
      if v.(i) <> v.(i - d) then ok := false
    done;
    !ok
  in
  let rec find d = if is_period d then d else find (d + 1) in
  let d = find 1 in
  if d = n then v else Array.sub v 0 d

(* u·(v)^ω = u'·(v')^ω when the last prefix letter equals the last
   cycle letter and v' is v rotated right: repeatedly absorb the last
   prefix letter into the cycle. Combined with cycle reduction this
   yields a canonical form (shortest prefix, shortest cycle). *)
let reduce_prefix u v =
  let u = ref (Array.to_list u) in
  let v = ref v in
  let continue_ = ref true in
  while !continue_ do
    match List.rev !u with
    | last :: rest_rev when last = !v.(Array.length !v - 1) ->
      u := List.rev rest_rev;
      let m = Array.length !v in
      let rotated = Array.init m (fun i -> !v.((i + m - 1) mod m)) in
      v := rotated
    | _ -> continue_ := false
  done;
  (Array.of_list !u, !v)

let make ~prefix ~cycle =
  if cycle = [] then invalid_arg "Pword.make: empty cycle";
  let v = reduce_cycle (Array.of_list cycle) in
  let u, v = reduce_prefix (Array.of_list prefix) v in
  let v = reduce_cycle v in
  { u; v }

let of_string s =
  let n = String.length s in
  let parse_bits sub =
    List.init (String.length sub) (fun i ->
        match sub.[i] with
        | '1' -> true
        | '0' -> false
        | c -> invalid_arg (Printf.sprintf "Pword.of_string: bad char %c" c))
  in
  match String.index_opt s '(' with
  | None -> invalid_arg "Pword.of_string: missing cycle"
  | Some i ->
    if n = 0 || s.[n - 1] <> ')' then
      invalid_arg "Pword.of_string: missing ')'";
    let prefix = parse_bits (String.sub s 0 i) in
    let cycle = parse_bits (String.sub s (i + 1) (n - i - 2)) in
    make ~prefix ~cycle

let to_string w =
  let bits a =
    String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list a))
  in
  Printf.sprintf "%s(%s)" (bits w.u) (bits w.v)

let of_ticks ~horizon ticks =
  if horizon < 1 then invalid_arg "Pword.of_ticks: horizon < 1";
  let cycle = Array.make horizon false in
  List.iter
    (fun t ->
      if t < 0 || t >= horizon then
        invalid_arg "Pword.of_ticks: instant outside horizon";
      cycle.(t) <- true)
    ticks;
  make ~prefix:[] ~cycle:(Array.to_list cycle)

let of_periodic (c : Affine.periodic) =
  let prefix = List.init c.Affine.offset (fun _ -> false) in
  let cycle = List.init c.Affine.period (fun i -> i = 0) in
  make ~prefix ~cycle

let tick w i =
  let lu = Array.length w.u in
  if i < lu then w.u.(i) else w.v.((i - lu) mod Array.length w.v)

let prefix w = Array.to_list w.u
let cycle w = Array.to_list w.v

let rate w =
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 w.v in
  let len = Array.length w.v in
  let g = Putil.Mathx.gcd ones len in
  if g = 0 then (0, 1) else (ones / g, len / g)

let equal w1 w2 =
  (* canonical forms are unique *)
  w1.u = w2.u && w1.v = w2.v

(* Apply a binary boolean operation instant-wise: align on the common
   prefix length and the lcm of cycle lengths. *)
let map2 f w1 w2 =
  let lu = max (Array.length w1.u) (Array.length w2.u) in
  let lv = Putil.Mathx.lcm (Array.length w1.v) (Array.length w2.v) in
  let prefix = List.init lu (fun i -> f (tick w1 i) (tick w2 i)) in
  let cycle = List.init lv (fun i -> f (tick w1 (lu + i)) (tick w2 (lu + i))) in
  make ~prefix ~cycle

let land_ = map2 ( && )
let lor_ = map2 ( || )

let lnot w =
  make
    ~prefix:(List.map not (Array.to_list w.u))
    ~cycle:(List.map not (Array.to_list w.v))

let disjoint w1 w2 =
  let z = land_ w1 w2 in
  Array.for_all not z.u && Array.for_all not z.v

let subset w1 w2 = disjoint w1 (lnot w2)

let first_tick w =
  let lu = Array.length w.u in
  let rec in_prefix i =
    if i >= lu then in_cycle 0 else if w.u.(i) then Some i else in_prefix (i + 1)
  and in_cycle i =
    if i >= Array.length w.v then None
    else if w.v.(i) then Some (lu + i)
    else in_cycle (i + 1)
  in
  in_prefix 0

let as_periodic w =
  match first_tick w with
  | None -> None
  | Some o ->
    let ones = Array.fold_left (fun n b -> if b then n + 1 else n) 0 w.v in
    if ones <> 1 then
      (* a strictly periodic clock has exactly one tick per (reduced)
         cycle and an all-zero prefix up to the first tick *)
      None
    else begin
      let p = Array.length w.v in
      let candidate = Affine.periodic ~period:p ~offset:o in
      (* verify over one prefix + two cycles *)
      let horizon = Array.length w.u + (2 * p) in
      let ok = ref true in
      for i = 0 to horizon - 1 do
        if tick w i <> Affine.mem candidate i then ok := false
      done;
      if !ok then Some candidate else None
    end

let pp ppf w = Format.pp_print_string ppf (to_string w)
