(** Affine clock relations (Smarandache, Gautier, Le Guernic — paper
    ref [13]) and periodic clocks over a discrete reference.

    A {e periodic clock} on a base discrete time ticks at
    [{period·t + offset | t ∈ ℕ}]. The paper's affine sampling
    [y = {d·t + φ | t ∈ x}] subsamples a clock by index. An {e affine
    relation} [(n, φ, d)] between clocks [x] and [y] states the
    existence of a common reference [z] with [x_t = z_{n·t}] and
    [y_t = z_{d·t+φ}]. The scheduler exports thread event clocks as
    such relations (Sec. IV-D). *)

type periodic = private {
  period : int;  (** ≥ 1, in base ticks *)
  offset : int;  (** ≥ 0, first tick *)
}

type relation = private {
  n : int;    (** ≥ 1 *)
  phi : int;  (** may be negative in intermediate results *)
  d : int;    (** ≥ 1 *)
}

(** {1 Periodic clocks} *)

val periodic : period:int -> offset:int -> periodic
(** @raise Invalid_argument if [period < 1] or [offset < 0]. *)

val ticks : periodic -> horizon:int -> int list
(** Tick instants strictly below [horizon], ascending. *)

val mem : periodic -> int -> bool
(** Does the clock tick at the given base instant? *)

val subsample : periodic -> d:int -> phi:int -> periodic
(** The paper's affine sampling [y = {d·t + φ | t ∈ x}]: keep every
    [d]-th tick starting at index [φ].
    @raise Invalid_argument if [d < 1] or [phi < 0]. *)

val synchronizable : periodic -> periodic -> bool
(** The constraint [c1 ^= c2] is satisfiable on the common base, i.e.
    the two clocks are the same set of instants. *)

val never_together : periodic -> periodic -> bool
(** The two clocks share no instant (satisfies [c1 ^# c2]). *)

val intersect : periodic -> periodic -> periodic option
(** Common instants; [None] when disjoint. The result's period is
    [lcm] of the periods, its offset the smallest common instant. *)

val relation_of : base:periodic -> periodic -> relation option
(** [(1, φ, d)] such that the second clock is the [(d, φ)]-affine
    subsampling of [base], if the containment holds exactly. *)

(** {1 Affine relations} *)

val relation : n:int -> phi:int -> d:int -> relation
(** @raise Invalid_argument if [n < 1] or [d < 1]. *)

val identity : relation

val canon : relation -> relation
(** Divide by the greatest common factor of [n], [φ], [d] — canonical
    representative of the equivalence class. *)

val equivalent : relation -> relation -> bool
(** Same relation up to scaling. *)

val compose : relation -> relation -> relation
(** [(n1,φ1,d1) ∘ (n2,φ2,d2) = (n1·n2, n2·φ1 + d1·φ2, d1·d2)],
    canonicalized: the relation between [x] and [u] when the first
    relates [x,y] and the second relates [y,u]. *)

val inverse : relation -> relation
(** The relation seen from the other end. *)

val apply_to_index : relation -> int -> int * int
(** [apply_to_index r t] is [(n·t, d·t + phi)] — positions of [x_t] and
    [y_t] on the common reference; used by property tests. *)

val pp_periodic : Format.formatter -> periodic -> unit
val pp_relation : Format.formatter -> relation -> unit
