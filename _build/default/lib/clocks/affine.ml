type periodic = {
  period : int;
  offset : int;
}

type relation = {
  n : int;
  phi : int;
  d : int;
}

let periodic ~period ~offset =
  if period < 1 then invalid_arg "Affine.periodic: period < 1";
  if offset < 0 then invalid_arg "Affine.periodic: offset < 0";
  { period; offset }

let ticks c ~horizon =
  let rec go t acc =
    let pos = (c.period * t) + c.offset in
    if pos >= horizon then List.rev acc else go (t + 1) (pos :: acc)
  in
  go 0 []

let mem c pos = pos >= c.offset && (pos - c.offset) mod c.period = 0

let subsample c ~d ~phi =
  if d < 1 then invalid_arg "Affine.subsample: d < 1";
  if phi < 0 then invalid_arg "Affine.subsample: phi < 0";
  (* tick t of the result is tick (d·t + φ) of c, i.e. base instant
     period·(d·t+φ) + offset = (period·d)·t + (offset + period·φ) *)
  { period = c.period * d; offset = c.offset + (c.period * phi) }

let synchronizable c1 c2 = c1.period = c2.period && c1.offset = c2.offset

(* Common instants: period·t + o1 = period'·s + o2. *)
let intersect c1 c2 =
  let g = Putil.Mathx.gcd c1.period c2.period in
  if (c2.offset - c1.offset) mod g <> 0 then None
  else begin
    (* CRT: find x ≡ o1 (mod p1), x ≡ o2 (mod p2), x ≥ max offsets *)
    let p = Putil.Mathx.lcm c1.period c2.period in
    match
      Putil.Mathx.solve_diophantine c1.period (-c2.period)
        (c2.offset - c1.offset)
    with
    | None -> None
    | Some (t0, _) ->
      let x0 = (c1.period * t0) + c1.offset in
      (* shift x0 into the valid region: x ≥ max(o1, o2), minimal *)
      let lo = max c1.offset c2.offset in
      let x =
        if x0 >= lo then x0 - (Putil.Mathx.floor_div (x0 - lo) p * p)
        else x0 + (Putil.Mathx.ceil_div (lo - x0) p * p)
      in
      Some { period = p; offset = x }
  end

let never_together c1 c2 = intersect c1 c2 = None

let relation ~n ~phi ~d =
  if n < 1 then invalid_arg "Affine.relation: n < 1";
  if d < 1 then invalid_arg "Affine.relation: d < 1";
  { n; phi; d }

let identity = { n = 1; phi = 0; d = 1 }

let canon r =
  let g = Putil.Mathx.gcd (Putil.Mathx.gcd r.n r.d) r.phi in
  if g <= 1 then r else { n = r.n / g; phi = r.phi / g; d = r.d / g }

let equivalent r1 r2 = canon r1 = canon r2

let compose r1 r2 =
  canon
    { n = r1.n * r2.n;
      phi = (r2.n * r1.phi) + (r1.d * r2.phi);
      d = r1.d * r2.d }

let inverse r = canon { n = r.d; phi = -r.phi; d = r.n }

let apply_to_index r t = (r.n * t, (r.d * t) + r.phi)

let relation_of ~base c =
  (* c = {d·t + φ | t ∈ base} requires c.period = base.period·d and
     c.offset = base.offset + base.period·φ with φ ≥ 0 *)
  if c.period mod base.period <> 0 then None
  else
    let d = c.period / base.period in
    let diff = c.offset - base.offset in
    if diff < 0 || diff mod base.period <> 0 then None
    else Some { n = 1; phi = diff / base.period; d }

let pp_periodic ppf c =
  Format.fprintf ppf "{%d·t + %d}" c.period c.offset

let pp_relation ppf r =
  Format.fprintf ppf "(n=%d, φ=%d, d=%d)" r.n r.phi r.d
