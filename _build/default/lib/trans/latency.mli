(** End-to-end flow latency analysis over the synthesized static
    schedule (the classic AADL timing question — Feiler & Hansson's
    flow latency analysis — answered here with the paper's
    input-compute-output semantics).

    A flow follows port connections from a source feature to a
    destination feature through a chain of threads. Data released by a
    thread at its Output_Time is frozen by the next thread at its next
    Input_Time — {e strictly} after arrival for event ports (the
    freeze-then-arrival ordering of Fig. 2/5), {e at or} after arrival
    for data ports (the [fm] memory law includes the current instant).
    The analysis sweeps every release phase inside the hyper-period and
    reports the best/worst/average end-to-end latency, in µs.

    The predictions are validated against simulated traces in the test
    suite. *)

type hop = {
  h_thread : string;             (** thread instance path *)
  h_in_port : string option;     (** entry port; [None] for the source
                                     thread when the flow starts at its
                                     dispatch *)
  h_in_kind : Aadl.Syntax.port_kind option;
  h_out_port : string option;    (** exit port; [None] on the last hop *)
  h_delayed : bool;              (** outgoing connection is [->>] *)
}

type report = {
  flow_src : string;
  flow_dst : string;
  hops : hop list;
  best_us : int;
  worst_us : int;
  average_us : float;
  samples : (int * int) list;
      (** (release instant within the hyper-period, latency) *)
}

val find_path :
  Aadl.Instance.t -> src:string -> dst:string -> (hop list, string) result
(** Thread chain from a source feature path to a destination feature
    path along semantic port connections (DFS, first path found). *)

val analyze :
  Aadl.Instance.t ->
  schedules:(string * Sched.Static_sched.schedule) list ->
  src:string ->
  dst:string ->
  (report, string) result
(** Latency of the flow for a stimulus arriving at every µs-phase of
    the hyper-period (sampled at event granularity). *)

val pp_report : Format.formatter -> report -> unit
