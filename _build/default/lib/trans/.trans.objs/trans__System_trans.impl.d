lib/trans/system_trans.ml: Aadl Format Hashtbl List Option Printf Sched Sched_trans Signal_lang String Thread_trans Traceability
