lib/trans/behavior.ml: Aadl List Signal_lang String
