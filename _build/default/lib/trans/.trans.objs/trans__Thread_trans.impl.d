lib/trans/thread_trans.ml: Aadl Behavior Hashtbl List Printf Signal_lang String
