lib/trans/thread_trans.mli: Aadl Behavior Signal_lang
