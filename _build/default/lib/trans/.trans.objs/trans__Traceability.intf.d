lib/trans/traceability.mli: Format
