lib/trans/sched_trans.ml: List Printf Sched Signal_lang String
