lib/trans/sched_trans.mli: Sched Signal_lang
