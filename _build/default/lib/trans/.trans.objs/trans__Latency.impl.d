lib/trans/latency.ml: Aadl Format List Option Printf Sched String
