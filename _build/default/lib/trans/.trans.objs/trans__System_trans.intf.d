lib/trans/system_trans.mli: Aadl Behavior Sched Signal_lang Traceability
