lib/trans/traceability.ml: Format Hashtbl List
