lib/trans/behavior.mli: Aadl Signal_lang
