lib/trans/latency.mli: Aadl Format Sched
