(** Generation of the SIGNAL scheduler process from a synthesized
    static schedule (paper Sec. IV-D: "the generated valid schedules
    are then seamlessly translated into SIGNAL").

    The process consumes the processor's base [tick] and produces, for
    each scheduled task, the control events [*_dispatch], [*_start],
    [*_complete] and [*_deadline] at the base-tick phases recorded in
    the schedule, cycling over the hyper-period:
    {[
      n  := n $ 1 init 0 + 1          -- tick counter
      ph := (n - 1) modulo H          -- phase in the hyper-period
      thX_dispatch := when (ph = 0 or ph = 4 or ...)
    ]} *)

val translate :
  name:string ->
  prefix_of:(string -> string) ->
  Sched.Static_sched.schedule ->
  Signal_lang.Ast.process
(** [prefix_of] maps a schedule task name to the signal prefix used
    for its four control-event outputs. *)

val output_names : prefix:string -> string list
(** The four event outputs generated for one task, in declaration
    order: dispatch, start, complete, deadline. *)
