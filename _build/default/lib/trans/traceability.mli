(** Traceability between AADL model elements and generated SIGNAL
    signals/processes (paper Sec. IV-E: names preserved as names or in
    annotations). *)

type t

val create : unit -> t
val add : t -> aadl:string -> signal:string -> unit
val signal_of : t -> string -> string option
val aadl_of : t -> string -> string option
val entries : t -> (string * string) list
(** (aadl path, signal name) pairs in insertion order. *)

val pp : Format.formatter -> t -> unit
