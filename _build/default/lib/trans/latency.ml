module Syn = Aadl.Syntax
module Inst = Aadl.Instance
module S = Sched.Static_sched

type hop = {
  h_thread : string;
  h_in_port : string option;
  h_in_kind : Syn.port_kind option;
  h_out_port : string option;
  h_delayed : bool;
}

type report = {
  flow_src : string;
  flow_dst : string;
  hops : hop list;
  best_us : int;
  worst_us : int;
  average_us : float;
  samples : (int * int) list;
}

let split_feature path =
  match String.rindex_opt path '.' with
  | None -> None
  | Some i ->
    Some
      ( String.sub path 0 i,
        String.sub path (i + 1) (String.length path - i - 1) )

let port_kind_of t comp_path fname =
  match Inst.find t comp_path with
  | None -> None
  | Some inst ->
    List.find_map
      (fun f ->
        match f with
        | Syn.Port { fname = n; kind; _ } when String.equal n fname ->
          Some kind
        | Syn.Port _ | Syn.Data_access _ | Syn.Subprogram_access _ -> None)
      inst.Inst.i_features

let is_thread t path =
  match Inst.find t path with
  | Some i -> i.Inst.i_category = Syn.Thread
  | None -> false

(* DFS over port connections between threads, from the source feature
   to the destination feature. *)
let find_path t ~src ~dst =
  let conns =
    List.filter
      (fun c -> c.Inst.ci_kind = Syn.Port_connection)
      (Inst.semantic_connections t)
  in
  (* entry edges: connections leaving the source feature *)
  let rec dfs visited at =
    (* [at] is a (thread path, in port, kind) the flow has reached *)
    let th, in_port, in_kind = at in
    if List.mem th visited then None
    else
      (* does any out port of this thread connect to dst or onward? *)
      let outgoing =
        List.filter_map
          (fun c ->
            match split_feature c.Inst.ci_src with
            | Some (th', out_port) when String.equal th' th ->
              Some (out_port, c)
            | _ -> None)
          conns
      in
      (* direct edge to the destination *)
      let direct =
        List.find_map
          (fun (out_port, c) ->
            if String.equal c.Inst.ci_dst dst then
              Some
                [ { h_thread = th; h_in_port = in_port; h_in_kind = in_kind;
                    h_out_port = Some out_port;
                    h_delayed = not c.Inst.ci_immediate } ]
            else None)
          outgoing
      in
      match direct with
      | Some hops -> Some hops
      | None ->
        List.find_map
          (fun (out_port, c) ->
            match split_feature c.Inst.ci_dst with
            | Some (th', in_port') when is_thread t th' ->
              let kind' = port_kind_of t th' in_port' in
              (match dfs (th :: visited) (th', Some in_port', kind') with
               | Some rest ->
                 Some
                   ({ h_thread = th; h_in_port = in_port; h_in_kind = in_kind;
                      h_out_port = Some out_port;
                      h_delayed = not c.Inst.ci_immediate }
                    :: rest)
               | None -> None)
            | _ -> None)
          outgoing
  in
  (* starting points: connections from src into a thread port *)
  let starts =
    List.filter_map
      (fun c ->
        if String.equal c.Inst.ci_src src then
          match split_feature c.Inst.ci_dst with
          | Some (th, p) when is_thread t th ->
            Some (th, Some p, port_kind_of t th p)
          | _ -> None
        else None)
      conns
  in
  (* the source may itself be a thread feature *)
  let starts =
    match split_feature src with
    | Some (th, _) when is_thread t th -> (th, None, None) :: starts
    | _ -> starts
  in
  match List.find_map (fun at -> dfs [] at) starts with
  | Some hops -> Ok hops
  | None ->
    Error (Printf.sprintf "no port-connection flow from %s to %s" src dst)

(* time of the next event of [kind] for thread [th] at or strictly
   after [time], unrolling the hyper-period *)
let next_event sched th ev ~after ~strict =
  let hyper = sched.S.hyperperiod_us in
  let times = S.event_times sched th ev in
  let rec search base =
    let candidates =
      List.filter_map
        (fun tm ->
          let tm = tm + base in
          if (strict && tm > after) || ((not strict) && tm >= after) then
            Some tm
          else None)
        times
    in
    match candidates with
    | [] -> search (base + hyper)
    | c :: rest -> List.fold_left min c rest
  in
  search 0

let sched_of schedules th =
  (* the schedule containing this thread *)
  List.find_opt
    (fun (_, s) ->
      List.exists (fun j -> String.equal j.S.j_task.Sched.Task.t_name th)
        s.S.jobs)
    schedules
  |> Option.map snd

let analyze t ~schedules ~src ~dst =
  match find_path t ~src ~dst with
  | Error m -> Error m
  | Ok hops -> (
    match hops with
    | [] -> Error "empty flow"
    | first :: _ -> (
      match sched_of schedules first.h_thread with
      | None ->
        Error (Printf.sprintf "thread %s is not scheduled" first.h_thread)
      | Some s0 ->
        let hyper = s0.S.hyperperiod_us in
        (* propagate a stimulus arriving at absolute time t0 *)
        let propagate t0 =
          List.fold_left
            (fun tm hop ->
              match sched_of schedules hop.h_thread with
              | None -> tm
              | Some s ->
                (* freeze at the thread's next Input_Time; event ports
                   require strict precedence (freeze-then-arrival) *)
                let strict =
                  match hop.h_in_kind with
                  | Some Syn.Data_port -> false
                  | Some (Syn.Event_port | Syn.Event_data_port) -> true
                  | None -> false
                in
                let freeze =
                  next_event s hop.h_thread S.Dispatch ~after:tm ~strict
                in
                (* the job dispatched at [freeze] releases its output at
                   Complete (immediate) or Deadline (delayed) *)
                let release_ev =
                  if hop.h_delayed then S.Deadline else S.Output_release
                in
                next_event s hop.h_thread release_ev ~after:freeze
                  ~strict:false)
            t0 hops
        in
        (* sweep release phases at event granularity *)
        let phases =
          List.sort_uniq compare
            (0
             :: List.concat_map
                  (fun (_, s) ->
                    List.concat_map
                      (fun j ->
                        [ j.S.dispatch_us mod hyper;
                          j.S.complete_us mod hyper;
                          (j.S.complete_us + 1) mod hyper ])
                      s.S.jobs)
                  schedules)
        in
        let samples =
          List.map (fun t0 -> (t0, propagate t0 - t0)) phases
        in
        let lats = List.map snd samples in
        let best = List.fold_left min max_int lats in
        let worst = List.fold_left max 0 lats in
        let average =
          float_of_int (List.fold_left ( + ) 0 lats)
          /. float_of_int (List.length lats)
        in
        Ok
          { flow_src = src; flow_dst = dst; hops; best_us = best;
            worst_us = worst; average_us = average; samples }))

let pp_report ppf r =
  Format.fprintf ppf "@[<v>flow %s -> %s@," r.flow_src r.flow_dst;
  List.iter
    (fun h ->
      Format.fprintf ppf "  via %s%s%s%s@," h.h_thread
        (match h.h_in_port with
         | Some p -> " (in " ^ p ^ ")"
         | None -> "")
        (match h.h_out_port with
         | Some p -> " (out " ^ p ^ ")"
         | None -> "")
        (if h.h_delayed then " [delayed]" else ""))
    r.hops;
  Format.fprintf ppf "latency: best %d us, worst %d us, average %.0f us@]"
    r.best_us r.worst_us r.average_us
