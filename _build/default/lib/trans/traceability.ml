type t = {
  mutable pairs : (string * string) list;  (* reversed *)
  by_aadl : (string, string) Hashtbl.t;
  by_signal : (string, string) Hashtbl.t;
}

let create () =
  { pairs = []; by_aadl = Hashtbl.create 64; by_signal = Hashtbl.create 64 }

let add t ~aadl ~signal =
  t.pairs <- (aadl, signal) :: t.pairs;
  Hashtbl.replace t.by_aadl aadl signal;
  Hashtbl.replace t.by_signal signal aadl

let signal_of t aadl = Hashtbl.find_opt t.by_aadl aadl
let aadl_of t signal = Hashtbl.find_opt t.by_signal signal
let entries t = List.rev t.pairs

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (a, s) -> Format.fprintf ppf "%-48s -> %s@," a s)
    (entries t);
  Format.fprintf ppf "@]"
