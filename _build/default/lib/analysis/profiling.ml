module K = Signal_lang.Kernel
module Ast = Signal_lang.Ast

type cost_model = {
  c_copy : int;
  c_arith : int;
  c_mult : int;
  c_if : int;
  c_delay : int;
  c_when : int;
  c_default : int;
  c_fifo_op : int;
}

let default_cost_model =
  { c_copy = 1; c_arith = 1; c_mult = 3; c_if = 1; c_delay = 2; c_when = 1;
    c_default = 1; c_fifo_op = 5 }

type report = {
  per_signal : (string * int) list;
  total_static : int;
  weighted : (string * int) list;
  total_weighted : int;
}

let eq_cost model = function
  | K.Kfunc { op; _ } -> (
    match op with
    | K.Punop _ -> model.c_arith
    | K.Pbinop (Ast.Mul | Ast.Div | Ast.Mod) -> model.c_mult
    | K.Pbinop _ -> model.c_arith
    | K.Pif -> model.c_if
    | K.Pid -> model.c_copy
    | K.Pclock -> 0)
  | K.Kdelay _ -> model.c_delay
  | K.Kwhen _ -> model.c_when
  | K.Kdefault _ -> model.c_default

let eq_dst = function
  | K.Kfunc { dst; _ } | K.Kdelay { dst; _ } | K.Kwhen { dst; _ }
  | K.Kdefault { dst; _ } -> dst

let signal_costs ?(model = default_cost_model) kp =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun eq ->
      let dst = eq_dst eq in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl dst) in
      Hashtbl.replace tbl dst (prev + eq_cost model eq))
    kp.K.keqs;
  List.iter
    (fun ki ->
      List.iter
        (fun out ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt tbl out) in
          Hashtbl.replace tbl out (prev + model.c_fifo_op))
        ki.K.ki_outs)
    kp.K.kinstances;
  Hashtbl.fold (fun s c acc -> (s, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let static_costs ?model kp =
  let per_signal = signal_costs ?model kp in
  let total_static = List.fold_left (fun acc (_, c) -> acc + c) 0 per_signal in
  { per_signal; total_static; weighted = []; total_weighted = 0 }

let with_counts ?model ~counts kp =
  let base = static_costs ?model kp in
  let weighted =
    List.map (fun (s, c) -> (s, c * counts s)) base.per_signal
  in
  let total_weighted =
    List.fold_left (fun acc (_, c) -> acc + c) 0 weighted
  in
  { base with weighted; total_weighted }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>profiling: %d signals, static reaction cost %d@,"
    (List.length r.per_signal) r.total_static;
  if r.weighted <> [] then
    Format.fprintf ppf "weighted total over supplied counts: %d@,"
      r.total_weighted;
  Format.fprintf ppf "@]"
