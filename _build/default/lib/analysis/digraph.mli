(** Directed graphs over string-named vertices, with Tarjan SCC and
    topological sorting. Used for instantaneous-dependency (causality)
    analysis and by the simulator's evaluation ordering. *)

type t

val create : unit -> t

val add_vertex : t -> string -> unit
(** Idempotent. *)

val add_edge : t -> string -> string -> unit
(** [add_edge g a b] adds the edge a → b (and both vertices). Parallel
    edges collapse. *)

val vertices : t -> string list
val successors : t -> string -> string list
val edge_count : t -> int

val sccs : t -> string list list
(** Strongly connected components (Tarjan), in reverse topological
    order of the condensation. *)

val nontrivial_sccs : t -> string list list
(** Components with more than one vertex, or a self-loop. *)

val topological_sort : t -> (string list, string list) result
(** [Ok order] such that for every edge a → b, a precedes b; or
    [Error cycle] exposing one non-trivial SCC. *)

val reachable : t -> string -> string list
(** Vertices reachable from the given one (excluded unless on a cycle
    through it). *)
