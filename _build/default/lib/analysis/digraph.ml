type t = {
  adj : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable edges : int;
}

let create () = { adj = Hashtbl.create 64; edges = 0 }

let add_vertex g v =
  if not (Hashtbl.mem g.adj v) then Hashtbl.add g.adj v (Hashtbl.create 4)

let add_edge g a b =
  add_vertex g a;
  add_vertex g b;
  let succ = Hashtbl.find g.adj a in
  if not (Hashtbl.mem succ b) then begin
    Hashtbl.add succ b ();
    g.edges <- g.edges + 1
  end

let vertices g =
  Hashtbl.fold (fun v _ acc -> v :: acc) g.adj []
  |> List.sort String.compare

let successors g v =
  match Hashtbl.find_opt g.adj v with
  | None -> []
  | Some succ ->
    Hashtbl.fold (fun w () acc -> w :: acc) succ []
    |> List.sort String.compare

let edge_count g = g.edges

(* Tarjan's algorithm, iterative-friendly sizes here are small so the
   recursive version is fine (depth bounded by vertex count). *)
let sccs g =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    (vertices g);
  List.rev !components

let has_self_loop g v = List.mem v (successors g v)

let nontrivial_sccs g =
  List.filter
    (fun comp ->
      match comp with
      | [ v ] -> has_self_loop g v
      | _ -> List.length comp > 1)
    (sccs g)

let topological_sort g =
  match nontrivial_sccs g with
  | cycle :: _ -> Error cycle
  | [] ->
    (* Tarjan emits an SCC before every SCC that can reach it, so the
       flattened emission order lists successors first; reversing gives
       sources before targets. *)
    Ok (List.rev (List.concat (sccs g)))

let reachable g v =
  let seen = Hashtbl.create 16 in
  let rec go w =
    List.iter
      (fun s ->
        if not (Hashtbl.mem seen s) then begin
          Hashtbl.replace seen s ();
          go s
        end)
      (successors g w)
  in
  go v;
  Hashtbl.fold (fun w () acc -> w :: acc) seen [] |> List.sort String.compare
