lib/analysis/digraph.mli:
