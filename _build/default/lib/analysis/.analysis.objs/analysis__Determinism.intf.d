lib/analysis/determinism.mli: Clocks Format Signal_lang
