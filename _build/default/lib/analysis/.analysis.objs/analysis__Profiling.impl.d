lib/analysis/profiling.ml: Format Hashtbl List Option Signal_lang String
