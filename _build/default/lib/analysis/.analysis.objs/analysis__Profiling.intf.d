lib/analysis/profiling.mli: Format Signal_lang
