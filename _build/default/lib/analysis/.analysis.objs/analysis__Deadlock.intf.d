lib/analysis/deadlock.mli: Clocks Digraph Format Signal_lang
