lib/analysis/digraph.ml: Hashtbl List String
