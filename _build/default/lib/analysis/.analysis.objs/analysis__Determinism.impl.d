lib/analysis/determinism.ml: Clocks Format List Signal_lang
