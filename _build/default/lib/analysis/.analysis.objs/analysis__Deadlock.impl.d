lib/analysis/deadlock.ml: Clocks Digraph Format List Signal_lang
