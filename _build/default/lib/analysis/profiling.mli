(** Profiling-based timing evaluation of SIGNAL programs (paper ref
    [16], Kountouris & Le Guernic).

    Each kernel operator is given a temporal cost on the target
    architecture; the cost of a signal is the cost of its defining
    equations. Combined with per-signal instant counts from a
    simulation run (or rates from schedule clocks), this yields an
    estimated execution time per logical instant and per hyper-period,
    used for architecture exploration. *)

type cost_model = {
  c_copy : int;
  c_arith : int;     (** add/sub, comparisons, boolean ops *)
  c_mult : int;      (** mul/div/mod *)
  c_if : int;
  c_delay : int;     (** state read+write *)
  c_when : int;
  c_default : int;
  c_fifo_op : int;   (** per primitive-FIFO activation *)
}

val default_cost_model : cost_model
(** Unit-cost RISC-like model: arith 1, mult 3, delay 2, fifo 5. *)

type report = {
  per_signal : (string * int) list;
      (** static cost of producing the signal, per instant where it is
          present *)
  total_static : int;
      (** sum over all signals: worst-case cost of one fully-present
          reaction *)
  weighted : (string * int) list;
      (** cost × activation count, when counts are supplied *)
  total_weighted : int;
}

val static_costs :
  ?model:cost_model -> Signal_lang.Kernel.kprocess -> report
(** Report with [weighted] empty. *)

val with_counts :
  ?model:cost_model ->
  counts:(string -> int) ->
  Signal_lang.Kernel.kprocess ->
  report
(** Weight each signal's cost by its activation count (e.g. presence
    occurrences over a simulated horizon). *)

val pp_report : Format.formatter -> report -> unit
