lib/util/mathx.ml: List
