lib/util/mathx.mli:
