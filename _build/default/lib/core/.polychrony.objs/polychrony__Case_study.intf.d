lib/core/case_study.mli: Aadl Trans
