lib/core/case_study.ml: Aadl Lazy Signal_lang Trans
