lib/core/pipeline.mli: Aadl Analysis Clocks Format Polysim Sched Signal_lang Trans
