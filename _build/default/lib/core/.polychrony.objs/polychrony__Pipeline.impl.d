lib/core/pipeline.ml: Aadl Analysis Clocks Format List Option Polysim Printf Putil Result Sched Signal_lang String Trans
