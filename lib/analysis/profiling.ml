module K = Signal_lang.Kernel
module Ast = Signal_lang.Ast

type cost_model = {
  c_copy : int;
  c_arith : int;
  c_mult : int;
  c_if : int;
  c_delay : int;
  c_when : int;
  c_default : int;
  c_fifo_op : int;
}

let default_cost_model =
  { c_copy = 1; c_arith = 1; c_mult = 3; c_if = 1; c_delay = 2; c_when = 1;
    c_default = 1; c_fifo_op = 5 }

type report = {
  per_signal : (string * int) list;
  total_static : int;
  weighted : (string * int) list;
  total_weighted : int;
}

let eq_cost model = function
  | K.Kfunc { op; _ } -> (
    match op with
    | K.Punop _ -> model.c_arith
    | K.Pbinop (Ast.Mul | Ast.Div | Ast.Mod) -> model.c_mult
    | K.Pbinop _ -> model.c_arith
    | K.Pif -> model.c_if
    | K.Pid -> model.c_copy
    | K.Pclock -> 0)
  | K.Kdelay _ -> model.c_delay
  | K.Kwhen _ -> model.c_when
  | K.Kdefault _ -> model.c_default

let eq_dst = function
  | K.Kfunc { dst; _ } | K.Kdelay { dst; _ } | K.Kwhen { dst; _ }
  | K.Kdefault { dst; _ } -> dst

let signal_costs ?(model = default_cost_model) kp =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun eq ->
      let dst = eq_dst eq in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl dst) in
      Hashtbl.replace tbl dst (prev + eq_cost model eq))
    kp.K.keqs;
  List.iter
    (fun ki ->
      List.iter
        (fun out ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt tbl out) in
          Hashtbl.replace tbl out (prev + model.c_fifo_op))
        ki.K.ki_outs)
    kp.K.kinstances;
  Hashtbl.fold (fun s c acc -> (s, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let static_costs ?model kp =
  let per_signal = signal_costs ?model kp in
  let total_static = List.fold_left (fun acc (_, c) -> acc + c) 0 per_signal in
  { per_signal; total_static; weighted = []; total_weighted = 0 }

let with_counts ?model ~counts kp =
  let base = static_costs ?model kp in
  let weighted =
    List.map (fun (s, c) -> (s, c * counts s)) base.per_signal
  in
  let total_weighted =
    List.fold_left (fun acc (_, c) -> acc + c) 0 weighted
  in
  { base with weighted; total_weighted }

module S = Sched.Static_sched

type thread_timing = {
  tt_name : string;
  tt_period_us : int;
  tt_deadline_us : int;
  tt_wcet_us : int;
  tt_jobs : int;
  tt_best_response_us : int;
  tt_worst_response_us : int;
  tt_mean_response_us : float;
  tt_jitter_us : int;
  tt_misses : int;
  tt_missed_jobs : int list;
}

let schedule_timing sched =
  let by_task = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (j : S.job) ->
      let name = j.S.j_task.Sched.Task.t_name in
      (match Hashtbl.find_opt by_task name with
       | Some js -> Hashtbl.replace by_task name (j :: js)
       | None ->
         order := name :: !order;
         Hashtbl.replace by_task name [ j ]))
    sched.S.jobs;
  List.rev_map
    (fun name ->
      let jobs = List.rev (Hashtbl.find by_task name) in
      let task = (List.hd jobs).S.j_task in
      let responses =
        List.map (fun j -> j.S.complete_us - j.S.dispatch_us) jobs
      in
      let best = List.fold_left min max_int responses in
      let worst = List.fold_left max 0 responses in
      let sum = List.fold_left ( + ) 0 responses in
      let missed =
        List.filter_map
          (fun j ->
            if j.S.complete_us > j.S.deadline_abs_us then Some j.S.j_index
            else None)
          jobs
      in
      { tt_name = name;
        tt_period_us = task.Sched.Task.period_us;
        tt_deadline_us = task.Sched.Task.deadline_us;
        tt_wcet_us = task.Sched.Task.wcet_us;
        tt_jobs = List.length jobs;
        tt_best_response_us = best;
        tt_worst_response_us = worst;
        tt_mean_response_us = float_of_int sum /. float_of_int (List.length jobs);
        tt_jitter_us = worst - best;
        tt_misses = List.length missed;
        tt_missed_jobs = missed })
    !order

let pp_thread_timing ppf tt =
  Format.fprintf ppf
    "@[<v2>%s: period %d us, deadline %d us, wcet %d us, %d job%s@,\
     response best/mean/worst %d/%.1f/%d us, jitter %d us@,\
     deadline misses: %d%a@]"
    tt.tt_name tt.tt_period_us tt.tt_deadline_us tt.tt_wcet_us tt.tt_jobs
    (if tt.tt_jobs = 1 then "" else "s")
    tt.tt_best_response_us tt.tt_mean_response_us tt.tt_worst_response_us
    tt.tt_jitter_us tt.tt_misses
    (fun ppf -> function
      | [] -> ()
      | js ->
        Format.fprintf ppf " (jobs %s)"
          (String.concat ", " (List.map string_of_int js)))
    tt.tt_missed_jobs

let pp_schedule_timing ppf tts =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i tt ->
      if i > 0 then Format.fprintf ppf "@,";
      pp_thread_timing ppf tt)
    tts;
  Format.fprintf ppf "@]"

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>profiling: %d signals, static reaction cost %d@,"
    (List.length r.per_signal) r.total_static;
  if r.weighted <> [] then
    Format.fprintf ppf "weighted total over supplied counts: %d@,"
      r.total_weighted;
  Format.fprintf ppf "@]"
