(** Determinism identification (paper, Sec. V-C).

    A signal defined by several partial definitions is deterministic
    only if the defining branches have pairwise disjoint clocks — this
    is exactly the paper's case study finding: the thProducer automaton
    is non-deterministic until priorities make its transition guards
    exclusive. The check asks the clock calculus to prove exclusion of
    each pair of branches under the context Φ. *)

type issue = {
  signal : string;            (** the multiply-defined signal *)
  branch_a : string;          (** temporary holding one branch *)
  branch_b : string;
  reason : string;
}

type report = {
  issues : issue list;
  deterministic : bool;
}

val analyze : Clocks.Calculus.t -> Signal_lang.Kernel.kprocess -> report

val pp_report : Format.formatter -> report -> unit

val diags_of_report : report -> Putil.Diag.t list
(** One [ANA-DET-001] warning per overlapping branch pair. *)
