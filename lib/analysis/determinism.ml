module K = Signal_lang.Kernel

type issue = {
  signal : string;
  branch_a : string;
  branch_b : string;
  reason : string;
}

type report = {
  issues : issue list;
  deterministic : bool;
}

let analyze calc kp =
  let issues = ref [] in
  List.iter
    (fun (dst, branches) ->
      let rec pairs = function
        | [] | [ _ ] -> ()
        | a :: rest ->
          List.iter
            (fun b ->
              if not (Clocks.Calculus.exclusive calc a b) then
                issues :=
                  { signal = dst; branch_a = a; branch_b = b;
                    reason =
                      "branches not provably clock-exclusive; the merge \
                       order is an arbitrary choice" }
                  :: !issues)
            rest;
          pairs rest
      in
      pairs branches)
    kp.K.kpartials;
  let issues = List.rev !issues in
  { issues; deterministic = issues = [] }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>determinism analysis: %s@,"
    (if r.deterministic then "deterministic"
     else "NON-DETERMINISTIC definitions found");
  List.iter
    (fun i ->
      Format.fprintf ppf "signal %s: branches %s / %s overlap (%s)@,"
        i.signal i.branch_a i.branch_b i.reason)
    r.issues;
  Format.fprintf ppf "@]"

(* ---- structured diagnostics ---- *)

let code_overlap =
  Putil.Diag.code "ANA-DET-001"
    "partial definitions with overlapping clocks (non-deterministic merge)"

let diags_of_report r =
  List.map
    (fun i ->
      Putil.Diag.warningf ~code:code_overlap
        "signal %s: branches %s and %s %s" i.signal i.branch_a i.branch_b
        i.reason)
    r.issues
