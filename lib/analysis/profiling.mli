(** Profiling-based timing evaluation of SIGNAL programs (paper ref
    [16], Kountouris & Le Guernic).

    Each kernel operator is given a temporal cost on the target
    architecture; the cost of a signal is the cost of its defining
    equations. Combined with per-signal instant counts from a
    simulation run (or rates from schedule clocks), this yields an
    estimated execution time per logical instant and per hyper-period,
    used for architecture exploration. *)

type cost_model = {
  c_copy : int;
  c_arith : int;     (** add/sub, comparisons, boolean ops *)
  c_mult : int;      (** mul/div/mod *)
  c_if : int;
  c_delay : int;     (** state read+write *)
  c_when : int;
  c_default : int;
  c_fifo_op : int;   (** per primitive-FIFO activation *)
}

val default_cost_model : cost_model
(** Unit-cost RISC-like model: arith 1, mult 3, delay 2, fifo 5. *)

type report = {
  per_signal : (string * int) list;
      (** static cost of producing the signal, per instant where it is
          present *)
  total_static : int;
      (** sum over all signals: worst-case cost of one fully-present
          reaction *)
  weighted : (string * int) list;
      (** cost × activation count, when counts are supplied *)
  total_weighted : int;
}

val static_costs :
  ?model:cost_model -> Signal_lang.Kernel.kprocess -> report
(** Report with [weighted] empty. *)

val with_counts :
  ?model:cost_model ->
  counts:(string -> int) ->
  Signal_lang.Kernel.kprocess ->
  report
(** Weight each signal's cost by its activation count (e.g. presence
    occurrences over a simulated horizon). *)

val pp_report : Format.formatter -> report -> unit

(** {1 Schedule timing}

    Per-thread response-time statistics over one synthesized
    hyper-period: the observable counterpart of the static cost model
    above, fed by {!Sched.Static_sched} rather than by operator
    counts. *)

type thread_timing = {
  tt_name : string;
  tt_period_us : int;
  tt_deadline_us : int;      (** relative deadline *)
  tt_wcet_us : int;
  tt_jobs : int;             (** jobs inside the hyper-period *)
  tt_best_response_us : int; (** min complete − dispatch *)
  tt_worst_response_us : int;(** max complete − dispatch *)
  tt_mean_response_us : float;
  tt_jitter_us : int;        (** worst − best response *)
  tt_misses : int;           (** jobs with complete > absolute deadline *)
  tt_missed_jobs : int list; (** their [j_index]es, ascending *)
}

val schedule_timing : Sched.Static_sched.schedule -> thread_timing list
(** One entry per task of the schedule, in first-dispatch order. *)

val pp_thread_timing : Format.formatter -> thread_timing -> unit

val pp_schedule_timing : Format.formatter -> thread_timing list -> unit
