module K = Signal_lang.Kernel
module Stdproc = Signal_lang.Stdproc

type cycle = {
  signals : string list;
  feasible : bool;
}

type report = {
  cycles : cycle list;
  deadlock_free : bool;
}

(* Formal port orders of the primitives, mirroring Stdproc models. *)
let prim_ins = function
  | Stdproc.Pfifo -> [ "push"; "pop" ]
  | Stdproc.Pfifo_reset -> [ "push"; "pop"; "reset" ]
  | Stdproc.Pin_event_port -> [ "arrival"; "frozen_time" ]
  | Stdproc.Pout_event_port -> [ "item"; "output_time" ]

let prim_outs = function
  | Stdproc.Pfifo | Stdproc.Pfifo_reset -> [ "data"; "size" ]
  | Stdproc.Pin_event_port -> [ "frozen"; "frozen_count" ]
  | Stdproc.Pout_event_port -> [ "sent" ]

let dependency_graph ?(extra_edges = []) kp =
  let g = Digraph.create () in
  List.iter (fun (a, b) -> Digraph.add_edge g a b) extra_edges;
  List.iter (fun vd -> Digraph.add_vertex g vd.Signal_lang.Ast.var_name)
    (K.signals kp);
  let dep src dst =
    match src with
    | K.Avar x -> Digraph.add_edge g x dst
    | K.Aconst _ -> ()
  in
  List.iter
    (fun eq ->
      match eq with
      | K.Kfunc { dst; args; _ } -> List.iter (fun a -> dep a dst) args
      | K.Kdelay _ -> ()
      | K.Kwhen { dst; src; cond } -> dep src dst; dep cond dst
      | K.Kdefault { dst; left; right } -> dep left dst; dep right dst)
    kp.K.keqs;
  List.iter
    (fun ki ->
      let ins = List.combine (prim_ins ki.K.ki_prim) ki.K.ki_ins in
      let outs = List.combine (prim_outs ki.K.ki_prim) ki.K.ki_outs in
      List.iter
        (fun (fi, fo) ->
          match List.assoc_opt fi ins, List.assoc_opt fo outs with
          | Some src, Some dst -> Digraph.add_edge g src dst
          | _, _ -> ())
        (Stdproc.instantaneous_deps ki.K.ki_prim))
    kp.K.kinstances;
  g

let analyze ?calc ?extra_edges kp =
  let g = dependency_graph ?extra_edges kp in
  let feasible_cycle members =
    match calc with
    | None -> true
    | Some c -> (
      (* the cycle is harmful iff the conjunction of the members'
         clocks is satisfiable under Φ *)
      try
        Clocks.Calculus.with_query_lock c @@ fun () ->
        let mgr = Clocks.Calculus.manager c in
        let conj =
          List.fold_left
            (fun acc x -> Clocks.Bdd.and_ mgr acc (Clocks.Calculus.clock_of c x))
            (Clocks.Calculus.context c) members
        in
        not (Clocks.Bdd.is_zero conj)
      with Not_found -> true)
  in
  let cycles =
    List.map
      (fun members -> { signals = members; feasible = feasible_cycle members })
      (Digraph.nontrivial_sccs g)
  in
  { cycles; deadlock_free = not (List.exists (fun c -> c.feasible) cycles) }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>deadlock analysis: %s@,"
    (if r.deadlock_free then "deadlock-free" else "DEADLOCK possible");
  List.iter
    (fun c ->
      Format.fprintf ppf "cycle (%s): %a@,"
        (if c.feasible then "feasible" else "false cycle, clock-disjoint")
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
           Format.pp_print_string)
        c.signals)
    r.cycles;
  Format.fprintf ppf "@]"

(* ---- structured diagnostics ---- *)

let code_cycle =
  Putil.Diag.code "ANA-DLK-001" "feasible instantaneous dependency cycle"
let code_false_cycle =
  Putil.Diag.code "ANA-DLK-002"
    "clock-disjoint dependency cycle (false cycle, harmless)"

let diags_of_report r =
  List.map
    (fun c ->
      let chain = String.concat " -> " c.signals in
      if c.feasible then
        Putil.Diag.errorf ~code:code_cycle
          "possible deadlock: instantaneous dependency cycle %s can be \
           active at one instant" chain
      else
        Putil.Diag.notef ~code:code_false_cycle
          "false cycle %s: members have provably disjoint clocks" chain)
    r.cycles
