(** Instantaneous-causality (deadlock) detection.

    A SIGNAL process deadlocks when a cycle of instantaneous data
    dependencies can be active at some instant: every signal on the
    cycle waits for the previous one within the same reaction. Delays
    break dependencies; cycles whose signals have provably disjoint
    clocks are {e false cycles} and harmless (standard clock-directed
    causality analysis). *)

type cycle = {
  signals : string list;       (** members of the dependency SCC *)
  feasible : bool;             (** the signals can be present together *)
}

type report = {
  cycles : cycle list;         (** all non-trivial dependency SCCs *)
  deadlock_free : bool;        (** no feasible cycle *)
}

val dependency_graph :
  ?extra_edges:(string * string) list ->
  Signal_lang.Kernel.kprocess ->
  Digraph.t
(** Edges x → y when computing y at an instant needs x at the same
    instant. Primitive instances contribute their contract edges.
    [extra_edges] adds caller-known dependencies — the pipeline's glue
    analysis abstracts each spliced model instance to its
    instantaneous input→output dependency pairs this way. *)

val analyze :
  ?calc:Clocks.Calculus.t ->
  ?extra_edges:(string * string) list ->
  Signal_lang.Kernel.kprocess ->
  report
(** With a clock-calculus result, cycles are classified by clock
    feasibility; without, every cycle is conservatively feasible. *)

val pp_report : Format.formatter -> report -> unit

val diags_of_report : report -> Putil.Diag.t list
(** One [ANA-DLK-001] error per feasible cycle, one [ANA-DLK-002] note
    per false cycle. *)
