type assignment = {
  a_cpu : string;
  a_tasks : Task.t list;
  a_schedule : Static_sched.schedule;
}

type failure = {
  unplaced : Task.t;
  reason : string;
}

let utilization_of a = Task.utilization a.a_tasks

(* Can this bin accept the task? Validated by real synthesis, not a
   utilization bound: non-preemptive blocking breaks pure bounds. *)
let fits ?policy tasks task =
  match Static_sched.synthesize ?policy (task :: tasks) with
  | Ok _ -> true
  | Error _ -> false
  | exception Invalid_argument _ -> false

let allocate ?policy ?(preloaded = []) ~cpus tasks =
  if cpus = [] then invalid_arg "Alloc.allocate: no processors";
  Putil.Tracing.with_span "sched.allocate"
    ~args:
      [ ("cpus", Putil.Tracing.Aint (List.length cpus));
        ("tasks", Putil.Tracing.Aint (List.length tasks)) ]
  @@ fun () ->
  let bins =
    Array.of_list
      (List.map
         (fun cpu ->
           (cpu, ref (Option.value ~default:[] (List.assoc_opt cpu preloaded))))
         cpus)
  in
  let by_utilization =
    List.sort
      (fun t1 t2 ->
        compare
          (float_of_int t2.Task.wcet_us /. float_of_int t2.Task.period_us)
          (float_of_int t1.Task.wcet_us /. float_of_int t1.Task.period_us))
      tasks
  in
  let exception Unplaced of failure in
  try
    List.iter
      (fun task ->
        (* worst fit: emptiest bin that accepts the task *)
        let candidates =
          Array.to_list bins
          |> List.filter (fun (_, ts) -> fits ?policy !ts task)
          |> List.sort (fun (_, a) (_, b) ->
                 compare (Task.utilization !a) (Task.utilization !b))
        in
        match candidates with
        | (_, ts) :: _ -> ts := task :: !ts
        | [] ->
          raise
            (Unplaced
               { unplaced = task;
                 reason =
                   Printf.sprintf
                     "task %s (C=%d, T=%d) fits on no processor"
                     task.Task.t_name task.Task.wcet_us task.Task.period_us }))
      by_utilization;
    let assignments =
      Array.to_list bins
      |> List.map (fun (cpu, ts) ->
             match !ts with
             | [] ->
               (* an empty processor still needs a trivial schedule:
                  synthesize over a placeholder idle task is wrong, so
                  use an empty job list via a 1-tick hyper-period *)
               { a_cpu = cpu; a_tasks = [];
                 a_schedule =
                   { Static_sched.s_policy =
                       Option.value ~default:Static_sched.Edf policy;
                     hyperperiod_us = 1; base_us = 1; jobs = [] } }
             | ts_list -> (
               match Static_sched.synthesize ?policy ts_list with
               | Ok s -> { a_cpu = cpu; a_tasks = ts_list; a_schedule = s }
               | Error f ->
                 raise
                   (Unplaced
                      { unplaced =
                          List.find
                            (fun t -> t.Task.t_name = f.Static_sched.f_task)
                            ts_list;
                        reason = f.Static_sched.f_message })))
    in
    Ok assignments
  with Unplaced f -> Error f

let min_processors ?policy ?(max_cpus = 16) tasks =
  let rec try_n n =
    if n > max_cpus then None
    else
      let cpus = List.init n (fun i -> Printf.sprintf "cpu%d" i) in
      match allocate ?policy ~cpus tasks with
      | Ok assignments -> Some (n, assignments)
      | Error _ -> try_n (n + 1)
  in
  try_n 1

let pp_assignment ppf a =
  Format.fprintf ppf "@[<v 2>%s (utilization %.2f):@," a.a_cpu
    (utilization_of a);
  List.iter (fun t -> Format.fprintf ppf "%a@," Task.pp t) a.a_tasks;
  Format.fprintf ppf "@]"

let code_unplaced =
  Putil.Diag.code "SCHED-ALLOC-001" "task fits on no processor"

let diag_of_failure ?span ?related f =
  Putil.Diag.errorf ?span ?related ~code:code_unplaced
    "allocation failed for task %s: %s" f.unplaced.Task.t_name f.reason
