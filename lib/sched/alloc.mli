(** Multi-processor allocation (the paper's connection to SynDEx,
    ref [17]: "real-time scheduling and allocation").

    Distributes a task set over a fixed set of processors and
    synthesizes one static non-preemptive schedule per processor.
    The allocator uses worst-fit decreasing on utilization (balances
    load, the classic partitioned-scheduling heuristic) with
    first-fit fallback when a bin refuses a task, then validates by
    actually synthesizing each processor's schedule. *)

type assignment = {
  a_cpu : string;
  a_tasks : Task.t list;
  a_schedule : Static_sched.schedule;
}

type failure = {
  unplaced : Task.t;
  reason : string;
}

val allocate :
  ?policy:Static_sched.policy ->
  ?preloaded:(string * Task.t list) list ->
  cpus:string list ->
  Task.t list ->
  (assignment list, failure) result
(** Every processor appears in the result (possibly with no tasks).
    [preloaded] pins tasks to processors up front (explicit AADL
    bindings); the remaining tasks are placed around them. Fails when
    some task fits on no processor under the policy. *)

val min_processors :
  ?policy:Static_sched.policy ->
  ?max_cpus:int ->
  Task.t list ->
  (int * assignment list) option
(** Smallest processor count (≤ [max_cpus], default 16) for which
    allocation succeeds — the architecture-exploration question. *)

val utilization_of : assignment -> float

val pp_assignment : Format.formatter -> assignment -> unit

val diag_of_failure :
  ?span:Putil.Diag.span -> ?related:Putil.Diag.related list ->
  failure -> Putil.Diag.t
(** The allocation failure as a [SCHED-ALLOC-001] diagnostic. *)
