module Metrics = Putil.Metrics

let m_syntheses = Metrics.counter "sched.syntheses"
let m_jobs_placed = Metrics.counter "sched.jobs_placed"
let m_idle_advances = Metrics.counter "sched.idle_advances"
let m_infeasible = Metrics.counter "sched.infeasible"
let m_synthesize_ns = Metrics.timer "sched.synthesize_ns"

type policy =
  | Edf
  | Rm
  | Fp
  | Fifo

let policy_to_string = function
  | Edf -> "EDF"
  | Rm -> "RM"
  | Fp -> "FP"
  | Fifo -> "FIFO"

type job = {
  j_task : Task.t;
  j_index : int;
  dispatch_us : int;
  start_us : int;
  complete_us : int;
  deadline_abs_us : int;
}

type schedule = {
  s_policy : policy;
  hyperperiod_us : int;
  base_us : int;
  jobs : job list;
}

type failure = {
  f_task : string;
  f_job : int;
  f_message : string;
}

(* Pending job: dispatched, not yet scheduled. *)
type pending = {
  p_task : Task.t;
  p_index : int;
  p_dispatch : int;
  p_deadline : int;
}

let compare_by policy a b =
  let tie =
    (* deterministic tie-break: dispatch time then name then index *)
    let c = compare a.p_dispatch b.p_dispatch in
    if c <> 0 then c
    else
      let c = String.compare a.p_task.Task.t_name b.p_task.Task.t_name in
      if c <> 0 then c else compare a.p_index b.p_index
  in
  let primary =
    match policy with
    | Edf -> compare a.p_deadline b.p_deadline
    | Rm -> compare a.p_task.Task.period_us b.p_task.Task.period_us
    | Fp ->
      (* larger priority value = more urgent (AADL convention) *)
      compare
        (- Option.value ~default:0 a.p_task.Task.priority)
        (- Option.value ~default:0 b.p_task.Task.priority)
    | Fifo -> 0
  in
  if primary <> 0 then primary else tie

let synthesize ?(policy = Edf) tasks =
  if tasks = [] then invalid_arg "Static_sched.synthesize: no tasks";
  Putil.Tracing.with_span "sched.synthesize"
    ~args:
      [ ("policy",
         Putil.Tracing.Astr
           (match policy with
            | Edf -> "edf" | Rm -> "rm" | Fp -> "fp" | Fifo -> "fifo"));
        ("tasks", Putil.Tracing.Aint (List.length tasks)) ]
  @@ fun () ->
  Metrics.incr m_syntheses;
  Metrics.time m_synthesize_ns @@ fun () ->
  let hyper = Task.hyperperiod_us tasks in
  (* all jobs of the hyper-period *)
  let all_pending =
    List.concat_map
      (fun t ->
        List.init (Task.job_count t ~hyperperiod_us:hyper) (fun k ->
            let dispatch = t.Task.offset_us + (k * t.Task.period_us) in
            { p_task = t; p_index = k; p_dispatch = dispatch;
              p_deadline = dispatch + t.Task.deadline_us }))
      tasks
  in
  let exception Infeasible of failure in
  try
    let remaining = ref all_pending in
    let time = ref 0 in
    let scheduled = ref [] in
    while !remaining <> [] do
      let ready, future =
        List.partition (fun p -> p.p_dispatch <= !time) !remaining
      in
      match ready with
      | [] ->
        (* idle until next dispatch *)
        let next =
          List.fold_left (fun acc p -> min acc p.p_dispatch) max_int future
        in
        Metrics.incr m_idle_advances;
        time := next
      | _ ->
        let chosen = List.sort (compare_by policy) ready |> List.hd in
        let start = !time in
        let complete = start + chosen.p_task.Task.wcet_us in
        if complete > chosen.p_deadline then
          raise
            (Infeasible
               { f_task = chosen.p_task.Task.t_name;
                 f_job = chosen.p_index;
                 f_message =
                   Printf.sprintf
                     "job %d of %s misses its deadline under %s \
                      (start %dus + wcet %dus > deadline %dus)"
                     chosen.p_index chosen.p_task.Task.t_name
                     (policy_to_string policy) start
                     chosen.p_task.Task.wcet_us chosen.p_deadline });
        scheduled :=
          { j_task = chosen.p_task;
            j_index = chosen.p_index;
            dispatch_us = chosen.p_dispatch;
            start_us = start;
            complete_us = complete;
            deadline_abs_us = chosen.p_deadline }
          :: !scheduled;
        Metrics.incr m_jobs_placed;
        time := complete;
        remaining :=
          List.filter
            (fun p ->
              not
                (p.p_task.Task.t_name = chosen.p_task.Task.t_name
                 && p.p_index = chosen.p_index))
            (ready @ future)
    done;
    let jobs =
      List.sort (fun a b -> compare a.start_us b.start_us) !scheduled
    in
    let base =
      List.fold_left
        (fun acc j ->
          let g = Putil.Mathx.gcd in
          g (g (g (g acc j.dispatch_us) j.start_us) j.complete_us)
            j.deadline_abs_us)
        hyper jobs
    in
    let base = if base = 0 then 1 else base in
    Ok { s_policy = policy; hyperperiod_us = hyper; base_us = base; jobs }
  with Infeasible f ->
    Metrics.incr m_infeasible;
    Error f

let validate s =
  let problems = ref [] in
  let say fmt = Format.kasprintf (fun m -> problems := m :: !problems) fmt in
  let rec overlaps = function
    | a :: (b :: _ as rest) ->
      if a.complete_us > b.start_us then
        say "jobs %s#%d and %s#%d overlap" a.j_task.Task.t_name a.j_index
          b.j_task.Task.t_name b.j_index;
      overlaps rest
    | [ _ ] | [] -> ()
  in
  overlaps s.jobs;
  List.iter
    (fun j ->
      if j.start_us < j.dispatch_us then
        say "job %s#%d starts before dispatch" j.j_task.Task.t_name j.j_index;
      if j.complete_us > j.deadline_abs_us then
        say "job %s#%d misses its deadline" j.j_task.Task.t_name j.j_index;
      if j.complete_us - j.start_us <> j.j_task.Task.wcet_us then
        say "job %s#%d does not run for wcet" j.j_task.Task.t_name j.j_index)
    s.jobs;
  List.rev !problems

let is_valid s = validate s = []

type event =
  | Dispatch
  | Input_frozen
  | Start
  | Complete
  | Output_release
  | Deadline

let event_times s name ev =
  List.filter_map
    (fun j ->
      if String.equal j.j_task.Task.t_name name then
        Some
          (match ev with
           | Dispatch -> j.dispatch_us
           | Input_frozen -> j.dispatch_us
           | Start -> j.start_us
           | Complete -> j.complete_us
           | Output_release -> j.complete_us
           | Deadline -> j.deadline_abs_us)
      else None)
    s.jobs
  |> List.sort compare

let event_word s name ev =
  (* an event at exactly the hyper-period boundary belongs to the NEXT
     cycle: encode the first hyper-period as a prefix so instant 0 of
     the run stays silent while the steady-state cycle ticks at 0 *)
  let horizon = s.hyperperiod_us / s.base_us in
  let abs_ticks = List.map (fun t -> t / s.base_us) (event_times s name ev) in
  let prefix = List.init horizon (fun t -> List.mem t abs_ticks) in
  let cycle =
    List.init horizon (fun t ->
        List.exists (fun a -> a mod horizon = t) abs_ticks)
  in
  Clocks.Pword.make ~prefix ~cycle

let event_affine s name ev =
  match event_times s name ev with
  | [] -> None
  | [ t ] ->
    Some
      (Clocks.Affine.periodic ~period:(s.hyperperiod_us / s.base_us)
         ~offset:(t / s.base_us))
  | t0 :: t1 :: _ as times ->
    let d = t1 - t0 in
    let evenly =
      d > 0
      && List.for_all2
           (fun a b -> b - a = d)
           (List.filteri (fun i _ -> i < List.length times - 1) times)
           (List.tl times)
      (* ... and the spacing must wrap around the hyper-period *)
      && List.length times * d = s.hyperperiod_us
    in
    if evenly then
      Some (Clocks.Affine.periodic ~period:(d / s.base_us) ~offset:(t0 / s.base_us))
    else None

let pp_gantt ppf s =
  let cols = s.hyperperiod_us / s.base_us in
  let tasks =
    List.sort_uniq compare (List.map (fun j -> j.j_task.Task.t_name) s.jobs)
  in
  let width =
    List.fold_left (fun acc t -> max acc (String.length t)) 4 tasks
  in
  Format.fprintf ppf "@[<v>%*s " width "";
  for c = 0 to cols - 1 do
    Format.fprintf ppf "%c" (if c mod 10 = 0 then '|' else ' ')
  done;
  Format.fprintf ppf "@,";
  List.iter
    (fun name ->
      let row = Bytes.make cols '.' in
      List.iter
        (fun j ->
          if String.equal j.j_task.Task.t_name name then begin
            (* waiting between dispatch and start *)
            for t = j.dispatch_us / s.base_us
                to (j.start_us / s.base_us) - 1 do
              if t < cols then Bytes.set row t 'd'
            done;
            for t = j.start_us / s.base_us
                to (j.complete_us / s.base_us) - 1 do
              if t < cols then Bytes.set row t '#'
            done
          end)
        s.jobs;
      Format.fprintf ppf "%*s %s@," width name (Bytes.to_string row))
    tasks;
  Format.fprintf ppf "@]"

let pp_schedule ppf s =
  Format.fprintf ppf
    "@[<v>static %s schedule, hyper-period %d us, base tick %d us@,"
    (policy_to_string s.s_policy) s.hyperperiod_us s.base_us;
  Format.fprintf ppf "%-16s %4s %9s %7s %9s %9s@," "task" "job" "dispatch"
    "start" "complete" "deadline";
  List.iter
    (fun j ->
      Format.fprintf ppf "%-16s %4d %9d %7d %9d %9d@," j.j_task.Task.t_name
        j.j_index j.dispatch_us j.start_us j.complete_us j.deadline_abs_us)
    s.jobs;
  Format.fprintf ppf "@]"

let code_infeasible =
  Putil.Diag.code "SCHED-INFEAS-001" "no valid static schedule exists"

let diag_of_failure ?span ?related f =
  Putil.Diag.errorf ?span ?related ~code:code_infeasible
    "infeasible schedule: %s" f.f_message
