(** Static, non-preemptive, single-processor scheduler synthesis over
    one hyper-period (paper, Sec. IV-D).

    Jobs are dispatched at [offset + k·period]; when the processor is
    free, the policy picks one ready job and runs it to completion.
    A schedule is valid when every job completes by its absolute
    deadline; synthesis fails otherwise (static and predictable rather
    than stochastic — the paper's requirement 3). *)

type policy =
  | Edf    (** earliest absolute deadline first *)
  | Rm     (** rate monotonic: smallest period first *)
  | Fp     (** fixed priority (AADL [Priority], larger = more urgent) *)
  | Fifo   (** dispatch order, arbitration by name *)

val policy_to_string : policy -> string

type job = {
  j_task : Task.t;
  j_index : int;          (** k-th job of the task in the hyper-period *)
  dispatch_us : int;
  start_us : int;
  complete_us : int;
  deadline_abs_us : int;
}

type schedule = {
  s_policy : policy;
  hyperperiod_us : int;
  base_us : int;          (** tick granularity: gcd of all event times *)
  jobs : job list;        (** ordered by start time *)
}

type failure = {
  f_task : string;
  f_job : int;
  f_message : string;
}

val synthesize :
  ?policy:policy -> Task.t list -> (schedule, failure) result
(** @raise Invalid_argument on an empty task set. *)

val is_valid : schedule -> bool
(** Re-checks deadlines, non-overlap, dispatch-before-start; used by
    property tests. *)

val validate : schedule -> string list
(** Human-readable violations; empty = valid. *)

(** {1 Event clocks} *)

type event =
  | Dispatch
  | Input_frozen   (** Input_Time; defaults to dispatch *)
  | Start
  | Complete
  | Output_release (** Output_Time; complete for immediate connections *)
  | Deadline

val event_times : schedule -> string -> event -> int list
(** Event instants (µs) of the named task's jobs inside the
    hyper-period, ascending. Input_frozen = dispatch and
    Output_release = complete under the default AADL timing model. *)

val event_word : schedule -> string -> event -> Clocks.Pword.t
(** The event's activation clock over base ticks as an ultimately
    periodic word (cycle = one hyper-period). *)

val event_affine : schedule -> string -> event -> Clocks.Affine.periodic option
(** Strictly periodic rendering on the base tick, when the event is
    evenly spaced — always the case for Dispatch and Deadline. *)

val pp_schedule : Format.formatter -> schedule -> unit
(** Ordered job table (dispatch/start/complete/deadline per job). *)

val pp_gantt : Format.formatter -> schedule -> unit
(** ASCII Gantt chart over one hyper-period, one row per task, one
    column per base tick: [#] executing, [d] dispatch waiting, [.]
    idle. *)

val diag_of_failure :
  ?span:Putil.Diag.span -> ?related:Putil.Diag.related list ->
  failure -> Putil.Diag.t
(** The synthesis failure as a [SCHED-INFEAS-001] diagnostic. *)
