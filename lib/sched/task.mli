(** Periodic task model for thread-level scheduler synthesis
    (paper, Sec. IV-D). All times in microseconds. *)

type t = {
  t_name : string;
  period_us : int;         (** > 0 *)
  deadline_us : int;       (** relative; defaults to the period *)
  wcet_us : int;           (** worst-case execution time, > 0 *)
  offset_us : int;         (** release of the first job, ≥ 0 *)
  priority : int option;   (** larger = more urgent (AADL convention) *)
}

val make :
  ?deadline_us:int ->
  ?offset_us:int ->
  ?priority:int ->
  name:string -> period_us:int -> wcet_us:int -> unit -> t
(** @raise Invalid_argument on non-positive period/wcet, negative
    offset, or deadline < wcet. *)

val utilization : t list -> float
(** Σ wcet/period. *)

val hyperperiod_us : t list -> int
(** lcm of the periods (the paper's "least common multiple
    principle"); 1 for the empty set.
    @raise Invalid_argument when the lcm overflows the native [int]
    range — a wrapped hyper-period would validate a wrong schedule. *)

val job_count : t -> hyperperiod_us:int -> int
(** Jobs of this task released strictly inside one hyper-period. *)

val pp : Format.formatter -> t -> unit

val make_checked :
  ?deadline_us:int ->
  ?offset_us:int ->
  ?priority:int ->
  name:string -> period_us:int -> wcet_us:int -> unit ->
  (t, Putil.Diag.t) result
(** {!make} with the precondition failures turned into a
    [SCHED-TASK-001] diagnostic — the entry point for task parameters
    that come from user models rather than trusted code. *)
