type t = {
  t_name : string;
  period_us : int;
  deadline_us : int;
  wcet_us : int;
  offset_us : int;
  priority : int option;
}

let make ?deadline_us ?(offset_us = 0) ?priority ~name ~period_us ~wcet_us ()
    =
  if period_us <= 0 then invalid_arg "Task.make: period must be positive";
  if wcet_us <= 0 then invalid_arg "Task.make: wcet must be positive";
  if offset_us < 0 then invalid_arg "Task.make: negative offset";
  let deadline_us = Option.value ~default:period_us deadline_us in
  if deadline_us < wcet_us then
    invalid_arg "Task.make: deadline smaller than wcet";
  { t_name = name; period_us; deadline_us; wcet_us; offset_us; priority }

let utilization tasks =
  List.fold_left
    (fun acc t -> acc +. (float_of_int t.wcet_us /. float_of_int t.period_us))
    0.0 tasks

let hyperperiod_us tasks =
  match Putil.Mathx.lcm_list (List.map (fun t -> t.period_us) tasks) with
  | hp -> hp
  | exception Putil.Mathx.Overflow _ ->
      invalid_arg
        (Printf.sprintf
           "Task.hyperperiod_us: lcm of periods {%s} overflows native int"
           (String.concat ", "
              (List.map (fun t -> string_of_int t.period_us) tasks)))

let job_count t ~hyperperiod_us =
  if t.offset_us >= hyperperiod_us then 0
  else Putil.Mathx.ceil_div (hyperperiod_us - t.offset_us) t.period_us

let pp ppf t =
  Format.fprintf ppf "%s(T=%dus, D=%dus, C=%dus, O=%dus%s)" t.t_name
    t.period_us t.deadline_us t.wcet_us t.offset_us
    (match t.priority with
     | Some p -> Printf.sprintf ", prio %d" p
     | None -> "")

let code_params = Putil.Diag.code "SCHED-TASK-001" "invalid task timing parameters"

let make_checked ?deadline_us ?offset_us ?priority ~name ~period_us ~wcet_us
    () =
  match make ?deadline_us ?offset_us ?priority ~name ~period_us ~wcet_us () with
  | t -> Ok t
  | exception Invalid_argument m ->
    Error (Putil.Diag.errorf ~code:code_params "task %s: %s" name m)
