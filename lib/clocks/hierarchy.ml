type node = {
  class_id : int;
  repr : Signal_lang.Ast.ident;
  parent : int option;
  children : int list;
  depth : int;
}

type t = {
  all : node array;
  root_ids : int list;
}

let m_depth = Putil.Metrics.gauge "calculus.hierarchy_depth"
let m_builds = Putil.Metrics.counter "calculus.hierarchy_builds"

(* c1 strictly below c2: c1 ⊆ c2 and not c2 ⊆ c1 (under Φ). *)
let build calc =
  Putil.Tracing.with_span "clocks.hierarchy"
    ~args:
      [ ("classes",
         Putil.Tracing.Aint (List.length (Calculus.class_reprs calc))) ]
  @@ fun () ->
  let mgr = Calculus.manager calc in
  let phi = Calculus.context calc in
  let reprs = Calculus.class_reprs calc in
  let n = List.length reprs in
  let clock = Array.make (max n 1) (Bdd.one mgr) in
  let repr_name = Array.make (max n 1) "" in
  List.iter
    (fun (c, r) ->
      clock.(c) <- Calculus.clock_of_class_id calc c;
      repr_name.(c) <- r)
    reprs;
  (* Memoized inclusion matrix over the structural (definitional)
     clocks. The forest follows the clock definitions, as in the
     Polychrony compiler; the context Φ refines point queries
     (emptiness, exclusion) in {!Calculus} but conjoining it into the
     n² comparisons is both needless for the tree shape and
     exponentially more expensive. *)
  ignore phi;
  (* BDD application mutates the shared manager; serialize against
     concurrent queries on the same analysis. *)
  let le_matrix =
    Calculus.with_query_lock calc @@ fun () ->
    let not_clock = Array.map (fun c -> Bdd.not_ mgr c) clock in
    Array.init n (fun a ->
        Array.init n (fun b ->
            Bdd.is_zero (Bdd.and_ mgr clock.(a) not_clock.(b))))
  in
  let le a b = le_matrix.(a).(b) in
  let strictly_below a b = le a b && not (le b a) in
  (* parent of c: a minimal class among those strictly above c *)
  let parent = Array.make (max n 1) None in
  for c = 0 to n - 1 do
    let above = ref [] in
    for d = 0 to n - 1 do
      if d <> c && strictly_below c d then above := d :: !above
    done;
    (* minimal element of [above]: one with no other member of [above]
       strictly below it *)
    let minimal d =
      List.for_all (fun e -> e = d || not (strictly_below e d)) !above
    in
    parent.(c) <- List.find_opt minimal !above
  done;
  let children = Array.make (max n 1) [] in
  for c = n - 1 downto 0 do
    match parent.(c) with
    | Some p -> children.(p) <- c :: children.(p)
    | None -> ()
  done;
  let depth = Array.make (max n 1) 0 in
  let rec depth_of c =
    match parent.(c) with
    | None -> 0
    | Some p -> 1 + depth_of p
  in
  for c = 0 to n - 1 do
    depth.(c) <- depth_of c
  done;
  let all =
    Array.init n (fun c ->
        { class_id = c; repr = repr_name.(c); parent = parent.(c);
          children = children.(c); depth = depth.(c) })
  in
  let root_ids =
    Array.to_list all
    |> List.filter (fun nd -> nd.parent = None)
    |> List.map (fun nd -> nd.class_id)
  in
  Putil.Metrics.incr m_builds;
  Putil.Metrics.set m_depth (Array.fold_left max 0 depth);
  { all; root_ids }

let nodes t = Array.to_list t.all
let node t c = t.all.(c)
let roots t = List.map (fun c -> t.all.(c)) t.root_ids

let master t =
  match t.root_ids with
  | [ c ] -> Some t.all.(c).repr
  | _ -> None

let depth t =
  Array.fold_left (fun acc nd -> max acc nd.depth) 0 t.all

let pp ppf t =
  let rec pp_node indent c =
    let nd = t.all.(c) in
    Format.fprintf ppf "%s^%s@," (String.make indent ' ') nd.repr;
    List.iter (pp_node (indent + 2)) nd.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (pp_node 0) t.root_ids;
  Format.fprintf ppf "@]"
