(** Reduced ordered binary decision diagrams over integer variables.

    The clock calculus encodes clocks as boolean functions over
    presence and condition variables; BDDs give canonical forms, so
    clock equality, inclusion and exclusion are O(1)/O(n·m) decisions.
    Nodes are hash-consed: structural equality is physical equality.

    A fresh manager is cheap; all nodes belong to the manager that
    created them and must not be mixed across managers. *)

type manager
type t

val manager : unit -> manager

val zero : manager -> t
(** The constant false (the null clock). *)

val one : manager -> t
(** The constant true (the always-present context). *)

val var : manager -> int -> t
(** The projection on variable [i] (variables are ordered by [int]). *)

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor_ : manager -> t -> t -> t
val diff : manager -> t -> t -> t
(** [diff m a b] is [a ∧ ¬b]. *)

val imp : manager -> t -> t -> t

val equal : t -> t -> bool
(** Physical equality (valid thanks to hash-consing). *)

val is_zero : t -> bool
val is_one : t -> bool

val implies : manager -> t -> t -> bool
(** [implies m a b] iff [a ∧ ¬b] is unsatisfiable. *)

val exclusive : manager -> t -> t -> bool
(** [exclusive m a b] iff [a ∧ b] is unsatisfiable. *)

val cube : manager -> int list -> t
(** The conjunction of positive literals over the given variables; the
    shape expected by the [~cube] arguments below. *)

val exists : manager -> cube:t -> t -> t
(** [exists m ~cube a] existentially quantifies every variable of
    [cube] (a positive-literal cube) out of [a]. *)

val and_exists : manager -> cube:t -> t -> t -> t
(** [and_exists m ~cube a b] is [exists m ~cube (and_ m a b)] computed
    in one pass (the relational product), with a dedicated ternary
    apply cache — the image-computation hot path. *)

val rename : manager -> map:int array -> t -> t
(** [rename m ~map a] substitutes variable [v] by [map.(v)] (identity
    past the end of the array). The map must be strictly increasing on
    the support of [a] — e.g. the next→current shift on interleaved
    variable rails. *)

val sat_count : manager -> vars:int array -> t -> float
(** Number of satisfying assignments over exactly the variables in
    [vars] (ascending; must contain the support of the argument). *)

val gc : manager -> roots:t array -> int
(** Compacting mark-and-sweep collection. Keeps exactly the nodes
    reachable from [roots], rewrites [roots] in place with the
    relocated handles, flushes the apply caches, and returns the live
    node count. Every handle not passed as a root is invalid after the
    call. *)

val relprod_stats : manager -> int * int
(** [(consultations, hits)] of the relational-product cache. *)

val gc_stats : manager -> int * int
(** [(collections, nodes swept)] since manager creation. *)

val eval : manager -> (int -> bool) -> t -> bool
(** Evaluate the function under a total assignment of its variables. *)

val id : t -> int
(** Stable integer identity of a node (valid until the next {!gc}),
    for memo tables keyed on nodes. *)

val view : manager -> t -> [ `Leaf of bool | `Node of int * t * t ]
(** Structure of a node: [`Node (var, low, high)]. Used by code
    generators to compile clock functions to decision code. *)

val support : manager -> t -> int list
(** Variables the function actually depends on, ascending. *)

val any_sat : manager -> t -> (int * bool) list option
(** A satisfying assignment (partial, over the support), or [None] for
    the zero function. *)

val node_count : manager -> int
(** Number of live hash-consed nodes, for benches. *)

val apply_stats : manager -> int * int
(** [(consultations, hits)] of the binary apply cache since manager
    creation, for cache-hit-rate metrics. *)

val pp :
  manager -> pp_var:(Format.formatter -> int -> unit) ->
  Format.formatter -> t -> unit
(** Sum-of-products rendering; exponential in the worst case, meant for
    small clock expressions in reports. *)
