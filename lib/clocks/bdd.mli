(** Reduced ordered binary decision diagrams over integer variables.

    The clock calculus encodes clocks as boolean functions over
    presence and condition variables; BDDs give canonical forms, so
    clock equality, inclusion and exclusion are O(1)/O(n·m) decisions.
    Nodes are hash-consed: structural equality is physical equality.

    A fresh manager is cheap; all nodes belong to the manager that
    created them and must not be mixed across managers. *)

type manager
type t

val manager : unit -> manager

val zero : manager -> t
(** The constant false (the null clock). *)

val one : manager -> t
(** The constant true (the always-present context). *)

val var : manager -> int -> t
(** The projection on variable [i] (variables are ordered by [int]). *)

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor_ : manager -> t -> t -> t
val diff : manager -> t -> t -> t
(** [diff m a b] is [a ∧ ¬b]. *)

val imp : manager -> t -> t -> t

val equal : t -> t -> bool
(** Physical equality (valid thanks to hash-consing). *)

val is_zero : t -> bool
val is_one : t -> bool

val implies : manager -> t -> t -> bool
(** [implies m a b] iff [a ∧ ¬b] is unsatisfiable. *)

val exclusive : manager -> t -> t -> bool
(** [exclusive m a b] iff [a ∧ b] is unsatisfiable. *)

val eval : manager -> (int -> bool) -> t -> bool
(** Evaluate the function under a total assignment of its variables. *)

val view : manager -> t -> [ `Leaf of bool | `Node of int * t * t ]
(** Structure of a node: [`Node (var, low, high)]. Used by code
    generators to compile clock functions to decision code. *)

val support : manager -> t -> int list
(** Variables the function actually depends on, ascending. *)

val any_sat : manager -> t -> (int * bool) list option
(** A satisfying assignment (partial, over the support), or [None] for
    the zero function. *)

val node_count : manager -> int
(** Number of live hash-consed nodes, for benches. *)

val apply_stats : manager -> int * int
(** [(consultations, hits)] of the binary apply cache since manager
    creation, for cache-hit-rate metrics. *)

val pp :
  manager -> pp_var:(Format.formatter -> int -> unit) ->
  Format.formatter -> t -> unit
(** Sum-of-products rendering; exponential in the worst case, meant for
    small clock expressions in reports. *)
