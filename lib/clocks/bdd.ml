(* Hash-consed ROBDDs. Nodes are integers into growable arrays; 0 and 1
   are the terminal nodes. The classic unique-table + apply-cache
   construction, with the hot paths flattened:

   - the unique table is open-addressing over node ids (slot 0 = empty;
     node keys are re-read from the node arrays, so a probe is three
     int array loads and no allocation), kept under 50% load;
   - the apply cache is direct-mapped over packed immediate-int keys
     [(((a lsl 30) lor b) lsl 2) lor op], replaced on collision — the
     leak-free replacement for an ever-growing [Hashtbl.add] cache;
   - negations are memoized in a per-node array, in both directions
     ([¬a = r] also records [¬r = a]), making complements O(1) once
     computed and enabling complement terminals ([a ∧ ¬a = 0],
     [a ∨ ¬a = 1], [a ⊕ ¬a = 1]) as plain array probes.

   Packed keys need node ids below 2^30; [mk] enforces the limit. *)

type t = int

type manager = {
  mutable var_of : int array;   (* node -> variable index *)
  mutable low_of : int array;   (* node -> low child (var = false) *)
  mutable high_of : int array;  (* node -> high child (var = true) *)
  mutable not_of : int array;   (* node -> memoized negation, -1 unknown *)
  mutable next : int;           (* next free node id *)
  mutable uniq : int array;     (* open addressing: node ids, 0 = empty *)
  mutable cache_key : int array;  (* direct-mapped apply cache, 0 = empty *)
  mutable cache_val : int array;
  mutable cache_mask : int;
  mutable applies : int;     (* apply-cache consultations *)
  mutable apply_hits : int;  (* ... of which hits *)
  (* relational-product (and-exists) cache: a ternary key does not pack
     into one immediate int, so it gets its own direct-mapped arrays,
     allocated lazily on the first [and_exists]. Slot empty ⇔ key_a = -1. *)
  mutable rp_key_a : int array;
  mutable rp_key_b : int array;
  mutable rp_key_c : int array;
  mutable rp_val : int array;
  mutable rp_mask : int;
  mutable rp_applies : int;
  mutable rp_hits : int;
  mutable gc_collections : int;  (* mark-and-sweep runs *)
  mutable gc_swept : int;        (* dead nodes reclaimed, cumulative *)
}

(* nodes surviving the last compacting sweep, for live exposition *)
let m_live_nodes = Putil.Metrics.gauge "bdd.live_nodes"

let initial_capacity = 1024
let initial_table = 4096   (* unique table; power of two *)
let initial_cache = 32768  (* apply cache; power of two *)

let node_limit = 1 lsl 30  (* ids must pack into 30 bits of an apply key *)

let manager () =
  let m =
    { var_of = Array.make initial_capacity max_int;
      low_of = Array.make initial_capacity (-1);
      high_of = Array.make initial_capacity (-1);
      not_of = Array.make initial_capacity (-1);
      next = 2;
      uniq = Array.make initial_table 0;
      cache_key = Array.make initial_cache 0;
      cache_val = Array.make initial_cache 0;
      cache_mask = initial_cache - 1;
      applies = 0;
      apply_hits = 0;
      rp_key_a = [||];
      rp_key_b = [||];
      rp_key_c = [||];
      rp_val = [||];
      rp_mask = 0;
      rp_applies = 0;
      rp_hits = 0;
      gc_collections = 0;
      gc_swept = 0 }
  in
  (* terminals: node 0 = false, node 1 = true; their variable index is
     max_int so every real variable tests before them. *)
  m.var_of.(0) <- max_int;
  m.var_of.(1) <- max_int;
  m.not_of.(0) <- 1;
  m.not_of.(1) <- 0;
  m

let zero (_ : manager) = 0
let one (_ : manager) = 1

let grow m =
  let cap = Array.length m.var_of in
  if m.next >= cap then begin
    let ncap = cap * 2 in
    let extend a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap; b
    in
    m.var_of <- extend m.var_of max_int;
    m.low_of <- extend m.low_of (-1);
    m.high_of <- extend m.high_of (-1);
    m.not_of <- extend m.not_of (-1)
  end

let uniq_hash v low high =
  let h = ((v * 0x9e3779b1) + low) * 0x9e3779b1 + high in
  (h lxor (h lsr 29)) land max_int

let uniq_insert_node m tbl mask n =
  let h = uniq_hash m.var_of.(n) m.low_of.(n) m.high_of.(n) in
  let i = ref (h land mask) in
  while tbl.(!i) <> 0 do i := (!i + 1) land mask done;
  tbl.(!i) <- n

(* keep the unique table under 50% load so probe chains stay short *)
let uniq_maybe_grow m =
  if 2 * m.next >= Array.length m.uniq then begin
    let size = 2 * Array.length m.uniq in
    let tbl = Array.make size 0 in
    let mask = size - 1 in
    for n = 2 to m.next - 1 do
      uniq_insert_node m tbl mask n
    done;
    m.uniq <- tbl;
    Putil.Tracing.instant "bdd.uniq_grow" ~cat:"clocks"
      ~args:
        [ ("nodes", Putil.Tracing.Aint m.next);
          ("table", Putil.Tracing.Aint size) ]
  end

let cache_slot m key = ((key * 0x2545F4914F6CDD1D) lsr 32) land m.cache_mask

(* scale the cache with the node count (entries survive the move), up
   to a bound that keeps it resident for pathological managers *)
let cache_maybe_grow m =
  if m.next > Array.length m.cache_key
     && Array.length m.cache_key < 1 lsl 22
  then begin
    let old_key = m.cache_key and old_val = m.cache_val in
    let size = 2 * Array.length old_key in
    m.cache_key <- Array.make size 0;
    m.cache_val <- Array.make size 0;
    m.cache_mask <- size - 1;
    Array.iteri
      (fun i k ->
        if k <> 0 then begin
          let s = cache_slot m k in
          m.cache_key.(s) <- k;
          m.cache_val.(s) <- old_val.(i)
        end)
      old_key
  end

let mk m v low high =
  if low = high then low
  else begin
    let mask = Array.length m.uniq - 1 in
    let i = ref (uniq_hash v low high land mask) in
    let found = ref (-1) in
    let probing = ref true in
    while !probing do
      let n = m.uniq.(!i) in
      if n = 0 then probing := false
      else if m.var_of.(n) = v && m.low_of.(n) = low && m.high_of.(n) = high
      then begin
        found := n;
        probing := false
      end
      else i := (!i + 1) land mask
    done;
    if !found >= 0 then !found
    else begin
      if m.next >= node_limit then
        failwith "Bdd.mk: node limit (2^30) exceeded";
      grow m;
      let n = m.next in
      m.next <- n + 1;
      m.var_of.(n) <- v;
      m.low_of.(n) <- low;
      m.high_of.(n) <- high;
      m.uniq.(!i) <- n;
      uniq_maybe_grow m;
      cache_maybe_grow m;
      n
    end
  end

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  if i = max_int then invalid_arg "Bdd.var: reserved index";
  mk m i 0 1

let rec not_ m a =
  let r = m.not_of.(a) in
  if r >= 0 then r
  else begin
    let r = mk m m.var_of.(a) (not_ m m.low_of.(a)) (not_ m m.high_of.(a)) in
    m.not_of.(a) <- r;
    m.not_of.(r) <- a;
    r
  end

(* op codes for the apply cache *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_exists = 3  (* key packs (operand, cube) instead of (a, b) *)

let rec apply m op a b =
  let terminal =
    if op = op_and then
      if a = 0 || b = 0 then 0
      else if a = 1 then b
      else if b = 1 then a
      else if a = b then a
      else if m.not_of.(a) = b then 0
      else -1
    else if op = op_or then
      if a = 1 || b = 1 then 1
      else if a = 0 then b
      else if b = 0 then a
      else if a = b then a
      else if m.not_of.(a) = b then 1
      else -1
    else if a = b then 0
    else if a = 0 then b
    else if b = 0 then a
    else if a = 1 then not_ m b
    else if b = 1 then not_ m a
    else if m.not_of.(a) = b then 1
    else -1
  in
  if terminal >= 0 then terminal
  else begin
    (* all three ops are commutative: normalize the key *)
    let ka = if a < b then a else b in
    let kb = if a < b then b else a in
    let key = (((ka lsl 30) lor kb) lsl 2) lor op in
    m.applies <- m.applies + 1;
    (* 2-way set associative: a paired slot halves conflict evictions *)
    let slot = cache_slot m key in
    let slot =
      if m.cache_key.(slot) = key then slot
      else if m.cache_key.(slot lxor 1) = key then slot lxor 1
      else -1
    in
    if slot >= 0 then begin
      m.apply_hits <- m.apply_hits + 1;
      m.cache_val.(slot)
    end
    else begin
      let va = m.var_of.(a) and vb = m.var_of.(b) in
      let v = min va vb in
      let a0, a1 = if va = v then (m.low_of.(a), m.high_of.(a)) else (a, a) in
      let b0, b1 = if vb = v then (m.low_of.(b), m.high_of.(b)) else (b, b) in
      let r = mk m v (apply m op a0 b0) (apply m op a1 b1) in
      (* re-derive the slot: the cache may have been resized by [mk] *)
      let slot = cache_slot m key in
      let slot = if m.cache_key.(slot) = 0 then slot else slot lxor 1 in
      m.cache_key.(slot) <- key;
      m.cache_val.(slot) <- r;
      r
    end
  end

let and_ m a b = apply m op_and a b
let or_ m a b = apply m op_or a b
let xor_ m a b = apply m op_xor a b
let diff m a b = apply m op_and a (not_ m b)
let imp m a b = apply m op_or (not_ m a) b

let equal (a : t) (b : t) = a = b
let is_zero a = a = 0
let is_one a = a = 1

let implies m a b = is_zero (diff m a b)
let exclusive m a b = is_zero (and_ m a b)

(* ------------------------------------------------------------------ *)
(* Symbolic-reachability primitives: quantification, relational
   product, renaming, model counting, garbage collection.             *)
(* ------------------------------------------------------------------ *)

(* A cube is the conjunction of positive literals: every node's low
   child is 0, so walking [high_of] enumerates the quantified
   variables in order. *)
let cube m vars =
  List.fold_left (fun acc v -> and_ m acc (var m v)) 1
    (List.sort_uniq compare vars)

(* drop cube variables below [v]: they cannot occur in the operand, so
   quantifying them is the identity *)
let rec cube_above m v c =
  if c = 1 || m.var_of.(c) >= v then c else cube_above m v m.high_of.(c)

let rec exists m ~cube:c a =
  if a <= 1 || c = 1 then a
  else begin
    let va = m.var_of.(a) in
    let c = cube_above m va c in
    if c = 1 then a
    else begin
      let key = (((a lsl 30) lor c) lsl 2) lor op_exists in
      m.applies <- m.applies + 1;
      let slot = cache_slot m key in
      let slot =
        if m.cache_key.(slot) = key then slot
        else if m.cache_key.(slot lxor 1) = key then slot lxor 1
        else -1
      in
      if slot >= 0 then begin
        m.apply_hits <- m.apply_hits + 1;
        m.cache_val.(slot)
      end
      else begin
        let a0 = m.low_of.(a) and a1 = m.high_of.(a) in
        let r =
          if m.var_of.(c) = va then
            let c' = m.high_of.(c) in
            or_ m (exists m ~cube:c' a0) (exists m ~cube:c' a1)
          else mk m va (exists m ~cube:c a0) (exists m ~cube:c a1)
        in
        let slot = cache_slot m key in
        let slot = if m.cache_key.(slot) = 0 then slot else slot lxor 1 in
        m.cache_key.(slot) <- key;
        m.cache_val.(slot) <- r;
        r
      end
    end
  end

let rp_initial = 32768  (* power of two *)

let rp_ensure m =
  if m.rp_mask = 0 then begin
    m.rp_key_a <- Array.make rp_initial (-1);
    m.rp_key_b <- Array.make rp_initial (-1);
    m.rp_key_c <- Array.make rp_initial (-1);
    m.rp_val <- Array.make rp_initial 0;
    m.rp_mask <- rp_initial - 1
  end

let rp_slot m a b c =
  let h = ((a * 0x9e3779b1 + b) * 0x9e3779b1 + c) * 0x2545F4914F6CDD1D in
  (h lsr 32) land m.rp_mask

(* [and_exists m ~cube a b] = ∃cube. a ∧ b without materializing the
   conjunction — the image-computation hot path. *)
let rec and_exists m ~cube:c a b =
  if a = 0 || b = 0 then 0
  else if a = 1 then exists m ~cube:c b
  else if b = 1 then exists m ~cube:c a
  else if a = b then exists m ~cube:c a
  else if m.not_of.(a) = b then 0
  else begin
    let va = m.var_of.(a) and vb = m.var_of.(b) in
    let v = min va vb in
    let c = cube_above m v c in
    if c = 1 then and_ m a b
    else begin
      rp_ensure m;
      let ka = if a < b then a else b in
      let kb = if a < b then b else a in
      m.rp_applies <- m.rp_applies + 1;
      let slot = rp_slot m ka kb c in
      if m.rp_key_a.(slot) = ka && m.rp_key_b.(slot) = kb
         && m.rp_key_c.(slot) = c
      then begin
        m.rp_hits <- m.rp_hits + 1;
        m.rp_val.(slot)
      end
      else begin
        let a0, a1 =
          if va = v then (m.low_of.(a), m.high_of.(a)) else (a, a)
        in
        let b0, b1 =
          if vb = v then (m.low_of.(b), m.high_of.(b)) else (b, b)
        in
        let r =
          if m.var_of.(c) = v then
            let c' = m.high_of.(c) in
            or_ m (and_exists m ~cube:c' a0 b0) (and_exists m ~cube:c' a1 b1)
          else mk m v (and_exists m ~cube:c a0 b0) (and_exists m ~cube:c a1 b1)
        in
        m.rp_key_a.(slot) <- ka;
        m.rp_key_b.(slot) <- kb;
        m.rp_key_c.(slot) <- c;
        m.rp_val.(slot) <- r;
        r
      end
    end
  end

(* [rename m ~map a] substitutes variable [v] by [map.(v)] (identity
   beyond the array). The map must be strictly increasing on the
   support of [a] so the result keeps the variable order — true for
   the interleaved next↔current rails, where it is a shift by one.
   Memoized per call: renaming runs once per image iteration. *)
let rename m ~map a =
  let memo = Hashtbl.create 64 in
  let rec go n =
    if n <= 1 then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let v = m.var_of.(n) in
        let v' = if v < Array.length map then map.(v) else v in
        let r = mk m v' (go m.low_of.(n)) (go m.high_of.(n)) in
        Hashtbl.add memo n r;
        r
  in
  go a

(* [sat_count m ~vars a] counts satisfying assignments over exactly the
   variable set [vars] (sorted ascending; must contain the support).
   Float-valued: 2^k overflows no sooner than the caller can iterate. *)
let sat_count m ~vars a =
  let nv = Array.length vars in
  let idx = Hashtbl.create (2 * nv + 1) in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) vars;
  let memo = Hashtbl.create 64 in
  (* count over vars.(i..) for a node whose top variable is vars.(i) *)
  let rec go n i =
    if n = 0 then 0.0
    else if n = 1 then ldexp 1.0 (nv - i)
    else
      match Hashtbl.find_opt memo n with
      | Some c -> c
      | None ->
        let v = m.var_of.(n) in
        (match Hashtbl.find_opt idx v with
         | None -> invalid_arg "Bdd.sat_count: support exceeds vars"
         | Some j ->
           let c = go_at m.low_of.(n) (j + 1) +. go_at m.high_of.(n) (j + 1) in
           Hashtbl.add memo n c;
           c)
  and go_at n i =
    (* scale by the don't-care gap between position [i] and the node *)
    if n = 0 then 0.0
    else if n = 1 then ldexp 1.0 (nv - i)
    else
      let j =
        match Hashtbl.find_opt idx m.var_of.(n) with
        | Some j -> j
        | None -> invalid_arg "Bdd.sat_count: support exceeds vars"
      in
      ldexp (go n j) (j - i)
  in
  go_at a 0

(* Compacting mark-and-sweep. Every live node must be reachable from
   [roots]; the array is rewritten in place with the relocated ids, and
   every other handle the client kept is invalid afterwards. Never runs
   implicitly — callers (the symbolic engine, between image iterations)
   decide when the table has grown enough to be worth sweeping. *)
let gc m ~roots =
  let n = m.next in
  let marked = Bytes.make n '\000' in
  Bytes.unsafe_set marked 0 '\001';
  Bytes.unsafe_set marked 1 '\001';
  (* recursion depth is bounded by the longest var chain, not node count *)
  let rec mark i =
    if Bytes.unsafe_get marked i = '\000' then begin
      Bytes.unsafe_set marked i '\001';
      mark m.low_of.(i);
      mark m.high_of.(i)
    end
  in
  Array.iter mark roots;
  let map = Array.make n (-1) in
  map.(0) <- 0;
  map.(1) <- 1;
  let live = ref 2 in
  for i = 2 to n - 1 do
    if Bytes.unsafe_get marked i = '\001' then begin
      map.(i) <- !live;
      incr live
    end
  done;
  let live = !live in
  (* compact in place: map.(i) <= i, and ascending order only ever
     writes slots strictly below the current read index *)
  for i = 2 to n - 1 do
    let j = map.(i) in
    if j >= 0 then begin
      m.var_of.(j) <- m.var_of.(i);
      m.low_of.(j) <- map.(m.low_of.(i));
      m.high_of.(j) <- map.(m.high_of.(i));
      let neg = m.not_of.(i) in
      m.not_of.(j) <- (if neg >= 0 && map.(neg) >= 0 then map.(neg) else -1)
    end
  done;
  (* freed slots must read as "negation unknown" when reallocated *)
  Array.fill m.not_of live (Array.length m.not_of - live) (-1);
  m.next <- live;
  (* rebuild the unique table under 25% load, floored at the initial
     size so small post-sweep populations don't thrash *)
  let size = ref initial_table in
  while !size < 4 * live do size := 2 * !size done;
  m.uniq <- Array.make !size 0;
  let mask = !size - 1 in
  for i = 2 to live - 1 do
    uniq_insert_node m m.uniq mask i
  done;
  (* both caches hold stale ids: flush them *)
  Array.fill m.cache_key 0 (Array.length m.cache_key) 0;
  if m.rp_mask <> 0 then begin
    Array.fill m.rp_key_a 0 (Array.length m.rp_key_a) (-1);
    Array.fill m.rp_key_b 0 (Array.length m.rp_key_b) (-1);
    Array.fill m.rp_key_c 0 (Array.length m.rp_key_c) (-1)
  end;
  Array.iteri (fun k r -> roots.(k) <- map.(r)) roots;
  m.gc_collections <- m.gc_collections + 1;
  m.gc_swept <- m.gc_swept + (n - live);
  Putil.Metrics.set m_live_nodes live;
  Putil.Tracing.instant "bdd.gc" ~cat:"clocks"
    ~args:
      [ ("live", Putil.Tracing.Aint live);
        ("swept", Putil.Tracing.Aint (n - live)) ];
  live

let eval m env a =
  let rec go n =
    if n = 0 then false
    else if n = 1 then true
    else if env m.var_of.(n) then go m.high_of.(n)
    else go m.low_of.(n)
  in
  go a

let id (a : t) : int = a

let view m a =
  if a = 0 then `Leaf false
  else if a = 1 then `Leaf true
  else `Node (m.var_of.(a), m.low_of.(a), m.high_of.(a))

let support m a =
  let seen = Hashtbl.create 16 in
  let vars = Hashtbl.create 16 in
  let rec go n =
    if n > 1 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Hashtbl.replace vars m.var_of.(n) ();
      go m.low_of.(n);
      go m.high_of.(n)
    end
  in
  go a;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let any_sat m a =
  if a = 0 then None
  else
    let rec go n acc =
      if n = 1 then acc
      else if m.low_of.(n) <> 0 then go m.low_of.(n) ((m.var_of.(n), false) :: acc)
      else go m.high_of.(n) ((m.var_of.(n), true) :: acc)
    in
    Some (List.rev (go a []))

let node_count m = m.next

let apply_stats m = (m.applies, m.apply_hits)
let relprod_stats m = (m.rp_applies, m.rp_hits)
let gc_stats m = (m.gc_collections, m.gc_swept)

let pp m ~pp_var ppf a =
  if a = 0 then Format.pp_print_string ppf "0"
  else if a = 1 then Format.pp_print_string ppf "1"
  else begin
    (* enumerate paths to 1 as product terms *)
    let first = ref true in
    let rec go n lits =
      if n = 1 then begin
        if not !first then Format.fprintf ppf " + ";
        first := false;
        (match List.rev lits with
         | [] -> Format.pp_print_string ppf "1"
         | l ->
           Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "·")
             (fun ppf (v, pos) ->
               if pos then pp_var ppf v
               else Format.fprintf ppf "¬%a" pp_var v)
             ppf l)
      end
      else if n <> 0 then begin
        go m.low_of.(n) ((m.var_of.(n), false) :: lits);
        go m.high_of.(n) ((m.var_of.(n), true) :: lits)
      end
    in
    go a []
  end
