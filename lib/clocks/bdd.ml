(* Hash-consed ROBDDs. Nodes are integers into growable arrays; 0 and 1
   are the terminal nodes. The classic unique-table + apply-cache
   construction. *)

type t = int

type manager = {
  mutable var_of : int array;   (* node -> variable index *)
  mutable low_of : int array;   (* node -> low child (var = false) *)
  mutable high_of : int array;  (* node -> high child (var = true) *)
  mutable next : int;           (* next free node id *)
  unique : (int * int * int, int) Hashtbl.t;  (* (var, low, high) -> node *)
  apply_cache : (int * int * int, int) Hashtbl.t;  (* (op, a, b) -> node *)
  not_cache : (int, int) Hashtbl.t;
  mutable applies : int;     (* apply-cache consultations *)
  mutable apply_hits : int;  (* ... of which hits *)
}

let initial_capacity = 1024

let manager () =
  let m =
    { var_of = Array.make initial_capacity max_int;
      low_of = Array.make initial_capacity (-1);
      high_of = Array.make initial_capacity (-1);
      next = 2;
      unique = Hashtbl.create 1024;
      apply_cache = Hashtbl.create 1024;
      not_cache = Hashtbl.create 256;
      applies = 0;
      apply_hits = 0 }
  in
  (* terminals: node 0 = false, node 1 = true; their variable index is
     max_int so every real variable tests before them. *)
  m.var_of.(0) <- max_int;
  m.var_of.(1) <- max_int;
  m

let zero (_ : manager) = 0
let one (_ : manager) = 1

let grow m =
  let cap = Array.length m.var_of in
  if m.next >= cap then begin
    let ncap = cap * 2 in
    let extend a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap; b
    in
    m.var_of <- extend m.var_of max_int;
    m.low_of <- extend m.low_of (-1);
    m.high_of <- extend m.high_of (-1)
  end

let mk m v low high =
  if low = high then low
  else
    let key = (v, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      grow m;
      let n = m.next in
      m.next <- n + 1;
      m.var_of.(n) <- v;
      m.low_of.(n) <- low;
      m.high_of.(n) <- high;
      Hashtbl.add m.unique key n;
      n

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  if i = max_int then invalid_arg "Bdd.var: reserved index";
  mk m i 0 1

let rec not_ m a =
  if a = 0 then 1
  else if a = 1 then 0
  else
    match Hashtbl.find_opt m.not_cache a with
    | Some r -> r
    | None ->
      let r = mk m m.var_of.(a) (not_ m m.low_of.(a)) (not_ m m.high_of.(a)) in
      Hashtbl.add m.not_cache a r;
      r

(* op codes for the apply cache *)
let op_and = 0
let op_or = 1
let op_xor = 2

let rec apply m op a b =
  let terminal =
    if op = op_and then
      if a = 0 || b = 0 then Some 0
      else if a = 1 then Some b
      else if b = 1 then Some a
      else if a = b then Some a
      else None
    else if op = op_or then
      if a = 1 || b = 1 then Some 1
      else if a = 0 then Some b
      else if b = 0 then Some a
      else if a = b then Some a
      else None
    else if a = b then Some 0
    else if a = 0 then Some b
    else if b = 0 then Some a
    else None
  in
  match terminal with
  | Some r -> r
  | None ->
    (* commutative ops: normalize the key *)
    let ka, kb = if a <= b then (a, b) else (b, a) in
    let key = (op, ka, kb) in
    m.applies <- m.applies + 1;
    (match Hashtbl.find_opt m.apply_cache key with
     | Some r -> m.apply_hits <- m.apply_hits + 1; r
     | None ->
       let va = m.var_of.(a) and vb = m.var_of.(b) in
       let v = min va vb in
       let a0, a1 = if va = v then (m.low_of.(a), m.high_of.(a)) else (a, a) in
       let b0, b1 = if vb = v then (m.low_of.(b), m.high_of.(b)) else (b, b) in
       let r = mk m v (apply m op a0 b0) (apply m op a1 b1) in
       Hashtbl.add m.apply_cache key r;
       r)

let and_ m a b = apply m op_and a b
let or_ m a b = apply m op_or a b
let xor_ m a b = apply m op_xor a b
let diff m a b = and_ m a (not_ m b)
let imp m a b = or_ m (not_ m a) b

let equal (a : t) (b : t) = a = b
let is_zero a = a = 0
let is_one a = a = 1

let implies m a b = is_zero (diff m a b)
let exclusive m a b = is_zero (and_ m a b)

let eval m env a =
  let rec go n =
    if n = 0 then false
    else if n = 1 then true
    else if env m.var_of.(n) then go m.high_of.(n)
    else go m.low_of.(n)
  in
  go a

let view m a =
  if a = 0 then `Leaf false
  else if a = 1 then `Leaf true
  else `Node (m.var_of.(a), m.low_of.(a), m.high_of.(a))

let support m a =
  let seen = Hashtbl.create 16 in
  let vars = Hashtbl.create 16 in
  let rec go n =
    if n > 1 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Hashtbl.replace vars m.var_of.(n) ();
      go m.low_of.(n);
      go m.high_of.(n)
    end
  in
  go a;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let any_sat m a =
  if a = 0 then None
  else
    let rec go n acc =
      if n = 1 then acc
      else if m.low_of.(n) <> 0 then go m.low_of.(n) ((m.var_of.(n), false) :: acc)
      else go m.high_of.(n) ((m.var_of.(n), true) :: acc)
    in
    Some (List.rev (go a []))

let node_count m = m.next

let apply_stats m = (m.applies, m.apply_hits)

let pp m ~pp_var ppf a =
  if a = 0 then Format.pp_print_string ppf "0"
  else if a = 1 then Format.pp_print_string ppf "1"
  else begin
    (* enumerate paths to 1 as product terms *)
    let first = ref true in
    let rec go n lits =
      if n = 1 then begin
        if not !first then Format.fprintf ppf " + ";
        first := false;
        (match List.rev lits with
         | [] -> Format.pp_print_string ppf "1"
         | l ->
           Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "·")
             (fun ppf (v, pos) ->
               if pos then pp_var ppf v
               else Format.fprintf ppf "¬%a" pp_var v)
             ppf l)
      end
      else if n <> 0 then begin
        go m.low_of.(n) ((m.var_of.(n), false) :: lits);
        go m.high_of.(n) ((m.var_of.(n), true) :: lits)
      end
    in
    go a []
  end
