module K = Signal_lang.Kernel
module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module Stdproc = Signal_lang.Stdproc
module Metrics = Putil.Metrics

let m_analyses = Metrics.counter "calculus.analyses"
let m_cache_hits = Metrics.counter "pipeline.cache_hits"
let m_cache_misses = Metrics.counter "pipeline.cache_misses"
let m_uf_finds = Metrics.counter "calculus.uf_finds"
let m_uf_unions = Metrics.counter "calculus.uf_unions"
let m_constraints = Metrics.counter "calculus.constraints"
let m_signals = Metrics.gauge "calculus.signals"
let m_classes = Metrics.gauge "calculus.classes"
let m_analyze_ns = Metrics.timer "calculus.analyze_ns"

(* ------------------------------------------------------------------ *)
(* Union-find over signal indices                                      *)
(* ------------------------------------------------------------------ *)

module Uf = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

  let rec root uf i =
    let p = uf.parent.(i) in
    if p = i then i
    else begin
      let r = root uf p in
      uf.parent.(i) <- r;
      r
    end

  let find uf i =
    Metrics.incr m_uf_finds;
    root uf i

  let union uf i j =
    let ri = find uf i and rj = find uf j in
    if ri <> rj then begin
      Metrics.incr m_uf_unions;
      if uf.rank.(ri) < uf.rank.(rj) then uf.parent.(ri) <- rj
      else if uf.rank.(ri) > uf.rank.(rj) then uf.parent.(rj) <- ri
      else begin
        uf.parent.(rj) <- ri;
        uf.rank.(ri) <- uf.rank.(ri) + 1
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Analysis state                                                      *)
(* ------------------------------------------------------------------ *)

(* Boolean structure of a sampling condition, resolved down to base
   literals (condition signals whose value is opaque). Decomposing
   and/or/not lets the calculus prove exclusions like
   [x when c] ^# [x when (d and not c)]. *)
type cform =
  | Ftrue
  | Ffalse
  | Flit of Ast.ident * bool    (* value of boolean signal, polarity *)
  | Feq of Ast.ident * int * bool
      (* integer signal compared to a constant; distinct constants on
         the same signal are mutually exclusive (mode automata) *)
  | Fand of cform * cform
  | For of cform * cform

let rec neg_cform = function
  | Ftrue -> Ffalse
  | Ffalse -> Ftrue
  | Flit (x, pos) -> Flit (x, not pos)
  | Feq (x, k, pos) -> Feq (x, k, not pos)
  | Fand (a, b) -> For (neg_cform a, neg_cform b)
  | For (a, b) -> Fand (neg_cform a, neg_cform b)

(* A clock definition attached to a synchronization class. *)
type cdef =
  | Dwhen of int option * int option * cform
      (* src class ∧ cond class ∧ condition formula; [None] for
         constant operands whose clock is contextual *)
  | Dunion of int list         (* union of classes *)

type t = {
  mgr : Bdd.manager;
  tab : K.sigtab;                           (* signal <-> dense index *)
  names : Ast.ident array;                  (* dense index -> signal *)
  uf : Uf.t;
  mutable class_ids : int array;            (* root index -> class id *)
  mutable reprs : int array;                (* class id -> root index *)
  mutable clocks : Bdd.t array;             (* class id -> clock bdd *)
  mutable phi : Bdd.t;
  mutable confl : string list;
  cond_vars : (Ast.ident, int) Hashtbl.t;   (* condition signal -> bdd var *)
  mutable nvars : int;
  mutable var_doc :
    (int * [ `Present of int | `Cond of Ast.ident
           | `CondEq of Ast.ident * int ]) list;
  qmu : Mutex.t;
      (* serializes post-analysis BDD work on [mgr]: query functions
         here plus consumers that borrow the manager through
         [with_query_lock]. The memoized state is shared across
         domains (concurrent pipeline sessions), and BDD [apply]
         mutates the manager's unique table and caches. *)
}

let sig_index st x =
  match K.st_index_opt st.tab x with
  | Some i -> i
  | None -> raise Not_found

let fresh_var st doc =
  let v = st.nvars in
  st.nvars <- v + 1;
  st.var_doc <- (v, doc) :: st.var_doc;
  v

(* ------------------------------------------------------------------ *)
(* Definition extraction                                               *)
(* ------------------------------------------------------------------ *)

let defmap_of kp =
  let h = Hashtbl.create 64 in
  List.iter
    (fun eq ->
      let dst =
        match eq with
        | K.Kfunc { dst; _ } | K.Kdelay { dst; _ } | K.Kwhen { dst; _ }
        | K.Kdefault { dst; _ } -> dst
      in
      if not (Hashtbl.mem h dst) then Hashtbl.add h dst eq)
    kp.K.keqs;
  h

(* Signals that are [true] whenever present: event-typed signals, the
   constant true propagated through copies, merges and sampling. *)
let always_true_set kp defmap =
  let types = Hashtbl.create 64 in
  List.iter
    (fun vd -> Hashtbl.replace types vd.Ast.var_name vd.Ast.var_type)
    (K.signals kp);
  let memo = Hashtbl.create 64 in
  let rec atrue ?(stack = []) x =
    match Hashtbl.find_opt memo x with
    | Some b -> b
    | None ->
      if List.mem x stack then false
      else begin
        let stack = x :: stack in
        let b =
          (match Hashtbl.find_opt types x with
           | Some Types.Tevent -> true
           | _ -> (
             match Hashtbl.find_opt defmap x with
             | Some (K.Kfunc { op = K.Pid; args = [ a ]; _ }) -> atom_true stack a
             | Some (K.Kfunc { op = K.Pclock; _ }) -> true
             | Some (K.Kwhen { src; _ }) -> atom_true stack src
             | Some (K.Kdefault { left; right; _ }) ->
               atom_true stack left && atom_true stack right
             | Some (K.Kdelay { src; init; _ }) ->
               (match init with
                | Types.Vbool true | Types.Vevent -> atrue ~stack src
                | _ -> false)
             | _ -> false))
        in
        Hashtbl.replace memo x b;
        b
      end
  and atom_true stack = function
    | K.Aconst (Types.Vbool true) | K.Aconst Types.Vevent -> true
    | K.Aconst _ -> false
    | K.Avar y -> atrue ~stack y
  in
  atrue

(* Resolve a boolean condition signal to a formula over base literals,
   chasing copies, negations and (synchronous) boolean connectives. *)
let rec resolve_cond ~atrue ~defmap ?(stack = []) x pos =
  if List.mem x stack then Flit (x, pos)
  else if atrue x then if pos then Ftrue else Ffalse
  else
    let stack = x :: stack in
    let atom a p =
      match a with
      | K.Avar y -> resolve_cond ~atrue ~defmap ~stack y p
      | K.Aconst (Types.Vbool b) -> if b = p then Ftrue else Ffalse
      | K.Aconst Types.Vevent -> if p then Ftrue else Ffalse
      | K.Aconst (Types.Vint _ | Types.Vreal _ | Types.Vstring _) ->
        Flit (x, pos)
    in
    match Hashtbl.find_opt defmap x with
    | Some (K.Kfunc { op = K.Pid; args = [ a ]; _ }) -> atom a pos
    | Some (K.Kfunc { op = K.Punop Ast.Not; args = [ a ]; _ }) ->
      atom a (not pos)
    | Some (K.Kfunc { op = K.Pbinop Ast.And; args = [ a; b ]; _ }) ->
      let f = Fand (atom a true, atom b true) in
      if pos then f else neg_cform f
    | Some (K.Kfunc { op = K.Pbinop Ast.Or; args = [ a; b ]; _ }) ->
      let f = For (atom a true, atom b true) in
      if pos then f else neg_cform f
    | Some (K.Kfunc { op = K.Pbinop Ast.Eq;
                      args = [ K.Avar y; K.Aconst (Types.Vint k) ]; _ })
    | Some (K.Kfunc { op = K.Pbinop Ast.Eq;
                      args = [ K.Aconst (Types.Vint k); K.Avar y ]; _ }) ->
      Feq (resolve_copy ~defmap y, k, pos)
    | Some (K.Kfunc { op = K.Pbinop Ast.Neq;
                      args = [ K.Avar y; K.Aconst (Types.Vint k) ]; _ })
    | Some (K.Kfunc { op = K.Pbinop Ast.Neq;
                      args = [ K.Aconst (Types.Vint k); K.Avar y ]; _ }) ->
      Feq (resolve_copy ~defmap y, k, not pos)
    | _ -> Flit (x, pos)

(* canonical signal through Pid copies, so "m = 1" and "m = 2" on the
   same memory are recognized as comparisons of one signal *)
and resolve_copy ~defmap ?(fuel = 32) x =
  if fuel = 0 then x
  else
    match Hashtbl.find_opt defmap x with
    | Some (K.Kfunc { op = K.Pid; args = [ K.Avar y ]; _ }) ->
      resolve_copy ~defmap ~fuel:(fuel - 1) y
    | _ -> x

(* ------------------------------------------------------------------ *)
(* Main analysis                                                       *)
(* ------------------------------------------------------------------ *)

let analyze_impl (kp : K.kprocess) =
  let tab = K.sigtab kp in
  let n = K.st_count tab in
  let names = Array.init n (K.st_name tab) in
  let uf = Uf.create n in
  let idx x =
    match K.st_index_opt tab x with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Calculus.analyze: undeclared %s" x)
  in
  (* Phase 1: synchrony classes. *)
  let sync a b = Uf.union uf (idx a) (idx b) in
  List.iter
    (fun eq ->
      match eq with
      | K.Kfunc { dst; args; _ } ->
        List.iter (function K.Avar x -> sync dst x | K.Aconst _ -> ()) args
      | K.Kdelay { dst; src; _ } -> sync dst src
      | K.Kwhen _ | K.Kdefault _ -> ())
    kp.K.keqs;
  List.iter
    (function
      | K.Ceq (a, b) -> sync a b
      | K.Cle _ | K.Cex _ -> ())
    kp.K.kconstraints;
  (* Primitive contracts contributing synchrony. *)
  List.iter
    (fun ki ->
      match ki.K.ki_prim, ki.K.ki_ins, ki.K.ki_outs with
      | Stdproc.Pin_event_port, [ _arrival; frozen_time ], [ _frozen; frozen_count ] ->
        sync frozen_count frozen_time
      | _ -> ())
    kp.K.kinstances;
  (* Dense class ids. *)
  let class_of_root = Hashtbl.create n in
  let nclasses = ref 0 in
  for i = 0 to n - 1 do
    let r = Uf.find uf i in
    if not (Hashtbl.mem class_of_root r) then begin
      Hashtbl.add class_of_root r !nclasses;
      incr nclasses
    end
  done;
  let nclasses = !nclasses in
  let class_ids = Array.make (max n 1) (-1) in
  for i = 0 to n - 1 do
    class_ids.(i) <- Hashtbl.find class_of_root (Uf.find uf i)
  done;
  let reprs = Array.make (max nclasses 1) 0 in
  (* representative = lowest-index member, deterministic *)
  for i = n - 1 downto 0 do
    reprs.(class_ids.(i)) <- i
  done;
  let mgr = Bdd.manager () in
  let st =
    { mgr; tab; names; uf; class_ids; reprs;
      clocks = Array.make (max nclasses 1) (Bdd.one mgr);
      phi = Bdd.one mgr; confl = [];
      cond_vars = Hashtbl.create 16; nvars = 0; var_doc = [];
      qmu = Mutex.create () }
  in
  let defmap = defmap_of kp in
  let atrue = always_true_set kp defmap in
  let class_of x = class_ids.(idx x) in
  (* Phase 2: collect per-class clock definitions. *)
  let defs : (int, cdef list) Hashtbl.t = Hashtbl.create nclasses in
  let add_def c d =
    let prev = Option.value ~default:[] (Hashtbl.find_opt defs c) in
    Hashtbl.replace defs c (d :: prev)
  in
  let cond_of_atom = function
    | K.Aconst (Types.Vbool true) | K.Aconst Types.Vevent -> (None, Ftrue)
    | K.Aconst (Types.Vbool false) -> (None, Ffalse)
    | K.Aconst _ -> (None, Ftrue)
    | K.Avar b -> (Some (class_of b), resolve_cond ~atrue ~defmap b true)
  in
  List.iter
    (fun eq ->
      match eq with
      | K.Kfunc _ | K.Kdelay _ -> ()
      | K.Kwhen { dst; src; cond } ->
        let src_class =
          match src with
          | K.Avar x -> Some (class_of x)
          | K.Aconst _ -> None
        in
        let bclass, lit = cond_of_atom cond in
        if src_class <> None || bclass <> None then
          add_def (class_of dst) (Dwhen (src_class, bclass, lit))
        else if lit = Ffalse then
          (* fully constant, condition false: the null clock *)
          add_def (class_of dst) (Dwhen (None, None, Ffalse))
      | K.Kdefault { dst; left; right } ->
        let classes =
          List.filter_map
            (function K.Avar x -> Some (class_of x) | K.Aconst _ -> None)
            [ left; right ]
        in
        (match classes with
         | [] -> ()
         | cs -> add_def (class_of dst) (Dunion cs)))
    kp.K.keqs;
  (* Primitive contracts as definitions / constraints (mirrors
     Stdproc contracts). *)
  let prim_constraints = ref [] in
  List.iter
    (fun ki ->
      match ki.K.ki_prim, ki.K.ki_ins, ki.K.ki_outs with
      | Stdproc.Pfifo, [ push; pop ], [ data; size ] ->
        prim_constraints := K.Cle (data, pop) :: !prim_constraints;
        add_def (class_of size) (Dunion [ class_of push; class_of pop ])
      | Stdproc.Pfifo_reset, [ push; pop; reset ], [ data; size ] ->
        prim_constraints := K.Cle (data, pop) :: !prim_constraints;
        add_def (class_of size)
          (Dunion [ class_of push; class_of pop; class_of reset ])
      | Stdproc.Pin_event_port, [ _arrival; frozen_time ], [ frozen; _cnt ] ->
        prim_constraints := K.Cle (frozen, frozen_time) :: !prim_constraints
      | Stdproc.Pout_event_port, [ _item; output_time ], [ sent ] ->
        prim_constraints := K.Cle (sent, output_time) :: !prim_constraints
      | _ ->
        st.confl <-
          Printf.sprintf "instance %s: arity mismatch with primitive contract"
            ki.K.ki_label
          :: st.confl)
    kp.K.kinstances;
  (* Phase 3: clock BDD per class, with cycle cut-off. *)
  let lit_bdd b pos =
    let v =
      match Hashtbl.find_opt st.cond_vars b with
      | Some v -> v
      | None ->
        let v = fresh_var st (`Cond b) in
        Hashtbl.replace st.cond_vars b v;
        v
    in
    let bv = Bdd.var mgr v in
    if pos then bv else Bdd.not_ mgr bv
  in
  (* one variable per (signal, constant) equality; equalities of the
     same signal against distinct constants exclude each other in Φ *)
  let eq_vars : (Ast.ident * int, int) Hashtbl.t = Hashtbl.create 8 in
  let eq_bdd x k pos =
    let v =
      match Hashtbl.find_opt eq_vars (x, k) with
      | Some v -> v
      | None ->
        let v = fresh_var st (`CondEq (x, k)) in
        Hashtbl.replace eq_vars (x, k) v;
        (* exclusivity against previously seen constants of x *)
        Hashtbl.iter
          (fun (x', k') v' ->
            if String.equal x' x && k' <> k then
              st.phi <-
                Bdd.and_ mgr st.phi
                  (Bdd.not_ mgr
                     (Bdd.and_ mgr (Bdd.var mgr v) (Bdd.var mgr v'))))
          eq_vars;
        v
    in
    let bv = Bdd.var mgr v in
    if pos then bv else Bdd.not_ mgr bv
  in
  let rec cond_bdd = function
    | Ftrue -> Bdd.one mgr
    | Ffalse -> Bdd.zero mgr
    | Flit (b, pos) -> lit_bdd b pos
    | Feq (x, k, pos) -> eq_bdd x k pos
    | Fand (a, b) -> Bdd.and_ mgr (cond_bdd a) (cond_bdd b)
    | For (a, b) -> Bdd.or_ mgr (cond_bdd a) (cond_bdd b)
  in
  let status = Array.make (max nclasses 1) `Todo in
  let clocks = Array.make (max nclasses 1) (Bdd.one mgr) in
  let free_clock c =
    let v = fresh_var st (`Present c) in
    Bdd.var mgr v
  in
  (* A class may have several definitions (merged by [^=]) and they may
     be mutually recursive through memory patterns. Each definition is
     tried in turn; one whose evaluation loops back to the class itself
     is abandoned ([Cyclic]) and retried as a Φ constraint once the
     class got its clock from an acyclic definition — or from a fresh
     free variable when every definition is cyclic. *)
  let exception Cyclic in
  let rec clock_of_class c =
    match status.(c) with
    | `Done -> clocks.(c)
    | `Busy -> raise Cyclic
    | `Todo -> (
      status.(c) <- `Busy;
      let eval = function
        | Dwhen (base, bclass, lit) ->
          let opt = function
            | Some ci -> clock_of_class ci
            | None -> Bdd.one mgr
          in
          Bdd.and_ mgr (opt base) (Bdd.and_ mgr (opt bclass) (cond_bdd lit))
        | Dunion cs ->
          List.fold_left
            (fun acc ci -> Bdd.or_ mgr acc (clock_of_class ci))
            (Bdd.zero mgr) cs
      in
      (* definitions in source order: in translated programs the
         driving definition (e.g. the scheduler's event) precedes
         memory feedback, so trying them in order avoids most cuts *)
      let all_defs =
        List.rev (Option.value ~default:[] (Hashtbl.find_opt defs c))
      in
      (* choose the first acyclically evaluable definition *)
      let chosen = ref None in
      let deferred = ref [] in
      List.iter
        (fun d ->
          match !chosen with
          | Some _ -> deferred := d :: !deferred
          | None -> (
            match eval d with
            | b -> chosen := Some b
            | exception Cyclic -> deferred := d :: !deferred))
        all_defs;
      (match !chosen with
       | Some b -> clocks.(c) <- b
       | None -> clocks.(c) <- free_clock c);
      status.(c) <- `Done;
      (* deferred/redundant definitions become context constraints,
         processed after every class has its clock *)
      List.iter (fun d -> pending_constraints := (c, d) :: !pending_constraints)
        !deferred;
      clocks.(c))
  and pending_constraints = ref [] in
  for c = 0 to nclasses - 1 do
    match clock_of_class c with
    | _ -> ()
    | exception Cyclic -> ()
  done;
  (* second pass: all classes are Done, deferred definitions evaluate
     without cycles and pin the free variables in Φ *)
  let eval_done = function
    | Dwhen (base, bclass, lit) ->
      let opt = function
        | Some ci -> clocks.(ci)
        | None -> Bdd.one mgr
      in
      Bdd.and_ mgr (opt base) (Bdd.and_ mgr (opt bclass) (cond_bdd lit))
    | Dunion cs ->
      List.fold_left
        (fun acc ci -> Bdd.or_ mgr acc clocks.(ci))
        (Bdd.zero mgr) cs
  in
  List.iter
    (fun (c, d) ->
      let bi = eval_done d in
      let eq =
        Bdd.and_ mgr (Bdd.imp mgr bi clocks.(c)) (Bdd.imp mgr clocks.(c) bi)
      in
      st.phi <- Bdd.and_ mgr st.phi eq)
    (List.rev !pending_constraints);
  st.clocks <- clocks;
  (* Phase 4: declared + primitive constraints into Φ. *)
  let clock_of_sig x = clocks.(class_of x) in
  List.iter
    (fun c ->
      Metrics.incr m_constraints;
      match c with
      | K.Ceq _ -> ()
      | K.Cle (a, b) ->
        st.phi <-
          Bdd.and_ mgr st.phi (Bdd.imp mgr (clock_of_sig a) (clock_of_sig b))
      | K.Cex (a, b) ->
        st.phi <-
          Bdd.and_ mgr st.phi
            (Bdd.not_ mgr (Bdd.and_ mgr (clock_of_sig a) (clock_of_sig b))))
    (kp.K.kconstraints @ !prim_constraints);
  if Bdd.is_zero st.phi then
    st.confl <- "clock constraint system is unsatisfiable" :: st.confl;
  st

(* Analyses are memoized on the kernel's structural digest: the state
   is only mutated during [analyze_impl], so handing the same [t] to
   every caller is sound (later query functions touch only the BDD
   manager's caches, not the analysis result). The mutex makes the
   memo safe to consult from the explorer's worker domains; holding it
   across a cold analysis also means concurrent callers never analyze
   one kernel twice. Queries on a shared [t] remain single-domain
   territory — see the interface notes. *)
let analyze_cache : (string, t) Hashtbl.t = Hashtbl.create 64
let analyze_lock = Mutex.create ()
let analyze_cache_cap = 256

let analyze kp =
  let dg = K.digest kp in
  Mutex.protect analyze_lock @@ fun () ->
  match Hashtbl.find_opt analyze_cache dg with
  | Some st -> Metrics.incr m_cache_hits; st
  | None ->
    Metrics.incr m_cache_misses;
    Metrics.incr m_analyses;
    let st =
      Putil.Tracing.with_span "clocks.calculus"
        ~args:[ ("signals", Putil.Tracing.Aint (K.st_count (K.sigtab kp))) ]
      @@ fun () ->
      Metrics.time m_analyze_ns (fun () -> analyze_impl kp)
    in
    Metrics.set m_signals (K.st_count st.tab);
    Metrics.set m_classes (Array.length st.reprs);
    if Hashtbl.length analyze_cache >= analyze_cache_cap then
      Hashtbl.reset analyze_cache;
    Hashtbl.add analyze_cache dg st;
    st

let reset_cache () =
  Mutex.protect analyze_lock @@ fun () -> Hashtbl.reset analyze_cache

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let manager st = st.mgr
let context st = st.phi
let consistent st = not (Bdd.is_zero st.phi)

let class_of_exn st x = st.class_ids.(sig_index st x)

(* the kernel's declarations promoted to the [clocked] phase: each mark
   keeps the source span and records the synchronization class *)
let clocked_decls st =
  List.init (K.st_count st.tab) (fun i ->
      let vd = K.st_decl st.tab i in
      { Ast.var_name = vd.Ast.var_name;
        var_type = vd.Ast.var_type;
        var_mark =
          Ast.Mclocked
            (Ast.mark_span vd.Ast.var_mark, Some st.class_ids.(i)) })

let clock_of st x =
  let c = class_of_exn st x in
  st.clocks.(c)

let same_class st a b = class_of_exn st a = class_of_exn st b

let class_count st =
  Array.length st.reprs

let class_members st =
  let buckets = Array.make (Array.length st.reprs) [] in
  let n = K.st_count st.tab in
  for i = n - 1 downto 0 do
    let c = st.class_ids.(i) in
    buckets.(c) <- st.names.(i) :: buckets.(c)
  done;
  Array.to_list buckets

let class_reprs st =
  Array.to_list (Array.mapi (fun c r -> (c, st.names.(r))) st.reprs)

let clock_of_class_id st c = st.clocks.(c)

let class_id_of st x = class_of_exn st x

let var_kind st v = List.assoc_opt v st.var_doc

let representative st x =
  let c = class_of_exn st x in
  st.names.(st.reprs.(c))

(* Post-analysis queries below conjoin BDDs, which mutates the shared
   manager's unique table and caches — and one memoized [t] is handed
   to every caller, concurrent pipeline sessions included. [qmu]
   serializes those mutations; pure array reads (class ids, clocks,
   representatives) stay lock-free. *)
let with_query_lock st f = Mutex.protect st.qmu f

let is_null st x =
  with_query_lock st @@ fun () ->
  Bdd.is_zero (Bdd.and_ st.mgr st.phi (clock_of st x))

let subclock st a b =
  with_query_lock st @@ fun () ->
  Bdd.is_zero
    (Bdd.and_ st.mgr st.phi (Bdd.diff st.mgr (clock_of st a) (clock_of st b)))

let exclusive st a b =
  with_query_lock st @@ fun () ->
  Bdd.is_zero
    (Bdd.and_ st.mgr st.phi (Bdd.and_ st.mgr (clock_of st a) (clock_of st b)))

let null_signals st =
  (* Nullness is a property of the synchronization class: test each
     class once against Φ instead of each signal (typically 3-4×
     fewer BDD conjunctions). *)
  let null_class =
    with_query_lock st @@ fun () ->
    Array.map (fun c -> Bdd.is_zero (Bdd.and_ st.mgr st.phi c)) st.clocks
  in
  let n = K.st_count st.tab in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if null_class.(st.class_ids.(i)) then acc := st.names.(i) :: !acc
  done;
  !acc

let conflicts st = List.rev st.confl

let pp_var st ppf v =
  match List.assoc_opt v st.var_doc with
  | Some (`Present c) -> Format.fprintf ppf "^%s" st.names.(st.reprs.(c))
  | Some (`Cond b) -> Format.fprintf ppf "[%s]" b
  | Some (`CondEq (x, k)) -> Format.fprintf ppf "[%s=%d]" x k
  | None -> Format.fprintf ppf "v%d" v

let pp_clock st ppf x =
  with_query_lock st @@ fun () ->
  Bdd.pp st.mgr ~pp_var:(pp_var st) ppf (clock_of st x)

let pp_summary ppf st =
  Format.fprintf ppf "@[<v>clock calculus: %d signals, %d classes@,"
    (K.st_count st.tab) (class_count st);
  if not (consistent st) then
    Format.fprintf ppf "INCONSISTENT constraint system@,";
  List.iter (fun m -> Format.fprintf ppf "conflict: %s@," m) (conflicts st);
  (match null_signals st with
   | [] -> ()
   | l ->
     Format.fprintf ppf "null-clocked signals: %a@,"
       (Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
          Format.pp_print_string)
       l);
  Format.fprintf ppf "@]"

(* ---- structured diagnostics ---- *)

let code_conflict =
  Putil.Diag.code "CLK-CONSTR-001" "contradictory clock constraint"
let code_inconsistent =
  Putil.Diag.code "CLK-CONSTR-002" "unsatisfiable clock constraint system"
let code_null =
  Putil.Diag.code "CLK-NULL-001" "signal with a provably empty clock"

let diags st =
  let c = Putil.Diag.collector () in
  List.iter
    (fun m -> Putil.Diag.add c (Putil.Diag.errorf ~code:code_conflict "%s" m))
    (conflicts st);
  if not (consistent st) then
    Putil.Diag.add c
      (Putil.Diag.errorf ~code:code_inconsistent
         "clock constraint system is unsatisfiable: no behaviour has any \
          signal present");
  List.iter
    (fun x ->
      Putil.Diag.add c
        (Putil.Diag.notef ~code:code_null
           "signal %s has a provably empty clock (never present)" x))
    (null_signals st);
  Putil.Diag.result c
