(** The SIGNAL clock calculus over {!Signal_lang.Kernel} processes.

    Clocks are encoded as boolean functions (BDDs) over two kinds of
    variables: the {e presence} of a synchronization class, and the
    {e value} of a boolean condition signal at the instants where it is
    present. The calculus:

    - partitions signals into synchronization classes (union-find over
      step-wise functions, delays and [^=] constraints);
    - derives one clock function per class from [when] / [default]
      definitions, allocating a free presence variable for classes
      without definitions (inputs) or with recursive definitions;
    - accumulates declared constraints ([^<], [^#], redundant
      definitions, primitive-instance contracts) in a context formula Φ;
    - decides emptiness, inclusion and exclusion of clocks relative
      to Φ, flags contradictions and null-clocked signals. *)

type t

val analyze : Signal_lang.Kernel.kprocess -> t
(** Analyze a kernel process. Memoized on {!Signal_lang.Kernel.digest}:
    structurally equal processes share one analysis (and one BDD
    manager), so repeated pipeline runs pay for the clock calculus
    once. The memo table itself is safe to consult from several
    domains, and so is the returned [t]: queries that conjoin BDDs
    ({!is_null}, {!subclock}, {!exclusive}, {!null_signals},
    {!pp_clock}) serialize on a per-state mutex, since BDD application
    mutates the shared manager's unique table and caches. Pure array
    reads (class ids, clocks, representatives) stay lock-free. *)

val reset_cache : unit -> unit
(** Drop the analysis memo table (cold-start benchmarking; safe to
    call concurrently with {!analyze}). Existing [t] values stay
    valid. *)

(** {1 Queries} *)

val with_query_lock : t -> (unit -> 'a) -> 'a
(** Run [f] holding the state's query mutex. Consumers that borrow the
    manager (via {!manager}) to do their own BDD application must wrap
    that work here, or it races with concurrent locked queries on the
    shared analysis. Inside the callback, use only the lock-free
    accessors ({!manager}, {!context}, {!clock_of},
    {!clock_of_class_id}, {!class_reprs}, {!var_kind}, ...); calling a
    locked query ({!is_null}, {!subclock}, {!exclusive},
    {!null_signals}, {!pp_clock}) deadlocks. *)

val manager : t -> Bdd.manager

val clocked_decls :
  t -> Signal_lang.Ast.clocked Signal_lang.Ast.gvardecl list
(** The analyzed kernel's signal declarations promoted to the
    [clocked] phase: each mark carries the declaration's source span
    and the signal's synchronization class id, in sigtab order. *)

val context : t -> Bdd.t
(** The accumulated constraint formula Φ. *)

val consistent : t -> bool
(** Φ is satisfiable: the clock system has at least one behaviour with
    some signal present. *)

val clock_of : t -> Signal_lang.Ast.ident -> Bdd.t
(** The clock function of a signal.
    @raise Not_found for unknown signals. *)

val same_class : t -> Signal_lang.Ast.ident -> Signal_lang.Ast.ident -> bool
(** Both signals were proved synchronous. *)

val class_count : t -> int
(** Number of synchronization classes, the metric of the paper's
    "several thousand clocks" claim. *)

val class_members : t -> Signal_lang.Ast.ident list list
(** Signals grouped by synchronization class. *)

val class_reprs : t -> (int * Signal_lang.Ast.ident) list
(** Class ids with their canonical representative signal. *)

val clock_of_class_id : t -> int -> Bdd.t
(** Clock function of a class, by id. *)

val class_id_of : t -> Signal_lang.Ast.ident -> int
(** Class id of a signal. @raise Not_found for unknown signals. *)

val var_kind :
  t -> int ->
  [ `Present of int
  | `Cond of Signal_lang.Ast.ident
  | `CondEq of Signal_lang.Ast.ident * int ]
  option
(** Interpretation of a BDD variable used by the clock functions: the
    presence of a synchronization class, the value of a boolean
    condition signal, or an integer signal's equality with a constant
    (mode automata). Used by the clock-directed compiler. *)

val representative : t -> Signal_lang.Ast.ident -> Signal_lang.Ast.ident
(** Canonical signal of the argument's class. *)

val is_null : t -> Signal_lang.Ast.ident -> bool
(** The signal's clock is empty under Φ (it can never be present). *)

val subclock : t -> Signal_lang.Ast.ident -> Signal_lang.Ast.ident -> bool
(** [subclock t a b] iff every instant of [a] is an instant of [b],
    under Φ. *)

val exclusive : t -> Signal_lang.Ast.ident -> Signal_lang.Ast.ident -> bool
(** The two signals can never be present together, under Φ. *)

val null_signals : t -> Signal_lang.Ast.ident list
(** Declared signals whose clock is provably empty. *)

val conflicts : t -> string list
(** Human-readable contradictions detected during the analysis
    (e.g. unsatisfiable constraint system). *)

val pp_clock : t -> Format.formatter -> Signal_lang.Ast.ident -> unit
(** Render a signal's clock as a sum of products over class
    representatives and conditions. *)

val pp_summary : Format.formatter -> t -> unit

val code_conflict : string
val code_inconsistent : string
val code_null : string
(** Diagnostic codes of {!diags}, exposed so callers that merge
    per-process analysis results can regenerate identical
    diagnostics. *)

val diags : t -> Putil.Diag.t list
(** The analysis verdict as structured diagnostics: one
    [CLK-CONSTR-001] error per recorded contradiction, a
    [CLK-CONSTR-002] error when Φ is unsatisfiable, and one
    [CLK-NULL-001] note per null-clocked signal (translation creates
    intentionally-absent signals, so emptiness alone is not an
    error). *)
