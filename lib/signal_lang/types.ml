type styp =
  | Tevent
  | Tbool
  | Tint
  | Treal
  | Tstring

type value =
  | Vevent
  | Vbool of bool
  | Vint of int
  | Vreal of float
  | Vstring of string

let type_of_value = function
  | Vevent -> Tevent
  | Vbool _ -> Tbool
  | Vint _ -> Tint
  | Vreal _ -> Treal
  | Vstring _ -> Tstring

let default_init = function
  | Tevent -> Vevent
  | Tbool -> Vbool false
  | Tint -> Vint 0
  | Treal -> Vreal 0.0
  | Tstring -> Vstring ""

let equal_value v1 v2 =
  match v1, v2 with
  | Vevent, Vevent -> true
  | Vevent, Vbool b | Vbool b, Vevent -> b
  | Vbool a, Vbool b -> a = b
  | Vint a, Vint b -> a = b
  | Vreal a, Vreal b -> a = b
  | Vstring a, Vstring b -> String.equal a b
  | (Vevent | Vbool _ | Vint _ | Vreal _ | Vstring _), _ -> false

let truthy = function
  | Vevent -> true
  | Vbool b -> b
  | Vint _ | Vreal _ | Vstring _ ->
    invalid_arg "Types.truthy: non-boolean value"

let styp_to_string = function
  | Tevent -> "event"
  | Tbool -> "boolean"
  | Tint -> "integer"
  | Treal -> "real"
  | Tstring -> "string"

let value_to_string = function
  | Vevent -> "true"
  | Vbool b -> if b then "true" else "false"
  | Vint n -> string_of_int n
  | Vreal r -> Putil.Mathx.float_to_string r
  | Vstring s -> Printf.sprintf "%S" s

let pp_styp ppf t = Format.pp_print_string ppf (styp_to_string t)
let pp_value ppf v = Format.pp_print_string ppf (value_to_string v)
