(** Parser for the SIGNAL concrete syntax produced by {!Pp}.

    Accepts modules and single processes; {!Pp} followed by this parser
    is the identity on abstract syntax up to marks and value
    normalization (the event value prints as [true] and reparses as a
    boolean) — compare with {!Ast.equal_program} — a property exercised
    by the test suite on every generated program. Parsed trees carry
    source spans on every expression, statement and declaration. *)

exception Parse_error of string
(** message, with the offending token. *)

val parse_program : string -> (Ast.program, string) result
(** Parse [module N = process…]. *)

val parse_process : string -> (Ast.process, string) result
(** Parse a single [process N = …;]. *)

val parse_expr : string -> (Ast.expr, string) result
(** Parse a standalone expression (tooling and tests). *)
