type atom =
  | Avar of Ast.ident
  | Aconst of Types.value

type prim =
  | Punop of Ast.unop
  | Pbinop of Ast.binop
  | Pif
  | Pid
  | Pclock

type keq =
  | Kfunc of { dst : Ast.ident; op : prim; args : atom list }
  | Kdelay of { dst : Ast.ident; src : Ast.ident; init : Types.value }
  | Kwhen of { dst : Ast.ident; src : atom; cond : atom }
  | Kdefault of { dst : Ast.ident; left : atom; right : atom }

type kconstraint =
  | Ceq of Ast.ident * Ast.ident
  | Cle of Ast.ident * Ast.ident
  | Cex of Ast.ident * Ast.ident

type kinstance = {
  ki_label : string;
  ki_prim : Stdproc.primitive;
  ki_ins : Ast.ident list;
  ki_outs : Ast.ident list;
  ki_params : Types.value list;
}

type kprocess = {
  kname : string;
  kinputs : Ast.nvardecl list;
  koutputs : Ast.nvardecl list;
  klocals : Ast.nvardecl list;
  keqs : keq list;
  kconstraints : kconstraint list;
  kinstances : kinstance list;
  kpartials : (Ast.ident * Ast.ident list) list;
}

let atom_type env = function
  | Avar x -> env x
  | Aconst v -> Some (Types.type_of_value v)

let signals kp = kp.kinputs @ kp.koutputs @ kp.klocals

(* kprocess is pure data (strings, values, lists), so a structural
   marshalling is a faithful canonical form *)
let digest kp = Digest.string (Marshal.to_string kp [ Marshal.No_sharing ])

(* ------------------------------------------------------------------ *)
(* Indexed signal table                                                *)
(* ------------------------------------------------------------------ *)

(* Dense per-process indexing of the declared signals, in [signals]
   order (inputs, outputs, locals). Names are interned once; lookup is
   a flat array read over global symbol ids, so every downstream layer
   (simulator, clock calculus, compiler) can key its state on ints. *)
type sigtab = {
  st_syms : Putil.Symbol.t array;        (* local idx -> symbol *)
  st_uids : Putil.Uid.Signal.t array;    (* local idx -> signal UID *)
  st_decls : Ast.nvardecl array;         (* local idx -> declaration *)
  st_lookup : int Putil.Symbol.Tbl.t;    (* symbol -> local idx, -1 *)
}

let sigtab kp =
  let decls = Array.of_list (signals kp) in
  let syms =
    Array.map (fun vd -> Putil.Symbol.of_string vd.Ast.var_name) decls
  in
  let uids =
    Array.map (fun vd -> Putil.Uid.Signal.intern vd.Ast.var_name) decls
  in
  let lookup = Putil.Symbol.Tbl.create ~size:(Array.length syms) (-1) in
  Array.iteri (fun i s -> Putil.Symbol.Tbl.set lookup s i) syms;
  { st_syms = syms; st_uids = uids; st_decls = decls; st_lookup = lookup }

let st_count tab = Array.length tab.st_syms
let st_sym tab i = tab.st_syms.(i)
let st_uid tab i = tab.st_uids.(i)
let st_name tab i = Putil.Symbol.name tab.st_syms.(i)
let st_decl tab i = tab.st_decls.(i)

let st_index_sym tab s =
  let i = Putil.Symbol.Tbl.get tab.st_lookup s in
  if i >= 0 then Some i else None

let st_index_opt tab x = st_index_sym tab (Putil.Symbol.of_string x)

let st_index_exn tab x =
  match st_index_opt tab x with
  | Some i -> i
  | None -> raise Not_found

let eq_dst = function
  | Kfunc { dst; _ } | Kdelay { dst; _ } | Kwhen { dst; _ }
  | Kdefault { dst; _ } -> dst

let defined_by kp x =
  List.filter (fun eq -> String.equal (eq_dst eq) x) kp.keqs

let pp_atom ppf = function
  | Avar x -> Format.pp_print_string ppf x
  | Aconst v -> Types.pp_value ppf v

let prim_to_string = function
  | Punop op -> Pp.unop_to_string op
  | Pbinop op -> Pp.binop_to_string op
  | Pif -> "if"
  | Pid -> "id"
  | Pclock -> "^"

let pp_keq ppf = function
  | Kfunc { dst; op; args } ->
    Format.fprintf ppf "%s := %s(%a)" dst (prim_to_string op)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_atom)
      args
  | Kdelay { dst; src; init } ->
    Format.fprintf ppf "%s := %s $ 1 init %a" dst src Types.pp_value init
  | Kwhen { dst; src; cond } ->
    Format.fprintf ppf "%s := %a when %a" dst pp_atom src pp_atom cond
  | Kdefault { dst; left; right } ->
    Format.fprintf ppf "%s := %a default %a" dst pp_atom left pp_atom right

let pp_kconstraint ppf = function
  | Ceq (a, b) -> Format.fprintf ppf "%s ^= %s" a b
  | Cle (a, b) -> Format.fprintf ppf "%s ^< %s" a b
  | Cex (a, b) -> Format.fprintf ppf "%s ^# %s" a b

let pp_kinstance ppf ki =
  Format.fprintf ppf "%s: %s(%a) -> (%a)" ki.ki_label
    (match ki.ki_prim with
     | Stdproc.Pfifo -> "fifo"
     | Stdproc.Pfifo_reset -> "fifo_reset"
     | Stdproc.Pin_event_port -> "in_event_port"
     | Stdproc.Pout_event_port -> "out_event_port")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_string)
    ki.ki_ins
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_string)
    ki.ki_outs

let pp_kprocess ppf kp =
  Format.fprintf ppf "@[<v 2>kernel %s:@," kp.kname;
  List.iter (fun eq -> Format.fprintf ppf "%a@," pp_keq eq) kp.keqs;
  List.iter (fun c -> Format.fprintf ppf "%a@," pp_kconstraint c) kp.kconstraints;
  List.iter (fun ki -> Format.fprintf ppf "%a@," pp_kinstance ki) kp.kinstances;
  List.iter
    (fun (x, srcs) ->
      Format.fprintf ppf "%s ::= merge(%a)@," x
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Format.pp_print_string)
        srcs)
    kp.kpartials;
  Format.fprintf ppf "@]"
