open Ast

(* Every combinator wraps its description in an empty parsed mark;
   generated code has no source position of its own (traceability back
   to AADL goes through pragmas and Trans.Traceability). *)

let v x = mk (Evar x)
let i n = mk (Econst (Types.Vint n))
let b x = mk (Econst (Types.Vbool x))
let r x = mk (Econst (Types.Vreal x))
let s x = mk (Econst (Types.Vstring x))
let ev = mk (Econst Types.Vevent)

let ( + ) e1 e2 = mk (Ebinop (Add, e1, e2))
let ( - ) e1 e2 = mk (Ebinop (Sub, e1, e2))
let ( * ) e1 e2 = mk (Ebinop (Mul, e1, e2))
let ( / ) e1 e2 = mk (Ebinop (Div, e1, e2))
let ( mod ) e1 e2 = mk (Ebinop (Mod, e1, e2))
let ( && ) e1 e2 = mk (Ebinop (And, e1, e2))
let ( || ) e1 e2 = mk (Ebinop (Or, e1, e2))
let xor e1 e2 = mk (Ebinop (Xor, e1, e2))
let not_ e = mk (Eunop (Not, e))
let neg e = mk (Eunop (Neg, e))
let ( = ) e1 e2 = mk (Ebinop (Eq, e1, e2))
let ( <> ) e1 e2 = mk (Ebinop (Neq, e1, e2))
let ( < ) e1 e2 = mk (Ebinop (Lt, e1, e2))
let ( <= ) e1 e2 = mk (Ebinop (Le, e1, e2))
let ( > ) e1 e2 = mk (Ebinop (Gt, e1, e2))
let ( >= ) e1 e2 = mk (Ebinop (Ge, e1, e2))

let if_ c t e = mk (Eif (c, t, e))

let delay ?(init = Types.Vint 0) e = mk (Edelay (e, init))

let when_ e cond = mk (Ewhen (e, cond))
let default e1 e2 = mk (Edefault (e1, e2))
let clk e = mk (Eclock e)
let on cond = mk (Ewhen (cond, cond))

let stmt d : stmt = (d, Mparsed None)
let ( := ) x e = stmt (Sdef (x, e))
let ( =:: ) x e = stmt (Spartial (x, e))
let ( ^= ) e1 e2 = stmt (Sclk_eq (e1, e2))
let ( ^< ) e1 e2 = stmt (Sclk_le (e1, e2))
let ( ^! ) e1 e2 = stmt (Sclk_ex (e1, e2))

let inst ?(params = []) ~label proc_name ins outs =
  stmt
    (Sinstance
       { inst_label = label; inst_proc = proc_name; inst_ins = ins;
         inst_outs = outs; inst_params = params })

let proc ?(params = []) ?(locals = []) ?(subprocesses = []) ?(pragmas = [])
    ~name ~inputs ~outputs body =
  { proc_name = name; params; inputs; outputs; locals; body; subprocesses;
    pragmas }

let program prog_name processes = { prog_name; processes }
