open Ast

let v x = Evar x
let i n = Econst (Types.Vint n)
let b x = Econst (Types.Vbool x)
let r x = Econst (Types.Vreal x)
let s x = Econst (Types.Vstring x)
let ev = Econst Types.Vevent

let ( + ) e1 e2 = Ebinop (Add, e1, e2)
let ( - ) e1 e2 = Ebinop (Sub, e1, e2)
let ( * ) e1 e2 = Ebinop (Mul, e1, e2)
let ( / ) e1 e2 = Ebinop (Div, e1, e2)
let ( mod ) e1 e2 = Ebinop (Mod, e1, e2)
let ( && ) e1 e2 = Ebinop (And, e1, e2)
let ( || ) e1 e2 = Ebinop (Or, e1, e2)
let xor e1 e2 = Ebinop (Xor, e1, e2)
let not_ e = Eunop (Not, e)
let neg e = Eunop (Neg, e)
let ( = ) e1 e2 = Ebinop (Eq, e1, e2)
let ( <> ) e1 e2 = Ebinop (Neq, e1, e2)
let ( < ) e1 e2 = Ebinop (Lt, e1, e2)
let ( <= ) e1 e2 = Ebinop (Le, e1, e2)
let ( > ) e1 e2 = Ebinop (Gt, e1, e2)
let ( >= ) e1 e2 = Ebinop (Ge, e1, e2)

let if_ c t e = Eif (c, t, e)

let delay ?(init = Types.Vint 0) e = Edelay (e, init)

let when_ e cond = Ewhen (e, cond)
let default e1 e2 = Edefault (e1, e2)
let clk e = Eclock e
let on cond = Ewhen (cond, cond)

let ( := ) x e = Sdef (x, e)
let ( =:: ) x e = Spartial (x, e)
let ( ^= ) e1 e2 = Sclk_eq (e1, e2)
let ( ^< ) e1 e2 = Sclk_le (e1, e2)
let ( ^! ) e1 e2 = Sclk_ex (e1, e2)

let inst ?(params = []) ~label proc_name ins outs =
  Sinstance
    { inst_label = label; inst_proc = proc_name; inst_ins = ins;
      inst_outs = outs; inst_params = params }

let proc ?(params = []) ?(locals = []) ?(subprocesses = []) ?(pragmas = [])
    ~name ~inputs ~outputs body =
  { proc_name = name; params; inputs; outputs; locals; body; subprocesses;
    pragmas }

let program prog_name processes = { prog_name; processes }
