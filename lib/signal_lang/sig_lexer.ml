type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | KW of string
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LCOMP | RCOMP
  | BAR
  | QUESTION | BANG
  | SEMI | COMMA
  | DEFINE
  | PARTIAL
  | CLK_EQ | CLK_LE | CLK_EX
  | HAT
  | DOLLAR
  | PLUS | MINUS | STAR | SLASH
  | EQ | NEQ | LT | LE | GT | GE
  | PRAGMA of string * string
  | EOF

let keywords =
  [ "process"; "where"; "end"; "module"; "when"; "default"; "if"; "then";
    "else"; "init"; "not"; "and"; "or"; "xor"; "modulo"; "true"; "false";
    "event"; "boolean"; "integer"; "real"; "string" ]

exception Lex_error of string * int

let error pos fmt = Format.kasprintf (fun m -> raise (Lex_error (m, pos))) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize_pos src =
  let n = String.length src in
  let pos = ref 0 in
  let toks = ref [] in
  (* Start offset of the token being lexed: set at the top of each
     iteration, before the character class dispatch advances [pos]. *)
  let tok_start = ref 0 in
  let emit t = toks := (t, !tok_start) :: !toks in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let starts_with s =
    !pos + String.length s <= n && String.sub src !pos (String.length s) = s
  in
  let lex_ident () =
    let start = !pos in
    while (match peek 0 with Some c -> is_ident_char c | None -> false) do
      incr pos
    done;
    String.sub src start (!pos - start)
  in
  let lex_string () =
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      match peek 0 with
      | None -> error !pos "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' ->
        incr pos;
        (match peek 0 with
         | Some c ->
           Buffer.add_char buf c;
           incr pos
         | None -> error !pos "unterminated escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let lex_number () =
    let start = !pos in
    while (match peek 0 with Some c -> is_digit c | None -> false) do
      incr pos
    done;
    let is_real =
      match peek 0, peek 1 with
      | Some '.', Some c when is_digit c -> true
      | _ -> false
    in
    if is_real then begin
      incr pos;
      while (match peek 0 with Some c -> is_digit c | None -> false) do
        incr pos
      done;
      (* exponent *)
      (match peek 0 with
       | Some ('e' | 'E') ->
         incr pos;
         (match peek 0 with
          | Some ('+' | '-') -> incr pos
          | _ -> ());
         while (match peek 0 with Some c -> is_digit c | None -> false) do
           incr pos
         done
       | _ -> ());
      REAL (float_of_string (String.sub src start (!pos - start)))
    end
    else INT (int_of_string (String.sub src start (!pos - start)))
  in
  let rec go () =
    tok_start := !pos;
    if !pos >= n then emit EOF
    else begin
      (match src.[!pos] with
       | ' ' | '\t' | '\r' | '\n' -> incr pos
       | '%' ->
         if starts_with "%pragma" then begin
           pos := !pos + 7;
           while (match peek 0 with Some ' ' -> true | _ -> false) do
             incr pos
           done;
           let key = lex_ident () in
           while (match peek 0 with Some ' ' -> true | _ -> false) do
             incr pos
           done;
           let value =
             match peek 0 with
             | Some '"' -> lex_string ()
             | _ -> error !pos "pragma value must be a string"
           in
           (match peek 0 with
            | Some '%' -> incr pos
            | _ -> error !pos "unterminated pragma");
           emit (PRAGMA (key, value))
         end
         else begin
           (* comment: to the next % *)
           incr pos;
           while (match peek 0 with Some c -> c <> '%' | None -> false) do
             incr pos
           done;
           match peek 0 with
           | Some _ -> incr pos
           | None -> error !pos "unterminated comment"
         end
       | '(' ->
         if peek 1 = Some '|' then begin
           pos := !pos + 2;
           emit LCOMP
         end
         else begin
           incr pos;
           emit LPAREN
         end
       | '|' ->
         if peek 1 = Some ')' then begin
           pos := !pos + 2;
           emit RCOMP
         end
         else begin
           incr pos;
           emit BAR
         end
       | ')' -> incr pos; emit RPAREN
       | '{' -> incr pos; emit LBRACE
       | '}' -> incr pos; emit RBRACE
       | '?' -> incr pos; emit QUESTION
       | '!' -> incr pos; emit BANG
       | ';' -> incr pos; emit SEMI
       | ',' -> incr pos; emit COMMA
       | '$' -> incr pos; emit DOLLAR
       | '+' -> incr pos; emit PLUS
       | '-' -> incr pos; emit MINUS
       | '*' -> incr pos; emit STAR
       | '/' ->
         if peek 1 = Some '=' then begin
           pos := !pos + 2;
           emit NEQ
         end
         else begin
           incr pos;
           emit SLASH
         end
       | '=' -> incr pos; emit EQ
       | '<' ->
         if peek 1 = Some '=' then begin
           pos := !pos + 2;
           emit LE
         end
         else begin
           incr pos;
           emit LT
         end
       | '>' ->
         if peek 1 = Some '=' then begin
           pos := !pos + 2;
           emit GE
         end
         else begin
           incr pos;
           emit GT
         end
       | ':' ->
         if starts_with "::=" then begin
           pos := !pos + 3;
           emit PARTIAL
         end
         else if starts_with ":=" then begin
           pos := !pos + 2;
           emit DEFINE
         end
         else error !pos "unexpected ':'"
       | '^' -> (
         match peek 1 with
         | Some '=' ->
           pos := !pos + 2;
           emit CLK_EQ
         | Some '<' ->
           pos := !pos + 2;
           emit CLK_LE
         | Some '#' ->
           pos := !pos + 2;
           emit CLK_EX
         | _ ->
           incr pos;
           emit HAT)
       | '"' -> emit (STRING (lex_string ()))
       | c when is_digit c -> emit (lex_number ())
       | c when is_ident_start c ->
         let id = lex_ident () in
         let low = String.lowercase_ascii id in
         if List.mem low keywords then emit (KW low) else emit (IDENT id)
       | c -> error !pos "unexpected character %c" c);
      if (match !toks with (EOF, _) :: _ -> false | _ -> true) then go ()
    end
  in
  go ();
  List.rev !toks

let tokenize src = List.map fst (tokenize_pos src)

let token_to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | REAL r -> Putil.Mathx.float_to_string r
  | STRING s -> Printf.sprintf "%S" s
  | KW s -> s
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACE -> "{" | RBRACE -> "}"
  | LCOMP -> "(|" | RCOMP -> "|)"
  | BAR -> "|"
  | QUESTION -> "?" | BANG -> "!"
  | SEMI -> ";" | COMMA -> ","
  | DEFINE -> ":=" | PARTIAL -> "::="
  | CLK_EQ -> "^=" | CLK_LE -> "^<" | CLK_EX -> "^#"
  | HAT -> "^" | DOLLAR -> "$"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | EQ -> "=" | NEQ -> "/=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | PRAGMA (k, v) -> Printf.sprintf "%%pragma %s %S%%" k v
  | EOF -> "<eof>"
