(** Normalization of SIGNAL processes to {!Kernel} form.

    - expressions are flattened to three-address equations over fresh,
      typed temporaries;
    - non-primitive process instances (including the kernel-expressible
      AADL2SIGNAL library models) are inlined, with static parameters
      substituted by their actual constant values;
    - primitive instances are kept as {!Kernel.kinstance} nodes;
    - partial definitions are turned into a recorded merge of
      per-branch temporaries.

    Fresh names are built as ["label__name"] for inlined instances and
    ["_tN"] for temporaries, so they cannot clash with source names
    produced by the AADL translator. *)

exception Normalize_error of Putil.Diag.t
(** Raised by {!process_exn}; a printer is registered so uncaught
    instances render as the diagnostic. *)

val process :
  ?program:'q Ast.gprogram ->
  ?params:Types.value list ->
  'p Ast.gprocess ->
  (Kernel.kprocess, Putil.Diag.t) result
(** Normalize one process. [params] instantiates its static parameters
    (required when the process declares any). [program] provides the
    global scope for instance resolution; the AADL2SIGNAL library is
    always in scope. Any phase is accepted (trees are demoted to
    [parsed] internally, keeping spans); generated kernel declarations
    carry [normalized] marks whose spans point back at the source
    construct each temporary flattens. Errors are [SIG-NORM-001]
    diagnostics whose span is the marked source construct (statement,
    expression or instance) normalization gave up on, when one is
    known. *)

val process_exn :
  ?program:'q Ast.gprogram -> ?params:Types.value list -> 'p Ast.gprocess ->
  Kernel.kprocess
(** @raise Normalize_error on normalization errors. *)

(** {1 Link-time assembly from precomputed model kernels}

    Per-process incremental recompute normalizes each model once
    ({!process}, cached per model digest) and assembles the host
    kernel by {e linking}: every instance of a precomputed model is
    satisfied by renaming the cached kernel into the host namespace
    and splicing its content in place. Cold and warm runs share this
    path, so the assembled kernel is byte-identical either way. *)

type link = {
  l_label : string;  (** instance label in the host process *)
  l_model : string;  (** model process name *)
  l_rename : (Ast.ident * Ast.ident) list;
      (** model-local signal → host-kernel signal, covering the
          model's inputs (bound to actual atoms), outputs (bound to
          host names) and locals (["label__name"] / ["label___tN"]) *)
}

type linked = {
  lk_kernel : Kernel.kprocess;
      (** the fully linked kernel, equal to what {!process} on the
          host would produce under link-time naming *)
  lk_glue : Kernel.kprocess;
      (** host-side abstraction: the same traversal with spliced model
          content omitted — model outputs stay free, actual-input
          computations and host equations/constraints are kept.
          Per-process incremental analysis runs on this kernel with
          per-model interface summaries injected as constraints. *)
  lk_links : link list;  (** one per spliced instance, in body order *)
}

val process_linked :
  ?program:'q Ast.gprogram ->
  precomputed:(string * Kernel.kprocess) list ->
  'p Ast.gprocess ->
  (linked, Putil.Diag.t) result
(** Normalize the host process, splicing [precomputed] kernels at
    instance sites (models with static parameters, or shadowed by a
    subprocess of the host, fall back to ordinary inlining). *)
