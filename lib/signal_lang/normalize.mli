(** Normalization of SIGNAL processes to {!Kernel} form.

    - expressions are flattened to three-address equations over fresh,
      typed temporaries;
    - non-primitive process instances (including the kernel-expressible
      AADL2SIGNAL library models) are inlined, with static parameters
      substituted by their actual constant values;
    - primitive instances are kept as {!Kernel.kinstance} nodes;
    - partial definitions are turned into a recorded merge of
      per-branch temporaries.

    Fresh names are built as ["label__name"] for inlined instances and
    ["_tN"] for temporaries, so they cannot clash with source names
    produced by the AADL translator. *)

exception Normalize_error of Putil.Diag.t
(** Raised by {!process_exn}; a printer is registered so uncaught
    instances render as the diagnostic. *)

val process :
  ?program:'q Ast.gprogram ->
  ?params:Types.value list ->
  'p Ast.gprocess ->
  (Kernel.kprocess, Putil.Diag.t) result
(** Normalize one process. [params] instantiates its static parameters
    (required when the process declares any). [program] provides the
    global scope for instance resolution; the AADL2SIGNAL library is
    always in scope. Any phase is accepted (trees are demoted to
    [parsed] internally, keeping spans); generated kernel declarations
    carry [normalized] marks whose spans point back at the source
    construct each temporary flattens. Errors are [SIG-NORM-001]
    diagnostics whose span is the marked source construct (statement,
    expression or instance) normalization gave up on, when one is
    known. *)

val process_exn :
  ?program:'q Ast.gprogram -> ?params:Types.value list -> 'p Ast.gprocess ->
  Kernel.kprocess
(** @raise Normalize_error on normalization errors. *)
