open Ast
module L = Sig_lexer

exception Parse_error of string

type state = {
  toks : L.token array;
  offsets : int array;      (* start offset of toks.(i) in the source *)
  line_starts : int array;  (* offset of the start of each line *)
  mutable idx : int;
}

(* ------------------------------ spans ----------------------------- *)

let line_starts_of src =
  let starts = ref [ 0 ] in
  String.iteri (fun i c -> if c = '\n' then starts := (i + 1) :: !starts) src;
  Array.of_list (List.rev !starts)

(* line (1-based) and column (1-based) of a byte offset *)
let linecol st off =
  let ls = st.line_starts in
  let lo = ref 0 and hi = ref (Array.length ls - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if ls.(mid) <= off then lo := mid else hi := mid - 1
  done;
  (!lo + 1, off - ls.(!lo) + 1)

let token_len tok = String.length (L.token_to_string tok)

(* Span of the node whose first token is [i0], ending at the last
   token consumed so far (clamped to the first token's line: spans are
   single-line). *)
let span_from st i0 =
  let l0, c0 = linecol st st.offsets.(i0) in
  let j = max i0 (st.idx - 1) in
  let l1, c1 = linecol st st.offsets.(j) in
  let end_col =
    if l1 = l0 then c1 + token_len st.toks.(j) - 1
    else c0 + token_len st.toks.(i0) - 1
  in
  Putil.Diag.span ~line:l0 ~col:c0 ~end_col ()

let mark_from st i0 = Mparsed (Some (span_from st i0))
let node st i0 d : Ast.expr = (d, mark_from st i0)
let snode st i0 d : Ast.stmt = (d, mark_from st i0)

(* ---------------------------- plumbing ---------------------------- *)

let cur st = st.toks.(st.idx)

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let error st fmt =
  Format.kasprintf
    (fun m ->
      raise
        (Parse_error
           (Printf.sprintf "%s (at '%s')" m (L.token_to_string (cur st)))))
    fmt

let expect st tok =
  if cur st = tok then advance st
  else error st "expected '%s'" (L.token_to_string tok)

let accept st tok =
  if cur st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (L.KW kw)
let expect_kw st kw = expect st (L.KW kw)

let ident st =
  match cur st with
  | L.IDENT s ->
    advance st;
    s
  | _ -> error st "expected identifier"

let styp_of_kw st =
  match cur st with
  | L.KW "event" -> advance st; Some Types.Tevent
  | L.KW "boolean" -> advance st; Some Types.Tbool
  | L.KW "integer" -> advance st; Some Types.Tint
  | L.KW "real" -> advance st; Some Types.Treal
  | L.KW "string" -> advance st; Some Types.Tstring
  | _ -> None

(* literal values, with optional sign, for init/params *)
let value st =
  match cur st with
  | L.KW "true" -> advance st; Types.Vbool true
  | L.KW "false" -> advance st; Types.Vbool false
  | L.INT n -> advance st; Types.Vint n
  | L.REAL r -> advance st; Types.Vreal r
  | L.STRING s -> advance st; Types.Vstring s
  | L.MINUS -> (
    advance st;
    match cur st with
    | L.INT n -> advance st; Types.Vint (-n)
    | L.REAL r -> advance st; Types.Vreal (-.r)
    | _ -> error st "expected a number after '-'")
  | _ -> error st "expected a literal value"

(* ---------------------------- expressions ------------------------- *)

let rec expr0 st =
  let i0 = st.idx in
  if accept_kw st "if" then begin
    let c = expr0 st in
    expect_kw st "then";
    let t = expr0 st in
    expect_kw st "else";
    let e = expr0 st in
    node st i0 (Eif (c, t, e))
  end
  else expr1 st

(* when / default level *)
and expr1 st =
  let i0 = st.idx in
  let e = ref (expr2 st) in
  let rec loop () =
    if accept_kw st "when" then begin
      let b = expr2 st in
      e := node st i0 (Ewhen (!e, b));
      loop ()
    end
    else if accept_kw st "default" then
      (* right associative *)
      e := node st i0 (Edefault (!e, expr1 st))
  in
  loop ();
  !e

and expr2 st =
  let i0 = st.idx in
  let e = ref (expr3 st) in
  let rec loop () =
    if accept_kw st "or" then begin
      e := node st i0 (Ebinop (Or, !e, expr3 st));
      loop ()
    end
    else if accept_kw st "xor" then begin
      e := node st i0 (Ebinop (Xor, !e, expr3 st));
      loop ()
    end
  in
  loop ();
  !e

and expr3 st =
  let i0 = st.idx in
  let e = ref (expr4 st) in
  while accept_kw st "and" do
    e := node st i0 (Ebinop (And, !e, expr4 st))
  done;
  !e

and expr4 st =
  let i0 = st.idx in
  let e = ref (expr5 st) in
  let rec loop () =
    let op =
      match cur st with
      | L.EQ -> Some Eq
      | L.NEQ -> Some Neq
      | L.LT -> Some Lt
      | L.LE -> Some Le
      | L.GT -> Some Gt
      | L.GE -> Some Ge
      | _ -> None
    in
    match op with
    | Some op ->
      advance st;
      e := node st i0 (Ebinop (op, !e, expr5 st));
      loop ()
    | None -> ()
  in
  loop ();
  !e

and expr5 st =
  let i0 = st.idx in
  let e = ref (expr6 st) in
  let rec loop () =
    if accept st L.PLUS then begin
      e := node st i0 (Ebinop (Add, !e, expr6 st));
      loop ()
    end
    else if accept st L.MINUS then begin
      e := node st i0 (Ebinop (Sub, !e, expr6 st));
      loop ()
    end
  in
  loop ();
  !e

and expr6 st =
  let i0 = st.idx in
  let e = ref (expr7 st) in
  let rec loop () =
    if accept st L.STAR then begin
      e := node st i0 (Ebinop (Mul, !e, expr7 st));
      loop ()
    end
    else if accept st L.SLASH then begin
      e := node st i0 (Ebinop (Div, !e, expr7 st));
      loop ()
    end
    else if accept_kw st "modulo" then begin
      e := node st i0 (Ebinop (Mod, !e, expr7 st));
      loop ()
    end
  in
  loop ();
  !e

(* delay: e $ 1 init v *)
and expr7 st =
  let i0 = st.idx in
  let e = ref (expr8 st) in
  while accept st L.DOLLAR do
    (match cur st with
     | L.INT 1 -> advance st
     | _ -> error st "only unit delays '$ 1' are supported");
    expect_kw st "init";
    let v = value st in
    e := node st i0 (Edelay (!e, v))
  done;
  !e

and expr8 st =
  let i0 = st.idx in
  match cur st with
  | L.KW "not" ->
    advance st;
    node st i0 (Eunop (Not, atom st))
  | L.MINUS -> (
    advance st;
    (* '- <number>' is canonicalized to a negative literal: the
       concrete syntax cannot distinguish it from unary negation *)
    match cur st with
    | L.INT n -> advance st; node st i0 (Econst (Types.Vint (-n)))
    | L.REAL r -> advance st; node st i0 (Econst (Types.Vreal (-.r)))
    | _ -> node st i0 (Eunop (Neg, atom st)))
  | L.HAT ->
    advance st;
    node st i0 (Eclock (atom st))
  | L.KW "when" ->
    (* prefix clock sugar: when b  ≡  b when b *)
    advance st;
    let b = atom st in
    node st i0 (Ewhen (b, b))
  | _ -> atom st

and atom st =
  let i0 = st.idx in
  match cur st with
  | L.MINUS -> (
    (* negative literal, as printed by the value pretty-printer *)
    advance st;
    match cur st with
    | L.INT n -> advance st; node st i0 (Econst (Types.Vint (-n)))
    | L.REAL r -> advance st; node st i0 (Econst (Types.Vreal (-.r)))
    | _ -> error st "expected a number after '-'")
  | L.IDENT x ->
    advance st;
    node st i0 (Evar x)
  | L.KW "true" -> advance st; node st i0 (Econst (Types.Vbool true))
  | L.KW "false" -> advance st; node st i0 (Econst (Types.Vbool false))
  | L.INT n -> advance st; node st i0 (Econst (Types.Vint n))
  | L.REAL r -> advance st; node st i0 (Econst (Types.Vreal r))
  | L.STRING s -> advance st; node st i0 (Econst (Types.Vstring s))
  | L.LPAREN ->
    advance st;
    let e = expr0 st in
    expect st L.RPAREN;
    e
  | _ -> error st "expected an expression"

(* ---------------------------- statements -------------------------- *)

(* instance calls: [(outs) :=] name [{params}] (args) *)
let instance_outs_lookahead st =
  (* at '(' — does "( id, id ) :=" follow? *)
  let i = ref (st.idx + 1) in
  let toks = st.toks in
  let rec idents () =
    match toks.(!i) with
    | L.IDENT _ -> (
      incr i;
      match toks.(!i) with
      | L.COMMA ->
        incr i;
        idents ()
      | L.RPAREN -> toks.(!i + 1) = L.DEFINE
      | _ -> false)
    | _ -> false
  in
  idents ()

let rec instance_call st ~i0 ~outs ~label_hint =
  let proc_name = ident st in
  let params =
    if accept st L.LBRACE then begin
      let rec go acc =
        let v = value st in
        if accept st L.COMMA then go (v :: acc) else List.rev (v :: acc)
      in
      let ps = go [] in
      expect st L.RBRACE;
      ps
    end
    else []
  in
  expect st L.LPAREN;
  let args =
    if cur st = L.RPAREN then []
    else begin
      let rec go acc =
        let e = expr0 st in
        if accept st L.COMMA then go (e :: acc) else List.rev (e :: acc)
      in
      go []
    end
  in
  expect st L.RPAREN;
  snode st i0
    (Sinstance
       { inst_label = label_hint; inst_proc = proc_name; inst_ins = args;
         inst_outs = outs; inst_params = params })

and stmt st ~fresh_label =
  let i0 = st.idx in
  match cur st with
  | L.LPAREN when instance_outs_lookahead st ->
    advance st;
    let rec outs acc =
      let o = ident st in
      if accept st L.COMMA then outs (o :: acc) else List.rev (o :: acc)
    in
    let outs = outs [] in
    expect st L.RPAREN;
    expect st L.DEFINE;
    instance_call st ~i0 ~outs ~label_hint:(fresh_label ())
  | L.IDENT x when st.toks.(st.idx + 1) = L.DEFINE ->
    advance st;
    advance st;
    (* could still be an out-less instance? no: Pp prints defs here *)
    snode st i0 (Sdef (x, expr0 st))
  | L.IDENT x when st.toks.(st.idx + 1) = L.PARTIAL ->
    advance st;
    advance st;
    snode st i0 (Spartial (x, expr0 st))
  | L.IDENT _
    when (match st.toks.(st.idx + 1) with
          | L.LPAREN | L.LBRACE -> true
          | _ -> false) ->
    instance_call st ~i0 ~outs:[] ~label_hint:(fresh_label ())
  | _ ->
    let e1 = expr0 st in
    (match cur st with
     | L.CLK_EQ ->
       advance st;
       snode st i0 (Sclk_eq (e1, expr0 st))
     | L.CLK_LE ->
       advance st;
       snode st i0 (Sclk_le (e1, expr0 st))
     | L.CLK_EX ->
       advance st;
       snode st i0 (Sclk_ex (e1, expr0 st))
     | _ -> error st "expected a clock relation")

(* --------------------------- declarations ------------------------- *)

let decl_group st typ =
  let rec go acc =
    let i0 = st.idx in
    let x = ident st in
    let acc = var_at ~span:(span_from st i0) x typ :: acc in
    if accept st L.COMMA then go acc else List.rev acc
  in
  go []

(* a ';'-separated sequence of typed groups, ending before a closer *)
let decl_groups st =
  let rec go acc =
    match styp_of_kw st with
    | Some typ ->
      let g = decl_group st typ in
      if accept st L.SEMI then go (acc @ g) else acc @ g
    | None -> acc
  in
  go []

(* ----------------------------- processes -------------------------- *)

let rec process st =
  expect_kw st "process";
  let name = ident st in
  expect st L.EQ;
  let params =
    if accept st L.LBRACE then begin
      let ps = decl_groups st in
      expect st L.RBRACE;
      ps
    end
    else []
  in
  expect st L.LPAREN;
  let inputs = if accept st L.QUESTION then decl_groups st else [] in
  let outputs = if accept st L.BANG then decl_groups st else [] in
  expect st L.RPAREN;
  expect st L.LCOMP;
  let label_counter = ref 0 in
  let fresh_label () =
    incr label_counter;
    Printf.sprintf "i%d" !label_counter
  in
  let body =
    if accept st L.RCOMP then []
    else begin
      let rec go acc =
        let s = stmt st ~fresh_label in
        if accept st L.BAR then go (s :: acc)
        else begin
          expect st L.RCOMP;
          List.rev (s :: acc)
        end
      in
      go []
    end
  in
  let locals = ref [] and subprocesses = ref [] in
  if accept_kw st "where" then begin
    let rec go () =
      match styp_of_kw st with
      | Some typ ->
        let g = decl_group st typ in
        expect st L.SEMI;
        locals := !locals @ g;
        go ()
      | None ->
        if cur st = L.KW "process" then begin
          let sub = process st in
          subprocesses := !subprocesses @ [ sub ];
          go ()
        end
    in
    go ();
    expect_kw st "end"
  end;
  let pragmas = ref [] in
  let rec prag () =
    match cur st with
    | L.PRAGMA (k, v) ->
      advance st;
      pragmas := !pragmas @ [ (k, v) ];
      prag ()
    | _ -> ()
  in
  prag ();
  expect st L.SEMI;
  { proc_name = name; params; inputs; outputs; locals = !locals;
    body; subprocesses = !subprocesses; pragmas = !pragmas }

let program st =
  expect_kw st "module";
  let name = ident st in
  expect st L.EQ;
  let rec go acc =
    if cur st = L.KW "process" then go (process st :: acc) else List.rev acc
  in
  let processes = go [] in
  { prog_name = name; processes }

let with_tokens src f =
  let tp = Array.of_list (L.tokenize_pos src) in
  let st =
    { toks = Array.map fst tp;
      offsets = Array.map snd tp;
      line_starts = line_starts_of src;
      idx = 0 }
  in
  let r = f st in
  (match cur st with
   | L.EOF -> ()
   | _ -> error st "trailing input");
  r

let wrap f src =
  match with_tokens src f with
  | r -> Ok r
  | exception Parse_error m -> Error m
  | exception L.Lex_error (m, pos) ->
    Error (Printf.sprintf "lexical error at offset %d: %s" pos m)

let parse_program src = wrap program src
let parse_process src = wrap process src
let parse_expr src = wrap expr0 src
