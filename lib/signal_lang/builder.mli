(** Combinators for building SIGNAL processes programmatically.

    The translator and the examples build SIGNAL abstract syntax with
    these helpers rather than with raw constructors; they keep the
    generated code uniform and readable. *)

open Ast

(** {1 Expressions} *)

val v : ident -> expr
(** Signal reference. *)

val i : int -> expr
(** Integer constant. *)

val b : bool -> expr
(** Boolean constant. *)

val r : float -> expr
val s : string -> expr
val ev : expr
(** The event value constant. *)

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( mod ) : expr -> expr -> expr
val ( && ) : expr -> expr -> expr
val ( || ) : expr -> expr -> expr
val xor : expr -> expr -> expr
val not_ : expr -> expr
val neg : expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr

val if_ : expr -> expr -> expr -> expr
(** Synchronous conditional. *)

val delay : ?init:Types.value -> expr -> expr
(** [delay ~init e] is [e $ 1 init v]; default init is 0/false. *)

val when_ : expr -> expr -> expr
(** [when_ e cond] is [e when cond]. *)

val default : expr -> expr -> expr
val clk : expr -> expr
(** [clk e] is [^e]. *)

val on : expr -> expr
(** [on cond] is the event clock [when cond], i.e. [cond when cond]. *)

(** Counting is not a kernel operator; see {!Stdproc.counter}. *)

(** {1 Statements} *)

val ( := ) : ident -> expr -> stmt
val ( =:: ) : ident -> expr -> stmt
(** Partial definition [x ::= e]. *)

val ( ^= ) : expr -> expr -> stmt
val ( ^< ) : expr -> expr -> stmt
val ( ^! ) : expr -> expr -> stmt

val inst :
  ?params:Types.value list ->
  label:string -> ident -> expr list -> ident list -> stmt
(** [inst ~label proc ins outs] instantiates process model [proc]. *)

(** {1 Processes} *)

val proc :
  ?params:vardecl list ->
  ?locals:vardecl list ->
  ?subprocesses:process list ->
  ?pragmas:(string * string) list ->
  name:ident ->
  inputs:vardecl list ->
  outputs:vardecl list ->
  stmt list ->
  process

val program : string -> process list -> program
