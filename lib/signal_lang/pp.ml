open Ast

let unop_to_string = function
  | Not -> "not"
  | Neg -> "-"

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "modulo"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Eq -> "=" | Neq -> "/=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

(* Precedence levels, loosely following the SIGNAL reference manual:
   higher binds tighter. *)
let binop_prec = function
  | Or | Xor -> 2
  | And -> 3
  | Eq | Neq | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let prec_default = 1
let prec_when = 1
let prec_delay = 7
let prec_atom = 9

(* Printing is mark-insensitive and phase-polymorphic: the same
   printers serve parsed source, typed trees and kernel forms. *)
let rec pp_expr_prec ctx ppf e =
  let p = prec_of e in
  let body ppf () =
    match desc e with
    | Econst v -> Types.pp_value ppf v
    | Evar x -> Format.pp_print_string ppf x
    | Eunop (op, e1) ->
      Format.fprintf ppf "%s %a" (unop_to_string op)
        (pp_expr_prec prec_atom) e1
    | Ebinop (op, e1, e2) ->
      let bp = binop_prec op in
      Format.fprintf ppf "@[<hv>%a %s@ %a@]"
        (pp_expr_prec bp) e1 (binop_to_string op)
        (pp_expr_prec (bp + 1)) e2
    | Eif (c, t, f) ->
      Format.fprintf ppf "@[<hv>if %a@ then %a@ else %a@]"
        (pp_expr_prec 0) c (pp_expr_prec 0) t (pp_expr_prec 0) f
    | Edelay (e1, init) ->
      Format.fprintf ppf "%a $ 1 init %a"
        (pp_expr_prec (prec_delay + 1)) e1 Types.pp_value init
    | Ewhen (e1, e2) when equal_expr e1 e2 ->
      Format.fprintf ppf "when %a" (pp_expr_prec prec_atom) e2
    | Ewhen (e1, e2) ->
      Format.fprintf ppf "@[<hv>%a when@ %a@]"
        (pp_expr_prec (prec_when + 1)) e1 (pp_expr_prec (prec_when + 1)) e2
    | Edefault (e1, e2) ->
      Format.fprintf ppf "@[<hv>%a default@ %a@]"
        (pp_expr_prec (prec_default + 1)) e1 (pp_expr_prec prec_default) e2
    | Eclock e1 -> Format.fprintf ppf "^%a" (pp_expr_prec prec_atom) e1
  in
  if p < ctx then Format.fprintf ppf "(%a)" body () else body ppf ()

and prec_of e =
  match desc e with
  | Econst _ | Evar _ -> prec_atom
  | Eunop _ | Eclock _ -> 8
  | Ebinop (op, _, _) -> binop_prec op
  | Eif _ -> 0
  | Edelay _ -> prec_delay
  | Ewhen (e1, e2) when equal_expr e1 e2 -> 8
  | Ewhen _ -> prec_when
  | Edefault _ -> prec_default

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_comma_list pp ppf l =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp ppf l

let pp_stmt ppf st =
  match (st : _ gstmt) with
  | Sdef (x, e), _ -> Format.fprintf ppf "@[<hv 2>%s :=@ %a@]" x pp_expr e
  | Spartial (x, e), _ -> Format.fprintf ppf "@[<hv 2>%s ::=@ %a@]" x pp_expr e
  | Sclk_eq (e1, e2), _ ->
    Format.fprintf ppf "@[<hv 2>%a ^=@ %a@]" pp_expr e1 pp_expr e2
  | Sclk_le (e1, e2), _ ->
    Format.fprintf ppf "@[<hv 2>%a ^<@ %a@]" pp_expr e1 pp_expr e2
  | Sclk_ex (e1, e2), _ ->
    Format.fprintf ppf "@[<hv 2>%a ^#@ %a@]" pp_expr e1 pp_expr e2
  | Sinstance inst, _ ->
    let pp_outs ppf = function
      | [] -> ()
      | outs -> Format.fprintf ppf "(%a) := " (pp_comma_list Format.pp_print_string) outs
    in
    let pp_params ppf = function
      | [] -> ()
      | ps -> Format.fprintf ppf "{%a}" (pp_comma_list Types.pp_value) ps
    in
    Format.fprintf ppf "@[<hv 2>%a%s%a(%a)@]"
      pp_outs inst.inst_outs inst.inst_proc pp_params inst.inst_params
      (pp_comma_list pp_expr) inst.inst_ins

let group_by_type vars =
  (* Group consecutive declarations of the same type, preserving order,
     to print "integer x, y, z;" like the Polychrony tools do. *)
  let rec loop acc current = function
    | [] -> List.rev (match current with None -> acc | Some g -> g :: acc)
    | { var_name; var_type; _ } :: rest -> (
      match current with
      | Some (t, names) when t = var_type ->
        loop acc (Some (t, var_name :: names)) rest
      | Some g -> loop (g :: acc) (Some (var_type, [ var_name ])) rest
      | None -> loop acc (Some (var_type, [ var_name ])) rest)
  in
  List.map (fun (t, names) -> (t, List.rev names)) (loop [] None vars)

let pp_decl_group ppf (t, names) =
  Format.fprintf ppf "@[<hov 2>%a %a@]" Types.pp_styp t
    (pp_comma_list Format.pp_print_string) names

let pp_io_section ppf (mark, vars) =
  match vars with
  | [] -> ()
  | _ ->
    let groups = group_by_type vars in
    Format.fprintf ppf "%s " mark;
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
      pp_decl_group ppf groups;
    Format.fprintf ppf ";@ "

let rec pp_process_indent ppf p =
  let pp_pragma ppf (k, v) =
    Format.fprintf ppf "@[%%pragma %s \"%s\"%%@]" k v
  in
  Format.fprintf ppf "@[<v 2>process %s =%a@," p.proc_name
    (fun ppf params ->
      match params with
      | [] -> ()
      | _ ->
        Format.fprintf ppf "@,{ @[<hov>%a@] }"
          (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
             pp_decl_group)
          (group_by_type params))
    p.params;
  Format.fprintf ppf "@[<hv 2>( %a%a)@]@,"
    pp_io_section ("?", p.inputs)
    pp_io_section ("!", p.outputs);
  (match p.body with
  | [] -> Format.fprintf ppf "(| |)"
  | body ->
    Format.fprintf ppf "@[<v 1>(| %a@ |)@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ | ")
         pp_stmt)
      body);
  let has_where = p.locals <> [] || p.subprocesses <> [] in
  if has_where then begin
    Format.fprintf ppf "@,@[<v 2>where";
    List.iter
      (fun g -> Format.fprintf ppf "@,%a;" pp_decl_group g)
      (group_by_type p.locals);
    List.iter
      (fun sub -> Format.fprintf ppf "@,%a" pp_process_indent sub)
      p.subprocesses;
    Format.fprintf ppf "@]@,end"
  end;
  List.iter (fun pr -> Format.fprintf ppf "@,%a" pp_pragma pr) p.pragmas;
  Format.fprintf ppf ";@]"

let pp_process ppf p = Format.fprintf ppf "@[<v>%a@]" pp_process_indent p

let pp_program ppf prog =
  Format.fprintf ppf "@[<v>module %s =@,@," prog.prog_name;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
    pp_process ppf prog.processes;
  Format.fprintf ppf "@]"

let to_string pp x = Format.asprintf "%a" pp x
let expr_to_string e = to_string pp_expr e
let stmt_to_string s = to_string pp_stmt s
let process_to_string p = to_string pp_process p
let program_to_string p = to_string pp_program p
