(** Lexer for the SIGNAL concrete syntax emitted by {!Pp}. *)

type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | KW of string        (** lowercased keyword *)
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LCOMP | RCOMP       (** [(|] and [|)] *)
  | BAR
  | QUESTION | BANG
  | SEMI | COMMA
  | DEFINE              (** [:=] *)
  | PARTIAL             (** [::=] *)
  | CLK_EQ | CLK_LE | CLK_EX   (** [^=], [^<], [^#] *)
  | HAT                 (** [^] *)
  | DOLLAR
  | PLUS | MINUS | STAR | SLASH
  | EQ | NEQ | LT | LE | GT | GE
  | PRAGMA of string * string
  | EOF

val keywords : string list
(** process, where, end, module, when, default, if, then, else, init,
    not, and, or, xor, modulo, true, false, event, boolean, integer,
    real, string. *)

exception Lex_error of string * int
(** message, offset *)

val tokenize : string -> token list
(** Ends with [EOF]. Comments run between [%] pairs, except
    [%pragma key "value"%] which lexes as a {!PRAGMA} token. *)

val tokenize_pos : string -> (token * int) list
(** Like {!tokenize}, each token paired with its start offset in the
    source ([EOF] gets the source length). *)

val token_to_string : token -> string
