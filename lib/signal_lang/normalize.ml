open Ast
open Kernel

let code_norm =
  Putil.Diag.code "SIG-NORM-001"
    "generated SIGNAL program cannot be normalized"

(* Internal control flow only; [process] catches it and builds the
   coded diagnostic. The span is the nearest marked source construct
   (expression, statement, or declaration) to where flattening gave
   up, so "cannot normalize" points at source instead of nowhere. *)
exception Error of Putil.Diag.span option * string

exception Normalize_error of Putil.Diag.t

let () =
  Printexc.register_printer (function
    | Normalize_error d -> Some (Putil.Diag.to_string d)
    | _ -> None)

let errf fmt = Format.kasprintf (fun m -> raise (Error (None, m))) fmt

let errf_at sp fmt = Format.kasprintf (fun m -> raise (Error (sp, m))) fmt

type state = {
  mutable counter : int;
  used : (string, unit) Hashtbl.t;
  mutable locals : vardecl list;   (* reversed; parsed phase while building *)
  mutable eqs : keq list;          (* reversed *)
  mutable constraints : kconstraint list;
  mutable instances : kinstance list;
  mutable partials : (ident * ident list) list;
}

(* Fresh temporaries inherit the span of the source expression they
   flatten, so kernel-level diagnostics can still point at source. *)
let fresh st ?(hint = "t") ?span typ =
  let rec pick () =
    st.counter <- st.counter + 1;
    let name = Printf.sprintf "_%s%d" hint st.counter in
    if Hashtbl.mem st.used name then pick () else name
  in
  let name = pick () in
  Hashtbl.replace st.used name ();
  st.locals <-
    { var_name = name; var_type = typ; var_mark = Mparsed span } :: st.locals;
  name

let emit st eq = st.eqs <- eq :: st.eqs

(* A typing + renaming environment for the scope being normalized. *)
type scope = {
  rename : ident -> ident;
  tenv : ident -> Types.styp option;
  subst : (ident * Types.value) list;  (* static parameters *)
}

let type_of scope e =
  match Typecheck.type_of_expr scope.tenv e with
  | Ok t -> t
  | Error m -> errf_at (span e) "%s" m

(* Substitute static parameters by their constant values. *)
let rec subst_params subst (e : expr) : expr =
  let d, m = e in
  match d with
  | Econst _ -> e
  | Evar x -> (
    match List.assoc_opt x subst with
    | Some v -> (Econst v, m)
    | None -> e)
  | Eunop (op, e1) -> (Eunop (op, subst_params subst e1), m)
  | Ebinop (op, e1, e2) ->
    (Ebinop (op, subst_params subst e1, subst_params subst e2), m)
  | Eif (c, t, f) ->
    ( Eif (subst_params subst c, subst_params subst t, subst_params subst f),
      m )
  | Edelay (e1, v) -> (Edelay (subst_params subst e1, v), m)
  | Ewhen (e1, b) -> (Ewhen (subst_params subst e1, subst_params subst b), m)
  | Edefault (e1, e2) ->
    (Edefault (subst_params subst e1, subst_params subst e2), m)
  | Eclock e1 -> (Eclock (subst_params subst e1), m)

let atom_ident st ?span typ = function
  | Avar x -> x
  | Aconst v ->
    let t = fresh st ~hint:"c" ?span typ in
    emit st (Kfunc { dst = t; op = Pid; args = [ Aconst v ] });
    t

(* Flatten an expression to an atom, emitting kernel equations. *)
let rec norm_expr st scope e =
  let e = subst_params scope.subst e in
  let sp = span e in
  match desc e with
  | Econst v -> Aconst v
  | Evar x -> Avar (scope.rename x)
  | Eunop (op, e1) ->
    let t = type_of scope e in
    let a = norm_expr st scope e1 in
    let dst = fresh st ?span:sp t in
    emit st (Kfunc { dst; op = Punop op; args = [ a ] });
    Avar dst
  | Ebinop (op, e1, e2) ->
    let t = type_of scope e in
    let a1 = norm_expr st scope e1 in
    let a2 = norm_expr st scope e2 in
    let dst = fresh st ?span:sp t in
    emit st (Kfunc { dst; op = Pbinop op; args = [ a1; a2 ] });
    Avar dst
  | Eif (c, e1, e2) ->
    let t = type_of scope e in
    let ac = norm_expr st scope c in
    let a1 = norm_expr st scope e1 in
    let a2 = norm_expr st scope e2 in
    let dst = fresh st ?span:sp t in
    emit st (Kfunc { dst; op = Pif; args = [ ac; a1; a2 ] });
    Avar dst
  | Edelay (e1, init) ->
    let t = type_of scope e in
    let a = norm_expr st scope e1 in
    let src = atom_ident st ?span:sp t a in
    let dst = fresh st ?span:sp t in
    emit st (Kdelay { dst; src; init });
    Avar dst
  | Ewhen (e1, b) ->
    let t = type_of scope e in
    let a = norm_expr st scope e1 in
    let ab = norm_expr st scope b in
    let dst = fresh st ?span:sp t in
    emit st (Kwhen { dst; src = a; cond = ab });
    Avar dst
  | Edefault (e1, e2) ->
    let t = type_of scope e in
    let a1 = norm_expr st scope e1 in
    let a2 = norm_expr st scope e2 in
    let dst = fresh st ?span:sp t in
    emit st (Kdefault { dst; left = a1; right = a2 });
    Avar dst
  | Eclock e1 ->
    let a = norm_expr st scope e1 in
    let dst = fresh st ?span:sp Types.Tevent in
    emit st (Kfunc { dst; op = Pclock; args = [ a ] });
    Avar dst

let norm_expr_ident st scope e =
  let e' = subst_params scope.subst e in
  let typ = type_of scope e' in
  atom_ident st ?span:(span e') typ (norm_expr st scope e)

(* Copy an atom into a named destination. *)
let assign st dst a = emit st (Kfunc { dst; op = Pid; args = [ a ] })

let scope_env p params_bound =
  let module SMap = Map.Make (String) in
  let add acc vd = SMap.add vd.var_name vd.var_type acc in
  let env = List.fold_left add SMap.empty p.params in
  let env = List.fold_left add env p.inputs in
  let env = List.fold_left add env p.outputs in
  let env = List.fold_left add env p.locals in
  fun x ->
    match SMap.find_opt x env with
    | Some t -> Some t
    | None -> Option.map Types.type_of_value (List.assoc_opt x params_bound)

let resolve_model ~program ~host name =
  match find_subprocess host name with
  | Some p -> Some p
  | None -> (
    match Option.bind program (fun prog -> find_process prog name) with
    | Some p -> Some p
    | None ->
      List.find_opt (fun p -> String.equal p.proc_name name) Stdproc.all)

(* Link-time splicing of precomputed per-model kernels.

   [process_linked] assembles a host kernel from already-normalized
   model kernels instead of re-normalizing every model body: an
   instance of a precomputed model is satisfied by renaming the cached
   kernel into the host namespace (locals ["label__name"], nested
   instance labels ["label__inner"]) and splicing its equations in
   place. The rename map of every splice is returned so per-model
   analysis results can be translated into the host namespace too.

   In [opaque] mode the same traversal *omits* the spliced content and
   keeps only the host-side glue: actual-input computations, data
   FIFOs, host equations and constraints. The resulting "glue kernel"
   is the host abstraction that per-process incremental analysis runs
   on (the caller injects interface summaries as extra constraints). *)
type link = {
  l_label : string;
  l_model : string;
  l_rename : (ident * ident) list;
}

type link_mode = {
  lm_pre : (string * kprocess) list;
  lm_opaque : bool;
  mutable lm_links : link list;  (* reversed *)
}

(* Normalize the body of [p] in the given scope, recursing into
   instances. [stack] guards against recursive models. *)
let rec norm_body st ~program ~stack ~lm p scope =
  let partials : (ident, Types.styp * ident list) Hashtbl.t =
    Hashtbl.create 4
  in
  let do_stmt (stmt : stmt) =
    match desc stmt with
    | Sdef (x, e) ->
      let dst = scope.rename x in
      let a = norm_expr st scope e in
      assign st dst a
    | Spartial (x, e) ->
      let dst = scope.rename x in
      let e' = subst_params scope.subst e in
      let typ = type_of scope e' in
      let a = norm_expr st scope e in
      let t = atom_ident st ?span:(span e') typ a in
      let prev =
        match Hashtbl.find_opt partials dst with
        | Some (_, l) -> l
        | None -> []
      in
      Hashtbl.replace partials dst (typ, t :: prev)
    | Sclk_eq (e1, e2) ->
      let x1 = norm_expr_ident st scope e1 in
      let x2 = norm_expr_ident st scope e2 in
      st.constraints <- Ceq (x1, x2) :: st.constraints
    | Sclk_le (e1, e2) ->
      let x1 = norm_expr_ident st scope e1 in
      let x2 = norm_expr_ident st scope e2 in
      st.constraints <- Cle (x1, x2) :: st.constraints
    | Sclk_ex (e1, e2) ->
      let x1 = norm_expr_ident st scope e1 in
      let x2 = norm_expr_ident st scope e2 in
      st.constraints <- Cex (x1, x2) :: st.constraints
    | Sinstance inst ->
      norm_instance st ~program ~stack ~lm ~sp:(span stmt) p scope inst
  in
  List.iter do_stmt p.body;
  (* Materialize partial definitions as a recorded merge. *)
  Hashtbl.iter
    (fun dst (typ, sources) ->
      let sources = List.rev sources in
      st.partials <- (dst, sources) :: st.partials;
      match sources with
      | [] -> ()
      | [ one ] -> assign st dst (Avar one)
      | first :: rest ->
        (* dst := s1 default s2 default ... *)
        let merged =
          List.fold_left
            (fun acc src ->
              let t = fresh st ~hint:"m" typ in
              emit st (Kdefault { dst = t; left = Avar acc; right = Avar src });
              t)
            first rest
        in
        assign st dst (Avar merged))
    partials

and norm_instance st ~program ~stack ~lm ~sp host scope inst =
  match Stdproc.primitive_of_name inst.inst_proc with
  | Some prim ->
    let ins = List.map (norm_expr_ident st scope) inst.inst_ins in
    let outs = List.map scope.rename inst.inst_outs in
    st.instances <-
      { ki_label = inst.inst_label; ki_prim = prim; ki_ins = ins;
        ki_outs = outs; ki_params = inst.inst_params }
      :: st.instances
  | None -> (
    match lm with
    | Some l
      when inst.inst_params = []
           && find_subprocess host inst.inst_proc = None
           && List.mem_assoc inst.inst_proc l.lm_pre ->
      (* Precomputed model, not shadowed by a subprocess and with no
         static parameters to substitute: splice the cached kernel. *)
      splice st ~sp l scope inst (List.assoc inst.inst_proc l.lm_pre)
    | _ -> (
      match resolve_model ~program ~host inst.inst_proc with
      | None -> errf_at sp "unknown process model %s" inst.inst_proc
      | Some model ->
        if List.mem model.proc_name stack then
          errf_at sp "recursive instantiation of process %s" model.proc_name;
        inline st ~program ~stack:(model.proc_name :: stack) ~lm ~sp scope
          inst model))

(* Splice a precomputed model kernel at an instance site: bind its
   interface to the actuals (same binding discipline as [inline]),
   rename its locals and nested instance labels into the host
   namespace, and replay its equations, constraints, instances and
   partial merges in order. In opaque mode only the actual-input
   computations (host-side) are kept. *)
and splice st ~sp lm outer_scope inst kp =
  if List.length inst.inst_ins <> List.length kp.kinputs then
    errf_at sp "instance %s of %s: bad input arity" inst.inst_label kp.kname;
  if List.length inst.inst_outs <> List.length kp.koutputs then
    errf_at sp "instance %s of %s: bad output arity" inst.inst_label kp.kname;
  let in_bindings =
    List.map2
      (fun vd actual ->
        let a = norm_expr st outer_scope actual in
        match a with
        | Avar x -> (vd.var_name, x)
        | Aconst _ ->
          let x = atom_ident st ?span:(span actual) vd.var_type a in
          (vd.var_name, x))
      kp.kinputs inst.inst_ins
  in
  let out_bindings =
    List.map2
      (fun vd actual -> (vd.var_name, outer_scope.rename actual))
      kp.koutputs inst.inst_outs
  in
  let local_bindings =
    if lm.lm_opaque then []
    else
      List.map
        (fun vd ->
          let rec pick k =
            let name =
              if k = 0 then
                Printf.sprintf "%s__%s" inst.inst_label vd.var_name
              else
                Printf.sprintf "%s__%s_%d" inst.inst_label vd.var_name k
            in
            if Hashtbl.mem st.used name then pick (k + 1) else name
          in
          let name = pick 0 in
          Hashtbl.replace st.used name ();
          st.locals <-
            { var_name = name; var_type = vd.var_type;
              var_mark = Mparsed (mark_span vd.var_mark) }
            :: st.locals;
          (vd.var_name, name))
        kp.klocals
  in
  let renaming = in_bindings @ out_bindings @ local_bindings in
  let tbl = Hashtbl.create (2 * List.length renaming) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) renaming;
  let rn x = match Hashtbl.find_opt tbl x with Some y -> y | None -> x in
  let rn_atom = function Avar x -> Avar (rn x) | Aconst _ as a -> a in
  if not lm.lm_opaque then begin
    List.iter
      (fun eq ->
        emit st
          (match eq with
           | Kfunc f ->
             Kfunc { f with dst = rn f.dst; args = List.map rn_atom f.args }
           | Kdelay d -> Kdelay { d with dst = rn d.dst; src = rn d.src }
           | Kwhen w ->
             Kwhen { dst = rn w.dst; src = rn_atom w.src;
                     cond = rn_atom w.cond }
           | Kdefault d ->
             Kdefault { dst = rn d.dst; left = rn_atom d.left;
                        right = rn_atom d.right }))
      kp.keqs;
    List.iter
      (fun c ->
        st.constraints <-
          (match c with
           | Ceq (a, b) -> Ceq (rn a, rn b)
           | Cle (a, b) -> Cle (rn a, rn b)
           | Cex (a, b) -> Cex (rn a, rn b))
          :: st.constraints)
      kp.kconstraints;
    List.iter
      (fun ki ->
        st.instances <-
          { ki with ki_label = inst.inst_label ^ "__" ^ ki.ki_label;
            ki_ins = List.map rn ki.ki_ins;
            ki_outs = List.map rn ki.ki_outs }
          :: st.instances)
      kp.kinstances;
    List.iter
      (fun (d, srcs) ->
        st.partials <- (rn d, List.map rn srcs) :: st.partials)
      kp.kpartials
  end;
  lm.lm_links <-
    { l_label = inst.inst_label; l_model = kp.kname; l_rename = renaming }
    :: lm.lm_links

(* Inline a non-primitive instance: bind actual inputs/outputs, rename
   locals with a fresh prefix, substitute static parameters. *)
and inline st ~program ~stack ~lm ~sp outer_scope inst model =
  if List.length inst.inst_ins <> List.length model.inputs then
    errf_at sp "instance %s of %s: bad input arity" inst.inst_label
      model.proc_name;
  if List.length inst.inst_outs <> List.length model.outputs then
    errf_at sp "instance %s of %s: bad output arity" inst.inst_label
      model.proc_name;
  if List.length inst.inst_params <> List.length model.params then
    errf_at sp "instance %s of %s: bad parameter arity" inst.inst_label
      model.proc_name;
  let params_bound =
    List.map2 (fun vd v -> (vd.var_name, v)) model.params inst.inst_params
  in
  (* Bind each formal input to a signal carrying the actual value. *)
  let in_bindings =
    List.map2
      (fun vd actual ->
        let a = norm_expr st outer_scope actual in
        match a with
        | Avar x -> (vd.var_name, x)
        | Aconst _ ->
          let x = atom_ident st ?span:(span actual) vd.var_type a in
          (vd.var_name, x))
      model.inputs inst.inst_ins
  in
  let out_bindings =
    List.map2
      (fun vd actual -> (vd.var_name, outer_scope.rename actual))
      model.outputs inst.inst_outs
  in
  (* Fresh names for locals; the renamed declaration keeps the model
     declaration's span. *)
  let local_bindings =
    List.map
      (fun vd ->
        let rec pick k =
          let name =
            if k = 0 then Printf.sprintf "%s__%s" inst.inst_label vd.var_name
            else Printf.sprintf "%s__%s_%d" inst.inst_label vd.var_name k
          in
          if Hashtbl.mem st.used name then pick (k + 1) else name
        in
        let name = pick 0 in
        Hashtbl.replace st.used name ();
        st.locals <-
          { var_name = name; var_type = vd.var_type;
            var_mark = Mparsed (mark_span vd.var_mark) }
          :: st.locals;
        (vd.var_name, name))
      model.locals
  in
  let renaming = in_bindings @ out_bindings @ local_bindings in
  let rename x =
    match List.assoc_opt x renaming with
    | Some y -> y
    | None -> x  (* parameters are substituted, not renamed *)
  in
  let inner_scope =
    { rename;
      tenv = scope_env model params_bound;
      subst = params_bound }
  in
  norm_body st ~program ~stack ~lm model inner_scope

let process_gen ?program ?(params = []) ~lm p =
  (* Accept any phase: demote to parsed (spans survive) so the library
     models — which are parsed — mix freely with the input. *)
  let program = Option.map to_parsed_program program in
  let p = to_parsed_process p in
  let st =
    { counter = 0; used = Hashtbl.create 64; locals = []; eqs = [];
      constraints = []; instances = []; partials = [] }
  in
  try
    if List.length params <> List.length p.params then
      errf "process %s expects %d static parameters, %d given" p.proc_name
        (List.length p.params) (List.length params);
    let params_bound =
      List.map2 (fun vd v -> (vd.var_name, v)) p.params params
    in
    List.iter
      (fun vd -> Hashtbl.replace st.used vd.var_name ())
      (p.inputs @ p.outputs @ p.locals);
    st.locals <- List.rev p.locals;
    let scope =
      { rename = (fun x -> x); tenv = scope_env p params_bound;
        subst = params_bound }
    in
    norm_body st ~program ~stack:[ p.proc_name ] ~lm p scope;
    (* Generated temporaries were prepended; declared locals were seeded
       first, so a single reverse restores declaration order. *)
    let declared = List.map (fun vd -> vd.var_name) p.locals in
    let gen_locals =
      List.filter (fun vd -> not (List.mem vd.var_name declared)) st.locals
    in
    Ok
      { kname = p.proc_name;
        kinputs = List.map remark_norm p.inputs;
        koutputs = List.map remark_norm p.outputs;
        klocals = List.map remark_norm (p.locals @ List.rev gen_locals);
        keqs = List.rev st.eqs;
        kconstraints = List.rev st.constraints;
        kinstances = List.rev st.instances;
        kpartials = List.rev st.partials }
  with Error (sp, m) ->
    Error
      (Putil.Diag.errorf ?span:sp ~code:code_norm "normalize %s: %s"
         p.proc_name m)

let process ?program ?params p = process_gen ?program ?params ~lm:None p

type linked = {
  lk_kernel : kprocess;
  lk_glue : kprocess;
  lk_links : link list;
}

let process_linked ?program ~precomputed p =
  let run ~opaque :
      (kprocess * link list, Putil.Diag.t) result =
    let lm = { lm_pre = precomputed; lm_opaque = opaque; lm_links = [] } in
    match process_gen ?program ~lm:(Some lm) p with
    | Ok kp -> Ok (kp, List.rev lm.lm_links)
    | Error d -> Error d
  in
  match run ~opaque:false with
  | Error d -> Stdlib.Error d
  | Ok (kernel, links) -> (
    (* The glue traversal repeats only the host-side work; host temp
       numbering is identical in both runs, so interface bindings in
       [links] are valid for the glue kernel too. *)
    match run ~opaque:true with
    | Error d -> Stdlib.Error d
    | Ok (glue, _) ->
      Ok { lk_kernel = kernel; lk_glue = glue; lk_links = links })

let process_exn ?program ?params p =
  match process ?program ?params p with
  | Ok kp -> kp
  | Error d -> raise (Normalize_error d)
