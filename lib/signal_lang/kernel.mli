(** Kernel normal form of SIGNAL processes.

    Every equation is three-address over {e atoms} (signal names or
    constants). Non-primitive process instances are inlined; primitive
    (simulator-native) instances are kept as nodes. This is the common
    input of the clock calculus, the static analyses and the simulator. *)

type atom =
  | Avar of Ast.ident
  | Aconst of Types.value

(** Step-wise (single-instant) operators. *)
type prim =
  | Punop of Ast.unop
  | Pbinop of Ast.binop
  | Pif              (** 3 args: condition, then, else — synchronous *)
  | Pid              (** copy *)
  | Pclock           (** [^x] : event extraction, synchronous with arg *)

type keq =
  | Kfunc of { dst : Ast.ident; op : prim; args : atom list }
  | Kdelay of { dst : Ast.ident; src : Ast.ident; init : Types.value }
  | Kwhen of { dst : Ast.ident; src : atom; cond : atom }
  | Kdefault of { dst : Ast.ident; left : atom; right : atom }

type kconstraint =
  | Ceq of Ast.ident * Ast.ident  (** synchronous signals *)
  | Cle of Ast.ident * Ast.ident  (** clock inclusion *)
  | Cex of Ast.ident * Ast.ident  (** clock exclusion *)

(** A primitive instance kept as a black box; its inputs have been
    flattened to signal names. *)
type kinstance = {
  ki_label : string;
  ki_prim : Stdproc.primitive;
  ki_ins : Ast.ident list;
  ki_outs : Ast.ident list;
  ki_params : Types.value list;
}

type kprocess = {
  kname : string;
  kinputs : Ast.nvardecl list;
  koutputs : Ast.nvardecl list;
  klocals : Ast.nvardecl list;  (** declared locals and generated temps *)
  keqs : keq list;
  kconstraints : kconstraint list;
  kinstances : kinstance list;
  kpartials : (Ast.ident * Ast.ident list) list;
      (** signals defined by merging partial definitions, with the
          temporaries holding each branch, in source order *)
}

val atom_type :
  (Ast.ident -> Types.styp option) -> atom -> Types.styp option

val signals : kprocess -> Ast.nvardecl list
(** All signals of the process: inputs, outputs, locals. *)

val digest : kprocess -> string
(** Structural digest (16 raw bytes): structurally equal processes
    yield equal digests. Keys the clock-analysis and compilation memo
    tables, so repeated pipeline runs over one kernel analyze it
    once. *)

(** {1 Indexed signal table}

    Dense per-process indexing of the declared signals, in {!signals}
    order. Names are interned ({!Putil.Symbol}) so lookup is a flat
    array read; the simulator, the compiler and the clock calculus all
    key their per-signal state on these indices. *)

type sigtab

val sigtab : kprocess -> sigtab

val st_count : sigtab -> int
val st_sym : sigtab -> int -> Putil.Symbol.t

val st_uid : sigtab -> int -> Putil.Uid.Signal.t
(** The signal's interned {!Putil.Uid.Signal} identity — the key the
    traceability map uses. *)

val st_name : sigtab -> int -> Ast.ident
val st_decl : sigtab -> int -> Ast.nvardecl
val st_index_sym : sigtab -> Putil.Symbol.t -> int option
val st_index_opt : sigtab -> Ast.ident -> int option

val st_index_exn : sigtab -> Ast.ident -> int
(** @raise Not_found for undeclared signals. *)

val defined_by : kprocess -> Ast.ident -> keq list
(** Equations whose destination is the given signal. *)

val pp_keq : Format.formatter -> keq -> unit
val pp_kprocess : Format.formatter -> kprocess -> unit
