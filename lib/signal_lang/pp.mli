(** Pretty-printer to SIGNAL concrete syntax.

    The output follows the Polychrony textual style:
    {[
      process thProducer =
        ( ? event Dispatch;
          ! integer pOut; )
        (| pOut := z + 1
         | z := pOut $ 1 init 0
         |)
        where
          integer z;
        end;
    ]} *)

val unop_to_string : Ast.unop -> string
val binop_to_string : Ast.binop -> string

(** Printing is mark-insensitive: the printers accept any phase. *)

val pp_expr : Format.formatter -> 'p Ast.gexpr -> unit
val pp_stmt : Format.formatter -> 'p Ast.gstmt -> unit
val pp_process : Format.formatter -> 'p Ast.gprocess -> unit
val pp_program : Format.formatter -> 'p Ast.gprogram -> unit

val expr_to_string : 'p Ast.gexpr -> string
val stmt_to_string : 'p Ast.gstmt -> string
val process_to_string : 'p Ast.gprocess -> string
val program_to_string : 'p Ast.gprogram -> string
