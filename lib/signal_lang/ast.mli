(** Abstract syntax of the SIGNAL subset used by the AADL translation.

    The language is the polychronous kernel of SIGNAL (Le Guernic et
    al., "Polychrony for System Design"): step-wise functions, delay,
    sampling ([when]), deterministic merge ([default]), clock
    constraints, partial definitions and process composition.

    The AST is {e phase-indexed and marked}, in the style of the
    Catala compiler's [gexpr]: every node is a pair of a description
    and a mark, and the phase type parameter selects what the mark
    carries. Stages of the toolchain are mark-transforming total
    functions — [parsed] trees carry source spans, [Typecheck.type_program]
    re-marks them as [typed] trees carrying inferred types, the
    normalizer emits kernel declarations with [normalized] marks, and
    the clock calculus can re-mark declarations as [clocked]. *)

type ident = string

(** {1 Phases and marks} *)

type parsed = |
type typed = |
type normalized = |
type clocked = |

type bare = |
(** The phase of mark-stripped skeletons ({!strip_program}):
    structural equality and marshalling on [bare] trees are
    mark-insensitive. *)

type _ mark =
  | Mparsed : Putil.Diag.span option -> parsed mark
      (** source span of the construct, when known *)
  | Mtyped : Putil.Diag.span option * Types.styp option -> typed mark
      (** span, plus the inferred type ([None] on ill-typed nodes) *)
  | Mnorm : Putil.Diag.span option -> normalized mark
      (** span of the source construct a kernel declaration flattens *)
  | Mclocked : Putil.Diag.span option * int option -> clocked mark
      (** span, plus the clock-calculus class of the signal *)
  | Mbare : bare mark

val mark_span : 'p mark -> Putil.Diag.span option
val mark_ty : 'p mark -> Types.styp option
val mark_clock : 'p mark -> int option

val with_span : 'p mark -> Putil.Diag.span option -> 'p mark
(** Replace the span, keeping the phase and its other payload. *)

(** {1 The phase-indexed AST} *)

type unop =
  | Not
  | Neg

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor
  | Eq | Neq | Lt | Le | Gt | Ge

type 'p gexpr = 'p gexpr_desc * 'p mark

and 'p gexpr_desc =
  | Econst of Types.value
  | Evar of ident
  | Eunop of unop * 'p gexpr
  | Ebinop of binop * 'p gexpr * 'p gexpr
  | Eif of 'p gexpr * 'p gexpr * 'p gexpr
      (** synchronous conditional: all three operands share one clock *)
  | Edelay of 'p gexpr * Types.value  (** [e $ 1 init v] *)
  | Ewhen of 'p gexpr * 'p gexpr      (** [e when b]: e sampled where b true *)
  | Edefault of 'p gexpr * 'p gexpr   (** [e default f]: e, else f *)
  | Eclock of 'p gexpr                (** [^e]: event clock of e *)

(** A statement of a process body. *)
type 'p gstmt = 'p gstmt_desc * 'p mark

and 'p gstmt_desc =
  | Sdef of ident * 'p gexpr       (** [x := e] total definition *)
  | Spartial of ident * 'p gexpr   (** [x ::= e] partial definition *)
  | Sclk_eq of 'p gexpr * 'p gexpr (** [e1 ^= e2] synchrony constraint *)
  | Sclk_le of 'p gexpr * 'p gexpr (** [e1 ^< e2] clock inclusion *)
  | Sclk_ex of 'p gexpr * 'p gexpr (** [e1 ^# e2] clock exclusion *)
  | Sinstance of 'p ginstance      (** sub-process instantiation *)

and 'p ginstance = {
  inst_label : string;        (** unique label, used for traceability *)
  inst_proc : ident;          (** name of the instantiated process model *)
  inst_ins : 'p gexpr list;   (** actual input expressions, positional *)
  inst_outs : ident list;     (** signals receiving the outputs *)
  inst_params : Types.value list;  (** static parameters, e.g. FIFO size *)
}

type 'p gvardecl = {
  var_name : ident;
  var_type : Types.styp;
  var_mark : 'p mark;
      (** for generated code, the span points at the source AADL
          construct the declaration translates *)
}

type 'p gprocess = {
  proc_name : ident;
  params : 'p gvardecl list;       (** static (constant) parameters *)
  inputs : 'p gvardecl list;
  outputs : 'p gvardecl list;
  locals : 'p gvardecl list;
  body : 'p gstmt list;
  subprocesses : 'p gprocess list; (** local process models, in scope *)
  pragmas : (string * string) list;
      (** free-form annotations; used for AADL traceability *)
}

type 'p gprogram = {
  prog_name : ident;
  processes : 'p gprocess list;    (** global process models *)
}

(** {1 Default-phase aliases}

    The parser and the AADL translator produce [parsed] trees; these
    aliases keep their signatures short. *)

type expr = parsed gexpr
type stmt = parsed gstmt
type instance = parsed ginstance
type vardecl = parsed gvardecl
type process = parsed gprocess
type program = parsed gprogram

type nvardecl = normalized gvardecl
(** Kernel-form declarations ({!Kernel.kprocess}). *)

(** {1 Node and mark access} *)

val desc : 'd * 'p mark -> 'd
(** Works on expressions and statements: both are description/mark
    pairs. *)

val mark : 'a * 'p mark -> 'p mark
val span : 'a * 'p mark -> Putil.Diag.span option

val mk : parsed gexpr_desc -> expr
(** Wrap a description with an empty parsed mark. *)

val mk_at : Putil.Diag.span option -> parsed gexpr_desc -> expr

val var : ident -> Types.styp -> vardecl
(** A declaration with no source position. *)

val var_at : span:Putil.Diag.span -> ident -> Types.styp -> vardecl

val nvar : ?span:Putil.Diag.span -> ident -> Types.styp -> nvardecl
(** A kernel-form declaration (used by hand-built kernels in tests). *)

val remark_norm : 'p gvardecl -> nvardecl
(** Re-mark a declaration into the normalized phase, keeping its span. *)

val empty_process : ident -> process
(** A process with the given name and no content. *)

val find_process : 'p gprogram -> ident -> 'p gprocess option
(** Global lookup by name. *)

val find_subprocess : 'p gprocess -> ident -> 'p gprocess option
(** Lookup among a process's local models. *)

val free_signals : 'p gexpr -> ident list
(** Signal names read by an expression (without duplicates, sorted). *)

val defined_signals : 'p gstmt list -> ident list
(** Names defined by [Sdef], [Spartial] or instance outputs (sorted,
    without duplicates). *)

val stmt_reads : 'p gstmt -> ident list
(** Signal names read by a statement (sorted, without duplicates). *)

val rename_expr : (ident -> ident) -> 'p gexpr -> 'p gexpr
val rename_stmt : (ident -> ident) -> 'p gstmt -> 'p gstmt

(** {1 Mark-erasing and mark-demoting copies} *)

val strip_expr : 'p gexpr -> bare gexpr
val strip_stmt : 'p gstmt -> bare gstmt
val strip_process : 'p gprocess -> bare gprocess
val strip_program : 'p gprogram -> bare gprogram

val to_parsed_expr : 'p gexpr -> expr
val to_parsed_stmt : 'p gstmt -> stmt
val to_parsed_vardecl : 'p gvardecl -> vardecl
val to_parsed_process : 'p gprocess -> process
val to_parsed_program : 'p gprogram -> program
(** Demote to the parsed phase, keeping source spans. *)

val equal_expr : 'p gexpr -> 'q gexpr -> bool
(** Mark-insensitive structural equality. *)

val compare_expr : 'p gexpr -> 'q gexpr -> int
val equal_process : 'p gprocess -> 'q gprocess -> bool
val equal_program : 'p gprogram -> 'q gprogram -> bool

(** {1 Digests} *)

val program_digest : 'p gprogram -> string
(** Structural digest (16 raw bytes), marks included: keys the
    per-stage memoization of incremental recompute. Conservative — a
    position-only change alters the digest, which keeps replayed
    diagnostics accurate. *)

val program_semantic_digest : 'p gprogram -> string
(** Digest of the mark-stripped skeleton: identifies programs up to
    positions and phase annotations. *)

val process_digest : 'p gprocess -> string
(** Per-process structural digest (16 raw bytes), marks included: keys
    the process-granular memoization of incremental recompute. *)

val process_semantic_digest : 'p gprocess -> string
(** Per-process digest of the mark-stripped skeleton: identifies a
    process up to positions and phase annotations, so a position-only
    shift in one process leaves every process's semantic digest
    unchanged. *)

val expr_size : 'p gexpr -> int
(** Number of AST nodes, used by profiling and benches. *)

val process_size : 'p gprocess -> int
(** Total number of statements, including subprocesses. *)
