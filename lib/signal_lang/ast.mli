(** Abstract syntax of the SIGNAL subset used by the AADL translation.

    The language is the polychronous kernel of SIGNAL (Le Guernic et
    al., "Polychrony for System Design"): step-wise functions, delay,
    sampling ([when]), deterministic merge ([default]), clock
    constraints, partial definitions and process composition. *)

type ident = string

type unop =
  | Not
  | Neg

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor
  | Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | Econst of Types.value
  | Evar of ident
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eif of expr * expr * expr
      (** synchronous conditional: all three operands share one clock *)
  | Edelay of expr * Types.value  (** [e $ 1 init v] *)
  | Ewhen of expr * expr          (** [e when b]: e sampled where b true *)
  | Edefault of expr * expr       (** [e default f]: e, else f *)
  | Eclock of expr                (** [^e]: event clock of e *)

(** A statement of a process body. *)
type stmt =
  | Sdef of ident * expr       (** [x := e] total definition *)
  | Spartial of ident * expr   (** [x ::= e] partial definition *)
  | Sclk_eq of expr * expr     (** [e1 ^= e2] synchrony constraint *)
  | Sclk_le of expr * expr     (** [e1 ^< e2] clock inclusion *)
  | Sclk_ex of expr * expr     (** [e1 ^# e2] clock exclusion *)
  | Sinstance of instance      (** sub-process instantiation *)

and instance = {
  inst_label : string;       (** unique label, used for traceability *)
  inst_proc : ident;          (** name of the instantiated process model *)
  inst_ins : expr list;       (** actual input expressions, positional *)
  inst_outs : ident list;     (** signals receiving the outputs *)
  inst_params : Types.value list;  (** static parameters, e.g. FIFO size *)
}

type vardecl = {
  var_name : ident;
  var_type : Types.styp;
  var_loc : (int * int) option;
      (** (line, column) of the declaration that produced this signal —
          for generated code, the position of the source AADL construct *)
}

type process = {
  proc_name : ident;
  params : vardecl list;       (** static (constant) parameters *)
  inputs : vardecl list;
  outputs : vardecl list;
  locals : vardecl list;
  body : stmt list;
  subprocesses : process list; (** local process models, in scope of body *)
  pragmas : (string * string) list;
      (** free-form annotations; used for AADL traceability *)
}

type program = {
  prog_name : ident;
  processes : process list;    (** global process models *)
}

val var : ident -> Types.styp -> vardecl
(** A declaration with no source position. *)

val var_at : loc:(int * int) -> ident -> Types.styp -> vardecl

val empty_process : ident -> process
(** A process with the given name and no content. *)

val find_process : program -> ident -> process option
(** Global lookup by name. *)

val find_subprocess : process -> ident -> process option
(** Lookup among a process's local models. *)

val free_signals : expr -> ident list
(** Signal names read by an expression (without duplicates, sorted). *)

val defined_signals : stmt list -> ident list
(** Names defined by [Sdef], [Spartial] or instance outputs (sorted,
    without duplicates). *)

val stmt_reads : stmt -> ident list
(** Signal names read by a statement (sorted, without duplicates). *)

val rename_expr : (ident -> ident) -> expr -> expr
val rename_stmt : (ident -> ident) -> stmt -> stmt

val equal_expr : expr -> expr -> bool
val compare_expr : expr -> expr -> int

val expr_size : expr -> int
(** Number of AST nodes, used by profiling and benches. *)

val process_size : process -> int
(** Total number of statements, including subprocesses. *)
