open Ast

type error = {
  err_proc : string;
  err_msg : string;
  err_code : string;
  err_signal : string option;
}

(* Stable SIGNAL typing codes. *)
let code_dup_decl =
  Putil.Diag.code "SIG-TYPE-001" "duplicate declaration in a process interface"
let code_undeclared =
  Putil.Diag.code "SIG-TYPE-002" "undeclared signal referenced or defined"
let code_def_input =
  Putil.Diag.code "SIG-TYPE-003" "definition of an input or parameter"
let code_multi_def =
  Putil.Diag.code "SIG-TYPE-004" "conflicting definitions of a signal"
let code_expr = Putil.Diag.code "SIG-TYPE-005" "ill-typed expression"
let code_instance =
  Putil.Diag.code "SIG-TYPE-006" "ill-formed process instance"
let code_undefined =
  Putil.Diag.code "SIG-TYPE-007" "output or local signal is never defined"

let pp_error ppf e =
  Format.fprintf ppf "process %s: %s" e.err_proc e.err_msg

let error_to_string e = Format.asprintf "%a" pp_error e

(* [event] promotes to [boolean]. *)
let compatible expected actual =
  expected = actual || (expected = Types.Tbool && actual = Types.Tevent)

let join t1 t2 =
  if t1 = t2 then Some t1
  else
    match t1, t2 with
    | Types.Tbool, Types.Tevent | Types.Tevent, Types.Tbool -> Some Types.Tbool
    | _ -> None

let type_of_expr env expr =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let rec infer e =
    match desc e with
    | Econst v -> Ok (Types.type_of_value v)
    | Evar x -> (
      match env x with
      | Some t -> Ok t
      | None -> err "undeclared signal %s" x)
    | Eunop (Not, e) ->
      let* t = infer e in
      if compatible Types.Tbool t then Ok Types.Tbool
      else err "operand of 'not' has type %s" (Types.styp_to_string t)
    | Eunop (Neg, e) ->
      let* t = infer e in
      (match t with
       | Types.Tint | Types.Treal -> Ok t
       | _ -> err "operand of unary '-' has type %s" (Types.styp_to_string t))
    | Ebinop ((Add | Sub | Mul | Div | Mod) as op, e1, e2) ->
      let* t1 = infer e1 in
      let* t2 = infer e2 in
      (match t1, t2 with
       | Types.Tint, Types.Tint -> Ok Types.Tint
       | Types.Treal, Types.Treal when op <> Mod -> Ok Types.Treal
       | _ ->
         err "arithmetic on %s and %s"
           (Types.styp_to_string t1) (Types.styp_to_string t2))
    | Ebinop ((And | Or | Xor), e1, e2) ->
      let* t1 = infer e1 in
      let* t2 = infer e2 in
      if compatible Types.Tbool t1 && compatible Types.Tbool t2 then
        Ok Types.Tbool
      else
        err "boolean operator on %s and %s"
          (Types.styp_to_string t1) (Types.styp_to_string t2)
    | Ebinop ((Eq | Neq | Lt | Le | Gt | Ge), e1, e2) ->
      let* t1 = infer e1 in
      let* t2 = infer e2 in
      (match join t1 t2 with
       | Some _ -> Ok Types.Tbool
       | None ->
         err "comparison of %s and %s"
           (Types.styp_to_string t1) (Types.styp_to_string t2))
    | Eif (c, t, f) ->
      let* tc = infer c in
      if not (compatible Types.Tbool tc) then
        err "condition of 'if' has type %s" (Types.styp_to_string tc)
      else
        let* tt = infer t in
        let* tf = infer f in
        (match join tt tf with
         | Some ty -> Ok ty
         | None ->
           err "branches of 'if' have types %s and %s"
             (Types.styp_to_string tt) (Types.styp_to_string tf))
    | Edelay (e, init) ->
      let* t = infer e in
      let ti = Types.type_of_value init in
      (match join t ti with
       | Some ty -> Ok ty
       | None ->
         err "delay of %s initialised with %s"
           (Types.styp_to_string t) (Types.styp_to_string ti))
    | Ewhen (e, b) ->
      let* tb = infer b in
      if not (compatible Types.Tbool tb) then
        err "sampling condition has type %s" (Types.styp_to_string tb)
      else infer e
    | Edefault (e1, e2) ->
      let* t1 = infer e1 in
      let* t2 = infer e2 in
      (match join t1 t2 with
       | Some ty -> Ok ty
       | None ->
         err "merge of %s and %s"
           (Types.styp_to_string t1) (Types.styp_to_string t2))
    | Eclock _ -> Ok Types.Tevent
  in
  infer expr

module SMap = Map.Make (String)

let declared_env p =
  let add acc vd = SMap.add vd.var_name vd.var_type acc in
  let env = List.fold_left add SMap.empty p.params in
  let env = List.fold_left add env p.inputs in
  let env = List.fold_left add env p.outputs in
  List.fold_left add env p.locals

(* Resolve a process-model name: local subprocesses shadow global
   models, which shadow the AADL2SIGNAL library. *)
let resolve_model ~program ~host name =
  match find_subprocess host name with
  | Some p -> Some p
  | None -> (
    match Option.bind program (fun prog -> find_process prog name) with
    | Some p -> Some p
    | None -> List.find_opt (fun p -> String.equal p.proc_name name) Stdproc.all)

let rec check_process ?program p =
  let errors = ref [] in
  let err ?signal ~code fmt =
    Format.kasprintf
      (fun m ->
        errors :=
          { err_proc = p.proc_name; err_msg = m; err_code = code;
            err_signal = signal }
          :: !errors)
      fmt
  in
  (* 1. distinct declarations *)
  let all_decls = p.params @ p.inputs @ p.outputs @ p.locals in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun vd ->
      if Hashtbl.mem seen vd.var_name then
        err ~signal:vd.var_name ~code:code_dup_decl
          "duplicate declaration of %s" vd.var_name
      else Hashtbl.add seen vd.var_name ())
    all_decls;
  let env = declared_env p in
  let lookup x = SMap.find_opt x env in
  let is_input x =
    List.exists (fun vd -> String.equal vd.var_name x) p.inputs
    || List.exists (fun vd -> String.equal vd.var_name x) p.params
  in
  (* 2. definition discipline *)
  let total = Hashtbl.create 16 and partial = Hashtbl.create 16 in
  let record_def ~partial:is_partial x =
    if not (SMap.mem x env) then
      err ~signal:x ~code:code_undeclared
        "definition of undeclared signal %s" x
    else if is_input x then
      err ~signal:x ~code:code_def_input
        "definition of input or parameter %s" x
    else if is_partial then Hashtbl.replace partial x ()
    else if Hashtbl.mem total x then
      err ~signal:x ~code:code_multi_def "signal %s defined twice" x
    else Hashtbl.replace total x ()
  in
  let check_expr e =
    match type_of_expr lookup e with
    | Ok _ -> ()
    | Error m -> err ~code:code_expr "%s" m
  in
  let check_expr_against ?signal ~what expected e =
    match type_of_expr lookup e with
    | Ok t ->
      if not (compatible expected t || join expected t <> None) then
        err ?signal ~code:code_expr "%s: expected %s, got %s" what
          (Types.styp_to_string expected) (Types.styp_to_string t)
    | Error m -> err ?signal ~code:code_expr "%s" m
  in
  let check_stmt (st : stmt) =
    match desc st with
    | Sdef (x, e) ->
      record_def ~partial:false x;
      (match lookup x with
       | Some tx ->
         check_expr_against ~signal:x ~what:("definition of " ^ x) tx e
       | None -> check_expr e)
    | Spartial (x, e) ->
      record_def ~partial:true x;
      (match lookup x with
       | Some tx ->
         check_expr_against ~signal:x
           ~what:("partial definition of " ^ x) tx e
       | None -> check_expr e)
    | Sclk_eq (e1, e2) | Sclk_le (e1, e2) | Sclk_ex (e1, e2) ->
      check_expr e1; check_expr e2
    | Sinstance inst -> (
      List.iter check_expr inst.inst_ins;
      List.iter (fun x -> record_def ~partial:false x) inst.inst_outs;
      match resolve_model ~program ~host:p inst.inst_proc with
      | None ->
        err ~code:code_instance "instance %s: unknown process %s"
          inst.inst_label inst.inst_proc
      | Some model ->
        if List.length inst.inst_ins <> List.length model.inputs then
          err ~code:code_instance
            "instance %s of %s: %d inputs given, %d expected"
            inst.inst_label inst.inst_proc
            (List.length inst.inst_ins) (List.length model.inputs);
        if List.length inst.inst_outs <> List.length model.outputs then
          err ~code:code_instance
            "instance %s of %s: %d outputs given, %d expected"
            inst.inst_label inst.inst_proc
            (List.length inst.inst_outs) (List.length model.outputs);
        if List.length inst.inst_params <> List.length model.params then
          err ~code:code_instance
            "instance %s of %s: %d params given, %d expected"
            inst.inst_label inst.inst_proc
            (List.length inst.inst_params) (List.length model.params);
        List.iteri
          (fun k e ->
            match List.nth_opt model.inputs k with
            | Some vd ->
              check_expr_against
                ~what:(Printf.sprintf "instance %s input %s" inst.inst_label
                         vd.var_name)
                vd.var_type e
            | None -> ())
          inst.inst_ins;
        List.iteri
          (fun k x ->
            match List.nth_opt model.outputs k, lookup x with
            | Some vd, Some tx ->
              if join vd.var_type tx = None then
                err ~signal:x ~code:code_instance
                  "instance %s output %s: %s connected to %s of type %s"
                  inst.inst_label vd.var_name
                  (Types.styp_to_string vd.var_type) x (Types.styp_to_string tx)
            | _, None | None, _ -> ())
          inst.inst_outs)
  in
  List.iter check_stmt p.body;
  (* 3. totality: every output/local is defined somehow; primitive
     models (simulator-native value semantics) are exempt *)
  let is_primitive = List.mem_assoc "primitive" p.pragmas in
  let is_defined x = Hashtbl.mem total x || Hashtbl.mem partial x in
  if not is_primitive then begin
    List.iter
      (fun vd ->
        if not (is_defined vd.var_name) then
          err ~signal:vd.var_name ~code:code_undefined
            "output %s is never defined" vd.var_name)
      p.outputs;
    List.iter
      (fun vd ->
        if not (is_defined vd.var_name) then
          err ~signal:vd.var_name ~code:code_undefined
            "local %s is never defined" vd.var_name)
      p.locals
  end;
  Hashtbl.iter
    (fun x () ->
      if Hashtbl.mem partial x then
        err ~signal:x ~code:code_multi_def
          "signal %s has both total and partial definitions" x)
    total;
  (* 4. recurse into local models *)
  let sub_errors =
    List.concat_map (fun sub -> check_process ?program sub) p.subprocesses
  in
  List.rev !errors @ sub_errors

let check_program prog =
  List.concat_map (fun p -> check_process ~program:prog p) prog.processes

let is_well_typed prog = check_program prog = []

(* ------------------------- type annotation ------------------------ *)

(* Mark-transforming elaboration: re-mark a parsed tree as [typed],
   attaching the inferred type to every expression node. Best-effort
   and total — ill-typed nodes get [None]; the error list comes from
   [check_program], which callers run first. *)

let rec annotate env (e : expr) : typed gexpr =
  let sp = span e in
  let ty e' = mark_ty (mark e') in
  match desc e with
  | Econst v -> (Econst v, Mtyped (sp, Some (Types.type_of_value v)))
  | Evar x -> (Evar x, Mtyped (sp, env x))
  | Eunop (op, e1) ->
    let e1' = annotate env e1 in
    let t =
      match op with
      | Not -> Some Types.Tbool
      | Neg -> ty e1'
    in
    (Eunop (op, e1'), Mtyped (sp, t))
  | Ebinop (op, e1, e2) ->
    let e1' = annotate env e1 and e2' = annotate env e2 in
    let t =
      match op with
      | Add | Sub | Mul | Div | Mod -> (
        match ty e1', ty e2' with
        | Some Types.Tint, Some Types.Tint -> Some Types.Tint
        | Some Types.Treal, Some Types.Treal when op <> Mod ->
          Some Types.Treal
        | _ -> None)
      | And | Or | Xor -> Some Types.Tbool
      | Eq | Neq | Lt | Le | Gt | Ge -> Some Types.Tbool
    in
    (Ebinop (op, e1', e2'), Mtyped (sp, t))
  | Eif (c, t, f) ->
    let c' = annotate env c and t' = annotate env t and f' = annotate env f in
    let tt =
      match ty t', ty f' with
      | Some a, Some b -> join a b
      | _ -> None
    in
    (Eif (c', t', f'), Mtyped (sp, tt))
  | Edelay (e1, init) ->
    let e1' = annotate env e1 in
    let t =
      match ty e1' with
      | Some a -> join a (Types.type_of_value init)
      | None -> None
    in
    (Edelay (e1', init), Mtyped (sp, t))
  | Ewhen (e1, b) ->
    let e1' = annotate env e1 and b' = annotate env b in
    (Ewhen (e1', b'), Mtyped (sp, ty e1'))
  | Edefault (e1, e2) ->
    let e1' = annotate env e1 and e2' = annotate env e2 in
    let t =
      match ty e1', ty e2' with
      | Some a, Some b -> join a b
      | Some a, None | None, Some a -> Some a
      | None, None -> None
    in
    (Edefault (e1', e2'), Mtyped (sp, t))
  | Eclock e1 ->
    (Eclock (annotate env e1), Mtyped (sp, Some Types.Tevent))

let annotate_stmt env (st : stmt) : typed gstmt =
  let sp = span st in
  let d =
    match desc st with
    | Sdef (x, e) -> Sdef (x, annotate env e)
    | Spartial (x, e) -> Spartial (x, annotate env e)
    | Sclk_eq (e1, e2) -> Sclk_eq (annotate env e1, annotate env e2)
    | Sclk_le (e1, e2) -> Sclk_le (annotate env e1, annotate env e2)
    | Sclk_ex (e1, e2) -> Sclk_ex (annotate env e1, annotate env e2)
    | Sinstance i ->
      Sinstance
        { inst_label = i.inst_label; inst_proc = i.inst_proc;
          inst_ins = List.map (annotate env) i.inst_ins;
          inst_outs = i.inst_outs; inst_params = i.inst_params }
  in
  (d, Mtyped (sp, None))

let annotate_vardecl (vd : vardecl) : typed gvardecl =
  { var_name = vd.var_name; var_type = vd.var_type;
    var_mark = Mtyped (mark_span vd.var_mark, Some vd.var_type) }

let rec type_process (p : process) : typed gprocess =
  let env = declared_env p in
  let lookup x = SMap.find_opt x env in
  { proc_name = p.proc_name;
    params = List.map annotate_vardecl p.params;
    inputs = List.map annotate_vardecl p.inputs;
    outputs = List.map annotate_vardecl p.outputs;
    locals = List.map annotate_vardecl p.locals;
    body = List.map (annotate_stmt lookup) p.body;
    subprocesses = List.map type_process p.subprocesses;
    pragmas = p.pragmas }

let type_program (prog : program) : typed gprogram =
  { prog_name = prog.prog_name;
    processes = List.map type_process prog.processes }
