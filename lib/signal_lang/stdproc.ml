open Ast
module B = Builder

type primitive =
  | Pfifo
  | Pfifo_reset
  | Pin_event_port
  | Pout_event_port

let tint = Types.Tint
let tbool = Types.Tbool
let tevent = Types.Tevent

(* Clock union of two signals, as an event expression: ^a default ^b. *)
let clock_union x y = B.(default (clk (v x)) (clk (v y)))

(* The memory process of the paper (Sec. IV-C):

     o = fm(i, b)  with
       o_t = i_t          if i present and b true
           = i_{pred(t)}  if i absent and b true
           = absent       otherwise

   Kernel encoding: a local memory [m] present on ^i ∪ ^b carrying the
   freshest i, sampled where b is true. *)
let fm_with ~name ~typ ~init =
  B.proc ~name
    ~inputs:[ var "i" typ; var "b" tbool ]
    ~outputs:[ var "o" typ ]
    ~locals:[ var "m" typ ]
    ~pragmas:[ ("aadl2signal", "memory process fm") ]
    B.[
      "m" := default (v "i") (delay ~init (v "m"));
      clk (v "m") ^= clock_union "i" "b";
      "o" := when_ (v "m") (v "b");
    ]

let fm = fm_with ~name:"fm" ~typ:tint ~init:(Types.Vint 0)
let fm_bool = fm_with ~name:"fm_bool" ~typ:tbool ~init:(Types.Vbool false)

(* Event presence as a boolean on the true instants of event t:
   bool_at t = true when t. *)
let btrue_when_event t = B.(when_ (b true) (clk (v t)))

(* z = x ◮ t : freeze x at event t (paper: z = fm(f(x), t) with f the
   identity port behaviour for data ports). *)
let freeze =
  B.proc ~name:"freeze"
    ~inputs:[ var "x" tint; var "t" tevent ]
    ~outputs:[ var "z" tint ]
    ~locals:[ var "bt" tbool ]
    ~pragmas:[ ("aadl2signal", "input freezing x |> t") ]
    B.[
      "bt" := btrue_when_event "t";
      inst ~label:"freeze_fm" "fm" [ v "x"; v "bt" ] [ "z" ];
    ]

(* w = y ⊲ t : hold the output and send it at Output_Time. *)
let send =
  B.proc ~name:"send"
    ~inputs:[ var "y" tint; var "t" tevent ]
    ~outputs:[ var "w" tint ]
    ~locals:[ var "bt" tbool ]
    ~pragmas:[ ("aadl2signal", "output sending y <| t") ]
    B.[
      "bt" := btrue_when_event "t";
      inst ~label:"send_fm" "fm" [ v "y"; v "bt" ] [ "w" ];
    ]

let counter =
  B.proc ~name:"counter"
    ~inputs:[ var "e" tevent ]
    ~outputs:[ var "n" tint ]
    B.[
      "n" := delay ~init:(Types.Vint 0) (v "n") + i 1;
      clk (v "n") ^= clk (v "e");
    ]

let counter_reset =
  (* n counts occurrences of e since the last occurrence of rst; both
     may occur at the same instant (reset wins). *)
  B.proc ~name:"counter_reset"
    ~inputs:[ var "e" tevent; var "rst" tevent ]
    ~outputs:[ var "n" tint ]
    ~locals:[ var "pre_n" tint ]
    B.[
      "pre_n" := delay ~init:(Types.Vint 0) (v "n");
      "n" := default (when_ (i 0) (btrue_when_event "rst")) (v "pre_n" + i 1);
      clk (v "n") ^= clock_union "e" "rst";
    ]

(* AADL timer service: armed by [start], disarmed by [stop], counting
   occurrences of [tick]; raises [timeout] once when the count reaches
   [duration]. Implements the thProdTimer / thConsTimer behaviour. *)
let timer =
  let base =
    B.(default (clk (v "start")) (default (clk (v "stop")) (clk (v "tick"))))
  in
  B.proc ~name:"timer"
    ~params:[ var "duration" tint ]
    ~inputs:[ var "start" tevent; var "stop" tevent; var "tick" tevent ]
    ~outputs:[ var "timeout" tevent ]
    ~locals:
      [ var "base_b" tbool; var "s_occ" tbool; var "p_occ" tbool;
        var "t_occ" tbool; var "active" tbool; var "pre_active" tbool;
        var "cnt" tint; var "pre_cnt" tint; var "expired" tbool ]
    ~pragmas:[ ("aadl2signal", "AADL timer service") ]
    B.[
      (* base_b: true on every instant of the union clock *)
      "base_b"
      := default (btrue_when_event "start")
           (default (btrue_when_event "stop") (btrue_when_event "tick"));
      clk (v "base_b") ^= base;
      (* occurrence booleans aligned on the base clock *)
      "s_occ"
      := default (btrue_when_event "start") (when_ (b false) (v "base_b"));
      "p_occ"
      := default (btrue_when_event "stop") (when_ (b false) (v "base_b"));
      "t_occ"
      := default (btrue_when_event "tick") (when_ (b false) (v "base_b"));
      "pre_active" := delay ~init:(Types.Vbool false) (v "active");
      "active"
      := if_ (v "s_occ") (b true)
           (if_ (v "p_occ") (b false)
              (if_ (v "expired") (b false) (v "pre_active")));
      "pre_cnt" := delay ~init:(Types.Vint 0) (v "cnt");
      "cnt"
      := if_ (v "s_occ") (i 0)
           (if_ (v "pre_active" && v "t_occ") (v "pre_cnt" + i 1)
              (v "pre_cnt"));
      "expired" := v "pre_active" && v "t_occ" && v "cnt" >= v "duration";
      "timeout" := when_ (v "expired") (v "expired");
    ]

(* Primitive processes: SIGNAL interface + clock contract; value
   semantics in Polysim. The bodies carry only clock statements so that
   the clock calculus can reason about instances. *)

let fifo =
  B.proc ~name:"fifo"
    ~params:[ var "capacity" tint; var "overflow" Types.Tstring ]
    ~inputs:[ var "push" tint; var "pop" tevent ]
    ~outputs:[ var "data" tint; var "size" tint ]
    ~pragmas:[ ("primitive", "fifo") ]
    B.[
      clk (v "data") ^< clk (v "pop");
      clk (v "size") ^= clock_union "push" "pop";
    ]

let fifo_reset =
  B.proc ~name:"fifo_reset"
    ~params:[ var "capacity" tint; var "overflow" Types.Tstring ]
    ~inputs:[ var "push" tint; var "pop" tevent; var "reset" tevent ]
    ~outputs:[ var "data" tint; var "size" tint ]
    ~pragmas:[ ("primitive", "fifo_reset") ]
    B.[
      clk (v "data") ^< clk (v "pop");
      clk (v "size") ^= default (clock_union "push" "pop") (clk (v "reset"));
    ]

let in_event_port =
  B.proc ~name:"in_event_port"
    ~params:[ var "queue_size" tint; var "overflow" Types.Tstring ]
    ~inputs:[ var "arrival" tint; var "frozen_time" tevent ]
    ~outputs:[ var "frozen" tint; var "frozen_count" tint ]
    ~pragmas:
      [ ("primitive", "in_event_port");
        ("aadl2signal", "in_fifo + frozen_fifo (Fig. 5)") ]
    B.[
      clk (v "frozen") ^< clk (v "frozen_time");
      clk (v "frozen_count") ^= clk (v "frozen_time");
    ]

let out_event_port =
  B.proc ~name:"out_event_port"
    ~params:[ var "queue_size" tint; var "overflow" Types.Tstring ]
    ~inputs:[ var "item" tint; var "output_time" tevent ]
    ~outputs:[ var "sent" tint ]
    ~pragmas:[ ("primitive", "out_event_port") ]
    B.[ clk (v "sent") ^< clk (v "output_time") ]

let all =
  [ fm; fm_bool; freeze; send; counter; counter_reset; timer;
    fifo; fifo_reset; in_event_port; out_event_port ]

let primitive_of_name = function
  | "fifo" -> Some Pfifo
  | "fifo_reset" -> Some Pfifo_reset
  | "in_event_port" -> Some Pin_event_port
  | "out_event_port" -> Some Pout_event_port
  | _ -> None

let is_library_name name =
  List.exists (fun p -> String.equal p.proc_name name) all

let instantaneous_deps = function
  | Pfifo -> [ ("pop", "data"); ("push", "size"); ("pop", "size") ]
  | Pfifo_reset ->
    [ ("pop", "data"); ("push", "size"); ("pop", "size"); ("reset", "size") ]
  | Pin_event_port ->
    [ ("frozen_time", "frozen"); ("frozen_time", "frozen_count") ]
  | Pout_event_port -> [ ("output_time", "sent") ]
