type ident = string

type unop =
  | Not
  | Neg

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor
  | Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | Econst of Types.value
  | Evar of ident
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eif of expr * expr * expr
  | Edelay of expr * Types.value
  | Ewhen of expr * expr
  | Edefault of expr * expr
  | Eclock of expr

type stmt =
  | Sdef of ident * expr
  | Spartial of ident * expr
  | Sclk_eq of expr * expr
  | Sclk_le of expr * expr
  | Sclk_ex of expr * expr
  | Sinstance of instance

and instance = {
  inst_label : string;
  inst_proc : ident;
  inst_ins : expr list;
  inst_outs : ident list;
  inst_params : Types.value list;
}

type vardecl = {
  var_name : ident;
  var_type : Types.styp;
  var_loc : (int * int) option;
}

type process = {
  proc_name : ident;
  params : vardecl list;
  inputs : vardecl list;
  outputs : vardecl list;
  locals : vardecl list;
  body : stmt list;
  subprocesses : process list;
  pragmas : (string * string) list;
}

type program = {
  prog_name : ident;
  processes : process list;
}

let var var_name var_type = { var_name; var_type; var_loc = None }

let var_at ~loc var_name var_type = { var_name; var_type; var_loc = Some loc }

let empty_process name =
  { proc_name = name; params = []; inputs = []; outputs = []; locals = [];
    body = []; subprocesses = []; pragmas = [] }

let find_process prog name =
  List.find_opt (fun p -> String.equal p.proc_name name) prog.processes

let find_subprocess proc name =
  List.find_opt (fun p -> String.equal p.proc_name name) proc.subprocesses

let sort_uniq_idents l = List.sort_uniq String.compare l

let rec free_vars_acc acc = function
  | Econst _ -> acc
  | Evar x -> x :: acc
  | Eunop (_, e) | Eclock e | Edelay (e, _) -> free_vars_acc acc e
  | Ebinop (_, e1, e2) | Ewhen (e1, e2) | Edefault (e1, e2) ->
    free_vars_acc (free_vars_acc acc e1) e2
  | Eif (c, t, f) -> free_vars_acc (free_vars_acc (free_vars_acc acc c) t) f

let free_signals e = sort_uniq_idents (free_vars_acc [] e)

let defined_signals stmts =
  let defs = function
    | Sdef (x, _) | Spartial (x, _) -> [ x ]
    | Sinstance i -> i.inst_outs
    | Sclk_eq _ | Sclk_le _ | Sclk_ex _ -> []
  in
  sort_uniq_idents (List.concat_map defs stmts)

let stmt_reads = function
  | Sdef (_, e) | Spartial (_, e) -> free_signals e
  | Sclk_eq (e1, e2) | Sclk_le (e1, e2) | Sclk_ex (e1, e2) ->
    sort_uniq_idents (free_vars_acc (free_vars_acc [] e1) e2)
  | Sinstance i ->
    sort_uniq_idents (List.concat_map free_signals i.inst_ins)

let rec rename_expr f = function
  | Econst _ as e -> e
  | Evar x -> Evar (f x)
  | Eunop (op, e) -> Eunop (op, rename_expr f e)
  | Ebinop (op, e1, e2) -> Ebinop (op, rename_expr f e1, rename_expr f e2)
  | Eif (c, t, e) -> Eif (rename_expr f c, rename_expr f t, rename_expr f e)
  | Edelay (e, v) -> Edelay (rename_expr f e, v)
  | Ewhen (e, b) -> Ewhen (rename_expr f e, rename_expr f b)
  | Edefault (e1, e2) -> Edefault (rename_expr f e1, rename_expr f e2)
  | Eclock e -> Eclock (rename_expr f e)

let rename_stmt f = function
  | Sdef (x, e) -> Sdef (f x, rename_expr f e)
  | Spartial (x, e) -> Spartial (f x, rename_expr f e)
  | Sclk_eq (e1, e2) -> Sclk_eq (rename_expr f e1, rename_expr f e2)
  | Sclk_le (e1, e2) -> Sclk_le (rename_expr f e1, rename_expr f e2)
  | Sclk_ex (e1, e2) -> Sclk_ex (rename_expr f e1, rename_expr f e2)
  | Sinstance i ->
    Sinstance
      { i with
        inst_ins = List.map (rename_expr f) i.inst_ins;
        inst_outs = List.map f i.inst_outs }

let equal_expr (a : expr) (b : expr) = a = b
let compare_expr (a : expr) (b : expr) = compare a b

let rec expr_size = function
  | Econst _ | Evar _ -> 1
  | Eunop (_, e) | Eclock e | Edelay (e, _) -> 1 + expr_size e
  | Ebinop (_, e1, e2) | Ewhen (e1, e2) | Edefault (e1, e2) ->
    1 + expr_size e1 + expr_size e2
  | Eif (c, t, f) -> 1 + expr_size c + expr_size t + expr_size f

let rec process_size p =
  List.length p.body
  + List.fold_left (fun acc sub -> acc + process_size sub) 0 p.subprocesses
