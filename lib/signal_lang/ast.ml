type ident = string

(* ------------------------------------------------------------------ *)
(* Phases and marks                                                    *)
(* ------------------------------------------------------------------ *)

(* Phase witnesses: empty types indexing the mark GADT. A [parsed]
   tree carries only source positions; [typed] adds the inferred type
   of every node; [normalized] marks the kernel-form declarations;
   [clocked] adds the clock class computed by the calculus. *)
type parsed = |
type typed = |
type normalized = |
type clocked = |
type bare = |

type _ mark =
  | Mparsed : Putil.Diag.span option -> parsed mark
  | Mtyped : Putil.Diag.span option * Types.styp option -> typed mark
  | Mnorm : Putil.Diag.span option -> normalized mark
  | Mclocked : Putil.Diag.span option * int option -> clocked mark
  | Mbare : bare mark

let mark_span : type p. p mark -> Putil.Diag.span option = function
  | Mparsed sp -> sp
  | Mtyped (sp, _) -> sp
  | Mnorm sp -> sp
  | Mclocked (sp, _) -> sp
  | Mbare -> None

let mark_ty : type p. p mark -> Types.styp option = function
  | Mtyped (_, ty) -> ty
  | Mparsed _ | Mnorm _ | Mclocked _ | Mbare -> None

let mark_clock : type p. p mark -> int option = function
  | Mclocked (_, c) -> c
  | Mparsed _ | Mtyped _ | Mnorm _ | Mbare -> None

let with_span : type p. p mark -> Putil.Diag.span option -> p mark =
 fun m sp ->
  match m with
  | Mparsed _ -> Mparsed sp
  | Mtyped (_, ty) -> Mtyped (sp, ty)
  | Mnorm _ -> Mnorm sp
  | Mclocked (_, c) -> Mclocked (sp, c)
  | Mbare -> Mbare

(* ------------------------------------------------------------------ *)
(* The phase-indexed marked AST                                        *)
(* ------------------------------------------------------------------ *)

type unop =
  | Not
  | Neg

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor
  | Eq | Neq | Lt | Le | Gt | Ge

type 'p gexpr = 'p gexpr_desc * 'p mark

and 'p gexpr_desc =
  | Econst of Types.value
  | Evar of ident
  | Eunop of unop * 'p gexpr
  | Ebinop of binop * 'p gexpr * 'p gexpr
  | Eif of 'p gexpr * 'p gexpr * 'p gexpr
  | Edelay of 'p gexpr * Types.value
  | Ewhen of 'p gexpr * 'p gexpr
  | Edefault of 'p gexpr * 'p gexpr
  | Eclock of 'p gexpr

type 'p gstmt = 'p gstmt_desc * 'p mark

and 'p gstmt_desc =
  | Sdef of ident * 'p gexpr
  | Spartial of ident * 'p gexpr
  | Sclk_eq of 'p gexpr * 'p gexpr
  | Sclk_le of 'p gexpr * 'p gexpr
  | Sclk_ex of 'p gexpr * 'p gexpr
  | Sinstance of 'p ginstance

and 'p ginstance = {
  inst_label : string;
  inst_proc : ident;
  inst_ins : 'p gexpr list;
  inst_outs : ident list;
  inst_params : Types.value list;
}

type 'p gvardecl = {
  var_name : ident;
  var_type : Types.styp;
  var_mark : 'p mark;
}

type 'p gprocess = {
  proc_name : ident;
  params : 'p gvardecl list;
  inputs : 'p gvardecl list;
  outputs : 'p gvardecl list;
  locals : 'p gvardecl list;
  body : 'p gstmt list;
  subprocesses : 'p gprocess list;
  pragmas : (string * string) list;
}

type 'p gprogram = {
  prog_name : ident;
  processes : 'p gprocess list;
}

(* The default phase of everything the translator and the parser
   produce. *)
type expr = parsed gexpr
type stmt = parsed gstmt
type instance = parsed ginstance
type vardecl = parsed gvardecl
type process = parsed gprocess
type program = parsed gprogram

type nvardecl = normalized gvardecl

let desc (d, _) = d
let mark (_, m) = m
let span e = mark_span (mark e)

let mk d : expr = (d, Mparsed None)
let mk_at sp d : expr = (d, Mparsed sp)

let var var_name var_type = { var_name; var_type; var_mark = Mparsed None }

let var_at ~span var_name var_type =
  { var_name; var_type; var_mark = Mparsed (Some span) }

let nvar ?span var_name var_type =
  { var_name; var_type; var_mark = Mnorm span }

let remark_norm vd =
  { var_name = vd.var_name; var_type = vd.var_type;
    var_mark = Mnorm (mark_span vd.var_mark) }

let empty_process name =
  { proc_name = name; params = []; inputs = []; outputs = []; locals = [];
    body = []; subprocesses = []; pragmas = [] }

let find_process prog name =
  List.find_opt (fun p -> String.equal p.proc_name name) prog.processes

let find_subprocess proc name =
  List.find_opt (fun p -> String.equal p.proc_name name) proc.subprocesses

let sort_uniq_idents l = List.sort_uniq String.compare l

let rec free_vars_acc : type p. ident list -> p gexpr -> ident list =
 fun acc (d, _) ->
  match d with
  | Econst _ -> acc
  | Evar x -> x :: acc
  | Eunop (_, e) | Eclock e | Edelay (e, _) -> free_vars_acc acc e
  | Ebinop (_, e1, e2) | Ewhen (e1, e2) | Edefault (e1, e2) ->
    free_vars_acc (free_vars_acc acc e1) e2
  | Eif (c, t, f) -> free_vars_acc (free_vars_acc (free_vars_acc acc c) t) f

let free_signals e = sort_uniq_idents (free_vars_acc [] e)

let defined_signals stmts =
  let defs (d, _) =
    match d with
    | Sdef (x, _) | Spartial (x, _) -> [ x ]
    | Sinstance i -> i.inst_outs
    | Sclk_eq _ | Sclk_le _ | Sclk_ex _ -> []
  in
  sort_uniq_idents (List.concat_map defs stmts)

let stmt_reads (d, _) =
  match d with
  | Sdef (_, e) | Spartial (_, e) -> free_signals e
  | Sclk_eq (e1, e2) | Sclk_le (e1, e2) | Sclk_ex (e1, e2) ->
    sort_uniq_idents (free_vars_acc (free_vars_acc [] e1) e2)
  | Sinstance i ->
    sort_uniq_idents (List.concat_map free_signals i.inst_ins)

let rec rename_expr : type p. (ident -> ident) -> p gexpr -> p gexpr =
 fun f (d, m) ->
  let d =
    match d with
    | Econst _ as d -> d
    | Evar x -> Evar (f x)
    | Eunop (op, e) -> Eunop (op, rename_expr f e)
    | Ebinop (op, e1, e2) -> Ebinop (op, rename_expr f e1, rename_expr f e2)
    | Eif (c, t, e) -> Eif (rename_expr f c, rename_expr f t, rename_expr f e)
    | Edelay (e, v) -> Edelay (rename_expr f e, v)
    | Ewhen (e, b) -> Ewhen (rename_expr f e, rename_expr f b)
    | Edefault (e1, e2) -> Edefault (rename_expr f e1, rename_expr f e2)
    | Eclock e -> Eclock (rename_expr f e)
  in
  (d, m)

let rename_stmt f ((d, m) : 'p gstmt) : 'p gstmt =
  let d =
    match d with
    | Sdef (x, e) -> Sdef (f x, rename_expr f e)
    | Spartial (x, e) -> Spartial (f x, rename_expr f e)
    | Sclk_eq (e1, e2) -> Sclk_eq (rename_expr f e1, rename_expr f e2)
    | Sclk_le (e1, e2) -> Sclk_le (rename_expr f e1, rename_expr f e2)
    | Sclk_ex (e1, e2) -> Sclk_ex (rename_expr f e1, rename_expr f e2)
    | Sinstance i ->
      Sinstance
        { i with
          inst_ins = List.map (rename_expr f) i.inst_ins;
          inst_outs = List.map f i.inst_outs }
  in
  (d, m)

(* ------------------------------------------------------------------ *)
(* Mark-erasing and mark-demoting copies                               *)
(* ------------------------------------------------------------------ *)

(* [strip_*] forgets marks entirely: the result compares, hashes and
   marshals structurally, which gives mark-insensitive equality and
   the semantic digests below. *)
let rec strip_expr : type p. p gexpr -> bare gexpr =
 fun (d, _) ->
  let d =
    match d with
    | Econst v -> Econst v
    | Evar x -> Evar x
    | Eunop (op, e) -> Eunop (op, strip_expr e)
    | Ebinop (op, e1, e2) -> Ebinop (op, strip_expr e1, strip_expr e2)
    | Eif (c, t, e) -> Eif (strip_expr c, strip_expr t, strip_expr e)
    | Edelay (e, v) -> Edelay (strip_expr e, v)
    | Ewhen (e, b) -> Ewhen (strip_expr e, strip_expr b)
    | Edefault (e1, e2) -> Edefault (strip_expr e1, strip_expr e2)
    | Eclock e -> Eclock (strip_expr e)
  in
  (d, Mbare)

let strip_stmt : type p. p gstmt -> bare gstmt =
 fun (d, _) ->
  let d =
    match d with
    | Sdef (x, e) -> Sdef (x, strip_expr e)
    | Spartial (x, e) -> Spartial (x, strip_expr e)
    | Sclk_eq (e1, e2) -> Sclk_eq (strip_expr e1, strip_expr e2)
    | Sclk_le (e1, e2) -> Sclk_le (strip_expr e1, strip_expr e2)
    | Sclk_ex (e1, e2) -> Sclk_ex (strip_expr e1, strip_expr e2)
    | Sinstance i ->
      Sinstance
        { inst_label = i.inst_label; inst_proc = i.inst_proc;
          inst_ins = List.map strip_expr i.inst_ins;
          inst_outs = i.inst_outs; inst_params = i.inst_params }
  in
  (d, Mbare)

let strip_vardecl : type p. p gvardecl -> bare gvardecl =
 fun vd ->
  { var_name = vd.var_name; var_type = vd.var_type; var_mark = Mbare }

let rec strip_process : type p. p gprocess -> bare gprocess =
 fun p ->
  { proc_name = p.proc_name;
    params = List.map strip_vardecl p.params;
    inputs = List.map strip_vardecl p.inputs;
    outputs = List.map strip_vardecl p.outputs;
    locals = List.map strip_vardecl p.locals;
    body = List.map strip_stmt p.body;
    subprocesses = List.map strip_process p.subprocesses;
    pragmas = p.pragmas }

let strip_program : type p. p gprogram -> bare gprogram =
 fun prog ->
  { prog_name = prog.prog_name;
    processes = List.map strip_process prog.processes }

(* [to_parsed_*] demotes any phase to [parsed], keeping source spans:
   phase-generic consumers (normalization, the library resolver) run
   on one concrete phase without polymorphic-recursion contortions. *)
let rec to_parsed_expr : type p. p gexpr -> expr =
 fun (d, m) ->
  let d =
    match d with
    | Econst v -> Econst v
    | Evar x -> Evar x
    | Eunop (op, e) -> Eunop (op, to_parsed_expr e)
    | Ebinop (op, e1, e2) -> Ebinop (op, to_parsed_expr e1, to_parsed_expr e2)
    | Eif (c, t, e) ->
      Eif (to_parsed_expr c, to_parsed_expr t, to_parsed_expr e)
    | Edelay (e, v) -> Edelay (to_parsed_expr e, v)
    | Ewhen (e, b) -> Ewhen (to_parsed_expr e, to_parsed_expr b)
    | Edefault (e1, e2) -> Edefault (to_parsed_expr e1, to_parsed_expr e2)
    | Eclock e -> Eclock (to_parsed_expr e)
  in
  (d, Mparsed (mark_span m))

let to_parsed_stmt : type p. p gstmt -> stmt =
 fun (d, m) ->
  let d =
    match d with
    | Sdef (x, e) -> Sdef (x, to_parsed_expr e)
    | Spartial (x, e) -> Spartial (x, to_parsed_expr e)
    | Sclk_eq (e1, e2) -> Sclk_eq (to_parsed_expr e1, to_parsed_expr e2)
    | Sclk_le (e1, e2) -> Sclk_le (to_parsed_expr e1, to_parsed_expr e2)
    | Sclk_ex (e1, e2) -> Sclk_ex (to_parsed_expr e1, to_parsed_expr e2)
    | Sinstance i ->
      Sinstance
        { inst_label = i.inst_label; inst_proc = i.inst_proc;
          inst_ins = List.map to_parsed_expr i.inst_ins;
          inst_outs = i.inst_outs; inst_params = i.inst_params }
  in
  (d, Mparsed (mark_span m))

let to_parsed_vardecl : type p. p gvardecl -> vardecl =
 fun vd ->
  { var_name = vd.var_name; var_type = vd.var_type;
    var_mark = Mparsed (mark_span vd.var_mark) }

let rec to_parsed_process : type p. p gprocess -> process =
 fun p ->
  { proc_name = p.proc_name;
    params = List.map to_parsed_vardecl p.params;
    inputs = List.map to_parsed_vardecl p.inputs;
    outputs = List.map to_parsed_vardecl p.outputs;
    locals = List.map to_parsed_vardecl p.locals;
    body = List.map to_parsed_stmt p.body;
    subprocesses = List.map to_parsed_process p.subprocesses;
    pragmas = p.pragmas }

let to_parsed_program : type p. p gprogram -> program =
 fun prog ->
  { prog_name = prog.prog_name;
    processes = List.map to_parsed_process prog.processes }

(* Mark-insensitive structural equality/order: compare the stripped
   skeletons. *)
let equal_expr a b = strip_expr a = strip_expr b
let compare_expr a b = compare (strip_expr a) (strip_expr b)
let equal_process a b = strip_process a = strip_process b
let equal_program a b = strip_program a = strip_program b

(* ------------------------------------------------------------------ *)
(* Digests                                                             *)
(* ------------------------------------------------------------------ *)

(* Stage digests for incremental recompute. The full digest includes
   marks (positions and phase annotations): it is conservative — a
   pure position shift re-runs downstream stages — but guarantees that
   replayed diagnostics carry current spans. The semantic digest
   strips marks first and identifies programs up to positions. *)
let program_digest (prog : 'p gprogram) =
  Digest.string (Marshal.to_string prog [ Marshal.No_sharing ])

let program_semantic_digest (prog : 'p gprogram) =
  Digest.string (Marshal.to_string (strip_program prog) [ Marshal.No_sharing ])

let process_digest (p : 'p gprocess) =
  Digest.string (Marshal.to_string p [ Marshal.No_sharing ])

let process_semantic_digest (p : 'p gprocess) =
  Digest.string (Marshal.to_string (strip_process p) [ Marshal.No_sharing ])

let rec expr_size : type p. p gexpr -> int =
 fun (d, _) ->
  match d with
  | Econst _ | Evar _ -> 1
  | Eunop (_, e) | Eclock e | Edelay (e, _) -> 1 + expr_size e
  | Ebinop (_, e1, e2) | Ewhen (e1, e2) | Edefault (e1, e2) ->
    1 + expr_size e1 + expr_size e2
  | Eif (c, t, f) -> 1 + expr_size c + expr_size t + expr_size f

let rec process_size : type p. p gprocess -> int =
 fun p ->
  List.length p.body
  + List.fold_left (fun acc sub -> acc + process_size sub) 0 p.subprocesses
