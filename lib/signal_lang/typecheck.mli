(** Static typing and well-formedness of SIGNAL programs.

    Checks performed per process:
    - declared names (params, inputs, outputs, locals) are distinct;
    - every signal read is declared;
    - outputs and locals are defined exactly once (totally), or only by
      partial definitions, or by an instance output;
    - inputs and params are never defined;
    - expressions are well-typed ([event] promotes to [boolean]);
    - process instances resolve (locally, globally, or in the
      AADL2SIGNAL library) with matching arities and types. *)

type error = {
  err_proc : string;  (** process in which the error was found *)
  err_msg : string;
  err_code : string;  (** stable [SIG-TYPE-0xx] code *)
  err_signal : string option;
      (** concerned signal, when attributable — lets callers recover
          the declaration span from the declaration's mark
          ({!Ast.mark_span}) *)
}

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val type_of_expr :
  (Ast.ident -> Types.styp option) -> Ast.expr -> (Types.styp, string) result
(** Type of an expression under the given typing environment. *)

val check_process :
  ?program:Ast.program -> Ast.process -> error list
(** All errors in one process (empty list = well-formed). The optional
    program provides global process models for instance resolution; the
    AADL2SIGNAL library is always in scope. *)

val check_program : Ast.program -> error list

val is_well_typed : Ast.program -> bool

val type_process : Ast.process -> Ast.typed Ast.gprocess
(** One process of {!type_program} — elaboration is per-process, so
    incremental callers re-elaborate only edited processes. *)

val type_program : Ast.program -> Ast.typed Ast.gprogram
(** Mark-transforming elaboration: re-mark the parsed tree as [typed],
    attaching the inferred type to every expression node. Total and
    best-effort — nodes that do not type get [None]; run
    {!check_program} for the error list. *)
