type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | COLON | COLONCOLON | SEMI | COMMA
  | DOT | DOTDOT
  | ARROW
  | DARROW
  | TRANS_L
  | ANNEX_BLOB of string
  | ASSOC
  | PLUS_ASSOC
  | EOF

type positioned = {
  tok : token;
  line : int;
  col : int;
}

exception Lex_error of string * int * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek cur k =
  if cur.pos + k < String.length cur.src then Some cur.src.[cur.pos + k]
  else None

let advance cur =
  (match peek cur 0 with
   | Some '\n' ->
     cur.line <- cur.line + 1;
     cur.col <- 1
   | Some _ -> cur.col <- cur.col + 1
   | None -> ());
  cur.pos <- cur.pos + 1

let error cur fmt =
  Format.kasprintf (fun m -> raise (Lex_error (m, cur.line, cur.col))) fmt

let lex_ident cur =
  let start = cur.pos in
  while (match peek cur 0 with Some c -> is_ident_char c | None -> false) do
    advance cur
  done;
  String.sub cur.src start (cur.pos - start)

let lex_number cur =
  let start = cur.pos in
  while (match peek cur 0 with Some c -> is_digit c | None -> false) do
    advance cur
  done;
  (* a '.' followed by a digit makes it a real; '..' is a range *)
  let is_real =
    match peek cur 0, peek cur 1 with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_real then begin
    advance cur;
    while (match peek cur 0 with Some c -> is_digit c | None -> false) do
      advance cur
    done;
    let s = String.sub cur.src start (cur.pos - start) in
    REAL (float_of_string s)
  end
  else
    let s = String.sub cur.src start (cur.pos - start) in
    INT (int_of_string s)

let lex_string cur =
  advance cur;  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur 0 with
    | None -> error cur "unterminated string literal"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur 0 with
       | Some c ->
         Buffer.add_char buf c;
         advance cur
       | None -> error cur "unterminated escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      go ()
  in
  go ();
  STRING (Buffer.contents buf)

let tokenize src =
  let cur = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let emit tok line col = toks := { tok; line; col } :: !toks in
  let rec go () =
    match peek cur 0 with
    | None -> emit EOF cur.line cur.col
    | Some c ->
      let line = cur.line and col = cur.col in
      (match c with
       | ' ' | '\t' | '\r' | '\n' -> advance cur
       | '-' -> (
         match peek cur 1 with
         | Some '-' ->
           (* comment to end of line *)
           while (match peek cur 0 with Some c -> c <> '\n' | None -> false) do
             advance cur
           done
         | Some '>' ->
           advance cur; advance cur;
           if peek cur 0 = Some '>' then begin
             advance cur;
             emit DARROW line col
           end
           else emit ARROW line col
         | Some '[' ->
           advance cur; advance cur;
           emit TRANS_L line col
         | _ -> error cur "unexpected '-'")
       | '=' -> (
         match peek cur 1 with
         | Some '>' ->
           advance cur; advance cur;
           emit ASSOC line col
         | _ -> error cur "unexpected '='")
       | '+' -> (
         match peek cur 1, peek cur 2 with
         | Some '=', Some '>' ->
           advance cur; advance cur; advance cur;
           emit PLUS_ASSOC line col
         | _ -> error cur "unexpected '+'")
       | '{' when peek cur 1 = Some '*' && peek cur 2 = Some '*' -> (
         (* annex blob: {** ... **} *)
         advance cur; advance cur; advance cur;
         let start = cur.pos in
         let rec scan () =
           match peek cur 0, peek cur 1, peek cur 2 with
           | Some '*', Some '*', Some '}' ->
             let payload = String.sub cur.src start (cur.pos - start) in
             advance cur; advance cur; advance cur;
             emit (ANNEX_BLOB payload) line col
           | Some _, _, _ ->
             advance cur;
             scan ()
           | None, _, _ -> error cur "unterminated annex blob"
         in
         scan ())
       | '(' -> advance cur; emit LPAREN line col
       | ')' -> advance cur; emit RPAREN line col
       | '{' -> advance cur; emit LBRACE line col
       | '}' -> advance cur; emit RBRACE line col
       | '[' -> advance cur; emit LBRACKET line col
       | ']' -> advance cur; emit RBRACKET line col
       | ';' -> advance cur; emit SEMI line col
       | ',' -> advance cur; emit COMMA line col
       | ':' -> (
         match peek cur 1 with
         | Some ':' ->
           advance cur; advance cur;
           emit COLONCOLON line col
         | _ ->
           advance cur;
           emit COLON line col)
       | '.' -> (
         match peek cur 1 with
         | Some '.' ->
           advance cur; advance cur;
           emit DOTDOT line col
         | _ ->
           advance cur;
           emit DOT line col)
       | '"' -> emit (lex_string cur) line col
       | c when is_digit c -> emit (lex_number cur) line col
       | c when is_ident_start c -> emit (IDENT (lex_ident cur)) line col
       | c -> error cur "unexpected character %c" c);
      if (match !toks with { tok = EOF; _ } :: _ -> false | _ -> true) then
        go ()
  in
  go ();
  List.rev !toks

let token_to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | REAL r -> Putil.Mathx.float_to_string r
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COLON -> ":" | COLONCOLON -> "::" | SEMI -> ";" | COMMA -> ","
  | DOT -> "." | DOTDOT -> ".."
  | ARROW -> "->" | DARROW -> "->>" | TRANS_L -> "-["
  | ANNEX_BLOB _ -> "{** ... **}"
  | ASSOC -> "=>" | PLUS_ASSOC -> "+=>"
  | EOF -> "<eof>"
