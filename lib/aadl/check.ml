open Syntax

type severity = Error | Warning

type issue = {
  severity : severity;
  where : string;
  message : string;
  code : string;
  loc : Syntax.loc;
}

(* Stable legality-check codes. *)
let code_dup_feature = Putil.Diag.code "AADL-CHECK-001" "duplicate feature name"
let code_bad_duration =
  Putil.Diag.code "AADL-CHECK-002" "timing property is not a valid duration"
let code_no_period =
  Putil.Diag.code "AADL-CHECK-003" "periodic thread without a Period"
let code_no_deadline =
  Putil.Diag.code "AADL-CHECK-004"
    "periodic thread without a Deadline (defaults to Period)"
let code_no_dispatch =
  Putil.Diag.code "AADL-CHECK-005" "thread without Dispatch_Protocol"
let code_modes =
  Putil.Diag.code "AADL-CHECK-006" "ill-formed mode automaton"
let code_mode_ref =
  Putil.Diag.code "AADL-CHECK-007"
    "mode transition references an unknown mode or trigger"
let code_classifier =
  Putil.Diag.code "AADL-CHECK-008" "unresolvable classifier"
let code_impl_type =
  Putil.Diag.code "AADL-CHECK-009"
    "implementation inconsistent with its component type"
let code_subcomponent =
  Putil.Diag.code "AADL-CHECK-010" "illegal subcomponent"
let code_connection =
  Putil.Diag.code "AADL-CHECK-011" "ill-formed connection"

let allowed_in container sub =
  match container, sub with
  | System, (System | Process | Processor | Virtual_processor | Memory
            | Bus | Virtual_bus | Device | Data) -> true
  | Process, (Thread | Thread_group | Data | Subprogram) -> true
  | Thread_group, (Thread | Thread_group | Data) -> true
  | Thread, (Data | Subprogram) -> true
  | Processor, (Memory | Virtual_processor | Bus) -> true
  | _, _ -> false

let check_package pkg =
  Putil.Tracing.with_span "aadl.check"
    ~args:[ ("package", Putil.Tracing.Astr pkg.pkg_name) ]
  @@ fun () ->
  let issues = ref [] in
  let err ~code ~loc where fmt =
    Format.kasprintf
      (fun message ->
        issues := { severity = Error; where; message; code; loc } :: !issues)
      fmt
  in
  let warn ~code ~loc where fmt =
    Format.kasprintf
      (fun message ->
        issues := { severity = Warning; where; message; code; loc } :: !issues)
      fmt
  in
  (* qualified classifiers (Pkg::name) live in other packages; their
     resolution is checked at instantiation time *)
  let is_external name =
    let rec go i =
      i + 1 < String.length name
      && ((name.[i] = ':' && name.[i + 1] = ':') || go (i + 1))
    in
    go 0
  in
  let check_classifier ~loc where name =
    if not (is_external name) then begin
      let tname = impl_base_name name in
      match find_type pkg tname with
      | None ->
        err ~code:code_classifier ~loc where
          "classifier %s: unknown component type %s" name tname
      | Some _ ->
        if String.contains name '.' && find_impl pkg name = None then
          err ~code:code_classifier ~loc where
            "unknown component implementation %s" name
    end
  in
  let find_assoc pname assocs =
    List.find_opt
      (fun pa ->
        pa.applies_to = []
        && String.lowercase_ascii pa.pname = String.lowercase_ascii pname)
      assocs
  in
  let duration_ok ~loc where pname assocs =
    match Props.find pname assocs with
    | None -> ()
    | Some v ->
      if Props.duration_us v = None then
        let loc =
          match find_assoc pname assocs with
          | Some pa -> pa.pa_loc
          | None -> loc
        in
        err ~code:code_bad_duration ~loc where
          "property %s is not a valid duration" pname
  in
  (* component types *)
  List.iter
    (function
      | Dtype ct ->
        let where = ct.ct_name in
        let tloc = ct.ct_loc in
        let seen = Hashtbl.create 8 in
        List.iter
          (fun f ->
            let n = feature_name f in
            if Hashtbl.mem seen (String.lowercase_ascii n) then
              err ~code:code_dup_feature ~loc:(feature_loc f) where
                "duplicate feature %s" n
            else Hashtbl.add seen (String.lowercase_ascii n) ())
          ct.ct_features;
        duration_ok ~loc:tloc where "Period" ct.ct_properties;
        duration_ok ~loc:tloc where "Deadline" ct.ct_properties;
        duration_ok ~loc:tloc where "Compute_Execution_Time" ct.ct_properties;
        if ct.ct_category = Thread then begin
          match Props.dispatch_protocol ct.ct_properties with
          | Some Props.Periodic ->
            if Props.period_us ct.ct_properties = None then
              err ~code:code_no_period ~loc:tloc where
                "periodic thread without a Period";
            if Props.deadline_us ct.ct_properties = None then
              warn ~code:code_no_deadline ~loc:tloc where
                "periodic thread without a Deadline (defaults to Period)"
          | Some _ -> ()
          | None ->
            warn ~code:code_no_dispatch ~loc:tloc where
              "thread without Dispatch_Protocol"
        end;
        (* mode automaton legality *)
        if ct.ct_modes <> [] then begin
          let initials =
            List.filter (fun m -> m.m_initial) ct.ct_modes
          in
          (match initials with
           | [ _ ] -> ()
           | [] ->
             err ~code:code_modes ~loc:tloc where
               "modes declared but no initial mode"
           | m :: _ ->
             err ~code:code_modes ~loc:m.m_loc where "several initial modes");
          let seen_modes = Hashtbl.create 4 in
          List.iter
            (fun m ->
              if Hashtbl.mem seen_modes m.m_name then
                err ~code:code_modes ~loc:m.m_loc where "duplicate mode %s"
                  m.m_name
              else Hashtbl.add seen_modes m.m_name ())
            ct.ct_modes;
          List.iter
            (fun tr ->
              let twhere = where ^ "." ^ tr.mt_name in
              if not (Hashtbl.mem seen_modes tr.mt_src) then
                err ~code:code_mode_ref ~loc:tr.mt_loc twhere
                  "transition from unknown mode %s" tr.mt_src;
              if not (Hashtbl.mem seen_modes tr.mt_dst) then
                err ~code:code_mode_ref ~loc:tr.mt_loc twhere
                  "transition to unknown mode %s" tr.mt_dst;
              match find_feature ct tr.mt_trigger with
              | Some (Port { dir = Din | Dinout;
                             kind = Event_port | Event_data_port; _ }) -> ()
              | Some _ ->
                err ~code:code_mode_ref ~loc:tr.mt_loc twhere
                  "trigger %s is not an in event port" tr.mt_trigger
              | None ->
                err ~code:code_mode_ref ~loc:tr.mt_loc twhere
                  "unknown trigger port %s" tr.mt_trigger)
            ct.ct_transitions
        end
        else if ct.ct_transitions <> [] then
          err ~code:code_modes ~loc:tloc where
            "mode transitions without mode declarations"
      | Dimpl _ -> ())
    pkg.pkg_decls;
  (* implementations *)
  List.iter
    (function
      | Dtype _ -> ()
      | Dimpl ci ->
        let where = ci.ci_name in
        let iloc = ci.ci_loc in
        (match find_type pkg ci.ci_type with
         | None ->
           err ~code:code_impl_type ~loc:iloc where
             "implementation of unknown type %s" ci.ci_type
         | Some ct ->
           if ct.ct_category <> ci.ci_category then
             err ~code:code_impl_type ~loc:iloc where
               "category differs from its component type");
        let sub_cat = Hashtbl.create 8 in
        List.iter
          (fun sc ->
            Hashtbl.replace sub_cat sc.sc_name sc.sc_category;
            (match sc.sc_classifier with
             | Some c ->
               check_classifier ~loc:sc.sc_loc (where ^ "." ^ sc.sc_name) c
             | None ->
               if sc.sc_category <> Data then
                 err ~code:code_subcomponent ~loc:sc.sc_loc
                   (where ^ "." ^ sc.sc_name) "subcomponent without classifier");
            if not (allowed_in ci.ci_category sc.sc_category) then
              err ~code:code_subcomponent ~loc:sc.sc_loc
                (where ^ "." ^ sc.sc_name)
                "%s subcomponent not allowed in %s"
                (category_to_string sc.sc_category)
                (category_to_string ci.ci_category))
          ci.ci_subcomponents;
        (* connection endpoints *)
        let feature_of endpoint =
          match String.index_opt endpoint '.' with
          | None -> (
            (* own feature *)
            match find_type pkg ci.ci_type with
            | None -> None
            | Some ct ->
              Option.map (fun f -> (`Own, f)) (find_feature ct endpoint))
          | Some i -> (
            let sub = String.sub endpoint 0 i in
            let fname =
              String.sub endpoint (i + 1) (String.length endpoint - i - 1)
            in
            match
              List.find_opt (fun sc -> String.equal sc.sc_name sub)
                ci.ci_subcomponents
            with
            | None -> None
            | Some sc -> (
              match sc.sc_classifier with
              | None -> None
              | Some c when is_external c ->
                (* cannot look inside another package here; accept *)
                Some (`External, Port { fname; dir = Dinout;
                                        kind = Event_port; dtype = None;
                                        fprops = []; floc = no_loc })
              | Some c -> (
                match find_type pkg (impl_base_name c) with
                | None -> None
                | Some ct ->
                  Option.map (fun f -> (`Sub, f)) (find_feature ct fname))))
        in
        List.iter
          (fun conn ->
            let cwhere = where ^ "." ^ conn.conn_name in
            let cloc = conn.conn_loc in
            (* data-access endpoints may name a subcomponent directly *)
            let endpoint_ok e =
              feature_of e <> None
              || (conn.conn_kind = Access_connection
                  && List.exists
                       (fun sc -> String.equal sc.sc_name e)
                       ci.ci_subcomponents)
            in
            if not (endpoint_ok conn.conn_src) then
              err ~code:code_connection ~loc:cloc cwhere
                "unknown connection source %s" conn.conn_src;
            if not (endpoint_ok conn.conn_dst) then
              err ~code:code_connection ~loc:cloc cwhere
                "unknown connection destination %s" conn.conn_dst;
            if conn.conn_kind = Port_connection then begin
              match feature_of conn.conn_src, feature_of conn.conn_dst with
              | Some (`Sub, Port { dir = Din; _ }), _ ->
                err ~code:code_connection ~loc:cloc cwhere
                  "connection from an in port %s" conn.conn_src
              | _, Some (`Sub, Port { dir = Dout; _ }) ->
                err ~code:code_connection ~loc:cloc cwhere
                  "connection into an out port %s" conn.conn_dst
              | _, _ -> ()
            end)
          ci.ci_connections)
    pkg.pkg_decls;
  List.rev !issues

let errors issues = List.filter (fun i -> i.severity = Error) issues
let warnings issues = List.filter (fun i -> i.severity = Warning) issues

let pp_issue ppf i =
  Format.fprintf ppf "%s: %s: %s"
    (match i.severity with Error -> "error" | Warning -> "warning")
    i.where i.message

let diag_of_issue ?file i =
  let severity =
    match i.severity with
    | Error -> Putil.Diag.Error
    | Warning -> Putil.Diag.Warning
  in
  let span =
    if i.loc.l_line > 0 then
      Some (Putil.Diag.span ?file ~line:i.loc.l_line ~col:i.loc.l_col ())
    else None
  in
  Putil.Diag.make ?span severity ~code:i.code
    (Printf.sprintf "%s: %s" i.where i.message)

let to_diags ?file issues = List.map (diag_of_issue ?file) issues
