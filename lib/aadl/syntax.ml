(* Source location of a declaration, 1-based; {0,0} = synthesized. *)
type loc = {
  l_line : int;
  l_col : int;
}

let no_loc = { l_line = 0; l_col = 0 }

let loc ~line ~col = { l_line = line; l_col = col }

type category =
  | System
  | Process
  | Thread
  | Thread_group
  | Subprogram
  | Data
  | Processor
  | Virtual_processor
  | Memory
  | Bus
  | Virtual_bus
  | Device

let category_to_string = function
  | System -> "system"
  | Process -> "process"
  | Thread -> "thread"
  | Thread_group -> "thread group"
  | Subprogram -> "subprogram"
  | Data -> "data"
  | Processor -> "processor"
  | Virtual_processor -> "virtual processor"
  | Memory -> "memory"
  | Bus -> "bus"
  | Virtual_bus -> "virtual bus"
  | Device -> "device"

let category_of_string = function
  | "system" -> Some System
  | "process" -> Some Process
  | "thread" -> Some Thread
  | "thread group" -> Some Thread_group
  | "subprogram" -> Some Subprogram
  | "data" -> Some Data
  | "processor" -> Some Processor
  | "virtual processor" -> Some Virtual_processor
  | "memory" -> Some Memory
  | "bus" -> Some Bus
  | "virtual bus" -> Some Virtual_bus
  | "device" -> Some Device
  | _ -> None

type direction = Din | Dout | Dinout

type port_kind = Data_port | Event_port | Event_data_port

type access_right = Read_only | Write_only | Read_write

type property_value =
  | Pint of int * string option
  | Preal of float * string option
  | Pstring of string
  | Pbool of bool
  | Pname of string
  | Preference of string
  | Pclassifier of string
  | Plist of property_value list
  | Prange of property_value * property_value

type property_assoc = {
  pname : string;
  pvalue : property_value;
  applies_to : string list;
  pa_loc : loc;
}

let assoc ?(loc = no_loc) pname pvalue applies_to =
  { pname; pvalue; applies_to; pa_loc = loc }

type feature =
  | Port of {
      fname : string;
      dir : direction;
      kind : port_kind;
      dtype : string option;
      fprops : property_assoc list;
      floc : loc;
    }
  | Data_access of {
      fname : string;
      dtype : string option;
      right : access_right;
      provided : bool;
      floc : loc;
    }
  | Subprogram_access of {
      fname : string;
      spec : string option;
      provided : bool;
      floc : loc;
    }

let feature_name = function
  | Port { fname; _ } | Data_access { fname; _ }
  | Subprogram_access { fname; _ } -> fname

let feature_loc = function
  | Port { floc; _ } | Data_access { floc; _ }
  | Subprogram_access { floc; _ } -> floc

type subcomponent = {
  sc_name : string;
  sc_category : category;
  sc_classifier : string option;
  sc_properties : property_assoc list;
  sc_loc : loc;
}

type connection_kind = Port_connection | Access_connection

type connection = {
  conn_name : string;
  conn_kind : connection_kind;
  conn_src : string;
  conn_dst : string;
  immediate : bool;
  conn_properties : property_assoc list;
  conn_loc : loc;
}

type mode = {
  m_name : string;
  m_initial : bool;
  m_loc : loc;
}

type mode_transition = {
  mt_name : string;
  mt_src : string;
  mt_trigger : string;
  mt_dst : string;
  mt_loc : loc;
}

type component_type = {
  ct_name : string;
  ct_category : category;
  ct_extends : string option;
  ct_features : feature list;
  ct_properties : property_assoc list;
  ct_modes : mode list;
  ct_transitions : mode_transition list;
  ct_loc : loc;
}

type component_impl = {
  ci_name : string;
  ci_type : string;
  ci_category : category;
  ci_extends : string option;
  ci_subcomponents : subcomponent list;
  ci_connections : connection list;
  ci_properties : property_assoc list;
  ci_loc : loc;
}

type declaration =
  | Dtype of component_type
  | Dimpl of component_impl

type package = {
  pkg_name : string;
  pkg_imports : string list;
  pkg_decls : declaration list;
}

(* Erase every source location, e.g. to compare two parses of the same
   model structurally (printer round-trips). *)
let strip_locs pkg =
  let pa pa = { pa with pa_loc = no_loc } in
  let feature = function
    | Port p -> Port { p with fprops = List.map pa p.fprops; floc = no_loc }
    | Data_access d -> Data_access { d with floc = no_loc }
    | Subprogram_access s -> Subprogram_access { s with floc = no_loc }
  in
  let decl = function
    | Dtype ct ->
      Dtype
        { ct with
          ct_features = List.map feature ct.ct_features;
          ct_properties = List.map pa ct.ct_properties;
          ct_modes = List.map (fun m -> { m with m_loc = no_loc }) ct.ct_modes;
          ct_transitions =
            List.map (fun t -> { t with mt_loc = no_loc }) ct.ct_transitions;
          ct_loc = no_loc }
    | Dimpl ci ->
      Dimpl
        { ci with
          ci_subcomponents =
            List.map
              (fun sc ->
                { sc with
                  sc_properties = List.map pa sc.sc_properties;
                  sc_loc = no_loc })
              ci.ci_subcomponents;
          ci_connections =
            List.map
              (fun c ->
                { c with
                  conn_properties = List.map pa c.conn_properties;
                  conn_loc = no_loc })
              ci.ci_connections;
          ci_properties = List.map pa ci.ci_properties;
          ci_loc = no_loc }
  in
  { pkg with pkg_decls = List.map decl pkg.pkg_decls }

let impl_base_name name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let find_type pkg name =
  List.find_map
    (function
      | Dtype ct when String.equal ct.ct_name name -> Some ct
      | Dtype _ | Dimpl _ -> None)
    pkg.pkg_decls

let find_impl pkg name =
  List.find_map
    (function
      | Dimpl ci when String.equal ci.ci_name name -> Some ci
      | Dtype _ | Dimpl _ -> None)
    pkg.pkg_decls

let find_feature ct name =
  List.find_opt (fun f -> String.equal (feature_name f) name) ct.ct_features

let property_names pkg =
  let acc = ref [] in
  let add pa = acc := pa.pname :: !acc in
  List.iter
    (function
      | Dtype ct -> List.iter add ct.ct_properties
      | Dimpl ci ->
        List.iter add ci.ci_properties;
        List.iter (fun sc -> List.iter add sc.sc_properties) ci.ci_subcomponents;
        List.iter (fun c -> List.iter add c.conn_properties) ci.ci_connections)
    pkg.pkg_decls;
  List.sort_uniq String.compare !acc
