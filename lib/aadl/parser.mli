(** Recursive-descent parser for the AADL textual subset.

    Accepts one package per file:
    {[
      package ProducerConsumer
      public
        with Base_Types;

        thread thProducer
          features
            pProdStart: in event port;
          properties
            Dispatch_Protocol => Periodic;
            Period => 4 ms;
        end thProducer;

        process implementation prProdCons.impl
          subcomponents
            thProducer: thread thProducer.impl;
          connections
            c0: port thProducer.pOut -> thConsumer.pIn;
        end prProdCons.impl;
      end ProducerConsumer;
    ]}

    Keywords are case-insensitive, as mandated by the standard. *)

exception Parse_error of string * int * int
(** message, line, column *)

val parse_package : string -> (Syntax.package, string) result
(** Parse a complete package from source text. The error string
    includes the position. *)

val parse_package_exn : string -> Syntax.package
(** @raise Parse_error on malformed input. *)

val parse_packages : string -> (Syntax.package list, string) result
(** Parse a file containing several packages (at least one), e.g. a
    library package plus the system package that imports it. *)

val parse_package_diag :
  ?file:string -> string -> (Syntax.package, Putil.Diag.t list) result
(** Like {!parse_package}, but failures are structured diagnostics
    carrying a stable code ([AADL-PARSE-00x] / [AADL-LEX-001]) and a
    source span. [file] names the source in reported spans. *)

val parse_packages_diag :
  ?file:string -> string -> (Syntax.package list, Putil.Diag.t list) result
(** Like {!parse_packages}, with structured diagnostics. *)

val parse_property_value : string -> (Syntax.property_value, string) result
(** Parse a standalone property value (used by tests and tooling). *)
