(** AADL instance model (the ASME side of ASME2SSME).

    Instantiates a root system/process implementation into a component
    instance tree, flattens connections to absolute feature paths, and
    fuses connection chains that cross component boundaries into
    {e semantic connections} between leaf features — the form the
    SIGNAL translation consumes. *)

type instance = {
  i_name : string;                     (** local name *)
  i_path : string;                     (** absolute dot-path from root *)
  i_category : Syntax.category;
  i_classifier : string;               (** resolved classifier name *)
  i_features : Syntax.feature list;
  i_props : Syntax.property_assoc list;
      (** merged: component type, then implementation, then
          subcomponent overrides (later wins) *)
  i_modes : Syntax.mode list;
  i_transitions : Syntax.mode_transition list;
  i_children : instance list;
  i_loc : Syntax.loc;
      (** subcomponent declaration site, or the component type's when
          the instance is a root ({!Syntax.no_loc} if unknown) *)
}

type conn_inst = {
  ci_kind : Syntax.connection_kind;
  ci_src : string;                     (** absolute feature path *)
  ci_dst : string;
  ci_immediate : bool;
}

type t = {
  root : instance;
  connections : conn_inst list;        (** declared, per level *)
  bindings : (string * string) list;
      (** (component path, processor path) from
          Actual_Processor_Binding *)
}

val instantiate :
  ?context:Syntax.package list ->
  Syntax.package -> root:string -> (t, string) result
(** [root] names a component implementation (e.g.
    ["ProdCons_Sys.impl"]) or type in the package. [context] supplies
    additional packages; classifiers qualified as ["Pkg::name"] resolve
    against them, and subcomponents of a library component resolve
    within that library. *)

val instantiate_exn :
  ?context:Syntax.package list -> Syntax.package -> root:string -> t

val instantiate_diag :
  ?file:string -> ?context:Syntax.package list ->
  Syntax.package -> root:string -> (t, Putil.Diag.t list) result
(** Like {!instantiate}, but failures are structured diagnostics with
    a stable [AADL-INST-00x] code and, when the defect traces to a
    declaration, a source span. [file] names the source in spans. *)

val find : t -> string -> instance option
(** Lookup by absolute path; the root's path is its name. *)

val all_instances : t -> instance list
(** Pre-order walk of the tree. *)

val instances_of_category : t -> Syntax.category -> instance list

val threads : t -> instance list

val feature_of_path :
  t -> string -> (instance * Syntax.feature) option
(** Resolve an absolute feature path ["root.th.pOut"] to its component
    instance and feature declaration. *)

val semantic_connections : t -> conn_inst list
(** Connection chains fused end-to-end: each result connects two
    features that have no further continuation (typically thread or
    device ports, or data components). A chain is delayed if any hop
    is delayed. *)

val pp_tree : Format.formatter -> t -> unit
(** Indented instance-tree rendering (the paper's Fig. 1 view). *)
