open Syntax

type instance = {
  i_name : string;
  i_path : string;
  i_category : category;
  i_classifier : string;
  i_features : feature list;
  i_props : property_assoc list;
  i_modes : mode list;
  i_transitions : mode_transition list;
  i_children : instance list;
  i_loc : loc;
}

type conn_inst = {
  ci_kind : connection_kind;
  ci_src : string;
  ci_dst : string;
  ci_immediate : bool;
}

type t = {
  root : instance;
  connections : conn_inst list;
  bindings : (string * string) list;
}

exception Inst_error of string

(* Stable instantiation error codes. *)
let code_unknown_package =
  Putil.Diag.code "AADL-INST-001" "unknown package in a qualified classifier"
let code_unresolved =
  Putil.Diag.code "AADL-INST-002"
    "classifier does not resolve to a component type or implementation"
let code_category =
  Putil.Diag.code "AADL-INST-003"
    "subcomponent category differs from its classifier's category"
let code_no_classifier =
  Putil.Diag.code "AADL-INST-004" "subcomponent without a classifier"

(* Internal carrier keeping the code and declaration position; the
   public Inst_error keeps its message-only shape for compatibility. *)
exception Ierror of string * string * Syntax.loc

let errf ?(code = code_unresolved) ?(loc = Syntax.no_loc) fmt =
  Format.kasprintf (fun m -> raise (Ierror (code, m, loc))) fmt

(* A resolution environment: the package being elaborated plus every
   other package in scope ([with] imports are not enforced — any
   package passed as context is visible under its qualified name). *)
type env = {
  current : package;
  context : package list;
}

(* Split "Pkg::name" into its package and the local classifier. *)
let split_qualified name =
  match String.index_opt name ':' with
  | Some i when i + 1 < String.length name && name.[i + 1] = ':' ->
    Some
      ( String.sub name 0 i,
        String.sub name (i + 2) (String.length name - i - 2) )
  | Some _ | None -> None

(* Resolve a classifier name to (defining package, type, impl option);
   subcomponents of a library component resolve within that library. *)
let resolve_classifier ?loc env name =
  let pkg, local =
    match split_qualified name with
    | None -> (env.current, name)
    | Some (pkg_name, local) -> (
      match
        List.find_opt
          (fun p ->
            String.lowercase_ascii p.pkg_name
            = String.lowercase_ascii pkg_name)
          (env.current :: env.context)
      with
      | Some p -> (p, local)
      | None ->
        errf ~code:code_unknown_package ?loc
          "unknown package %s in classifier %s" pkg_name name)
  in
  let tname = impl_base_name local in
  let ct =
    match find_type pkg tname with
    | Some ct -> ct
    | None -> errf ?loc "unknown component type %s" local
  in
  let ci =
    if String.contains local '.' then
      match find_impl pkg local with
      | Some ci -> Some ci
      | None -> errf ?loc "unknown component implementation %s" local
    else find_impl pkg (local ^ ".impl")
    (* a bare type name resolves to its ".impl" when it exists, the
       OSATE convention for default implementations *)
  in
  (pkg, ct, ci)

let rec build env ~loc ~path ~name ~category:cat ~classifier ~extra_props =
  let def_pkg, ct, ci = resolve_classifier ~loc env classifier in
  let env = { env with current = def_pkg } in
  if ct.ct_category <> cat then
    errf ~code:code_category ~loc
      "subcomponent %s: category mismatch (%s declared, %s classifier)"
      name
      (category_to_string cat)
      (category_to_string ct.ct_category);
  let impl_props = match ci with Some ci -> ci.ci_properties | None -> [] in
  let props = ct.ct_properties @ impl_props @ extra_props in
  let children =
    match ci with
    | None -> []
    | Some ci ->
      List.map
        (fun sc ->
          let sub_classifier =
            match sc.sc_classifier with
            | Some c -> c
            | None when sc.sc_category = Data ->
              (* anonymous data subcomponent: synthesize an int cell *)
              "__anonymous_data__"
            | None ->
              errf ~code:code_no_classifier ~loc:sc.sc_loc
                "subcomponent %s.%s has no classifier" name sc.sc_name
          in
          if sub_classifier = "__anonymous_data__" then
            { i_name = sc.sc_name;
              i_path = path ^ "." ^ sc.sc_name;
              i_category = Data;
              i_classifier = "";
              i_features = [];
              i_props = sc.sc_properties;
              i_modes = [];
              i_transitions = [];
              i_children = [];
              i_loc = sc.sc_loc }
          else
            build env ~loc:sc.sc_loc
              ~path:(path ^ "." ^ sc.sc_name)
              ~name:sc.sc_name ~category:sc.sc_category
              ~classifier:sub_classifier ~extra_props:sc.sc_properties)
        ci.ci_subcomponents
  in
  { i_name = name; i_path = path; i_category = cat;
    i_classifier = classifier; i_features = ct.ct_features;
    i_props = props; i_modes = ct.ct_modes;
    i_transitions = ct.ct_transitions; i_children = children;
    (* prefer the subcomponent declaration site; fall back to the
       classifier's component type *)
    i_loc = (if loc <> no_loc then loc else ct.ct_loc) }

(* Collect declared connections of every implementation level, with
   endpoints turned into absolute paths. *)
let rec collect_connections env inst acc =
  let ci =
    if inst.i_classifier = "" then None
    else
      let _, _, ci = resolve_classifier env inst.i_classifier in
      ci
  in
  let acc =
    match ci with
    | None -> acc
    | Some ci ->
      List.fold_left
        (fun acc conn ->
          let absolutize endpoint = inst.i_path ^ "." ^ endpoint in
          { ci_kind = conn.conn_kind;
            ci_src = absolutize conn.conn_src;
            ci_dst = absolutize conn.conn_dst;
            ci_immediate = conn.immediate }
          :: acc)
        acc ci.ci_connections
  in
  List.fold_left (fun acc child -> collect_connections env child acc) acc
    inst.i_children

let rec collect_bindings inst acc =
  let own =
    List.map
      (fun (part, cpu) -> (inst.i_path ^ "." ^ part, inst.i_path ^ "." ^ cpu))
      (Props.processor_bindings inst.i_props)
  in
  List.fold_left (fun acc child -> collect_bindings child acc)
    (own @ acc) inst.i_children

let instantiate_raw ?(context = []) pkg ~root =
  let env = { current = pkg; context } in
  let cat =
    let _, ct, _ = resolve_classifier env root in
    ct.ct_category
  in
  let name =
    let local =
      match split_qualified root with Some (_, l) -> l | None -> root
    in
    impl_base_name local
  in
  let inst =
    build env ~loc:Syntax.no_loc ~path:name ~name ~category:cat
      ~classifier:root ~extra_props:[]
  in
  let connections = List.rev (collect_connections env inst []) in
  let bindings = collect_bindings inst [] in
  { root = inst; connections; bindings }

let instantiate_exn ?context pkg ~root =
  try instantiate_raw ?context pkg ~root
  with Ierror (_, m, _) -> raise (Inst_error m)

let instantiate ?context pkg ~root =
  match instantiate_exn ?context pkg ~root with
  | t -> Ok t
  | exception Inst_error m -> Error m

let instantiate_diag ?file ?context pkg ~root =
  Putil.Tracing.with_span "aadl.instantiate"
    ~args:[ ("root", Putil.Tracing.Astr root) ]
  @@ fun () ->
  match instantiate_raw ?context pkg ~root with
  | t -> Ok t
  | exception Ierror (code, m, loc) ->
    let span =
      if loc.l_line > 0 then
        Some (Putil.Diag.span ?file ~line:loc.l_line ~col:loc.l_col ())
      else None
    in
    Error [ Putil.Diag.errorf ?span ~code "%s" m ]

let rec walk inst acc = inst :: List.fold_right walk inst.i_children acc

let all_instances t = walk t.root []

let find t path =
  List.find_opt (fun i -> String.equal i.i_path path) (all_instances t)

let instances_of_category t cat =
  List.filter (fun i -> i.i_category = cat) (all_instances t)

let threads t = instances_of_category t Thread

(* Split "a.b.c.f" into component path "a.b.c" and feature "f". *)
let split_feature_path path =
  match String.rindex_opt path '.' with
  | None -> None
  | Some i ->
    Some (String.sub path 0 i, String.sub path (i + 1) (String.length path - i - 1))

let feature_of_path t path =
  match split_feature_path path with
  | None -> None
  | Some (comp, fname) -> (
    match find t comp with
    | None -> None
    | Some inst ->
      List.find_opt
        (fun f -> String.equal (feature_name f) fname)
        inst.i_features
      |> Option.map (fun f -> (inst, f)))

(* A feature path is terminal when no declared connection continues the
   chain from it (in the direction of data flow). *)
let semantic_connections t =
  let continues_from src =
    List.filter (fun c -> String.equal c.ci_src src) t.connections
  in
  let is_chain_start c =
    (* no connection ends at this connection's source *)
    not (List.exists (fun c' -> String.equal c'.ci_dst c.ci_src) t.connections)
  in
  let rec chase c =
    match continues_from c.ci_dst with
    | [] -> [ c ]
    | nexts ->
      List.concat_map
        (fun n ->
          chase
            { ci_kind = c.ci_kind;
              ci_src = c.ci_src;
              ci_dst = n.ci_dst;
              ci_immediate = c.ci_immediate && n.ci_immediate })
        nexts
  in
  List.concat_map chase (List.filter is_chain_start t.connections)

let rec pp_instance ppf ~indent inst =
  let pad = String.make indent ' ' in
  Format.fprintf ppf "%s%s %s"
    pad
    (category_to_string inst.i_category)
    inst.i_name;
  if inst.i_classifier <> "" && inst.i_classifier <> inst.i_name then
    Format.fprintf ppf " : %s" inst.i_classifier;
  (match Props.period_us inst.i_props with
   | Some p -> Format.fprintf ppf "  [period %d us]" p
   | None -> ());
  Format.fprintf ppf "@,";
  List.iter
    (fun f ->
      Format.fprintf ppf "%s  . %s@," pad (feature_name f))
    inst.i_features;
  List.iter (pp_instance ppf ~indent:(indent + 2)) inst.i_children

let pp_tree ppf t =
  Format.fprintf ppf "@[<v>";
  pp_instance ppf ~indent:0 t.root;
  List.iter
    (fun c ->
      Format.fprintf ppf "conn %s %s %s@," c.ci_src
        (if c.ci_immediate then "->" else "->>")
        c.ci_dst)
    t.connections;
  List.iter
    (fun (part, cpu) -> Format.fprintf ppf "binding %s on %s@," part cpu)
    t.bindings;
  Format.fprintf ppf "@]"
