open Syntax

exception Parse_error of string * int * int

(* Stable parser error codes (registered in Putil.Diag's registry). *)
let code_syntax = Putil.Diag.code "AADL-PARSE-001" "AADL syntax error"
let code_trailing =
  Putil.Diag.code "AADL-PARSE-002" "trailing input after a complete package"
let code_mismatched_end =
  Putil.Diag.code "AADL-PARSE-003"
    "'end' name does not match the declaration it closes"
let code_empty =
  Putil.Diag.code "AADL-PARSE-004" "source contains no package"
let code_lex = Putil.Diag.code "AADL-LEX-001" "AADL lexical error"

(* Internal error carrier keeping the code alongside the position; the
   public Parse_error drops the code for compatibility. *)
exception Perror of string * string * int * int

type state = {
  toks : Lexer.positioned array;
  mutable idx : int;
}

let cur st = st.toks.(st.idx)

let peek_tok st = (cur st).Lexer.tok

let loc_of st =
  let { Lexer.line; col; _ } = cur st in
  Syntax.loc ~line ~col

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let error ?(code = code_syntax) st fmt =
  let { Lexer.line; col; tok; _ } = cur st in
  Format.kasprintf
    (fun m ->
      raise
        (Perror
           (code,
            Printf.sprintf "%s (at '%s')" m (Lexer.token_to_string tok),
            line, col)))
    fmt

let expect st tok =
  if peek_tok st = tok then advance st
  else error st "expected '%s'" (Lexer.token_to_string tok)

(* Case-insensitive keyword handling. *)
let kw_eq a b = String.lowercase_ascii a = String.lowercase_ascii b

let peek_kw st =
  match peek_tok st with
  | Lexer.IDENT s -> Some (String.lowercase_ascii s)
  | _ -> None

let accept_kw st kw =
  match peek_tok st with
  | Lexer.IDENT s when kw_eq s kw ->
    advance st;
    true
  | _ -> false

let expect_kw st kw =
  if not (accept_kw st kw) then error st "expected keyword '%s'" kw

let ident st =
  match peek_tok st with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> error st "expected identifier"

(* qualified name: a::b::c *)
let qname st =
  let first = ident st in
  let rec go acc =
    if peek_tok st = Lexer.COLONCOLON then begin
      advance st;
      let next = ident st in
      go (acc ^ "::" ^ next)
    end
    else acc
  in
  go first

(* dot path: a.b.c *)
let dot_path st =
  let first = qname st in
  let rec go acc =
    if peek_tok st = Lexer.DOT then begin
      advance st;
      let next = ident st in
      go (acc ^ "." ^ next)
    end
    else acc
  in
  go first

(* ------------------------------------------------------------------ *)
(* Categories                                                          *)
(* ------------------------------------------------------------------ *)

(* Try to read a component category at the cursor (multi-word ones
   included). Does not consume on failure. *)
let try_category st =
  match peek_kw st with
  | Some "system" -> advance st; Some System
  | Some "process" -> advance st; Some Process
  | Some "thread" ->
    advance st;
    if accept_kw st "group" then Some Thread_group else Some Thread
  | Some "subprogram" -> advance st; Some Subprogram
  | Some "data" -> advance st; Some Data
  | Some "processor" -> advance st; Some Processor
  | Some "memory" -> advance st; Some Memory
  | Some "bus" -> advance st; Some Bus
  | Some "device" -> advance st; Some Device
  | Some "virtual" ->
    advance st;
    if accept_kw st "processor" then Some Virtual_processor
    else if accept_kw st "bus" then Some Virtual_bus
    else error st "expected 'processor' or 'bus' after 'virtual'"
  | _ -> None

let category st =
  match try_category st with
  | Some c -> c
  | None -> error st "expected component category"

(* ------------------------------------------------------------------ *)
(* Property values                                                     *)
(* ------------------------------------------------------------------ *)

let rec property_value st =
  let base =
    match peek_tok st with
    | Lexer.INT n ->
      advance st;
      (* a unit is any identifier except the 'applies' keyword *)
      let unit_ =
        match peek_kw st with
        | Some u when u <> "applies" ->
          advance st;
          Some u
        | _ -> None
      in
      Pint (n, unit_)
    | Lexer.REAL r ->
      advance st;
      let unit_ =
        match peek_kw st with
        | Some u when u <> "applies" ->
          advance st;
          Some u
        | _ -> None
      in
      Preal (r, unit_)
    | Lexer.STRING s ->
      advance st;
      Pstring s
    | Lexer.LPAREN ->
      advance st;
      if peek_tok st = Lexer.RPAREN then begin
        advance st;
        Plist []
      end
      else begin
        let first = property_value st in
        let rec items acc =
          if peek_tok st = Lexer.COMMA then begin
            advance st;
            let v = property_value st in
            items (v :: acc)
          end
          else acc
        in
        let vs = List.rev (items [ first ]) in
        expect st Lexer.RPAREN;
        match vs with
        | [ _one ] -> Plist vs  (* keep singleton lists as lists *)
        | _ -> Plist vs
      end
    | Lexer.LBRACKET ->
      (* record values, e.g. [Time => Start; Offset => 0 ms .. 0 ms;] —
         we keep only the Time field as a name, a simplification of the
         AADL timing record *)
      advance st;
      let fields = ref [] in
      let rec go () =
        match peek_tok st with
        | Lexer.RBRACKET -> advance st
        | Lexer.IDENT _ ->
          let fname = ident st in
          expect st Lexer.ASSOC;
          let v = property_value st in
          fields := (String.lowercase_ascii fname, v) :: !fields;
          if peek_tok st = Lexer.SEMI then advance st;
          go ()
        | _ -> error st "expected field or ']' in record value"
      in
      go ();
      (match List.assoc_opt "time" !fields with
       | Some v -> v
       | None -> Plist (List.map snd !fields))
    | Lexer.IDENT s when kw_eq s "true" ->
      advance st;
      Pbool true
    | Lexer.IDENT s when kw_eq s "false" ->
      advance st;
      Pbool false
    | Lexer.IDENT s when kw_eq s "reference" ->
      advance st;
      expect st Lexer.LPAREN;
      let p = dot_path st in
      expect st Lexer.RPAREN;
      Preference p
    | Lexer.IDENT s when kw_eq s "classifier" ->
      advance st;
      expect st Lexer.LPAREN;
      let p = dot_path st in
      expect st Lexer.RPAREN;
      Pclassifier p
    | Lexer.IDENT _ ->
      let n = dot_path st in
      Pname n
    | _ -> error st "expected property value"
  in
  if peek_tok st = Lexer.DOTDOT then begin
    advance st;
    let hi = property_value st in
    Prange (base, hi)
  end
  else base

let property_assoc st =
  let pa_loc = loc_of st in
  let pname = qname st in
  (match peek_tok st with
   | Lexer.ASSOC | Lexer.PLUS_ASSOC -> advance st
   | _ -> error st "expected '=>'");
  let pvalue = property_value st in
  let applies_to =
    if accept_kw st "applies" then begin
      expect_kw st "to";
      let first = dot_path st in
      let rec go acc =
        if peek_tok st = Lexer.COMMA then begin
          advance st;
          let p = dot_path st in
          go (p :: acc)
        end
        else List.rev acc
      in
      go [ first ]
    end
    else []
  in
  expect st Lexer.SEMI;
  { pname; pvalue; applies_to; pa_loc }

(* properties section: 'properties' (assoc ';')* or 'none ;' *)
let properties_section st =
  if accept_kw st "none" then begin
    expect st Lexer.SEMI;
    []
  end
  else begin
    let rec go acc =
      match peek_tok st with
      | Lexer.IDENT s
        when not
               (List.mem (String.lowercase_ascii s)
                  [ "end"; "features"; "subcomponents"; "connections";
                    "properties"; "calls"; "flows"; "modes"; "annex" ]) ->
        let pa = property_assoc st in
        go (pa :: acc)
      | _ -> List.rev acc
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Features                                                            *)
(* ------------------------------------------------------------------ *)

let direction st =
  if accept_kw st "in" then
    if accept_kw st "out" then Dinout else Din
  else if accept_kw st "out" then Dout
  else error st "expected port direction"

let feature st =
  let floc = loc_of st in
  let fname = ident st in
  expect st Lexer.COLON;
  let f =
    let is_requires = accept_kw st "requires" in
    let is_provides = (not is_requires) && accept_kw st "provides" in
    if is_requires || is_provides then begin
      let provided = is_provides in
      if accept_kw st "data" then begin
        expect_kw st "access";
        let dtype =
          match peek_tok st with
          | Lexer.IDENT _ -> Some (dot_path st)
          | _ -> None
        in
        let right = ref Read_write in
        if peek_tok st = Lexer.LBRACE then begin
          advance st;
          let rec go () =
            match peek_tok st with
            | Lexer.RBRACE -> advance st
            | _ ->
              let pa = property_assoc st in
              (if kw_eq pa.pname "Access_Right" then
                 match pa.pvalue with
                 | Pname n when kw_eq n "read_only" -> right := Read_only
                 | Pname n when kw_eq n "write_only" -> right := Write_only
                 | _ -> ());
              go ()
          in
          go ()
        end;
        Data_access { fname; dtype; right = !right; provided; floc }
      end
      else if accept_kw st "subprogram" then begin
        expect_kw st "access";
        let spec =
          match peek_tok st with
          | Lexer.IDENT _ -> Some (dot_path st)
          | _ -> None
        in
        Subprogram_access { fname; spec; provided; floc }
      end
      else error st "expected 'data access' or 'subprogram access'"
    end
    else begin
      let dir = direction st in
      let kind =
        if accept_kw st "event" then
          if accept_kw st "data" then begin
            expect_kw st "port";
            Event_data_port
          end
          else begin
            expect_kw st "port";
            Event_port
          end
        else if accept_kw st "data" then begin
          expect_kw st "port";
          Data_port
        end
        else error st "expected port kind"
      in
      let dtype =
        match peek_tok st with
        | Lexer.IDENT s
          when not (kw_eq s "applies") ->
          Some (dot_path st)
        | _ -> None
      in
      (* optional property block *)
      let fprops = ref [] in
      if peek_tok st = Lexer.LBRACE then begin
        advance st;
        let rec go () =
          match peek_tok st with
          | Lexer.RBRACE -> advance st
          | _ ->
            let pa = property_assoc st in
            fprops := pa :: !fprops;
            go ()
        in
        go ()
      end;
      Port { fname; dir; kind; dtype; fprops = List.rev !fprops; floc }
    end
  in
  expect st Lexer.SEMI;
  f

let features_section st =
  if accept_kw st "none" then begin
    expect st Lexer.SEMI;
    []
  end
  else begin
    let rec go acc =
      match peek_tok st, peek_kw st with
      | Lexer.IDENT _, Some kw
        when not
               (List.mem kw
                  [ "end"; "properties"; "subcomponents"; "connections";
                    "flows"; "modes"; "annex" ]) ->
        let f = feature st in
        go (f :: acc)
      | _ -> List.rev acc
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Subcomponents and connections                                       *)
(* ------------------------------------------------------------------ *)

let subcomponent st =
  let sc_loc = loc_of st in
  let sc_name = ident st in
  expect st Lexer.COLON;
  let sc_category = category st in
  let sc_classifier =
    match peek_tok st with
    | Lexer.IDENT s when not (kw_eq s "applies") -> Some (dot_path st)
    | _ -> None
  in
  let sc_properties = ref [] in
  if peek_tok st = Lexer.LBRACE then begin
    advance st;
    let rec go () =
      match peek_tok st with
      | Lexer.RBRACE -> advance st
      | _ ->
        let pa = property_assoc st in
        sc_properties := pa :: !sc_properties;
        go ()
    in
    go ()
  end;
  expect st Lexer.SEMI;
  { sc_name; sc_category; sc_classifier;
    sc_properties = List.rev !sc_properties; sc_loc }

let subcomponents_section st =
  if accept_kw st "none" then begin
    expect st Lexer.SEMI;
    []
  end
  else begin
    let rec go acc =
      match peek_tok st, peek_kw st with
      | Lexer.IDENT _, Some kw
        when not
               (List.mem kw
                  [ "end"; "properties"; "connections"; "calls"; "flows";
                    "modes"; "annex" ]) ->
        let sc = subcomponent st in
        go (sc :: acc)
      | _ -> List.rev acc
    in
    go []
  end

let connection st =
  let conn_loc = loc_of st in
  let conn_name = ident st in
  expect st Lexer.COLON;
  let conn_kind =
    if accept_kw st "port" then Port_connection
    else if accept_kw st "data" then begin
      expect_kw st "access";
      Access_connection
    end
    else if accept_kw st "bus" then begin
      expect_kw st "access";
      Access_connection
    end
    else error st "expected 'port', 'data access' or 'bus access'"
  in
  let conn_src = dot_path st in
  let immediate =
    match peek_tok st with
    | Lexer.ARROW ->
      advance st;
      true
    | Lexer.DARROW ->
      advance st;
      false
    | _ -> error st "expected '->' or '->>'"
  in
  let conn_dst = dot_path st in
  let conn_properties = ref [] in
  if peek_tok st = Lexer.LBRACE then begin
    advance st;
    let rec go () =
      match peek_tok st with
      | Lexer.RBRACE -> advance st
      | _ ->
        let pa = property_assoc st in
        conn_properties := pa :: !conn_properties;
        go ()
    in
    go ()
  end;
  expect st Lexer.SEMI;
  { conn_name; conn_kind; conn_src; conn_dst; immediate;
    conn_properties = List.rev !conn_properties; conn_loc }

let connections_section st =
  if accept_kw st "none" then begin
    expect st Lexer.SEMI;
    []
  end
  else begin
    let rec go acc =
      match peek_tok st, peek_kw st with
      | Lexer.IDENT _, Some kw
        when not
               (List.mem kw
                  [ "end"; "properties"; "flows"; "modes"; "annex" ]) ->
        let c = connection st in
        go (c :: acc)
      | _ -> List.rev acc
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Modes (SIGNAL-automata extension)                                   *)
(* ------------------------------------------------------------------ *)

(* modes
     Nominal: initial mode;
     Degraded: mode;
     t1: Nominal -[ pFault ]-> Degraded;
   A transition with several triggers expands to one transition per
   trigger (any of them fires it). *)
let modes_section st =
  let modes = ref [] and transitions = ref [] in
  let rec go () =
    match peek_tok st, peek_kw st with
    | Lexer.IDENT _, Some kw
      when not
             (List.mem kw
                [ "end"; "features"; "properties"; "subcomponents";
                  "connections"; "flows"; "annex" ]) ->
      let item_loc = loc_of st in
      let name = ident st in
      expect st Lexer.COLON;
      (if accept_kw st "initial" then begin
         expect_kw st "mode";
         modes := { m_name = name; m_initial = true; m_loc = item_loc } :: !modes
       end
       else if accept_kw st "mode" then
         modes := { m_name = name; m_initial = false; m_loc = item_loc } :: !modes
       else begin
         let src = ident st in
         expect st Lexer.TRANS_L;
         let first = ident st in
         let rec triggers acc =
           if peek_tok st = Lexer.COMMA then begin
             advance st;
             let t = ident st in
             triggers (t :: acc)
           end
           else List.rev acc
         in
         let trigs = triggers [ first ] in
         expect st Lexer.RBRACKET;
         (match peek_tok st with
          | Lexer.ARROW -> advance st
          | _ -> error st "expected ']->' in mode transition");
         let dst = ident st in
         List.iter
           (fun trig ->
             transitions :=
               { mt_name = name; mt_src = src; mt_trigger = trig;
                 mt_dst = dst; mt_loc = item_loc }
               :: !transitions)
           trigs
       end);
      expect st Lexer.SEMI;
      go ()
    | _ -> ()
  in
  go ();
  (List.rev !modes, List.rev !transitions)

(* annex subclauses: accepted and skipped (the paper defers the
   behaviour annex to SIGNAL automata, which modes cover) *)
let annex_clause st =
  let _name = ident st in
  (match peek_tok st with
   | Lexer.ANNEX_BLOB _ -> advance st
   | _ -> error st "expected an {** ... **} annex blob");
  expect st Lexer.SEMI

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let declaration st =
  let decl_loc = loc_of st in
  let cat = category st in
  if accept_kw st "implementation" then begin
    let tname = ident st in
    expect st Lexer.DOT;
    let iname = ident st in
    let full = tname ^ "." ^ iname in
    let ci_extends =
      if accept_kw st "extends" then Some (dot_path st) else None
    in
    let subs = ref [] and conns = ref [] and props = ref [] in
    let rec sections () =
      if accept_kw st "subcomponents" then begin
        subs := subcomponents_section st;
        sections ()
      end
      else if accept_kw st "connections" then begin
        conns := connections_section st;
        sections ()
      end
      else if accept_kw st "properties" then begin
        props := properties_section st;
        sections ()
      end
      else if accept_kw st "annex" then begin
        annex_clause st;
        sections ()
      end
      else if accept_kw st "calls" then begin
        (* accept and skip call sequences up to the next section *)
        let rec skip () =
          match peek_kw st with
          | Some ("end" | "properties" | "connections" | "subcomponents") -> ()
          | _ ->
            advance st;
            skip ()
        in
        skip ();
        sections ()
      end
    in
    sections ();
    expect_kw st "end";
    let e_tname = ident st in
    expect st Lexer.DOT;
    let e_iname = ident st in
    if not (kw_eq e_tname tname && kw_eq e_iname iname) then
      error ~code:code_mismatched_end st
        "mismatched 'end %s.%s' for implementation %s" e_tname e_iname full;
    expect st Lexer.SEMI;
    Dimpl
      { ci_name = full; ci_type = tname; ci_category = cat; ci_extends;
        ci_subcomponents = !subs; ci_connections = !conns;
        ci_properties = !props; ci_loc = decl_loc }
  end
  else begin
    let ct_name = ident st in
    let ct_extends =
      if accept_kw st "extends" then Some (dot_path st) else None
    in
    let feats = ref [] and props = ref [] in
    let modes = ref [] and transitions = ref [] in
    let rec sections () =
      if accept_kw st "features" then begin
        feats := features_section st;
        sections ()
      end
      else if accept_kw st "properties" then begin
        props := properties_section st;
        sections ()
      end
      else if accept_kw st "modes" then begin
        let ms, ts = modes_section st in
        modes := ms;
        transitions := ts;
        sections ()
      end
      else if accept_kw st "annex" then begin
        annex_clause st;
        sections ()
      end
    in
    sections ();
    expect_kw st "end";
    let e_name = ident st in
    if not (kw_eq e_name ct_name) then
      error ~code:code_mismatched_end st
        "mismatched 'end %s' for component type %s" e_name ct_name;
    expect st Lexer.SEMI;
    Dtype
      { ct_name; ct_category = cat; ct_extends; ct_features = !feats;
        ct_properties = !props; ct_modes = !modes;
        ct_transitions = !transitions; ct_loc = decl_loc }
  end

let package_body st =
  expect_kw st "package";
  let pkg_name = qname st in
  let _ = accept_kw st "public" in
  let imports = ref [] in
  while accept_kw st "with" do
    let first = qname st in
    imports := first :: !imports;
    while peek_tok st = Lexer.COMMA do
      advance st;
      let n = qname st in
      imports := n :: !imports
    done;
    expect st Lexer.SEMI
  done;
  let decls = ref [] in
  let rec go () =
    match peek_kw st with
    | Some "end" -> ()
    | Some _ ->
      let d = declaration st in
      decls := d :: !decls;
      go ()
    | None -> error st "expected declaration or 'end'"
  in
  go ();
  expect_kw st "end";
  let e_name = qname st in
  if not (kw_eq e_name pkg_name) then
    error ~code:code_mismatched_end st "mismatched 'end %s' for package %s"
      e_name pkg_name;
  expect st Lexer.SEMI;
  { pkg_name; pkg_imports = List.rev !imports; pkg_decls = List.rev !decls }

let with_state src f =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; idx = 0 } in
  let r = f st in
  (match peek_tok st with
   | Lexer.EOF -> ()
   | _ -> error ~code:code_trailing st "trailing input after package");
  r

let parse_package_exn src =
  try with_state src package_body with
  | Perror (_, m, l, c) -> raise (Parse_error (m, l, c))
  | Lexer.Lex_error (m, l, c) -> raise (Parse_error (m, l, c))

let parse_package src =
  match parse_package_exn src with
  | pkg -> Ok pkg
  | exception Parse_error (m, l, c) ->
    Error (Printf.sprintf "parse error at %d:%d: %s" l c m)

(* property set Name is ... end Name; — accepted and skimmed: the
   declared property names are free-form and our typed accessors match
   by (unqualified) name anyway *)
let property_set st =
  expect_kw st "property";
  expect_kw st "set";
  let name = ident st in
  expect_kw st "is";
  let rec skim () =
    match peek_tok st with
    | Lexer.EOF -> error st "unterminated property set %s" name
    | Lexer.IDENT s when kw_eq s "end" -> (
      (* only the matching "end <name> ;" closes the set *)
      match st.toks.(st.idx + 1).Lexer.tok, st.toks.(st.idx + 2).Lexer.tok with
      | Lexer.IDENT n, Lexer.SEMI when kw_eq n name ->
        advance st; advance st; advance st
      | _ ->
        advance st;
        skim ())
    | _ ->
      advance st;
      skim ()
  in
  skim ()

let packages_body st =
  let rec go acc =
    match peek_tok st, peek_kw st with
    | Lexer.EOF, _ -> List.rev acc
    | _, Some "property" ->
      property_set st;
      go acc
    | _, _ -> go (package_body st :: acc)
  in
  match go [] with
  | [] -> error ~code:code_empty st "expected at least one package"
  | pkgs -> pkgs

let parse_packages src =
  Putil.Tracing.with_span "aadl.parse"
    ~args:[ ("bytes", Putil.Tracing.Aint (String.length src)) ]
  @@ fun () ->
  match with_state src packages_body with
  | pkgs -> Ok pkgs
  | exception Perror (_, m, l, c) ->
    Error (Printf.sprintf "parse error at %d:%d: %s" l c m)
  | exception Lexer.Lex_error (m, l, c) ->
    Error (Printf.sprintf "parse error at %d:%d: %s" l c m)

let diag_of ?file code m l c =
  Putil.Diag.errorf ~span:(Putil.Diag.span ?file ~line:l ~col:c ())
    ~code "%s" m

let parse_packages_diag ?file src =
  Putil.Tracing.with_span "aadl.parse"
    ~args:[ ("bytes", Putil.Tracing.Aint (String.length src)) ]
  @@ fun () ->
  match with_state src packages_body with
  | pkgs -> Ok pkgs
  | exception Perror (code, m, l, c) -> Error [ diag_of ?file code m l c ]
  | exception Lexer.Lex_error (m, l, c) -> Error [ diag_of ?file code_lex m l c ]

let parse_package_diag ?file src =
  match with_state src package_body with
  | pkg -> Ok pkg
  | exception Perror (code, m, l, c) -> Error [ diag_of ?file code m l c ]
  | exception Lexer.Lex_error (m, l, c) -> Error [ diag_of ?file code_lex m l c ]

let parse_property_value src =
  try
    let toks = Array.of_list (Lexer.tokenize src) in
    let st = { toks; idx = 0 } in
    let v = property_value st in
    (match peek_tok st with
     | Lexer.EOF -> Ok v
     | _ -> Error "trailing input after property value")
  with
  | Perror (_, m, l, c) | Lexer.Lex_error (m, l, c) ->
    Error (Printf.sprintf "parse error at %d:%d: %s" l c m)
