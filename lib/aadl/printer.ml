open Syntax

let rec pp_property_value ppf = function
  | Pint (n, None) -> Format.fprintf ppf "%d" n
  | Pint (n, Some u) -> Format.fprintf ppf "%d %s" n u
  | Preal (r, None) -> Format.fprintf ppf "%g" r
  | Preal (r, Some u) -> Format.fprintf ppf "%g %s" r u
  | Pstring s -> Format.fprintf ppf "%S" s
  | Pbool b -> Format.pp_print_string ppf (if b then "true" else "false")
  | Pname n -> Format.pp_print_string ppf n
  | Preference p -> Format.fprintf ppf "reference (%s)" p
  | Pclassifier p -> Format.fprintf ppf "classifier (%s)" p
  | Plist vs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_property_value)
      vs
  | Prange (lo, hi) ->
    Format.fprintf ppf "%a .. %a" pp_property_value lo pp_property_value hi

let pp_property_assoc ppf pa =
  Format.fprintf ppf "%s => %a" pa.pname pp_property_value pa.pvalue;
  (match pa.applies_to with
   | [] -> ()
   | paths ->
     Format.fprintf ppf " applies to %a"
       (Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
          Format.pp_print_string)
       paths);
  Format.fprintf ppf ";"

let direction_to_string = function
  | Din -> "in"
  | Dout -> "out"
  | Dinout -> "in out"

let port_kind_to_string = function
  | Data_port -> "data port"
  | Event_port -> "event port"
  | Event_data_port -> "event data port"

let pp_feature ppf = function
  | Port { fname; dir; kind; dtype; fprops; _ } ->
    Format.fprintf ppf "%s: %s %s" fname (direction_to_string dir)
      (port_kind_to_string kind);
    (match dtype with
     | Some d -> Format.fprintf ppf " %s" d
     | None -> ());
    (match fprops with
     | [] -> ()
     | props ->
       Format.fprintf ppf " {%a}"
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
            pp_property_assoc)
         props);
    Format.fprintf ppf ";"
  | Data_access { fname; dtype; right; provided; _ } ->
    Format.fprintf ppf "%s: %s data access" fname
      (if provided then "provides" else "requires");
    (match dtype with
     | Some d -> Format.fprintf ppf " %s" d
     | None -> ());
    (match right with
     | Read_write -> ()
     | Read_only -> Format.fprintf ppf " {Access_Right => read_only;}"
     | Write_only -> Format.fprintf ppf " {Access_Right => write_only;}");
    Format.fprintf ppf ";"
  | Subprogram_access { fname; spec; provided; _ } ->
    Format.fprintf ppf "%s: %s subprogram access" fname
      (if provided then "provides" else "requires");
    (match spec with
     | Some s -> Format.fprintf ppf " %s" s
     | None -> ());
    Format.fprintf ppf ";"

let pp_section ppf ~title pp items =
  match items with
  | [] -> ()
  | _ ->
    Format.fprintf ppf "@,@[<v 2>%s@,%a@]" title
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp)
      items

let pp_mode ppf m =
  Format.fprintf ppf "%s: %smode;" m.m_name (if m.m_initial then "initial " else "")

let pp_mode_transition ppf mt =
  Format.fprintf ppf "%s: %s -[ %s ]-> %s;" mt.mt_name mt.mt_src mt.mt_trigger
    mt.mt_dst

let pp_component_type ppf ct =
  Format.fprintf ppf "@[<v 2>%s %s%s"
    (category_to_string ct.ct_category)
    ct.ct_name
    (match ct.ct_extends with
     | Some e -> " extends " ^ e
     | None -> "");
  pp_section ppf ~title:"features" pp_feature ct.ct_features;
  (match ct.ct_modes, ct.ct_transitions with
   | [], [] -> ()
   | ms, ts ->
     Format.fprintf ppf "@,@[<v 2>modes";
     List.iter (fun m -> Format.fprintf ppf "@,%a" pp_mode m) ms;
     List.iter (fun t -> Format.fprintf ppf "@,%a" pp_mode_transition t) ts;
     Format.fprintf ppf "@]");
  pp_section ppf ~title:"properties" pp_property_assoc ct.ct_properties;
  Format.fprintf ppf "@]@,end %s;" ct.ct_name

let pp_subcomponent ppf sc =
  Format.fprintf ppf "%s: %s" sc.sc_name (category_to_string sc.sc_category);
  (match sc.sc_classifier with
   | Some c -> Format.fprintf ppf " %s" c
   | None -> ());
  (match sc.sc_properties with
   | [] -> ()
   | props ->
     Format.fprintf ppf " {%a}"
       (Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
          pp_property_assoc)
       props);
  Format.fprintf ppf ";"

let pp_connection ppf c =
  let kind =
    match c.conn_kind with
    | Port_connection -> "port"
    | Access_connection -> "data access"
  in
  Format.fprintf ppf "%s: %s %s %s %s;" c.conn_name kind c.conn_src
    (if c.immediate then "->" else "->>")
    c.conn_dst

let pp_component_impl ppf ci =
  Format.fprintf ppf "@[<v 2>%s implementation %s%s"
    (category_to_string ci.ci_category)
    ci.ci_name
    (match ci.ci_extends with
     | Some e -> " extends " ^ e
     | None -> "");
  pp_section ppf ~title:"subcomponents" pp_subcomponent ci.ci_subcomponents;
  pp_section ppf ~title:"connections" pp_connection ci.ci_connections;
  pp_section ppf ~title:"properties" pp_property_assoc ci.ci_properties;
  Format.fprintf ppf "@]@,end %s;" ci.ci_name

let pp_declaration ppf = function
  | Dtype ct -> pp_component_type ppf ct
  | Dimpl ci -> pp_component_impl ppf ci

let pp_package ppf pkg =
  Format.fprintf ppf "@[<v>package %s@,public@," pkg.pkg_name;
  List.iter (fun w -> Format.fprintf ppf "with %s;@," w) pkg.pkg_imports;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
    pp_declaration ppf pkg.pkg_decls;
  Format.fprintf ppf "@,end %s;@]" pkg.pkg_name

let package_to_string pkg = Format.asprintf "%a" pp_package pkg
