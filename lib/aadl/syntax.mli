(** Abstract syntax of the AADL textual subset (SAE AS5506).

    The subset covers what the paper's tool chain consumes
    (Sec. IV-E): software components (process, thread, thread group,
    subprogram, data), execution platform components (processor,
    virtual processor, memory, bus, virtual bus, device), the composite
    system category, features (ports, data access, subprogram access),
    subcomponents, port and access connections, property associations
    (including [applies to] binding properties), and packages. Modes,
    flows and annexes are out of scope (the paper defers modes to
    future work). *)

type loc = {
  l_line : int;   (** 1-based; 0 = synthesized (no source position) *)
  l_col : int;
}

val no_loc : loc
val loc : line:int -> col:int -> loc

type category =
  | System
  | Process
  | Thread
  | Thread_group
  | Subprogram
  | Data
  | Processor
  | Virtual_processor
  | Memory
  | Bus
  | Virtual_bus
  | Device

val category_to_string : category -> string
val category_of_string : string -> category option

type direction = Din | Dout | Dinout

type port_kind = Data_port | Event_port | Event_data_port

type access_right = Read_only | Write_only | Read_write

type property_value =
  | Pint of int * string option       (** integer with optional unit *)
  | Preal of float * string option
  | Pstring of string
  | Pbool of bool
  | Pname of string                   (** enumeration literal / identifier *)
  | Preference of string              (** reference (path) *)
  | Pclassifier of string             (** classifier (name) *)
  | Plist of property_value list
  | Prange of property_value * property_value

type property_assoc = {
  pname : string;                     (** possibly qualified, [Set::Name] *)
  pvalue : property_value;
  applies_to : string list;           (** dot-paths; empty = self *)
  pa_loc : loc;
}

val assoc :
  ?loc:loc -> string -> property_value -> string list -> property_assoc
(** Build a property association; [loc] defaults to {!no_loc}. *)

type feature =
  | Port of {
      fname : string;
      dir : direction;
      kind : port_kind;
      dtype : string option;  (** data classifier, e.g. [Base_Types::Integer] *)
      fprops : property_assoc list;  (** port properties, e.g. Queue_Size *)
      floc : loc;
    }
  | Data_access of {
      fname : string;
      dtype : string option;
      right : access_right;
      provided : bool;  (** [provides] vs [requires] *)
      floc : loc;
    }
  | Subprogram_access of {
      fname : string;
      spec : string option;
      provided : bool;
      floc : loc;
    }

val feature_name : feature -> string
val feature_loc : feature -> loc

type subcomponent = {
  sc_name : string;
  sc_category : category;
  sc_classifier : string option;      (** ["thProducer.impl"] or type name *)
  sc_properties : property_assoc list;
  sc_loc : loc;
}

type connection_kind = Port_connection | Access_connection

type connection = {
  conn_name : string;
  conn_kind : connection_kind;
  conn_src : string;                  (** dot-path, e.g. ["thProducer.pOut"] *)
  conn_dst : string;
  immediate : bool;                   (** [->] immediate vs [->>] delayed *)
  conn_properties : property_assoc list;
  conn_loc : loc;
}

(** Mode-automaton support (paper Sec. VII perspective: modes handled
    as SIGNAL automata). *)

type mode = {
  m_name : string;
  m_initial : bool;
  m_loc : loc;
}

type mode_transition = {
  mt_name : string;
  mt_src : string;        (** source mode *)
  mt_trigger : string;    (** in event port arming the transition *)
  mt_dst : string;        (** destination mode *)
  mt_loc : loc;
}

type component_type = {
  ct_name : string;
  ct_category : category;
  ct_extends : string option;
  ct_features : feature list;
  ct_properties : property_assoc list;
  ct_modes : mode list;
  ct_transitions : mode_transition list;
  ct_loc : loc;
}

type component_impl = {
  ci_name : string;                   (** ["prProdCons.impl"] *)
  ci_type : string;                   (** ["prProdCons"] *)
  ci_category : category;
  ci_extends : string option;
  ci_subcomponents : subcomponent list;
  ci_connections : connection list;
  ci_properties : property_assoc list;
  ci_loc : loc;
}

type declaration =
  | Dtype of component_type
  | Dimpl of component_impl

type package = {
  pkg_name : string;
  pkg_imports : string list;          (** [with] clauses *)
  pkg_decls : declaration list;
}

val strip_locs : package -> package
(** Erase every source location ({!no_loc} everywhere), e.g. to
    compare two parses structurally (printer round-trips). *)

val impl_base_name : string -> string
(** ["prProdCons.impl"] → ["prProdCons"]. *)

val find_type : package -> string -> component_type option
val find_impl : package -> string -> component_impl option

val find_feature : component_type -> string -> feature option

val property_names : package -> string list
(** All distinct property names used in the package, sorted. *)
