(** Legality and consistency checks on declarative AADL models — the
    early-phase analyses performed on ASME models before translation. *)

type severity = Error | Warning

type issue = {
  severity : severity;
  where : string;     (** component or connection concerned *)
  message : string;
  code : string;      (** stable [AADL-CHECK-0xx] code *)
  loc : Syntax.loc;   (** declaration position ({!Syntax.no_loc} if unknown) *)
}

val check_package : Syntax.package -> issue list
(** All issues found:
    - implementations whose component type is missing;
    - subcomponents with unresolvable classifiers;
    - subcomponent categories not allowed in their container
      (threads only in processes/thread groups, processes not inside
      processes, …);
    - connection endpoints that do not name an existing feature;
    - port connections from an in port or into an out port (at the
      same level);
    - periodic threads without a Period (error) or Deadline (warning,
      defaults to the period);
    - timing properties with unparsable durations. *)

val errors : issue list -> issue list
val warnings : issue list -> issue list

val pp_issue : Format.formatter -> issue -> unit

val diag_of_issue : ?file:string -> issue -> Putil.Diag.t
val to_diags : ?file:string -> issue list -> Putil.Diag.t list
(** Issues as structured diagnostics; [file] names the source in
    reported spans. *)
