(** End-to-end pipeline: AADL text → instance model → SIGNAL program
    (ASME2SSME) → clock calculus → static analyses → scheduled
    simulation → chronograms and VCD.

    This is the programmatic face of the paper's tool chain
    (Sec. IV-E). *)

(** Per-model analysis unit: the analyses of one generated SIGNAL
    model, standalone (inputs free), in the model's own namespace.
    Pure data, so units persist in a {!Putil.Cache_store} and replay
    across process invocations. The [pa_iface_*] fields summarize the
    model's interface for the compositional glue analysis: relations
    among interface signals provable from the model alone, hence sound
    under any composition (composition only adds constraints). *)
type proc_analysis = {
  pa_model : string;
  pa_consistent : bool;
  pa_conflicts : string list;
  pa_null : string list;
  pa_determinism : Analysis.Determinism.report;
  pa_deadlock : Analysis.Deadlock.report;
  pa_iface_eq : (string * string) list;   (** synchronous pairs *)
  pa_iface_le : (string * string) list;   (** subclock pairs *)
  pa_iface_ex : (string * string) list;   (** exclusive pairs *)
  pa_iface_null : string list;            (** provably never present *)
  pa_iface_dep : (string * string) list;
      (** instantaneous input → output dependencies, for the glue
          deadlock analysis ({!Analysis.Deadlock.dependency_graph}'s
          [extra_edges]) *)
}

(** Analyses of the glue kernel — the host process with spliced model
    content abstracted away and interface summaries injected. *)
type glue_analysis = {
  ga_consistent : bool;
  ga_conflicts : string list;
  ga_null : string list;
  ga_determinism : Analysis.Determinism.report;
  ga_deadlock : Analysis.Deadlock.report;
}

type analyzed = {
  package : Aadl.Syntax.package;
  aadl_issues : Aadl.Check.issue list;
  instance : Aadl.Instance.t;
  translation : Trans.System_trans.output;
  kernel : Signal_lang.Kernel.kprocess;   (** normalized top process *)
  glue_kernel : Signal_lang.Kernel.kprocess;
      (** host-side abstraction of [kernel]: spliced model content
          omitted, model outputs free (see
          {!Signal_lang.Normalize.process_linked}) *)
  links : Signal_lang.Normalize.link list;
      (** one per spliced model instance, with the model-local →
          host-kernel renaming *)
  proc_analyses : (string * proc_analysis) list;
      (** per-model analysis units, keyed by model process name *)
  glue : glue_analysis;
  typed_program : Signal_lang.Ast.typed Signal_lang.Ast.gprogram;
      (** the generated program in the [typed] phase: every expression
          mark carries its inferred SIGNAL type *)
  clocked_decls :
    Signal_lang.Ast.clocked Signal_lang.Ast.gvardecl list Lazy.t;
      (** the kernel's declarations in the [clocked] phase: each mark
          records the signal's synchronization class *)
  calc : Clocks.Calculus.t Lazy.t;
      (** whole-kernel clock calculus. Lazy: the analysis verdicts come
          from the per-model units and the glue analysis, so the
          monolithic calculus only runs when a consumer (summary
          printing, compilation diagnostics, cross-validation) forces
          it — keeping the incremental recheck path free of
          whole-system BDD work. *)
  hierarchy : Clocks.Hierarchy.t Lazy.t;  (** forces [calc] *)
  determinism : Analysis.Determinism.report;
      (** merged whole-system verdict (per-model units + glue, renamed
          into the linked namespace) *)
  deadlock : Analysis.Deadlock.report;    (** merged likewise *)
  typecheck_errors : Signal_lang.Typecheck.error list;
  diags : Putil.Diag.t list;
      (** every diagnostic accumulated across the run, in emission
          order: AADL legality issues, translation/scheduling defects,
          SIGNAL type errors, clock-calculus conflicts and the
          determinism/deadlock verdicts. Check
          {!Putil.Diag.has_errors} / {!Putil.Diag.exit_code} for the
          overall outcome. *)
  scope : string option;
      (** the session's observation-scope label when analyzed through a
          session ({!Putil.Obs}); {!simulate}/{!verify} re-enter the
          same scope so a whole session attributes to one registry *)
}

(** {1 Incremental sessions}

    A session caches every pipeline stage output under a content
    digest of that stage's input, so re-analyzing edited source reruns
    only the affected prefix: parse/instantiate/translate key on the
    source, while typecheck, normalization and the clock/boolean
    analyses key on the digest of the {e generated program} (resp.
    kernel). Combined with {!Trans.System_trans.External} translation
    — which keeps the generated program invariant under timing-only
    edits — editing one thread's period reruns only the front
    stages and replays cached results (including their diagnostics)
    for everything downstream. Stage traffic is counted by the
    [incr.<stage>.ran] / [incr.<stage>.skipped] metrics shown by
    {!pp_stats}.

    Below the whole-stage caches, typecheck, normalization and the
    analyses are {e per-process}: each generated SIGNAL process
    (model) has its own cache unit keyed on its own content digest, so
    when the program {e did} change, only the edited process's
    typecheck/normalize/analyze reruns — untouched processes replay
    cached results. The [incr.<stage>.proc_ran] / [.proc_skipped]
    metrics count that traffic. With a persistent [store], per-process
    units are additionally written through to disk and survive process
    exit: a fresh session opened on a warm store skips straight to
    replay ({!Putil.Cache_store}).

    Cached stages are pure, so a warm re-analysis returns results
    byte-identical to a cold one. The behaviour registry is assumed
    stable across one session; registries fold their stable
    {!Trans.Behavior.id} into the stage key. *)

type session

val new_session :
  ?label:string -> ?store:Putil.Cache_store.t -> unit -> session
(** [label] names the session's observation scope ({!Putil.Obs}):
    every {!analyze}/{!simulate}/{!verify} run through the session
    records its metrics and trace spans under that scope in addition
    to the global roll-up. Defaults to a fresh [session-N]. *)

val session_label : session -> string

val analyze :
  ?session:session ->
  ?registry:Trans.Behavior.registry ->
  ?policy:Sched.Static_sched.policy ->
  ?mode:Trans.System_trans.mode ->
  ?root:string ->
  ?file:string ->
  string ->
  (analyzed, Putil.Diag.t list) result
(** Parse (the source may contain several packages; qualified
    classifiers such as [Lib::worker.impl] resolve across them),
    instantiate (root defaults to the top-most system implementation),
    translate, normalize, run the clock calculus and both static
    analyses.

    Defects {e accumulate}: independent failures — an AADL legality
    error, a type error in the generated SIGNAL, an infeasible thread
    set — are all reported in one run, each as a coded, located
    {!Putil.Diag.t}. [Error] is returned only when a stage failure
    prevents building the record (syntax error, unresolvable root,
    fatal translation, normalization failure), carrying everything
    accumulated up to that point; otherwise the full list (errors
    included) rides in [analyzed.diags]. [file] names the AADL source
    in diagnostic spans. *)

val analyze_package :
  ?session:session ->
  ?registry:Trans.Behavior.registry ->
  ?policy:Sched.Static_sched.policy ->
  ?mode:Trans.System_trans.mode ->
  ?context:Aadl.Syntax.package list ->
  ?file:string ->
  root:string ->
  Aadl.Syntax.package ->
  (analyzed, Putil.Diag.t list) result

(** {1 Simulation} *)

val simulate :
  ?compiled:bool ->
  ?env:(int -> (string * int) list) ->
  ?hyperperiods:int ->
  analyzed ->
  (Polysim.Trace.t, Putil.Diag.t list) result
(** Drive the translated system: one engine instant per base tick of
    the (first) processor schedule, for the given number of
    hyper-periods (default 2). [env] supplies environment-port arrivals
    per instant, e.g. [fun t -> if t = 0 then [("env_pGo", 1)] else []];
    default: one arrival of value 1 on every environment input at
    instant 0. With [~compiled:true] the clock-directed compiled step
    ({!Polysim.Compile}) replaces the fixpoint interpreter — same
    traces, roughly an order of magnitude faster.

    Clock analysis and compilation are memoized on the kernel's
    structural digest (see {!Clocks.Calculus.analyze} and
    {!Polysim.Compile.compile}), so repeated simulations of one system
    pay the front-end once; the [pipeline.cache_hits] /
    [pipeline.cache_misses] counters in the metrics registry record
    the traffic. *)

val simulate_scenarios :
  ?envs:(int -> int -> (string * int) list) ->
  ?hyperperiods:int ->
  scenarios:int ->
  analyzed ->
  (Polysim.Trace.t array, Putil.Diag.t list) result
(** Lockstep multi-scenario simulation on the compiled path
    ({!Polysim.Compile.step_many}): [scenarios] copies of the system
    state advance together over one shared compiled plan, each driven
    by its own environment. [envs s t] supplies scenario [s]'s
    environment arrivals at instant [t]; the default delays each
    arrival by [s] base ticks (scenario 0 is the {!simulate} default).
    Returns one trace per scenario — identical to [scenarios]
    independent {!simulate} runs with the same environments, at a
    fraction of the cost. *)

val global_base_us : analyzed -> int
(** Microseconds of one simulated instant: the gcd of every
    processor's schedule base tick (1 without schedules). *)

val global_hyper_us : analyzed -> int
(** Microseconds of one global hyper-period: the lcm of every
    processor's hyper-period. *)

val base_ticks_per_hyperperiod : analyzed -> int

(** {1 Bounded verification} *)

type verify_engine = [ `Explicit | `Symbolic | `Auto ]
(** [`Explicit] enumerates states ({!Polysim.Explore.check}),
    [`Symbolic] runs BDD image computation
    ({!Polysim.Explore.check_symbolic}), [`Auto] tries symbolic first
    and falls back to explicit when the process is outside the
    symbolic fragment ([EXPLORE-SYM-001]). *)

val verify_inputs :
  analyzed ->
  (Signal_lang.Ast.ident * Signal_lang.Types.value option list) list
(** The exploration stimulus spec of a translated system: tick inputs
    always present; every environment input either arrives (value 1)
    or stays silent, independently, at each instant. *)

val verify :
  ?depth:int ->
  ?jobs:int ->
  ?engine:verify_engine ->
  never:Signal_lang.Ast.ident ->
  analyzed ->
  ( Polysim.Explore.verdict * int * [ `Explicit | `Symbolic ],
    Putil.Diag.t )
  result
(** Bounded check that [never] is never present, over
    {!verify_inputs}, up to [depth] instants (default 8). Returns the
    verdict, the reachable-state count, and which engine decided.
    [jobs] only affects the explicit engine; [engine] defaults to
    [`Auto]. *)

val verify_kernel :
  ?depth:int ->
  ?jobs:int ->
  ?engine:verify_engine ->
  never:Signal_lang.Ast.ident ->
  inputs:
    (Signal_lang.Ast.ident * Signal_lang.Types.value option list) list ->
  Signal_lang.Kernel.kprocess ->
  ( Polysim.Explore.verdict * int * [ `Explicit | `Symbolic ],
    Putil.Diag.t )
  result
(** {!verify} over an arbitrary kernel and stimulus spec — the engine
    dispatch shared by `verify --counters` and the benches. *)

val vcd_of_trace :
  ?signals:string list -> analyzed -> Polysim.Trace.t -> string
(** VCD dump of a simulation trace with a real timescale: one logical
    instant lasts the global base tick, so the dump declares
    [$timescale 1 us] and stamps [instant × base_us]. *)

val with_tracing :
  ?format:[ `Chrome | `Text ] -> trace_file:string -> (unit -> 'a) -> 'a
(** Run [f] with {!Putil.Tracing} freshly reset and enabled, then
    disable tracing and write the recorded trace — toolchain spans plus
    the schedule timeline recorded by {!simulate} — to [trace_file]
    (default format [`Chrome], loadable in Perfetto /
    [chrome://tracing]). The trace is written even when [f] raises. *)

val pp_summary : Format.formatter -> analyzed -> unit
(** Compact multi-section report: AADL issues, schedule tables, clock
    classes, determinism/deadlock verdicts, and the run-metrics
    section of {!pp_stats}. *)

val pp_stats : Format.formatter -> unit -> unit
(** Structured run-metrics report from the global {!Putil.Metrics}
    registry: engine fixpoint iterations, instants simulated and
    instants/sec, compiled-evaluator and BDD statistics, clock-calculus
    union-find and constraint counters, translation and scheduling
    counters — everything instrumented since process start. *)

val stats_json : unit -> Putil.Metrics.Json.t
(** The same snapshot as {!pp_stats}, as a JSON object keyed by
    metric name. *)
