(** End-to-end pipeline: AADL text → instance model → SIGNAL program
    (ASME2SSME) → clock calculus → static analyses → scheduled
    simulation → chronograms and VCD.

    This is the programmatic face of the paper's tool chain
    (Sec. IV-E). *)

type analyzed = {
  package : Aadl.Syntax.package;
  aadl_issues : Aadl.Check.issue list;
  instance : Aadl.Instance.t;
  translation : Trans.System_trans.output;
  kernel : Signal_lang.Kernel.kprocess;   (** normalized top process *)
  typed_program : Signal_lang.Ast.typed Signal_lang.Ast.gprogram;
      (** the generated program in the [typed] phase: every expression
          mark carries its inferred SIGNAL type *)
  clocked_decls : Signal_lang.Ast.clocked Signal_lang.Ast.gvardecl list;
      (** the kernel's declarations in the [clocked] phase: each mark
          records the signal's synchronization class *)
  calc : Clocks.Calculus.t;
  hierarchy : Clocks.Hierarchy.t;
  determinism : Analysis.Determinism.report;
  deadlock : Analysis.Deadlock.report;
  typecheck_errors : Signal_lang.Typecheck.error list;
  diags : Putil.Diag.t list;
      (** every diagnostic accumulated across the run, in emission
          order: AADL legality issues, translation/scheduling defects,
          SIGNAL type errors, clock-calculus conflicts and the
          determinism/deadlock verdicts. Check
          {!Putil.Diag.has_errors} / {!Putil.Diag.exit_code} for the
          overall outcome. *)
}

(** {1 Incremental sessions}

    A session caches every pipeline stage output under a content
    digest of that stage's input, so re-analyzing edited source reruns
    only the affected prefix: parse/instantiate/translate key on the
    source, while typecheck, normalization and the clock/boolean
    analyses key on the digest of the {e generated program} (resp.
    kernel). Combined with {!Trans.System_trans.External} translation
    — which keeps the generated program invariant under timing-only
    edits — editing one thread's period reruns only the front
    stages and replays cached results (including their diagnostics)
    for everything downstream. Stage traffic is counted by the
    [incr.<stage>.ran] / [incr.<stage>.skipped] metrics shown by
    {!pp_stats}.

    Cached stages are pure, so a warm re-analysis returns results
    byte-identical to a cold one. The behaviour registry is assumed
    stable across one session. *)

type session

val new_session : unit -> session

val analyze :
  ?session:session ->
  ?registry:Trans.Behavior.registry ->
  ?policy:Sched.Static_sched.policy ->
  ?mode:Trans.System_trans.mode ->
  ?root:string ->
  ?file:string ->
  string ->
  (analyzed, Putil.Diag.t list) result
(** Parse (the source may contain several packages; qualified
    classifiers such as [Lib::worker.impl] resolve across them),
    instantiate (root defaults to the top-most system implementation),
    translate, normalize, run the clock calculus and both static
    analyses.

    Defects {e accumulate}: independent failures — an AADL legality
    error, a type error in the generated SIGNAL, an infeasible thread
    set — are all reported in one run, each as a coded, located
    {!Putil.Diag.t}. [Error] is returned only when a stage failure
    prevents building the record (syntax error, unresolvable root,
    fatal translation, normalization failure), carrying everything
    accumulated up to that point; otherwise the full list (errors
    included) rides in [analyzed.diags]. [file] names the AADL source
    in diagnostic spans. *)

val analyze_package :
  ?session:session ->
  ?registry:Trans.Behavior.registry ->
  ?policy:Sched.Static_sched.policy ->
  ?mode:Trans.System_trans.mode ->
  ?context:Aadl.Syntax.package list ->
  ?file:string ->
  root:string ->
  Aadl.Syntax.package ->
  (analyzed, Putil.Diag.t list) result

(** {1 Simulation} *)

val simulate :
  ?compiled:bool ->
  ?env:(int -> (string * int) list) ->
  ?hyperperiods:int ->
  analyzed ->
  (Polysim.Trace.t, Putil.Diag.t list) result
(** Drive the translated system: one engine instant per base tick of
    the (first) processor schedule, for the given number of
    hyper-periods (default 2). [env] supplies environment-port arrivals
    per instant, e.g. [fun t -> if t = 0 then [("env_pGo", 1)] else []];
    default: one arrival of value 1 on every environment input at
    instant 0. With [~compiled:true] the clock-directed compiled step
    ({!Polysim.Compile}) replaces the fixpoint interpreter — same
    traces, roughly an order of magnitude faster.

    Clock analysis and compilation are memoized on the kernel's
    structural digest (see {!Clocks.Calculus.analyze} and
    {!Polysim.Compile.compile}), so repeated simulations of one system
    pay the front-end once; the [pipeline.cache_hits] /
    [pipeline.cache_misses] counters in the metrics registry record
    the traffic. *)

val simulate_scenarios :
  ?envs:(int -> int -> (string * int) list) ->
  ?hyperperiods:int ->
  scenarios:int ->
  analyzed ->
  (Polysim.Trace.t array, Putil.Diag.t list) result
(** Lockstep multi-scenario simulation on the compiled path
    ({!Polysim.Compile.step_many}): [scenarios] copies of the system
    state advance together over one shared compiled plan, each driven
    by its own environment. [envs s t] supplies scenario [s]'s
    environment arrivals at instant [t]; the default delays each
    arrival by [s] base ticks (scenario 0 is the {!simulate} default).
    Returns one trace per scenario — identical to [scenarios]
    independent {!simulate} runs with the same environments, at a
    fraction of the cost. *)

val global_base_us : analyzed -> int
(** Microseconds of one simulated instant: the gcd of every
    processor's schedule base tick (1 without schedules). *)

val global_hyper_us : analyzed -> int
(** Microseconds of one global hyper-period: the lcm of every
    processor's hyper-period. *)

val base_ticks_per_hyperperiod : analyzed -> int

(** {1 Bounded verification} *)

type verify_engine = [ `Explicit | `Symbolic | `Auto ]
(** [`Explicit] enumerates states ({!Polysim.Explore.check}),
    [`Symbolic] runs BDD image computation
    ({!Polysim.Explore.check_symbolic}), [`Auto] tries symbolic first
    and falls back to explicit when the process is outside the
    symbolic fragment ([EXPLORE-SYM-001]). *)

val verify_inputs :
  analyzed ->
  (Signal_lang.Ast.ident * Signal_lang.Types.value option list) list
(** The exploration stimulus spec of a translated system: tick inputs
    always present; every environment input either arrives (value 1)
    or stays silent, independently, at each instant. *)

val verify :
  ?depth:int ->
  ?jobs:int ->
  ?engine:verify_engine ->
  never:Signal_lang.Ast.ident ->
  analyzed ->
  ( Polysim.Explore.verdict * int * [ `Explicit | `Symbolic ],
    Putil.Diag.t )
  result
(** Bounded check that [never] is never present, over
    {!verify_inputs}, up to [depth] instants (default 8). Returns the
    verdict, the reachable-state count, and which engine decided.
    [jobs] only affects the explicit engine; [engine] defaults to
    [`Auto]. *)

val verify_kernel :
  ?depth:int ->
  ?jobs:int ->
  ?engine:verify_engine ->
  never:Signal_lang.Ast.ident ->
  inputs:
    (Signal_lang.Ast.ident * Signal_lang.Types.value option list) list ->
  Signal_lang.Kernel.kprocess ->
  ( Polysim.Explore.verdict * int * [ `Explicit | `Symbolic ],
    Putil.Diag.t )
  result
(** {!verify} over an arbitrary kernel and stimulus spec — the engine
    dispatch shared by `verify --counters` and the benches. *)

val vcd_of_trace :
  ?signals:string list -> analyzed -> Polysim.Trace.t -> string
(** VCD dump of a simulation trace with a real timescale: one logical
    instant lasts the global base tick, so the dump declares
    [$timescale 1 us] and stamps [instant × base_us]. *)

val with_tracing :
  ?format:[ `Chrome | `Text ] -> trace_file:string -> (unit -> 'a) -> 'a
(** Run [f] with {!Putil.Tracing} freshly reset and enabled, then
    disable tracing and write the recorded trace — toolchain spans plus
    the schedule timeline recorded by {!simulate} — to [trace_file]
    (default format [`Chrome], loadable in Perfetto /
    [chrome://tracing]). The trace is written even when [f] raises. *)

val pp_summary : Format.formatter -> analyzed -> unit
(** Compact multi-section report: AADL issues, schedule tables, clock
    classes, determinism/deadlock verdicts, and the run-metrics
    section of {!pp_stats}. *)

val pp_stats : Format.formatter -> unit -> unit
(** Structured run-metrics report from the global {!Putil.Metrics}
    registry: engine fixpoint iterations, instants simulated and
    instants/sec, compiled-evaluator and BDD statistics, clock-calculus
    union-find and constraint counters, translation and scheduling
    counters — everything instrumented since process start. *)

val stats_json : unit -> Putil.Metrics.Json.t
(** The same snapshot as {!pp_stats}, as a JSON object keyed by
    metric name. *)
