module T = Putil.Tracing
module S = Sched.Static_sched

let short_name path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

(* Presence instants of an event signal, [None] when the trace does not
   declare it (stubbed scheduler, hand-written program). *)
let instants tr name =
  match Polysim.Trace.index_of tr name with
  | None -> None
  | Some _ -> Some (Polysim.Trace.tick_instants tr name)

let emit_from_trace ~lane ~cost_args ~us ~horizon_us ~disp ~starts ~completes
    ~deadlines ~alarms =
  List.iter
    (fun t ->
      T.lane_instant ~lane ~cat:"dispatch" ~ts_us:(us t) "dispatch";
      T.lane_instant ~lane ~cat:"freeze" ~ts_us:(us t) "input_freeze")
    disp;
  (* the scheduler is non-preemptive, so the k-th start pairs with the
     k-th complete; a trailing start is a job cut by the horizon *)
  let rec pair k ss cs =
    match ss, cs with
    | s :: ss', c :: cs' ->
      T.lane_span ~lane ~cat:"compute"
        ~args:(("job", T.Aint k) :: cost_args)
        ~ts_us:(us s) ~dur_us:(us c - us s) "compute";
      pair (k + 1) ss' cs'
    | s :: _, [] ->
      T.lane_span ~lane ~cat:"compute"
        ~args:(("job", T.Aint k) :: cost_args)
        ~ts_us:(us s) ~dur_us:(max 0 (horizon_us - us s)) "compute"
    | [], _ -> ()
  in
  pair 0 starts completes;
  List.iter
    (fun t -> T.lane_instant ~lane ~cat:"send" ~ts_us:(us t) "output_send")
    completes;
  List.iter
    (fun t -> T.lane_instant ~lane ~cat:"deadline" ~ts_us:(us t) "deadline")
    deadlines;
  List.iter
    (fun t ->
      T.lane_instant ~lane ~cat:"deadline_miss" ~ts_us:(us t) "deadline_miss")
    alarms

let emit_from_schedule ~lane ~cost_args ~horizon_us ~name sched =
  let hp = sched.S.hyperperiod_us in
  let reps = max 1 (horizon_us / max 1 hp) in
  let jobs =
    List.filter
      (fun j -> String.equal j.S.j_task.Sched.Task.t_name name)
      sched.S.jobs
  in
  for r = 0 to reps - 1 do
    let off = r * hp in
    List.iter
      (fun j ->
        T.lane_instant ~lane ~cat:"dispatch"
          ~ts_us:(off + j.S.dispatch_us) "dispatch";
        T.lane_instant ~lane ~cat:"freeze"
          ~ts_us:(off + j.S.dispatch_us) "input_freeze";
        T.lane_span ~lane ~cat:"compute"
          ~args:(("job", T.Aint j.S.j_index) :: cost_args)
          ~ts_us:(off + j.S.start_us)
          ~dur_us:(j.S.complete_us - j.S.start_us) "compute";
        T.lane_instant ~lane ~cat:"send"
          ~ts_us:(off + j.S.complete_us) "output_send";
        T.lane_instant ~lane ~cat:"deadline"
          ~ts_us:(off + j.S.deadline_abs_us) "deadline";
        if j.S.complete_us > j.S.deadline_abs_us then
          T.lane_instant ~lane ~cat:"deadline_miss"
            ~ts_us:(off + j.S.complete_us) "deadline_miss")
      jobs
  done

let emit ?cost ~root_path ~base_us ~horizon_ticks ~schedules ~tasks tr =
  if T.enabled () then begin
    let horizon_us = horizon_ticks * base_us in
    let sched_of task_name =
      List.find_map
        (fun (_cpu, s) ->
          if
            List.exists
              (fun j -> String.equal j.S.j_task.Sched.Task.t_name task_name)
              s.S.jobs
          then Some s
          else None)
        schedules
    in
    List.iter
      (fun (_cpu, ts) ->
        List.iter
          (fun task ->
            let name = task.Sched.Task.t_name in
            let prefix = Trans.System_trans.local_name root_path name in
            let lane = short_name name in
            let us t = t * base_us in
            let cost_args =
              match cost with
              | Some f -> [ ("static_cost", T.Aint (f name)) ]
              | None -> []
            in
            let ev suffix = instants tr (prefix ^ suffix) in
            match ev "_dispatch", ev "_start", ev "_complete", ev "_deadline"
            with
            | Some disp, Some starts, Some completes, Some deadlines
              when disp <> [] || starts <> [] ->
              let alarms =
                Option.value ~default:[] (ev "_alarm")
              in
              emit_from_trace ~lane ~cost_args ~us ~horizon_us ~disp ~starts
                ~completes ~deadlines ~alarms
            | _ -> (
              match sched_of name with
              | Some s ->
                emit_from_schedule ~lane ~cost_args ~horizon_us ~name s
              | None -> ()))
          ts)
      tasks
  end
