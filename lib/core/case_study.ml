module B = Signal_lang.Builder

let aadl_source =
  {aadl|
package ProducerConsumer
public
  with Base_Types;

  -- Shared data resource between producer and consumer (Fig. 6)
  data QueueCell
  properties
    Queue_Size => 8;
  end QueueCell;

  data implementation QueueCell.impl
  end QueueCell.impl;

  -- Produces data into the shared Queue every 4 ms (Sec. II)
  thread thProducer
    features
      pProdStart: in event port {Queue_Size => 2;};
      pProdTimeOut: in event port;
      pProdStartTimer: out event port;
      pProdStopTimer: out event port;
      reqQueue: requires data access QueueCell {Access_Right => write_only;};
    properties
      Dispatch_Protocol => Periodic;
      Period => 4 ms;
      Deadline => 4 ms;
      Compute_Execution_Time => 1 ms;
  end thProducer;

  thread implementation thProducer.impl
  end thProducer.impl;

  -- Consumes from the shared Queue every 6 ms
  thread thConsumer
    features
      pConsStart: in event port {Queue_Size => 2;};
      pConsTimeOut: in event port;
      pConsStartTimer: out event port;
      pConsStopTimer: out event port;
      pConsOut: out event data port Base_Types::Integer;
      reqQueue: requires data access QueueCell {Access_Right => read_only;};
    properties
      Dispatch_Protocol => Periodic;
      Period => 6 ms;
      Deadline => 6 ms;
      Compute_Execution_Time => 1 ms;
  end thConsumer;

  thread implementation thConsumer.impl
  end thConsumer.impl;

  -- Timer service: start/stop, raises pTimeOut when expired (Sec. II)
  thread thTimer
    features
      pStartTimer: in event port {Queue_Size => 4;};
      pStopTimer: in event port {Queue_Size => 4;};
      pTimeOut: out event port;
    properties
      Dispatch_Protocol => Periodic;
      Period => 8 ms;
      Deadline => 8 ms;
      Compute_Execution_Time => 1 ms;
      Timer_Duration => 3;
  end thTimer;

  thread implementation thTimer.impl
  end thTimer.impl;

  -- The prProdCons process of Fig. 1
  process prProdCons
    features
      pProdStart: in event port;
      pConsStart: in event port;
      pProdTimeOutE: out event port;
      pConsTimeOutE: out event port;
      pConsData: out event data port Base_Types::Integer;
  end prProdCons;

  process implementation prProdCons.impl
    subcomponents
      thProducer: thread thProducer.impl;
      thConsumer: thread thConsumer.impl;
      thProdTimer: thread thTimer.impl;
      thConsTimer: thread thTimer.impl;
      Queue: data QueueCell.impl;
    connections
      c0: port pProdStart -> thProducer.pProdStart;
      c1: port pConsStart -> thConsumer.pConsStart;
      c2: port thProducer.pProdStartTimer -> thProdTimer.pStartTimer;
      c3: port thProducer.pProdStopTimer -> thProdTimer.pStopTimer;
      c4: port thProdTimer.pTimeOut -> thProducer.pProdTimeOut;
      c5: port thProdTimer.pTimeOut -> pProdTimeOutE;
      c6: port thConsumer.pConsStartTimer -> thConsTimer.pStartTimer;
      c7: port thConsumer.pConsStopTimer -> thConsTimer.pStopTimer;
      c8: port thConsTimer.pTimeOut -> thConsumer.pConsTimeOut;
      c9: port thConsTimer.pTimeOut -> pConsTimeOutE;
      c10: port thConsumer.pConsOut -> pConsData;
      a0: data access Queue -> thProducer.reqQueue;
      a1: data access Queue -> thConsumer.reqQueue;
  end prProdCons.impl;

  processor Processor1
  end Processor1;

  processor implementation Processor1.impl
  end Processor1.impl;

  -- Models the environment (Sec. II)
  system sysEnv
    features
      pGo: out event port;
  end sysEnv;

  system implementation sysEnv.impl
  end sysEnv.impl;

  -- Informed when a timeout occurred on production or consumption
  system sysOperatorDisplay
    features
      pProdAlarm: in event port;
      pConsAlarm: in event port;
      pData: in event data port Base_Types::Integer;
  end sysOperatorDisplay;

  system implementation sysOperatorDisplay.impl
  end sysOperatorDisplay.impl;

  system ProdConsSys
  end ProdConsSys;

  system implementation ProdConsSys.impl
    subcomponents
      env: system sysEnv.impl;
      display: system sysOperatorDisplay.impl;
      prProdCons: process prProdCons.impl;
      Processor1: processor Processor1.impl;
    connections
      s0: port env.pGo -> prProdCons.pProdStart;
      s1: port env.pGo -> prProdCons.pConsStart;
      s2: port prProdCons.pProdTimeOutE -> display.pProdAlarm;
      s3: port prProdCons.pConsTimeOutE -> display.pConsAlarm;
      s4: port prProdCons.pConsData -> display.pData;
    properties
      Actual_Processor_Binding => reference (Processor1) applies to prProdCons;
  end ProdConsSys.impl;

end ProducerConsumer;
|aadl}

let root = "ProdConsSys.impl"

let package =
  let memo = lazy (
    match Aadl.Parser.parse_package aadl_source with
    | Ok pkg -> pkg
    | Error m -> failwith ("case study does not parse: " ^ m))
  in
  fun () -> Lazy.force memo

let instance =
  let memo = lazy (
    match Aadl.Instance.instantiate (package ()) ~root with
    | Ok t -> t
    | Error m -> failwith ("case study does not instantiate: " ^ m))
  in
  fun () -> Lazy.force memo

(* --------------------------- behaviours --------------------------- *)

(* Producer: writes the job counter to the shared Queue; arms its
   timer every job ([arm_every_job]) or only at job 1; sends the stop
   event each job unless [never_stop]. *)
let producer_behavior ~arm_every_job ~never_stop
    ~(start_port : string) ~(stop_port : string) ~(access : string)
    (ctx : Trans.Behavior.ctx) =
  let cnt_stmts, n = Trans.Behavior.job_counter ctx in
  let arm_cond = if arm_every_job then B.(n > i 0) else B.(n = i 1) in
  cnt_stmts
  @ B.[ ctx.Trans.Behavior.write_signal access := n;
        ctx.Trans.Behavior.out_item start_port := when_ n arm_cond ]
  @ (if never_stop then
       (* the stop item never carries a value *)
       B.[ ctx.Trans.Behavior.out_item stop_port := when_ n (b false) ]
     else B.[ ctx.Trans.Behavior.out_item stop_port := n ])

(* Consumer: pops the shared Queue each job, forwards the value to its
   out data port, and manages its timer like the producer. *)
let consumer_behavior ~arm_every_job ~never_stop (ctx : Trans.Behavior.ctx) =
  let cnt_stmts, n = Trans.Behavior.job_counter ctx in
  let arm_cond = if arm_every_job then B.(n > i 0) else B.(n = i 1) in
  cnt_stmts
  @ B.[ ctx.Trans.Behavior.pop_signal "reqQueue"
        := clk ctx.Trans.Behavior.start_event;
        ctx.Trans.Behavior.out_item "pConsOut"
        := ctx.Trans.Behavior.read_value "reqQueue";
        ctx.Trans.Behavior.out_item "pConsStartTimer" := when_ n arm_cond ]
  @ (if never_stop then
       B.[ ctx.Trans.Behavior.out_item "pConsStopTimer" := when_ n (b false) ]
     else B.[ ctx.Trans.Behavior.out_item "pConsStopTimer" := n ])

(* Timer service: counts its own dispatches while armed; arms on any
   frozen pStartTimer item, disarms on pStopTimer; emits pTimeOut when
   the count reaches Timer_Duration. *)
let timer_behavior (ctx : Trans.Behavior.ctx) =
  let duration =
    match Aadl.Props.find "Timer_Duration" ctx.Trans.Behavior.props with
    | Some (Aadl.Syntax.Pint (n, None)) -> n
    | _ -> 2
  in
  let timeout = ctx.Trans.Behavior.fresh_local Signal_lang.Types.Tevent in
  let arm = B.(on (ctx.Trans.Behavior.frozen_count "pStartTimer" > i 0)) in
  let disarm = B.(on (ctx.Trans.Behavior.frozen_count "pStopTimer" > i 0)) in
  B.[ inst ~label:"service" "timer"
        ~params:[ Signal_lang.Types.Vint duration ]
        [ arm; disarm; ctx.Trans.Behavior.start_event ]
        [ timeout ];
      ctx.Trans.Behavior.out_item "pTimeOut" := when_ (i 1) (v timeout) ]

let registry_of ~arm_every_job ~never_stop : Trans.Behavior.registry =
  (* The id covers every parameter the behaviour closures depend on:
     incremental recompute keys translation on it. *)
  Trans.Behavior.make
    ~id:
      (Printf.sprintf "case_study:arm_every_job=%b:never_stop=%b"
         arm_every_job never_stop)
    [ ("thProducer",
       producer_behavior ~arm_every_job ~never_stop
         ~start_port:"pProdStartTimer" ~stop_port:"pProdStopTimer"
         ~access:"reqQueue");
      ("thConsumer", consumer_behavior ~arm_every_job ~never_stop);
      ("thTimer", timer_behavior) ]

let registry_nominal = registry_of ~arm_every_job:true ~never_stop:false
let registry_timeout = registry_of ~arm_every_job:false ~never_stop:true

let registry_producer_variant =
  Trans.Behavior.make ~id:"case_study:producer_arm_once"
    [ ("thProducer",
       producer_behavior ~arm_every_job:false ~never_stop:false
         ~start_port:"pProdStartTimer" ~stop_port:"pProdStopTimer"
         ~access:"reqQueue");
      ("thConsumer",
       consumer_behavior ~arm_every_job:true ~never_stop:false);
      ("thTimer", timer_behavior) ]

let thread_periods_us =
  [ ("thProducer", 4_000); ("thConsumer", 6_000); ("thProdTimer", 8_000);
    ("thConsTimer", 8_000) ]
