module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module K = Signal_lang.Kernel

type analyzed = {
  package : Aadl.Syntax.package;
  aadl_issues : Aadl.Check.issue list;
  instance : Aadl.Instance.t;
  translation : Trans.System_trans.output;
  kernel : K.kprocess;
  typed_program : Signal_lang.Ast.typed Signal_lang.Ast.gprogram;
  clocked_decls : Signal_lang.Ast.clocked Signal_lang.Ast.gvardecl list;
  calc : Clocks.Calculus.t;
  hierarchy : Clocks.Hierarchy.t;
  determinism : Analysis.Determinism.report;
  deadlock : Analysis.Deadlock.report;
  typecheck_errors : Signal_lang.Typecheck.error list;
  diags : Putil.Diag.t list;
}

(* ------------------------------------------------------------------ *)
(* Incremental sessions                                                *)
(* ------------------------------------------------------------------ *)

(* Each stage of [analyze] is a total function of its input, so a
   session caches every stage output under a content digest of that
   input. Re-analyzing edited source reruns only the prefix whose
   digests changed: the parse and instance stages key on the source
   text, but the expensive back half — typecheck, normalization, clock
   calculus and the boolean analyses — keys on the digest of the
   {e generated program} (resp. kernel). With the scheduler-exogenous
   translation mode ({!Trans.System_trans.External}) a timing-only
   edit leaves the generated program byte-identical, so editing one
   thread's period reruns parse/instantiate/translate and skips
   everything downstream. The [incr.<stage>.ran] / [.skipped] metrics
   count the traffic.

   Caches are single-slot (latest run wins): the session serves the
   edit-recheck loop, not a multi-model build system. The behaviour
   [registry] is assumed stable across one session (closures cannot be
   digested). *)

type 'v slot = (string * 'v) option ref

type session = {
  s_parse : Aadl.Syntax.package list slot;
  s_instance : Aadl.Instance.t slot;
  s_translate : (Trans.System_trans.output * Putil.Diag.t list) slot;
  s_typecheck :
    (Signal_lang.Typecheck.error list
    * Signal_lang.Ast.typed Signal_lang.Ast.gprogram)
      slot;
  s_normalize : K.kprocess slot;
  s_analyses :
    (Clocks.Calculus.t
    * Clocks.Hierarchy.t
    * Analysis.Determinism.report
    * Analysis.Deadlock.report
    * Signal_lang.Ast.clocked Signal_lang.Ast.gvardecl list
    * Putil.Diag.t list)
      slot;
}

let new_session () =
  { s_parse = ref None;
    s_instance = ref None;
    s_translate = ref None;
    s_typecheck = ref None;
    s_normalize = ref None;
    s_analyses = ref None }

let m_stage =
  let tbl = Hashtbl.create 16 in
  fun stage outcome ->
    let key = "incr." ^ stage ^ "." ^ outcome in
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
      let c = Putil.Metrics.counter key in
      Hashtbl.add tbl key c;
      c

(* [stage_r name slot key compute]: cached value on digest match,
   fresh run otherwise; only successes are cached (failures are cheap
   to rediscover and end the run anyway). A [None] slot (no session)
   always runs. *)
let stage_r name slot key compute =
  match slot with
  | Some r when (match !r with Some (k, _) -> String.equal k key | None -> false)
    ->
    Putil.Metrics.incr (m_stage name "skipped");
    Ok (match !r with Some (_, v) -> v | None -> assert false)
  | _ -> (
    Putil.Metrics.incr (m_stage name "ran");
    match compute () with
    | Ok v ->
      (match slot with Some r -> r := Some (key, v) | None -> ());
      Ok v
    | Error _ as e -> e)

let stage name slot key compute =
  match stage_r name slot key (fun () -> Ok (compute ())) with
  | Ok v -> v
  | Error () -> assert false

let digest_of v =
  Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

(* Stable codes for the defects detected by the pipeline itself. *)
let code_root =
  Putil.Diag.code "CORE-ROOT-001"
    "cannot determine a root system implementation"
let code_sim = Putil.Diag.code "SIM-001" "simulation step failed"
let code_compile =
  Putil.Diag.code "COMPILE-001"
    "clock-directed compilation failed"

let span_of_loc ?file (l : Aadl.Syntax.loc) =
  if l.Aadl.Syntax.l_line > 0 then
    Some
      (Putil.Diag.span ?file ~line:l.Aadl.Syntax.l_line
         ~col:l.Aadl.Syntax.l_col ())
  else None

(* Declaration position of [signal] inside the process named
   [proc_name], when the generated code recorded one (ports carry the
   source position of the AADL feature they translate). *)
let find_var_loc program proc_name signal =
  let rec in_proc p =
    if String.equal p.Ast.proc_name proc_name then
      let all =
        p.Ast.params @ p.Ast.inputs @ p.Ast.outputs @ p.Ast.locals
      in
      match
        List.find_opt
          (fun vd -> String.equal vd.Ast.var_name signal)
          all
      with
      | Some vd -> Ast.mark_span vd.Ast.var_mark
      | None -> None
    else List.find_map in_proc p.Ast.subprocesses
  in
  List.find_map in_proc program.Ast.processes

(* A SIGNAL type error as a located diagnostic: the span is the
   declaration that produced the offending signal; the related entry
   points back at the AADL component the process was generated for,
   via the traceability table. *)
let diag_of_type_error ?file ~translation ~instance
    (e : Signal_lang.Typecheck.error) =
  let program = translation.Trans.System_trans.program in
  let span =
    match e.Signal_lang.Typecheck.err_signal with
    | Some signal -> (
      match
        find_var_loc program e.Signal_lang.Typecheck.err_proc signal
      with
      | Some sp -> (
        match file with
        | Some f -> Some (Putil.Diag.with_file f sp)
        | None -> Some sp)
      | None -> None)
    | None -> None
  in
  let related =
    match
      Trans.Traceability.aadl_of translation.Trans.System_trans.trace
        e.Signal_lang.Typecheck.err_proc
    with
    | Some path ->
      let rel_span =
        match Aadl.Instance.find instance path with
        | Some i -> span_of_loc ?file i.Aadl.Instance.i_loc
        | None -> None
      in
      [ { Putil.Diag.rel_message =
            "in the SIGNAL model generated for " ^ path;
          rel_span } ]
    | None -> []
  in
  Putil.Diag.errorf ?span ~related ~code:e.Signal_lang.Typecheck.err_code
    "process %s: %s" e.Signal_lang.Typecheck.err_proc
    e.Signal_lang.Typecheck.err_msg

let ( let* ) = Result.bind

(* Static-cost totals ride in the metrics registry so [--stats]
   (text and JSON) reports them alongside the runtime counters. *)
let m_profile_total = Putil.Metrics.gauge "profiling.total_static"
let m_profile_signals = Putil.Metrics.gauge "profiling.signals"

let default_root pkgs =
  let impls =
    List.concat_map
      (fun pkg ->
        List.filter_map
          (function
            | Aadl.Syntax.Dimpl ci
              when ci.Aadl.Syntax.ci_category = Aadl.Syntax.System ->
              Some (pkg, ci.Aadl.Syntax.ci_name)
            | Aadl.Syntax.Dimpl _ | Aadl.Syntax.Dtype _ -> None)
          pkg.Aadl.Syntax.pkg_decls)
      pkgs
  in
  (* prefer an implementation that is not a subcomponent of another *)
  let used_as_sub name =
    List.exists
      (fun pkg ->
        List.exists
          (function
            | Aadl.Syntax.Dimpl ci ->
              List.exists
                (fun sc -> sc.Aadl.Syntax.sc_classifier = Some name)
                ci.Aadl.Syntax.ci_subcomponents
            | Aadl.Syntax.Dtype _ -> false)
          pkg.Aadl.Syntax.pkg_decls)
      pkgs
  in
  match List.filter (fun (_, n) -> not (used_as_sub n)) impls with
  | [ one ] -> Ok one
  | [] -> (
    match impls with
    | [ one ] -> Ok one
    | _ -> Error "cannot determine a root system implementation")
  | _ :: _ :: _ ->
    Error "several candidate root systems; pass ~root explicitly"

(* Every layer contributes to one collector, so independent defects —
   an AADL legality error, a type error in the generated program and an
   infeasible thread set — are all reported in a single run. The
   result is [Error] only when a stage failure prevents building the
   full record; the accumulated diagnostics (including warnings and
   notes from the analyses) otherwise ride in [analyzed.diags]. *)
let analyze_package ?session ?(registry = []) ?policy ?mode
    ?(context = []) ?file ~root pkg =
  Putil.Tracing.with_span "pipeline.analyze"
    ~args:[ ("root", Putil.Tracing.Astr root) ]
  @@ fun () ->
  let diags = Putil.Diag.collector () in
  let fail () = Error (Putil.Diag.result diags) in
  let slot f = Option.map f session in
  let aadl_issues =
    List.concat_map Aadl.Check.check_package (pkg :: context)
  in
  Putil.Diag.add_list diags (Aadl.Check.to_diags ?file aadl_issues);
  match
    stage_r "instantiate"
      (slot (fun s -> s.s_instance))
      (digest_of (file, root, pkg, context))
      (fun () -> Aadl.Instance.instantiate_diag ?file ~context pkg ~root)
  with
  | Error ds ->
    Putil.Diag.add_list diags ds;
    fail ()
  | Ok instance -> (
    match
      stage_r "translate"
        (slot (fun s -> s.s_translate))
        (digest_of (instance, policy, mode, file))
        (fun () ->
          match
            Trans.System_trans.translate_diag ?file ~registry ?policy
              ?mode instance
          with
          | Some translation, tdiags -> Ok (translation, tdiags)
          | None, tdiags -> Error tdiags)
    with
    | Error tdiags ->
      Putil.Diag.add_list diags tdiags;
      fail ()
    | Ok (translation, tdiags) -> (
      Putil.Diag.add_list diags tdiags;
      let program = translation.Trans.System_trans.program in
      let program_key = Signal_lang.Ast.program_digest program in
      let typecheck_errors, typed_program =
        stage "typecheck"
          (slot (fun s -> s.s_typecheck))
          program_key
          (fun () ->
            ( Signal_lang.Typecheck.check_program program,
              Signal_lang.Typecheck.type_program program ))
      in
      Putil.Diag.add_list diags
        (List.map
           (diag_of_type_error ?file ~translation ~instance)
           typecheck_errors);
      match
        stage_r "normalize"
          (slot (fun s -> s.s_normalize))
          (program_key ^ ":"
          ^ translation.Trans.System_trans.top.Ast.proc_name)
          (fun () ->
            Signal_lang.Normalize.process ~program
              translation.Trans.System_trans.top)
      with
      | Error d ->
        Putil.Diag.add diags d;
        fail ()
      | Ok kernel ->
        let profile = Analysis.Profiling.static_costs kernel in
        Putil.Metrics.set m_profile_total
          profile.Analysis.Profiling.total_static;
        Putil.Metrics.set m_profile_signals
          (List.length profile.Analysis.Profiling.per_signal);
        let stubbed = Putil.Diag.has_errors tdiags in
        let calc, hierarchy, determinism, deadlock, clocked_decls,
            analysis_diags =
          stage "analyses"
            (slot (fun s -> s.s_analyses))
            (K.digest kernel ^ if stubbed then ":stub" else "")
            (fun () ->
              let calc = Clocks.Calculus.analyze kernel in
              (* a failed schedule or task extraction is stubbed with
                 never-present events, so null-clock notes would only
                 echo a defect already reported — drop them then *)
              let calc_diags =
                if stubbed then
                  List.filter
                    (fun d ->
                      not (String.equal d.Putil.Diag.code "CLK-NULL-001"))
                    (Clocks.Calculus.diags calc)
                else Clocks.Calculus.diags calc
              in
              let hierarchy = Clocks.Hierarchy.build calc in
              let determinism = Analysis.Determinism.analyze calc kernel in
              let deadlock = Analysis.Deadlock.analyze ~calc kernel in
              ( calc, hierarchy, determinism, deadlock,
                Clocks.Calculus.clocked_decls calc,
                calc_diags
                @ Analysis.Determinism.diags_of_report determinism
                @ Analysis.Deadlock.diags_of_report deadlock ))
        in
        Putil.Diag.add_list diags analysis_diags;
        Ok
          { package = pkg; aadl_issues; instance; translation; kernel;
            typed_program; clocked_decls; calc; hierarchy; determinism;
            deadlock; typecheck_errors;
            diags = Putil.Diag.result diags }))

let analyze ?session ?registry ?policy ?mode ?root ?file src =
  let* pkgs =
    stage_r "parse"
      (Option.map (fun s -> s.s_parse) session)
      (Digest.to_hex
         (Digest.string (Option.value ~default:"" file ^ "\x00" ^ src)))
      (fun () -> Aadl.Parser.parse_packages_diag ?file src)
  in
  let* pkg, root =
    match root with
    | Some r -> (
      (* find the package defining the root *)
      let tname = Aadl.Syntax.impl_base_name r in
      match
        List.find_opt
          (fun p -> Aadl.Syntax.find_type p tname <> None)
          pkgs
      with
      | Some p -> Ok (p, r)
      | None -> (
        match pkgs with
        | p :: _ -> Ok (p, r)
        | [] ->
          Error [ Putil.Diag.errorf ~code:code_root "no package" ]))
    | None ->
      Result.map_error
        (fun m -> [ Putil.Diag.errorf ~code:code_root "%s" m ])
        (default_root pkgs)
  in
  let context = List.filter (fun p -> p != pkg) pkgs in
  analyze_package ?session ?registry ?policy ?mode ~context ?file ~root
    pkg

(* Schedulers on different processors may use different base ticks;
   simulation advances on their gcd and pulses each processor's tick at
   its own cadence. *)
let global_base_us a =
  match a.translation.Trans.System_trans.schedules with
  | [] -> 1
  | scheds ->
    let g =
      Putil.Mathx.gcd_list
        (List.map (fun (_, s) -> s.Sched.Static_sched.base_us) scheds)
    in
    max 1 g

let global_hyper_us a =
  match a.translation.Trans.System_trans.schedules with
  | [] -> 1
  | scheds -> (
    match
      Putil.Mathx.lcm_list
        (List.map (fun (_, s) -> s.Sched.Static_sched.hyperperiod_us) scheds)
    with
    | hp -> hp
    | exception Putil.Mathx.Overflow m ->
      invalid_arg ("Pipeline.global_hyper_us: " ^ m))

let base_ticks_per_hyperperiod a = global_hyper_us a / global_base_us a

let default_env a t =
  if t = 0 then
    List.map
      (fun n -> (n, 1))
      a.translation.Trans.System_trans.env_inputs
  else []

(* Static reaction cost of one thread: its signals are exactly those
   prefixed by its local name in the generated program. *)
let thread_cost a =
  let costs = (Analysis.Profiling.static_costs a.kernel).Analysis.Profiling.per_signal in
  fun task_name ->
    let prefix =
      Trans.System_trans.local_name
        a.instance.Aadl.Instance.root.Aadl.Instance.i_path task_name
      ^ "_"
    in
    List.fold_left
      (fun acc (s, c) ->
        if String.length s >= String.length prefix
           && String.sub s 0 (String.length prefix) = prefix
        then acc + c
        else acc)
      0 costs

(* Name-based stimulus generator for one run: ticks at each
   processor's base cadence, External-mode ctl events from the
   schedule tables, plus the environment arrivals. *)
let stimulus_at_fn a env =
  let gbase = global_base_us a in
  (* tick inputs are generated in schedule order; pulse each at its
     processor's base cadence (External mode declares no ticks) *)
  let ticks =
    let rec zip tks ss =
      match tks, ss with
      | tk :: tks, (_, s) :: ss ->
        (tk, s.Sched.Static_sched.base_us / gbase) :: zip tks ss
      | _, _ -> []
    in
    zip a.translation.Trans.System_trans.tick_inputs
      a.translation.Trans.System_trans.schedules
  in
  (* External-mode ctl inputs are driven straight from the schedule
     tables, replicating the Embedded scheduler process semantics: at
     processor base tick m, an event with offset tk fires iff m >= tk
     and m ≡ tk (mod horizon) *)
  let ctls =
    List.map
      (fun (n, spec) ->
        let stride =
          match
            List.assoc_opt spec.Trans.System_trans.cs_cpu
              a.translation.Trans.System_trans.schedules
          with
          | Some s -> max 1 (s.Sched.Static_sched.base_us / gbase)
          | None -> 1
        in
        ( n, stride,
          Array.of_list spec.Trans.System_trans.cs_ticks,
          spec.Trans.System_trans.cs_horizon ))
      a.translation.Trans.System_trans.ctl_inputs
  in
  fun t ->
    List.filter_map
      (fun (tk, every) ->
        if t mod every = 0 then Some (tk, Types.Vevent) else None)
      ticks
    @ List.filter_map
        (fun (n, stride, offs, horizon) ->
          if t mod stride <> 0 then None
          else
            let m = t / stride in
            if
              Array.exists
                (fun tk -> m >= tk && (m - tk) mod horizon = 0)
                offs
            then Some (n, Types.Vevent)
            else None)
        ctls
    @ List.map (fun (n, v) -> (n, Types.Vint v)) (env t)

(* Resolve a name-based stimulus into a compiled instance's dense
   buffer. Non-input names error through the normal result path of the
   enclosing batched call; unknown names raise. *)
exception Unknown_input of string

let fill_stimulus c stim =
  List.iter
    (fun (x, v) ->
      match Polysim.Compile.signal_index c x with
      | Some i -> Polysim.Compile.set_stim c i v
      | None -> raise (Unknown_input x))
    stim

let simulate ?(compiled = false) ?env ?(hyperperiods = 2) a =
  let env = Option.value ~default:(default_env a) env in
  let horizon = base_ticks_per_hyperperiod a * hyperperiods in
  Putil.Tracing.with_span "pipeline.simulate"
    ~args:
      [ ("compiled", Putil.Tracing.Abool compiled);
        ("horizon_ticks", Putil.Tracing.Aint horizon) ]
  @@ fun () ->
  let gbase = global_base_us a in
  let stimulus_at = stimulus_at_fn a env in
  let finish tr =
    if Putil.Tracing.enabled () then
      Timeline.emit ~cost:(thread_cost a)
        ~root_path:a.instance.Aadl.Instance.root.Aadl.Instance.i_path
        ~base_us:gbase ~horizon_ticks:horizon
        ~schedules:a.translation.Trans.System_trans.schedules
        ~tasks:a.translation.Trans.System_trans.tasks tr;
    tr
  in
  let run step trace =
    let rec go t =
      if t >= horizon then Ok (finish (trace ()))
      else
        match step ~stimulus:(stimulus_at t) with
        | Ok _ -> go (t + 1)
        | Error m ->
          Error
            [ Putil.Diag.errorf ~code:code_sim "instant %d: %s" t m ]
    in
    go 0
  in
  if compiled then
    match Polysim.Compile.compile a.kernel with
    | Error m ->
      Error [ Putil.Diag.errorf ~code:code_compile "compile: %s" m ]
    | Ok c -> (
      (* dense batched stepping: the whole horizon in one call, no
         per-instant assoc lists *)
      match
        Polysim.Compile.run_batched c ~n:horizon
          ~fill:(fun c t -> fill_stimulus c (stimulus_at t))
      with
      | Ok () -> Ok (finish (Polysim.Compile.trace c))
      | Error m ->
        Error
          [ Putil.Diag.errorf ~code:code_sim "instant %d: %s"
              (Polysim.Compile.instant c) m ]
      | exception Unknown_input x ->
        Error
          [ Putil.Diag.errorf ~code:code_sim
              "stimulus for unknown signal %s" x ])
  else
    let engine = Polysim.Engine.create a.kernel in
    run (fun ~stimulus -> Polysim.Engine.step engine ~stimulus)
      (fun () -> Polysim.Engine.trace engine)

(* Per-scenario default environment: scenario [s] delays every
   environment arrival by [s] base ticks (mod the horizon), so a sweep
   covers the arrival phases of the environment; scenario 0 is exactly
   {!default_env}. *)
let scenario_env a ~horizon s t =
  if t = s mod horizon then
    List.map (fun n -> (n, 1)) a.translation.Trans.System_trans.env_inputs
  else []

let simulate_scenarios ?envs ?(hyperperiods = 2) ~scenarios a =
  let horizon = base_ticks_per_hyperperiod a * hyperperiods in
  let envs =
    match envs with
    | Some f -> f
    | None -> scenario_env a ~horizon
  in
  Putil.Tracing.with_span "pipeline.simulate_scenarios"
    ~args:
      [ ("scenarios", Putil.Tracing.Aint scenarios);
        ("horizon_ticks", Putil.Tracing.Aint horizon) ]
  @@ fun () ->
  match Polysim.Compile.compile_scenarios a.kernel ~scenarios with
  | Error m ->
    Error [ Putil.Diag.errorf ~code:code_compile "compile: %s" m ]
  | Ok c -> (
    let stim_of =
      Array.init scenarios (fun s -> stimulus_at_fn a (envs s))
    in
    let rec go t =
      if t >= horizon then
        Ok (Array.init scenarios (Polysim.Compile.trace_of c))
      else
        match
          Polysim.Compile.step_many c
            ~fill:(fun c s -> fill_stimulus c (stim_of.(s) t))
        with
        | Ok () -> go (t + 1)
        | Error m ->
          Error [ Putil.Diag.errorf ~code:code_sim "instant %d: %s" t m ]
    in
    match go 0 with
    | r -> r
    | exception Unknown_input x ->
      Error
        [ Putil.Diag.errorf ~code:code_sim "stimulus for unknown signal %s"
            x ])

(* ------------------------------------------------------------------ *)
(* Bounded verification                                                *)

type verify_engine = [ `Explicit | `Symbolic | `Auto ]

let verify_inputs a =
  let tr = a.translation in
  (* ticks always present; every environment input may arrive (value
     1) or stay silent at each instant *)
  List.map
    (fun tk -> (tk, [ Some Signal_lang.Types.Vevent ]))
    tr.Trans.System_trans.tick_inputs
  @ List.map
      (fun e -> (e, [ None; Some (Signal_lang.Types.Vint 1) ]))
      tr.Trans.System_trans.env_inputs

let verify_kernel ?(depth = 8) ?jobs ?(engine = `Auto) ~never ~inputs kp =
  let prop = Polysim.Symbolic.Never_present never in
  let explicit () =
    match
      Polysim.Explore.check ~depth ?jobs ~inputs
        ~safe:(Polysim.Symbolic.safe_of_prop prop) kp
    with
    | Ok (v, n) -> Ok (v, n, `Explicit)
    | Error d -> Error d
  in
  let symbolic () =
    match Polysim.Explore.check_symbolic ~depth ~inputs ~prop kp with
    | Ok (v, n) -> Ok (v, n, `Symbolic)
    | Error d -> Error d
  in
  match engine with
  | `Explicit -> explicit ()
  | `Symbolic -> symbolic ()
  | `Auto -> (
    match symbolic () with
    | Error d when d.Putil.Diag.code = Polysim.Symbolic.code_unsupported ->
      explicit ()
    | r -> r)

let verify ?depth ?jobs ?engine ~never a =
  verify_kernel ?depth ?jobs ?engine ~never ~inputs:(verify_inputs a)
    a.kernel

let vcd_of_trace ?signals a tr =
  let module_name = a.translation.Trans.System_trans.top.Ast.proc_name in
  (* one logical instant = one global base tick; dump real model time
     so VCD cursors line up with the schedule tables *)
  Polysim.Vcd.to_string ?signals ~module_name ~instant_us:(global_base_us a) tr

let with_tracing ?(format = `Chrome) ~trace_file f =
  Putil.Tracing.reset ();
  Putil.Tracing.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Putil.Tracing.set_enabled false;
      Putil.Tracing.write ~format trace_file)
    f

let pp_summary ppf a =
  Format.fprintf ppf "@[<v>== AADL legality ==@,";
  (match a.aadl_issues with
   | [] -> Format.fprintf ppf "no issues@,"
   | issues ->
     List.iter
       (fun i -> Format.fprintf ppf "%a@," Aadl.Check.pp_issue i)
       issues);
  Format.fprintf ppf "@,== schedules ==@,";
  List.iter
    (fun (cpu, s) ->
      Format.fprintf ppf "processor %s:@,%a@," cpu
        Sched.Static_sched.pp_schedule s)
    a.translation.Trans.System_trans.schedules;
  Format.fprintf ppf "@,== clock calculus ==@,%a@," Clocks.Calculus.pp_summary
    a.calc;
  Format.fprintf ppf "clock hierarchy roots: %d, depth: %d@,"
    (List.length (Clocks.Hierarchy.roots a.hierarchy))
    (Clocks.Hierarchy.depth a.hierarchy);
  Format.fprintf ppf "@,== determinism ==@,%a@,"
    Analysis.Determinism.pp_report a.determinism;
  Format.fprintf ppf "@,== deadlock ==@,%a@," Analysis.Deadlock.pp_report
    a.deadlock;
  (match Polysim.Compile.compile a.kernel with
   | Ok c ->
     let free = Polysim.Compile.free_classes c in
     if free = 0 then
       Format.fprintf ppf
         "@,endochrony: every clock is derivable — the program runs on \
          its synthesized tick@,"
     else
       Format.fprintf ppf
         "@,endochrony: %d free synchronization class(es): %s@," free
         (String.concat ", " (Polysim.Compile.free_class_members c))
   | Error m -> Format.fprintf ppf "@,not compilable: %s@," m);
  (match a.typecheck_errors with
   | [] -> Format.fprintf ppf "@,SIGNAL program is well-typed@,"
   | errs ->
     Format.fprintf ppf "@,SIGNAL type errors:@,";
     List.iter
       (fun e ->
         Format.fprintf ppf "  %s@," (Signal_lang.Typecheck.error_to_string e))
       errs);
  Format.fprintf ppf "@,== run metrics ==@,%a@," Putil.Metrics.pp
    Putil.Metrics.global;
  Format.fprintf ppf "@]"

let pp_stats ppf () =
  Format.fprintf ppf "@[<v>== run metrics ==@,%a@]" Putil.Metrics.pp
    Putil.Metrics.global

let stats_json () = Putil.Metrics.to_json Putil.Metrics.global
